(* Command-line front end for the Leopard reproduction.

     leopard run --n 64 --load 100000 --duration 20
     leopard run --n 16 --stop-leader 5 --resend 1
     leopard hotstuff --n 128 --batch 800
     leopard pbft --n 32
     leopard shard --rho 0.25 --target 1e-6
     leopard sf --n 300

   Every subcommand prints a plain-text report; `bench/main.exe` drives
   the full per-figure reproduction. *)

open Cmdliner

let span_of_sec s = Sim.Sim_time.of_sec s

(* Shared by `run` and `local-cluster`: dump a recorded protocol trace
   as one line per entry. *)
let dump_trace trace file =
  let oc = open_out file in
  let fmt = Format.formatter_of_out_channel oc in
  List.iter
    (fun e -> Format.fprintf fmt "%a@." Sim.Trace.pp_entry e)
    (Sim.Trace.entries trace);
  Format.pp_print_flush fmt ();
  close_out oc;
  Format.printf "trace: %d entries -> %s@." (Sim.Trace.length trace) file

(* ---------------- run (Leopard) ---------------- *)

let pp_bandwidth_view title (v : Core.Runner.bandwidth_view) =
  Format.printf "%s: sent %.2f MB, received %.2f MB@." title
    (float_of_int v.Core.Runner.sent_bytes /. 1e6)
    (float_of_int v.Core.Runner.received_bytes /. 1e6);
  List.iter
    (fun (cat, bytes) -> Format.printf "    sent %-12s %.2f MB@." cat (float_of_int bytes /. 1e6))
    v.Core.Runner.sent_by_category;
  List.iter
    (fun (cat, bytes) -> Format.printf "    recv %-12s %.2f MB@." cat (float_of_int bytes /. 1e6))
    v.Core.Runner.received_by_category

let leopard_run n load duration warmup alpha bft_size payload mempool_cap silent stop_leader
    resend gst seed bandwidth_mbps db_timeout prop_timeout trace_out metrics_out verbose =
  let cfg =
    Core.Config.make ~n ?alpha ?bft_size ~payload ~mempool_cap
      ~datablock_timeout:(span_of_sec db_timeout) ~proposal_timeout:(span_of_sec prop_timeout) ()
  in
  let link =
    match bandwidth_mbps with
    | Some mb ->
      Net.Network.{ default_link with out_bps = mbps mb; in_bps = mbps mb }
    | None -> Net.Network.default_link
  in
  let byzantine = if silent then Core.Runner.silent_f cfg else [] in
  let obs = Option.map (fun _ -> Obs.Registry.create ()) metrics_out in
  let spec =
    Core.Runner.spec ~cfg ~link ~seed ~load ~duration:(span_of_sec duration)
      ~warmup:(span_of_sec warmup) ~byzantine
      ?stop_leader_at:(Option.map span_of_sec stop_leader)
      ?client_resend_timeout:(Option.map span_of_sec resend)
      ?gst:(Option.map span_of_sec gst) ~trace:(trace_out <> None) ?obs ()
  in
  Format.printf "running Leopard: %a, load %.0f req/s, %.0fs (+%d silent Byzantine)@."
    Core.Config.pp cfg load duration (List.length byzantine);
  let t = Core.Runner.create spec in
  Core.Runner.run_until t (span_of_sec duration);
  let r = Core.Runner.report t in
  (match trace_out with
   | Some file -> dump_trace (Core.Runner.trace t) file
   | None -> ());
  (match (obs, metrics_out) with
   | Some reg, Some file ->
     Obs.Registry.dump_file reg file;
     Format.printf "metrics -> %s@." file
   | _ -> ());
  Format.printf "throughput:       %.0f req/s@." r.Core.Runner.throughput;
  Format.printf "goodput:          %.1f Mbps@." (r.Core.Runner.goodput_bps /. 1e6);
  Format.printf "offered/confirmed %d/%d@." r.Core.Runner.offered r.Core.Runner.confirmed;
  Format.printf "latency:          %a@." Stats.Histogram.pp_summary r.Core.Runner.latency;
  Format.printf "leader traffic:   %.1f Mbps@." (r.Core.Runner.leader_bps /. 1e6);
  Format.printf "executed blocks:  %d@." r.Core.Runner.executed_blocks;
  Format.printf "final view:       %d (view changes: %d)@." r.Core.Runner.final_view
    r.Core.Runner.view_changes;
  (match r.Core.Runner.vc_trigger_to_entry with
   | Some s -> Format.printf "view change took: %.2f s, %.2f MB@." s
                 (float_of_int r.Core.Runner.vc_bytes /. 1e6)
   | None -> ());
  Format.printf "safety:           %b@." r.Core.Runner.safety_ok;
  Format.printf "all confirmed:    %b@." r.Core.Runner.all_confirmed;
  if verbose then begin
    pp_bandwidth_view "leader" r.Core.Runner.leader;
    pp_bandwidth_view "non-leader" r.Core.Runner.non_leader;
    List.iter
      (fun (stage, secs) -> Format.printf "stage %-22s %.1f request-seconds@." stage secs)
      r.Core.Runner.stage_seconds
  end;
  if r.Core.Runner.safety_ok then `Ok () else `Error (false, "safety violated")

(* ---------------- local-cluster (real TCP) ---------------- *)

let local_cluster_run n load client_rate duration drain alpha bft_size payload mempool_cap
    db_timeout prop_timeout min_confirmed kill kill_at revive_at verify_domains data_dir fsync
    trace_out metrics_out metrics_interval_ns =
  let load = Option.value client_rate ~default:load in
  let cfg =
    Core.Config.make ~n ~alpha ~bft_size ~payload ~mempool_cap
      ~datablock_timeout:(span_of_sec db_timeout)
      ~proposal_timeout:(span_of_sec prop_timeout) ()
  in
  let kill =
    match kill with
    | None -> None
    | Some id ->
      if id < 0 || id >= n then invalid_arg "--kill: no such replica";
      Some (id, span_of_sec kill_at, Option.map span_of_sec revive_at)
  in
  let trace =
    match trace_out with
    | Some _ -> Some (Sim.Trace.create ~enabled:true ~capacity:1_000_000 ())
    | None -> None
  in
  Format.printf
    "local cluster over loopback TCP: n=%d, load %.0f req/s, %.0fs (+%.0fs drain)@." n load
    duration drain;
  (match kill with
   | Some (id, _, revive) ->
     Format.printf "fault: kill replica %d at %.1fs%s@." id kill_at
       (match revive with Some _ -> Format.asprintf ", revive at %.1fs"
                                      (Option.get revive_at)
                        | None -> "")
   | None -> ());
  (match data_dir with
   | Some dir -> Format.printf "durable state: %s (fsync=%s)@." dir fsync
   | None -> ());
  let fsync =
    match fsync with
    | "always" -> Store.Wal.Always
    | "interval" -> Store.Wal.Interval 50_000_000
    | _ -> Store.Wal.Never
  in
  let r =
    Transport.Cluster.run ~cfg ~load ~duration:(span_of_sec duration)
      ~drain:(span_of_sec drain) ?min_confirmed ?kill ?trace ?verify_domains
      ?data_dir ~fsync ?metrics_out ~metrics_interval_ns ()
  in
  (match metrics_out with
   | Some file -> Format.printf "metrics -> %s@." file
   | None -> ());
  Format.printf "%a@." Transport.Cluster.pp_report r;
  (match (trace, trace_out) with
   | Some tr, Some file -> dump_trace tr file
   | _ -> ());
  if r.Transport.Cluster.ledgers_agree then `Ok ()
  else `Error (false, "honest ledgers diverged")

(* ---------------- chaos (fault-injection corpus) ---------------- *)

let write_chaos_trace dir (o : Faults.Oracle.outcome) =
  (try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let file =
    Filename.concat dir
      (Printf.sprintf "%s-%s-n%d.trace" o.Faults.Oracle.plane
         o.Faults.Oracle.scenario.Faults.Scenario.name
         o.Faults.Oracle.scenario.Faults.Scenario.n)
  in
  let oc = open_out file in
  output_string oc o.Faults.Oracle.trace;
  close_out oc;
  file

let chaos_run list_only scenario plane sim_ns tcp_n seed trace_dir keep_traces metrics_out
    fast =
  if list_only then begin
    List.iter
      (fun b -> Format.printf "%a@." Faults.Scenario.pp (b ~n:4))
      Faults.Corpus.all;
    `Ok ()
  end
  else
    match
      match scenario with
      | None -> Some Faults.Corpus.all
      | Some name -> Option.map (fun b -> [ b ]) (Faults.Corpus.find name)
    with
    | None ->
      `Error
        ( false,
          Printf.sprintf "unknown scenario (try --list); known: %s"
            (String.concat ", " Faults.Corpus.names) )
    | Some builders ->
      let sim_ns = if fast then [ 4 ] else sim_ns in
      let outcomes = ref [] in
      let record o =
        outcomes := o :: !outcomes;
        let failed = not (Faults.Oracle.outcome_ok o) in
        (* failing runs always leave their trace behind as the repro
           artifact; --keep-traces keeps the passing ones too *)
        if failed || keep_traces then begin
          let file = write_chaos_trace trace_dir o in
          Format.printf "%a@.  trace -> %s@." Faults.Oracle.pp_outcome o file
        end
        else Format.printf "%a@." Faults.Oracle.pp_outcome o
      in
      if plane = "sim" || plane = "both" then
        List.iter
          (fun n ->
            List.iter (fun b -> record (Faults.Sim_plane.run ~seed (b ~n))) builders)
          sim_ns;
      if plane = "tcp" || plane = "both" then
        List.iter
          (fun b ->
            let sc = b ~n:tcp_n in
            (* one dump file per scenario: <base>.<scenario>-n<k>.prom *)
            let metrics_out =
              Option.map
                (fun base ->
                  Printf.sprintf "%s.%s-n%d.prom" base sc.Faults.Scenario.name tcp_n)
                metrics_out
            in
            record (Faults.Tcp_plane.run ~seed ~data_root:trace_dir ?metrics_out sc))
          builders;
      let outcomes = List.rev !outcomes in
      Format.printf "@.%a@." Faults.Oracle.pp_outcomes outcomes;
      if List.for_all Faults.Oracle.outcome_ok outcomes then `Ok ()
      else `Error (false, "chaos scenario failed its oracle")

(* ---------------- hotstuff ---------------- *)

let hotstuff_run n load duration warmup batch payload seed bandwidth_mbps =
  let cfg = Hotstuff.Hs_config.make ~n ~batch_size:batch ~payload () in
  let link =
    match bandwidth_mbps with
    | Some mb -> Net.Network.{ default_link with out_bps = mbps mb; in_bps = mbps mb }
    | None -> Net.Network.default_link
  in
  let spec =
    Hotstuff.Hs_runner.spec ~cfg ~link ~seed ~load ~duration:(span_of_sec duration)
      ~warmup:(span_of_sec warmup) ()
  in
  Format.printf "running HotStuff: n=%d batch=%d, load %.0f req/s, %.0fs@." n batch load duration;
  let r = Hotstuff.Hs_runner.run spec in
  Format.printf "throughput:       %.0f req/s@." r.Hotstuff.Hs_runner.throughput;
  Format.printf "offered/confirmed %d/%d@." r.Hotstuff.Hs_runner.offered
    r.Hotstuff.Hs_runner.confirmed;
  Format.printf "latency:          %a@." Stats.Histogram.pp_summary r.Hotstuff.Hs_runner.latency;
  Format.printf "leader traffic:   %.2f Gbps@." (r.Hotstuff.Hs_runner.leader_bps /. 1e9);
  Format.printf "committed blocks: %d@." r.Hotstuff.Hs_runner.committed_heights;
  Format.printf "safety:           %b@." r.Hotstuff.Hs_runner.safety_ok;
  if r.Hotstuff.Hs_runner.safety_ok then `Ok () else `Error (false, "safety violated")

(* ---------------- pbft ---------------- *)

let pbft_run n load duration warmup batch payload seed =
  let cfg = Pbft.make_cfg ~n ~batch_size:batch ~payload () in
  let spec =
    Pbft.spec ~cfg ~seed ~load ~duration:(span_of_sec duration) ~warmup:(span_of_sec warmup) ()
  in
  Format.printf "running PBFT: n=%d batch=%d, load %.0f req/s, %.0fs@." n batch load duration;
  let r = Pbft.run spec in
  Format.printf "throughput:       %.0f req/s@." r.Pbft.throughput;
  Format.printf "offered/confirmed %d/%d@." r.Pbft.offered r.Pbft.confirmed;
  Format.printf "latency:          %a@." Stats.Histogram.pp_summary r.Pbft.latency;
  Format.printf "leader traffic:   %.2f Gbps@." (r.Pbft.leader_bps /. 1e9);
  Format.printf "safety:           %b@." r.Pbft.safety_ok;
  if r.Pbft.safety_ok then `Ok () else `Error (false, "safety violated")

(* ---------------- shard ---------------- *)

let shard_run rho target =
  let n = Analysis.Shard_prob.min_shard_size ~rho ~target in
  Format.printf "network Byzantine fraction rho = %.3f@." rho;
  Format.printf "committee failure target        = %.1e@." target;
  Format.printf "minimum committee size          = %d replicas@." n;
  Format.printf "failure probability at that n   = %.3e@."
    (Analysis.Shard_prob.failure_probability ~rho ~n);
  `Ok ()

(* ---------------- sf ---------------- *)

let sf_run n payload =
  let alpha, bft = Core.Config.paper_batch_sizes ~n in
  let alpha_bytes = float_of_int (alpha * payload) in
  let beta = float_of_int Crypto.Hash.size_bytes in
  Format.printf "n = %d (Table 2: alpha = %d requests, BFTsize = %d)@." n alpha bft;
  Format.printf "Leopard scaling factor:   %.3f@."
    (Core.Scaling_factor.leopard_sf ~alpha_bytes ~beta ~n);
  Format.printf "HotStuff scaling factor:  %.0f@." (Core.Scaling_factor.hotstuff_sf ~n);
  Format.printf "Leopard cost-effectiveness:  %.3f@."
    (Core.Scaling_factor.leopard_cost_effectiveness ~alpha_bytes ~beta);
  Format.printf "HotStuff cost-effectiveness: %.5f@."
    (Core.Scaling_factor.hotstuff_cost_effectiveness ~n);
  `Ok ()

(* ---------------- terms ---------------- *)

let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~doc:"Number of replicas (3f+1).")
let load_arg = Arg.(value & opt float 50_000. & info [ "load" ] ~doc:"Offered load, requests/s.")
let duration_arg = Arg.(value & opt float 15. & info [ "duration" ] ~doc:"Simulated seconds.")
let warmup_arg = Arg.(value & opt float 4. & info [ "warmup" ] ~doc:"Warmup seconds excluded from rates.")
let payload_arg = Arg.(value & opt int 128 & info [ "payload" ] ~doc:"Request payload bytes.")
let seed_arg = Arg.(value & opt int64 42L & info [ "seed" ] ~doc:"Simulation seed.")
let bw_arg =
  Arg.(value & opt (some float) None & info [ "bandwidth" ] ~doc:"Per-replica bandwidth, Mbps.")
let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~doc:"Record a protocol trace and write it to $(docv)." ~docv:"FILE")
let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ]
           ~doc:
             "Write a Prometheus-style text metrics dump to $(docv): periodically and on \
              exit for wall-clock runs, at end-of-run for the simulator." ~docv:"FILE")
let metrics_interval_arg =
  Arg.(value & opt int 1_000_000_000
       & info [ "metrics-interval-ns" ]
           ~doc:"Nanoseconds between periodic metrics dumps (wall-clock runs; default 1s).")
let mempool_cap_arg =
  Arg.(value & opt int 0
       & info [ "mempool-cap" ]
           ~doc:
             "Bound each replica's mempool to this many pending requests; submits past the \
              bound are rejected at admission (0 = unbounded, the default).")

let run_cmd =
  let alpha = Arg.(value & opt (some int) None & info [ "alpha" ] ~doc:"Datablock size, requests.") in
  let bft_size = Arg.(value & opt (some int) None & info [ "bft-size" ] ~doc:"Datablocks per BFTblock.") in
  let silent =
    Arg.(value & flag & info [ "silent-byzantine" ] ~doc:"Run with f silent Byzantine replicas.")
  in
  let stop_leader =
    Arg.(value & opt (some float) None & info [ "stop-leader" ] ~doc:"Fail-stop the leader at this second.")
  in
  let resend =
    Arg.(value & opt (some float) None & info [ "resend" ] ~doc:"Client re-send timeout, seconds.")
  in
  let gst = Arg.(value & opt (some float) None & info [ "gst" ] ~doc:"GST: adversarial delays before it.") in
  let db_timeout =
    Arg.(value & opt float 0.5
         & info [ "datablock-timeout" ]
             ~doc:"Pack a partial datablock after this many seconds (0 = pure Algorithm 1).")
  in
  let prop_timeout =
    Arg.(value & opt float 0.5
         & info [ "proposal-timeout" ]
             ~doc:"Leader short-timer: propose a partial BFTblock after this many seconds (0 = off).")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print bandwidth breakdowns.") in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a Leopard cluster on the simulator")
    Term.(
      ret
        (const leopard_run $ n_arg $ load_arg $ duration_arg $ warmup_arg $ alpha $ bft_size
        $ payload_arg $ mempool_cap_arg $ silent $ stop_leader $ resend $ gst $ seed_arg
        $ bw_arg $ db_timeout $ prop_timeout $ trace_out_arg $ metrics_out_arg $ verbose))

let local_cluster_cmd =
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of replicas (3f+1).") in
  let load = Arg.(value & opt float 2000. & info [ "load" ] ~doc:"Offered load, requests/s.") in
  let client_rate =
    Arg.(value & opt (some float) None
         & info [ "client-rate" ]
             ~doc:
               "Client request rate, requests/s (overrides $(b,--load)). With \
                $(b,--mempool-cap) set, the built-in client runs closed/open hybrid: \
                rejected submits are re-credited and retried after a cooldown instead of \
                being force-fed.")
  in
  let duration = Arg.(value & opt float 5. & info [ "duration" ] ~doc:"Load window, wall seconds.") in
  let drain =
    Arg.(value & opt float 10.
         & info [ "drain" ] ~doc:"Max settle time after the load stops, wall seconds.")
  in
  let alpha = Arg.(value & opt int 100 & info [ "alpha" ] ~doc:"Datablock size, requests.") in
  let bft_size = Arg.(value & opt int 10 & info [ "bft-size" ] ~doc:"Datablocks per BFTblock.") in
  let db_timeout =
    Arg.(value & opt float 0.02
         & info [ "datablock-timeout" ] ~doc:"Pack a partial datablock after this many seconds.")
  in
  let prop_timeout =
    Arg.(value & opt float 0.02
         & info [ "proposal-timeout" ] ~doc:"Propose a partial BFTblock after this many seconds.")
  in
  let min_confirmed =
    Arg.(value & opt (some int) None
         & info [ "min-confirmed" ] ~doc:"Stop the load early once this many requests confirmed.")
  in
  let kill =
    Arg.(value & opt (some int) None & info [ "kill" ] ~doc:"Fail-stop this replica mid-run.")
  in
  let kill_at =
    Arg.(value & opt float 2. & info [ "kill-at" ] ~doc:"When to kill, seconds into the run.")
  in
  let revive_at =
    Arg.(value & opt (some float) None
         & info [ "revive-at" ] ~doc:"Revive the killed replica at this second.")
  in
  let verify_domains =
    Arg.(value & opt (some int) None
         & info [ "verify-domains" ]
             ~doc:
               "Worker domains for parallel crypto verification (0 = verify inline on the \
                event loop; default: auto, scaled to the host cores).")
  in
  let data_dir =
    Arg.(value & opt (some string) None
         & info [ "data-dir" ]
             ~doc:
               "Keep each replica's write-ahead log and snapshots under this directory \
                (node-0/, node-1/, …). Default: a temp directory, removed on exit.")
  in
  let fsync =
    Arg.(value
         & opt (enum [ ("always", "always"); ("interval", "interval"); ("never", "never") ])
             "never"
         & info [ "fsync" ]
             ~doc:
               "WAL durability policy: $(b,always) fsyncs every append, $(b,interval) \
                fsyncs at most every 50ms, $(b,never) leaves durability to the page cache.")
  in
  Cmd.v
    (Cmd.info "local-cluster"
       ~doc:"Run replicas over real loopback TCP sockets (the deployable transport stack)")
    Term.(
      ret
        (const local_cluster_run $ n $ load $ client_rate $ duration $ drain $ alpha $ bft_size
        $ payload_arg $ mempool_cap_arg $ db_timeout $ prop_timeout $ min_confirmed $ kill
        $ kill_at $ revive_at $ verify_domains $ data_dir $ fsync $ trace_out_arg
        $ metrics_out_arg $ metrics_interval_arg))

let chaos_cmd =
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List the scenario corpus and exit.")
  in
  let scenario =
    Arg.(value & opt (some string) None
         & info [ "scenario" ] ~doc:"Run a single scenario by name (default: whole corpus).")
  in
  let plane =
    Arg.(value & opt (enum [ ("sim", "sim"); ("tcp", "tcp"); ("both", "both") ]) "both"
         & info [ "plane" ] ~doc:"Which plane to run: $(b,sim), $(b,tcp) or $(b,both).")
  in
  let sim_ns =
    Arg.(value & opt (list int) [ 4; 16; 64 ]
         & info [ "sim-ns" ] ~doc:"Cluster sizes for the sim plane (comma-separated).")
  in
  let tcp_n =
    Arg.(value & opt int 4 & info [ "tcp-n" ] ~doc:"Cluster size for the TCP plane.")
  in
  let trace_dir =
    Arg.(value & opt string "_chaos"
         & info [ "trace-dir" ] ~doc:"Where failing-scenario traces are written.")
  in
  let keep_traces =
    Arg.(value & flag
         & info [ "keep-traces" ] ~doc:"Also write traces of passing scenarios.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ]
             ~doc:
               "TCP plane: write a per-scenario metrics dump to \
                $(docv).<scenario>-n<k>.prom." ~docv:"BASE")
  in
  let fast =
    Arg.(value & flag & info [ "fast" ] ~doc:"Sim plane at n=4 only (quick gate).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the deterministic fault-injection corpus (crashes, partitions, slow/silent/equivocating leaders) and check the safety/liveness oracles")
    Term.(
      ret
        (const chaos_run $ list_only $ scenario $ plane $ sim_ns $ tcp_n $ seed_arg
        $ trace_dir $ keep_traces $ metrics_out $ fast))

let hotstuff_cmd =
  let batch = Arg.(value & opt int 800 & info [ "batch" ] ~doc:"Requests per block.") in
  Cmd.v
    (Cmd.info "hotstuff" ~doc:"Run the chained-HotStuff baseline")
    Term.(
      ret
        (const hotstuff_run $ n_arg $ load_arg $ duration_arg $ warmup_arg $ batch $ payload_arg
        $ seed_arg $ bw_arg))

let pbft_cmd =
  let batch = Arg.(value & opt int 400 & info [ "batch" ] ~doc:"Requests per block.") in
  Cmd.v
    (Cmd.info "pbft" ~doc:"Run the PBFT-style all-to-all baseline")
    Term.(
      ret
        (const pbft_run $ n_arg $ load_arg $ duration_arg $ warmup_arg $ batch $ payload_arg
        $ seed_arg))

let shard_cmd =
  let rho = Arg.(value & opt float 0.25 & info [ "rho" ] ~doc:"Byzantine fraction in the network.") in
  let target = Arg.(value & opt float 1e-6 & info [ "target" ] ~doc:"Committee failure target.") in
  Cmd.v
    (Cmd.info "shard" ~doc:"Size a shard committee (Table 1 math)")
    Term.(ret (const shard_run $ rho $ target))

let sf_cmd =
  Cmd.v
    (Cmd.info "sf" ~doc:"Print scaling factors and cost-effectiveness (§5.2)")
    Term.(ret (const sf_run $ n_arg $ payload_arg))

let () =
  let info =
    Cmd.info "leopard" ~version:"1.0.0"
      ~doc:"Leopard BFT (ICDCS 2022) reproduction on a deterministic network simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; local_cluster_cmd; chaos_cmd; hotstuff_cmd; pbft_cmd; shard_cmd;
            sf_cmd ]))
