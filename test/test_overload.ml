(* Overload-control plane: mempool admission, replica verdicts, the
   capped leader-handover flush, the transport's kind-aware drop policy,
   and an end-to-end 10x-overload acceptance run on the TCP cluster.

   The standing invariants under test: a bounded mempool never exceeds
   its cap, every refused submit is rendered as a typed verdict (never a
   raise) and accounted, and under egress saturation consensus-critical
   frames are never dropped before bulk datablock frames. *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let req ?(id = 0) ?(count = 4) ?(born = Sim_time.zero) () =
  Workload.Request.make ~id ~count ~size_each:64 ~born ()

(* -- mempool units ------------------------------------------------------- *)

let test_mempool_admission () =
  let mp = Core.Mempool.create ~cap:10 () in
  checki "cap recorded" 10 (Core.Mempool.cap mp);
  checkb "under cap admits" true
    (Core.Mempool.try_add mp (req ~id:1 ()) = Core.Mempool.Admitted);
  checkb "still under cap admits" true
    (Core.Mempool.try_add mp (req ~id:2 ()) = Core.Mempool.Admitted);
  checki "pending counts requests" 8 (Core.Mempool.pending_requests mp);
  checkb "overshoot rejected" true
    (Core.Mempool.try_add mp (req ~id:3 ())
     = Core.Mempool.Rejected Core.Mempool.Mempool_full);
  checki "rejected batch leaves pending unchanged" 8
    (Core.Mempool.pending_requests mp);
  (* Exactly reaching the cap is still admitted. *)
  checkb "at-cap admits" true
    (Core.Mempool.try_add mp (req ~id:4 ~count:2 ()) = Core.Mempool.Admitted);
  checki "at cap" 10 (Core.Mempool.pending_requests mp);
  checkb "one past cap rejected" true
    (Core.Mempool.try_add mp (req ~id:5 ~count:1 ())
     = Core.Mempool.Rejected Core.Mempool.Mempool_full);
  (* The unconditional path (internal re-enqueue) bypasses admission. *)
  Core.Mempool.add mp (req ~id:6 ~count:1 ());
  checki "unconditional add bypasses the cap" 11
    (Core.Mempool.pending_requests mp);
  checkb "non-positive take takes nothing" true
    (Core.Mempool.take mp ~target:0 = [])

let test_mempool_unbounded_default () =
  let mp = Core.Mempool.create () in
  checki "no cap" 0 (Core.Mempool.cap mp);
  for i = 1 to 1000 do
    checkb "always admitted" true
      (Core.Mempool.try_add mp (req ~id:i ()) = Core.Mempool.Admitted)
  done;
  checki "all pending" 4000 (Core.Mempool.pending_requests mp)

let test_mempool_age_eviction () =
  let mp = Core.Mempool.create ~max_age:(Sim_time.ms 100) () in
  Core.Mempool.add mp (req ~id:1 ~count:3 ~born:Sim_time.zero ());
  Core.Mempool.add mp (req ~id:2 ~count:5 ~born:(Sim_time.ms 50) ());
  Core.Mempool.add mp (req ~id:3 ~count:7 ~born:(Sim_time.ms 200) ());
  (* At t=220ms the first two batches (ages 220, 170) are past the
     100 ms bound; the third (age 20) survives. FIFO prefix only. *)
  checki "evicts the expired prefix, in requests" 8
    (Core.Mempool.evict_expired mp ~now:(Sim_time.ms 220));
  checki "young batch survives" 7 (Core.Mempool.pending_requests mp);
  checki "second scan finds nothing" 0
    (Core.Mempool.evict_expired mp ~now:(Sim_time.ms 220));
  (* No max_age configured: eviction is a no-op whatever the clock says. *)
  let unbounded = Core.Mempool.create ~cap:10 () in
  Core.Mempool.add unbounded (req ~id:9 ~born:Sim_time.zero ());
  checki "no max_age, no eviction" 0
    (Core.Mempool.evict_expired unbounded ~now:(Sim_time.s 3600));
  checki "batch untouched" 4 (Core.Mempool.pending_requests unbounded)

(* -- replica admission verdicts ------------------------------------------ *)

let capped_cfg ?(mempool_cap = 20) () =
  Core.Config.make ~n:4 ~alpha:10 ~bft_size:2 ~k:16 ~payload:64
    ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 300)
    ~view_timeout:(Sim_time.s 2) ~fetch_grace:(Sim_time.ms 200)
    ~cost:Crypto.Cost_model.free ~mempool_cap ()

let contains text sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length text && (String.sub text i n = sub || go (i + 1))
  in
  go 0

let test_replica_admission () =
  let reg = Obs.Registry.create () in
  let spec =
    Core.Runner.spec ~cfg:(capped_cfg ()) ~seed:42L ~load:0.1
      ~duration:(Sim_time.s 1) ~warmup:Sim_time.zero ~obs:reg ()
  in
  let t = Core.Runner.create spec in
  Fun.protect ~finally:(fun () -> Core.Runner.shutdown t)
    (fun () ->
      let replicas = Core.Runner.replicas t in
      (* The view-1 leader does not pack (it generates no datablocks), so
         submissions accumulate against the admission bound. *)
      let leader = replicas.(1) in
      checkb "replica 1 leads view 1" true (Core.Replica.is_leader leader);
      for i = 1 to 5 do
        checkb "admitted under the cap" true
          (Core.Replica.submit leader (req ~id:i ()) = Core.Replica.Admitted)
      done;
      checki "pending at the cap" 20 (Core.Replica.mempool_pending leader);
      checkb "past the cap: typed rejection" true
        (Core.Replica.submit leader (req ~id:6 ())
         = Core.Replica.Rejected Core.Replica.Mempool_full);
      checki "pending unchanged by the rejection" 20
        (Core.Replica.mempool_pending leader);
      checki "rejected requests counted" 4 (Core.Replica.submits_rejected leader);
      checkb "rejection visible in metrics" true
        (contains (Obs.Registry.expose reg) "leopard_replica_submit_rejected_total");
      (* A halted replica refuses with Inactive — crash churn, not
         overload, so it does not count toward admission rejections. *)
      let other = replicas.(0) in
      Core.Replica.halt other;
      checkb "halted replica refuses" true
        (Core.Replica.submit other (req ~id:7 ())
         = Core.Replica.Rejected Core.Replica.Inactive);
      checki "inactive refusal is not an admission rejection" 0
        (Core.Replica.submits_rejected other))

(* -- leader handover under overload (sim) -------------------------------- *)

(* The capped-flush satellite, end to end: a cluster driven well past its
   admission bound loses its leader mid-run. The view change must
   complete promptly (the promoted replica flushes at most [cap] pending
   requests into the new view instead of its whole backlog), commits
   must resume, and no mempool may ever exceed the bound. *)
let test_leader_handover_under_overload () =
  let cap = 64 in
  let spec =
    Core.Runner.spec
      ~cfg:(capped_cfg ~mempool_cap:cap ())
      ~seed:42L ~load:4000. ~duration:(Sim_time.s 12) ~warmup:(Sim_time.s 2)
      ~load_until:(Sim_time.s 6) ~stop_leader_at:(Sim_time.s 3)
      ~client_resend_timeout:(Sim_time.s 1) ()
  in
  let t = Core.Runner.create spec in
  Fun.protect ~finally:(fun () -> Core.Runner.shutdown t)
    (fun () ->
      Core.Runner.run_until t (Sim_time.s 12);
      let r = Core.Runner.report t in
      checkb "safety" true r.Core.Runner.safety_ok;
      checkb "the new view was entered" true (r.Core.Runner.final_view >= 2);
      checkb "commits resumed after the handover" true
        (r.Core.Runner.confirmed > 0 && r.Core.Runner.executed_blocks > 0);
      Array.iter
        (fun rep ->
          checkb "mempool bounded throughout" true
            (Core.Replica.mempool_pending rep <= cap))
        (Core.Runner.replicas t))

(* -- transport: kind-aware drop policy ----------------------------------- *)

let closed_loopback_port () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let addr = Unix.getsockname sock in
  Unix.close sock;
  (* Bound once, then closed: nothing listens there, so dialed frames
     stay queued (the test never runs the loop, so no flush either). *)
  match addr with
  | Unix.ADDR_INET (host, port) -> Unix.ADDR_INET (host, port)
  | _ -> Alcotest.fail "expected an inet loopback address"

let test_conn_kind_aware_drops () =
  let rng = Sim.Rng.create 2026L in
  let _pk, sk = Crypto.Signature.keygen rng in
  let low_msg =
    Core.Msg.Datablock_msg
      (Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:Sim_time.zero
         [ req ~id:1 () ])
  in
  let high_msg =
    Core.Msg.Timeout { view = 3; sender = 0; signature = Crypto.Signature.sign sk "t" }
  in
  let hwm = 1024 in
  let loop = Transport.Loop.create () in
  let conn =
    Transport.Conn.create ~loop ~id:0 ~outbuf_hwm:hwm
      ~on_msg:(fun ~src:_ _ -> ()) ()
  in
  Fun.protect ~finally:(fun () -> Transport.Conn.close conn)
    (fun () ->
      Transport.Conn.set_peer_addr conn 1 (closed_loopback_port ());
      let dropped_bp () = Transport.Conn.dropped_backpressure conn in
      let by_kind k = Transport.Conn.dropped_by_kind conn k in
      let sent = ref 0 in
      (* Fill with bulk frames until the HWM refuses one. *)
      let rounds = ref 0 in
      while dropped_bp () = 0 && !rounds < 300 do
        incr rounds;
        incr sent;
        Transport.Conn.send conn ~dst:1 low_msg
      done;
      checkb "bulk frames hit the HWM" true (dropped_bp () > 0);
      checki "the drop is attributed to K_datablock" (dropped_bp ())
        (by_kind Core.Msg.K_datablock);
      checkb "bulk admission stops at the HWM" true
        (Transport.Conn.pressure conn <= 1.0);
      (* Consensus-critical frames still get through: the headroom above
         the HWM is reserved for them. *)
      let bp_before = dropped_bp () in
      Transport.Conn.send conn ~dst:1 high_msg;
      incr sent;
      checki "consensus frame admitted above the HWM" bp_before (dropped_bp ());
      checki "no consensus drops yet" 0 (by_kind Core.Msg.K_timeout);
      (* ...but the headroom is bounded: past 2x the HWM even consensus
         frames are refused, so a dead peer cannot balloon the sender. *)
      rounds := 0;
      while by_kind Core.Msg.K_timeout = 0 && !rounds < 300 do
        incr rounds;
        incr sent;
        Transport.Conn.send conn ~dst:1 high_msg
      done;
      checkb "consensus admission stops at the headroom bound" true
        (by_kind Core.Msg.K_timeout > 0);
      checkb "queue saturated past the bulk threshold" true
        (Transport.Conn.pressure conn >= 1.0);
      checkb "but never past the consensus headroom" true
        (Transport.Conn.pressure conn <= 2.0);
      (* Bulk frames are still refused at their lower threshold. *)
      let db_before = by_kind Core.Msg.K_datablock in
      Transport.Conn.send conn ~dst:1 low_msg;
      incr sent;
      checki "bulk still refused first" (db_before + 1)
        (by_kind Core.Msg.K_datablock);
      (* A peer with no address is a distinct cause. *)
      Transport.Conn.send conn ~dst:2 high_msg;
      checki "no-addr refusal split out" 1 (Transport.Conn.dropped_no_addr conn);
      (* Downing the node discards the queue under its own reason: crash
         churn must never read as backpressure overload. *)
      let queued = !sent - dropped_bp () in
      let bp_at_down = dropped_bp () in
      Transport.Conn.set_down conn true;
      checki "dead-window losses counted apart" queued
        (Transport.Conn.dropped_disconnected conn);
      checki "backpressure counter untouched by the crash" bp_at_down
        (dropped_bp ());
      checki "total is the sum of the split causes" (Transport.Conn.dropped conn)
        (dropped_bp () + Transport.Conn.dropped_no_addr conn
        + Transport.Conn.dropped_disconnected conn))

(* -- TCP acceptance: n=16 at ~10x sustained capacity --------------------- *)

let consensus_kinds =
  [ Core.Msg.K_propose; Core.Msg.K_prepare_vote; Core.Msg.K_notarization;
    Core.Msg.K_commit_vote; Core.Msg.K_confirmation; Core.Msg.K_checkpoint_vote;
    Core.Msg.K_checkpoint_cert; Core.Msg.K_timeout; Core.Msg.K_view_change;
    Core.Msg.K_new_view; Core.Msg.K_fetch ]

let test_tcp_overload_acceptance () =
  let cap = 256 in
  let cfg =
    Core.Config.make ~n:16 ~alpha:10 ~bft_size:2 ~k:16 ~payload:64
      ~datablock_timeout:(Sim_time.ms 20) ~proposal_timeout:(Sim_time.ms 30)
      ~view_timeout:(Sim_time.s 5) ~fetch_grace:(Sim_time.ms 200)
      ~cost:Crypto.Cost_model.free ~mempool_cap:cap ~pace_on_pressure:true ()
  in
  let cl =
    Transport.Cluster.create ~cfg ~load:20000. ~outbuf_hwm:(128 * 1024) ()
  in
  Fun.protect ~finally:(fun () -> Transport.Cluster.close cl)
    (fun () ->
      let loop = Transport.Cluster.loop cl in
      let replicas = Transport.Cluster.replicas cl in
      let cap_violation = ref None in
      let check_caps () =
        Array.iteri
          (fun id rep ->
            let p = Core.Replica.mempool_pending rep in
            if p > cap && !cap_violation = None then cap_violation := Some (id, p))
          replicas
      in
      Transport.Cluster.start_load cl;
      let deadline = Transport.Loop.now_ns loop + Int64.to_int (Sim_time.s 15) in
      Transport.Cluster.run_while cl (fun cl ->
          check_caps ();
          Transport.Cluster.confirmed cl < 300
          && Transport.Loop.now_ns loop < deadline);
      let c1 = Transport.Cluster.confirmed cl in
      checkb "commits flow under 10x load" true (c1 > 0);
      (* Sustained overload: confirmations must still strictly advance. *)
      let go_until = Transport.Loop.now_ns loop + Int64.to_int (Sim_time.s 2) in
      Transport.Cluster.run_while cl (fun cl ->
          check_caps ();
          ignore (cl : Transport.Cluster.t);
          Transport.Loop.now_ns loop < go_until);
      let c2 = Transport.Cluster.confirmed cl in
      checkb "confirmed strictly increases under sustained overload" true (c2 > c1);
      Transport.Cluster.stop_load cl;
      (match !cap_violation with
       | None -> ()
       | Some (id, p) ->
         Alcotest.failf "replica %d mempool reached %d > cap %d" id p cap);
      (* Every rejection the client saw is accounted at some replica (no
         replica is ever down here, so the counts must agree exactly). *)
      let replica_rejected =
        Array.fold_left
          (fun acc rep -> acc + Core.Replica.submits_rejected rep)
          0 replicas
      in
      checki "client and replica rejection accounting agree" replica_rejected
        (Transport.Cluster.rejected cl);
      (* Kind-aware policy under real overload: whatever backpressure
         drops occurred, none hit a consensus-critical kind — the bulk
         datablock plane absorbs all of them. *)
      let nodes = Transport.Cluster.nodes cl in
      Array.iter
        (fun node ->
          let conn = Transport.Runtime.conn node in
          List.iter
            (fun k ->
              checki
                ("no backpressure drops on " ^ Core.Msg.kind_name k)
                0
                (Transport.Conn.dropped_by_kind conn k))
            consensus_kinds)
        nodes;
      (* Deterministic exercise of the admission path on this plane: one
         burst bigger than the bound must be refused, typed, counted, and
         must leave the pool untouched. *)
      let target = replicas.(0) in
      let before = Core.Replica.mempool_pending target in
      let rejected_before = Core.Replica.submits_rejected target in
      checkb "oversized burst refused with a typed verdict" true
        (Core.Replica.submit target (req ~id:999_999 ~count:(cap + 1) ())
         = Core.Replica.Rejected Core.Replica.Mempool_full);
      checki "burst counted" (rejected_before + cap + 1)
        (Core.Replica.submits_rejected target);
      checki "pool untouched by the refused burst" before
        (Core.Replica.mempool_pending target))

let () =
  Alcotest.run "overload"
    [ ( "mempool",
        [ Alcotest.test_case "admission bound" `Quick test_mempool_admission;
          Alcotest.test_case "unbounded by default" `Quick
            test_mempool_unbounded_default;
          Alcotest.test_case "age eviction" `Quick test_mempool_age_eviction ] );
      ( "replica",
        [ Alcotest.test_case "admission verdicts" `Quick test_replica_admission;
          Alcotest.test_case "leader handover under overload" `Quick
            test_leader_handover_under_overload ] );
      ( "transport",
        [ Alcotest.test_case "kind-aware drop policy" `Quick
            test_conn_kind_aware_drops ] );
      ( "acceptance",
        [ Alcotest.test_case "n=16 TCP at 10x load" `Slow
            test_tcp_overload_acceptance ] )
    ]
