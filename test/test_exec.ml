(* Exec.Pool: the bounded domain worker pool under the verification
   pipeline. Futures, batches, drain-only async delivery, backpressure,
   stats — and the crypto paths that now run on it: concurrent
   Datablock.verify / Threshold.verify from several domains must agree,
   and a corrupted block must be rejected from every domain. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* -- pool mechanics ----------------------------------------------------- *)

let test_submit_await () =
  let p = Exec.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let fut = Exec.Pool.submit p (fun () -> 6 * 7) in
      checki "value" 42 (Exec.Pool.await fut);
      (* await after completion is fine, and repeatable *)
      checki "await twice" 42 (Exec.Pool.await fut))

let test_submit_batch_order () =
  let p = Exec.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let futs =
        Exec.Pool.submit_batch p (List.init 100 (fun i () -> i * i))
      in
      List.iteri (fun i f -> checki "square" (i * i) (Exec.Pool.await f)) futs)

let test_await_reraises () =
  let p = Exec.Pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let fut = Exec.Pool.submit p (fun () -> failwith "boom") in
      checkb "exception re-raised in caller" true
        (match Exec.Pool.await fut with
        | _ -> false
        | exception Failure m -> String.equal m "boom"))

let test_async_delivered_only_at_drain () =
  let p = Exec.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let delivered = ref [] in
      let futs =
        List.init 10 (fun i ->
            let fut = Exec.Pool.submit p (fun () -> ()) in
            Exec.Pool.async p (fun () -> i) (fun v -> delivered := v :: !delivered);
            fut)
      in
      (* Wait for the work itself; the continuations must still be parked
         in the done queue, not run from the worker domains. *)
      List.iter Exec.Pool.await futs;
      checki "nothing delivered before drain" 0 (List.length !delivered);
      (* async completions enqueue after their task finishes; give the
         last ones a moment, then drain until all ten are here. *)
      let rec drain_all deadline =
        ignore (Exec.Pool.drain p : int);
        if List.length !delivered < 10 && Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.001;
          drain_all deadline
        end
      in
      drain_all (Unix.gettimeofday () +. 5.);
      checki "all delivered" 10 (List.length !delivered);
      checki "delivered count in stats" 10 (Exec.Pool.stats p).Exec.Pool.drained)

let test_async_all_order_and_notify_fd () =
  let p = Exec.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let result = ref None in
      Exec.Pool.async_all p
        (List.init 50 (fun i () -> 2 * i))
        (fun vs -> result := Some vs);
      (* The notify fd must become readable once the batch completes. *)
      let r, _, _ = Unix.select [ Exec.Pool.notify_fd p ] [] [] 5.0 in
      checkb "notify fd readable" true (r <> []);
      ignore (Exec.Pool.drain p : int);
      match !result with
      | None -> Alcotest.fail "batch completion not delivered"
      | Some vs ->
        checki "batch size" 50 (List.length vs);
        List.iteri (fun i v -> checki "submission order" (2 * i) v) vs)

let test_backpressure_runs_inline () =
  (* One worker, blocked; a budget of 1 is exhausted by the blocked task,
     so further submissions must run on the caller. *)
  let p = Exec.Pool.create ~domains:1 ~budget:1 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let gate = Semaphore.Binary.make false in
      (* In-flight counts from submission, so the budget is full the
         moment this is enqueued — no need to wait for pickup. *)
      let blocked = Exec.Pool.submit p (fun () -> Semaphore.Binary.acquire gate) in
      let caller_domain = Domain.self () in
      let ran_on = ref None in
      let fut = Exec.Pool.submit p (fun () -> ran_on := Some (Domain.self ())) in
      checkb "inline fallback completed without the worker" true
        (match Exec.Pool.await fut with () -> true);
      checkb "ran on the caller domain" true (!ran_on = Some caller_domain);
      checkb "inline_runs counted" true ((Exec.Pool.stats p).Exec.Pool.inline_runs >= 1);
      Semaphore.Binary.release gate;
      Exec.Pool.await blocked)

let test_stats_sanity () =
  let p = Exec.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let futs = Exec.Pool.submit_batch p (List.init 20 (fun i () -> i)) in
      List.iter (fun f -> ignore (Exec.Pool.await f : int)) futs;
      let s = Exec.Pool.stats p in
      checki "tasks" 20 s.Exec.Pool.tasks;
      checki "batches" 1 s.Exec.Pool.batches;
      checki "size" 2 (Exec.Pool.size p))

let test_shutdown_idempotent () =
  let p = Exec.Pool.create ~domains:2 () in
  let fut = Exec.Pool.submit p (fun () -> 1) in
  Exec.Pool.shutdown p;
  (* queued work was finished before the workers exited *)
  checki "pending future fulfilled" 1 (Exec.Pool.await fut);
  Exec.Pool.shutdown p (* second call is a no-op *)

(* -- parallel crypto verification --------------------------------------- *)

let mk_batches () =
  List.init 8 (fun i ->
      Workload.Request.make ~id:i ~count:4 ~size_each:64 ~born:0L ())

let mk_db () =
  let rng = Sim.Rng.create 7L in
  let pk, sk = Crypto.Signature.keygen rng in
  let db =
    Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:Sim.Sim_time.zero (mk_batches ())
  in
  ([| pk |], db)

let test_corrupted_block_rejected_from_every_domain () =
  let pks, db = mk_db () in
  checkb "original verifies" true (Core.Datablock.verify ~pks db);
  let p = Exec.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      (* Fresh tampered copy per task: every domain must recompute the
         Merkle root (no shared warm memo) and reject. *)
      let bad =
        Exec.Pool.submit_batch p
          (List.init 64 (fun _ ->
               let forged = Core.Datablock.tamper db in
               fun () -> Core.Datablock.verify ~pks forged))
      in
      List.iter (fun f -> checkb "tampered rejected" false (Exec.Pool.await f)) bad;
      (* And one shared corrupted value hammered concurrently: the CAS'd
         memo must never flip to Valid under the race. *)
      let forged = Core.Datablock.tamper db in
      let shared =
        Exec.Pool.submit_batch p
          (List.init 64 (fun _ () -> Core.Datablock.verify ~pks forged))
      in
      List.iter (fun f -> checkb "shared tampered rejected" false (Exec.Pool.await f)) shared;
      (* Valid block accepted from every domain, ditto under sharing. *)
      let good =
        Exec.Pool.submit_batch p
          (List.init 64 (fun _ () -> Core.Datablock.verify ~pks db))
      in
      List.iter (fun f -> checkb "valid accepted" true (Exec.Pool.await f)) good)

let test_threshold_verdicts_agree_across_domains () =
  let rng = Sim.Rng.create 11L in
  let setup, keys = Crypto.Threshold.keygen rng ~threshold:2 ~parties:4 in
  let msg = "payload under vote" in
  let shares = Array.to_list (Array.map (fun k -> Crypto.Threshold.sign_share k msg) keys) in
  let agg =
    match Crypto.Threshold.combine setup msg shares with
    | Some a -> a
    | None -> Alcotest.fail "combine failed"
  in
  let forged = Crypto.Threshold.forge_attempt setup msg in
  let p = Exec.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      (* Same aggregate verified concurrently from every domain — the
         atomic verdict memo and DLS mask memo must give one answer. *)
      let oks =
        Exec.Pool.submit_batch p
          (List.init 64 (fun i () ->
               if i mod 2 = 0 then Crypto.Threshold.verify setup agg msg
               else not (Crypto.Threshold.verify setup forged msg)))
      in
      List.iter (fun f -> checkb "verdict" true (Exec.Pool.await f)) oks;
      (* Shares too (leader path). *)
      let share_oks =
        Exec.Pool.submit_batch p
          (List.map (fun s () -> Crypto.Threshold.verify_share setup s msg) shares)
      in
      List.iter (fun f -> checkb "share verdict" true (Exec.Pool.await f)) share_oks)

let test_verify_facade_dispatchers_agree () =
  let pks, db = mk_db () in
  let rng = Sim.Rng.create 23L in
  let setup, keys = Crypto.Threshold.keygen rng ~threshold:2 ~parties:4 in
  let msg = "facade payload" in
  let shares = Array.to_list (Array.map (fun k -> Crypto.Threshold.sign_share k msg) keys) in
  let agg = Option.get (Crypto.Threshold.combine setup msg shares) in
  let job =
    Core.Verify.All
      [ Core.Verify.Datablock_check { pks; db };
        Core.Verify.Aggregate_check { setup; agg; msg };
        Core.Verify.Share_check { setup; share = List.hd shares; msg } ]
  in
  let bad_job =
    Core.Verify.All
      [ Core.Verify.Datablock_check { pks; db };
        Core.Verify.Aggregate_check
          { setup; agg = Crypto.Threshold.forge_attempt setup msg; msg } ]
  in
  checkb "run: all good" true (Core.Verify.run job);
  checkb "run: one bad poisons the batch" false (Core.Verify.run bad_job);
  let got = ref None in
  Core.Verify.inline job (fun ok -> got := Some ok);
  checkb "inline" (Some true = !got) true;
  let p = Exec.Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Exec.Pool.shutdown p)
    (fun () ->
      let got = ref None in
      Core.Verify.blocking p job (fun ok -> got := Some ok);
      checkb "blocking completes synchronously" (Some true = !got) true;
      let got = ref None in
      Core.Verify.blocking p bad_job (fun ok -> got := Some ok);
      checkb "blocking bad" (Some false = !got) true;
      let got = ref None in
      Core.Verify.pooled p job (fun ok -> got := Some ok);
      checkb "pooled never synchronous" (None = !got) true;
      let rec drain_until deadline =
        ignore (Exec.Pool.drain p : int);
        if !got = None && Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.001;
          drain_until deadline
        end
      in
      drain_until (Unix.gettimeofday () +. 5.);
      checkb "pooled delivers at drain" (Some true = !got) true)

let () =
  Alcotest.run "exec"
    [ ( "pool",
        [ Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "batch order" `Quick test_submit_batch_order;
          Alcotest.test_case "await re-raises" `Quick test_await_reraises;
          Alcotest.test_case "async only at drain" `Quick test_async_delivered_only_at_drain;
          Alcotest.test_case "async_all order + notify fd" `Quick
            test_async_all_order_and_notify_fd;
          Alcotest.test_case "backpressure inline fallback" `Quick
            test_backpressure_runs_inline;
          Alcotest.test_case "stats" `Quick test_stats_sanity;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent ] );
      ( "parallel verification",
        [ Alcotest.test_case "corrupted block rejected everywhere" `Quick
            test_corrupted_block_rejected_from_every_domain;
          Alcotest.test_case "threshold verdicts agree" `Quick
            test_threshold_verdicts_agree_across_domains;
          Alcotest.test_case "facade dispatchers agree" `Quick
            test_verify_facade_dispatchers_agree ] ) ]
