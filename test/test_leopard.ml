(* Integration tests: full Leopard clusters on the simulated network.

   Safety (Theorem 5.3) and liveness (Theorem 5.4) are checked end-to-end
   under honest runs, silent/equivocating/censoring Byzantine replicas,
   leader failure with view change, and pre-GST adversarial delays. *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A small, fast cluster configuration: liveness tails are flushed by the
   partial-pack and short-timer paths. *)
let small_cfg ?(n = 4) ?(k = 16) ?(view_timeout = Sim_time.s 2) () =
  Core.Config.make ~n ~alpha:10 ~bft_size:2 ~k ~payload:64
    ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 300) ~view_timeout
    ~fetch_grace:(Sim_time.ms 200) ~cost:Crypto.Cost_model.free ()

let run_spec ?(load = 400.) ?(duration = 12) ?(load_until = 6) ?byzantine ?stop_leader_at
    ?client_resend_timeout ?gst ?(seed = 42L) ?verify_domains cfg =
  Core.Runner.spec ~cfg ~seed ~load ~duration:(Sim_time.s duration)
    ~warmup:(Sim_time.s 2) ~load_until:(Sim_time.s load_until)
    ?byzantine ?stop_leader_at ?client_resend_timeout ?gst ?verify_domains ()

(* -- Honest runs -------------------------------------------------------------- *)

let test_honest_liveness_and_safety () =
  let r = Core.Runner.run (run_spec (small_cfg ())) in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "all requests confirmed" true r.Core.Runner.all_confirmed;
  checki "confirmed = offered" r.Core.Runner.offered r.Core.Runner.confirmed;
  checkb "throughput positive" true (r.Core.Runner.throughput > 0.);
  checkb "blocks executed" true (r.Core.Runner.executed_blocks > 0);
  checki "no view change" 1 r.Core.Runner.final_view;
  checkb "latency recorded" true (Stats.Histogram.count r.Core.Runner.latency > 0)

let test_honest_larger_cluster () =
  let r = Core.Runner.run (run_spec ~load:2000. (small_cfg ~n:13 ())) in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "liveness" true r.Core.Runner.all_confirmed

let test_deterministic_replay () =
  let a = Core.Runner.run (run_spec ~seed:7L (small_cfg ())) in
  let b = Core.Runner.run (run_spec ~seed:7L (small_cfg ())) in
  checki "same confirmed" a.Core.Runner.confirmed b.Core.Runner.confirmed;
  checki "same blocks" a.Core.Runner.executed_blocks b.Core.Runner.executed_blocks;
  checki "same leader bytes" a.Core.Runner.leader.Core.Runner.sent_bytes
    b.Core.Runner.leader.Core.Runner.sent_bytes

(* Stronger than spot-checking a few fields: two runs of the same spec
   and seed must produce reports that are indistinguishable down to the
   last histogram bucket and bandwidth category (the report is pure data,
   so a marshalled byte comparison covers every field at once). Guards
   the event engine, heap, RNG and NIC rewrites against any source of
   nondeterminism. *)
let test_deterministic_report_bytes () =
  let spec = run_spec ~seed:13L ~client_resend_timeout:(Sim_time.s 1) (small_cfg ()) in
  let a = Core.Runner.run spec in
  let b = Core.Runner.run spec in
  checkb "byte-identical reports" true
    (String.equal (Marshal.to_string a []) (Marshal.to_string b []))

(* Metrics are observation-only: attaching a registry must not perturb
   the simulation in any way — the report stays byte-for-byte what the
   unobserved run produces, while the registry still captures the run
   (per-replica commit counters, the confirm-latency histogram). *)
let test_metrics_do_not_perturb_report () =
  let bare = run_spec ~seed:13L ~client_resend_timeout:(Sim_time.s 1) (small_cfg ()) in
  let reg = Obs.Registry.create () in
  let observed = { bare with Core.Runner.obs = Some reg } in
  let a = Core.Runner.run bare in
  let b = Core.Runner.run observed in
  checkb "observed run byte-identical to bare run" true
    (String.equal (Marshal.to_string a []) (Marshal.to_string b []));
  let text = Obs.Registry.expose reg in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  checkb "registry saw replica commits" true (contains "leopard_replica_commits_total");
  checkb "registry saw confirmations" true (contains "leopard_confirm_latency_ns_count");
  checkb "confirm histogram non-empty" true
    (not (contains "leopard_confirm_latency_ns_count 0\n"))

(* Determinism under parallelism: routing the heavy crypto through an
   Exec.Pool of 1, 2 or 4 worker domains (Verify.blocking dispatch) must
   leave the report byte-for-byte what the inline run produces — the
   workers compute the same pure verdicts, and completion points are
   unchanged. Any cross-domain leak (memo tearing, event reordering)
   shows up as a byte difference here. *)
let test_pool_size_determinism () =
  let report_bytes verify_domains =
    let spec =
      run_spec ~seed:13L ~client_resend_timeout:(Sim_time.s 1) ?verify_domains (small_cfg ())
    in
    Marshal.to_string (Core.Runner.run spec) []
  in
  let inline = report_bytes None in
  List.iter
    (fun d ->
      checkb
        (Printf.sprintf "%d-domain pool byte-identical to inline" d)
        true
        (String.equal inline (report_bytes (Some d))))
    [ 1; 2; 4 ]

let test_latency_breakdown_components () =
  let r = Core.Runner.run (run_spec (small_cfg ())) in
  let names = List.map fst r.Core.Runner.stage_seconds in
  List.iter
    (fun c -> checkb (c ^ " present") true (List.mem c names))
    [ "Datablock Generation"; "Datablock Delivery"; "Agreement"; "Response to Client" ]

let test_bandwidth_accounting_shape () =
  let r = Core.Runner.run (run_spec (small_cfg ())) in
  let recv = r.Core.Runner.leader.Core.Runner.received_by_category in
  let datablock_bytes = try List.assoc "datablock" recv with Not_found -> 0 in
  checkb "leader receives datablocks" true (datablock_bytes > 0);
  let sent = r.Core.Runner.leader.Core.Runner.sent_by_category in
  checkb "leader sends proposals" true (List.mem_assoc "proposal" sent);
  (* The decoupling: the leader's proposal egress stays below the
     datablock volume it ingests (β/α of the payload at real α; the
     margin is modest at this test's tiny α = 10). *)
  let proposal_bytes = List.assoc "proposal" sent in
  checkb "proposals smaller than datablocks" true (proposal_bytes < datablock_bytes)

(* -- Byzantine: silent (omission) ------------------------------------------------ *)

let test_silent_f_still_live () =
  let cfg = small_cfg ~n:7 () in
  let r = Core.Runner.run (run_spec ~load:800. ~byzantine:(Core.Runner.silent_f cfg) cfg) in
  checkb "safety with f silent" true r.Core.Runner.safety_ok;
  checkb "liveness with f silent" true r.Core.Runner.all_confirmed

let test_too_many_silent_stalls () =
  (* f + 1 silent replicas exceed the resilience bound: no progress (but
     never a safety violation). *)
  let cfg = small_cfg ~n:4 () in
  let byzantine = [ (2, Core.Byzantine.Silent); (3, Core.Byzantine.Silent) ] in
  let r = Core.Runner.run (run_spec ~byzantine cfg) in
  checki "nothing confirmed" 0 r.Core.Runner.confirmed;
  checkb "safety still holds" true r.Core.Runner.safety_ok

(* -- Byzantine: equivocating datablocks ------------------------------------------ *)

let test_equivocator_detected_and_contained () =
  let cfg = small_cfg ~n:4 () in
  let r =
    Core.Runner.run
      (run_spec ~duration:16
         ~byzantine:[ (0, Core.Byzantine.Equivocate_datablocks) ]
         ~client_resend_timeout:(Sim_time.s 1) cfg)
  in
  checkb "safety under equivocation" true r.Core.Runner.safety_ok;
  checkb "equivocation evidence collected" true (r.Core.Runner.equivocations_detected > 0);
  checkb "liveness via re-sends" true r.Core.Runner.all_confirmed

(* -- Byzantine: censorship -------------------------------------------------------- *)

let test_censor_defeated_by_resend () =
  let cfg = small_cfg ~n:4 () in
  let r =
    Core.Runner.run
      (run_spec ~duration:16 ~byzantine:[ (0, Core.Byzantine.Censor) ]
         ~client_resend_timeout:(Sim_time.s 1) cfg)
  in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "censored requests recovered" true r.Core.Runner.all_confirmed

let test_censor_without_resend_loses () =
  (* A resend timeout longer than the run means clients do target the
     censor (they cannot tell it is Byzantine) but never re-send. *)
  let cfg = small_cfg ~n:4 () in
  let r =
    Core.Runner.run
      (run_spec ~byzantine:[ (0, Core.Byzantine.Censor) ]
         ~client_resend_timeout:(Sim_time.s 3600) cfg)
  in
  checkb "some requests censored" false r.Core.Runner.all_confirmed;
  checkb "others still confirm" true (r.Core.Runner.confirmed > 0)

(* -- View change ------------------------------------------------------------------- *)

let test_view_change_on_leader_failure () =
  let cfg = small_cfg ~n:4 ~view_timeout:(Sim_time.s 1) () in
  let r =
    Core.Runner.run
      (run_spec ~duration:25 ~load_until:10 ~stop_leader_at:(Sim_time.s 4)
         ~client_resend_timeout:(Sim_time.s 1) cfg)
  in
  checkb "entered a later view" true (r.Core.Runner.final_view >= 2);
  checkb "safety across views" true r.Core.Runner.safety_ok;
  checkb "liveness restored by new leader" true r.Core.Runner.all_confirmed;
  (match r.Core.Runner.vc_trigger_to_entry with
   | Some seconds -> checkb "view change completes in seconds" true (seconds < 15.)
   | None -> Alcotest.fail "view-change duration not measured");
  checkb "view-change bytes accounted" true (r.Core.Runner.vc_bytes > 0)

let test_view_change_crash_strategy () =
  (* Crash via the Byzantine strategy rather than the runner switch. *)
  let cfg = small_cfg ~n:4 ~view_timeout:(Sim_time.s 1) () in
  let leader = Core.Config.leader_of_view cfg 1 in
  let r =
    Core.Runner.run
      (run_spec ~duration:25 ~load_until:10
         ~byzantine:[ (leader, Core.Byzantine.Crash_at (Sim_time.s 4)) ]
         ~client_resend_timeout:(Sim_time.s 1) cfg)
  in
  checkb "view advanced" true (r.Core.Runner.final_view >= 2);
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "liveness" true r.Core.Runner.all_confirmed

let test_two_consecutive_leader_failures () =
  (* Leaders of views 1 and 2 both crash: two view changes are needed. *)
  let cfg = small_cfg ~n:7 ~view_timeout:(Sim_time.s 1) () in
  let l1 = Core.Config.leader_of_view cfg 1 in
  let l2 = Core.Config.leader_of_view cfg 2 in
  let r =
    Core.Runner.run
      (run_spec ~duration:35 ~load_until:8 ~load:500.
         ~byzantine:
           [ (l1, Core.Byzantine.Crash_at (Sim_time.s 3));
             (l2, Core.Byzantine.Crash_at (Sim_time.s 3)) ]
         ~client_resend_timeout:(Sim_time.s 1) cfg)
  in
  checkb "reached view 3+" true (r.Core.Runner.final_view >= 3);
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "liveness" true r.Core.Runner.all_confirmed

(* -- Partial synchrony --------------------------------------------------------------- *)

let test_pre_gst_reordering_safe_and_live () =
  let cfg = small_cfg ~n:4 () in
  let r =
    Core.Runner.run (run_spec ~duration:20 ~load_until:8 ~gst:(Sim_time.s 5) cfg)
  in
  checkb "safety through asynchrony" true r.Core.Runner.safety_ok;
  checkb "liveness after GST" true r.Core.Runner.all_confirmed

let prop_safety_under_random_faults =
  QCheck.Test.make ~name:"safety holds for random seeds and fault mixes" ~count:8
    QCheck.(pair int64 (int_range 0 2))
    (fun (seed, mix) ->
      let cfg = small_cfg ~n:7 () in
      let byzantine =
        match mix with
        | 0 -> Core.Runner.silent_f cfg
        | 1 -> [ (2, Core.Byzantine.Equivocate_datablocks); (3, Core.Byzantine.Silent) ]
        | _ -> [ (2, Core.Byzantine.Censor); (3, Core.Byzantine.Crash_at (Sim_time.s 3)) ]
      in
      let r =
        Core.Runner.run
          (run_spec ~seed ~duration:10 ~load_until:5 ~load:600. ~byzantine
             ~client_resend_timeout:(Sim_time.s 1) cfg)
      in
      r.Core.Runner.safety_ok)

(* -- Protocol internals through the incremental interface ----------------------------- *)

let test_watermarks_bound_parallelism () =
  let cfg = small_cfg ~n:4 ~k:4 () in
  let t = Core.Runner.create (run_spec ~load:2000. cfg) in
  Core.Runner.run_until t (Sim_time.s 6);
  let leader = Core.Config.leader_of_view cfg 1 in
  let r = (Core.Runner.replicas t).(leader) in
  let highest = Core.Ledger.highest_confirmed (Core.Replica.ledger r) in
  let lw = Core.Replica.low_watermark r in
  checkb "confirmed serials within window of lw" true (highest <= lw + cfg.Core.Config.k)

let test_checkpoints_advance_watermark () =
  let cfg = small_cfg ~n:4 ~k:8 () in
  let t = Core.Runner.create (run_spec ~load:2000. ~duration:12 ~load_until:10 cfg) in
  Core.Runner.run_until t (Sim_time.s 12);
  let r = (Core.Runner.replicas t).(0) in
  checkb "lw advanced by checkpoints" true (Core.Replica.low_watermark r > 0)

let test_notar_cache_bounded () =
  (* The verified-notarization cache is the one table-shaped memo in the
     replica; view changes feed it, and the cap must hold afterwards. *)
  let cfg = small_cfg ~n:4 ~view_timeout:(Sim_time.s 1) () in
  let t =
    Core.Runner.create
      (run_spec ~duration:20 ~load_until:8 ~stop_leader_at:(Sim_time.s 4)
         ~client_resend_timeout:(Sim_time.s 1) cfg)
  in
  Core.Runner.run_until t (Sim_time.s 20);
  let seen = ref 0 in
  Array.iter
    (fun r ->
      let len = Core.Replica.notar_cache_len r in
      seen := !seen + len;
      checkb "notar cache within cap" true (len <= Core.Replica.notar_cache_cap))
    (Core.Runner.replicas t);
  checkb "view change exercised the cache" true (!seen > 0)

let test_state_hash_agreement () =
  let cfg = small_cfg ~n:4 () in
  let t = Core.Runner.create (run_spec cfg) in
  Core.Runner.run_until t (Sim_time.s 12);
  let replicas = Core.Runner.replicas t in
  let executed = Array.map (fun r -> Core.Ledger.executed_up_to (Core.Replica.ledger r)) replicas in
  let all_equal = Array.for_all (fun e -> e = executed.(0)) executed in
  if all_equal then begin
    let h0 = Core.Replica.state_hash replicas.(0) in
    Array.iter
      (fun r -> checkb "state hashes agree" true (Crypto.Hash.equal h0 (Core.Replica.state_hash r)))
      replicas
  end

let test_datablock_generation_excludes_leader () =
  let cfg = small_cfg ~n:4 () in
  let t = Core.Runner.create (run_spec cfg) in
  Core.Runner.run_until t (Sim_time.s 8);
  let leader = Core.Config.leader_of_view cfg 1 in
  checki "leader generates no datablocks" 0
    (Core.Replica.datablocks_created (Core.Runner.replicas t).(leader));
  checkb "non-leader generates datablocks" true
    (Core.Replica.datablocks_created (Core.Runner.replicas t).((leader + 1) mod 4) > 0)

let test_equivocator_punished () =
  let cfg =
    Core.Config.make ~n:4 ~alpha:10 ~bft_size:2 ~k:16 ~payload:64
      ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 300)
      ~view_timeout:(Sim_time.s 2) ~cost:Crypto.Cost_model.free ~punish_equivocators:true ()
  in
  let t =
    Core.Runner.create
      (run_spec ~duration:16
         ~byzantine:[ (0, Core.Byzantine.Equivocate_datablocks) ]
         ~client_resend_timeout:(Sim_time.s 1) cfg)
  in
  Core.Runner.run_until t (Sim_time.s 16);
  let r = Core.Runner.report t in
  checkb "safety" true r.Core.Runner.safety_ok;
  (* every honest replica that saw both variants kicked the creator out *)
  let punishers =
    List.filter
      (fun id -> List.mem 0 (Core.Replica.punished (Core.Runner.replicas t).(id)))
      (Core.Runner.honest_ids t)
  in
  checkb "someone punished the equivocator" true (punishers <> []);
  checkb "liveness (re-sends route around the outcast)" true r.Core.Runner.all_confirmed

let test_client_fanout_counts_once () =
  (* s = 3: every batch lands at three replicas; duplicates confirm but
     each request is counted once. *)
  let cfg =
    Core.Config.make ~n:7 ~alpha:10 ~bft_size:2 ~k:16 ~payload:64 ~s:3
      ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 300)
      ~cost:Crypto.Cost_model.free ()
  in
  let r = Core.Runner.run (run_spec ~load:600. cfg) in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "no double counting" true (r.Core.Runner.confirmed <= r.Core.Runner.offered);
  checkb "liveness" true r.Core.Runner.all_confirmed

let test_pure_algorithm1_packing () =
  (* datablock_timeout = 0: datablocks carry exactly >= alpha requests
     (no partial packs). Steady state must still confirm. *)
  let cfg =
    Core.Config.make ~n:4 ~alpha:20 ~bft_size:2 ~k:16 ~payload:64 ~datablock_timeout:0L
      ~proposal_timeout:0L ~cost:Crypto.Cost_model.free ()
  in
  let r = Core.Runner.run (run_spec ~load:2000. ~duration:10 ~load_until:10 cfg) in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "steady-state throughput" true (r.Core.Runner.throughput > 1000.)

let test_lagging_replica_catches_up () =
  (* Replica 3 is isolated by the adversary for 6 s; checkpoints bring it
     back via state transfer and the cluster never stalls. *)
  let cfg = small_cfg ~n:4 () in
  let t = Core.Runner.create (run_spec ~duration:16 ~load_until:8 cfg) in
  let rng = Rng.split (Engine.rng (Core.Runner.engine t)) in
  Net.Network.set_extra_delay (Core.Runner.network t)
    (Net.Partial_sync.combine
       [ Net.Partial_sync.target_node ~gst:(Sim_time.s 6) ~victim:3 ~delay:(Sim_time.s 2);
         Net.Partial_sync.until_gst ~rng ~gst:Sim_time.zero ~max_delay:0L ]);
  Core.Runner.run_until t (Sim_time.s 16);
  let r = Core.Runner.report t in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "liveness" true r.Core.Runner.all_confirmed;
  let lagger = (Core.Runner.replicas t).(3) in
  checkb "lagger caught up" true
    (Core.Ledger.executed_up_to (Core.Replica.ledger lagger) > 0)

let test_optimistic_responsiveness () =
  (* §5.2: with an honest leader after GST, confirmation latency is a
     small multiple of the actual network delay δ (~7δ), not of any
     timeout. Run with instant packing (α = 1 request) at two values of
     δ and check the latency is a one-digit multiple of δ that scales
     with it. *)
  let run delta_ms =
    let cfg =
      Core.Config.make ~n:4 ~alpha:1 ~bft_size:1 ~k:64 ~payload:64
        ~proposal_timeout:(Sim_time.ms 1) ~cost:Crypto.Cost_model.free ()
    in
    let link =
      Net.Network.
        { out_bps = 1e9; in_bps = 1e9; prop_delay = Sim_time.ms delta_ms; jitter = 0L; lanes = 1 }
    in
    let sp =
      Core.Runner.spec ~cfg ~link ~load:50. ~duration:(Sim_time.s 10) ~warmup:(Sim_time.s 1)
        ~load_until:(Sim_time.s 8) ()
    in
    let r = Core.Runner.run sp in
    checkb "safety" true r.Core.Runner.safety_ok;
    Stats.Histogram.quantile r.Core.Runner.latency 0.5
  in
  let lat10 = run 10 and lat40 = run 40 in
  checkb "latency is a few delta (10ms)" true (lat10 > 0.03 && lat10 < 0.1);
  checkb "latency is a few delta (40ms)" true (lat40 > 0.12 && lat40 < 0.4);
  checkb "scales with delta, not with a timeout" true (lat40 > 2.5 *. lat10)

let test_single_channel_still_correct () =
  (* The ablation knob must not affect correctness, only performance. *)
  let cfg =
    Core.Config.make ~n:4 ~alpha:10 ~bft_size:2 ~payload:64
      ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 300)
      ~fetch_grace:(Sim_time.ms 200) ~cost:Crypto.Cost_model.free ~priority_channels:false ()
  in
  let r = Core.Runner.run (run_spec cfg) in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "liveness" true r.Core.Runner.all_confirmed

let test_leader_generates_datablocks_still_correct () =
  let cfg =
    Core.Config.make ~n:4 ~alpha:10 ~bft_size:2 ~payload:64
      ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 300)
      ~fetch_grace:(Sim_time.ms 200) ~cost:Crypto.Cost_model.free
      ~leader_generates_datablocks:true ()
  in
  let t = Core.Runner.create (run_spec cfg) in
  Core.Runner.run_until t (Sim_time.s 12);
  let r = Core.Runner.report t in
  checkb "safety" true r.Core.Runner.safety_ok;
  checkb "liveness" true r.Core.Runner.all_confirmed;
  let leader = Core.Config.leader_of_view cfg 1 in
  checkb "leader produced datablocks" true
    (Core.Replica.datablocks_created (Core.Runner.replicas t).(leader) > 0)

(* -- Durable store: the sim-plane side of PR 8 --------------------------- *)

(* Wiring in-memory durable stores must not perturb the protocol at all:
   the sink is written to synchronously off the hot path and never read
   until a recovery. Pinned as a full-report byte comparison, like the
   verify-pool determinism test above. *)
let test_mem_store_report_identical () =
  let bytes stores =
    let spec =
      Core.Runner.spec ~cfg:(small_cfg ()) ~seed:13L ~load:400.
        ~duration:(Sim_time.s 12) ~warmup:(Sim_time.s 2) ~load_until:(Sim_time.s 6)
        ~client_resend_timeout:(Sim_time.s 1) ?stores ()
    in
    Marshal.to_string (Core.Runner.run spec) []
  in
  let without = bytes None in
  let with_mem = bytes (Some (Array.init 4 (fun _ -> Core.Store.mem ()))) in
  checkb "mem-store report byte-identical to null-store" true
    (String.equal without with_mem)

(* The vote-safety heart of recovery: restart a replica after it emitted
   a prepare share (and before the notarization settles), then re-deliver
   the same proposal. The recovered replica must answer with the very
   same share — deterministic threshold shares make the repeat vote
   bit-identical, so no equivocation evidence can form against it. *)
let test_restart_resends_same_share () =
  let stores = Array.init 4 (fun _ -> Core.Store.mem ()) in
  let spec =
    Core.Runner.spec ~cfg:(small_cfg ()) ~seed:21L ~load:400.
      ~duration:(Sim_time.s 12) ~warmup:(Sim_time.s 1) ~load_until:(Sim_time.s 8)
      ~stores ()
  in
  let t = Core.Runner.create spec in
  let network = Core.Runner.network t in
  let victim = 0 in
  let leader = 1 in
  let votes : (int, Crypto.Threshold.share list) Hashtbl.t = Hashtbl.create 16 in
  let proposes : (int, Core.Msg.t) Hashtbl.t = Hashtbl.create 16 in
  Net.Network.set_fault_hook network (fun ~now:_ ~src ~dst msg ->
      (match msg with
      | Core.Msg.Prepare_vote { sn; share; _ } when src = victim ->
        Hashtbl.replace votes sn
          (share :: Option.value ~default:[] (Hashtbl.find_opt votes sn))
      | Core.Msg.Propose { block; _ } when dst = victim ->
        Hashtbl.replace proposes block.Core.Bftblock.sn msg
      | _ -> ());
      Net.Network.Pass);
  (* Advance in small steps until the victim has voted on a proposal we
     captured — mid-agreement, before that serial's checkpoint. *)
  let cursor = ref Sim_time.zero in
  let voted_sn () =
    Hashtbl.fold
      (fun sn _ acc ->
        if Hashtbl.mem proposes sn then Some sn else acc)
      votes None
  in
  while voted_sn () = None && Sim_time.compare !cursor (Sim_time.s 8) < 0 do
    cursor := Sim_time.(!cursor + ms 250);
    Core.Runner.run_until t !cursor
  done;
  let sn =
    match voted_sn () with
    | Some sn -> sn
    | None -> Alcotest.fail "victim never voted within 8 simulated seconds"
  in
  let shares_before = Hashtbl.find votes sn in
  (* Process restart: in-memory agreement state is gone, the store
     remains. *)
  Core.Runner.restart_replica t victim;
  Net.Network.send network ~src:leader ~dst:victim (Hashtbl.find proposes sn);
  cursor := Sim_time.(!cursor + s 1);
  Core.Runner.run_until t !cursor;
  let shares_after = Hashtbl.find votes sn in
  Net.Network.clear_fault_hook network;
  checkb "recovered replica re-voted" true
    (List.length shares_after > List.length shares_before);
  let raw = Crypto.Threshold.share_raw in
  List.iter
    (fun s ->
      checkb "every share for the serial is bit-identical" true
        (raw s = raw (List.hd shares_before)))
    shares_after;
  (* And the cluster as a whole never collected double-vote evidence. *)
  Array.iter
    (fun r ->
      checki "no equivocation evidence" 0
        (List.length (Core.Datablock_pool.equivocations (Core.Replica.pool r))))
    (Core.Runner.replicas t)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "leopard"
    [ ( "honest",
        [ Alcotest.test_case "liveness & safety" `Quick test_honest_liveness_and_safety;
          Alcotest.test_case "larger cluster" `Slow test_honest_larger_cluster;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
          Alcotest.test_case "byte-identical reports" `Quick test_deterministic_report_bytes;
          Alcotest.test_case "metrics observation-only (byte-identical)" `Quick
            test_metrics_do_not_perturb_report;
          Alcotest.test_case "pool sizes 1/2/4 byte-identical" `Quick
            test_pool_size_determinism;
          Alcotest.test_case "latency breakdown" `Quick test_latency_breakdown_components;
          Alcotest.test_case "bandwidth shape" `Quick test_bandwidth_accounting_shape ] );
      ( "silent faults",
        [ Alcotest.test_case "f silent live" `Quick test_silent_f_still_live;
          Alcotest.test_case "f+1 silent stalls safely" `Quick test_too_many_silent_stalls ] );
      ( "equivocation",
        [ Alcotest.test_case "detected & contained" `Quick test_equivocator_detected_and_contained;
          Alcotest.test_case "punished (kicked out)" `Quick test_equivocator_punished ] );
      ( "extensions",
        [ Alcotest.test_case "client fanout s=3 counts once" `Quick
            test_client_fanout_counts_once;
          Alcotest.test_case "pure Algorithm 1 packing" `Quick test_pure_algorithm1_packing;
          Alcotest.test_case "lagging replica catches up" `Quick
            test_lagging_replica_catches_up;
          Alcotest.test_case "optimistic responsiveness" `Quick
            test_optimistic_responsiveness;
          Alcotest.test_case "single channel still correct" `Quick
            test_single_channel_still_correct;
          Alcotest.test_case "leader-generates still correct" `Quick
            test_leader_generates_datablocks_still_correct ] );
      ( "censorship",
        [ Alcotest.test_case "defeated by re-send" `Quick test_censor_defeated_by_resend;
          Alcotest.test_case "without re-send loses" `Quick test_censor_without_resend_loses ] );
      ( "view change",
        [ Alcotest.test_case "leader failure" `Quick test_view_change_on_leader_failure;
          Alcotest.test_case "crash strategy" `Quick test_view_change_crash_strategy;
          Alcotest.test_case "two consecutive failures" `Slow test_two_consecutive_leader_failures ] );
      ( "partial synchrony",
        [ Alcotest.test_case "pre-GST reordering" `Quick test_pre_gst_reordering_safe_and_live ]
        @ qsuite [ prop_safety_under_random_faults ] );
      ( "durable store",
        [ Alcotest.test_case "mem store keeps reports byte-identical" `Quick
            test_mem_store_report_identical;
          Alcotest.test_case "restart re-sends the same prepare share" `Quick
            test_restart_resends_same_share ] );
      ( "internals",
        [ Alcotest.test_case "watermarks bound parallelism" `Quick test_watermarks_bound_parallelism;
          Alcotest.test_case "checkpoints advance lw" `Quick test_checkpoints_advance_watermark;
          Alcotest.test_case "state hash agreement" `Quick test_state_hash_agreement;
          Alcotest.test_case "notar cache bounded" `Quick test_notar_cache_bounded;
          Alcotest.test_case "leader excluded from datablocks" `Quick
            test_datablock_generation_excludes_leader ] ) ]
