(* Obs: the unified metrics registry. Counter/gauge/histogram semantics,
   idempotent registration, multi-domain histogram hammering (the DLS
   shards must merge losslessly), collect hooks, and the exposition
   format — including the guarantee the sim plane leans on: scraping is
   read-only, so two scrapes of an idle registry are byte-identical. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* -- instrument semantics ----------------------------------------------- *)

let test_counter () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "c_total" in
  checki "fresh" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr c;
  Obs.Counter.add c 40;
  checki "incr+add" 42 (Obs.Counter.value c);
  Obs.Counter.mirror c 7;
  checki "mirror overwrites" 7 (Obs.Counter.value c)

let test_gauge () =
  let reg = Obs.Registry.create () in
  let g = Obs.Registry.gauge reg "g" in
  checki "fresh" 0 (Obs.Gauge.value g);
  Obs.Gauge.set g 17;
  Obs.Gauge.add g (-20);
  checki "set+add goes negative" (-3) (Obs.Gauge.value g)

let test_histogram_buckets () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "h_ns" in
  checki "fresh count" 0 (Obs.Histogram.count h);
  (* bucket b holds [2^b, 2^(b+1)): 0,1 -> b0; 2,3 -> b1; 4..7 -> b2 *)
  List.iter (Obs.Histogram.record h) [ 0; 1; 2; 3; 4; 7; 8; 1024; -5 ];
  checki "count" 9 (Obs.Histogram.count h);
  checki "sum (negatives clamp to 0)" (0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024 + 0)
    (Obs.Histogram.sum h);
  let b = Obs.Histogram.buckets h in
  checki "bucket 0 = {0,1,clamped -5}" 3 b.(0);
  checki "bucket 1 = {2,3}" 2 b.(1);
  checki "bucket 2 = {4,7}" 2 b.(2);
  checki "bucket 3 = {8}" 1 b.(3);
  checki "bucket 10 = {1024}" 1 b.(10)

let test_histogram_multidomain () =
  let reg = Obs.Registry.create () in
  let h = Obs.Registry.histogram reg "hammer_ns" in
  let per_domain = 100_000 in
  let hammer () =
    for i = 1 to per_domain do
      Obs.Histogram.record h (i land 1023)
    done
  in
  let ds = Array.init 4 (fun _ -> Domain.spawn hammer) in
  hammer ();
  Array.iter Domain.join ds;
  (* 5 domains (4 spawned + this one), no lost updates across shards *)
  checki "merged count" (5 * per_domain) (Obs.Histogram.count h);
  let expect_sum = ref 0 in
  for i = 1 to per_domain do
    expect_sum := !expect_sum + (i land 1023)
  done;
  checki "merged sum" (5 * !expect_sum) (Obs.Histogram.sum h);
  checki "merged buckets total" (5 * per_domain)
    (Array.fold_left ( + ) 0 (Obs.Histogram.buckets h))

(* -- registry ----------------------------------------------------------- *)

let test_idempotent_registration () =
  let reg = Obs.Registry.create () in
  let c1 = Obs.Registry.counter reg ~labels:[ ("id", "3") ] "c_total" in
  let c2 = Obs.Registry.counter reg ~labels:[ ("id", "3") ] "c_total" in
  Obs.Counter.incr c1;
  Obs.Counter.incr c2;
  (* same name+labels = the same instrument (replica recovery re-attaches) *)
  checki "one instrument" 2 (Obs.Counter.value c1);
  let c3 = Obs.Registry.counter reg ~labels:[ ("id", "4") ] "c_total" in
  checki "different labels, fresh instrument" 0 (Obs.Counter.value c3);
  checkb "kind mismatch raises" true
    (try
       ignore (Obs.Registry.gauge reg ~labels:[ ("id", "3") ] "c_total");
       false
     with Invalid_argument _ -> true)

let test_collect_hook () =
  let reg = Obs.Registry.create () in
  let g = Obs.Registry.gauge reg "depth" in
  let c = Obs.Registry.counter reg "mirrored_total" in
  let source = ref 0 in
  Obs.Registry.on_collect reg (fun () ->
      Obs.Gauge.set g !source;
      Obs.Counter.mirror c (!source * 10));
  source := 5;
  let text = Obs.Registry.expose reg in
  checkb "gauge refreshed at scrape" true
    (String.length text > 0
    && Obs.Gauge.value g = 5
    && Obs.Counter.value c = 50);
  source := 9;
  ignore (Obs.Registry.expose reg : string);
  checki "hook re-runs each scrape" 9 (Obs.Gauge.value g)

(* -- exposition --------------------------------------------------------- *)

let test_expose_golden () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg ~help:"Things done." "things_total" in
  let g = Obs.Registry.gauge reg "depth" in
  let c2 = Obs.Registry.counter reg ~labels:[ ("id", "1") ] "acks_total" in
  let h = Obs.Registry.histogram reg "lat_ns" in
  Obs.Counter.add c 3;
  Obs.Gauge.set g 7;
  Obs.Counter.incr c2;
  List.iter (Obs.Histogram.record h) [ 1; 2; 5 ];
  let expected =
    String.concat "\n"
      [ "# TYPE acks_total counter";
        "acks_total{id=\"1\"} 1";
        "# TYPE depth gauge";
        "depth 7";
        "# TYPE lat_ns histogram";
        "lat_ns_bucket{le=\"1\"} 1";
        "lat_ns_bucket{le=\"3\"} 2";
        "lat_ns_bucket{le=\"7\"} 3";
        "lat_ns_bucket{le=\"+Inf\"} 3";
        "lat_ns_sum 8";
        "lat_ns_count 3";
        "# HELP things_total Things done.";
        "# TYPE things_total counter";
        "things_total 3";
        "" ]
  in
  checks "golden exposition" expected (Obs.Registry.expose reg)

let test_expose_idempotent () =
  let reg = Obs.Registry.create () in
  let c = Obs.Registry.counter reg "events_total" in
  let h = Obs.Registry.histogram reg ~labels:[ ("id", "0") ] "lat_ns" in
  Obs.Counter.add c 11;
  List.iter (Obs.Histogram.record h) [ 3; 9; 27; 81 ];
  let a = Obs.Registry.expose reg in
  let b = Obs.Registry.expose reg in
  checks "scrape is read-only: two idle scrapes byte-identical" a b

let test_dump_file () =
  let path = Filename.temp_file "obs" ".prom" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let reg = Obs.Registry.create () in
      Obs.Counter.add (Obs.Registry.counter reg "x_total") 5;
      Obs.Registry.dump_file reg path;
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      checks "dump = expose" (Obs.Registry.expose reg) text)

let () =
  Alcotest.run "obs"
    [ ( "instruments",
        [ Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram 5-domain hammer" `Quick test_histogram_multidomain ] );
      ( "registry",
        [ Alcotest.test_case "idempotent registration" `Quick test_idempotent_registration;
          Alcotest.test_case "collect hook" `Quick test_collect_hook ] );
      ( "exposition",
        [ Alcotest.test_case "golden output" `Quick test_expose_golden;
          Alcotest.test_case "idempotent scrape" `Quick test_expose_idempotent;
          Alcotest.test_case "dump file" `Quick test_dump_file ] ) ]
