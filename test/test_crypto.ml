(* Unit and property tests for the crypto toolkit. *)

module H = Crypto.Hash
module F = Crypto.Field

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let checki = Alcotest.(check int)

(* -- SHA-256 against the RFC 6234 / FIPS 180-4 vectors ------------------- *)

let sha_hex s = Crypto.Sha256.to_hex (Crypto.Sha256.digest_string s)

let test_sha256_vectors () =
  checks "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" (sha_hex "");
  checks "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" (sha_hex "abc");
  checks "two blocks"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (sha_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  checks "448 bits + 1"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (sha_hex "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
              ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha256_million_a () =
  let ctx = Crypto.Sha256.init () in
  let chunk = Bytes.make 1000 'a' in
  for _ = 1 to 1000 do
    Crypto.Sha256.feed_bytes ctx chunk
  done;
  checks "1M a's" "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.to_hex (Crypto.Sha256.finalize ctx))

let test_sha256_1mib_pattern () =
  (* 1 MiB of a repeating 8-byte pattern, exercising the multi-block
     one-shot fast path; expected digest captured from the seed
     implementation before the unrolled rewrite. *)
  let pattern = "abcdefgh" in
  let data = String.concat "" (List.init (1_048_576 / 8) (fun _ -> pattern)) in
  checks "1MiB abcdefgh"
    "fbe8fc990d4770b55fcedfa0bf160fc168c322cb214e4786c173de06aecbd875" (sha_hex data)

let test_sha256_chunked_feeds () =
  (* Adversarial chunk sizes around the 64-byte block boundary must agree
     with the one-shot digest for every message length near the padding
     boundaries. *)
  let digest_chunked chunk s =
    let ctx = Crypto.Sha256.init () in
    let n = String.length s in
    let b = Bytes.unsafe_of_string s in
    let pos = ref 0 in
    while !pos < n do
      let len = min chunk (n - !pos) in
      Crypto.Sha256.feed_bytes ctx ~off:!pos ~len b;
      pos := !pos + len
    done;
    Crypto.Sha256.finalize ctx
  in
  List.iter
    (fun len ->
      let s = String.init len (fun i -> Char.chr ((i * 31 + len) land 0xff)) in
      let expect = Crypto.Sha256.digest_string s in
      List.iter
        (fun chunk ->
          checkb
            (Printf.sprintf "len %d chunk %d" len chunk)
            true
            (String.equal expect (digest_chunked chunk s)))
        [ 1; 63; 64; 65 ])
    [ 0; 1; 55; 56; 63; 64; 65; 119; 127; 128; 129; 200 ]

let prop_sha256_split_invariance =
  QCheck.Test.make ~name:"streaming = one-shot under any split" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 300)) small_nat)
    (fun (s, cut) ->
      let cut = if String.length s = 0 then 0 else cut mod (String.length s + 1) in
      let ctx = Crypto.Sha256.init () in
      Crypto.Sha256.feed_string ctx (String.sub s 0 cut);
      Crypto.Sha256.feed_string ctx (String.sub s cut (String.length s - cut));
      String.equal (Crypto.Sha256.finalize ctx) (Crypto.Sha256.digest_string s))

let test_hmac_rfc4231 () =
  (* RFC 4231 test case 2. *)
  let tag = Crypto.Sha256.hmac ~key:"Jefe" "what do ya want for nothing?" in
  checks "hmac tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Crypto.Sha256.to_hex tag);
  (* RFC 4231 test case 1: 20-byte 0x0b key. *)
  let tag1 = Crypto.Sha256.hmac ~key:(String.make 20 '\x0b') "Hi There" in
  checks "hmac tc1" "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Crypto.Sha256.to_hex tag1)

(* -- Hash wrapper --------------------------------------------------------- *)

let test_hash_basic () =
  let a = H.of_string "x" and b = H.of_string "x" and c = H.of_string "y" in
  checkb "equal" true (H.equal a b);
  checkb "not equal" false (H.equal a c);
  checki "size" 32 (String.length (H.raw a));
  checks "roundtrip raw" (H.to_hex a) (H.to_hex (H.of_raw (H.raw a)));
  checki "short" 8 (String.length (H.short a))

let test_hash_combine_order_matters () =
  let a = H.of_string "a" and b = H.of_string "b" in
  checkb "order-sensitive" false (H.equal (H.combine [ a; b ]) (H.combine [ b; a ]))

(* -- Field ---------------------------------------------------------------- *)

let test_field_basic () =
  let a = F.of_int 5 and b = F.of_int 7 in
  checki "add" 12 (F.to_int (F.add a b));
  checki "sub wraps" (F.p - 2) (F.to_int (F.sub a b));
  checki "mul" 35 (F.to_int (F.mul a b));
  checki "neg zero" 0 (F.to_int (F.neg F.zero));
  checki "of_int negative" (F.p - 3) (F.to_int (F.of_int (-3)))

let prop_field_inverse =
  QCheck.Test.make ~name:"x * inv x = 1" ~count:300
    QCheck.(int_range 1 (F.p - 1))
    (fun x ->
      let x = F.of_int x in
      F.equal (F.mul x (F.inv x)) F.one)

let prop_field_pow_matches_mul =
  QCheck.Test.make ~name:"pow x 3 = x*x*x" ~count:200
    QCheck.(int_range 0 (F.p - 1))
    (fun x ->
      let x = F.of_int x in
      F.equal (F.pow x 3) (F.mul x (F.mul x x)))

let prop_field_add_assoc =
  QCheck.Test.make ~name:"add associative/commutative" ~count:200
    QCheck.(triple (int_range 0 (F.p - 1)) (int_range 0 (F.p - 1)) (int_range 0 (F.p - 1)))
    (fun (a, b, c) ->
      let a = F.of_int a and b = F.of_int b and c = F.of_int c in
      F.equal (F.add a (F.add b c)) (F.add (F.add a b) c) && F.equal (F.add a b) (F.add b a))

(* -- Shamir --------------------------------------------------------------- *)

let prop_shamir_roundtrip =
  QCheck.Test.make ~name:"t+1 shares reconstruct the secret" ~count:100
    QCheck.(triple int64 (int_range 0 6) (int_range 1 10))
    (fun (seed, threshold, extra) ->
      let parties = threshold + extra in
      let rng = Sim.Rng.create seed in
      let secret = F.random rng in
      let shares = Crypto.Shamir.deal rng ~secret ~threshold ~parties in
      let subset = Array.to_list (Array.sub shares 0 (threshold + 1)) in
      F.equal (Crypto.Shamir.reconstruct subset) secret)

let prop_shamir_any_subset =
  QCheck.Test.make ~name:"any t+1-subset reconstructs" ~count:100 QCheck.int64 (fun seed ->
      let rng = Sim.Rng.create seed in
      let secret = F.random rng in
      let shares = Crypto.Shamir.deal rng ~secret ~threshold:2 ~parties:7 in
      (* a scattered subset, not just a prefix *)
      let subset = [ shares.(1); shares.(4); shares.(6) ] in
      F.equal (Crypto.Shamir.reconstruct subset) secret)

let test_shamir_insufficient_is_wrong () =
  (* With only t shares, interpolation yields an unrelated value (whp). *)
  let rng = Sim.Rng.create 1234L in
  let wrong = ref 0 in
  for _ = 1 to 20 do
    let secret = F.random rng in
    let shares = Crypto.Shamir.deal rng ~secret ~threshold:3 ~parties:5 in
    let subset = Array.to_list (Array.sub shares 0 3) in
    if not (F.equal (Crypto.Shamir.reconstruct subset) secret) then incr wrong
  done;
  checkb "mostly wrong with t shares" true (!wrong >= 19)

let test_lagrange_sums_to_one () =
  (* Interpolating the constant-1 polynomial: coefficients sum to 1. *)
  let indices = [ 1; 3; 4; 7 ] in
  let sum =
    List.fold_left
      (fun acc i -> F.add acc (Crypto.Shamir.lagrange_coefficient ~at:F.zero ~indices i))
      F.zero indices
  in
  checkb "sum = 1" true (F.equal sum F.one)

(* -- Signature ------------------------------------------------------------ *)

let test_signature_roundtrip () =
  let rng = Sim.Rng.create 2L in
  let pk, sk = Crypto.Signature.keygen rng in
  let s = Crypto.Signature.sign sk "msg" in
  checkb "verifies" true (Crypto.Signature.verify pk s "msg");
  checkb "wrong msg" false (Crypto.Signature.verify pk s "other");
  let pk2, _ = Crypto.Signature.keygen rng in
  checkb "wrong key" false (Crypto.Signature.verify pk2 s "msg")

let prop_signature_binding =
  QCheck.Test.make ~name:"signature binds message" ~count:100
    QCheck.(pair string string)
    (fun (m1, m2) ->
      let rng = Sim.Rng.create 77L in
      let pk, sk = Crypto.Signature.keygen rng in
      let s = Crypto.Signature.sign sk m1 in
      Crypto.Signature.verify pk s m2 = String.equal m1 m2)

(* -- Threshold ------------------------------------------------------------ *)

let setup_4 () =
  let rng = Sim.Rng.create 9L in
  Crypto.Threshold.keygen rng ~threshold:2 ~parties:4

let test_threshold_combine_and_verify () =
  let setup, keys = setup_4 () in
  let msg = "payload" in
  let shares = List.map (fun i -> Crypto.Threshold.sign_share keys.(i) msg) [ 0; 1; 2 ] in
  (match Crypto.Threshold.combine setup msg shares with
   | Some agg ->
     checkb "aggregate verifies" true (Crypto.Threshold.verify setup agg msg);
     checkb "wrong msg" false (Crypto.Threshold.verify setup agg "other")
   | None -> Alcotest.fail "combine failed");
  List.iter
    (fun s -> checkb "share verifies" true (Crypto.Threshold.verify_share setup s msg))
    shares

let test_threshold_insufficient () =
  let setup, keys = setup_4 () in
  let msg = "payload" in
  let shares = List.map (fun i -> Crypto.Threshold.sign_share keys.(i) msg) [ 0; 1 ] in
  checkb "2 shares insufficient for t=2" true (Crypto.Threshold.combine setup msg shares = None)

let test_threshold_duplicates_dont_count () =
  let setup, keys = setup_4 () in
  let msg = "payload" in
  let s0 = Crypto.Threshold.sign_share keys.(0) msg in
  let s1 = Crypto.Threshold.sign_share keys.(1) msg in
  checkb "duplicate member shares rejected" true
    (Crypto.Threshold.combine setup msg [ s0; s0; s1 ] = None)

let test_threshold_invalid_filtered () =
  let setup, keys = setup_4 () in
  let msg = "payload" in
  let bad = Crypto.Threshold.sign_share keys.(3) "different message" in
  checkb "bad share does not verify" false (Crypto.Threshold.verify_share setup bad msg);
  let shares = [ Crypto.Threshold.sign_share keys.(0) msg; Crypto.Threshold.sign_share keys.(1) msg; bad ] in
  checkb "combine with an invalid share fails below quorum" true
    (Crypto.Threshold.combine setup msg shares = None)

let test_threshold_forge_rejected () =
  let setup, _ = setup_4 () in
  let forged = Crypto.Threshold.forge_attempt setup "target" in
  checkb "forgery rejected" false (Crypto.Threshold.verify setup forged "target")

let prop_threshold_any_quorum =
  QCheck.Test.make ~name:"any 2f+1 subset aggregates and verifies" ~count:60
    QCheck.(pair int64 (int_range 1 4))
    (fun (seed, f) ->
      let n = (3 * f) + 1 in
      let rng = Sim.Rng.create seed in
      let setup, keys = Crypto.Threshold.keygen rng ~threshold:(2 * f) ~parties:n in
      let msg = Printf.sprintf "m%Ld" seed in
      let ids = Sim.Rng.sample_without_replacement rng ((2 * f) + 1) n in
      let shares = List.map (fun i -> Crypto.Threshold.sign_share keys.(i) msg) ids in
      match Crypto.Threshold.combine setup msg shares with
      | Some agg -> Crypto.Threshold.verify setup agg msg
      | None -> false)

(* -- Merkle ---------------------------------------------------------------- *)

let leaves n = List.init n (fun i -> H.of_string (Printf.sprintf "leaf%d" i))

let test_merkle_root_determinism () =
  checkb "same leaves same root" true
    (H.equal (Crypto.Merkle.root (leaves 5)) (Crypto.Merkle.root (leaves 5)));
  checkb "different leaves different root" false
    (H.equal (Crypto.Merkle.root (leaves 5)) (Crypto.Merkle.root (leaves 6)))

let test_merkle_singleton () =
  let l = H.of_string "only" in
  checkb "singleton root is the leaf" true (H.equal (Crypto.Merkle.root [ l ]) l)

let prop_merkle_proofs =
  QCheck.Test.make ~name:"inclusion proofs verify for every index" ~count:50
    QCheck.(int_range 1 33)
    (fun n ->
      let ls = leaves n in
      let root = Crypto.Merkle.root ls in
      List.for_all
        (fun i ->
          match Crypto.Merkle.prove ls i with
          | Some proof -> Crypto.Merkle.verify_proof ~root ~leaf:(List.nth ls i) proof
          | None -> false)
        (List.init n Fun.id))

let test_merkle_proof_wrong_leaf () =
  let ls = leaves 8 in
  let root = Crypto.Merkle.root ls in
  (match Crypto.Merkle.prove ls 3 with
   | Some proof ->
     checkb "wrong leaf rejected" false
       (Crypto.Merkle.verify_proof ~root ~leaf:(H.of_string "intruder") proof)
   | None -> Alcotest.fail "no proof");
  checkb "out of range" true (Crypto.Merkle.prove ls 8 = None);
  checkb "negative" true (Crypto.Merkle.prove ls (-1) = None)

(* -- Cost model ------------------------------------------------------------ *)

let test_cost_model () =
  let open Crypto.Cost_model in
  checkb "paper BLS gap" true (Int64.compare paper.tvrf_aggregate paper.verify > 0);
  Alcotest.(check int64) "hash scales" (Sim.Sim_time.us 6) (hash_cost paper ~bytes_len:2048);
  Alcotest.(check int64) "free is free" 0L (combine_cost free ~shares:100);
  checkb "combine grows" true
    (Int64.compare (combine_cost paper ~shares:100) (combine_cost paper ~shares:10) > 0)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a's" `Slow test_sha256_million_a;
          Alcotest.test_case "1MiB pattern" `Slow test_sha256_1mib_pattern;
          Alcotest.test_case "chunked feeds" `Quick test_sha256_chunked_feeds;
          Alcotest.test_case "hmac RFC 4231" `Quick test_hmac_rfc4231 ]
        @ qsuite [ prop_sha256_split_invariance ] );
      ( "hash",
        [ Alcotest.test_case "basics" `Quick test_hash_basic;
          Alcotest.test_case "combine order" `Quick test_hash_combine_order_matters ] );
      ( "field",
        [ Alcotest.test_case "basics" `Quick test_field_basic ]
        @ qsuite [ prop_field_inverse; prop_field_pow_matches_mul; prop_field_add_assoc ] );
      ( "shamir",
        [ Alcotest.test_case "insufficient shares wrong" `Quick test_shamir_insufficient_is_wrong;
          Alcotest.test_case "lagrange sums to one" `Quick test_lagrange_sums_to_one ]
        @ qsuite [ prop_shamir_roundtrip; prop_shamir_any_subset ] );
      ( "signature",
        [ Alcotest.test_case "roundtrip" `Quick test_signature_roundtrip ]
        @ qsuite [ prop_signature_binding ] );
      ( "threshold",
        [ Alcotest.test_case "combine & verify" `Quick test_threshold_combine_and_verify;
          Alcotest.test_case "insufficient" `Quick test_threshold_insufficient;
          Alcotest.test_case "duplicates" `Quick test_threshold_duplicates_dont_count;
          Alcotest.test_case "invalid filtered" `Quick test_threshold_invalid_filtered;
          Alcotest.test_case "forgery rejected" `Quick test_threshold_forge_rejected ]
        @ qsuite [ prop_threshold_any_quorum ] );
      ( "merkle",
        [ Alcotest.test_case "determinism" `Quick test_merkle_root_determinism;
          Alcotest.test_case "singleton" `Quick test_merkle_singleton;
          Alcotest.test_case "wrong leaf" `Quick test_merkle_proof_wrong_leaf ]
        @ qsuite [ prop_merkle_proofs ] );
      ("cost model", [ Alcotest.test_case "profiles" `Quick test_cost_model ]) ]
