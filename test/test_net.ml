(* Unit tests for the NIC/network substrate. *)

open Sim

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check64 = Alcotest.(check int64)

(* -- Nic ------------------------------------------------------------------ *)

let test_nic_tx_time () =
  (* 1000 bytes at 8 Mbit/s = 1 ms. *)
  check64 "tx time" (Sim_time.ms 1) (Net.Nic.tx_time ~rate_bps:8e6 ~size:1000);
  check64 "unlimited" 0L (Net.Nic.tx_time ~rate_bps:0. ~size:1000)

let test_nic_serializes () =
  let e = Engine.create () in
  let done_at = ref [] in
  let nic =
    Net.Nic.create e ~rate_bps:8e6 ~on_done:(fun label -> done_at := (label, Engine.now e) :: !done_at)
  in
  Net.Nic.submit nic ~priority:Net.Nic.Low ~size:1000 "a";
  Net.Nic.submit nic ~priority:Net.Nic.Low ~size:1000 "b";
  Engine.run e;
  (match List.rev !done_at with
   | [ ("a", ta); ("b", tb) ] ->
     check64 "first after 1ms" (Sim_time.ms 1) ta;
     check64 "second serialized" (Sim_time.ms 2) tb
   | _ -> Alcotest.fail "wrong completions");
  check64 "busy" (Sim_time.ms 2) (Net.Nic.busy_span nic)

let test_nic_priority () =
  let e = Engine.create () in
  let order = ref [] in
  let nic = Net.Nic.create e ~rate_bps:8e6 ~on_done:(fun l -> order := l :: !order) in
  (* Three low items queued; a high item submitted while the first is in
     flight must overtake the remaining low ones. *)
  Net.Nic.submit nic ~priority:Net.Nic.Low ~size:1000 "low1";
  Net.Nic.submit nic ~priority:Net.Nic.Low ~size:1000 "low2";
  Net.Nic.submit nic ~priority:Net.Nic.Low ~size:1000 "low3";
  ignore
    (Engine.schedule e ~delay:(Sim_time.us 100) (fun () ->
         Net.Nic.submit nic ~priority:Net.Nic.High ~size:1000 "high"));
  Engine.run e;
  Alcotest.(check (list string)) "high overtakes queued lows"
    [ "low1"; "high"; "low2"; "low3" ]
    (List.rev !order)

(* [submit_many ~copies:k] is the multicast fast path: one queue entry
   transmitted k times must complete at exactly the instants of k
   consecutive [submit]s, fire [on_done] once per copy, and account the
   same busy time — interleaved traffic included. *)
let test_nic_submit_many_equals_repeated_submit () =
  let run use_many =
    let e = Engine.create () in
    let done_at = ref [] in
    let nic =
      Net.Nic.create e ~rate_bps:8e6 ~on_done:(fun label ->
          done_at := (label, Engine.now e) :: !done_at)
    in
    if use_many then Net.Nic.submit_many nic ~priority:Net.Nic.Low ~size:1000 ~copies:5 "m"
    else
      for _ = 1 to 5 do
        Net.Nic.submit nic ~priority:Net.Nic.Low ~size:1000 "m"
      done;
    (* traffic landing mid-burst must serialize behind it identically *)
    ignore
      (Engine.schedule e ~delay:(Sim_time.us 500) (fun () ->
           Net.Nic.submit nic ~priority:Net.Nic.Low ~size:500 "tail"));
    Engine.run e;
    (List.rev !done_at, Net.Nic.busy_span nic)
  in
  let many, busy_many = run true in
  let repeated, busy_repeated = run false in
  checki "same completion count" (List.length repeated) (List.length many);
  List.iter2
    (fun (l1, t1) (l2, t2) ->
      checkb "same label" true (String.equal l1 l2);
      check64 "same completion instant" t1 t2)
    repeated many;
  check64 "same busy time" busy_repeated busy_many;
  (* copies <= 0 is a no-op *)
  let e = Engine.create () in
  let fired = ref 0 in
  let nic = Net.Nic.create e ~rate_bps:8e6 ~on_done:(fun _ -> incr fired) in
  Net.Nic.submit_many nic ~priority:Net.Nic.Low ~size:1000 ~copies:0 "none";
  Engine.run e;
  checki "zero copies no-op" 0 !fired

let test_nic_lanes_relieve_hol_blocking () =
  (* One lane: a small message waits behind a big one. Two lanes: it
     goes out immediately on the second lane at half rate. *)
  let run lanes =
    let e = Engine.create () in
    let finished = ref None in
    let nic =
      Net.Nic.create ~lanes e ~rate_bps:8e6 ~on_done:(fun label ->
          if label = "small" then finished := Some (Engine.now e))
    in
    Net.Nic.submit nic ~priority:Net.Nic.Low ~size:10_000 "big";
    Net.Nic.submit nic ~priority:Net.Nic.Low ~size:100 "small";
    Engine.run e;
    Option.get !finished
  in
  (* 1 lane: big takes 10 ms, small finishes at 10.1 ms. *)
  check64 "one lane: blocked" (Sim_time.us 10_100) (run 1);
  (* 2 lanes: small starts immediately at 4 Mbit/s -> 200 us. *)
  check64 "two lanes: immediate" (Sim_time.us 200) (run 2)

let test_nic_lanes_same_total_rate () =
  (* A saturated queue drains at the same total rate; only the tail
     differs (the last wave may leave lanes idle, like real parallel
     TCP connections): 10 items of 1000 B at 8 Mbit/s. *)
  let run lanes =
    let e = Engine.create () in
    let last = ref 0L in
    let nic = Net.Nic.create ~lanes e ~rate_bps:8e6 ~on_done:(fun _ -> last := Engine.now e) in
    for _ = 1 to 10 do
      Net.Nic.submit nic ~priority:Net.Nic.Low ~size:1000 ()
    done;
    Engine.run e;
    !last
  in
  check64 "1 lane" (Sim_time.ms 10) (run 1);
  (* 4 lanes at 2 Mbit/s each: waves of 4 items x 4 ms -> ceil(10/4) = 3 waves. *)
  check64 "4 lanes" (Sim_time.ms 12) (run 4)

(* -- Cpu ------------------------------------------------------------------ *)

let test_cpu_serial () =
  let e = Engine.create () in
  let cpu = Net.Cpu.create e ~cores:1 in
  let done_at = ref [] in
  Net.Cpu.submit cpu ~cost:(Sim_time.ms 2) (fun () -> done_at := ("a", Engine.now e) :: !done_at);
  Net.Cpu.submit cpu ~cost:(Sim_time.ms 3) (fun () -> done_at := ("b", Engine.now e) :: !done_at);
  Engine.run e;
  (match List.rev !done_at with
   | [ ("a", ta); ("b", tb) ] ->
     check64 "first" (Sim_time.ms 2) ta;
     check64 "queued behind" (Sim_time.ms 5) tb
   | _ -> Alcotest.fail "wrong order");
  check64 "busy" (Sim_time.ms 5) (Net.Cpu.busy_span cpu)

let test_cpu_multicore () =
  let e = Engine.create () in
  let cpu = Net.Cpu.create e ~cores:2 in
  let done_at = ref [] in
  for i = 0 to 3 do
    Net.Cpu.submit cpu ~cost:(Sim_time.ms 10) (fun () -> done_at := (i, Engine.now e) :: !done_at)
  done;
  Engine.run e;
  (* 4 x 10ms tasks on 2 cores: pairs complete at 10ms and 20ms. *)
  let times = List.map snd (List.rev !done_at) in
  Alcotest.(check (list int64)) "two waves"
    [ Sim_time.ms 10; Sim_time.ms 10; Sim_time.ms 20; Sim_time.ms 20 ]
    times

let test_cpu_zero_cost_keeps_order () =
  let e = Engine.create () in
  let cpu = Net.Cpu.create e ~cores:1 in
  let order = ref [] in
  Net.Cpu.submit cpu ~cost:(Sim_time.ms 1) (fun () -> order := "slow" :: !order);
  Net.Cpu.submit cpu ~cost:0L (fun () -> order := "fast" :: !order);
  Engine.run e;
  Alcotest.(check (list string)) "fifo" [ "slow"; "fast" ] (List.rev !order)

(* -- Bandwidth ------------------------------------------------------------ *)

let test_bandwidth_accounting () =
  let b = Net.Bandwidth.create () in
  Net.Bandwidth.record b Net.Bandwidth.Sent ~category:"vote" 100;
  Net.Bandwidth.record b Net.Bandwidth.Sent ~category:"vote" 50;
  Net.Bandwidth.record b Net.Bandwidth.Sent ~category:"datablock" 1000;
  Net.Bandwidth.record b Net.Bandwidth.Received ~category:"proposal" 10;
  checki "sent total" 1150 (Net.Bandwidth.total b Net.Bandwidth.Sent);
  checki "received total" 10 (Net.Bandwidth.total b Net.Bandwidth.Received);
  checki "by cat" 150 (Net.Bandwidth.category_total b Net.Bandwidth.Sent "vote");
  Alcotest.(check (list (pair string int)))
    "sorted categories"
    [ ("datablock", 1000); ("vote", 150) ]
    (Net.Bandwidth.by_category b Net.Bandwidth.Sent);
  Net.Bandwidth.reset b;
  checki "reset" 0 (Net.Bandwidth.total b Net.Bandwidth.Sent)

(* -- Network ---------------------------------------------------------------- *)

type tmsg = { label : string; bytes : int; prio : Net.Nic.priority }

let tmeta =
  Net.Network.
    { size = (fun m -> m.bytes); category = (fun _ -> "test"); priority = (fun m -> m.prio) }

let fast_link =
  Net.Network.
    { out_bps = 8e9; in_bps = 8e9; prop_delay = Sim_time.ms 1; jitter = 0L; lanes = 1 }

let test_network_unicast () =
  let e = Engine.create () in
  let net = Net.Network.create e ~n:3 ~meta:tmeta ~link:fast_link in
  let got = ref [] in
  Net.Network.set_handler net 1 (fun ~src m -> got := (src, m.label, Engine.now e) :: !got);
  Net.Network.send net ~src:0 ~dst:1 { label = "hi"; bytes = 1000; prio = Net.Nic.High };
  Engine.run e;
  (match !got with
   | [ (0, "hi", at) ] ->
     (* 1 us egress + 1 ms wire + 1 us ingress = 1.002 ms *)
     check64 "delivery time" (Sim_time.us 1002) at
   | _ -> Alcotest.fail "not delivered")

let test_network_multicast_excludes_src () =
  let e = Engine.create () in
  let net = Net.Network.create e ~n:4 ~meta:tmeta ~link:fast_link in
  let got = Array.make 4 0 in
  for i = 0 to 3 do
    Net.Network.set_handler net i (fun ~src:_ _ -> got.(i) <- got.(i) + 1)
  done;
  Net.Network.multicast net ~src:2 { label = "m"; bytes = 100; prio = Net.Nic.High };
  Engine.run e;
  Alcotest.(check (array int)) "everyone but source" [| 1; 1; 0; 1 |] got

let test_network_self_send_loopback () =
  let e = Engine.create () in
  let net = Net.Network.create e ~n:2 ~meta:tmeta ~link:fast_link in
  let got = ref 0 in
  Net.Network.set_handler net 0 (fun ~src:_ _ -> incr got);
  Net.Network.send net ~src:0 ~dst:0 { label = "self"; bytes = 100; prio = Net.Nic.High };
  Engine.run e;
  checki "self delivery" 1 !got;
  (* loopback is free: no bytes accounted as sent *)
  checki "no egress bytes" 0
    (Net.Bandwidth.total (Net.Network.stats net 0) Net.Bandwidth.Sent)

let test_network_down_node () =
  let e = Engine.create () in
  let net = Net.Network.create e ~n:3 ~meta:tmeta ~link:fast_link in
  let got = ref 0 in
  Net.Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Net.Network.set_down net 1 true;
  Net.Network.send net ~src:0 ~dst:1 { label = "x"; bytes = 10; prio = Net.Nic.High };
  Net.Network.set_down net 2 true;
  Net.Network.send net ~src:2 ~dst:1 { label = "y"; bytes = 10; prio = Net.Nic.High };
  Engine.run e;
  checki "down node hears nothing" 0 !got;
  checkb "is_down" true (Net.Network.is_down net 1)

let test_network_bandwidth_bottleneck () =
  (* Multicast of a large message from one node serializes on its egress:
     the k-th recipient hears it k transmission-times later. *)
  let e = Engine.create () in
  let link = Net.Network.{ fast_link with out_bps = 8e6 (* 1 byte/us *) } in
  let net = Net.Network.create e ~n:5 ~meta:tmeta ~link in
  let arrivals = ref [] in
  for i = 1 to 4 do
    Net.Network.set_handler net i (fun ~src:_ _ -> arrivals := Engine.now e :: !arrivals)
  done;
  Net.Network.multicast net ~src:0 { label = "blk"; bytes = 1000; prio = Net.Nic.High };
  Engine.run e;
  let sorted = List.sort Int64.compare !arrivals in
  (match sorted with
   | [ a1; _; _; a4 ] ->
     (* tx = 1 ms per copy on the sender; fast ingress adds 1 us. *)
     check64 "first arrival" (Sim_time.us 2001) a1;
     check64 "last arrival staggered" (Sim_time.us 5001) a4
   | _ -> Alcotest.fail "expected 4 arrivals")

let test_network_inject_and_charge () =
  let e = Engine.create () in
  let net = Net.Network.create e ~n:2 ~meta:tmeta ~link:fast_link in
  let got = ref false in
  Net.Network.inject net ~dst:1 ~size:500 ~category:"client-req" (fun () -> got := true);
  Net.Network.charge_egress net ~src:0 ~size:300 ~category:"ack";
  Engine.run e;
  checkb "inject delivered" true !got;
  checki "ingress accounted" 500
    (Net.Bandwidth.category_total (Net.Network.stats net 1) Net.Bandwidth.Received "client-req");
  checki "egress accounted" 300
    (Net.Bandwidth.category_total (Net.Network.stats net 0) Net.Bandwidth.Sent "ack")

let test_network_set_rates () =
  let e = Engine.create () in
  let net = Net.Network.create e ~n:2 ~meta:tmeta ~link:fast_link in
  Net.Network.set_rates net ~out_bps:8e3 ~in_bps:8e3;
  let at = ref 0L in
  Net.Network.set_handler net 1 (fun ~src:_ _ -> at := Engine.now e);
  Net.Network.send net ~src:0 ~dst:1 { label = "slow"; bytes = 1000; prio = Net.Nic.High };
  Engine.run e;
  (* 1000 B at 8 kbit/s = 1 s egress + 1 s ingress + 1 ms wire *)
  check64 "throttled" Sim_time.(s 2 + ms 1) !at

let test_network_extra_delay () =
  let e = Engine.create () in
  let net = Net.Network.create e ~n:2 ~meta:tmeta ~link:fast_link in
  Net.Network.set_extra_delay net (fun ~now:_ ~src:_ ~dst:_ -> Sim_time.ms 50);
  let at = ref 0L in
  Net.Network.set_handler net 1 (fun ~src:_ _ -> at := Engine.now e);
  Net.Network.send net ~src:0 ~dst:1 { label = "late"; bytes = 1000; prio = Net.Nic.High };
  Engine.run e;
  check64 "with adversarial delay" (Sim_time.us 51002) !at

(* -- Partial synchrony ------------------------------------------------------ *)

let test_partial_sync_until_gst () =
  let rng = Rng.create 8L in
  let sched = Net.Partial_sync.until_gst ~rng ~gst:(Sim_time.s 5) ~max_delay:(Sim_time.ms 100) in
  let before = sched ~now:(Sim_time.s 1) ~src:0 ~dst:1 in
  checkb "pre-GST delayed (usually nonzero, always bounded)" true
    (Int64.compare before 0L >= 0 && Int64.compare before (Sim_time.ms 100) <= 0);
  check64 "post-GST zero" 0L (sched ~now:(Sim_time.s 6) ~src:0 ~dst:1)

let test_partial_sync_target () =
  let sched =
    Net.Partial_sync.target_node ~gst:(Sim_time.s 5) ~victim:2 ~delay:(Sim_time.ms 30)
  in
  check64 "victim src" (Sim_time.ms 30) (sched ~now:Sim_time.zero ~src:2 ~dst:0);
  check64 "victim dst" (Sim_time.ms 30) (sched ~now:Sim_time.zero ~src:0 ~dst:2);
  check64 "others" 0L (sched ~now:Sim_time.zero ~src:0 ~dst:1);
  check64 "after gst" 0L (sched ~now:(Sim_time.s 9) ~src:2 ~dst:0)

let test_partial_sync_combine () =
  let a ~now:_ ~src:_ ~dst:_ = Sim_time.ms 1 in
  let b ~now:_ ~src:_ ~dst:_ = Sim_time.ms 2 in
  check64 "sum" (Sim_time.ms 3)
    (Net.Partial_sync.combine [ a; b ] ~now:Sim_time.zero ~src:0 ~dst:1)

let () =
  Alcotest.run "net"
    [ ( "nic",
        [ Alcotest.test_case "tx time" `Quick test_nic_tx_time;
          Alcotest.test_case "serialization" `Quick test_nic_serializes;
          Alcotest.test_case "priority channels" `Quick test_nic_priority;
          Alcotest.test_case "submit_many equals repeated submit" `Quick
            test_nic_submit_many_equals_repeated_submit;
          Alcotest.test_case "lanes relieve HoL blocking" `Quick
            test_nic_lanes_relieve_hol_blocking;
          Alcotest.test_case "lanes keep total rate" `Quick test_nic_lanes_same_total_rate ] );
      ( "cpu",
        [ Alcotest.test_case "serial" `Quick test_cpu_serial;
          Alcotest.test_case "multicore" `Quick test_cpu_multicore;
          Alcotest.test_case "fifo with zero cost" `Quick test_cpu_zero_cost_keeps_order ] );
      ("bandwidth", [ Alcotest.test_case "accounting" `Quick test_bandwidth_accounting ]);
      ( "network",
        [ Alcotest.test_case "unicast timing" `Quick test_network_unicast;
          Alcotest.test_case "multicast excludes source" `Quick
            test_network_multicast_excludes_src;
          Alcotest.test_case "self send loopback" `Quick test_network_self_send_loopback;
          Alcotest.test_case "down node" `Quick test_network_down_node;
          Alcotest.test_case "egress bottleneck" `Quick test_network_bandwidth_bottleneck;
          Alcotest.test_case "inject & charge" `Quick test_network_inject_and_charge;
          Alcotest.test_case "throttling" `Quick test_network_set_rates;
          Alcotest.test_case "extra delay hook" `Quick test_network_extra_delay ] );
      ( "partial sync",
        [ Alcotest.test_case "until gst" `Quick test_partial_sync_until_gst;
          Alcotest.test_case "target node" `Quick test_partial_sync_target;
          Alcotest.test_case "combine" `Quick test_partial_sync_combine ] ) ]
