(* Tests for the deterministic fault-injection subsystem: injector
   semantics, the scenario corpus against the safety/liveness oracles on
   the sim plane, view-change recovery on both planes, byte-identical
   replay, and TCP-cluster teardown hygiene. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

open Faults

let rng = Sim.Rng.create 2026L
let _pk, sk = Crypto.Signature.keygen rng

let timeout_msg =
  Core.Msg.Timeout { view = 3; sender = 2; signature = Crypto.Signature.sign sk "t" }

(* -- injector semantics -------------------------------------------------- *)

let test_partition_cuts_groups () =
  let inj = Injector.create ~n:4 ~rng:(Sim.Rng.create 1L) in
  checkb "no partition at start" false (Injector.partitioned inj);
  checkb "link faults report applied" true
    (Injector.apply inj (Scenario.Partition [ [ 0 ]; [ 1; 2; 3 ] ]));
  checkb "partitioned" true (Injector.partitioned inj);
  checkb "cut edge drops" true (Injector.decide inj ~src:0 ~dst:1 timeout_msg = Injector.Drop);
  checkb "cut edge drops (reverse)" true
    (Injector.decide inj ~src:2 ~dst:0 timeout_msg = Injector.Drop);
  checkb "same side passes" true
    (Injector.decide inj ~src:1 ~dst:3 timeout_msg = Injector.Pass);
  checkb "heal applied" true (Injector.apply inj Scenario.Heal);
  checkb "healed edge passes" true
    (Injector.decide inj ~src:0 ~dst:1 timeout_msg = Injector.Pass)

let test_unlisted_ids_form_implicit_group () =
  let inj = Injector.create ~n:4 ~rng:(Sim.Rng.create 1L) in
  ignore (Injector.apply inj (Scenario.Partition [ [ 0 ] ]) : bool);
  checkb "isolated node cut from the rest" true
    (Injector.decide inj ~src:0 ~dst:3 timeout_msg = Injector.Drop);
  checkb "the rest still talk" true
    (Injector.decide inj ~src:1 ~dst:2 timeout_msg = Injector.Pass)

let test_rule_matching () =
  let inj = Injector.create ~n:4 ~rng:(Sim.Rng.create 1L) in
  (* Kind filter: a rule on K_propose must not touch a Timeout. *)
  ignore
    (Injector.apply inj (Scenario.Drop (Scenario.rule ~kinds:[ Core.Msg.K_propose ] ()))
      : bool);
  checkb "kind mismatch passes" true
    (Injector.decide inj ~src:0 ~dst:1 timeout_msg = Injector.Pass);
  (* Src filter, first match wins over later rules. *)
  ignore (Injector.apply inj (Scenario.Drop (Scenario.rule ~src:2 ())) : bool);
  ignore
    (Injector.apply inj
       (Scenario.Delay (Scenario.rule ~src:2 (), Sim.Sim_time.ms 10))
      : bool);
  checki "three rules active" 3 (Injector.active_rules inj);
  checkb "src match drops (first rule wins)" true
    (Injector.decide inj ~src:2 ~dst:1 timeout_msg = Injector.Drop);
  checkb "other src passes" true
    (Injector.decide inj ~src:3 ~dst:1 timeout_msg = Injector.Pass);
  (* Heal clears rules too. *)
  ignore (Injector.apply inj Scenario.Heal : bool);
  checki "heal clears rules" 0 (Injector.active_rules inj);
  (* Process faults are not the injector's job. *)
  checkb "crash not applied here" false (Injector.apply inj (Scenario.Crash 1));
  checkb "revive not applied here" false (Injector.apply inj (Scenario.Revive 1))

let test_probabilistic_rule_is_deterministic () =
  let decisions seed =
    let inj = Injector.create ~n:4 ~rng:(Sim.Rng.create seed) in
    ignore (Injector.apply inj (Scenario.Drop (Scenario.rule ~prob:0.5 ())) : bool);
    List.init 200 (fun i ->
        Injector.decide inj ~src:(i mod 4) ~dst:((i + 1) mod 4) timeout_msg)
  in
  checkb "same seed, same decisions" true (decisions 5L = decisions 5L);
  checkb "coin actually flips" true
    (List.exists (fun d -> d = Injector.Drop) (decisions 5L)
    && List.exists (fun d -> d = Injector.Pass) (decisions 5L))

(* -- sim plane: the whole corpus must satisfy its oracle ----------------- *)

let run_sim ?(seed = 42L) build ~n =
  let sc = build ~n in
  let o = Sim_plane.run ~seed sc in
  if not (Oracle.outcome_ok o) then
    Alcotest.failf "sim %s n=%d failed:@.%a" sc.Scenario.name n Oracle.pp_verdict
      o.Oracle.verdict;
  o

let test_sim_corpus_n4 () =
  List.iter (fun build -> ignore (run_sim build ~n:4 : Oracle.outcome)) Corpus.all

let test_sim_corpus_n16_spot () =
  ignore (run_sim Corpus.leader_crash ~n:16 : Oracle.outcome);
  ignore (run_sim Corpus.partition_quorum ~n:16 : Oracle.outcome)

(* -- determinism: same (seed, scenario) => byte-identical trace ---------- *)

let test_replay_is_byte_identical () =
  let a = Sim_plane.run ~seed:7L (Corpus.leader_crash ~n:4) in
  let b = Sim_plane.run ~seed:7L (Corpus.leader_crash ~n:4) in
  let c = Sim_plane.run ~seed:8L (Corpus.leader_crash ~n:4) in
  checkb "trace non-trivial" true (String.length a.Oracle.trace > 1000);
  checkb "same seed, identical trace" true (String.equal a.Oracle.trace b.Oracle.trace);
  checkb "identical confirmed count" true (a.Oracle.confirmed = b.Oracle.confirmed);
  checkb "different seed, different trace" false
    (String.equal a.Oracle.trace c.Oracle.trace)

(* -- both planes: faults must actually force a view change and recover -- *)

let vc_scenarios =
  [ Corpus.leader_crash; Corpus.partition_quorum; Corpus.slow_leader;
    Corpus.silence_leader ]

let assert_view_change_recovery (o : Oracle.outcome) =
  let name = o.Oracle.scenario.Scenario.name in
  if not (Oracle.outcome_ok o) then
    Alcotest.failf "%s %s failed:@.%a" o.Oracle.plane name Oracle.pp_verdict
      o.Oracle.verdict;
  checkb (o.Oracle.plane ^ " " ^ name ^ " left view 1") true (o.Oracle.final_view >= 2);
  checkb
    (o.Oracle.plane ^ " " ^ name ^ " resumed confirming after the fault")
    true
    (o.Oracle.confirmed > o.Oracle.confirmed_at_heal)

let test_view_change_sim () =
  List.iter
    (fun build -> assert_view_change_recovery (run_sim build ~n:4))
    vc_scenarios

let test_view_change_tcp () =
  List.iter
    (fun build -> assert_view_change_recovery (Tcp_plane.run ~seed:42L (build ~n:4)))
    vc_scenarios

(* -- both planes: process restart must recover from the durable store ---- *)

let small_cfg =
  Core.Config.make ~n:4 ~alpha:10 ~bft_size:2 ~k:16 ~payload:64
    ~datablock_timeout:(Sim.Sim_time.ms 20) ~proposal_timeout:(Sim.Sim_time.ms 30)
    ~view_timeout:(Sim.Sim_time.ms 1500) ~fetch_grace:(Sim.Sim_time.ms 200)
    ~cost:Crypto.Cost_model.free ()

let restart_scenarios = [ Corpus.leader_restart; Corpus.restart_storm ]

let assert_restart_recovery (o : Oracle.outcome) =
  let name = o.Oracle.scenario.Scenario.name in
  if not (Oracle.outcome_ok o) then
    Alcotest.failf "%s %s failed:@.%a" o.Oracle.plane name Oracle.pp_verdict
      o.Oracle.verdict;
  checki (o.Oracle.plane ^ " " ^ name ^ " no double-vote evidence") 0
    o.Oracle.equivocations

let test_restart_sim () =
  List.iter
    (fun build -> assert_restart_recovery (run_sim build ~n:4))
    restart_scenarios

let test_restart_tcp () =
  List.iter
    (fun build -> assert_restart_recovery (Tcp_plane.run ~seed:42L (build ~n:4)))
    restart_scenarios

(* The acceptance run in one test: confirm >= 1000 requests, process-kill
   a replica, recover it from its WAL directory, and require it to rejoin
   and re-converge on the same state hash. *)
let test_tcp_restart_catches_up () =
  let cl = Transport.Cluster.create ~cfg:small_cfg ~load:2000. () in
  Fun.protect
    ~finally:(fun () -> Transport.Cluster.close cl)
    (fun () ->
      let loop = Transport.Cluster.loop cl in
      Transport.Cluster.start_load cl;
      let deadline =
        Transport.Loop.now_ns loop + Int64.to_int (Sim.Sim_time.s 20)
      in
      Transport.Cluster.run_while cl (fun cl ->
          Transport.Cluster.confirmed cl < 1000
          && Transport.Loop.now_ns loop < deadline);
      checkb "confirmed >= 1000 before the restart" true
        (Transport.Cluster.confirmed cl >= 1000);
      Transport.Cluster.restart_replica cl 2;
      (* Load keeps flowing over the restart; the recovered replica must
         keep voting without forking. *)
      let go_until = Transport.Loop.now_ns loop + Int64.to_int (Sim.Sim_time.s 1) in
      Transport.Cluster.run_while cl (fun _ -> Transport.Loop.now_ns loop < go_until);
      Transport.Cluster.stop_load cl;
      let drain =
        Transport.Loop.now_ns loop + Int64.to_int (Sim.Sim_time.s 10)
      in
      Transport.Cluster.run_while cl (fun cl ->
          Transport.Loop.now_ns loop < drain
          && not (Transport.Cluster.state_converged cl));
      checkb "restarted replica converged to the same state hash" true
        (Transport.Cluster.state_converged cl);
      checkb "ledgers agree after the restart" true
        (Transport.Cluster.ledgers_agree cl);
      Array.iter
        (fun r ->
          checki "no equivocation evidence" 0
            (List.length
               (Core.Datablock_pool.equivocations (Core.Replica.pool r))))
        (Transport.Cluster.replicas cl))

(* -- TCP teardown hygiene ------------------------------------------------ *)

(* Per-run temp data directories must go with the cluster (the WAL dirs
   are part of teardown hygiene, like the fds). *)
let leopard_tmp_dirs () =
  let tmp = Filename.get_temp_dir_name () in
  Array.fold_left
    (fun acc name ->
      if String.length name >= 12 && String.equal (String.sub name 0 12) "leopard-data"
      then acc + 1
      else acc)
    0
    (try Sys.readdir tmp with Sys_error _ -> [||])

let live_fds () =
  match Sys.readdir "/proc/self/fd" with
  | fds -> Some (Array.length fds)
  | exception Sys_error _ -> None

let test_cluster_close_reaps_fds () =
  let baseline = ref None in
  let dirs_before = leopard_tmp_dirs () in
  for _round = 1 to 4 do
    let cl = Transport.Cluster.create ~cfg:small_cfg ~load:200. () in
    Transport.Cluster.start_load cl;
    let stop_at =
      Transport.Loop.now_ns (Transport.Cluster.loop cl)
      + Int64.to_int (Sim.Sim_time.ms 100)
    in
    Transport.Cluster.run_while cl (fun cl ->
        Transport.Loop.now_ns (Transport.Cluster.loop cl) < stop_at);
    Transport.Cluster.close cl;
    Transport.Cluster.close cl;
    (* idempotent *)
    checki "no leftover data directories" dirs_before (leopard_tmp_dirs ());
    match (live_fds (), !baseline) with
    | None, _ -> () (* no /proc: nothing to measure on this platform *)
    | Some n, None -> baseline := Some n
    | Some n, Some b ->
      if n > b + 2 then
        Alcotest.failf "fd leak across cluster teardown: %d -> %d" b n
  done

let test_cluster_close_after_kill () =
  (* Abnormal exit path: a replica marked down mid-run must not leave
     the teardown unable to reap the rest. *)
  let dirs_before = leopard_tmp_dirs () in
  let cl = Transport.Cluster.create ~cfg:small_cfg ~load:200. () in
  Transport.Cluster.start_load cl;
  Transport.Cluster.set_replica_down cl 2 true;
  let stop_at =
    Transport.Loop.now_ns (Transport.Cluster.loop cl)
    + Int64.to_int (Sim.Sim_time.ms 100)
  in
  Transport.Cluster.run_while cl (fun cl ->
      Transport.Loop.now_ns (Transport.Cluster.loop cl) < stop_at);
  Transport.Cluster.close cl;
  Transport.Cluster.close cl;
  checki "no leftover data directories after kill" dirs_before (leopard_tmp_dirs ());
  checkb "close survived a downed replica" true true

let () =
  Alcotest.run "faults"
    [ ( "injector",
        [ Alcotest.test_case "partition cuts groups" `Quick test_partition_cuts_groups;
          Alcotest.test_case "implicit group" `Quick test_unlisted_ids_form_implicit_group;
          Alcotest.test_case "rule matching" `Quick test_rule_matching;
          Alcotest.test_case "probabilistic determinism" `Quick
            test_probabilistic_rule_is_deterministic ] );
      ( "sim corpus",
        [ Alcotest.test_case "all scenarios pass at n=4" `Quick test_sim_corpus_n4;
          Alcotest.test_case "spot checks at n=16" `Slow test_sim_corpus_n16_spot;
          Alcotest.test_case "replay is byte-identical" `Quick
            test_replay_is_byte_identical ] );
      ( "view change",
        [ Alcotest.test_case "sim plane recovers via view change" `Quick
            test_view_change_sim;
          Alcotest.test_case "tcp plane recovers via view change" `Slow
            test_view_change_tcp ] );
      ( "restart",
        [ Alcotest.test_case "sim plane recovers from the store" `Quick
            test_restart_sim;
          Alcotest.test_case "tcp plane recovers from the store" `Slow
            test_restart_tcp;
          Alcotest.test_case "tcp restart catches up to the same state" `Quick
            test_tcp_restart_catches_up ] );
      ( "teardown",
        [ Alcotest.test_case "close reaps fds" `Quick test_cluster_close_reaps_fds;
          Alcotest.test_case "close after kill" `Quick test_cluster_close_after_kill ] )
    ]
