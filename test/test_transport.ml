(* Transport stack tests: the frame layer bit-for-bit, the select loop's
   timer semantics, and n = 4 clusters over real loopback TCP — including
   the acceptance scenarios: >= 1000 requests confirmed with identical
   state hashes, and a fail-stopped non-leader that the cluster survives
   and that reconnects after revival. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

(* -- frame golden bytes -------------------------------------------------- *)

let test_frame_hello_golden () =
  (* magic "LPRD", version 1 (u16 LE), kind 0, len 4, node id 3 (u32 LE) *)
  checks "hello frame" "4c5052440100000400000003000000" (to_hex (Transport.Frame.encode_hello 3))

let test_frame_msg_golden () =
  (* Header (kind 1, len 37) + the codec's frozen Fetch bytes: the frame
     layer adds exactly 11 bytes and never rewrites the payload. *)
  checks "msg frame"
    ("4c50524401000125000000"
    ^ "0b20000000ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")
    (to_hex (Transport.Frame.encode_msg (Core.Msg.Fetch { hash = Crypto.Hash.of_string "abc" })))

(* -- frame incremental decoding ----------------------------------------- *)

let feed_string r s k =
  Transport.Frame.feed r (Bytes.of_string s) ~off:0 ~len:(String.length s) k

let collect_frames feeds =
  let r = Transport.Frame.reader () in
  let acc = ref [] in
  let res =
    List.fold_left
      (fun last s -> match last with Error _ -> last | Ok () -> feed_string r s (fun f -> acc := f :: !acc))
      (Ok ()) feeds
  in
  (res, List.rev !acc, r)

let test_frame_byte_at_a_time () =
  let wire =
    Transport.Frame.encode_hello 2
    ^ Transport.Frame.encode_msg (Core.Msg.Fetch { hash = Crypto.Hash.of_string "x" })
  in
  let bytes = List.init (String.length wire) (fun i -> String.make 1 wire.[i]) in
  let res, frames, r = collect_frames bytes in
  checkb "no error" true (res = Ok ());
  checki "two frames" 2 (List.length frames);
  (match frames with
  | [ Transport.Frame.Hello 2; Transport.Frame.Msg (Core.Msg.Fetch _) ] -> ()
  | _ -> Alcotest.fail "wrong frames or order");
  checkb "clean eof" true (Transport.Frame.check_eof r = Ok ())

let test_frame_coalesced () =
  let wire =
    Transport.Frame.encode_hello 0
    ^ Transport.Frame.encode_hello 1
    ^ Transport.Frame.encode_hello 2
  in
  let res, frames, _ = collect_frames [ wire ] in
  checkb "no error" true (res = Ok ());
  checkb "three hellos in order" true
    (frames = [ Transport.Frame.Hello 0; Transport.Frame.Hello 1; Transport.Frame.Hello 2 ])

let test_frame_short_read () =
  let wire = Transport.Frame.encode_hello 7 in
  let partial = String.sub wire 0 (String.length wire - 1) in
  let res, frames, r = collect_frames [ partial ] in
  checkb "partial frame is not an error" true (res = Ok ());
  checki "nothing parsed" 0 (List.length frames);
  checkb "eof mid-frame is" true
    (Transport.Frame.check_eof r = Error Transport.Frame.Short_read)

let header ~version ~kind ~len =
  let b = Buffer.create 11 in
  Buffer.add_string b Transport.Frame.magic;
  Buffer.add_uint16_le b version;
  Buffer.add_uint8 b kind;
  Buffer.add_int32_le b (Int32.of_int len);
  Buffer.contents b

let test_frame_errors () =
  (* Bad magic. *)
  let res, _, r = collect_frames [ "XXXXXXXXXXXXXXXX" ] in
  checkb "bad magic" true (res = Error Transport.Frame.Bad_magic);
  (* ... poisons the reader: the same error again, parsing never resumes. *)
  checkb "poisoned" true
    (feed_string r (Transport.Frame.encode_hello 1) (fun _ -> ())
    = Error Transport.Frame.Bad_magic);
  (* Wrong protocol version. *)
  let res, _, _ = collect_frames [ header ~version:2 ~kind:0 ~len:4 ^ "aaaa" ] in
  checkb "bad version" true (res = Error (Transport.Frame.Bad_version 2));
  (* Declared length beyond the cap is rejected before buffering. *)
  let r = Transport.Frame.reader ~max_frame:16 () in
  checkb "oversized" true
    (feed_string r (header ~version:1 ~kind:1 ~len:1000) (fun _ -> ())
    = Error (Transport.Frame.Oversized 1000));
  (* Well-framed payload the codec rejects. *)
  let res, _, _ = collect_frames [ header ~version:1 ~kind:1 ~len:4 ^ "\xff\xff\xff\xff" ] in
  checkb "undecodable msg" true (res = Error Transport.Frame.Decode_failed);
  (* A hello payload must be exactly 4 bytes. *)
  let res, _, _ = collect_frames [ header ~version:1 ~kind:0 ~len:5 ^ "aaaaa" ] in
  checkb "malformed hello" true (res = Error Transport.Frame.Decode_failed);
  (* Unknown frame kind. *)
  let res, _, _ = collect_frames [ header ~version:1 ~kind:9 ~len:0 ] in
  checkb "unknown kind" true (res = Error Transport.Frame.Decode_failed)

(* -- event loop ---------------------------------------------------------- *)

let test_loop_timer_fifo () =
  let loop = Transport.Loop.create () in
  let order = ref [] in
  let note x = order := x :: !order in
  ignore (Transport.Loop.schedule loop ~delay:0L (fun () -> note 1) : Transport.Loop.handle);
  ignore (Transport.Loop.schedule loop ~delay:0L (fun () -> note 2) : Transport.Loop.handle);
  ignore (Transport.Loop.schedule loop ~delay:0L (fun () -> note 3) : Transport.Loop.handle);
  ignore
    (Transport.Loop.schedule loop ~delay:(Sim.Sim_time.ms 2) (fun () -> note 4)
      : Transport.Loop.handle);
  Transport.Loop.run_for loop ~span:(Sim.Sim_time.ms 20);
  checkb "same-instant timers fire in schedule order, later timers after" true
    (List.rev !order = [ 1; 2; 3; 4 ])

let test_loop_cancel () =
  let loop = Transport.Loop.create () in
  let fired = ref [] in
  let h1 = Transport.Loop.schedule loop ~delay:(Sim.Sim_time.ms 1) (fun () -> fired := 1 :: !fired) in
  let _h2 =
    Transport.Loop.schedule loop ~delay:(Sim.Sim_time.ms 1) (fun () -> fired := 2 :: !fired)
  in
  Transport.Loop.cancel loop h1;
  checki "cancelled timer leaves the pending count" 1 (Transport.Loop.pending_timers loop);
  Transport.Loop.run_for loop ~span:(Sim.Sim_time.ms 20);
  checkb "only the live timer fired" true (!fired = [ 2 ]);
  checki "nothing pending" 0 (Transport.Loop.pending_timers loop);
  (* Cancelling after the fact is a no-op (at worst a parked entry). *)
  Transport.Loop.cancel loop h1;
  checki "still nothing pending" 0 (Transport.Loop.pending_timers loop)

let test_loop_schedule_from_callback () =
  let loop = Transport.Loop.create () in
  let hits = ref 0 in
  ignore
    (Transport.Loop.schedule loop ~delay:0L (fun () ->
         incr hits;
         ignore (Transport.Loop.schedule loop ~delay:0L (fun () -> incr hits)
                  : Transport.Loop.handle))
      : Transport.Loop.handle);
  Transport.Loop.run_for loop ~span:(Sim.Sim_time.ms 20);
  checki "chained zero-delay timers both ran" 2 !hits;
  checkb "clock is monotone" true (Transport.Loop.now_ns loop >= 0)

(* -- zero-copy data plane ------------------------------------------------ *)

let test_pool_reuse_poison_double_free () =
  let p = Transport.Pool.create ~debug:true () in
  let b = Transport.Pool.acquire p 5000 in
  checki "request rounds up to its class" 8192 (Bytes.length b);
  Bytes.fill b 0 (Bytes.length b) 'x';
  Transport.Pool.release p b;
  checkb "released buffer is poisoned" true
    (Bytes.get b 0 = Transport.Pool.poison_byte
    && Bytes.get b 8191 = Transport.Pool.poison_byte);
  let b' = Transport.Pool.acquire p 8192 in
  checkb "acquire recycles the released buffer" true (b' == b);
  checki "hit counted" 1 (Transport.Pool.stats p).Transport.Pool.hits;
  Transport.Pool.release p b';
  (match Transport.Pool.release p b' with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double release undetected");
  (* Off-class lengths are never pooled (they would poison the classes). *)
  Transport.Pool.release p (Bytes.create 100);
  checki "off-class release dropped" 1 (Transport.Pool.stats p).Transport.Pool.dropped;
  (* Oversized requests degrade to exact plain allocations. *)
  let big = Transport.Pool.acquire p (Transport.Pool.max_class + 1) in
  checki "oversized is exact-size" (Transport.Pool.max_class + 1) (Bytes.length big);
  let before = (Transport.Pool.stats p).Transport.Pool.dropped in
  Transport.Pool.release p big;
  checki "oversized release dropped too" (before + 1)
    (Transport.Pool.stats p).Transport.Pool.dropped

(* A sender [Conn] dialing plain listening sockets the test reads raw
   bytes from: the ground truth for what actually hit the wire. *)
let raw_listener () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 8;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> (fd, port)
  | Unix.ADDR_UNIX _ -> assert false

let read_exactly fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let k = Unix.read fd b !got (n - !got) in
    if k = 0 then Alcotest.fail "peer stream ended early";
    got := !got + k
  done;
  Bytes.to_string b

let spin loop pred =
  let deadline = Transport.Loop.now_ns loop + 10_000_000_000 in
  Transport.Loop.run_while loop (fun () ->
      Transport.Loop.now_ns loop < deadline && not (pred ()));
  pred ()

(* Multicast to [k] raw peers; return per-peer wire bytes. [clamp] caps
   bytes per write(2) to force partial-write paths. *)
let multicast_wire ?clamp msgs =
  let k = 3 in
  let loop = Transport.Loop.create () in
  let conn = Transport.Conn.create ~loop ~id:0 ~on_msg:(fun ~src:_ _ -> ()) () in
  (match clamp with Some c -> Transport.Conn.set_max_write conn c | None -> ());
  let listeners = Array.init k (fun _ -> raw_listener ()) in
  Array.iteri
    (fun i (_, port) ->
      Transport.Conn.set_peer_addr conn (i + 1)
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port)))
    listeners;
  let e0 = Transport.Frame.encode_count () in
  List.iter (fun m -> Transport.Conn.multicast conn ~n:(k + 1) m) msgs;
  checki "one encode per multicast, regardless of fan-out"
    (List.length msgs)
    (Transport.Frame.encode_count () - e0);
  (* [frames_sent] counts queued frames only — the hello goes out as the
     connection prefix, not through the queue. *)
  let done_ = spin loop (fun () ->
      (Transport.Conn.stats conn).Transport.Conn.frames_sent = List.length msgs * k)
  in
  checkb "all frames flushed" true done_;
  checki "nothing dropped" 0 (Transport.Conn.dropped conn);
  let expected_bytes =
    Transport.Frame.encode_hello 0
    ^ String.concat "" (List.map Transport.Frame.encode_msg msgs)
  in
  let wires =
    Array.map
      (fun (lfd, _) ->
        let fd, _ = Unix.accept lfd in
        let s = read_exactly fd (String.length expected_bytes) in
        Unix.close fd;
        Unix.close lfd;
        s)
      listeners
  in
  Transport.Conn.close conn;
  (expected_bytes, wires, Transport.Conn.stats conn)

let some_msgs () =
  List.map
    (fun s -> Core.Msg.Fetch { hash = Crypto.Hash.of_string s })
    [ "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h" ]

let test_multicast_byte_equivalence () =
  let expected, wires, _ = multicast_wire (some_msgs ()) in
  Array.iteri
    (fun i wire -> checks (Printf.sprintf "peer %d wire bytes" (i + 1)) expected wire)
    wires

let test_multicast_coalesces_writes () =
  (* All frames are queued while the dial is still in progress, so the
     first flush finds the whole backlog: the hello plus one gather write
     should drain it — syscalls/frame far below 1. *)
  let msgs = some_msgs () in
  let _, _, stats = multicast_wire msgs in
  let k = 3 in
  checki "every frame sent" (List.length msgs * k) stats.Transport.Conn.frames_sent;
  checkb
    (Printf.sprintf "coalesced: %d write syscalls for %d frames"
       stats.Transport.Conn.write_syscalls stats.Transport.Conn.frames_sent)
    true
    (stats.Transport.Conn.write_syscalls <= 3 * k)

let test_multicast_one_byte_torture () =
  (* Clamp every write(2) to a single byte: shared frames cross the wire
     one byte at a time, head offsets walking through frame boundaries on
     every peer independently. The wire must still be byte-identical to a
     per-peer encode. *)
  let expected, wires, _ = multicast_wire ~clamp:1 (some_msgs ()) in
  Array.iteri
    (fun i wire ->
      checks (Printf.sprintf "peer %d wire bytes under clamp" (i + 1)) expected wire)
    wires

let test_loop_tick_remove () =
  let loop = Transport.Loop.create () in
  let kept = ref 0 and removed = ref 0 in
  let _k = Transport.Loop.on_tick loop (fun () -> incr kept) in
  let h = Transport.Loop.on_tick loop (fun () -> incr removed) in
  Transport.Loop.remove_tick loop h;
  Transport.Loop.remove_tick loop h (* double removal is a no-op *);
  Transport.Loop.run_for loop ~span:(Sim.Sim_time.ms 2);
  checkb "kept hook ran" true (!kept > 0);
  checki "removed hook never ran" 0 !removed

let test_large_frame_genuine_backpressure () =
  (* Frames several times larger than one kernel write chunk, pushed at a
     peer whose receive buffer is clamped tiny: the sender hits genuine
     partial writes and EAGAIN from write(2) itself — the path the
     [max_write] clamp cannot reach, because clamped offers always fit in
     one syscall. A write primitive that loses the bytes the kernel
     already accepted before EAGAIN (as [Unix.write]'s internal chunking
     does) re-sends them and corrupts the stream; the wire must stay
     byte-identical to a clean encode. *)
  let rng = Sim.Rng.create 7L in
  let _pk, sk = Crypto.Signature.keygen rng in
  let loop = Transport.Loop.create () in
  let conn =
    Transport.Conn.create ~loop ~id:0 ~outbuf_hwm:(64 * 1024 * 1024)
      ~on_msg:(fun ~src:_ _ -> ()) ()
  in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt_int lfd Unix.SO_RCVBUF 16384;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 8;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  Transport.Conn.set_peer_addr conn 1 (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let batches =
    List.init 10_000 (fun i -> Workload.Request.make ~id:i ~count:1 ~size_each:64 ~born:0L ())
  in
  let msgs =
    List.init 8 (fun i ->
        Core.Msg.Datablock_msg
          (Core.Datablock.create ~sk ~creator:0 ~counter:(i + 1) ~now:0L batches))
  in
  let expected =
    Transport.Frame.encode_hello 0
    ^ String.concat "" (List.map Transport.Frame.encode_msg msgs)
  in
  checkb "each frame spans multiple kernel write chunks" true
    (String.length expected / List.length msgs > 2 * 65536);
  List.iter (fun m -> Transport.Conn.multicast conn ~n:2 m) msgs;
  (* Drive the loop and drain the peer concurrently; the bounded receive
     window keeps the sender under backpressure the whole way. *)
  let fd, _ = Unix.accept lfd in
  Unix.set_nonblock fd;
  let got = Buffer.create (String.length expected) in
  let chunk = Bytes.create 8192 in
  let deadline = Transport.Loop.now_ns loop + 30_000_000_000 in
  while
    Buffer.length got < String.length expected && Transport.Loop.now_ns loop < deadline
  do
    Transport.Loop.run_for loop ~span:(Sim.Sim_time.ms 1);
    let draining = ref true in
    while !draining do
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 ->
        draining := false;
        Alcotest.fail "peer stream ended early"
      | n -> Buffer.add_subbytes got chunk 0 n
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
        draining := false
    done
  done;
  checki "no drops under backpressure" 0 (Transport.Conn.dropped conn);
  checki "full wire received" (String.length expected) (Buffer.length got);
  checkb "wire byte-identical under genuine partial writes" true
    (String.equal expected (Buffer.contents got));
  Unix.close fd;
  Unix.close lfd;
  Transport.Conn.close conn

let test_multicast_delivery_and_stats () =
  (* Two real Conn endpoints: multicast delivery decodes back to the
     original message and the receive counters move. *)
  let loop = Transport.Loop.create () in
  let got = ref [] in
  let a = Transport.Conn.create ~loop ~id:0 ~on_msg:(fun ~src:_ _ -> ()) () in
  let b =
    Transport.Conn.create ~loop ~id:1 ~on_msg:(fun ~src msg -> got := (src, msg) :: !got) ()
  in
  let port = Transport.Conn.listen b () in
  Transport.Conn.set_peer_addr a 1 (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let msg = Core.Msg.Fetch { hash = Crypto.Hash.of_string "zz" } in
  Transport.Conn.multicast a ~n:2 msg;
  let ok = spin loop (fun () -> !got <> []) in
  checkb "delivered" true ok;
  (match !got with
  | [ (0, m) ] -> checkb "decodes equal" true (Core.Codec.msg_equal m msg)
  | _ -> Alcotest.fail "wrong delivery");
  let sb = Transport.Conn.stats b in
  checkb "receiver counted reads" true (sb.Transport.Conn.read_syscalls > 0);
  checki "receiver parsed hello + msg" 2 sb.Transport.Conn.frames_recvd;
  checkb "receiver counted bytes" true (sb.Transport.Conn.bytes_recvd > 0);
  Transport.Conn.close a;
  Transport.Conn.close b

(* -- real-TCP clusters --------------------------------------------------- *)

(* Small batches and snappy timers: commits every few tens of
   milliseconds at modest load. The view timeout is set far beyond the
   test's wall clock so view changes never race a short run (the leader
   stays up in both scenarios; faults here target the transport, not the
   view-change protocol, which the sim suite covers). *)
let tcp_cfg () =
  Core.Config.make ~n:4 ~alpha:10 ~bft_size:2 ~k:16 ~payload:64
    ~datablock_timeout:(Sim.Sim_time.ms 20) ~proposal_timeout:(Sim.Sim_time.ms 20)
    ~view_timeout:(Sim.Sim_time.s 120) ~fetch_grace:(Sim.Sim_time.ms 200)
    ~cost:Crypto.Cost_model.free ()

let test_tcp_cluster_commits_and_converges () =
  let r =
    Transport.Cluster.run ~cfg:(tcp_cfg ()) ~load:2000. ~duration:(Sim.Sim_time.s 25)
      ~drain:(Sim.Sim_time.s 10) ~min_confirmed:1200 ()
  in
  checkb "confirmed >= 1000 requests" true (r.Transport.Cluster.confirmed >= 1000);
  checkb "well within the 30 s budget" true (r.Transport.Cluster.wall_sec < 25.);
  checkb "honest replicas reached one state hash" true r.Transport.Cluster.converged;
  checkb "ledgers agree position-wise" true r.Transport.Cluster.ledgers_agree;
  (match r.Transport.Cluster.state_hashes with
  | (_, h) :: rest ->
    checkb "state hashes literally equal" true
      (List.for_all (fun (_, h') -> Crypto.Hash.equal h h') rest)
  | [] -> Alcotest.fail "no state hashes")

let run_until_or_deadline cluster ~deadline_ns pred =
  Transport.Cluster.run_while cluster (fun c ->
      Transport.Loop.now_ns (Transport.Cluster.loop c) < deadline_ns && not (pred c));
  pred cluster

let test_tcp_cluster_survives_fault_and_reconnects () =
  let cfg = tcp_cfg () in
  let cluster = Transport.Cluster.create ~cfg ~load:2000. () in
  let loop = Transport.Cluster.loop cluster in
  let leader = Core.Config.leader_of_view cfg 1 in
  let victim = (leader + 1) mod 4 in
  Transport.Cluster.start_load cluster;
  let ok =
    run_until_or_deadline cluster
      ~deadline_ns:(Transport.Loop.now_ns loop + 15_000_000_000)
      (fun c -> Transport.Cluster.confirmed c >= 300)
  in
  checkb "cluster commits before the fault" true ok;
  (* Kill a non-leader mid-run: its sockets close, peers see EOF. *)
  Transport.Cluster.set_replica_down cluster victim true;
  let base = Transport.Cluster.confirmed cluster in
  let ok =
    run_until_or_deadline cluster
      ~deadline_ns:(Transport.Loop.now_ns loop + 15_000_000_000)
      (fun c -> Transport.Cluster.confirmed c >= base + 300)
  in
  checkb "cluster keeps committing with a replica down (n=4 tolerates f=1)" true ok;
  (* Revive: peers' capped-backoff redials and the victim's own dials
     must knit it back into the mesh. *)
  Transport.Cluster.set_replica_down cluster victim false;
  let victim_conn = Transport.Runtime.conn (Transport.Cluster.nodes cluster).(victim) in
  let ok =
    run_until_or_deadline cluster
      ~deadline_ns:(Transport.Loop.now_ns loop + 15_000_000_000)
      (fun _ -> Transport.Conn.live_connections victim_conn > 0)
  in
  checkb "revived replica reconnected via backoff" true ok;
  Transport.Cluster.stop_load cluster;
  let ok =
    run_until_or_deadline cluster
      ~deadline_ns:(Transport.Loop.now_ns loop + 20_000_000_000)
      Transport.Cluster.state_converged
  in
  checkb "revived replica caught back up to the common state" true ok;
  checkb "ledgers agree after the fault" true (Transport.Cluster.ledgers_agree cluster);
  Transport.Cluster.close cluster

(* The full four-layer metrics surface on the real stack: one short TCP
   run with a registry attached must leave series from the consensus
   layer (per-replica counters, a NON-empty confirm-latency histogram),
   the transport (frames/bytes mirrors), the verify pool and the store —
   and [--metrics-out]'s periodic dump must land on disk as the same
   parseable exposition text. *)
let test_tcp_cluster_metrics_all_layers () =
  let dir = Filename.temp_file "obs_cluster" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "metrics.prom" in
  let reg = Obs.Registry.create () in
  let r =
    Transport.Cluster.run ~cfg:(tcp_cfg ()) ~load:2000. ~duration:(Sim.Sim_time.s 25)
      ~drain:(Sim.Sim_time.s 10) ~min_confirmed:1000 ~obs:reg ~metrics_out:path
      ~metrics_interval_ns:100_000_000 ()
  in
  checkb "run confirmed requests" true (r.Transport.Cluster.confirmed >= 1000);
  let text = Obs.Registry.expose reg in
  let contains sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length text && (String.sub text i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun series -> checkb (series ^ " present") true (contains series))
    [ (* consensus *)
      "leopard_replica_commits_total";
      "leopard_replica_datablocks_total";
      "leopard_confirm_latency_ns_bucket";
      "leopard_confirmed_requests_total";
      (* transport *)
      "leopard_transport_frames_sent_total";
      "leopard_transport_bytes_recvd_total";
      "leopard_transport_coalesce_ratio_x1000";
      (* verify pool *)
      "leopard_verify_tasks_total";
      "leopard_verify_task_latency_ns";
      (* store *)
      "leopard_store_append_latency_ns";
      "leopard_store_rotations_total" ];
  checkb "confirm histogram non-empty" true
    (not (contains "leopard_confirm_latency_ns_count 0\n"));
  (* the periodic dump made it to disk and is the same exposition text
     shape (the final dump in [close] runs after the last scrape) *)
  checkb "dump file exists" true (Sys.file_exists path);
  let ic = open_in_bin path in
  let dumped = really_input_string ic (in_channel_length ic) in
  close_in ic;
  checkb "dump has HELP/TYPE headers" true
    (String.length dumped > 0 && String.sub dumped 0 1 = "#");
  Sys.remove path;
  Unix.rmdir dir

let () =
  Alcotest.run "transport"
    [ ( "frame",
        [ Alcotest.test_case "hello golden bytes" `Quick test_frame_hello_golden;
          Alcotest.test_case "msg golden bytes" `Quick test_frame_msg_golden;
          Alcotest.test_case "byte-at-a-time feed" `Quick test_frame_byte_at_a_time;
          Alcotest.test_case "coalesced feed" `Quick test_frame_coalesced;
          Alcotest.test_case "short read at eof" `Quick test_frame_short_read;
          Alcotest.test_case "error taxonomy & poisoning" `Quick test_frame_errors ] );
      ( "loop",
        [ Alcotest.test_case "same-instant FIFO" `Quick test_loop_timer_fifo;
          Alcotest.test_case "cancel" `Quick test_loop_cancel;
          Alcotest.test_case "schedule from callback" `Quick test_loop_schedule_from_callback;
          Alcotest.test_case "tick hook removal" `Quick test_loop_tick_remove ] );
      ( "data plane",
        [ Alcotest.test_case "pool: reuse, poison, double free" `Quick
            test_pool_reuse_poison_double_free;
          Alcotest.test_case "multicast: wire bytes = per-peer encode" `Quick
            test_multicast_byte_equivalence;
          Alcotest.test_case "multicast: gather coalesces writes" `Quick
            test_multicast_coalesces_writes;
          Alcotest.test_case "multicast: 1-byte write torture" `Quick
            test_multicast_one_byte_torture;
          Alcotest.test_case "large frames: genuine kernel backpressure" `Quick
            test_large_frame_genuine_backpressure;
          Alcotest.test_case "multicast: delivery & recv counters" `Quick
            test_multicast_delivery_and_stats ] );
      ( "tcp cluster",
        [ Alcotest.test_case "commits & state-hash agreement" `Quick
            test_tcp_cluster_commits_and_converges;
          Alcotest.test_case "metrics cover all four layers" `Quick
            test_tcp_cluster_metrics_all_layers;
          Alcotest.test_case "fault: kill, survive, reconnect" `Quick
            test_tcp_cluster_survives_fault_and_reconnects ] ) ]
