(* Unit and property tests for the discrete-event simulation engine. *)

open Sim

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* -- Sim_time ----------------------------------------------------------- *)

let test_time_units () =
  check Alcotest.int64 "us" 1_000L (Sim_time.us 1);
  check Alcotest.int64 "ms" 1_000_000L (Sim_time.ms 1);
  check Alcotest.int64 "s" 1_000_000_000L (Sim_time.s 1);
  check Alcotest.int64 "of_sec" 1_500_000_000L (Sim_time.of_sec 1.5);
  Alcotest.(check (float 1e-9)) "to_sec roundtrip" 2.25 (Sim_time.to_sec (Sim_time.of_sec 2.25))

let test_time_arith () =
  let t = Sim_time.(zero + ms 5) in
  check Alcotest.int64 "add" 5_000_000L t;
  check Alcotest.int64 "sub" 3_000_000L Sim_time.(t - ms 2);
  checkb "compare" true (Sim_time.compare t Sim_time.zero > 0);
  check Alcotest.int64 "min" Sim_time.zero (Sim_time.min t Sim_time.zero);
  check Alcotest.int64 "max" t (Sim_time.max t Sim_time.zero)

(* -- Heap --------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.add h ~key:5L ~seq:0 "e";
  Heap.add h ~key:1L ~seq:1 "a";
  Heap.add h ~key:3L ~seq:2 "c";
  Heap.add h ~key:2L ~seq:3 "b";
  Heap.add h ~key:4L ~seq:4 "d";
  let order = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (_, _, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list string) "sorted" [ "a"; "b"; "c"; "d"; "e" ] (List.rev !order)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.add h ~key:7L ~seq:i i
  done;
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | Some (_, _, v) ->
      out := v :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  check Alcotest.(list int) "ties are FIFO" (List.init 10 Fun.id) (List.rev !out)

let test_heap_peek () =
  let h = Heap.create () in
  checkb "empty peek" true (Heap.peek_min h = None);
  Heap.add h ~key:9L ~seq:0 "x";
  (match Heap.peek_min h with
   | Some (9L, 0, "x") -> ()
   | Some _ | None -> Alcotest.fail "bad peek");
  checki "peek keeps" 1 (Heap.length h)

(* 10k random add/pop interleavings, mixing the int64 and unboxed int-ns
   insertion paths, checked pop-by-pop against a reference model: every
   pop must return exactly the model's (key, seq) minimum. *)
let test_heap_random_vs_model () =
  let rng = Rng.create 1234L in
  let h = Heap.create () in
  let model = ref [] in
  let next_seq = ref 0 in
  let cmp (k1, s1) (k2, s2) =
    match Int64.compare k1 k2 with 0 -> Int.compare s1 s2 | c -> c
  in
  let model_min () = List.fold_left (fun a x -> if cmp x a < 0 then x else a) (List.hd !model) !model in
  let pop_check () =
    match Heap.pop_min h with
    | None -> Alcotest.fail "heap empty while model is not"
    | Some (k, s, ()) ->
      let mk, ms = model_min () in
      checkb "pop matches model min" true (Int64.equal k mk && s = ms);
      model := List.filter (fun (_, s') -> s' <> ms) !model
  in
  for _ = 1 to 10_000 do
    if !model = [] || Rng.int rng 3 < 2 then begin
      let k = Int64.of_int (Rng.int rng 1_000) in
      let seq = !next_seq in
      incr next_seq;
      if Rng.bool rng then Heap.add h ~key:k ~seq ()
      else Heap.add_ns h ~key_ns:(Int64.to_int k) ~seq ();
      model := (k, seq) :: !model
    end
    else pop_check ()
  done;
  while !model <> [] do
    pop_check ()
  done;
  checkb "heap drained with model" true (Heap.is_empty h)

(* Popping must clear the vacated slot: a heap that retains a reference
   to a popped value is a space leak at millions of events per run. *)
let test_heap_pop_releases_value () =
  let h = Heap.create () in
  let w = Weak.create 1 in
  (let v = Bytes.make 64 'x' in
   Weak.set w 0 (Some v);
   Heap.add h ~key:1L ~seq:0 (Some v));
  (* a survivor, so the heap's arrays stay live and non-empty *)
  Heap.add h ~key:2L ~seq:1 None;
  (match Heap.pop_min h with
   | Some (1L, 0, Some _) -> ()
   | _ -> Alcotest.fail "expected the weak-tracked entry first");
  Gc.full_major ();
  Gc.full_major ();
  checkb "popped value reclaimed" true (Weak.get w 0 = None);
  checki "survivor retained" 1 (Heap.length h)

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list (pair int64 small_nat))
    (fun pairs ->
      let h = Heap.create () in
      List.iteri (fun i (k, _) -> Heap.add h ~key:k ~seq:i ()) pairs;
      let rec drain last =
        match Heap.pop_min h with
        | None -> true
        | Some (k, _, ()) -> Int64.compare last k <= 0 && drain k
      in
      drain Int64.min_int)

(* -- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 5L in
  let c = Rng.split a in
  (* The split stream differs from the parent's continuation. *)
  checkb "differs" true (Rng.int64 c <> Rng.int64 a)

let prop_rng_int_bounds =
  QCheck.Test.make ~name:"Rng.int in bounds and non-negative" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_float_bounds =
  QCheck.Test.make ~name:"Rng.float in bounds" ~count:500 QCheck.int64 (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng 3.5 in
      v >= 0. && v < 3.5)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 11L in
  for _ = 1 to 50 do
    let k = 1 + Rng.int rng 10 in
    let n = k + Rng.int rng 20 in
    let sample = Rng.sample_without_replacement rng k n in
    checki "size" k (List.length sample);
    checki "distinct" k (List.length (List.sort_uniq Int.compare sample));
    List.iter (fun v -> checkb "in range" true (v >= 0 && v < n)) sample
  done

let test_rng_exponential_positive () =
  let rng = Rng.create 3L in
  for _ = 1 to 100 do
    checkb "positive" true (Rng.exponential rng ~mean:2.0 >= 0.)
  done

(* -- Engine ------------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:(Sim_time.ms 3) (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:(Sim_time.ms 1) (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:(Sim_time.ms 2) (fun () -> log := 2 :: !log));
  Engine.run e;
  check Alcotest.(list int) "order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref Sim_time.zero in
  ignore (Engine.schedule e ~delay:(Sim_time.ms 7) (fun () -> seen := Engine.now e));
  Engine.run e;
  check Alcotest.int64 "clock at callback" (Sim_time.ms 7) !seen

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:(Sim_time.ms 1) (fun () -> fired := true) in
  Engine.cancel e h;
  Engine.run e;
  checkb "cancelled does not fire" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:(Sim_time.ms 1) (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:(Sim_time.ms 100) (fun () -> incr fired));
  Engine.run ~until:(Sim_time.ms 10) e;
  checki "only early event" 1 !fired;
  check Alcotest.int64 "clock clamped to until" (Sim_time.ms 10) (Engine.now e);
  Engine.run e;
  checki "late event still fires" 2 !fired

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Engine.schedule e ~delay:(Sim_time.ms 1) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check Alcotest.(list int) "fifo" [ 0; 1; 2; 3; 4 ] (List.rev !log)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:(Sim_time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:(Sim_time.ms 1) (fun () -> log := "inner" :: !log))));
  Engine.run e;
  check Alcotest.(list string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check Alcotest.int64 "final clock" (Sim_time.ms 2) (Engine.now e)

let test_engine_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:(Sim_time.ms 1) tick)
  in
  ignore (Engine.schedule e ~delay:(Sim_time.ms 1) tick);
  Engine.run ~max_events:50 e;
  checki "bounded" 50 !count

let test_engine_negative_delay_clamped () =
  let e = Engine.create () in
  let at = ref (-1L) in
  ignore (Engine.schedule e ~delay:(Sim_time.ms 5) (fun () ->
      ignore (Engine.schedule e ~delay:(-50L) (fun () -> at := Engine.now e))));
  Engine.run e;
  check Alcotest.int64 "clamped to now" (Sim_time.ms 5) !at

(* -- Trace -------------------------------------------------------------- *)

let test_trace_basic () =
  let tr = Trace.create () in
  Trace.record tr ~at:Sim_time.zero ~tag:"a" "one";
  Trace.recordf tr ~at:(Sim_time.ms 1) ~tag:"b" "%d" 42;
  checki "length" 2 (Trace.length tr);
  checki "find" 1 (List.length (Trace.find tr ~tag:"a"));
  checki "count" 1 (Trace.count tr ~tag:"b");
  (match Trace.find tr ~tag:"b" with
   | [ e ] -> check Alcotest.string "formatted detail" "42" e.Trace.detail
   | _ -> Alcotest.fail "expected one entry")

let test_trace_disabled () =
  let tr = Trace.create ~enabled:false () in
  Trace.record tr ~at:Sim_time.zero ~tag:"x" "y";
  checki "no entries" 0 (Trace.length tr)

let test_trace_capacity () =
  let tr = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record tr ~at:Sim_time.zero ~tag:"t" (string_of_int i)
  done;
  checki "capped" 3 (Trace.length tr);
  (match Trace.entries tr with
   | e :: _ -> check Alcotest.string "oldest dropped" "3" e.Trace.detail
   | [] -> Alcotest.fail "empty")

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "sim"
    [ ( "time",
        [ Alcotest.test_case "units" `Quick test_time_units;
          Alcotest.test_case "arithmetic" `Quick test_time_arith ] );
      ( "heap",
        [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "random ops vs model" `Quick test_heap_random_vs_model;
          Alcotest.test_case "pop releases value" `Quick test_heap_pop_releases_value ]
        @ qsuite [ prop_heap_sorted ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive ]
        @ qsuite [ prop_rng_int_bounds; prop_rng_float_bounds ] );
      ( "engine",
        [ Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "negative delay clamped" `Quick
            test_engine_negative_delay_clamped ] );
      ( "trace",
        [ Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "capacity" `Quick test_trace_capacity ] ) ]
