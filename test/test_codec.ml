(* Round-trip property tests for the binary wire codec. *)

let checkb = Alcotest.(check bool)

let rng = Sim.Rng.create 2026L
let tsetup, tkeys = Crypto.Threshold.keygen rng ~threshold:2 ~parties:4
let pk, sk = Crypto.Signature.keygen rng

(* -- generators --------------------------------------------------------- *)

let gen_batch =
  QCheck.Gen.(
    map
      (fun (id, count, size_each, born, resend) ->
        Workload.Request.make ~id ~count:(1 + count) ~size_each ~born:(Int64.of_int born)
          ~resend ())
      (tup5 (int_bound 1_000_000) (int_bound 500) (int_bound 4096) (int_bound 1_000_000) bool))

let gen_datablock =
  QCheck.Gen.(
    map
      (fun (creator, counter, batches, at) ->
        Core.Datablock.create ~sk ~creator ~counter:(1 + counter)
          ~now:(Int64.of_int at)
          (List.map (fun b -> b) (if batches = [] then [ Workload.Request.make ~id:0 ~count:1 ~size_each:1 ~born:0L () ] else batches)))
      (tup4 (int_bound 64) (int_bound 10_000) (list_size (int_range 1 20) gen_batch)
         (int_bound 1_000_000)))

let gen_hash = QCheck.Gen.map (fun s -> Crypto.Hash.of_string s) QCheck.Gen.string

let gen_bftblock =
  QCheck.Gen.(
    bool >>= fun dummy ->
    map
      (fun (view, sn, links) ->
        if dummy then Core.Bftblock.dummy ~view ~sn:(1 + sn)
        else Core.Bftblock.create ~view ~sn:(1 + sn) ~links)
      (tup3 (int_range 1 100) (int_bound 10_000) (list_size (int_range 0 30) gen_hash)))

let gen_share =
  QCheck.Gen.map (fun (i, m) -> Crypto.Threshold.sign_share tkeys.(i mod 4) m)
    QCheck.Gen.(tup2 (int_bound 3) string)

let gen_aggregate =
  QCheck.Gen.map
    (fun m ->
      match
        Crypto.Threshold.combine tsetup m
          (List.init 3 (fun i -> Crypto.Threshold.sign_share tkeys.(i) m))
      with
      | Some a -> a
      | None -> assert false)
    QCheck.Gen.string

let gen_signature = QCheck.Gen.map (fun m -> Crypto.Signature.sign sk m) QCheck.Gen.string

let gen_cert =
  QCheck.Gen.(
    map
      (fun (sn, h, proof) -> Core.Msg.{ cp_sn = sn; cp_state = h; cp_proof = proof })
      (tup3 (int_bound 10_000) gen_hash gen_aggregate))

let gen_view_change =
  QCheck.Gen.(
    map
      (fun (nv, sender, cp, entries, signature) ->
        Core.Msg.
          { vc_new_view = 1 + nv;
            vc_sender = sender;
            vc_checkpoint = cp;
            vc_entries = entries;
            vc_signature = signature })
      (tup5 (int_bound 50) (int_bound 63) (option gen_cert)
         (list_size (int_range 0 5)
            (map
               (fun (v, b, p) -> (1 + v, b, p))
               (tup3 (int_bound 50) gen_bftblock gen_aggregate)))
         gen_signature))

let gen_msg =
  QCheck.Gen.(
    frequency
      [ (2, map (fun db -> Core.Msg.Datablock_msg db) gen_datablock);
        ( 2,
          map
            (fun (b, s, j) -> Core.Msg.Propose { block = b; leader_share = s; justification = j })
            (tup3 gen_bftblock gen_share (option (map (fun (v, a) -> (1 + v, a)) (tup2 (int_bound 40) gen_aggregate)))) );
        ( 2,
          map
            (fun (view, sn, h, s) -> Core.Msg.Prepare_vote { view; sn; block_hash = h; share = s })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_share) );
        ( 1,
          map
            (fun (view, sn, h, p) -> Core.Msg.Notarization { view; sn; block_hash = h; proof = p })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_aggregate) );
        ( 1,
          map
            (fun (view, sn, h, s) -> Core.Msg.Commit_vote { view; sn; notar_digest = h; share = s })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_share) );
        ( 1,
          map
            (fun (view, sn, h, p) -> Core.Msg.Confirmation { view; sn; notar_digest = h; proof = p })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_aggregate) );
        ( 1,
          map
            (fun (sn, h, s) -> Core.Msg.Checkpoint_vote { cp_sn = sn; cp_state = h; share = s })
            (tup3 (int_bound 10_000) gen_hash gen_share) );
        (1, map (fun c -> Core.Msg.Checkpoint_cert_msg c) gen_cert);
        ( 1,
          map
            (fun (view, sender, s) -> Core.Msg.Timeout { view; sender; signature = s })
            (tup3 (int_range 1 50) (int_bound 63) gen_signature) );
        (1, map (fun vc -> Core.Msg.View_change_msg vc) gen_view_change);
        ( 1,
          map
            (fun (v, sender, vcs, s) ->
              Core.Msg.New_view_msg
                Core.Msg.{ nv_view = 1 + v; nv_sender = sender; nv_vcs = vcs; nv_signature = s })
            (tup4 (int_bound 50) (int_bound 63) (list_size (int_range 0 3) gen_view_change)
               gen_signature) );
        (1, map (fun h -> Core.Msg.Fetch { hash = h }) gen_hash);
        (1, map (fun db -> Core.Msg.Fetch_reply db) gen_datablock) ])

(* -- properties ---------------------------------------------------------- *)

let prop_batch_roundtrip =
  QCheck.Test.make ~name:"batch round-trips" ~count:300 (QCheck.make gen_batch) (fun b ->
      match Core.Codec.decode_batch (Core.Codec.encode_batch b) with
      | Some b' -> Core.Codec.batch_equal b b'
      | None -> false)

let prop_datablock_roundtrip =
  QCheck.Test.make ~name:"datablock round-trips, hash & verify preserved" ~count:100
    (QCheck.make gen_datablock) (fun db ->
      match Core.Codec.decode_datablock (Core.Codec.encode_datablock db) with
      | Some db' ->
        Core.Codec.datablock_equal db db'
        && Crypto.Hash.equal (Core.Datablock.hash db) (Core.Datablock.hash db')
        && Core.Datablock.verify ~pks:(Array.make 65 pk) db'
           = Core.Datablock.verify ~pks:(Array.make 65 pk) db
      | None -> false)

let prop_bftblock_roundtrip =
  QCheck.Test.make ~name:"bftblock round-trips with identical hash" ~count:200
    (QCheck.make gen_bftblock) (fun b ->
      match Core.Codec.decode_bftblock (Core.Codec.encode_bftblock b) with
      | Some b' ->
        b.Core.Bftblock.view = b'.Core.Bftblock.view
        && Core.Bftblock.equal_content b b'
        && Crypto.Hash.equal (Core.Bftblock.hash b) (Core.Bftblock.hash b')
      | None -> false)

let prop_msg_roundtrip =
  QCheck.Test.make ~name:"every message round-trips" ~count:200 (QCheck.make gen_msg) (fun m ->
      match Core.Codec.decode_msg (Core.Codec.encode_msg m) with
      | Some m' -> Core.Codec.msg_equal m m'
      | None -> false)

let prop_encoding_deterministic =
  QCheck.Test.make ~name:"encoding is deterministic" ~count:100 (QCheck.make gen_msg) (fun m ->
      String.equal (Core.Codec.encode_msg m) (Core.Codec.encode_msg m))

let prop_truncation_rejected =
  QCheck.Test.make ~name:"any strict prefix fails to decode" ~count:100 (QCheck.make gen_msg)
    (fun m ->
      let s = Core.Codec.encode_msg m in
      let cut = String.length s / 2 in
      Core.Codec.decode_msg (String.sub s 0 cut) = None)

let prop_trailing_garbage_rejected =
  QCheck.Test.make ~name:"trailing bytes fail to decode" ~count:100 (QCheck.make gen_msg)
    (fun m -> Core.Codec.decode_msg (Core.Codec.encode_msg m ^ "\x00") = None)

(* -- golden bytes -------------------------------------------------------- *)

(* Hex images captured from the seed codec before the zero-copy rewrite:
   the wire format is frozen, so any byte-level drift is a break, not a
   refactor. *)

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let checks = Alcotest.(check string)

let test_golden_batch () =
  let b =
    Workload.Request.make ~id:7 ~count:3 ~size_each:128 ~born:123456789L ~resend:true ()
  in
  checks "batch bytes" "07000000030000008000000015cd5b070000000001"
    (to_hex (Core.Codec.encode_batch b))

let test_golden_bftblock () =
  let links = [ Crypto.Hash.of_string "a"; Crypto.Hash.of_string "b" ] in
  let blk = Core.Bftblock.create ~view:1 ~sn:2 ~links in
  checks "bftblock bytes"
    "0100000002000000000200000020000000ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb200000003e23e8160039594a33894f6564e1b1348bbd7a0088d42c4acb73eeaed59c009d"
    (to_hex (Core.Codec.encode_bftblock blk));
  let dummy = Core.Bftblock.dummy ~view:5 ~sn:9 in
  checks "dummy bftblock bytes" "05000000090000000100000000"
    (to_hex (Core.Codec.encode_bftblock dummy))

let test_golden_fetch () =
  checks "fetch bytes" "0b20000000ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (to_hex (Core.Codec.encode_msg (Core.Msg.Fetch { hash = Crypto.Hash.of_string "abc" })))

(* -- integer boundaries -------------------------------------------------- *)

let test_u32_boundaries () =
  (* Max u32 view survives the round trip; i64 extremes survive in [born]. *)
  let m =
    Core.Msg.Timeout
      { view = 0xFFFFFFFF; sender = 0; signature = Crypto.Signature.sign sk "t" }
  in
  (match Core.Codec.decode_msg (Core.Codec.encode_msg m) with
   | Some (Core.Msg.Timeout { view; _ }) -> Alcotest.(check int) "u32 max view" 0xFFFFFFFF view
   | _ -> Alcotest.fail "u32 max round trip failed");
  List.iter
    (fun born ->
      let b = Workload.Request.make ~id:1 ~count:1 ~size_each:1 ~born () in
      match Core.Codec.decode_batch (Core.Codec.encode_batch b) with
      | Some b' -> Alcotest.(check int64) "i64 born" born b'.Workload.Request.born
      | None -> Alcotest.fail "i64 round trip failed")
    [ Int64.max_int; Int64.min_int; 0L; -1L ]

let test_encode_error_on_negative () =
  (* The old [assert (v >= 0)] vanished under -noassert; the explicit
     Encode_error must fire regardless of build flags. *)
  let bad =
    Core.Msg.Timeout { view = -1; sender = 0; signature = Crypto.Signature.sign sk "t" }
  in
  checkb "negative view raises" true
    (match Core.Codec.encode_msg bad with
     | exception Core.Codec.Encode_error _ -> true
     | _ -> false);
  let too_big =
    Core.Msg.Timeout { view = 0x1_0000_0000; sender = 0; signature = Crypto.Signature.sign sk "t" }
  in
  checkb "oversized u32 raises" true
    (match Core.Codec.encode_msg too_big with
     | exception Core.Codec.Encode_error _ -> true
     | _ -> false)

(* -- unit edges ---------------------------------------------------------- *)

let test_decode_garbage () =
  checkb "empty" true (Core.Codec.decode_msg "" = None);
  checkb "bad tag" true (Core.Codec.decode_msg "\xff" = None);
  checkb "random" true (Core.Codec.decode_msg "not a message at all" = None)

let test_decoded_share_still_verifies () =
  let msg_payload = "vote payload" in
  let share = Crypto.Threshold.sign_share tkeys.(1) msg_payload in
  let m =
    Core.Msg.Prepare_vote
      { view = 1; sn = 2; block_hash = Crypto.Hash.of_string "b"; share }
  in
  match Core.Codec.decode_msg (Core.Codec.encode_msg m) with
  | Some (Core.Msg.Prepare_vote { share = share'; _ }) ->
    checkb "decoded share verifies" true (Crypto.Threshold.verify_share tsetup share' msg_payload);
    checkb "decoded share rejects other payload" false
      (Crypto.Threshold.verify_share tsetup share' "other")
  | _ -> Alcotest.fail "round trip failed"

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "codec"
    [ ( "round trips",
        qsuite
          [ prop_batch_roundtrip;
            prop_datablock_roundtrip;
            prop_bftblock_roundtrip;
            prop_msg_roundtrip;
            prop_encoding_deterministic;
            prop_truncation_rejected;
            prop_trailing_garbage_rejected ] );
      ( "golden bytes",
        [ Alcotest.test_case "batch" `Quick test_golden_batch;
          Alcotest.test_case "bftblock" `Quick test_golden_bftblock;
          Alcotest.test_case "fetch msg" `Quick test_golden_fetch ] );
      ( "edges",
        [ Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
          Alcotest.test_case "u32/i64 boundaries" `Quick test_u32_boundaries;
          Alcotest.test_case "encode errors" `Quick test_encode_error_on_negative;
          Alcotest.test_case "credentials survive the wire" `Quick
            test_decoded_share_still_verifies ] ) ]
