(* Round-trip property tests for the binary wire codec. *)

let checkb = Alcotest.(check bool)

let rng = Sim.Rng.create 2026L
let tsetup, tkeys = Crypto.Threshold.keygen rng ~threshold:2 ~parties:4
let pk, sk = Crypto.Signature.keygen rng

(* -- generators --------------------------------------------------------- *)

let gen_batch =
  QCheck.Gen.(
    map
      (fun (id, count, size_each, born, resend) ->
        Workload.Request.make ~id ~count:(1 + count) ~size_each ~born:(Int64.of_int born)
          ~resend ())
      (tup5 (int_bound 1_000_000) (int_bound 500) (int_bound 4096) (int_bound 1_000_000) bool))

let gen_datablock =
  QCheck.Gen.(
    map
      (fun (creator, counter, batches, at) ->
        Core.Datablock.create ~sk ~creator ~counter:(1 + counter)
          ~now:(Int64.of_int at)
          (List.map (fun b -> b) (if batches = [] then [ Workload.Request.make ~id:0 ~count:1 ~size_each:1 ~born:0L () ] else batches)))
      (tup4 (int_bound 64) (int_bound 10_000) (list_size (int_range 1 20) gen_batch)
         (int_bound 1_000_000)))

let gen_hash = QCheck.Gen.map (fun s -> Crypto.Hash.of_string s) QCheck.Gen.string

let gen_bftblock =
  QCheck.Gen.(
    bool >>= fun dummy ->
    map
      (fun (view, sn, links) ->
        if dummy then Core.Bftblock.dummy ~view ~sn:(1 + sn)
        else Core.Bftblock.create ~view ~sn:(1 + sn) ~links)
      (tup3 (int_range 1 100) (int_bound 10_000) (list_size (int_range 0 30) gen_hash)))

let gen_share =
  QCheck.Gen.map (fun (i, m) -> Crypto.Threshold.sign_share tkeys.(i mod 4) m)
    QCheck.Gen.(tup2 (int_bound 3) string)

let gen_aggregate =
  QCheck.Gen.map
    (fun m ->
      match
        Crypto.Threshold.combine tsetup m
          (List.init 3 (fun i -> Crypto.Threshold.sign_share tkeys.(i) m))
      with
      | Some a -> a
      | None -> assert false)
    QCheck.Gen.string

let gen_signature = QCheck.Gen.map (fun m -> Crypto.Signature.sign sk m) QCheck.Gen.string

let gen_cert =
  QCheck.Gen.(
    map
      (fun (sn, h, proof) -> Core.Msg.{ cp_sn = sn; cp_state = h; cp_proof = proof })
      (tup3 (int_bound 10_000) gen_hash gen_aggregate))

let gen_view_change =
  QCheck.Gen.(
    map
      (fun (nv, sender, cp, entries, signature) ->
        Core.Msg.
          { vc_new_view = 1 + nv;
            vc_sender = sender;
            vc_checkpoint = cp;
            vc_entries = entries;
            vc_signature = signature })
      (tup5 (int_bound 50) (int_bound 63) (option gen_cert)
         (list_size (int_range 0 5)
            (map
               (fun (v, b, p) -> (1 + v, b, p))
               (tup3 (int_bound 50) gen_bftblock gen_aggregate)))
         gen_signature))

let gen_msg =
  QCheck.Gen.(
    frequency
      [ (2, map (fun db -> Core.Msg.Datablock_msg db) gen_datablock);
        ( 2,
          map
            (fun (b, s, j) -> Core.Msg.Propose { block = b; leader_share = s; justification = j })
            (tup3 gen_bftblock gen_share (option (map (fun (v, a) -> (1 + v, a)) (tup2 (int_bound 40) gen_aggregate)))) );
        ( 2,
          map
            (fun (view, sn, h, s) -> Core.Msg.Prepare_vote { view; sn; block_hash = h; share = s })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_share) );
        ( 1,
          map
            (fun (view, sn, h, p) -> Core.Msg.Notarization { view; sn; block_hash = h; proof = p })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_aggregate) );
        ( 1,
          map
            (fun (view, sn, h, s) -> Core.Msg.Commit_vote { view; sn; notar_digest = h; share = s })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_share) );
        ( 1,
          map
            (fun (view, sn, h, p) -> Core.Msg.Confirmation { view; sn; notar_digest = h; proof = p })
            (tup4 (int_range 1 50) (int_bound 10_000) gen_hash gen_aggregate) );
        ( 1,
          map
            (fun (sn, h, s) -> Core.Msg.Checkpoint_vote { cp_sn = sn; cp_state = h; share = s })
            (tup3 (int_bound 10_000) gen_hash gen_share) );
        (1, map (fun c -> Core.Msg.Checkpoint_cert_msg c) gen_cert);
        ( 1,
          map
            (fun (view, sender, s) -> Core.Msg.Timeout { view; sender; signature = s })
            (tup3 (int_range 1 50) (int_bound 63) gen_signature) );
        (1, map (fun vc -> Core.Msg.View_change_msg vc) gen_view_change);
        ( 1,
          map
            (fun (v, sender, vcs, s) ->
              Core.Msg.New_view_msg
                Core.Msg.{ nv_view = 1 + v; nv_sender = sender; nv_vcs = vcs; nv_signature = s })
            (tup4 (int_bound 50) (int_bound 63) (list_size (int_range 0 3) gen_view_change)
               gen_signature) );
        (1, map (fun h -> Core.Msg.Fetch { hash = h }) gen_hash);
        (1, map (fun db -> Core.Msg.Fetch_reply db) gen_datablock) ])

(* -- properties ---------------------------------------------------------- *)

let prop_batch_roundtrip =
  QCheck.Test.make ~name:"batch round-trips" ~count:300 (QCheck.make gen_batch) (fun b ->
      match Core.Codec.decode_batch (Core.Codec.encode_batch b) with
      | Some b' -> Core.Codec.batch_equal b b'
      | None -> false)

let prop_datablock_roundtrip =
  QCheck.Test.make ~name:"datablock round-trips, hash & verify preserved" ~count:100
    (QCheck.make gen_datablock) (fun db ->
      match Core.Codec.decode_datablock (Core.Codec.encode_datablock db) with
      | Some db' ->
        Core.Codec.datablock_equal db db'
        && Crypto.Hash.equal (Core.Datablock.hash db) (Core.Datablock.hash db')
        && Core.Datablock.verify ~pks:(Array.make 65 pk) db'
           = Core.Datablock.verify ~pks:(Array.make 65 pk) db
      | None -> false)

let prop_bftblock_roundtrip =
  QCheck.Test.make ~name:"bftblock round-trips with identical hash" ~count:200
    (QCheck.make gen_bftblock) (fun b ->
      match Core.Codec.decode_bftblock (Core.Codec.encode_bftblock b) with
      | Some b' ->
        b.Core.Bftblock.view = b'.Core.Bftblock.view
        && Core.Bftblock.equal_content b b'
        && Crypto.Hash.equal (Core.Bftblock.hash b) (Core.Bftblock.hash b')
      | None -> false)

let prop_msg_roundtrip =
  QCheck.Test.make ~name:"every message round-trips" ~count:200 (QCheck.make gen_msg) (fun m ->
      match Core.Codec.decode_msg (Core.Codec.encode_msg m) with
      | Some m' -> Core.Codec.msg_equal m m'
      | None -> false)

let prop_encoding_deterministic =
  QCheck.Test.make ~name:"encoding is deterministic" ~count:100 (QCheck.make gen_msg) (fun m ->
      String.equal (Core.Codec.encode_msg m) (Core.Codec.encode_msg m))

let prop_truncation_rejected =
  QCheck.Test.make ~name:"any strict prefix fails to decode" ~count:100 (QCheck.make gen_msg)
    (fun m ->
      let s = Core.Codec.encode_msg m in
      let cut = String.length s / 2 in
      Core.Codec.decode_msg (String.sub s 0 cut) = None)

let prop_trailing_garbage_rejected =
  QCheck.Test.make ~name:"trailing bytes fail to decode" ~count:100 (QCheck.make gen_msg)
    (fun m -> Core.Codec.decode_msg (Core.Codec.encode_msg m ^ "\x00") = None)

(* -- golden bytes -------------------------------------------------------- *)

(* Hex images captured from the seed codec before the zero-copy rewrite:
   the wire format is frozen, so any byte-level drift is a break, not a
   refactor. *)

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i -> Printf.sprintf "%02x" (Char.code s.[i])))

let checks = Alcotest.(check string)

let test_golden_batch () =
  let b =
    Workload.Request.make ~id:7 ~count:3 ~size_each:128 ~born:123456789L ~resend:true ()
  in
  checks "batch bytes" "07000000030000008000000015cd5b070000000001"
    (to_hex (Core.Codec.encode_batch b))

let test_golden_bftblock () =
  let links = [ Crypto.Hash.of_string "a"; Crypto.Hash.of_string "b" ] in
  let blk = Core.Bftblock.create ~view:1 ~sn:2 ~links in
  checks "bftblock bytes"
    "0100000002000000000200000020000000ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb200000003e23e8160039594a33894f6564e1b1348bbd7a0088d42c4acb73eeaed59c009d"
    (to_hex (Core.Codec.encode_bftblock blk));
  let dummy = Core.Bftblock.dummy ~view:5 ~sn:9 in
  checks "dummy bftblock bytes" "05000000090000000100000000"
    (to_hex (Core.Codec.encode_bftblock dummy))

let test_golden_fetch () =
  checks "fetch bytes" "0b20000000ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (to_hex (Core.Codec.encode_msg (Core.Msg.Fetch { hash = Crypto.Hash.of_string "abc" })))

(* The view-change family: deterministic values (fixed rng seed above),
   hex captured once and frozen like the rest of the golden set. *)

let golden_aggregate =
  match
    Crypto.Threshold.combine tsetup "golden"
      (List.init 3 (fun i -> Crypto.Threshold.sign_share tkeys.(i) "golden"))
  with
  | Some a -> a
  | None -> assert false

let golden_timeout =
  Core.Msg.Timeout
    { view = 3; sender = 2; signature = Crypto.Signature.sign sk (Core.Msg.timeout_payload ~view:3) }

let golden_view_change =
  let entry_block = Core.Bftblock.create ~view:3 ~sn:17 ~links:[ Crypto.Hash.of_string "L" ] in
  let vc =
    { Core.Msg.vc_new_view = 4;
      vc_sender = 1;
      vc_checkpoint =
        Some
          { Core.Msg.cp_sn = 16;
            cp_state = Crypto.Hash.of_string "state";
            cp_proof = golden_aggregate };
      vc_entries = [ (3, entry_block, golden_aggregate) ];
      vc_signature = Crypto.Signature.sign sk "vc" }
  in
  { vc with Core.Msg.vc_signature = Crypto.Signature.sign sk (Core.Msg.view_change_payload vc) }

let golden_new_view =
  let nv =
    { Core.Msg.nv_view = 4; nv_sender = 0; nv_vcs = [ golden_view_change ];
      nv_signature = Crypto.Signature.sign sk "nv" }
  in
  { nv with Core.Msg.nv_signature = Crypto.Signature.sign sk (Core.Msg.new_view_payload nv) }

let golden_timeout_hex =
  "080300000002000000200000000381e97c53104c69e5ecd8ede16ae8f42337d6ba911a71ecd9a090902cdecadf"

let golden_view_change_hex =
  "0904000000010000000110000000200000004ba69735ca53765ed6a709edb56c6ea236b7193a3b29a6b390c346f0f4340e4ee0f4825d0100000003000000030000001100000000010000002000000072dfcfb0c470ac255cde83fb8fe38de8a128188e03ea5ba5b2a93adbea1062fae0f4825d20000000be99d4c7b1e30407624e06d23e6bf19ae9996ba5cd2f9146925683261362f77a"

let golden_new_view_hex =
  "0a04000000000000000100000004000000010000000110000000200000004ba69735ca53765ed6a709edb56c6ea236b7193a3b29a6b390c346f0f4340e4ee0f4825d0100000003000000030000001100000000010000002000000072dfcfb0c470ac255cde83fb8fe38de8a128188e03ea5ba5b2a93adbea1062fae0f4825d20000000be99d4c7b1e30407624e06d23e6bf19ae9996ba5cd2f9146925683261362f77a2000000005965dfda4eb71ccab0fe3dc471c6db43cf923fa28172f587a9c79949ad96914"

let test_golden_timeout () =
  checks "timeout bytes" golden_timeout_hex (to_hex (Core.Codec.encode_msg golden_timeout))

let test_golden_view_change () =
  checks "view-change bytes" golden_view_change_hex
    (to_hex (Core.Codec.encode_msg (Core.Msg.View_change_msg golden_view_change)))

let test_golden_new_view () =
  checks "new-view bytes" golden_new_view_hex
    (to_hex (Core.Codec.encode_msg (Core.Msg.New_view_msg golden_new_view)))

(* -- integer boundaries -------------------------------------------------- *)

let test_u32_boundaries () =
  (* Max u32 view survives the round trip; i64 extremes survive in [born]. *)
  let m =
    Core.Msg.Timeout
      { view = 0xFFFFFFFF; sender = 0; signature = Crypto.Signature.sign sk "t" }
  in
  (match Core.Codec.decode_msg (Core.Codec.encode_msg m) with
   | Some (Core.Msg.Timeout { view; _ }) -> Alcotest.(check int) "u32 max view" 0xFFFFFFFF view
   | _ -> Alcotest.fail "u32 max round trip failed");
  List.iter
    (fun born ->
      let b = Workload.Request.make ~id:1 ~count:1 ~size_each:1 ~born () in
      match Core.Codec.decode_batch (Core.Codec.encode_batch b) with
      | Some b' -> Alcotest.(check int64) "i64 born" born b'.Workload.Request.born
      | None -> Alcotest.fail "i64 round trip failed")
    [ Int64.max_int; Int64.min_int; 0L; -1L ]

let test_encode_error_on_negative () =
  (* The old [assert (v >= 0)] vanished under -noassert; the explicit
     Encode_error must fire regardless of build flags. *)
  let bad =
    Core.Msg.Timeout { view = -1; sender = 0; signature = Crypto.Signature.sign sk "t" }
  in
  checkb "negative view raises" true
    (match Core.Codec.encode_msg bad with
     | exception Core.Codec.Encode_error _ -> true
     | _ -> false);
  let too_big =
    Core.Msg.Timeout { view = 0x1_0000_0000; sender = 0; signature = Crypto.Signature.sign sk "t" }
  in
  checkb "oversized u32 raises" true
    (match Core.Codec.encode_msg too_big with
     | exception Core.Codec.Encode_error _ -> true
     | _ -> false)

(* -- unit edges ---------------------------------------------------------- *)

let test_decode_garbage () =
  checkb "empty" true (Core.Codec.decode_msg "" = None);
  checkb "bad tag" true (Core.Codec.decode_msg "\xff" = None);
  checkb "random" true (Core.Codec.decode_msg "not a message at all" = None)

let test_decoded_share_still_verifies () =
  let msg_payload = "vote payload" in
  let share = Crypto.Threshold.sign_share tkeys.(1) msg_payload in
  let m =
    Core.Msg.Prepare_vote
      { view = 1; sn = 2; block_hash = Crypto.Hash.of_string "b"; share }
  in
  match Core.Codec.decode_msg (Core.Codec.encode_msg m) with
  | Some (Core.Msg.Prepare_vote { share = share'; _ }) ->
    checkb "decoded share verifies" true (Crypto.Threshold.verify_share tsetup share' msg_payload);
    checkb "decoded share rejects other payload" false
      (Crypto.Threshold.verify_share tsetup share' "other")
  | _ -> Alcotest.fail "round trip failed"

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "codec"
    [ ( "round trips",
        qsuite
          [ prop_batch_roundtrip;
            prop_datablock_roundtrip;
            prop_bftblock_roundtrip;
            prop_msg_roundtrip;
            prop_encoding_deterministic;
            prop_truncation_rejected;
            prop_trailing_garbage_rejected ] );
      ( "golden bytes",
        [ Alcotest.test_case "batch" `Quick test_golden_batch;
          Alcotest.test_case "bftblock" `Quick test_golden_bftblock;
          Alcotest.test_case "fetch msg" `Quick test_golden_fetch;
          Alcotest.test_case "timeout msg" `Quick test_golden_timeout;
          Alcotest.test_case "view-change msg" `Quick test_golden_view_change;
          Alcotest.test_case "new-view msg" `Quick test_golden_new_view ] );
      ( "edges",
        [ Alcotest.test_case "garbage rejected" `Quick test_decode_garbage;
          Alcotest.test_case "u32/i64 boundaries" `Quick test_u32_boundaries;
          Alcotest.test_case "encode errors" `Quick test_encode_error_on_negative;
          Alcotest.test_case "credentials survive the wire" `Quick
            test_decoded_share_still_verifies ] ) ]
