(* Byte-level fuzz of Transport.Frame.reader.

   The framing layer promises totality: any byte stream yields [Ok] or a
   typed [error], never an exception and never a silent skip. We take the
   frozen golden vectors for the view-change-path messages (Timeout,
   View_change, New_view — the frames a Byzantine peer is most motivated
   to corrupt), wrap them in version-1 headers, and hammer the reader
   with single-bit flips, random multi-byte mutations, truncations and
   byte-at-a-time delivery. *)

let checkb = Alcotest.(check bool)

module Frame = Transport.Frame

(* Golden payload bytes, frozen by test_codec.ml. *)
let golden_timeout_hex =
  "080300000002000000200000000381e97c53104c69e5ecd8ede16ae8f42337d6ba911a71ecd9a090902cdecadf"

let golden_view_change_hex =
  "0904000000010000000110000000200000004ba69735ca53765ed6a709edb56c6ea236b7193a3b29a6b390c346f0f4340e4ee0f4825d0100000003000000030000001100000000010000002000000072dfcfb0c470ac255cde83fb8fe38de8a128188e03ea5ba5b2a93adbea1062fae0f4825d20000000be99d4c7b1e30407624e06d23e6bf19ae9996ba5cd2f9146925683261362f77a"

let golden_new_view_hex =
  "0a04000000000000000100000004000000010000000110000000200000004ba69735ca53765ed6a709edb56c6ea236b7193a3b29a6b390c346f0f4340e4ee0f4825d0100000003000000030000001100000000010000002000000072dfcfb0c470ac255cde83fb8fe38de8a128188e03ea5ba5b2a93adbea1062fae0f4825d20000000be99d4c7b1e30407624e06d23e6bf19ae9996ba5cd2f9146925683261362f77a2000000005965dfda4eb71ccab0fe3dc471c6db43cf923fa28172f587a9c79949ad96914"

let of_hex s =
  let n = String.length s / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let u16le v = String.init 2 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))
let u32le v = String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let frame_of payload =
  Frame.magic ^ u16le Frame.version ^ "\x01" ^ u32le (String.length payload) ^ payload

(* A datablock frame built live from deterministic keys: the bulk-plane
   frame whose batch list is attacker-controlled (its decoder once sat
   one [assert false] away from a remote panic on an empty list). *)
let datablock_batches = 3
let batch_bytes = 21 (* id u32 + count u32 + size_each u32 + born i64 + resend u8 *)

let datablock_frame =
  let rng = Sim.Rng.create 2026L in
  let _pk, sk = Crypto.Signature.keygen rng in
  let batch i =
    Workload.Request.make ~id:(100 + i) ~count:4 ~size_each:64
      ~born:Sim.Sim_time.zero ()
  in
  Frame.encode_msg
    (Core.Msg.Datablock_msg
       (Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:Sim.Sim_time.zero
          (List.init datablock_batches batch)))

let vectors =
  [ ("timeout", frame_of (of_hex golden_timeout_hex));
    ("view-change", frame_of (of_hex golden_view_change_hex));
    ("new-view", frame_of (of_hex golden_new_view_hex));
    ("datablock", datablock_frame) ]

(* Feed a whole buffer into a fresh reader. Any exception is a bug — that
   is the property under test, so surface it as a test failure with the
   offending input identified. *)
let feed_fresh ?(label = "") buf =
  let r = Frame.reader () in
  let frames = ref 0 in
  match Frame.feed r buf ~off:0 ~len:(Bytes.length buf) (fun _ -> incr frames) with
  | res -> (r, res, !frames)
  | exception ex ->
    Alcotest.failf "feed raised %s on %s input (%d bytes)" (Printexc.to_string ex)
      label (Bytes.length buf)

let test_golden_frames_decode () =
  List.iter
    (fun (name, frame) ->
      let _, res, frames = feed_fresh ~label:name (Bytes.of_string frame) in
      checkb (name ^ " ok") true (res = Ok ());
      Alcotest.(check int) (name ^ " one frame") 1 frames)
    vectors

let test_single_bit_flips () =
  (* Every bit of every golden frame, flipped one at a time. The reader
     must stay total, and a poisoned reader must repeat its error. *)
  List.iter
    (fun (name, frame) ->
      for byte = 0 to String.length frame - 1 do
        for bit = 0 to 7 do
          let buf = Bytes.of_string frame in
          Bytes.set buf byte (Char.chr (Char.code frame.[byte] lxor (1 lsl bit)));
          let r, res, _ = feed_fresh ~label:name buf in
          match res with
          | Ok () -> ()
          | Error e ->
            (* Poisoning: the same typed error again, still no exception. *)
            (match Frame.feed r (Bytes.make 1 '\x00') ~off:0 ~len:1 (fun _ -> ()) with
             | Error e' when e' = e -> ()
             | Error _ -> Alcotest.failf "%s: poisoned reader changed its error" name
             | Ok () -> Alcotest.failf "%s: poisoned reader accepted more bytes" name
             | exception ex ->
               Alcotest.failf "%s: poisoned feed raised %s" name (Printexc.to_string ex))
        done
      done)
    vectors

let test_random_mutations () =
  (* Deterministic multi-byte mutations: 400 rounds per vector, 1-8
     mutated bytes each, from a fixed seed so failures replay. *)
  let rng = Sim.Rng.create 0xF00DL in
  List.iter
    (fun (name, frame) ->
      for _round = 1 to 400 do
        let buf = Bytes.of_string frame in
        let hits = 1 + Sim.Rng.int rng 8 in
        for _ = 1 to hits do
          let pos = Sim.Rng.int rng (Bytes.length buf) in
          Bytes.set buf pos (Char.chr (Sim.Rng.int rng 256))
        done;
        ignore (feed_fresh ~label:(name ^ " mutated") buf)
      done)
    vectors

let test_truncations () =
  (* Every prefix: feeding must stay total, and check_eof must report
     Short_read exactly when the stream stops inside a frame. *)
  List.iter
    (fun (name, frame) ->
      for len = 0 to String.length frame - 1 do
        let buf = Bytes.of_string (String.sub frame 0 len) in
        let r, res, frames = feed_fresh ~label:(name ^ " truncated") buf in
        checkb (name ^ " truncated feed ok") true (res = Ok ());
        Alcotest.(check int) (name ^ " no partial frame surfaced") 0 frames;
        match Frame.check_eof r with
        | Ok () -> checkb (name ^ " eof ok only at boundary") true (len = 0)
        | Error Frame.Short_read -> checkb (name ^ " short read mid-frame") true (len > 0)
        | Error e -> Alcotest.failf "%s: unexpected eof error %a" name Frame.pp_error e
        | exception ex ->
          Alcotest.failf "%s: check_eof raised %s" name (Printexc.to_string ex)
      done)
    vectors

let test_byte_at_a_time () =
  (* Dribbling a mutated frame one byte at a time must reach the same
     verdict as feeding it whole: framing state can't depend on slice
     boundaries. *)
  let rng = Sim.Rng.create 0xBEEFL in
  List.iter
    (fun (name, frame) ->
      for _round = 1 to 50 do
        let buf = Bytes.of_string frame in
        let pos = Sim.Rng.int rng (Bytes.length buf) in
        Bytes.set buf pos (Char.chr (Sim.Rng.int rng 256));
        let _, whole, whole_frames = feed_fresh ~label:name buf in
        let r = Frame.reader () in
        let frames = ref 0 in
        let res = ref (Ok ()) in
        (try
           for i = 0 to Bytes.length buf - 1 do
             match !res with
             | Error _ -> ()
             | Ok () -> res := Frame.feed r buf ~off:i ~len:1 (fun _ -> incr frames)
           done
         with ex ->
           Alcotest.failf "%s: dribble feed raised %s" name (Printexc.to_string ex));
        checkb (name ^ " dribble verdict matches") true (!res = whole);
        Alcotest.(check int) (name ^ " dribble frame count matches") whole_frames !frames
      done)
    vectors

let test_header_errors_are_typed () =
  let feed_str s =
    let _, res, _ = feed_fresh ~label:"header" (Bytes.of_string s) in
    res
  in
  let payload = of_hex golden_timeout_hex in
  checkb "bad magic" true
    (feed_str ("XPRD" ^ u16le Frame.version ^ "\x01" ^ u32le 4 ^ "aaaa")
     = Error Frame.Bad_magic);
  checkb "bad version" true
    (feed_str (Frame.magic ^ u16le 9 ^ "\x01" ^ u32le 4 ^ "aaaa")
     = Error (Frame.Bad_version 9));
  checkb "oversized" true
    (match feed_str (Frame.magic ^ u16le Frame.version ^ "\x01" ^ u32le 0x7fffffff) with
     | Error (Frame.Oversized _) -> true
     | _ -> false);
  checkb "garbage payload is Decode_failed" true
    (feed_str (frame_of (String.map (fun _ -> '\xff') payload))
     = Error Frame.Decode_failed)

(* Targeted malformations of the datablock's batch list — the exact
   shapes the decoder guards turn into typed errors instead of panics. *)
let test_datablock_batch_list_malformed () =
  let frame = datablock_frame in
  (* The list's u32 count immediately precedes its fixed-width items at
     the end of the frame. *)
  let count_off = String.length frame - (datablock_batches * batch_bytes) - 4 in
  let _, res, frames = feed_fresh ~label:"datablock" (Bytes.of_string frame) in
  checkb "unpatched datablock decodes" true (res = Ok () && frames = 1);
  let with_count v =
    let buf = Bytes.of_string frame in
    Bytes.blit_string (u32le v) 0 buf count_off 4;
    buf
  in
  let _, res, _ = feed_fresh ~label:"datablock empty list" (with_count 0) in
  checkb "empty batch list is a typed error" true
    (res = Error Frame.Decode_failed);
  let _, res, _ = feed_fresh ~label:"datablock huge count" (with_count 0xFFFFFF) in
  checkb "absurd batch count is a typed error" true
    (res = Error Frame.Decode_failed);
  (* A zero-request batch inside an otherwise well-formed list. *)
  let buf = Bytes.of_string frame in
  Bytes.blit_string (u32le 0) 0 buf (count_off + 4 + 4) 4;
  let _, res, _ = feed_fresh ~label:"datablock zero-count batch" buf in
  checkb "zero-request batch is a typed error" true
    (res = Error Frame.Decode_failed)

let () =
  Alcotest.run "frame-fuzz"
    [ ( "fuzz",
        [ Alcotest.test_case "golden frames decode" `Quick test_golden_frames_decode;
          Alcotest.test_case "single-bit flips" `Quick test_single_bit_flips;
          Alcotest.test_case "random mutations" `Quick test_random_mutations;
          Alcotest.test_case "truncations" `Quick test_truncations;
          Alcotest.test_case "byte-at-a-time" `Quick test_byte_at_a_time;
          Alcotest.test_case "typed header errors" `Quick test_header_errors_are_typed;
          Alcotest.test_case "malformed datablock batch lists" `Quick
            test_datablock_batch_list_malformed ] )
    ]
