(* The durable store: WAL framing, group commit, segment rotation,
   snapshot truncation — and the recovery scanner's totality, fuzzed in
   the Frame.reader style (bit flips, random mutations, truncations).
   The property throughout: [Wal.load] never raises on any file content
   and always returns a clean prefix of what was appended, with replay
   deterministic (two loads of one directory agree byte-for-byte). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

module Wal = Store.Wal
module Store_file = Store.Store_file

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "leopard-store-test.%d.%d" (Unix.getpid ()) !counter)

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> Store_file.remove_dir dir) (fun () -> f dir)

let record i = Printf.sprintf "record-%04d-%s" i (String.make (i mod 40) 'x')

let records n = List.init n (fun i -> record i)

let is_prefix ~of_:full xs =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> String.equal x y && go (xs, ys)
  in
  go (xs, full)

(* ------------------------------------------------------------------ *)
(* CRC-32                                                              *)
(* ------------------------------------------------------------------ *)

let test_crc32_vectors () =
  (* The IEEE 802.3 check value, and the empty string. *)
  checki "check value" 0xCBF43926 (Store.Crc32.string "123456789");
  checki "empty" 0 (Store.Crc32.string "");
  (* Incremental update over split points agrees with one-shot. *)
  let s = "the quick brown fox jumps over the lazy dog" in
  let whole = Store.Crc32.string s in
  for cut = 0 to String.length s do
    let c = Store.Crc32.update 0 s ~pos:0 ~len:cut in
    let c = Store.Crc32.update c s ~pos:cut ~len:(String.length s - cut) in
    checki (Printf.sprintf "split at %d" cut) whole c
  done

(* ------------------------------------------------------------------ *)
(* WAL semantics                                                       *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  with_dir (fun dir ->
      let wal = Wal.create ~dir () in
      let rs = records 50 in
      List.iter (Wal.append wal) rs;
      Wal.close wal;
      let snap, got, corruption = Wal.load ~dir in
      checkb "no snapshot" true (snap = None);
      checkb "no corruption" true (corruption = None);
      checkb "all records in order" true (got = rs))

let test_crash_drops_unflushed () =
  with_dir (fun dir ->
      let wal = Wal.create ~dir () in
      let rs = records 20 in
      List.iteri
        (fun i r ->
          Wal.append wal r;
          if i = 9 then Wal.flush wal)
        rs;
      (* Crash with 10 records flushed and 10 still buffered. *)
      Wal.crash wal;
      let _, got, corruption = Wal.load ~dir in
      checkb "clean prefix on disk" true (corruption = None);
      checkb "flushed prefix survives" true
        (got = List.filteri (fun i _ -> i < 10) rs);
      (* Close after crash is a no-op, not a resurrection. *)
      Wal.close wal;
      let _, again, _ = Wal.load ~dir in
      checkb "close after crash writes nothing" true (got = again))

let test_segment_rotation () =
  with_dir (fun dir ->
      (* ~54-byte frames against a 256-byte segment bound: plenty of
         rotations. *)
      let wal = Wal.create ~segment_bytes:256 ~dir () in
      let rs = records 80 in
      List.iter (Wal.append wal) rs;
      Wal.close wal;
      let seg_files =
        List.filter
          (fun f -> Filename.check_suffix f ".log")
          (Array.to_list (Sys.readdir dir))
      in
      checkb "multiple segments" true (List.length seg_files > 3);
      let _, got, corruption = Wal.load ~dir in
      checkb "no corruption across segments" true (corruption = None);
      checkb "order preserved across segments" true (got = rs))

let test_snapshot_truncates () =
  with_dir (fun dir ->
      let wal = Wal.create ~segment_bytes:256 ~dir () in
      let before = records 40 in
      List.iter (Wal.append wal) before;
      Wal.save_snapshot wal "snapshot-state";
      let after = List.init 10 (fun i -> record (1000 + i)) in
      List.iter (Wal.append wal) after;
      Wal.close wal;
      let snap, got, corruption = Wal.load ~dir in
      checkb "snapshot recovered" true (snap = Some "snapshot-state");
      checkb "no corruption" true (corruption = None);
      checkb "only post-snapshot records replayed" true (got = after);
      (* The subsumed segments are actually gone from the directory. *)
      let segs =
        List.filter
          (fun f -> Filename.check_suffix f ".log")
          (Array.to_list (Sys.readdir dir))
      in
      checkb "pre-snapshot segments deleted" true (List.length segs <= 2))

(* WAL instrumentation: appends and fsyncs land in the latency
   histograms, rotations and snapshots bump their counters — and the
   same registry handed to two WALs shares the (unlabeled) instruments
   instead of raising on re-registration. *)
let test_wal_metrics () =
  with_dir (fun dir ->
      let reg = Obs.Registry.create () in
      let wal = Wal.create ~segment_bytes:256 ~fsync:Wal.Always ~obs:reg ~dir () in
      let rs = records 80 in
      List.iter (Wal.append wal) rs;
      Wal.save_snapshot wal "state";
      Wal.close wal;
      let append_h = Obs.Registry.histogram reg "leopard_store_append_latency_ns" in
      let fsync_h = Obs.Registry.histogram reg "leopard_store_fsync_latency_ns" in
      let rotations = Obs.Registry.counter reg "leopard_store_rotations_total" in
      let snapshots = Obs.Registry.counter reg "leopard_store_snapshots_total" in
      checki "every append timed" 80 (Obs.Histogram.count append_h);
      checkb "fsyncs timed (Always policy)" true (Obs.Histogram.count fsync_h > 0);
      checkb "rotations counted" true (Obs.Counter.value rotations > 3);
      checki "snapshot counted" 1 (Obs.Counter.value snapshots);
      (* a second WAL on the same registry shares the instruments *)
      with_dir (fun dir2 ->
          let wal2 = Wal.create ~obs:reg ~dir:dir2 () in
          Wal.append wal2 (record 9999);
          Wal.close wal2;
          checki "shared append histogram" 81 (Obs.Histogram.count append_h)))

let test_reopen_starts_fresh_segment () =
  with_dir (fun dir ->
      let w1 = Wal.create ~dir () in
      List.iter (Wal.append w1) (records 5);
      Wal.close w1;
      let w2 = Wal.create ~dir () in
      checkb "fresh segment after reopen" true (Wal.dir w2 = dir);
      List.iter (Wal.append w2) (List.init 5 (fun i -> record (100 + i)));
      Wal.close w2;
      let _, got, corruption = Wal.load ~dir in
      checkb "no corruption" true (corruption = None);
      checki "both incarnations replayed" 10 (List.length got))

(* ------------------------------------------------------------------ *)
(* Recovery fuzz: the scanner must be total and prefix-clean           *)
(* ------------------------------------------------------------------ *)

(* One closed single-segment log to mutate, plus its on-disk bytes. *)
let build_victim dir =
  let wal = Wal.create ~dir () in
  let rs = records 16 in
  List.iter (Wal.append wal) rs;
  Wal.close wal;
  let seg =
    List.find
      (fun f -> Filename.check_suffix f ".log")
      (Array.to_list (Sys.readdir dir))
  in
  let path = Filename.concat dir seg in
  let ic = In_channel.open_bin path in
  let data = In_channel.input_all ic in
  In_channel.close ic;
  (rs, path, data)

let write_file path data =
  let oc = Out_channel.open_bin path in
  Out_channel.output_string oc data;
  Out_channel.close oc

(* Load under mutation: never an exception, always a clean prefix of the
   original append sequence, and deterministic (a second load agrees). *)
let load_mutated ~label ~originals dir =
  match Wal.load ~dir with
  | exception ex ->
    Alcotest.failf "load raised %s on %s" (Printexc.to_string ex) label
  | snap, got, corruption ->
    checkb (label ^ ": no snapshot invented") true (snap = None);
    checkb (label ^ ": clean prefix") true (is_prefix ~of_:originals got);
    checkb (label ^ ": full recovery only when uncorrupted") true
      (corruption <> None || List.length got = List.length originals);
    let snap', got', corruption' = Wal.load ~dir in
    checkb (label ^ ": replay deterministic") true
      (snap = snap' && got = got' && corruption = corruption')

let test_fuzz_bit_flips () =
  with_dir (fun dir ->
      let originals, path, data = build_victim dir in
      for byte = 0 to String.length data - 1 do
        for bit = 0 to 7 do
          let buf = Bytes.of_string data in
          Bytes.set buf byte (Char.chr (Char.code data.[byte] lxor (1 lsl bit)));
          write_file path (Bytes.to_string buf);
          load_mutated ~label:(Printf.sprintf "flip %d.%d" byte bit) ~originals dir
        done
      done)

let test_fuzz_random_mutations () =
  with_dir (fun dir ->
      let originals, path, data = build_victim dir in
      let rng = Sim.Rng.create 0xFEEDL in
      for round = 1 to 300 do
        let buf = Bytes.of_string data in
        let hits = 1 + Sim.Rng.int rng 8 in
        for _ = 1 to hits do
          let pos = Sim.Rng.int rng (Bytes.length buf) in
          Bytes.set buf pos (Char.chr (Sim.Rng.int rng 256))
        done;
        write_file path (Bytes.to_string buf);
        load_mutated ~label:(Printf.sprintf "mutation round %d" round) ~originals
          dir
      done)

let test_fuzz_truncations () =
  with_dir (fun dir ->
      let originals, path, data = build_victim dir in
      for len = 0 to String.length data - 1 do
        write_file path (String.sub data 0 len);
        match Wal.load ~dir with
        | exception ex ->
          Alcotest.failf "load raised %s at truncation %d" (Printexc.to_string ex)
            len
        | _, got, corruption ->
          checkb
            (Printf.sprintf "truncation %d: clean prefix" len)
            true
            (is_prefix ~of_:originals got);
          (* A cut at a frame boundary is a shorter-but-clean log; a cut
             inside a frame must be reported. *)
          checkb
            (Printf.sprintf "truncation %d: torn tail reported iff mid-frame" len)
            true
            (match corruption with
            | None -> true
            | Some c -> c.Wal.off <= len)
      done)

let test_fuzz_garbage_appended () =
  with_dir (fun dir ->
      let originals, path, data = build_victim dir in
      let rng = Sim.Rng.create 0xA11CEL in
      for round = 1 to 50 do
        let extra = 1 + Sim.Rng.int rng 64 in
        let garbage = String.init extra (fun _ -> Char.chr (Sim.Rng.int rng 256)) in
        write_file path (data ^ garbage);
        match Wal.load ~dir with
        | exception ex ->
          Alcotest.failf "load raised %s on garbage round %d"
            (Printexc.to_string ex) round
        | _, got, corruption ->
          checkb
            (Printf.sprintf "garbage round %d: full prefix then stop" round)
            true
            (got = originals && corruption <> None)
      done)

(* ------------------------------------------------------------------ *)
(* Store_file: Codec-typed records over the WAL                        *)
(* ------------------------------------------------------------------ *)

let mk_vote sn =
  let rng = Sim.Rng.create 11L in
  let _setup, keys = Crypto.Threshold.keygen rng ~threshold:3 ~parties:4 in
  let hash = Crypto.Hash.of_string "store-test-block" in
  let share =
    Crypto.Threshold.sign_share keys.(0)
      (Core.Msg.prepare_payload ~view:1 ~block_hash:hash)
  in
  Core.Msg.Prepare_vote { view = 1; sn; block_hash = hash; share }

let test_store_file_roundtrip () =
  with_dir (fun dir ->
      let st = Store_file.create ~dir () in
      let rs =
        [ Core.Store.Db_counter 7;
          Core.Store.Entered_view 3;
          Core.Store.Logged_msg (mk_vote 12) ]
      in
      List.iter (Store_file.log st) rs;
      Store_file.close st;
      let snap, got = Store_file.load_dir dir in
      checkb "no snapshot" true (snap = None);
      checki "all records decoded" (List.length rs) (List.length got);
      checkb "scalar records round-trip" true
        (match got with
        | [ Core.Store.Db_counter 7; Core.Store.Entered_view 3;
            Core.Store.Logged_msg (Core.Msg.Prepare_vote { sn; _ }) ] ->
          sn = 12
        | _ -> false))

let test_store_file_sink_enabled () =
  with_dir (fun dir ->
      let st = Store_file.create ~dir () in
      let sink = Store_file.sink st in
      checkb "file sink enabled" true sink.Core.Store.enabled;
      sink.Core.Store.log (Core.Store.Db_counter 1);
      sink.Core.Store.sync ();
      Store_file.close st;
      let _, got = Store_file.load_dir dir in
      checki "sink log lands" 1 (List.length got))

let test_torn_tail_wrapper () =
  let sink = Core.Store.mem () in
  for i = 1 to 10 do
    sink.Core.Store.log (Core.Store.Db_counter i)
  done;
  let torn = Core.Store.with_torn_tail ~drop:3 sink in
  let _, got = torn.Core.Store.load () in
  checki "tail dropped" 7 (List.length got);
  checkb "surviving prefix intact" true
    (got = List.init 7 (fun i -> Core.Store.Db_counter (i + 1)))

let () =
  Alcotest.run "store"
    [ ( "crc32",
        [ Alcotest.test_case "vectors and incremental" `Quick test_crc32_vectors ] );
      ( "wal",
        [ Alcotest.test_case "round trip" `Quick test_roundtrip;
          Alcotest.test_case "crash drops unflushed" `Quick
            test_crash_drops_unflushed;
          Alcotest.test_case "segment rotation" `Quick test_segment_rotation;
          Alcotest.test_case "snapshot truncates" `Quick test_snapshot_truncates;
          Alcotest.test_case "metrics instruments" `Quick test_wal_metrics;
          Alcotest.test_case "reopen starts fresh segment" `Quick
            test_reopen_starts_fresh_segment ] );
      ( "recovery fuzz",
        [ Alcotest.test_case "bit flips" `Quick test_fuzz_bit_flips;
          Alcotest.test_case "random mutations" `Quick test_fuzz_random_mutations;
          Alcotest.test_case "truncations" `Quick test_fuzz_truncations;
          Alcotest.test_case "garbage tail" `Quick test_fuzz_garbage_appended ] );
      ( "store file",
        [ Alcotest.test_case "codec round trip" `Quick test_store_file_roundtrip;
          Alcotest.test_case "sink wiring" `Quick test_store_file_sink_enabled;
          Alcotest.test_case "torn-tail wrapper" `Quick test_torn_tail_wrapper ] )
    ]
