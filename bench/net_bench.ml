(* Transport benchmark: the zero-copy TCP data plane under multicast
   load, with a JSON baseline and per-n regression gates.

   (The module is [Net_bench] rather than [Net] only because the bench
   executable already links the [net] library under that name.)

   One sender node multicasts protocol messages over real loopback TCP
   to n-1 receiver nodes sharing one event loop — the leader's fan-out,
   isolated from consensus logic so the numbers are the transport's own:

     - frames/s delivered end-to-end (framed, written, read, decoded),
     - write(2) and read(2) syscalls per frame (the gather-write and
       bulk-read coalescing factors),
     - GC minor words per frame: the whole steady-state cost of queueing,
       flushing, reading and in-place decoding, encode included once per
       multicast. With pooled buffers and ring queues the transport
       itself allocates nothing per frame; what remains is the shared
       encode (amortized over n-1 peers) and the decoded message.

   A star, not a full mesh: n=64 needs 63 connections (~130 fds), while a
   mesh would need ~8000 — past FD_SETSIZE for the select(2) loop. The
   full protocol over a (small) mesh is exercised by the cluster tests
   and the CLI's local-cluster; this bench pins the data-plane costs.

     dune exec bench/main.exe -- --only net
     dune exec bench/main.exe -- --only net --check-regressions

   The run writes [BENCH_net.json]; with [--check-regressions] it
   compares against the checked-in baseline and exits nonzero when any n
   got more than 2x worse: slower (frames/s), more syscalls per frame,
   or more allocation per frame. *)

type row = {
  n : int;
  wall_s : float;
  frames : int; (* frames delivered to receivers during the window *)
  frames_per_s : float;
  writes_per_frame : float;
  reads_per_frame : float;
  minor_words_per_frame : float;
}

(* The overload leg: sustained bursts past the sender's HWM, bulk
   datablock frames mixed with consensus-critical ones. What it pins is
   the kind-aware drop policy's contract under saturation — consensus
   frames keep flowing (their throughput is the trended metric and the
   regression gate), and the gate additionally fails hard on any
   consensus-kind backpressure drop, baseline or not. *)
type overload_row = {
  o_n : int;
  o_wall_s : float;
  consensus_frames : int;     (* consensus frames delivered end-to-end *)
  consensus_frames_per_s : float;
  consensus_drops : int;      (* backpressure drops on consensus kinds *)
  bulk_drop_ratio : float;    (* dropped bulk frames / offered bulk frames *)
}

let baseline_file = "BENCH_net.json"
let regression_factor = 2.0
let chunk = 256 (* multicasts per batch; bounded well below the HWM *)

(* ------------------------------------------------------------------ *)
(* One measured run                                                     *)
(* ------------------------------------------------------------------ *)

let run_one ~fast n =
  let loop = Transport.Loop.create () in
  let pool = Transport.Pool.create () in
  let received = ref 0 in
  let sender =
    Transport.Conn.create ~loop ~id:0 ~pool ~on_msg:(fun ~src:_ _ -> ()) ()
  in
  let receivers =
    Array.init (n - 1) (fun i ->
        Transport.Conn.create ~loop ~id:(i + 1) ~pool
          ~on_msg:(fun ~src:_ _ -> incr received)
          ())
  in
  Array.iteri
    (fun i r ->
      let port = Transport.Conn.listen r () in
      Transport.Conn.set_peer_addr sender (i + 1)
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port)))
    receivers;
  (* Protocol-shaped small frames (a Fetch: 48 wire bytes) — the size
     class where syscalls/frame and words/frame are won or lost. *)
  let msgs =
    Array.init chunk (fun i ->
        Core.Msg.Fetch { hash = Crypto.Hash.of_string (string_of_int i) })
  in
  let deadline_spin target =
    let limit = Transport.Loop.now_ns loop + 20_000_000_000 in
    Transport.Loop.run_while loop (fun () ->
        !received < target && Transport.Loop.now_ns loop < limit);
    if !received < target then failwith "net bench: delivery stalled"
  in
  let batch () =
    let target = !received + (chunk * (n - 1)) in
    Array.iter (fun m -> Transport.Conn.multicast sender ~n m) msgs;
    deadline_spin target
  in
  (* Warmup: connections dialed, rings sized, pool warm, buffers grown. *)
  for _ = 1 to 4 do
    batch ()
  done;
  let window = if fast then 0.3 else 1.0 in
  let stats0 =
    let s = Transport.Conn.stats sender in
    (s.Transport.Conn.write_syscalls, s.Transport.Conn.frames_sent)
  in
  let reads0 =
    Array.fold_left
      (fun acc r -> acc + (Transport.Conn.stats r).Transport.Conn.read_syscalls)
      0 receivers
  in
  let recv0 = !received in
  Gc.full_major ();
  let minor0 = Gc.minor_words () in
  let wall0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. wall0 < window do
    batch ()
  done;
  let wall_s = Unix.gettimeofday () -. wall0 in
  let minor = Gc.minor_words () -. minor0 in
  let frames = !received - recv0 in
  let writes, sent =
    let s = Transport.Conn.stats sender in
    ( s.Transport.Conn.write_syscalls - fst stats0,
      s.Transport.Conn.frames_sent - snd stats0 )
  in
  let reads =
    Array.fold_left
      (fun acc r -> acc + (Transport.Conn.stats r).Transport.Conn.read_syscalls)
      0 receivers
    - reads0
  in
  Transport.Conn.close sender;
  Array.iter Transport.Conn.close receivers;
  assert (sent = frames);
  let per x = if frames = 0 then 0. else float_of_int x /. float_of_int frames in
  { n;
    wall_s;
    frames;
    frames_per_s = (if wall_s <= 0. then 0. else float_of_int frames /. wall_s);
    writes_per_frame = per writes;
    reads_per_frame = per reads;
    minor_words_per_frame = (if frames = 0 then 0. else minor /. float_of_int frames) }

let ns = [ 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* The overload leg                                                     *)
(* ------------------------------------------------------------------ *)

(* Small on purpose: a 64 KiB HWM makes saturation reachable with modest
   bursts, so the drop policy (not the kernel) is what's measured. *)
let overload_hwm = 64 * 1024

let run_overload ~fast n =
  let loop = Transport.Loop.create () in
  let pool = Transport.Pool.create () in
  let consensus_recvd = ref 0 in
  let on_msg ~src:_ m =
    match Core.Msg.kind_priority (Core.Msg.kind m) with
    | Net.Nic.High -> incr consensus_recvd
    | Net.Nic.Low -> ()
  in
  let sender =
    Transport.Conn.create ~loop ~id:0 ~pool ~outbuf_hwm:overload_hwm ~on_msg ()
  in
  let receivers =
    Array.init (n - 1) (fun i ->
        Transport.Conn.create ~loop ~id:(i + 1) ~pool ~on_msg ())
  in
  Array.iteri
    (fun i r ->
      let port = Transport.Conn.listen r () in
      Transport.Conn.set_peer_addr sender (i + 1)
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port)))
    receivers;
  (* Bulk: fat datablocks (~1.1 KiB framed) whose burst overflows the
     HWM every round. Consensus: small Fetch frames, bursts well inside
     the reserved headroom — so by construction the policy must deliver
     every one of them, and the gate holds it to that. *)
  let rng = Sim.Rng.create 0xBEADL in
  let _pk, sk = Crypto.Signature.keygen rng in
  let bulk_msg =
    Core.Msg.Datablock_msg
      (Core.Datablock.create ~sk ~creator:0 ~counter:1 ~now:0L
         (List.init 50 (fun i ->
              Workload.Request.make ~id:i ~count:4 ~size_each:64 ~born:0L ())))
  in
  let bulk_burst = 100 (* ~115 KiB enqueued per peer: past the HWM *) in
  let consensus_burst = 256 (* ~12 KiB: inside the headroom *) in
  let consensus_msgs =
    Array.init consensus_burst (fun i ->
        Core.Msg.Fetch { hash = Crypto.Hash.of_string (string_of_int i) })
  in
  let bulk_offered = ref 0 in
  let batch () =
    for _ = 1 to bulk_burst do
      Transport.Conn.multicast sender ~n bulk_msg;
      bulk_offered := !bulk_offered + (n - 1)
    done;
    let target = !consensus_recvd + (consensus_burst * (n - 1)) in
    Array.iter (fun m -> Transport.Conn.multicast sender ~n m) consensus_msgs;
    let limit = Transport.Loop.now_ns loop + 20_000_000_000 in
    Transport.Loop.run_while loop (fun () ->
        !consensus_recvd < target && Transport.Loop.now_ns loop < limit);
    if !consensus_recvd < target then
      failwith "net bench overload: consensus delivery stalled"
  in
  for _ = 1 to 4 do
    batch ()
  done;
  let window = if fast then 0.3 else 1.0 in
  let recv0 = !consensus_recvd in
  let wall0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. wall0 < window do
    batch ()
  done;
  let wall_s = Unix.gettimeofday () -. wall0 in
  let consensus_frames = !consensus_recvd - recv0 in
  let bulk_drops = Transport.Conn.dropped_by_kind sender Core.Msg.K_datablock in
  let consensus_drops =
    Transport.Conn.dropped_backpressure sender
    - bulk_drops
    - Transport.Conn.dropped_by_kind sender Core.Msg.K_fetch_reply
  in
  let offered = !bulk_offered in
  Transport.Conn.close sender;
  Array.iter Transport.Conn.close receivers;
  { o_n = n;
    o_wall_s = wall_s;
    consensus_frames;
    consensus_frames_per_s =
      (if wall_s <= 0. then 0. else float_of_int consensus_frames /. wall_s);
    consensus_drops;
    bulk_drop_ratio =
      (if offered = 0 then 0. else float_of_int bulk_drops /. float_of_int offered) }

let overload_ns = [ 4 ]

(* ------------------------------------------------------------------ *)
(* JSON baseline (same line-per-entry shape as BENCH_sim.json)          *)
(* ------------------------------------------------------------------ *)

let write_baseline path rows orows =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"generated_by\": \"dune exec bench/main.exe -- --only net\",\n";
  output_string oc "  \"benchmarks\": [\n";
  let count = List.length rows + List.length orows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"n\": %d, \"wall_s\": %.2f, \"frames\": %d, \"frames_per_s\": %.0f, \
         \"writes_per_frame\": %.4f, \"reads_per_frame\": %.4f, \
         \"minor_words_per_frame\": %.1f}%s\n"
        r.n r.wall_s r.frames r.frames_per_s r.writes_per_frame r.reads_per_frame
        r.minor_words_per_frame
        (if i = count - 1 then "" else ","))
    rows;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"leg\": \"overload\", \"n\": %d, \"wall_s\": %.2f, \
         \"consensus_frames\": %d, \"consensus_frames_per_s\": %.0f, \
         \"consensus_drops\": %d, \"bulk_drop_ratio\": %.3f}%s\n"
        r.o_n r.o_wall_s r.consensus_frames r.consensus_frames_per_s
        r.consensus_drops r.bulk_drop_ratio
        (if List.length rows + i = count - 1 then "" else ","))
    orows;
  output_string oc "  ]\n}\n";
  close_out oc

let sscanf_opt line fmt f =
  try Some (Scanf.sscanf line fmt f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let read_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let entries = ref [] in
    let oentries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match
           sscanf_opt line
             "{\"n\": %d, \"wall_s\": %f, \"frames\": %d, \"frames_per_s\": %f, \
              \"writes_per_frame\": %f, \"reads_per_frame\": %f, \
              \"minor_words_per_frame\": %f}"
             (fun n wall_s frames frames_per_s writes_per_frame reads_per_frame
                  minor_words_per_frame ->
               { n; wall_s; frames; frames_per_s; writes_per_frame; reads_per_frame;
                 minor_words_per_frame })
         with
         | Some r -> entries := r :: !entries
         | None -> (
           match
             sscanf_opt line
               "{\"leg\": \"overload\", \"n\": %d, \"wall_s\": %f, \
                \"consensus_frames\": %d, \"consensus_frames_per_s\": %f, \
                \"consensus_drops\": %d, \"bulk_drop_ratio\": %f}"
               (fun o_n o_wall_s consensus_frames consensus_frames_per_s
                    consensus_drops bulk_drop_ratio ->
                 { o_n; o_wall_s; consensus_frames; consensus_frames_per_s;
                   consensus_drops; bulk_drop_ratio })
           with
           | Some r -> oentries := r :: !oentries
           | None -> ())
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !entries, List.rev !oentries)
  end

(* ------------------------------------------------------------------ *)
(* Rendering and gates                                                  *)
(* ------------------------------------------------------------------ *)

let render rows =
  let fmt_rows =
    List.map
      (fun r ->
        [ string_of_int r.n;
          Printf.sprintf "%.2f" r.wall_s;
          string_of_int r.frames;
          Printf.sprintf "%.0fk" (r.frames_per_s /. 1e3);
          Printf.sprintf "%.4f" r.writes_per_frame;
          Printf.sprintf "%.4f" r.reads_per_frame;
          Printf.sprintf "%.1f" r.minor_words_per_frame ])
      rows
  in
  Stats.Text_table.render
    ~headers:
      [ "n"; "wall s"; "frames"; "frames/s"; "writes/frame"; "reads/frame"; "words/frame" ]
    fmt_rows

(* The overload gate is two-headed: any consensus-kind backpressure drop
   fails outright (the policy's invariant, not a relative measure), and
   delivered consensus throughput gates 2x against the baseline like the
   other legs. *)
let check_overload ~baseline orows =
  let failures =
    List.concat_map
      (fun r ->
        let invariant =
          if r.consensus_drops > 0 then
            [ Printf.sprintf
                "overload n=%d: %d consensus-kind frames dropped under backpressure \
                 (must be 0)"
                r.o_n r.consensus_drops ]
          else []
        in
        let slower =
          match List.find_opt (fun b -> b.o_n = r.o_n) baseline with
          | Some b
            when r.consensus_frames_per_s > 0.
                 && b.consensus_frames_per_s
                    > regression_factor *. r.consensus_frames_per_s ->
            [ Printf.sprintf
                "overload n=%d consensus_frames_per_s: %.0f vs baseline %.0f (%.1fx \
                 slower)"
                r.o_n r.consensus_frames_per_s b.consensus_frames_per_s
                (b.consensus_frames_per_s /. r.consensus_frames_per_s) ]
          | _ -> []
        in
        invariant @ slower)
      orows
  in
  List.iter (fun f -> Harness.say "REGRESSION %s" f) failures;
  failures = []

let check_regressions ~baseline rows =
  let failures =
    List.concat_map
      (fun r ->
        match List.find_opt (fun b -> b.n = r.n) baseline with
        | None -> []
        | Some b ->
          (* higher-is-worse metrics gate on current > 2x base; the
             throughput gates on current < base / 2. *)
          let worse what current base =
            if base > 0. && current > regression_factor *. base then
              [ ( Printf.sprintf "n=%d %s: %.4f vs baseline %.4f (%.1fx)" r.n what current
                    base (current /. base),
                  (Printf.sprintf "n=%d %s" r.n what, current /. base) ) ]
            else []
          in
          let slower what current base =
            if current > 0. && base > regression_factor *. current then
              [ ( Printf.sprintf "n=%d %s: %.0f vs baseline %.0f (%.1fx slower)" r.n what
                    current base (base /. current),
                  (Printf.sprintf "n=%d %s" r.n what, base /. current) ) ]
            else []
          in
          slower "frames_per_s" r.frames_per_s b.frames_per_s
          @ worse "writes_per_frame" r.writes_per_frame b.writes_per_frame
          @ worse "reads_per_frame" r.reads_per_frame b.reads_per_frame
          @ worse "minor_words_per_frame" r.minor_words_per_frame b.minor_words_per_frame)
      rows
  in
  match failures with
  | [] ->
    Harness.say "net: PASS no regressions > %.1fx against %s" regression_factor baseline_file;
    true
  | fs ->
    List.iter (fun (f, _) -> Harness.say "REGRESSION %s" f) fs;
    let worst_name, worst_factor =
      List.fold_left
        (fun ((_, wf) as acc) (_, (name, f)) -> if f > wf then (name, f) else acc)
        ("", 0.) fs
    in
    Harness.say "net: FAIL %d gate(s) exceeded %.1fx vs %s (worst %s %.1fx)" (List.length fs)
      regression_factor baseline_file worst_name worst_factor;
    false

let run ~fast ~check =
  let rows =
    List.map
      (fun n ->
        let r = run_one ~fast n in
        Harness.say "  n=%-3d %7d frames in %.2fs (%.0fk frames/s, %.4f writes/frame)" n
          r.frames r.wall_s (r.frames_per_s /. 1e3) r.writes_per_frame;
        r)
      ns
  in
  let orows =
    List.map
      (fun n ->
        let r = run_overload ~fast n in
        Harness.say
          "  overload n=%-3d %7d consensus frames in %.2fs (%.0fk/s, %d consensus \
           drops, %.0f%% bulk dropped)"
          n r.consensus_frames r.o_wall_s
          (r.consensus_frames_per_s /. 1e3)
          r.consensus_drops (r.bulk_drop_ratio *. 100.);
        r)
      overload_ns
  in
  Harness.say "";
  Harness.say "%s" (render rows);
  Harness.say "";
  if check then begin
    match read_baseline baseline_file with
    | None | Some ([], _) ->
      Harness.say "no baseline %s found; writing a fresh one" baseline_file;
      write_baseline baseline_file rows orows
    | Some (baseline, obaseline) ->
      let ok_rows = check_regressions ~baseline rows in
      let ok_overload = check_overload ~baseline:obaseline orows in
      if not (ok_rows && ok_overload) then exit 1
  end
  else begin
    write_baseline baseline_file rows orows;
    Harness.say "baseline written to %s" baseline_file
  end
