(* Transport benchmark: the zero-copy TCP data plane under multicast
   load, with a JSON baseline and per-n regression gates.

   (The module is [Net_bench] rather than [Net] only because the bench
   executable already links the [net] library under that name.)

   One sender node multicasts protocol messages over real loopback TCP
   to n-1 receiver nodes sharing one event loop — the leader's fan-out,
   isolated from consensus logic so the numbers are the transport's own:

     - frames/s delivered end-to-end (framed, written, read, decoded),
     - write(2) and read(2) syscalls per frame (the gather-write and
       bulk-read coalescing factors),
     - GC minor words per frame: the whole steady-state cost of queueing,
       flushing, reading and in-place decoding, encode included once per
       multicast. With pooled buffers and ring queues the transport
       itself allocates nothing per frame; what remains is the shared
       encode (amortized over n-1 peers) and the decoded message.

   A star, not a full mesh: n=64 needs 63 connections (~130 fds), while a
   mesh would need ~8000 — past FD_SETSIZE for the select(2) loop. The
   full protocol over a (small) mesh is exercised by the cluster tests
   and the CLI's local-cluster; this bench pins the data-plane costs.

     dune exec bench/main.exe -- --only net
     dune exec bench/main.exe -- --only net --check-regressions

   The run writes [BENCH_net.json]; with [--check-regressions] it
   compares against the checked-in baseline and exits nonzero when any n
   got more than 2x worse: slower (frames/s), more syscalls per frame,
   or more allocation per frame. *)

type row = {
  n : int;
  wall_s : float;
  frames : int; (* frames delivered to receivers during the window *)
  frames_per_s : float;
  writes_per_frame : float;
  reads_per_frame : float;
  minor_words_per_frame : float;
}

let baseline_file = "BENCH_net.json"
let regression_factor = 2.0
let chunk = 256 (* multicasts per batch; bounded well below the HWM *)

(* ------------------------------------------------------------------ *)
(* One measured run                                                     *)
(* ------------------------------------------------------------------ *)

let run_one ~fast n =
  let loop = Transport.Loop.create () in
  let pool = Transport.Pool.create () in
  let received = ref 0 in
  let sender =
    Transport.Conn.create ~loop ~id:0 ~pool ~on_msg:(fun ~src:_ _ -> ()) ()
  in
  let receivers =
    Array.init (n - 1) (fun i ->
        Transport.Conn.create ~loop ~id:(i + 1) ~pool
          ~on_msg:(fun ~src:_ _ -> incr received)
          ())
  in
  Array.iteri
    (fun i r ->
      let port = Transport.Conn.listen r () in
      Transport.Conn.set_peer_addr sender (i + 1)
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port)))
    receivers;
  (* Protocol-shaped small frames (a Fetch: 48 wire bytes) — the size
     class where syscalls/frame and words/frame are won or lost. *)
  let msgs =
    Array.init chunk (fun i ->
        Core.Msg.Fetch { hash = Crypto.Hash.of_string (string_of_int i) })
  in
  let deadline_spin target =
    let limit = Transport.Loop.now_ns loop + 20_000_000_000 in
    Transport.Loop.run_while loop (fun () ->
        !received < target && Transport.Loop.now_ns loop < limit);
    if !received < target then failwith "net bench: delivery stalled"
  in
  let batch () =
    let target = !received + (chunk * (n - 1)) in
    Array.iter (fun m -> Transport.Conn.multicast sender ~n m) msgs;
    deadline_spin target
  in
  (* Warmup: connections dialed, rings sized, pool warm, buffers grown. *)
  for _ = 1 to 4 do
    batch ()
  done;
  let window = if fast then 0.3 else 1.0 in
  let stats0 =
    let s = Transport.Conn.stats sender in
    (s.Transport.Conn.write_syscalls, s.Transport.Conn.frames_sent)
  in
  let reads0 =
    Array.fold_left
      (fun acc r -> acc + (Transport.Conn.stats r).Transport.Conn.read_syscalls)
      0 receivers
  in
  let recv0 = !received in
  Gc.full_major ();
  let minor0 = Gc.minor_words () in
  let wall0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. wall0 < window do
    batch ()
  done;
  let wall_s = Unix.gettimeofday () -. wall0 in
  let minor = Gc.minor_words () -. minor0 in
  let frames = !received - recv0 in
  let writes, sent =
    let s = Transport.Conn.stats sender in
    ( s.Transport.Conn.write_syscalls - fst stats0,
      s.Transport.Conn.frames_sent - snd stats0 )
  in
  let reads =
    Array.fold_left
      (fun acc r -> acc + (Transport.Conn.stats r).Transport.Conn.read_syscalls)
      0 receivers
    - reads0
  in
  Transport.Conn.close sender;
  Array.iter Transport.Conn.close receivers;
  assert (sent = frames);
  let per x = if frames = 0 then 0. else float_of_int x /. float_of_int frames in
  { n;
    wall_s;
    frames;
    frames_per_s = (if wall_s <= 0. then 0. else float_of_int frames /. wall_s);
    writes_per_frame = per writes;
    reads_per_frame = per reads;
    minor_words_per_frame = (if frames = 0 then 0. else minor /. float_of_int frames) }

let ns = [ 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* JSON baseline (same line-per-entry shape as BENCH_sim.json)          *)
(* ------------------------------------------------------------------ *)

let write_baseline path rows =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"generated_by\": \"dune exec bench/main.exe -- --only net\",\n";
  output_string oc "  \"benchmarks\": [\n";
  let count = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"n\": %d, \"wall_s\": %.2f, \"frames\": %d, \"frames_per_s\": %.0f, \
         \"writes_per_frame\": %.4f, \"reads_per_frame\": %.4f, \
         \"minor_words_per_frame\": %.1f}%s\n"
        r.n r.wall_s r.frames r.frames_per_s r.writes_per_frame r.reads_per_frame
        r.minor_words_per_frame
        (if i = count - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

let sscanf_opt line fmt f =
  try Some (Scanf.sscanf line fmt f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let read_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match
           sscanf_opt line
             "{\"n\": %d, \"wall_s\": %f, \"frames\": %d, \"frames_per_s\": %f, \
              \"writes_per_frame\": %f, \"reads_per_frame\": %f, \
              \"minor_words_per_frame\": %f}"
             (fun n wall_s frames frames_per_s writes_per_frame reads_per_frame
                  minor_words_per_frame ->
               { n; wall_s; frames; frames_per_s; writes_per_frame; reads_per_frame;
                 minor_words_per_frame })
         with
         | Some r -> entries := r :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !entries)
  end

(* ------------------------------------------------------------------ *)
(* Rendering and gates                                                  *)
(* ------------------------------------------------------------------ *)

let render rows =
  let fmt_rows =
    List.map
      (fun r ->
        [ string_of_int r.n;
          Printf.sprintf "%.2f" r.wall_s;
          string_of_int r.frames;
          Printf.sprintf "%.0fk" (r.frames_per_s /. 1e3);
          Printf.sprintf "%.4f" r.writes_per_frame;
          Printf.sprintf "%.4f" r.reads_per_frame;
          Printf.sprintf "%.1f" r.minor_words_per_frame ])
      rows
  in
  Stats.Text_table.render
    ~headers:
      [ "n"; "wall s"; "frames"; "frames/s"; "writes/frame"; "reads/frame"; "words/frame" ]
    fmt_rows

let check_regressions ~baseline rows =
  let failures =
    List.concat_map
      (fun r ->
        match List.find_opt (fun b -> b.n = r.n) baseline with
        | None -> []
        | Some b ->
          (* higher-is-worse metrics gate on current > 2x base; the
             throughput gates on current < base / 2. *)
          let worse what current base =
            if base > 0. && current > regression_factor *. base then
              [ ( Printf.sprintf "n=%d %s: %.4f vs baseline %.4f (%.1fx)" r.n what current
                    base (current /. base),
                  (Printf.sprintf "n=%d %s" r.n what, current /. base) ) ]
            else []
          in
          let slower what current base =
            if current > 0. && base > regression_factor *. current then
              [ ( Printf.sprintf "n=%d %s: %.0f vs baseline %.0f (%.1fx slower)" r.n what
                    current base (base /. current),
                  (Printf.sprintf "n=%d %s" r.n what, base /. current) ) ]
            else []
          in
          slower "frames_per_s" r.frames_per_s b.frames_per_s
          @ worse "writes_per_frame" r.writes_per_frame b.writes_per_frame
          @ worse "reads_per_frame" r.reads_per_frame b.reads_per_frame
          @ worse "minor_words_per_frame" r.minor_words_per_frame b.minor_words_per_frame)
      rows
  in
  match failures with
  | [] ->
    Harness.say "net: PASS no regressions > %.1fx against %s" regression_factor baseline_file;
    true
  | fs ->
    List.iter (fun (f, _) -> Harness.say "REGRESSION %s" f) fs;
    let worst_name, worst_factor =
      List.fold_left
        (fun ((_, wf) as acc) (_, (name, f)) -> if f > wf then (name, f) else acc)
        ("", 0.) fs
    in
    Harness.say "net: FAIL %d gate(s) exceeded %.1fx vs %s (worst %s %.1fx)" (List.length fs)
      regression_factor baseline_file worst_name worst_factor;
    false

let run ~fast ~check =
  let rows =
    List.map
      (fun n ->
        let r = run_one ~fast n in
        Harness.say "  n=%-3d %7d frames in %.2fs (%.0fk frames/s, %.4f writes/frame)" n
          r.frames r.wall_s (r.frames_per_s /. 1e3) r.writes_per_frame;
        r)
      ns
  in
  Harness.say "";
  Harness.say "%s" (render rows);
  Harness.say "";
  if check then begin
    match read_baseline baseline_file with
    | None | Some [] ->
      Harness.say "no baseline %s found; writing a fresh one" baseline_file;
      write_baseline baseline_file rows
    | Some baseline -> if not (check_regressions ~baseline rows) then exit 1
  end
  else begin
    write_baseline baseline_file rows;
    Harness.say "baseline written to %s" baseline_file
  end
