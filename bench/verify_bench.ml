(* Verification-pipeline benchmark: the Exec.Pool domain worker pool
   against inline verification, with a JSON baseline and regression
   gates.

   Two parts:

   - Batch datablock verification (the Merkle + signature check of
     Algorithm 1) over fresh clones each round — memo fields reset via
     [Datablock.of_wire] so every round recomputes the real crypto —
     single-threaded inline vs pools of 1, 2 and 4 worker domains.
     The d4/d1 ratio is the headline speedup.

   - An n=16 loopback TCP cluster with the pool off, then on: the
     pool-off leg's confirmed count becomes the pool-on leg's
     [min_confirmed] target, so "pool on confirms no fewer requests
     than pool off" is checked by construction (the on-leg only
     finishes early by reaching it; falling short shows up as a
     smaller confirmed count and fails the gate).

   Caveat recorded in the JSON: a host without spare cores (the CI
   container has one) cannot express a parallel speedup — workers and
   owner time-share one CPU, so d2/d4 measure overhead, not scaling.
   The >= 2.5x speedup gate therefore only arms when
   [Domain.recommended_domain_count () >= 5] (4 workers + the owner);
   below that the numbers are recorded but the gate reports itself
   skipped. See EXPERIMENTS.md "verify".

     dune exec bench/main.exe -- --only verify
     dune exec bench/main.exe -- --only verify --check-regressions

   The run writes [BENCH_verify.json]; with [--check-regressions] it
   compares against the checked-in baseline and exits nonzero when any
   leg got more than 2x slower (blocks/s, TCP throughput). *)

type db_row = {
  leg : string; (* "inline" | "d1" | "d2" | "d4" *)
  blocks : int;
  wall_s : float;
  blocks_per_s : float;
}

type tcp_row = {
  pool : string; (* "off" | "on" *)
  tcp_n : int;
  offered : int;
  confirmed : int;
  throughput : float;
}

let baseline_file = "BENCH_verify.json"
let regression_factor = 2.0
let speedup_target = 2.5
let n_blocks = 64

(* ------------------------------------------------------------------ *)
(* Batch datablock verification                                        *)
(* ------------------------------------------------------------------ *)

(* 8 batches x 32 requests x 64 B per datablock: 256 requests, the same
   shape the cluster's mempool packs, big enough that the Merkle walk
   (not the HMAC) dominates, as in the deployed path. *)
let mk_blocks () =
  let rng = Sim.Rng.create 42L in
  let pk, sk = Crypto.Signature.keygen rng in
  let next = ref 0 in
  let blocks =
    Array.init n_blocks (fun i ->
        let batches =
          List.init 8 (fun _ ->
              incr next;
              Workload.Request.make ~id:!next ~count:32 ~size_each:64
                ~born:Sim.Sim_time.zero ())
        in
        Core.Datablock.create ~sk ~creator:(i mod 4) ~counter:(i + 1)
          ~now:Sim.Sim_time.zero batches)
  in
  ([| pk; pk; pk; pk |], blocks)

(* A fresh copy with cold memo fields: same wire bytes, all the crypto
   recomputed on the next [verify]. *)
let clone db =
  let open Core.Datablock in
  of_wire ~creator:db.header.creator ~counter:db.header.counter ~digest:db.header.digest
    ~created_at:db.created_at ~signature:db.signature db.batches

let run_db_leg ~window ~pks ~domains blocks =
  let pool =
    match domains with 0 -> None | d -> Some (Exec.Pool.create ~domains:d ())
  in
  let verify_round () =
    let fresh = Array.map clone blocks in
    match pool with
    | None ->
        Array.iter (fun db -> assert (Core.Datablock.verify ~pks db)) fresh
    | Some p ->
        let futs =
          Exec.Pool.submit_batch p
            (Array.to_list
               (Array.map (fun db () -> Core.Datablock.verify ~pks db) fresh))
        in
        List.iter (fun f -> assert (Exec.Pool.await f)) futs
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Exec.Pool.shutdown pool)
    (fun () ->
      verify_round () (* warmup: key registry hot, workers spun up *);
      let verified = ref 0 in
      let wall0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. wall0 < window do
        verify_round ();
        verified := !verified + n_blocks
      done;
      let wall_s = Unix.gettimeofday () -. wall0 in
      { leg = (if domains = 0 then "inline" else Printf.sprintf "d%d" domains);
        blocks = !verified;
        wall_s;
        blocks_per_s =
          (if wall_s <= 0. then 0. else float_of_int !verified /. wall_s) })

(* ------------------------------------------------------------------ *)
(* n=16 TCP cluster, pool off vs on                                    *)
(* ------------------------------------------------------------------ *)

let tcp_n = 16

let tcp_cfg () =
  (* Small batches and snappy timers (the transport tests' shape, at
     n=16): commits every few tens of milliseconds, so a short window
     still carries thousands of requests through the full verify path. *)
  Core.Config.make ~n:tcp_n ~alpha:10 ~bft_size:2 ~k:16 ~payload:64
    ~datablock_timeout:(Sim.Sim_time.ms 20) ~proposal_timeout:(Sim.Sim_time.ms 20)
    ~view_timeout:(Sim.Sim_time.s 120) ~fetch_grace:(Sim.Sim_time.ms 200)
    ~cost:Crypto.Cost_model.free ()

let run_tcp_leg ~fast ~pool ~min_confirmed () =
  (* The chasing leg (min_confirmed set) gets a doubled load window: it
     stops early on reaching the target, so the extra headroom only
     matters when it is genuinely slower — which is what the gate is
     for. Without the headroom the window can close before the target
     count has even been offered and the gate trips on timing noise. *)
  let base = if fast then 2 else 4 in
  let duration =
    Sim.Sim_time.s (match min_confirmed with Some _ -> 2 * base | None -> base)
  in
  let r =
    Transport.Cluster.run ~cfg:(tcp_cfg ()) ~load:2000. ~duration
      ~drain:(Sim.Sim_time.s 10)
      ?min_confirmed
      ~verify_domains:(if pool then 2 else 0)
      ()
  in
  if not r.Transport.Cluster.ledgers_agree then
    failwith "verify bench: TCP ledgers diverged";
  { pool = (if pool then "on" else "off");
    tcp_n;
    offered = r.Transport.Cluster.offered;
    confirmed = r.Transport.Cluster.confirmed;
    throughput = r.Transport.Cluster.throughput }

(* ------------------------------------------------------------------ *)
(* JSON baseline (same line-per-entry shape as BENCH_net.json)          *)
(* ------------------------------------------------------------------ *)

let write_baseline path ~host_cores ~speedup4 db_rows tcp_rows =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"generated_by\": \"dune exec bench/main.exe -- --only verify\",\n";
  Printf.fprintf oc "  \"host\": {\"recommended_domains\": %d},\n" host_cores;
  Printf.fprintf oc "  \"speedup_d4_vs_d1\": %.2f,\n" speedup4;
  output_string oc "  \"benchmarks\": [\n";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "    {\"leg\": \"%s\", \"blocks\": %d, \"wall_s\": %.2f, \"blocks_per_s\": %.0f},\n"
        r.leg r.blocks r.wall_s r.blocks_per_s)
    db_rows;
  let count = List.length tcp_rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"tcp_n\": %d, \"pool\": \"%s\", \"offered\": %d, \"confirmed\": %d, \
         \"throughput\": %.0f}%s\n"
        r.tcp_n r.pool r.offered r.confirmed r.throughput
        (if i = count - 1 then "" else ","))
    tcp_rows;
  output_string oc "  ]\n}\n";
  close_out oc

let sscanf_opt line fmt f =
  try Some (Scanf.sscanf line fmt f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let read_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let dbs = ref [] and tcps = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         (match
            sscanf_opt line
              "{\"leg\": \"%s@\", \"blocks\": %d, \"wall_s\": %f, \"blocks_per_s\": %f}"
              (fun leg blocks wall_s blocks_per_s -> { leg; blocks; wall_s; blocks_per_s })
          with
         | Some r -> dbs := r :: !dbs
         | None -> ());
         match
           sscanf_opt line
             "{\"tcp_n\": %d, \"pool\": \"%s@\", \"offered\": %d, \"confirmed\": %d, \
              \"throughput\": %f}"
             (fun tcp_n pool offered confirmed throughput ->
               { tcp_n; pool; offered; confirmed; throughput })
         with
         | Some r -> tcps := r :: !tcps
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !dbs, List.rev !tcps)
  end

(* ------------------------------------------------------------------ *)
(* Rendering and gates                                                  *)
(* ------------------------------------------------------------------ *)

let render_db rows =
  Stats.Text_table.render
    ~headers:[ "leg"; "blocks"; "wall s"; "blocks/s" ]
    (List.map
       (fun r ->
         [ r.leg; string_of_int r.blocks; Printf.sprintf "%.2f" r.wall_s;
           Printf.sprintf "%.0f" r.blocks_per_s ])
       rows)

let render_tcp rows =
  Stats.Text_table.render
    ~headers:[ "n"; "pool"; "offered"; "confirmed"; "req/s" ]
    (List.map
       (fun r ->
         [ string_of_int r.tcp_n; r.pool; string_of_int r.offered;
           string_of_int r.confirmed; Printf.sprintf "%.0f" r.throughput ])
       rows)

let check_regressions ~db_base ~tcp_base db_rows tcp_rows =
  let failures = ref [] in
  let slower what current base =
    if current > 0. && base > regression_factor *. current then
      failures :=
        Printf.sprintf "%s: %.0f vs baseline %.0f (%.1fx slower)" what current base
          (base /. current)
        :: !failures
  in
  List.iter
    (fun r ->
      match List.find_opt (fun b -> String.equal b.leg r.leg) db_base with
      | Some b -> slower (Printf.sprintf "%s blocks_per_s" r.leg) r.blocks_per_s b.blocks_per_s
      | None -> ())
    db_rows;
  List.iter
    (fun (r : tcp_row) ->
      match
        List.find_opt (fun (b : tcp_row) -> String.equal b.pool r.pool && b.tcp_n = r.tcp_n)
          tcp_base
      with
      | Some b ->
        slower (Printf.sprintf "tcp n=%d pool=%s throughput" r.tcp_n r.pool) r.throughput
          b.throughput
      | None -> ())
    tcp_rows;
  match !failures with
  | [] ->
    Harness.say "verify: PASS no regressions > %.1fx against %s" regression_factor
      baseline_file;
    true
  | fs ->
    List.iter (fun f -> Harness.say "REGRESSION %s" f) fs;
    Harness.say "verify: FAIL %d gate(s) exceeded %.1fx vs %s" (List.length fs)
      regression_factor baseline_file;
    false

let run ~fast ~check =
  let host_cores = Domain.recommended_domain_count () in
  let window = if fast then 0.25 else 1.0 in
  let pks, blocks = mk_blocks () in
  let db_rows =
    List.map
      (fun domains ->
        let r = run_db_leg ~window ~pks ~domains blocks in
        Harness.say "  %-6s %6d blocks in %.2fs (%.0f blocks/s)" r.leg r.blocks r.wall_s
          r.blocks_per_s;
        r)
      [ 0; 1; 2; 4 ]
  in
  let rate leg =
    match List.find_opt (fun r -> String.equal r.leg leg) db_rows with
    | Some r -> r.blocks_per_s
    | None -> 0.
  in
  let speedup4 = if rate "d1" > 0. then rate "d4" /. rate "d1" else 0. in
  Harness.say "";
  Harness.say "%s" (render_db db_rows);
  Harness.say "";
  Harness.say "  d4 vs d1 speedup: %.2fx (host recommended_domain_count = %d)" speedup4
    host_cores;
  let off = run_tcp_leg ~fast ~pool:false ~min_confirmed:None () in
  Harness.say "  tcp n=%d pool=off: %d confirmed (%.0f req/s)" tcp_n off.confirmed
    off.throughput;
  (* The on-leg chases the off-leg's confirmed count: reaching it ends
     the load window early, so "no fewer requests than pool-off" is the
     success condition, not a tuning accident. *)
  let on = run_tcp_leg ~fast ~pool:true ~min_confirmed:(Some off.confirmed) () in
  Harness.say "  tcp n=%d pool=on : %d confirmed (%.0f req/s)" tcp_n on.confirmed
    on.throughput;
  let tcp_rows = [ off; on ] in
  Harness.say "";
  Harness.say "%s" (render_tcp tcp_rows);
  Harness.say "";
  let pool_keeps_up = on.confirmed >= off.confirmed in
  if not pool_keeps_up then
    Harness.say "GATE pool-on confirmed %d < pool-off %d at n=%d" on.confirmed off.confirmed
      tcp_n;
  let speedup_ok =
    if host_cores >= 5 then begin
      if speedup4 < speedup_target then
        Harness.say "GATE d4 speedup %.2fx < %.1fx with %d cores available" speedup4
          speedup_target host_cores;
      speedup4 >= speedup_target
    end
    else begin
      Harness.say
        "  speedup gate skipped: host has %d recommended domains (< 5); workers time-share"
        host_cores;
      true
    end
  in
  if check then begin
    let gates_ok = pool_keeps_up && speedup_ok in
    match read_baseline baseline_file with
    | None | Some ([], []) ->
      Harness.say "no baseline %s found; writing a fresh one" baseline_file;
      write_baseline baseline_file ~host_cores ~speedup4 db_rows tcp_rows;
      if not gates_ok then exit 1
    | Some (db_base, tcp_base) ->
      let regress_ok = check_regressions ~db_base ~tcp_base db_rows tcp_rows in
      if not (regress_ok && gates_ok) then exit 1
  end
  else begin
    write_baseline baseline_file ~host_cores ~speedup4 db_rows tcp_rows;
    Harness.say "baseline written to %s" baseline_file
  end
