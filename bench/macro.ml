(* Macro-benchmark: wall-clock cost of *simulating* the full Leopard
   protocol as n grows, with a JSON baseline and per-n regression gates.

   Where [Micro] measures the byte-level primitives (SHA-256, codec,
   vote payloads), this measures the event-level substrate: how much
   host time and allocation one simulated second costs at n replicas.
   The paper's headline runs go to n = 600 (Fig. 8/9, Table 3); those
   reproductions are only tractable if the per-event and per-message
   simulator overheads stay flat in n, which is what this bench gates.

     dune exec bench/main.exe -- --only macro
     dune exec bench/main.exe -- --only macro --fast
     dune exec bench/main.exe -- --only macro --check-regressions

   Each row runs the complete protocol (datablock dissemination, two
   vote rounds, checkpoints) for a fixed simulated window and reports

     - wall-clock seconds, and simulated-seconds per wall-second,
     - events fired and events per wall-second,
     - GC minor words per event and per delivered protocol message
       (the multicast fan-out cost the shared-packet path optimizes).

   The run writes [BENCH_sim.json]; with [--check-regressions] it
   compares against the checked-in baseline instead and exits nonzero
   when any n got more than 2x slower (wall-clock) or more than 2x more
   allocation-hungry (minor words/event, minor words/message). *)

type row = {
  n : int;
  sim_s : float;            (* simulated window *)
  wall_s : float;
  events : int;
  events_per_s : float;
  minor_words_per_event : float;
  delivered_msgs : int;
  minor_words_per_msg : float;
  confirmed : int;          (* requests confirmed: a cheap cross-rewrite
                               determinism fingerprint, not a perf metric *)
}

let baseline_file = "BENCH_sim.json"
let regression_factor = 2.0

(* ------------------------------------------------------------------ *)
(* One measured run                                                     *)
(* ------------------------------------------------------------------ *)

(* A fixed offered load across n: the protocol work per simulated second
   is then load-bound, so the measured growth in events and words is the
   fan-out cost of scale, not a larger workload. Batch sizes are pinned
   small for the same reason — with the paper's adaptive alpha, large n
   would spend the whole short window filling its first datablock and the
   bench would measure an idle simulator. *)
let macro_load = 5e4

let durations ~fast n =
  let sim = if n <= 64 then 10 else if n <= 128 then 8 else 6 in
  if fast then max 3 (sim / 2) else sim

let run_one ~fast n =
  let sim_seconds = durations ~fast n in
  let cfg = Core.Config.make ~n ~alpha:250 ~bft_size:50 () in
  let duration = Sim.Sim_time.s sim_seconds in
  let sp =
    Core.Runner.spec ~cfg ~load:macro_load ~duration
      ~warmup:(Sim.Sim_time.s 1) ()
  in
  let t = Core.Runner.create sp in
  Gc.full_major ();
  let minor0 = Gc.minor_words () in
  let wall0 = Unix.gettimeofday () in
  Core.Runner.run_until t duration;
  let wall_s = Unix.gettimeofday () -. wall0 in
  let minor = Gc.minor_words () -. minor0 in
  let r = Core.Runner.report t in
  let events = Sim.Engine.events_fired (Core.Runner.engine t) in
  let delivered = Net.Network.delivered_messages (Core.Runner.network t) in
  { n;
    sim_s = float_of_int sim_seconds;
    wall_s;
    events;
    events_per_s = (if wall_s <= 0. then 0. else float_of_int events /. wall_s);
    minor_words_per_event = (if events = 0 then 0. else minor /. float_of_int events);
    delivered_msgs = delivered;
    minor_words_per_msg = (if delivered = 0 then 0. else minor /. float_of_int delivered);
    confirmed = r.Core.Runner.confirmed }

let ns ~fast = if fast then [ 4; 16; 64 ] else [ 4; 16; 64; 128; 300 ]

(* ------------------------------------------------------------------ *)
(* JSON baseline (same line-per-entry shape as BENCH_micro.json)        *)
(* ------------------------------------------------------------------ *)

let write_baseline path rows =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"generated_by\": \"dune exec bench/main.exe -- --only macro\",\n";
  output_string oc "  \"benchmarks\": [\n";
  let count = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"n\": %d, \"sim_s\": %.1f, \"wall_s\": %.2f, \"events\": %d, \
         \"events_per_s\": %.0f, \"minor_words_per_event\": %.1f, \
         \"delivered_msgs\": %d, \"minor_words_per_msg\": %.1f, \"confirmed\": %d}%s\n"
        r.n r.sim_s r.wall_s r.events r.events_per_s r.minor_words_per_event
        r.delivered_msgs r.minor_words_per_msg r.confirmed
        (if i = count - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

(* Scanf.sscanf_opt is 5.0-only; the CI matrix still builds on 4.14. *)
let sscanf_opt line fmt f =
  try Some (Scanf.sscanf line fmt f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let read_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match
           sscanf_opt line
             "{\"n\": %d, \"sim_s\": %f, \"wall_s\": %f, \"events\": %d, \
              \"events_per_s\": %f, \"minor_words_per_event\": %f, \
              \"delivered_msgs\": %d, \"minor_words_per_msg\": %f, \"confirmed\": %d}"
             (fun n sim_s wall_s events events_per_s minor_words_per_event delivered_msgs
                  minor_words_per_msg confirmed ->
               { n; sim_s; wall_s; events; events_per_s; minor_words_per_event;
                 delivered_msgs; minor_words_per_msg; confirmed })
         with
         | Some r -> entries := r :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !entries)
  end

(* ------------------------------------------------------------------ *)
(* Rendering and gates                                                  *)
(* ------------------------------------------------------------------ *)

let render rows =
  let fmt_rows =
    List.map
      (fun r ->
        [ string_of_int r.n;
          Printf.sprintf "%.0f" r.sim_s;
          Printf.sprintf "%.2f" r.wall_s;
          Printf.sprintf "%.2fM" (float_of_int r.events /. 1e6);
          Printf.sprintf "%.2fM" (r.events_per_s /. 1e6);
          Printf.sprintf "%.1f" r.minor_words_per_event;
          Printf.sprintf "%.1f" r.minor_words_per_msg;
          string_of_int r.confirmed ])
      rows
  in
  Stats.Text_table.render
    ~headers:
      [ "n"; "sim s"; "wall s"; "events"; "events/s"; "words/event"; "words/msg"; "confirmed" ]
    fmt_rows

let check_regressions ~baseline rows =
  let failures =
    List.concat_map
      (fun r ->
        match List.find_opt (fun b -> b.n = r.n) baseline with
        | None -> []
        | Some b ->
          let gate what current base =
            if base > 0. && current > regression_factor *. base then
              [ ( Printf.sprintf "n=%d %s: %.2f vs baseline %.2f (%.1fx)" r.n what current
                    base (current /. base),
                  (Printf.sprintf "n=%d %s" r.n what, current /. base) ) ]
            else []
          in
          gate "wall_s" r.wall_s b.wall_s
          @ gate "minor_words_per_event" r.minor_words_per_event b.minor_words_per_event
          (* Gated since the n=300 anomaly: words/msg had crept superlinear
             in n through [retry_waiting_proposals] allocating a snapshot
             per datablock arrival; it is flat (~186 at n=128 and n=300)
             now that the retry pre-scans without allocating, and this
             gate keeps it that way. *)
          @ gate "minor_words_per_msg" r.minor_words_per_msg b.minor_words_per_msg)
      rows
  in
  match failures with
  | [] ->
    Harness.say "macro: PASS no regressions > %.1fx against %s" regression_factor baseline_file;
    true
  | fs ->
    List.iter (fun (f, _) -> Harness.say "REGRESSION %s" f) fs;
    let worst_name, worst_factor =
      List.fold_left
        (fun ((_, wf) as acc) (_, (name, f)) -> if f > wf then (name, f) else acc)
        ("", 0.) fs
    in
    Harness.say "macro: FAIL %d gate(s) exceeded %.1fx vs %s (worst %s %.1fx)" (List.length fs)
      regression_factor baseline_file worst_name worst_factor;
    false

let run ~fast ~check =
  let rows =
    List.map
      (fun n ->
        let r = run_one ~fast n in
        Harness.say "  n=%-4d %.2fs wall for %.0fs simulated (%d events, %d msgs)" n r.wall_s
          r.sim_s r.events r.delivered_msgs;
        r)
      (ns ~fast)
  in
  Harness.say "";
  Harness.say "%s" (render rows);
  Harness.say "";
  if check then begin
    match read_baseline baseline_file with
    | None | Some [] ->
      Harness.say "no baseline %s found; writing a fresh one" baseline_file;
      write_baseline baseline_file rows
    | Some baseline -> if not (check_regressions ~baseline rows) then exit 1
  end
  else begin
    write_baseline baseline_file rows;
    Harness.say "baseline written to %s" baseline_file
  end
