(* Durable-store benchmark: WAL append throughput under each fsync
   policy, and recovery time as a function of log length, with a JSON
   baseline and regression gates.

   Two parts:

   - Append throughput: a [Store.Store_file] in a temp directory,
     appending Codec-encoded prepare-vote records (the hot record on the
     vote path) with a flush every 64 appends — the group-commit cadence
     the cluster's loop tick produces — under [Never], [Interval 50ms]
     and [Always]. [Always] fsyncs per record, so its leg uses a much
     smaller count; its records/s is the price of synchronous
     durability, not a regression of the others.

   - Recovery: logs of increasing length are written, closed, and read
     back with [Store_file.load_dir] — the exact scan [Replica.recover]
     runs. The gate also checks the scan is lossless (every record
     written comes back).

     dune exec bench/main.exe -- --only store
     dune exec bench/main.exe -- --only store --check-regressions

   The run writes [BENCH_store.json]; with [--check-regressions] it
   compares against the checked-in baseline and exits nonzero when any
   leg got more than 2x slower (append records/s, recovery records/s). *)

type append_row = {
  policy : string; (* "never" | "interval" | "always" *)
  records : int;
  wall_s : float;
  records_per_s : float;
}

type recovery_row = {
  log_records : int;
  recovered : int;
  rec_wall_s : float;
  rec_records_per_s : float;
}

let baseline_file = "BENCH_store.json"
let regression_factor = 2.0
let flush_every = 64

(* ------------------------------------------------------------------ *)
(* Workload: a realistic vote record                                   *)
(* ------------------------------------------------------------------ *)

(* The record the vote path logs before every prepare send: a threshold
   share over a view/serial/hash triple. Rebuilt per append so encoding
   cost is included, as on the live path. *)
let mk_record =
  let rng = Sim.Rng.create 7L in
  let _setup, keys = Crypto.Threshold.keygen rng ~threshold:3 ~parties:4 in
  let hash = Crypto.Hash.of_string "store-bench-block" in
  fun i ->
    let share =
      Crypto.Threshold.sign_share keys.(0)
        (Core.Msg.prepare_payload ~view:1 ~block_hash:hash)
    in
    Core.Store.Logged_msg
      (Core.Msg.Prepare_vote { view = 1; sn = i; block_hash = hash; share })

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "leopard-store-bench.%d.%d" (Unix.getpid ()) !counter)

(* ------------------------------------------------------------------ *)
(* Append throughput per fsync policy                                  *)
(* ------------------------------------------------------------------ *)

let run_append_leg ~policy ~name ~records () =
  let dir = fresh_dir () in
  let st = Store.Store_file.create ~fsync:policy ~dir () in
  let wall0 = Unix.gettimeofday () in
  for i = 1 to records do
    Store.Store_file.log st (mk_record i);
    if i mod flush_every = 0 then Store.Store_file.flush st
  done;
  Store.Store_file.close st;
  let wall_s = Unix.gettimeofday () -. wall0 in
  Store.Store_file.remove_dir dir;
  { policy = name;
    records;
    wall_s;
    records_per_s =
      (if wall_s <= 0. then 0. else float_of_int records /. wall_s) }

(* ------------------------------------------------------------------ *)
(* Recovery time vs log length                                         *)
(* ------------------------------------------------------------------ *)

let run_recovery_leg ~records () =
  let dir = fresh_dir () in
  let st = Store.Store_file.create ~fsync:Store.Wal.Never ~dir () in
  for i = 1 to records do
    Store.Store_file.log st (mk_record i);
    if i mod flush_every = 0 then Store.Store_file.flush st
  done;
  Store.Store_file.close st;
  let wall0 = Unix.gettimeofday () in
  let _snap, recs = Store.Store_file.load_dir dir in
  let rec_wall_s = Unix.gettimeofday () -. wall0 in
  Store.Store_file.remove_dir dir;
  let recovered = List.length recs in
  { log_records = records;
    recovered;
    rec_wall_s;
    rec_records_per_s =
      (if rec_wall_s <= 0. then 0. else float_of_int recovered /. rec_wall_s) }

(* ------------------------------------------------------------------ *)
(* JSON baseline (same line-per-entry shape as BENCH_verify.json)      *)
(* ------------------------------------------------------------------ *)

let write_baseline path append_rows recovery_rows =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"generated_by\": \"dune exec bench/main.exe -- --only store\",\n";
  output_string oc "  \"benchmarks\": [\n";
  List.iter
    (fun r ->
      Printf.fprintf oc
        "    {\"policy\": \"%s\", \"records\": %d, \"wall_s\": %.3f, \"records_per_s\": %.0f},\n"
        r.policy r.records r.wall_s r.records_per_s)
    append_rows;
  let count = List.length recovery_rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"log_records\": %d, \"recovered\": %d, \"rec_wall_s\": %.3f, \
         \"rec_records_per_s\": %.0f}%s\n"
        r.log_records r.recovered r.rec_wall_s r.rec_records_per_s
        (if i = count - 1 then "" else ","))
    recovery_rows;
  output_string oc "  ]\n}\n";
  close_out oc

let sscanf_opt line fmt f =
  try Some (Scanf.sscanf line fmt f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let read_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let appends = ref [] and recoveries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         (match
            sscanf_opt line
              "{\"policy\": \"%s@\", \"records\": %d, \"wall_s\": %f, \"records_per_s\": %f}"
              (fun policy records wall_s records_per_s ->
                { policy; records; wall_s; records_per_s })
          with
         | Some r -> appends := r :: !appends
         | None -> ());
         match
           sscanf_opt line
             "{\"log_records\": %d, \"recovered\": %d, \"rec_wall_s\": %f, \
              \"rec_records_per_s\": %f}"
             (fun log_records recovered rec_wall_s rec_records_per_s ->
               { log_records; recovered; rec_wall_s; rec_records_per_s })
         with
         | Some r -> recoveries := r :: !recoveries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !appends, List.rev !recoveries)
  end

(* ------------------------------------------------------------------ *)
(* Rendering and gates                                                 *)
(* ------------------------------------------------------------------ *)

let render_appends rows =
  Stats.Text_table.render
    ~headers:[ "fsync"; "records"; "wall s"; "records/s" ]
    (List.map
       (fun r ->
         [ r.policy; string_of_int r.records; Printf.sprintf "%.3f" r.wall_s;
           Printf.sprintf "%.0f" r.records_per_s ])
       rows)

let render_recoveries rows =
  Stats.Text_table.render
    ~headers:[ "log records"; "recovered"; "wall s"; "records/s" ]
    (List.map
       (fun r ->
         [ string_of_int r.log_records; string_of_int r.recovered;
           Printf.sprintf "%.3f" r.rec_wall_s;
           Printf.sprintf "%.0f" r.rec_records_per_s ])
       rows)

let check_regressions ~append_base ~recovery_base append_rows recovery_rows =
  let failures = ref [] in
  let slower what current base =
    if current > 0. && base > regression_factor *. current then
      failures :=
        Printf.sprintf "%s: %.0f vs baseline %.0f (%.1fx slower)" what current
          base (base /. current)
        :: !failures
  in
  List.iter
    (fun r ->
      match
        List.find_opt (fun b -> String.equal b.policy r.policy) append_base
      with
      | Some b ->
        slower
          (Printf.sprintf "append fsync=%s records_per_s" r.policy)
          r.records_per_s b.records_per_s
      | None -> ())
    append_rows;
  List.iter
    (fun (r : recovery_row) ->
      match
        List.find_opt
          (fun (b : recovery_row) -> b.log_records = r.log_records)
          recovery_base
      with
      | Some b ->
        slower
          (Printf.sprintf "recovery of %d records_per_s" r.log_records)
          r.rec_records_per_s b.rec_records_per_s
      | None -> ())
    recovery_rows;
  match !failures with
  | [] ->
    Harness.say "store: PASS no regressions > %.1fx against %s" regression_factor
      baseline_file;
    true
  | fs ->
    List.iter (fun f -> Harness.say "REGRESSION %s" f) fs;
    Harness.say "store: FAIL %d gate(s) exceeded %.1fx vs %s" (List.length fs)
      regression_factor baseline_file;
    false

let run ~fast ~check =
  let buffered = if fast then 20_000 else 100_000 in
  let synced = if fast then 300 else 2_000 in
  let append_rows =
    List.map
      (fun (policy, name, records) ->
        let r = run_append_leg ~policy ~name ~records () in
        Harness.say "  append fsync=%-8s %7d records in %.3fs (%.0f records/s)"
          r.policy r.records r.wall_s r.records_per_s;
        r)
      [ (Store.Wal.Never, "never", buffered);
        (Store.Wal.Interval 50_000_000, "interval", buffered);
        (Store.Wal.Always, "always", synced) ]
  in
  Harness.say "";
  Harness.say "%s" (render_appends append_rows);
  Harness.say "";
  let lossless = ref true in
  let recovery_rows =
    List.map
      (fun records ->
        let r = run_recovery_leg ~records () in
        Harness.say "  recover %6d records in %.3fs (%.0f records/s)"
          r.log_records r.rec_wall_s r.rec_records_per_s;
        if r.recovered <> r.log_records then begin
          Harness.say "GATE recovery lost records: %d written, %d recovered"
            r.log_records r.recovered;
          lossless := false
        end;
        r)
      (if fast then [ 1_000; 5_000 ] else [ 1_000; 10_000; 50_000 ])
  in
  Harness.say "";
  Harness.say "%s" (render_recoveries recovery_rows);
  Harness.say "";
  if check then begin
    match read_baseline baseline_file with
    | None | Some ([], []) ->
      Harness.say "no baseline %s found; writing a fresh one" baseline_file;
      write_baseline baseline_file append_rows recovery_rows;
      if not !lossless then exit 1
    | Some (append_base, recovery_base) ->
      let regress_ok =
        check_regressions ~append_base ~recovery_base append_rows recovery_rows
      in
      if not (regress_ok && !lossless) then exit 1
  end
  else begin
    write_baseline baseline_file append_rows recovery_rows;
    Harness.say "baseline written to %s" baseline_file
  end
