(* Reproduction harness: one bench per table and figure of the paper's
   evaluation (§6), plus the §2 delivery-technique ablations and bechamel
   micro-benchmarks of the hot primitives.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --list       # experiment ids
     dune exec bench/main.exe -- --only fig9  # one experiment
     dune exec bench/main.exe -- --fast       # reduced sweeps (CI)

   Absolute numbers come from a simulated substrate (see DESIGN.md); the
   *shapes* — who wins, by what factor, where curves flatten or collapse
   — are the reproduction targets recorded in EXPERIMENTS.md. *)

open Harness

(* ------------------------------------------------------------------ *)
(* Table 1: shard-sampling failure probability                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header ~id:"table1" ~title:"Expected error probability of shard sampling"
    ~paper:"Table 1: P[> (n-1)/3 Byzantine] when sampling n from rho faults";
  let rows =
    List.map
      (fun (rho, cells) ->
        Printf.sprintf "1/%.0f" (1. /. rho)
        :: List.map (fun (_, p) -> Printf.sprintf "%.2e" p) cells)
      (Analysis.Shard_prob.table1 ())
  in
  let headers = "rho \\ n" :: List.map string_of_int [ 16; 32; 64; 128; 256; 400; 600 ] in
  say "%s" (Stats.Text_table.render ~headers rows);
  say "";
  say "smallest shard with failure <= 1e-3 at rho=1/4: %d replicas"
    (Analysis.Shard_prob.min_shard_size ~rho:0.25 ~target:1e-3);
  say "(the paper's argument: sharding presupposes a BFT protocol that is";
  say " efficient at multiple hundreds of replicas)"

(* ------------------------------------------------------------------ *)
(* Fig 1: motivation — HotStuff & PBFT throughput vs n, two payloads   *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header ~id:"fig1" ~title:"HotStuff & BFT-SMaRt-style PBFT throughput vs n"
    ~paper:"Fig 1: high throughput only at small scale; sharp drop as n grows";
  let ns_hotstuff = if !fast_mode then [ 8; 32; 64 ] else [ 8; 16; 32; 64; 128 ] in
  let ns_pbft = if !fast_mode then [ 8; 16 ] else [ 8; 16; 32; 64 ] in
  let series payload =
    let hs = Stats.Series.create ~name:(Printf.sprintf "HotStuff %dB (kops/s)" payload) in
    List.iter
      (fun n ->
        let r = run_hotstuff ~payload n in
        Stats.Series.add hs ~x:(float_of_int n) ~y:(r.Hotstuff.Hs_runner.throughput /. 1e3))
      ns_hotstuff;
    let pb = Stats.Series.create ~name:(Printf.sprintf "PBFT %dB (kops/s)" payload) in
    List.iter
      (fun n ->
        let r = run_pbft ~payload n in
        Stats.Series.add pb ~x:(float_of_int n) ~y:(r.Pbft.throughput /. 1e3))
      ns_pbft;
    [ hs; pb ]
  in
  let all = series 128 @ series 1024 in
  say "%s" (Stats.Series.render_table ~x_label:"n" all);
  say "";
  say "expected shape: every curve decays roughly as 1/(n-1) once the";
  say "leader NIC saturates (the scalability-efficiency dilemma)"

(* ------------------------------------------------------------------ *)
(* Fig 2: HotStuff throughput + leader bandwidth utilization vs n      *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header ~id:"fig2" ~title:"HotStuff: leader bandwidth utilization grows with n"
    ~paper:"Fig 2: throughput falls while the leader's NIC usage climbs";
  let ns = if !fast_mode then [ 8; 32; 64 ] else [ 8; 16; 32; 64; 128 ] in
  let tput = Stats.Series.create ~name:"throughput (kops/s)" in
  let bw = Stats.Series.create ~name:"leader traffic (Gbps)" in
  List.iter
    (fun n ->
      let r = run_hotstuff n in
      Stats.Series.add tput ~x:(float_of_int n) ~y:(r.Hotstuff.Hs_runner.throughput /. 1e3);
      Stats.Series.add bw ~x:(float_of_int n) ~y:(r.Hotstuff.Hs_runner.leader_bps /. 1e9))
    ns;
  say "%s" (Stats.Series.render_table ~x_label:"n" [ tput; bw ]);
  say "";
  say "expected shape: leader traffic pinned near the NIC limit while";
  say "throughput decays — Eq. (1)'s lambda x (n-1) leader workload"

(* ------------------------------------------------------------------ *)
(* Fig 7: HotStuff batch-size sweep                                    *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header ~id:"fig7" ~title:"HotStuff throughput vs batch size"
    ~paper:"Fig 7: throughput rises with batch size, then flattens";
  let ns = if !fast_mode then [ 32 ] else [ 32; 64; 128 ] in
  let batches = if !fast_mode then [ 100; 800 ] else [ 50; 100; 200; 400; 800; 1600 ] in
  let series =
    List.map
      (fun n ->
        let s = Stats.Series.create ~name:(Printf.sprintf "n=%d (kops/s)" n) in
        List.iter
          (fun batch ->
            let r = run_hotstuff ~batch n in
            Stats.Series.add s ~x:(float_of_int batch)
              ~y:(r.Hotstuff.Hs_runner.throughput /. 1e3))
          batches;
        s)
      ns
  in
  say "%s" (Stats.Series.render_table ~x_label:"batch" series);
  say "";
  say "expected shape: growth that saturates after ~800 (the paper picks";
  say "800 as HotStuff's operating point, Table 2)"

(* ------------------------------------------------------------------ *)
(* Fig 8: Leopard batch-size sweeps at n = 64                          *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header ~id:"fig8" ~title:"Leopard throughput & latency vs datablock size and BFTsize (n=64)"
    ~paper:"Fig 8: both rise with alpha; BFTsize stops helping after a point";
  let alphas = if !fast_mode then [ 500; 2000 ] else [ 250; 500; 1000; 2000; 4000; 8000 ] in
  let t1 = Stats.Series.create ~name:"throughput (kops/s)" in
  let l1 = Stats.Series.create ~name:"latency p50 (s)" in
  List.iter
    (fun alpha ->
      let r = run_leopard ~alpha ~bft_size:100 64 in
      Stats.Series.add t1 ~x:(float_of_int alpha) ~y:(r.Core.Runner.throughput /. 1e3);
      Stats.Series.add l1 ~x:(float_of_int alpha)
        ~y:(Stats.Histogram.quantile r.Core.Runner.latency 0.5))
    alphas;
  say "-- varying datablock size (BFTsize = 100) --";
  say "%s" (Stats.Series.render_table ~x_label:"alpha" [ t1; l1 ]);
  let bfts = if !fast_mode then [ 50; 200 ] else [ 25; 50; 100; 200; 400 ] in
  let t2 = Stats.Series.create ~name:"throughput (kops/s)" in
  let l2 = Stats.Series.create ~name:"latency p50 (s)" in
  List.iter
    (fun bft_size ->
      let r = run_leopard ~alpha:2000 ~bft_size 64 in
      Stats.Series.add t2 ~x:(float_of_int bft_size) ~y:(r.Core.Runner.throughput /. 1e3);
      Stats.Series.add l2 ~x:(float_of_int bft_size)
        ~y:(Stats.Histogram.quantile r.Core.Runner.latency 0.5))
    bfts;
  say "";
  say "-- varying BFTsize (alpha = 2000) --";
  say "%s" (Stats.Series.render_table ~x_label:"BFTsize" [ t2; l2 ]);
  say "";
  say "expected shape: latency keeps growing with both batch sizes while";
  say "throughput flattens — the red-box operating points of Table 2"

(* ------------------------------------------------------------------ *)
(* Table 2: chosen implementation parameters                           *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header ~id:"table2" ~title:"Implementation parameters"
    ~paper:"Table 2: alpha & BFTsize per n (Leopard), batch = 800 (HotStuff)";
  let rows =
    List.map
      (fun n ->
        let alpha, bft = Core.Config.paper_batch_sizes ~n in
        [ string_of_int n; string_of_int alpha; string_of_int bft;
          (if n <= 300 then "800" else "-") ])
      [ 32; 64; 128; 256; 400; 600 ]
  in
  say "%s"
    (Stats.Text_table.render
       ~headers:[ "n"; "datablock size (alpha)"; "BFTsize"; "HotStuff batch" ]
       rows);
  say "";
  say "(derived from the fig7/fig8 sweeps, as in the paper)"

(* ------------------------------------------------------------------ *)
(* Fig 3/9: headline scalability comparison                            *)
(* ------------------------------------------------------------------ *)

let leopard_ns () = if !fast_mode then [ 32; 64; 128 ] else [ 32; 64; 128; 256; 400; 600 ]
let hotstuff_ns () = if !fast_mode then [ 32; 64; 128 ] else [ 32; 64; 128; 256; 300 ]

let fig9 () =
  header ~id:"fig9" ~title:"Scalability: Leopard vs HotStuff up to 600 replicas (128B)"
    ~paper:"Fig 3/9: Leopard stays ~1e5+; HotStuff decays; ~5x gap at n=300";
  let lt = Stats.Series.create ~name:"Leopard tput (kops/s)" in
  let ll = Stats.Series.create ~name:"Leopard lat p50 (s)" in
  List.iter
    (fun n ->
      let r = run_leopard n in
      Stats.Series.add lt ~x:(float_of_int n) ~y:(r.Core.Runner.throughput /. 1e3);
      Stats.Series.add ll ~x:(float_of_int n)
        ~y:(Stats.Histogram.quantile r.Core.Runner.latency 0.5))
    (leopard_ns ());
  let ht = Stats.Series.create ~name:"HotStuff tput (kops/s)" in
  let hl = Stats.Series.create ~name:"HotStuff lat p50 (s)" in
  List.iter
    (fun n ->
      let r = run_hotstuff n in
      Stats.Series.add ht ~x:(float_of_int n) ~y:(r.Hotstuff.Hs_runner.throughput /. 1e3);
      Stats.Series.add hl ~x:(float_of_int n)
        ~y:(Stats.Histogram.quantile r.Hotstuff.Hs_runner.latency 0.5))
    (hotstuff_ns ());
  say "%s" (Stats.Series.render_table ~x_label:"n" [ lt; ht; ll; hl ]);
  (match (Stats.Series.y_at lt ~x:256., Stats.Series.y_at ht ~x:256.) with
   | Some l, Some h when h > 0. -> say "Leopard/HotStuff throughput ratio at n=256: %.1fx" (l /. h)
   | _ -> ());
  say "";
  say "expected shape: flat Leopard curve (offered-load-bound, leader idle)";
  say "vs ~1/(n-1) HotStuff decay; Leopard latency higher and growing with";
  say "n (alpha x BFTsize requests must accumulate per proposal, §6.2.1)"

(* ------------------------------------------------------------------ *)
(* Table 3: latency breakdown                                          *)
(* ------------------------------------------------------------------ *)

let table3 () =
  header ~id:"table3" ~title:"Latency breakdown at n=32"
    ~paper:"Table 3: datablock preparation ~63% (delivery ~50%), agree ~36%";
  let r = run_leopard 32 in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. r.Core.Runner.stage_seconds in
  let pct v = Printf.sprintf "%.2f%%" (100. *. v /. total) in
  let find name = try List.assoc name r.Core.Runner.stage_seconds with Not_found -> 0. in
  let gen = find "Datablock Generation" and del = find "Datablock Delivery" in
  let rows =
    [ [ "Datablock Preparation"; "Datablock Generation"; pct gen ];
      [ "Datablock Preparation"; "Datablock Delivery"; pct del ];
      [ "Datablock Preparation"; "SUM"; pct (gen +. del) ];
      [ "Agreement"; ""; pct (find "Agreement") ];
      [ "Response to Client"; ""; pct (find "Response to Client") ] ]
  in
  say "%s" (Stats.Text_table.render ~headers:[ "Stage"; "Component"; "%Latency" ] rows);
  say "";
  say "expected shape: datablock preparation dominates (>50%%), response";
  say "to client negligible — the delivery-dominated latency of §6.2.1"

(* ------------------------------------------------------------------ *)
(* Fig 10: leader bandwidth utilization, both systems                  *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  header ~id:"fig10" ~title:"Leader bandwidth utilization vs n"
    ~paper:"Fig 10: Leopard's leader stays well under 0.5 Gbps and flat";
  let ls = Stats.Series.create ~name:"Leopard leader (Gbps)" in
  List.iter
    (fun n ->
      let r = run_leopard n in
      Stats.Series.add ls ~x:(float_of_int n) ~y:(r.Core.Runner.leader_bps /. 1e9))
    (leopard_ns ());
  let hs = Stats.Series.create ~name:"HotStuff leader (Gbps)" in
  List.iter
    (fun n ->
      let r = run_hotstuff n in
      Stats.Series.add hs ~x:(float_of_int n) ~y:(r.Hotstuff.Hs_runner.leader_bps /. 1e9))
    (hotstuff_ns ());
  say "%s" (Stats.Series.render_table ~x_label:"n" [ ls; hs ]);
  say "";
  say "expected shape: HotStuff's leader rises to the NIC limit; Leopard's";
  say "stays near the aggregate request rate (datablocks in, hashes out)"

(* ------------------------------------------------------------------ *)
(* Table 4: bandwidth breakdown by role and category                   *)
(* ------------------------------------------------------------------ *)

let table4 () =
  header ~id:"table4" ~title:"Network bandwidth usage breakdown at n=32"
    ~paper:"Table 4: leader ~96% receiving datablocks; non-leader ~50/50 send/recv";
  let r = run_leopard 32 in
  let role label (view : Core.Runner.bandwidth_view) =
    let total = view.Core.Runner.sent_bytes + view.Core.Runner.received_bytes in
    let pct v = Printf.sprintf "%.2f%%" (100. *. float_of_int v /. float_of_int total) in
    let rows dir cats = List.map (fun (cat, bytes) -> [ label; dir; cat; pct bytes ]) cats in
    rows "Sent" view.Core.Runner.sent_by_category
    @ [ [ label; "Sent"; "SUM"; pct view.Core.Runner.sent_bytes ] ]
    @ rows "Received" view.Core.Runner.received_by_category
    @ [ [ label; "Received"; "SUM"; pct view.Core.Runner.received_bytes ] ]
  in
  say "%s"
    (Stats.Text_table.render
       ~headers:[ "Role"; "Dir"; "Category"; "%Bandwidth" ]
       (role "Leader" r.Core.Runner.leader @ role "Non-leader" r.Core.Runner.non_leader));
  say "";
  say "expected shape: leader receive dominated by datablocks; proposals a";
  say "few percent of leader send; votes well under 1%% (the paper's point";
  say "that vote-complexity alone mismeasures leader-based BFT)"

(* ------------------------------------------------------------------ *)
(* Fig 11: throughput vs per-replica bandwidth (NetEm sweep)           *)
(* ------------------------------------------------------------------ *)

let throttled mb = Net.Network.{ default_link with out_bps = mbps mb; in_bps = mbps mb }

let fig11 () =
  header ~id:"fig11" ~title:"Throughput under throttled per-replica bandwidth (20-200 Mbps)"
    ~paper:"Fig 11: both scale with bandwidth; Leopard converts ~1/2 of it";
  let mbs = if !fast_mode then [ 20.; 100. ] else [ 20.; 50.; 100.; 150.; 200. ] in
  let ns = if !fast_mode then [ 16 ] else [ 16; 64 ] in
  let series =
    List.concat_map
      (fun n ->
        let l = Stats.Series.create ~name:(Printf.sprintf "Leopard n=%d (kops/s)" n) in
        let h = Stats.Series.create ~name:(Printf.sprintf "HotStuff n=%d (kops/s)" n) in
        List.iter
          (fun mb ->
            let rl = run_leopard ~link:(throttled mb) ~load:1e5 ~alpha:500 ~bft_size:50 n in
            Stats.Series.add l ~x:mb ~y:(rl.Core.Runner.throughput /. 1e3);
            let rh = run_hotstuff ~link:(throttled mb) ~load:1e5 n in
            Stats.Series.add h ~x:mb ~y:(rh.Hotstuff.Hs_runner.throughput /. 1e3))
          mbs;
        [ l; h ])
      ns
  in
  say "%s" (Stats.Series.render_table ~x_label:"Mbps" series);
  say "";
  say "expected shape: linear growth for both; Leopard near B/2/payload";
  say "(effective utilization ~1/2, §6.2.2-6.2.3), HotStuff near";
  say "B/(n-1)/payload and shrinking as n grows"

(* ------------------------------------------------------------------ *)
(* Fig 12: HotStuff's cost-effectiveness vs the 1/(n-1) model          *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  header ~id:"fig12" ~title:"Cost-effectiveness of added bandwidth in HotStuff"
    ~paper:"Fig 12: measured ratio tracks the theoretical 1/(n-1)";
  let ns = if !fast_mode then [ 8; 16; 32 ] else [ 8; 16; 32; 64; 128 ] in
  let measured = Stats.Series.create ~name:"measured d(goodput)/d(bandwidth)" in
  let theory = Stats.Series.create ~name:"theory 1/(n-1)" in
  List.iter
    (fun n ->
      let lo = run_hotstuff ~link:(throttled 20.) ~load:1e5 n in
      let hi = run_hotstuff ~link:(throttled 200.) ~load:1e5 n in
      let d_goodput = hi.Hotstuff.Hs_runner.goodput_bps -. lo.Hotstuff.Hs_runner.goodput_bps in
      let d_bw = Net.Network.mbps 180. in
      Stats.Series.add measured ~x:(float_of_int n) ~y:(d_goodput /. d_bw);
      Stats.Series.add theory ~x:(float_of_int n)
        ~y:(Core.Scaling_factor.hotstuff_cost_effectiveness ~n))
    ns;
  say "%s" (Stats.Series.render_table ~x_label:"n" [ measured; theory ]);
  say "";
  say "expected shape: the two columns agree within a small factor and";
  say "both approach 0 — adding bandwidth cannot rescue HotStuff at scale";
  let leo = Core.Scaling_factor.leopard_cost_effectiveness ~alpha_bytes:256000. ~beta:32. in
  say "(Leopard's ratio is ~%.2f at every n, §5.2)" leo

(* ------------------------------------------------------------------ *)
(* Fig 13: view-change time and communication cost                     *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  header ~id:"fig13" ~title:"View change cost after stopping the leader"
    ~paper:"Fig 13: seconds-scale completion (<6s at n=400); cost mostly the new-view";
  let ns = if !fast_mode then [ 16; 64 ] else [ 16; 64; 128; 256; 400 ] in
  let dur = Stats.Series.create ~name:"trigger->entry (s)" in
  let bytes = Stats.Series.create ~name:"view-change traffic (MB)" in
  List.iter
    (fun n ->
      (* Moderate load and small batches: the quantity under test is the
         view-change protocol (state synchronization + new-view), not
         datablock dynamics; k bounds the outstanding instances either
         way (§6.2.4). *)
      let cfg =
        Core.Config.make ~n ~alpha:500 ~bft_size:50 ~view_timeout:(Sim.Sim_time.s 4)
          ~datablock_timeout:(Sim.Sim_time.s 2) ~proposal_timeout:(Sim.Sim_time.s 1) ()
      in
      let sp =
        Core.Runner.spec ~cfg ~load:2e4 ~duration:(Sim.Sim_time.s 45) ~warmup:(Sim.Sim_time.s 2)
          ~load_until:(Sim.Sim_time.s 25) ~stop_leader_at:(Sim.Sim_time.s 12)
          ~client_resend_timeout:(Sim.Sim_time.s 3) ()
      in
      let r = Core.Runner.run sp in
      let d = Option.value r.Core.Runner.vc_trigger_to_entry ~default:nan in
      Stats.Series.add dur ~x:(float_of_int n) ~y:d;
      Stats.Series.add bytes ~x:(float_of_int n) ~y:(float_of_int r.Core.Runner.vc_bytes /. 1e6);
      say "  n=%-4d view change in %ss, %.2f MB, final view %d, safety=%b" n (seconds d)
        (float_of_int r.Core.Runner.vc_bytes /. 1e6)
        r.Core.Runner.final_view r.Core.Runner.safety_ok)
    ns;
  say "";
  say "%s" (Stats.Series.render_table ~x_label:"n" [ dur; bytes ]);
  say "";
  say "expected shape: both grow with n (quadratic new-view traffic), with";
  say "completion still in seconds at n=400"

(* ------------------------------------------------------------------ *)
(* Scaling factor: analytic and measured                               *)
(* ------------------------------------------------------------------ *)

let sf () =
  header ~id:"sf" ~title:"Scaling factor (heaviest per-bit workload)"
    ~paper:"§1/§5.2: SF = n-1 for HotStuff; constant for Leopard with alpha = lambda(n-1)";
  let beta = 32. in
  let analytic_leopard = Stats.Series.create ~name:"Leopard SF (analytic)" in
  let analytic_hotstuff = Stats.Series.create ~name:"HotStuff SF (analytic)" in
  let measured = Stats.Series.create ~name:"Leopard SF (measured)" in
  List.iter
    (fun n ->
      let alpha, _ = Core.Config.paper_batch_sizes ~n in
      let alpha_bytes = float_of_int (alpha * 128) in
      Stats.Series.add analytic_leopard ~x:(float_of_int n)
        ~y:(Core.Scaling_factor.leopard_sf ~alpha_bytes ~beta ~n);
      Stats.Series.add analytic_hotstuff ~x:(float_of_int n)
        ~y:(Core.Scaling_factor.hotstuff_sf ~n);
      let r = run_leopard n in
      let window = r.Core.Runner.window_sec in
      let traffic (v : Core.Runner.bandwidth_view) =
        float_of_int (v.Core.Runner.sent_bytes + v.Core.Runner.received_bytes) /. window
      in
      let lambda_bytes = r.Core.Runner.goodput_bps /. 8. in
      if lambda_bytes > 0. then
        Stats.Series.add measured ~x:(float_of_int n)
          ~y:
            (Core.Scaling_factor.measured_sf ~lambda_bytes_per_sec:lambda_bytes
               ~replica_bytes_per_sec:
                 [ traffic r.Core.Runner.leader; traffic r.Core.Runner.non_leader ]))
    (leopard_ns ());
  say "%s"
    (Stats.Series.render_table ~x_label:"n" [ analytic_leopard; measured; analytic_hotstuff ]);
  say "";
  say "expected shape: Leopard's column constant (~2-3); HotStuff's = n-1"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_priority () =
  header ~id:"ablation-priority" ~title:"Priority channels off (channel 1 = channel 2)"
    ~paper:"§6.1: without priority, agreement messages queue behind datablocks";
  let n = 32 in
  let link = throttled 40. in
  let with_prio = run_leopard ~link ~load:2e4 ~alpha:500 ~bft_size:50 ~priority_channels:true n in
  let without = run_leopard ~link ~load:2e4 ~alpha:500 ~bft_size:50 ~priority_channels:false n in
  say "%s"
    (Stats.Text_table.render
       ~headers:[ "variant"; "throughput (kops/s)"; "latency p50 (s)"; "blocks" ]
       [ [ "priority channels";
           kops with_prio.Core.Runner.throughput;
           latency_p50 with_prio.Core.Runner.latency;
           string_of_int with_prio.Core.Runner.executed_blocks ];
         [ "single channel";
           kops without.Core.Runner.throughput;
           latency_p50 without.Core.Runner.latency;
           string_of_int without.Core.Runner.executed_blocks ] ]);
  say "";
  say "expected shape: the single-channel variant confirms later (higher";
  say "latency) on a congested link because proposals/votes/proofs wait";
  say "behind queued datablocks"

let ablation_leaderdb () =
  header ~id:"ablation-leaderdb" ~title:"Leader also generates datablocks"
    ~paper:"§4.1: Leopard excludes the leader from datablock generation";
  let n = 32 in
  let excl = run_leopard ~load:1e5 n in
  let incl = run_leopard ~load:1e5 ~leader_generates_datablocks:true n in
  say "%s"
    (Stats.Text_table.render
       ~headers:[ "variant"; "throughput (kops/s)"; "leader traffic (Gbps)" ]
       [ [ "leader excluded"; kops excl.Core.Runner.throughput;
           gbps_str excl.Core.Runner.leader_bps ];
         [ "leader generates too"; kops incl.Core.Runner.throughput;
           gbps_str incl.Core.Runner.leader_bps ] ]);
  say "";
  say "expected shape: including the leader raises its traffic (it now also";
  say "multicasts payload) without throughput benefit — the reason the";
  say "paper leaves only proposal duty at the leader"

let ablation_alpha () =
  header ~id:"ablation-alpha" ~title:"Fixed small alpha vs adaptive alpha"
    ~paper:"§5.2: alpha must grow like lambda(n-1) or SF grows again";
  let ns = if !fast_mode then [ 32; 128 ] else [ 32; 128; 300 ] in
  let fixed = Stats.Series.create ~name:"alpha=250: leader Gbps" in
  let adaptive = Stats.Series.create ~name:"adaptive alpha: leader Gbps" in
  let fixed_t = Stats.Series.create ~name:"alpha=250: kops/s" in
  let adaptive_t = Stats.Series.create ~name:"adaptive: kops/s" in
  List.iter
    (fun n ->
      let rf = run_leopard ~alpha:250 ~bft_size:100 n in
      let ra = run_leopard n in
      Stats.Series.add fixed ~x:(float_of_int n) ~y:(rf.Core.Runner.leader_bps /. 1e9);
      Stats.Series.add adaptive ~x:(float_of_int n) ~y:(ra.Core.Runner.leader_bps /. 1e9);
      Stats.Series.add fixed_t ~x:(float_of_int n) ~y:(rf.Core.Runner.throughput /. 1e3);
      Stats.Series.add adaptive_t ~x:(float_of_int n) ~y:(ra.Core.Runner.throughput /. 1e3))
    ns;
  say "%s" (Stats.Series.render_table ~x_label:"n" [ fixed; adaptive; fixed_t; adaptive_t ]);
  say "";
  say "expected shape: with a fixed small alpha the leader's hash egress";
  say "beta(n-1)/alpha grows with n; the adaptive column stays flat"

let ablation_delivery () =
  header ~id:"ablation-delivery" ~title:"Data-delivery techniques compared"
    ~paper:"§2: erasure coding costs c x everywhere; trees lose subtrees to faults";
  let n = 300 in
  let alpha_bytes = 4000. *. 128. and beta = 32. in
  let rows =
    [ ("direct leader (HotStuff)", Analysis.Delivery_models.direct_leader ~n);
      ("Leopard datablocks", Analysis.Delivery_models.leopard_decoupled ~n ~alpha_bytes ~beta);
      ( "erasure coded (c=2)",
        Analysis.Delivery_models.erasure_coded ~n ~code_rate_inv:2. ~byz_fraction:0.33 );
      ( "broadcast tree (fanout 2)",
        Analysis.Delivery_models.broadcast_tree ~n ~fanout:2 ~byz_fraction:0.33 ) ]
  in
  say "%s"
    (Stats.Text_table.render
       ~headers:
         [ "technique"; "leader egress/bit"; "replica egress/bit"; "hops"; "coverage"; "cpu/bit" ]
       (List.map
          (fun (name, (d : Analysis.Delivery_models.t)) ->
            [ name;
              Printf.sprintf "%.3f" d.Analysis.Delivery_models.leader_egress_per_bit;
              Printf.sprintf "%.3f" d.Analysis.Delivery_models.replica_egress_per_bit;
              Printf.sprintf "%.0f" d.Analysis.Delivery_models.delivery_hops;
              Printf.sprintf "%.2f" d.Analysis.Delivery_models.coverage;
              Printf.sprintf "%.1f" d.Analysis.Delivery_models.cpu_overhead_per_bit ])
          rows));
  say "";
  say "expected shape: only the datablock design has ~0 leader cost, 1.0";
  say "replica cost, single-hop delivery, full coverage and no coding CPU";
  say "";
  (* Measured counterpart: one 64 KiB broadcast to 64 replicas on the
     lab, honest and with Byzantine relays. *)
  let n = 64 in
  let payload = String.init 65536 (fun i -> Char.chr (i land 0xff)) in
  let lab name byzantine strategy =
    let r = Delivery.Broadcast_lab.run ~n ~payload ~byzantine strategy in
    [ name;
      Printf.sprintf "%d/%d" r.Delivery.Broadcast_lab.delivered r.Delivery.Broadcast_lab.honest;
      (match r.Delivery.Broadcast_lab.completion with
       | Some t -> Printf.sprintf "%.1f ms" (1000. *. Sim.Sim_time.to_sec t)
       | None -> "never");
      Printf.sprintf "%.2f" (float_of_int r.Delivery.Broadcast_lab.source_egress /. 65536.);
      Printf.sprintf "%.2f" (float_of_int r.Delivery.Broadcast_lab.max_replica_egress /. 65536.) ]
  in
  let byz = [ 2; 5; 11 ] (* inner tree positions: each severs a subtree *) in
  say "measured (broadcast lab, 64 KiB to %d replicas; x = payload multiples):" n;
  say "%s"
    (Stats.Text_table.render
       ~headers:[ "technique"; "delivered"; "completion"; "source x"; "max replica x" ]
       [ lab "direct, honest" [] Delivery.Broadcast_lab.Direct;
         lab "tree f=2, honest" [] (Delivery.Broadcast_lab.Tree { fanout = 2 });
         lab "tree f=2, 3 Byzantine" byz (Delivery.Broadcast_lab.Tree { fanout = 2 });
         lab "erasure k=21, honest" [] (Delivery.Broadcast_lab.Erasure { k = 21 });
         lab "erasure k=21, 3 Byzantine" byz (Delivery.Broadcast_lab.Erasure { k = 21 }) ])

let latency_model () =
  header ~id:"latency-model" ~title:"Closed-form latency model vs measured (Fig 9 right)"
    ~paper:"§5.2/§6.2.1: 7-delta responsive path + batching delay from alpha x BFTsize";
  let modeled = Stats.Series.create ~name:"model (s)" in
  let meas = Stats.Series.create ~name:"measured p50 (s)" in
  List.iter
    (fun n ->
      let alpha, bft_size = Core.Config.paper_batch_sizes ~n in
      let m =
        Analysis.Latency_model.leopard ~n ~load:leopard_load ~alpha ~bft_size ~delta:0.001
      in
      Stats.Series.add modeled ~x:(float_of_int n) ~y:m.Analysis.Latency_model.total;
      let r = run_leopard n in
      Stats.Series.add meas ~x:(float_of_int n)
        ~y:(Stats.Histogram.quantile r.Core.Runner.latency 0.5))
    (leopard_ns ());
  say "%s" (Stats.Series.render_table ~x_label:"n" [ modeled; meas ]);
  say "";
  say "expected shape: both columns grow with n and agree within ~2x —";
  say "batching (datablock + BFTblock fill at Table 2 sizes), not the";
  say "agreement, sets Leopard's latency at scale"

let extension_lanes () =
  header ~id:"extension-lanes" ~title:"Parallel connections (future work, §6.2.1)"
    ~paper:"'parallel TCP connections' listed as a planned engineering optimization";
  let n = 32 in
  let base = throttled 40. in
  let case name lanes priority_channels =
    let r =
      run_leopard
        ~link:Net.Network.{ base with lanes }
        ~load:2e4 ~alpha:500 ~bft_size:50 ~priority_channels n
    in
    [ name;
      kops r.Core.Runner.throughput;
      latency_p50 r.Core.Runner.latency;
      string_of_int r.Core.Runner.executed_blocks ]
  in
  say "%s"
    (Stats.Text_table.render
       ~headers:[ "variant"; "throughput (kops/s)"; "latency p50 (s)"; "blocks" ]
       [ case "1 lane + priority channels" 1 true;
         case "1 lane, single channel" 1 false;
         case "4 lanes, single channel" 4 false;
         case "4 lanes + priority channels" 4 true ]);
  say "";
  say "expected shape: an honest negative result — lanes alone do not fix";
  say "the single-channel latency (the FIFO queue, not the line, is what";
  say "delays consensus messages), and they slightly hurt the priority";
  say "variant (each transfer runs at 1/lanes rate, so a high-priority";
  say "message waits longer for a free lane). Queue discipline — the";
  say "paper's channel ①/② design — is the effective mechanism; parallel";
  say "connections only pay off against per-connection limits (cwnd)";
  say "that a fluid bandwidth model does not have"

let extension_chained () =
  header ~id:"extension-chained" ~title:"Chained Leopard: decoupling on chain-based BFT"
    ~paper:"§4.3 remark: the decoupling also preserves efficiency for HotStuff-style chains";
  let ns = if !fast_mode then [ 32; 64 ] else [ 32; 64; 128; 300 ] in
  let hybrid = Stats.Series.create ~name:"Chained Leopard (kops/s)" in
  let hybrid_bw = Stats.Series.create ~name:"CL leader (Gbps)" in
  let hotstuff = Stats.Series.create ~name:"HotStuff (kops/s)" in
  let hotstuff_bw = Stats.Series.create ~name:"HS leader (Gbps)" in
  List.iter
    (fun n ->
      let cfg = Hybrid.Chained_leopard.make_cfg ~n () in
      let sp =
        Hybrid.Chained_leopard.spec ~cfg ~load:leopard_load ~duration:(Sim.Sim_time.s 25)
          ~warmup:(Sim.Sim_time.s 7) ()
      in
      let r = Hybrid.Chained_leopard.run sp in
      Stats.Series.add hybrid ~x:(float_of_int n)
        ~y:(r.Hybrid.Chained_leopard.throughput /. 1e3);
      Stats.Series.add hybrid_bw ~x:(float_of_int n)
        ~y:(r.Hybrid.Chained_leopard.leader_bps /. 1e9);
      if n <= 300 then begin
        let h = run_hotstuff n in
        Stats.Series.add hotstuff ~x:(float_of_int n) ~y:(h.Hotstuff.Hs_runner.throughput /. 1e3);
        Stats.Series.add hotstuff_bw ~x:(float_of_int n)
          ~y:(h.Hotstuff.Hs_runner.leader_bps /. 1e9)
      end)
    ns;
  say "%s" (Stats.Series.render_table ~x_label:"n" [ hybrid; hotstuff; hybrid_bw; hotstuff_bw ]);
  say "";
  say "expected shape: the chained variant keeps the flat curve and the";
  say "idle leader — the decoupling, not the parallel instances, is what";
  say "removes the bottleneck (the paper's §4.3 claim)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot primitives                     *)
(* ------------------------------------------------------------------ *)

let check_regressions = ref false

let micro () =
  header ~id:"micro" ~title:"Micro-benchmarks (bechamel) with JSON baseline"
    ~paper:"hot primitives under the figures above";
  Micro.run ~fast:!fast_mode ~check:!check_regressions

let macro () =
  header ~id:"macro" ~title:"Macro-benchmark: simulator cost vs n, with JSON baseline"
    ~paper:"the substrate cost of scaling the reproductions toward n=600";
  Macro.run ~fast:!fast_mode ~check:!check_regressions

let net () =
  header ~id:"net" ~title:"Transport benchmark: zero-copy TCP data plane, with JSON baseline"
    ~paper:"the leader's multicast fan-out cost over real sockets (§2, §5 data plane)";
  Net_bench.run ~fast:!fast_mode ~check:!check_regressions

let verify () =
  header ~id:"verify"
    ~title:"Verification pipeline: domain worker pool vs inline, with JSON baseline"
    ~paper:"crypto verification off the event loop (throughput preservation, §6.2)";
  Verify_bench.run ~fast:!fast_mode ~check:!check_regressions

let store () =
  header ~id:"store"
    ~title:"Durable store: WAL append throughput and recovery time, with JSON baseline"
    ~paper:"stable storage for vote safety across restarts (§3 system model)";
  Store_bench.run ~fast:!fast_mode ~check:!check_regressions

(* ------------------------------------------------------------------ *)
(* Registry and entry point                                            *)
(* ------------------------------------------------------------------ *)

let experiments =
  [ ("table1", table1);
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig7", fig7);
    ("fig8", fig8);
    ("table2", table2);
    ("fig9", fig9);
    ("table3", table3);
    ("fig10", fig10);
    ("table4", table4);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("sf", sf);
    ("latency-model", latency_model);
    ("ablation-priority", ablation_priority);
    ("ablation-leaderdb", ablation_leaderdb);
    ("ablation-alpha", ablation_alpha);
    ("ablation-delivery", ablation_delivery);
    ("extension-chained", extension_chained);
    ("extension-lanes", extension_lanes);
    ("micro", micro);
    ("macro", macro);
    ("net", net);
    ("verify", verify);
    ("store", store) ]

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--fast" args then fast_mode := true;
  if List.mem "--check-regressions" args then check_regressions := true;
  if List.mem "--list" args then List.iter (fun (id, _) -> print_endline id) experiments
  else begin
    let only =
      (* every "--only <id>"; repeated flags select several experiments
         sharing one process (and hence the memoized canonical runs) *)
      let rec find acc = function
        | "--only" :: id :: rest -> find (id :: acc) rest
        | _ :: rest -> find acc rest
        | [] -> List.rev acc
      in
      find [] args
    in
    let to_run =
      match only with
      | [] -> experiments
      | ids ->
        List.map
          (fun id ->
            match List.assoc_opt id experiments with
            | Some f -> (id, f)
            | None ->
              Printf.eprintf "unknown experiment %s (try --list)\n" id;
              exit 1)
          ids
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun (id, f) ->
        let t = Unix.gettimeofday () in
        f ();
        say "[%s done in %.1fs]" id (Unix.gettimeofday () -. t))
      to_run;
    say "";
    say "all requested benches done in %.1fs" (Unix.gettimeofday () -. t0)
  end
