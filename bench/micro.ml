(* Micro-benchmarks of the hot primitives, with a JSON perf baseline.

   Each entry measures one primitive under the simulator's hot paths —
   SHA-256 (the digest under every hash link, vote payload and Merkle
   node), the wire codec, Merkle roots, threshold shares and the event
   loop — via bechamel's OLS estimator, against both the monotonic clock
   and the minor allocator, so a change that trades time for garbage is
   visible.

     dune exec bench/main.exe -- --only micro
     dune exec bench/main.exe -- --only micro --fast
     dune exec bench/main.exe -- --only micro --check-regressions

   The run writes [BENCH_micro.json] (one benchmark per line: ns/op,
   MB/s for byte-throughput primitives, minor words/op) next to the
   invocation directory. With [--check-regressions] the run instead
   compares against the checked-in baseline and exits nonzero when any
   primitive got more than 2x slower; the baseline file is left
   untouched in that mode. *)

open Bechamel

type result = {
  name : string;
  ns_per_op : float;
  mb_per_s : float; (* 0 for primitives without a natural byte count *)
  minor_words_per_op : float;
}

let baseline_file = "BENCH_micro.json"
let regression_factor = 2.0

(* A pure ratio gate is meaningless for single-digit-ns primitives (the
   obs counter bump): scheduler jitter alone doubles them. A regression
   must also lose this many absolute ns/op to count. *)
let regression_floor_ns = 25.

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let estimate raw instance =
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols instance raw in
  let value = ref nan in
  Hashtbl.iter
    (fun _ est ->
      match Analyze.OLS.estimates est with
      | Some (v :: _) -> value := v
      | Some [] | None -> ())
    results;
  !value

let bench_one ~fast ?(bytes_per_op = 0) name f =
  let quota = if fast then 0.08 else 0.35 in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock; Toolkit.Instance.minor_allocated ] in
  let raw = Benchmark.all cfg instances (Test.make ~name (Staged.stage f)) in
  let ns = estimate raw Toolkit.Instance.monotonic_clock in
  let words = estimate raw Toolkit.Instance.minor_allocated in
  let mb_per_s = if bytes_per_op = 0 then 0. else float_of_int bytes_per_op /. ns *. 1e3 in
  { name; ns_per_op = ns; mb_per_s; minor_words_per_op = words }

(* ------------------------------------------------------------------ *)
(* The benchmark set                                                   *)
(* ------------------------------------------------------------------ *)

let sha_chunk = 64

let run_all ~fast =
  let bench name ?bytes_per_op f = bench_one ~fast ?bytes_per_op name f in
  let s64 = String.make 64 'x' in
  let s1k = String.init 1024 (fun i -> Char.chr (i land 0xff)) in
  let s64k = String.init 65536 (fun i -> Char.chr ((i * 7) land 0xff)) in
  let stream s () =
    let ctx = Crypto.Sha256.init () in
    let n = String.length s in
    let b = Bytes.unsafe_of_string s in
    let pos = ref 0 in
    while !pos < n do
      Crypto.Sha256.feed_bytes ctx ~off:!pos ~len:(min sha_chunk (n - !pos)) b;
      pos := !pos + sha_chunk
    done;
    Crypto.Sha256.finalize ctx
  in
  let rng = Sim.Rng.create 7L in
  let _pk, sk = Crypto.Signature.keygen rng in
  let tsetup, tkeys = Crypto.Threshold.keygen rng ~threshold:20 ~parties:31 in
  let a_share = Crypto.Threshold.sign_share tkeys.(0) "m" in
  let vote =
    Core.Msg.Prepare_vote
      { view = 3;
        sn = 17;
        block_hash = Crypto.Hash.of_string "block";
        share = Crypto.Threshold.sign_share tkeys.(1) "payload" }
  in
  let vote_wire = Core.Codec.encode_msg vote in
  let batches =
    List.init 8 (fun id ->
        Workload.Request.make ~id ~count:25 ~size_each:128 ~born:(Int64.of_int id) ())
  in
  let db = Core.Datablock.create ~sk ~creator:1 ~counter:1 ~now:0L batches in
  let db_wire = Core.Codec.encode_datablock db in
  let leaves = List.init 256 (fun i -> Crypto.Hash.of_string (string_of_int i)) in
  [ bench "sha256/64B" ~bytes_per_op:64 (fun () -> Crypto.Sha256.digest_string s64);
    bench "sha256/1KiB" ~bytes_per_op:1024 (fun () -> Crypto.Sha256.digest_string s1k);
    bench "sha256/64KiB" ~bytes_per_op:65536 (fun () -> Crypto.Sha256.digest_string s64k);
    bench "sha256/1KiB-stream64" ~bytes_per_op:1024 (stream s1k);
    bench "codec/encode-vote" ~bytes_per_op:(String.length vote_wire) (fun () ->
        Core.Codec.encode_msg vote);
    bench "codec/decode-vote" ~bytes_per_op:(String.length vote_wire) (fun () ->
        Core.Codec.decode_msg vote_wire);
    bench "codec/encode-datablock" ~bytes_per_op:(String.length db_wire) (fun () ->
        Core.Codec.encode_datablock db);
    bench "codec/decode-datablock" ~bytes_per_op:(String.length db_wire) (fun () ->
        Core.Codec.decode_datablock db_wire);
    bench "payload/prepare-vote" (fun () ->
        Core.Msg.prepare_payload ~view:3 ~block_hash:(Core.Datablock.hash db));
    bench "merkle/root-256" (fun () -> Crypto.Merkle.root leaves);
    bench "threshold/sign-share" (fun () -> Crypto.Threshold.sign_share tkeys.(0) "m");
    bench "threshold/verify-share" (fun () -> Crypto.Threshold.verify_share tsetup a_share "m");
    bench "engine/event"
      (let e = Sim.Engine.create () in
       fun () ->
         ignore (Sim.Engine.schedule e ~delay:0L (fun () -> ()));
         Sim.Engine.step e);
    (* the observability hot path: one counter bump per protocol event.
       [alloc_gate] holds this one to zero minor words/op. *)
    bench "obs/counter-bump"
      (let reg = Obs.Registry.create () in
       let c = Obs.Registry.counter reg "bench_events_total" in
       fun () -> Obs.Counter.incr c);
    bench "obs/gauge-set"
      (let reg = Obs.Registry.create () in
       let g = Obs.Registry.gauge reg "bench_depth" in
       fun () -> Obs.Gauge.set g 42);
    bench "obs/hist-record"
      (let reg = Obs.Registry.create () in
       let h = Obs.Registry.histogram reg "bench_lat_ns" in
       fun () -> Obs.Histogram.record h 48_213) ]

(* ------------------------------------------------------------------ *)
(* JSON baseline                                                       *)
(* ------------------------------------------------------------------ *)

let write_baseline path results =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc "  \"generated_by\": \"dune exec bench/main.exe -- --only micro\",\n";
  output_string oc "  \"benchmarks\": [\n";
  let n = List.length results in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ns_per_op\": %.1f, \"mb_per_s\": %.2f, \"minor_words_per_op\": %.1f}%s\n"
        r.name r.ns_per_op r.mb_per_s r.minor_words_per_op
        (if i = n - 1 then "" else ","))
    results;
  output_string oc "  ]\n}\n";
  close_out oc

(* Reads exactly the shape [write_baseline] produces: one benchmark per
   line. Unparseable lines are skipped, so the file tolerates hand edits
   to the header fields. *)
(* Scanf.sscanf_opt is 5.0-only; the CI matrix still builds on 4.14. *)
let sscanf_opt line fmt f =
  try Some (Scanf.sscanf line fmt f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let read_baseline path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let entries = ref [] in
    (try
       while true do
         let line = String.trim (input_line ic) in
         let line =
           if String.length line > 0 && line.[String.length line - 1] = ',' then
             String.sub line 0 (String.length line - 1)
           else line
         in
         match
           sscanf_opt line
             "{\"name\": %S, \"ns_per_op\": %f, \"mb_per_s\": %f, \"minor_words_per_op\": %f}"
             (fun name ns mb words ->
               { name; ns_per_op = ns; mb_per_s = mb; minor_words_per_op = words })
         with
         | Some r -> entries := r :: !entries
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    Some (List.rev !entries)
  end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let render results =
  let rows =
    List.map
      (fun r ->
        [ r.name;
          Printf.sprintf "%.1f" r.ns_per_op;
          (if r.mb_per_s = 0. then "-" else Printf.sprintf "%.1f" r.mb_per_s);
          Printf.sprintf "%.1f" r.minor_words_per_op ])
      results
  in
  Stats.Text_table.render ~headers:[ "primitive"; "ns/op"; "MB/s"; "minor words/op" ] rows

let check_regressions ~baseline results =
  let failures =
    List.filter_map
      (fun r ->
        match List.find_opt (fun b -> b.name = r.name) baseline with
        | Some b
          when r.ns_per_op > regression_factor *. b.ns_per_op
               && r.ns_per_op -. b.ns_per_op > regression_floor_ns ->
          let factor = r.ns_per_op /. b.ns_per_op in
          Some
            ( Printf.sprintf "%s: %.1f ns/op vs baseline %.1f ns/op (%.1fx)" r.name r.ns_per_op
                b.ns_per_op factor,
              (r.name, factor) )
        | _ -> None)
      results
  in
  match failures with
  | [] ->
    Harness.say "micro: PASS no regressions > %.1fx against %s" regression_factor baseline_file;
    true
  | fs ->
    List.iter (fun (f, _) -> Harness.say "REGRESSION %s" f) fs;
    let worst_name, worst_factor =
      List.fold_left
        (fun ((_, wf) as acc) (_, (name, f)) -> if f > wf then (name, f) else acc)
        ("", 0.) fs
    in
    Harness.say "micro: FAIL %d/%d benchmarks regressed beyond %.1fx vs %s (worst %s %.1fx)"
      (List.length fs) (List.length results) regression_factor baseline_file worst_name
      worst_factor;
    false

(* The observability promise is "a counter bump costs nothing": gate it
   absolutely, independent of any baseline. OLS noise on a free op sits
   well under half a word. *)
let alloc_budget_words = 0.5

let check_alloc_gate results =
  match List.find_opt (fun r -> r.name = "obs/counter-bump") results with
  | None -> true
  | Some r when r.minor_words_per_op <= alloc_budget_words ->
    Harness.say "micro: PASS obs/counter-bump allocates %.2f minor words/op (budget %.1f)"
      r.minor_words_per_op alloc_budget_words;
    true
  | Some r ->
    Harness.say "micro: FAIL obs/counter-bump allocates %.2f minor words/op (budget %.1f)"
      r.minor_words_per_op alloc_budget_words;
    false

let run ~fast ~check =
  let results = run_all ~fast in
  Harness.say "%s" (render results);
  Harness.say "";
  if check then begin
    let alloc_ok = check_alloc_gate results in
    (match read_baseline baseline_file with
     | None | Some [] ->
       Harness.say "no baseline %s found; writing a fresh one" baseline_file;
       write_baseline baseline_file results
     | Some baseline -> if not (check_regressions ~baseline results) then exit 1);
    if not alloc_ok then exit 1
  end
  else begin
    write_baseline baseline_file results;
    Harness.say "baseline written to %s" baseline_file
  end
