let default_outbuf_hwm = 4 * 1024 * 1024

let backoff_base_ns = 50_000_000 (* 50 ms *)
let backoff_cap_ns = 2_000_000_000 (* 2 s *)

(* An outgoing (dialed) connection to one peer. The pending queue holds
   whole frames; [head_off] tracks how much of the head frame the kernel
   has taken so far. *)
type out_state =
  | Idle
  | Waiting of Loop.handle (* backoff redial pending *)
  | Connecting of Unix.file_descr
  | Connected of Unix.file_descr

type out_conn = {
  dst : Net.Node_id.t;
  mutable state : out_state;
  q : string Queue.t;
  mutable q_bytes : int;
  mutable head_off : int;
  mutable pre : string; (* unsent hello prefix on a fresh connection *)
  mutable pre_off : int;
  mutable backoff_ns : int;
}

(* An incoming (accepted) connection; [src] is unknown until the hello. *)
type in_conn = {
  in_fd : Unix.file_descr;
  reader : Frame.reader;
  mutable src : Net.Node_id.t option;
}

type fault_verdict =
  | Pass
  | Fault_drop
  | Fault_delay of Sim.Sim_time.span
  | Fault_duplicate

type t = {
  loop : Loop.t;
  id : Net.Node_id.t;
  max_frame : int;
  hwm : int;
  on_msg : src:Net.Node_id.t -> Core.Msg.t -> unit;
  outs : (Net.Node_id.t, out_conn) Hashtbl.t;
  ins : (Unix.file_descr, in_conn) Hashtbl.t;
  addrs : (Net.Node_id.t, Unix.sockaddr) Hashtbl.t;
  mutable listener : Unix.file_descr option;
  mutable down : bool;
  mutable dropped : int;
  mutable fault : (dst:Net.Node_id.t -> Core.Msg.t -> fault_verdict) option;
  mutable faulted : int;
  rng : Random.State.t;
  scratch : Bytes.t;
}

let create ~loop ~id ?(max_frame = Frame.default_max_frame)
    ?(outbuf_hwm = default_outbuf_hwm) ~on_msg () =
  { loop;
    id;
    max_frame;
    hwm = outbuf_hwm;
    on_msg;
    outs = Hashtbl.create 16;
    ins = Hashtbl.create 16;
    addrs = Hashtbl.create 16;
    listener = None;
    down = false;
    dropped = 0;
    fault = None;
    faulted = 0;
    rng = Random.State.make [| 0x1e09a4d; id |];
    scratch = Bytes.create 65536 }

let is_down t = t.down
let dropped t = t.dropped
let set_fault t f = t.fault <- f
let faulted t = t.faulted

let set_peer_addr t dst addr = Hashtbl.replace t.addrs dst addr

(* -- teardown helpers --------------------------------------------------- *)

let close_fd t fd =
  Loop.unwatch t.loop fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let close_in t (ic : in_conn) =
  if Hashtbl.mem t.ins ic.in_fd then begin
    Hashtbl.remove t.ins ic.in_fd;
    close_fd t ic.in_fd
  end

let drop_queue oc =
  Queue.clear oc.q;
  oc.q_bytes <- 0;
  oc.head_off <- 0;
  oc.pre <- "";
  oc.pre_off <- 0

let reset_out t oc =
  (match oc.state with
  | Idle -> ()
  | Waiting h -> Loop.cancel t.loop h
  | Connecting fd | Connected fd -> close_fd t fd);
  oc.state <- Idle

(* -- outgoing: dial, flush, redial -------------------------------------- *)

let rec connect_out t oc =
  match Hashtbl.find_opt t.addrs oc.dst with
  | None -> () (* counted at send time *)
  | Some addr -> (
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    match Unix.connect fd addr with
    | () -> on_connected t oc fd
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      oc.state <- Connecting fd;
      Loop.watch_write t.loop fd (fun () ->
          match Unix.getsockopt_error fd with
          | None ->
            Loop.unwatch_write t.loop fd;
            on_connected t oc fd
          | Some _ -> fail_out t oc)
    | exception Unix.Unix_error (_, _, _) ->
      close_fd t fd;
      schedule_redial t oc)

and on_connected t oc fd =
  oc.state <- Connected fd;
  oc.backoff_ns <- backoff_base_ns;
  oc.pre <- Frame.encode_hello t.id;
  oc.pre_off <- 0;
  oc.head_off <- 0;
  (* Watch for EOF/reset; the peer never sends frames back on a dialed
     connection, so any bytes read are drained and ignored. *)
  Loop.watch_read t.loop fd (fun () ->
      match Unix.read fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 -> fail_out t oc
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error (_, _, _) -> fail_out t oc);
  try_flush t oc

and try_flush t oc =
  match oc.state with
  | Idle | Waiting _ | Connecting _ -> ()
  | Connected fd -> (
    let progress = ref true in
    let blocked = ref false in
    (try
       while !progress && not !blocked do
         if oc.pre_off < String.length oc.pre then begin
           let n =
             Unix.write_substring fd oc.pre oc.pre_off (String.length oc.pre - oc.pre_off)
           in
           oc.pre_off <- oc.pre_off + n;
           if n = 0 then blocked := true
         end
         else if not (Queue.is_empty oc.q) then begin
           let head = Queue.peek oc.q in
           let n =
             Unix.write_substring fd head oc.head_off (String.length head - oc.head_off)
           in
           oc.head_off <- oc.head_off + n;
           if oc.head_off = String.length head then begin
             ignore (Queue.pop oc.q);
             oc.q_bytes <- oc.q_bytes - String.length head;
             oc.head_off <- 0
           end
           else if n = 0 then blocked := true
         end
         else progress := false
       done
     with
    | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
      blocked := true
    | Unix.Unix_error (_, _, _) ->
      fail_out t oc;
      progress := false);
    match oc.state with
    | Connected _ when !blocked -> Loop.watch_write t.loop fd (fun () -> try_flush t oc)
    | Connected _ -> Loop.unwatch_write t.loop fd
    | _ -> ())

and fail_out t oc =
  (match oc.state with
  | Connecting fd | Connected fd -> close_fd t fd
  | Idle | Waiting _ -> ());
  oc.state <- Idle;
  (* A frame cut mid-write is unrecoverable: the peer's stream ended
     inside it, and a fresh connection must start on a frame boundary. *)
  if oc.head_off > 0 then begin
    (match Queue.take_opt oc.q with
    | Some head -> oc.q_bytes <- oc.q_bytes - String.length head
    | None -> ());
    oc.head_off <- 0;
    t.dropped <- t.dropped + 1
  end;
  oc.pre <- "";
  oc.pre_off <- 0;
  if not t.down then schedule_redial t oc

and schedule_redial t oc =
  let b = oc.backoff_ns in
  let delay_ns = (b / 2) + Random.State.int t.rng (max 1 (b / 2)) in
  oc.backoff_ns <- min backoff_cap_ns (b * 2);
  let h =
    Loop.schedule t.loop ~delay:(Int64.of_int delay_ns) (fun () ->
        oc.state <- Idle;
        if not t.down then connect_out t oc)
  in
  oc.state <- Waiting h

let out_conn t dst =
  match Hashtbl.find_opt t.outs dst with
  | Some oc -> oc
  | None ->
    let oc =
      { dst;
        state = Idle;
        q = Queue.create ();
        q_bytes = 0;
        head_off = 0;
        pre = "";
        pre_off = 0;
        backoff_ns = backoff_base_ns }
    in
    Hashtbl.add t.outs dst oc;
    oc

let enqueue t ~dst msg =
  if not t.down then
    if Net.Node_id.equal dst t.id then
      (* Self-delivery through the loop, like the simulator's immediate
         local hop: asynchronous, but ahead of any network arrival. *)
      ignore
        (Loop.schedule t.loop ~delay:0L (fun () ->
             if not t.down then t.on_msg ~src:t.id msg))
    else begin
      let frame = Frame.encode_msg msg in
      let oc = out_conn t dst in
      if not (Hashtbl.mem t.addrs dst) then t.dropped <- t.dropped + 1
      else if oc.q_bytes + String.length frame > t.hwm then t.dropped <- t.dropped + 1
      else begin
        Queue.push frame oc.q;
        oc.q_bytes <- oc.q_bytes + String.length frame;
        match oc.state with
        | Idle -> connect_out t oc
        | Connected _ -> try_flush t oc
        | Waiting _ | Connecting _ -> ()
      end
    end

let send t ~dst msg =
  if not t.down then
    match t.fault with
    | None -> enqueue t ~dst msg
    (* Self-sends never cross a wire: the fault surface models link
       faults (partitions, lossy paths), not process faults. *)
    | Some _ when Net.Node_id.equal dst t.id -> enqueue t ~dst msg
    | Some f -> (
      match f ~dst msg with
      | Pass -> enqueue t ~dst msg
      | Fault_drop -> t.faulted <- t.faulted + 1
      | Fault_delay d ->
        t.faulted <- t.faulted + 1;
        ignore
          (Loop.schedule t.loop ~delay:d (fun () -> enqueue t ~dst msg)
            : Loop.handle)
      | Fault_duplicate ->
        t.faulted <- t.faulted + 1;
        enqueue t ~dst msg;
        enqueue t ~dst msg)

(* -- incoming: accept and read ------------------------------------------ *)

exception Protocol_violation

let handle_frame t ic frame =
  match (ic.src, frame) with
  | None, Frame.Hello src -> ic.src <- Some src
  | Some src, Frame.Msg m -> if not t.down then t.on_msg ~src m
  | None, Frame.Msg _ | Some _, Frame.Hello _ -> raise Protocol_violation

let read_in t ic =
  match Unix.read ic.in_fd t.scratch 0 (Bytes.length t.scratch) with
  | 0 -> close_in t ic
  | n -> (
    match Frame.feed ic.reader t.scratch ~off:0 ~len:n (handle_frame t ic) with
    | Ok () -> ()
    | Error _ -> close_in t ic
    | exception Protocol_violation -> close_in t ic)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_in t ic

let accept_ready t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _addr ->
      if t.down then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let ic = { in_fd = fd; reader = Frame.reader ~max_frame:t.max_frame (); src = None } in
        Hashtbl.add t.ins fd ic;
        Loop.watch_read t.loop fd (fun () -> read_in t ic)
      end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let listen t ?(port = 0) () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.set_nonblock lfd;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lfd 64;
  t.listener <- Some lfd;
  Loop.watch_read t.loop lfd (fun () -> accept_ready t lfd);
  match Unix.getsockname lfd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> assert false

(* -- lifecycle ---------------------------------------------------------- *)

let set_down t down =
  if down <> t.down then begin
    t.down <- down;
    if down then begin
      Hashtbl.iter (fun _ ic -> close_fd t ic.in_fd) t.ins;
      Hashtbl.reset t.ins;
      Hashtbl.iter
        (fun _ oc ->
          reset_out t oc;
          drop_queue oc;
          oc.backoff_ns <- backoff_base_ns)
        t.outs
    end
    (* On revival nothing is dialed eagerly: the node's own traffic and
       the peers' backoff timers re-establish connectivity. *)
  end

let live_connections t =
  let outs =
    Hashtbl.fold
      (fun _ oc acc -> match oc.state with Connected _ -> acc + 1 | _ -> acc)
      t.outs 0
  in
  outs + Hashtbl.length t.ins

let close t =
  Hashtbl.iter (fun _ ic -> close_fd t ic.in_fd) t.ins;
  Hashtbl.reset t.ins;
  Hashtbl.iter (fun _ oc -> reset_out t oc) t.outs;
  Hashtbl.reset t.outs;
  (match t.listener with
  | Some lfd ->
    close_fd t lfd;
    t.listener <- None
  | None -> ());
  t.down <- true
