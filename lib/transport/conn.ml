let default_outbuf_hwm = 4 * 1024 * 1024

let backoff_base_ns = 50_000_000 (* 50 ms *)
let backoff_cap_ns = 2_000_000_000 (* 2 s *)

let read_chunk = 65536
let gather_bytes = 65536

(* Upper bound on bytes [Unix.single_write] accepts per call
   (UNIX_BUFFER_SIZE in the OCaml runtime). Clamping [want] to it keeps
   the short-write heuristic honest: without the clamp, a write the
   runtime silently truncated to this size would look like a kernel
   short write and park the connection on writability for nothing. *)
let max_single_write = 65536

(* Per-peer pending-frame queue: a power-of-two ring of frame strings.
   Pushing to a [Queue.t] allocates a cell per frame; the ring's steady
   state allocates nothing (slots are reused, popped slots cleared so
   frames are not kept live by the queue). *)
module Ring = struct
  type t = {
    mutable buf : string array;
    mutable head : int;
    mutable len : int;
  }

  let create () = { buf = Array.make 16 ""; head = 0; len = 0 }
  let length r = r.len

  let grow r =
    let cap = Array.length r.buf in
    let nbuf = Array.make (cap * 2) "" in
    for i = 0 to r.len - 1 do
      nbuf.(i) <- r.buf.((r.head + i) land (cap - 1))
    done;
    r.buf <- nbuf;
    r.head <- 0

  let push r s =
    if r.len = Array.length r.buf then grow r;
    r.buf.((r.head + r.len) land (Array.length r.buf - 1)) <- s;
    r.len <- r.len + 1

  (* [peek]/[get] assume [i < len]; callers guard. *)
  let peek r = r.buf.(r.head)
  let get r i = r.buf.((r.head + i) land (Array.length r.buf - 1))

  let pop r =
    let s = r.buf.(r.head) in
    r.buf.(r.head) <- "";
    r.head <- (r.head + 1) land (Array.length r.buf - 1);
    r.len <- r.len - 1;
    s

  let clear r =
    Array.fill r.buf 0 (Array.length r.buf) "";
    r.head <- 0;
    r.len <- 0
end

(* An outgoing (dialed) connection to one peer. The pending ring holds
   whole frames — possibly the same string as other peers' rings, for
   multicast — and [head_off] tracks how much of the head frame the
   kernel has taken so far; that per-peer offset is what makes sharing
   safe under partial writes. *)
type out_state =
  | Idle
  | Waiting of Loop.handle (* backoff redial pending *)
  | Connecting of Unix.file_descr
  | Connected of Unix.file_descr

type out_conn = {
  dst : Net.Node_id.t;
  mutable state : out_state;
  q : Ring.t;
  mutable q_bytes : int;
  mutable head_off : int;
  mutable pre : string; (* unsent hello prefix on a fresh connection *)
  mutable pre_off : int;
  mutable backoff_ns : int;
  mutable flush_queued : bool; (* already on the loop-tick flush list *)
  wbuf : Bytes.t; (* pooled gather buffer for coalesced writes *)
}

(* An incoming (accepted) connection; [src] is unknown until the hello. *)
type in_conn = {
  in_fd : Unix.file_descr;
  reader : Frame.reader;
  mutable src : Net.Node_id.t option;
}

type fault_verdict =
  | Pass
  | Fault_drop
  | Fault_delay of Sim.Sim_time.span
  | Fault_duplicate

type stats = {
  mutable write_syscalls : int;
  mutable read_syscalls : int;
  mutable frames_sent : int;  (* fully handed to the kernel *)
  mutable frames_recvd : int; (* parsed, hellos included *)
  mutable bytes_sent : int;
  mutable bytes_recvd : int;
  mutable reconnects : int;   (* backoff redials scheduled *)
}

type t = {
  loop : Loop.t;
  id : Net.Node_id.t;
  max_frame : int;
  hwm : int;
  on_msg : src:Net.Node_id.t -> Core.Msg.t -> unit;
  outs : (Net.Node_id.t, out_conn) Hashtbl.t;
  ins : (Unix.file_descr, in_conn) Hashtbl.t;
  addrs : (Net.Node_id.t, Unix.sockaddr) Hashtbl.t;
  mutable listener : Unix.file_descr option;
  mutable down : bool;
  (* Drop accounting, split by cause so overload (backpressure) is never
     conflated with a dead peer window (disconnected) or a missing
     address. [dropped] below reports the sum. *)
  mutable dropped_backpressure : int;
  mutable dropped_no_addr : int;
  mutable dropped_disconnected : int;
  (* Backpressure drops by message kind ([Core.Msg.kind_index]-indexed):
     the kind-aware policy's audit trail — consensus-critical kinds must
     stay at zero while datablock frames absorb the overload. *)
  dropped_kinds : int array;
  mutable fault : (dst:Net.Node_id.t -> Core.Msg.t -> fault_verdict) option;
  mutable faulted : int;
  mutable max_write : int; (* debug clamp on bytes per write(2) *)
  mutable flushq : out_conn list; (* peers with frames queued this tick *)
  mutable tick : Loop.tick_handle option; (* flush hook; removed on close *)
  rng : Random.State.t;
  pool : Pool.t;
  scratch : Bytes.t; (* drain buffer for dialed-connection reads *)
  stats : stats;
}

let is_down t = t.down
let dropped t = t.dropped_backpressure + t.dropped_no_addr + t.dropped_disconnected
let dropped_backpressure t = t.dropped_backpressure
let dropped_no_addr t = t.dropped_no_addr
let dropped_disconnected t = t.dropped_disconnected
let dropped_by_kind t kind = t.dropped_kinds.(Core.Msg.kind_index kind)

(* Egress queue pressure: the fullest peer queue relative to the HWM.
   0 = idle; >= 1 = at or beyond the bulk-frame drop threshold (the
   consensus headroom above the HWM pushes it past 1). *)
let pressure t =
  if t.hwm <= 0 then 0.
  else
    Hashtbl.fold
      (fun _ oc acc -> Float.max acc (float_of_int oc.q_bytes /. float_of_int t.hwm))
      t.outs 0.

let peer_pressure t dst =
  if t.hwm <= 0 then 0.
  else
    match Hashtbl.find_opt t.outs dst with
    | None -> 0.
    | Some oc -> float_of_int oc.q_bytes /. float_of_int t.hwm

let set_fault t f = t.fault <- f
let faulted t = t.faulted
let stats t = t.stats
let pool t = t.pool
let set_max_write t n = t.max_write <- (if n <= 0 then max_int else n)

let set_peer_addr t dst addr = Hashtbl.replace t.addrs dst addr

(* -- teardown helpers --------------------------------------------------- *)

let close_fd t fd =
  Loop.unwatch t.loop fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let close_in t (ic : in_conn) =
  if Hashtbl.mem t.ins ic.in_fd then begin
    Hashtbl.remove t.ins ic.in_fd;
    Frame.release ic.reader;
    close_fd t ic.in_fd
  end

(* Throw away everything queued toward one peer. Frames lost this way
   were queued while the node (or the link) was alive and die with the
   dead window — a distinct loss class from backpressure, counted under
   [dropped_disconnected] so overload diagnostics are not polluted by
   ordinary crash/reconnect churn. *)
let drop_queue t oc =
  t.dropped_disconnected <- t.dropped_disconnected + Ring.length oc.q;
  Ring.clear oc.q;
  oc.q_bytes <- 0;
  oc.head_off <- 0;
  oc.pre <- "";
  oc.pre_off <- 0

let reset_out t oc =
  (match oc.state with
  | Idle -> ()
  | Waiting h -> Loop.cancel t.loop h
  | Connecting fd | Connected fd -> close_fd t fd);
  oc.state <- Idle

(* -- outgoing: dial, flush, redial -------------------------------------- *)

(* Advance the queue past [n] kernel-accepted bytes: whole frames pop
   (and count as sent), a trailing partial just moves [head_off]. *)
let queue_advance t oc n =
  let rem = ref n in
  while !rem > 0 do
    let head = Ring.peek oc.q in
    let head_rem = String.length head - oc.head_off in
    if !rem >= head_rem then begin
      ignore (Ring.pop oc.q : string);
      oc.q_bytes <- oc.q_bytes - String.length head;
      oc.head_off <- 0;
      t.stats.frames_sent <- t.stats.frames_sent + 1;
      rem := !rem - head_rem
    end
    else begin
      oc.head_off <- oc.head_off + !rem;
      rem := 0
    end
  done

(* Pack frames from the queue head into [oc.wbuf] (starting at the head
   frame's unwritten tail) until the buffer is full or the queue runs
   out; returns the fill. Bytes packed but not accepted by the kernel are
   simply re-packed next round — [queue_advance] only trusts write(2)'s
   return. *)
let gather oc =
  let cap = Bytes.length oc.wbuf in
  let filled = ref 0 in
  let i = ref 0 in
  let off = ref oc.head_off in
  while !filled < cap && !i < Ring.length oc.q do
    let fr = Ring.get oc.q !i in
    let take = min (cap - !filled) (String.length fr - !off) in
    Bytes.blit_string fr !off oc.wbuf !filled take;
    filled := !filled + take;
    off := 0;
    incr i
  done;
  !filled

let rec connect_out t oc =
  match Hashtbl.find_opt t.addrs oc.dst with
  | None -> () (* counted at send time *)
  | Some addr -> (
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.set_nonblock fd;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
    match Unix.connect fd addr with
    | () -> on_connected t oc fd
    | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
      oc.state <- Connecting fd;
      Loop.watch_write t.loop fd (fun () ->
          match Unix.getsockopt_error fd with
          | None ->
            Loop.unwatch_write t.loop fd;
            on_connected t oc fd
          | Some _ -> fail_out t oc)
    | exception Unix.Unix_error (_, _, _) ->
      close_fd t fd;
      schedule_redial t oc)

and on_connected t oc fd =
  oc.state <- Connected fd;
  oc.backoff_ns <- backoff_base_ns;
  oc.pre <- Frame.encode_hello t.id;
  oc.pre_off <- 0;
  oc.head_off <- 0;
  (* Watch for EOF/reset; the peer never sends frames back on a dialed
     connection, so any bytes read are drained and ignored. *)
  Loop.watch_read t.loop fd (fun () ->
      match Unix.read fd t.scratch 0 (Bytes.length t.scratch) with
      | 0 -> fail_out t oc
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error (_, _, _) -> fail_out t oc);
  try_flush t oc

and try_flush t oc =
  match oc.state with
  | Idle | Waiting _ | Connecting _ -> ()
  | Connected fd -> (
    let progress = ref true in
    let blocked = ref false in
    (* One write(2) per iteration — [Unix.single_write], never
       [Unix.write]: the latter loops over internal chunks and raises
       EAGAIN without reporting bytes the kernel already accepted, which
       would re-send them next flush and corrupt the stream mid-frame.
       [single_write] maps to exactly one syscall and reports every
       accepted byte, so [queue_advance] always sees the truth. Each call
       is offered as many bytes as we have (clamped by [max_write] and
       [max_single_write]): the hello tail, then either the head frame
       written directly from its own string — zero copy, when it is large
       or alone — or a gather of many small frames coalesced through
       [oc.wbuf] so one syscall drains them all. A short write means the
       kernel buffer is full: stop and wait for writability. *)
    (try
       while !progress && not !blocked do
         if oc.pre_off < String.length oc.pre then begin
           let want =
             min (min (String.length oc.pre - oc.pre_off) t.max_write) max_single_write
           in
           let n = Unix.single_write_substring fd oc.pre oc.pre_off want in
           t.stats.write_syscalls <- t.stats.write_syscalls + 1;
           t.stats.bytes_sent <- t.stats.bytes_sent + n;
           oc.pre_off <- oc.pre_off + n;
           if n < want then blocked := true
         end
         else if Ring.length oc.q > 0 then begin
           let head = Ring.peek oc.q in
           let head_rem = String.length head - oc.head_off in
           if head_rem >= Bytes.length oc.wbuf || Ring.length oc.q = 1 then begin
             let want = min (min head_rem t.max_write) max_single_write in
             let n = Unix.single_write_substring fd head oc.head_off want in
             t.stats.write_syscalls <- t.stats.write_syscalls + 1;
             t.stats.bytes_sent <- t.stats.bytes_sent + n;
             queue_advance t oc n;
             if n < want then blocked := true
           end
           else begin
             let filled = gather oc in
             let want = min (min filled t.max_write) max_single_write in
             let n = Unix.single_write fd oc.wbuf 0 want in
             t.stats.write_syscalls <- t.stats.write_syscalls + 1;
             t.stats.bytes_sent <- t.stats.bytes_sent + n;
             queue_advance t oc n;
             if n < want then blocked := true
           end
         end
         else progress := false
       done
     with
    | Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
      blocked := true
    | Unix.Unix_error (_, _, _) ->
      fail_out t oc;
      progress := false);
    match oc.state with
    | Connected _ when !blocked -> Loop.watch_write t.loop fd (fun () -> try_flush t oc)
    | Connected _ -> Loop.unwatch_write t.loop fd
    | _ -> ())

and fail_out t oc =
  (match oc.state with
  | Connecting fd | Connected fd -> close_fd t fd
  | Idle | Waiting _ -> ());
  oc.state <- Idle;
  (* A frame cut mid-write is unrecoverable: the peer's stream ended
     inside it, and a fresh connection must start on a frame boundary.
     The connection died under it, so it counts as a disconnect loss. *)
  if oc.head_off > 0 then begin
    if Ring.length oc.q > 0 then begin
      let head = Ring.pop oc.q in
      oc.q_bytes <- oc.q_bytes - String.length head
    end;
    oc.head_off <- 0;
    t.dropped_disconnected <- t.dropped_disconnected + 1
  end;
  oc.pre <- "";
  oc.pre_off <- 0;
  if not t.down then schedule_redial t oc

and schedule_redial t oc =
  t.stats.reconnects <- t.stats.reconnects + 1;
  let b = oc.backoff_ns in
  let delay_ns = (b / 2) + Random.State.int t.rng (max 1 (b / 2)) in
  oc.backoff_ns <- min backoff_cap_ns (b * 2);
  let h =
    Loop.schedule t.loop ~delay:(Int64.of_int delay_ns) (fun () ->
        oc.state <- Idle;
        if not t.down then connect_out t oc)
  in
  oc.state <- Waiting h

(* Flush every peer that queued frames since the last loop tick: the
   frames a whole batch of work produced coalesce into one write(2) per
   peer (see [Loop.on_tick]) instead of one per frame. *)
let flush_pending t =
  match t.flushq with
  | [] -> ()
  | ocs ->
    t.flushq <- [];
    List.iter
      (fun oc ->
        oc.flush_queued <- false;
        try_flush t oc)
      ocs

let create ~loop ~id ?obs ?(max_frame = Frame.default_max_frame)
    ?(outbuf_hwm = default_outbuf_hwm) ?pool ~on_msg () =
  let pool = match pool with Some p -> p | None -> Pool.create () in
  let t =
    { loop;
      id;
      max_frame;
      hwm = outbuf_hwm;
      on_msg;
      outs = Hashtbl.create 16;
      ins = Hashtbl.create 16;
      addrs = Hashtbl.create 16;
      listener = None;
      down = false;
      dropped_backpressure = 0;
      dropped_no_addr = 0;
      dropped_disconnected = 0;
      dropped_kinds = Array.make Core.Msg.num_kinds 0;
      fault = None;
      faulted = 0;
      max_write = max_int;
      flushq = [];
      tick = None;
      rng = Random.State.make [| 0x1e09a4d; id |];
      pool;
      scratch = Pool.acquire pool read_chunk;
      stats =
        { write_syscalls = 0;
          read_syscalls = 0;
          frames_sent = 0;
          frames_recvd = 0;
          bytes_sent = 0;
          bytes_recvd = 0;
          reconnects = 0 } }
  in
  t.tick <- Some (Loop.on_tick loop (fun () -> flush_pending t));
  (match obs with
  | None -> ()
  | Some reg ->
      (* Scrape-time mirror of the per-node plain-int counters: the
         read/write hot paths keep their existing field bumps, obs costs
         nothing until someone scrapes. *)
      let labels = [ ("node", string_of_int id) ] in
      let c name help = Obs.Registry.counter reg ~help ~labels name in
      let g name help = Obs.Registry.gauge reg ~help ~labels name in
      let frames_sent = c "leopard_transport_frames_sent_total" "frames handed to the kernel" in
      let frames_recvd = c "leopard_transport_frames_recvd_total" "frames parsed" in
      let bytes_sent = c "leopard_transport_bytes_sent_total" "payload+header bytes written" in
      let bytes_recvd = c "leopard_transport_bytes_recvd_total" "bytes read" in
      let writes = c "leopard_transport_write_syscalls_total" "write(2) calls" in
      let reads = c "leopard_transport_read_syscalls_total" "read(2) calls" in
      let drop_reason reason =
        Obs.Registry.counter reg ~help:"frames dropped, by cause"
          ~labels:(("reason", reason) :: labels)
          "leopard_transport_dropped_total"
      in
      let drops_bp = drop_reason "backpressure" in
      let drops_na = drop_reason "no_addr" in
      let drops_dc = drop_reason "disconnected" in
      let drops_kind =
        List.map
          (fun k ->
            ( Core.Msg.kind_index k,
              Obs.Registry.counter reg ~help:"backpressure drops, by frame kind"
                ~labels:(("kind", Core.Msg.kind_name k) :: labels)
                "leopard_transport_dropped_kind_total" ))
          Core.Msg.all_kinds
      in
      let faulted_c = c "leopard_transport_faulted_total" "messages hit by the fault filter" in
      let reconnects = c "leopard_transport_reconnects_total" "backoff redials scheduled" in
      let live = g "leopard_transport_live_connections" "established connections, both directions" in
      let coalesce =
        g "leopard_transport_coalesce_ratio_x1000" "write syscalls per frame sent, x1000"
      in
      Obs.Registry.on_collect reg (fun () ->
          let s = t.stats in
          Obs.Counter.mirror frames_sent s.frames_sent;
          Obs.Counter.mirror frames_recvd s.frames_recvd;
          Obs.Counter.mirror bytes_sent s.bytes_sent;
          Obs.Counter.mirror bytes_recvd s.bytes_recvd;
          Obs.Counter.mirror writes s.write_syscalls;
          Obs.Counter.mirror reads s.read_syscalls;
          Obs.Counter.mirror drops_bp t.dropped_backpressure;
          Obs.Counter.mirror drops_na t.dropped_no_addr;
          Obs.Counter.mirror drops_dc t.dropped_disconnected;
          List.iter (fun (i, ctr) -> Obs.Counter.mirror ctr t.dropped_kinds.(i)) drops_kind;
          Obs.Counter.mirror faulted_c t.faulted;
          Obs.Counter.mirror reconnects s.reconnects;
          let outs_live =
            Hashtbl.fold
              (fun _ oc acc -> match oc.state with Connected _ -> acc + 1 | _ -> acc)
              t.outs 0
          in
          Obs.Gauge.set live (outs_live + Hashtbl.length t.ins);
          if s.frames_sent > 0 then
            Obs.Gauge.set coalesce (s.write_syscalls * 1000 / s.frames_sent)));
  t

let out_conn t dst =
  match Hashtbl.find t.outs dst with
  | oc -> oc
  | exception Not_found ->
    let oc =
      { dst;
        state = Idle;
        q = Ring.create ();
        q_bytes = 0;
        head_off = 0;
        pre = "";
        pre_off = 0;
        backoff_ns = backoff_base_ns;
        flush_queued = false;
        wbuf = Pool.acquire t.pool gather_bytes }
    in
    Hashtbl.add t.outs dst oc;
    oc

(* Kind-aware drop policy: bulk frames (datablocks, fetch replies —
   [Net.Nic.Low]) stop being admitted at the HWM, while
   consensus-critical frames (votes, proofs, view-change traffic —
   [Net.Nic.High]) keep a reserved headroom above it. Under overload the
   queue saturates with at most [hwm] bytes of bulk data and the
   remaining headroom is exclusively theirs, so agreement progress is
   never starved by datablock congestion — the transport-level analogue
   of §6.1's two-channel priority. *)
let consensus_headroom_factor = 2

(* Queue an already-encoded frame to one peer. The frame string may be
   shared with other peers' queues (multicast); nothing here writes into
   it. The actual write happens at the next loop tick, so frames batch. *)
let enqueue_frame t ~dst ~kind frame =
  if not t.down then begin
    let oc = out_conn t dst in
    if not (Hashtbl.mem t.addrs dst) then t.dropped_no_addr <- t.dropped_no_addr + 1
    else begin
      let limit =
        match Core.Msg.kind_priority kind with
        | Net.Nic.High -> consensus_headroom_factor * t.hwm
        | Net.Nic.Low -> t.hwm
      in
      if oc.q_bytes + String.length frame > limit then begin
        t.dropped_backpressure <- t.dropped_backpressure + 1;
        let i = Core.Msg.kind_index kind in
        t.dropped_kinds.(i) <- t.dropped_kinds.(i) + 1
      end
      else begin
        Ring.push oc.q frame;
        oc.q_bytes <- oc.q_bytes + String.length frame;
        (match oc.state with
        | Idle -> connect_out t oc
        | Connected _ | Waiting _ | Connecting _ -> ());
        if not oc.flush_queued then begin
          oc.flush_queued <- true;
          t.flushq <- oc :: t.flushq
        end
      end
    end
  end

let enqueue t ~dst msg =
  if not t.down then
    if Net.Node_id.equal dst t.id then
      (* Self-delivery through the loop, like the simulator's immediate
         local hop: asynchronous, but ahead of any network arrival. *)
      ignore
        (Loop.schedule t.loop ~delay:0L (fun () ->
             if not t.down then t.on_msg ~src:t.id msg))
    else enqueue_frame t ~dst ~kind:(Core.Msg.kind msg) (Frame.encode_msg msg)

let send t ~dst msg =
  if not t.down then
    match t.fault with
    | None -> enqueue t ~dst msg
    (* Self-sends never cross a wire: the fault surface models link
       faults (partitions, lossy paths), not process faults. *)
    | Some _ when Net.Node_id.equal dst t.id -> enqueue t ~dst msg
    | Some f -> (
      match f ~dst msg with
      | Pass -> enqueue t ~dst msg
      | Fault_drop -> t.faulted <- t.faulted + 1
      | Fault_delay d ->
        t.faulted <- t.faulted + 1;
        ignore
          (Loop.schedule t.loop ~delay:d (fun () -> enqueue t ~dst msg)
            : Loop.handle)
      | Fault_duplicate ->
        t.faulted <- t.faulted + 1;
        enqueue t ~dst msg;
        enqueue t ~dst msg)

let multicast t ~n msg =
  if not t.down then begin
    (* Encode once; every peer's queue references the same frame string.
       Per-peer fault verdicts still apply — a delayed or duplicated copy
       reuses the shared frame rather than re-encoding. *)
    let frame = Frame.encode_shared msg in
    let kind = Core.Msg.kind msg in
    for dst = 0 to n - 1 do
      if not (Net.Node_id.equal dst t.id) then begin
        match t.fault with
        | None -> enqueue_frame t ~dst ~kind frame
        | Some f -> (
          match f ~dst msg with
          | Pass -> enqueue_frame t ~dst ~kind frame
          | Fault_drop -> t.faulted <- t.faulted + 1
          | Fault_delay d ->
            t.faulted <- t.faulted + 1;
            ignore
              (Loop.schedule t.loop ~delay:d (fun () -> enqueue_frame t ~dst ~kind frame)
                : Loop.handle)
          | Fault_duplicate ->
            t.faulted <- t.faulted + 1;
            enqueue_frame t ~dst ~kind frame;
            enqueue_frame t ~dst ~kind frame)
      end
    done
  end

(* -- incoming: accept and read ------------------------------------------ *)

exception Protocol_violation

let handle_frame t ic frame =
  t.stats.frames_recvd <- t.stats.frames_recvd + 1;
  match (ic.src, frame) with
  | None, Frame.Hello src -> ic.src <- Some src
  | Some src, Frame.Msg m -> if not t.down then t.on_msg ~src m
  | None, Frame.Msg _ | Some _, Frame.Hello _ -> raise Protocol_violation

(* read(2) lands directly in the reader's buffer (reserve/commit), so a
   frame's bytes are touched once on the way in: kernel -> reader ->
   in-place decode. *)
let read_in t ic =
  Frame.reserve ic.reader read_chunk;
  match
    Unix.read ic.in_fd (Frame.fill_buf ic.reader) (Frame.fill_off ic.reader)
      (Frame.fill_capacity ic.reader)
  with
  | 0 -> close_in t ic
  | n -> (
    t.stats.read_syscalls <- t.stats.read_syscalls + 1;
    t.stats.bytes_recvd <- t.stats.bytes_recvd + n;
    match Frame.commit ic.reader n (handle_frame t ic) with
    | Ok () -> ()
    | Error _ -> close_in t ic
    | exception Protocol_violation -> close_in t ic)
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> close_in t ic

let accept_ready t lfd =
  let continue = ref true in
  while !continue do
    match Unix.accept lfd with
    | fd, _addr ->
      if t.down then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
        let ic =
          { in_fd = fd;
            reader = Frame.reader ~max_frame:t.max_frame ~pool:t.pool ();
            src = None }
        in
        Hashtbl.add t.ins fd ic;
        Loop.watch_read t.loop fd (fun () -> read_in t ic)
      end
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
      continue := false
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

let listen t ?(port = 0) () =
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.set_nonblock lfd;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen lfd 64;
  t.listener <- Some lfd;
  Loop.watch_read t.loop lfd (fun () -> accept_ready t lfd);
  match Unix.getsockname lfd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> assert false

(* -- lifecycle ---------------------------------------------------------- *)

let set_down t down =
  if down <> t.down then begin
    t.down <- down;
    if down then begin
      Hashtbl.iter
        (fun _ ic ->
          Frame.release ic.reader;
          close_fd t ic.in_fd)
        t.ins;
      Hashtbl.reset t.ins;
      Hashtbl.iter
        (fun _ oc ->
          reset_out t oc;
          drop_queue t oc;
          oc.backoff_ns <- backoff_base_ns)
        t.outs
    end
    (* On revival nothing is dialed eagerly: the node's own traffic and
       the peers' backoff timers re-establish connectivity. *)
  end

let live_connections t =
  let outs =
    Hashtbl.fold
      (fun _ oc acc -> match oc.state with Connected _ -> acc + 1 | _ -> acc)
      t.outs 0
  in
  outs + Hashtbl.length t.ins

let close t =
  (* Deregister the flush hook first: a closed conn must not be kept
     alive (or ticked) by the loop for the rest of the loop's life. *)
  (match t.tick with
  | Some h ->
    Loop.remove_tick t.loop h;
    t.tick <- None
  | None -> ());
  t.flushq <- [];
  Hashtbl.iter
    (fun _ ic ->
      Frame.release ic.reader;
      close_fd t ic.in_fd)
    t.ins;
  Hashtbl.reset t.ins;
  Hashtbl.iter
    (fun _ oc ->
      reset_out t oc;
      Pool.release t.pool oc.wbuf)
    t.outs;
  Hashtbl.reset t.outs;
  (match t.listener with
  | Some lfd ->
    close_fd t lfd;
    t.listener <- None
  | None -> ());
  Pool.release t.pool t.scratch;
  t.down <- true
