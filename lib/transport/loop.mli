(** Single-threaded [select]-based event loop with a timer wheel.

    The socket runtime's engine: file-descriptor readiness callbacks
    plus monotonic timers, dispatched from one thread — replica code
    runs exactly as it does on {!Sim.Engine}, never concurrently with
    itself. The timer API mirrors the engine's schedule/cancel shape
    (same FIFO tie-break for equal instants, via the shared
    {!Sim.Heap}), which is what lets {!Core.Platform} abstract over
    both.

    The clock is nanoseconds since {!create}, as a {!Sim.Sim_time.t}.
    It is derived from the wall clock but clamped to never move
    backwards, so timer order is stable under NTP steps ([Unix] exposes
    no raw monotonic clock; the clamp gives local monotonicity, which
    is all the timer wheel needs). *)

type t

type handle
(** A scheduled timer, usable for cancellation. *)

val create : unit -> t
(** A fresh loop with clock at {!Sim.Sim_time.zero}. Also sets SIGPIPE
    to ignore (process-wide): a peer closing mid-write must surface as
    [EPIPE] on that write, not kill the process. *)

val now : t -> Sim.Sim_time.t
(** Current loop time (updated at each dispatch round, and on demand by
    this call). *)

val now_ns : t -> int

val schedule : t -> delay:Sim.Sim_time.span -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] once [delay] has elapsed (negative
    delays clamp to zero). Timers due at the same instant fire in
    schedule order. *)

val schedule_at : t -> at:Sim.Sim_time.t -> (unit -> unit) -> handle

val cancel : t -> handle -> unit
(** Cancels a pending timer; cancelling twice or after firing is a
    no-op. *)

val pending_timers : t -> int

(** {2 File descriptors}

    Callbacks are level-triggered: a readable [fd] fires its callback
    every dispatch round until drained. Always {!unwatch} an [fd]
    before closing it — a closed fd left in the watch set fails the
    whole [select]. *)

val watch_read : t -> Unix.file_descr -> (unit -> unit) -> unit
val watch_write : t -> Unix.file_descr -> (unit -> unit) -> unit
(** At most one callback per direction per fd (replaced on re-watch). *)

val unwatch_write : t -> Unix.file_descr -> unit
val unwatch : t -> Unix.file_descr -> unit
(** Removes both directions. *)

type tick_handle
(** A registered tick hook, usable for deregistration. *)

val on_tick : t -> (unit -> unit) -> tick_handle
(** Registers a hook run after every batch of work — after due timers
    fire and after fd callbacks dispatch — and always before the loop
    can block in select(2). {!Conn} uses this to flush write queues once
    per batch, so the many small frames one round produces coalesce into
    one [write(2)] per peer instead of one each. *)

val remove_tick : t -> tick_handle -> unit
(** Deregisters a tick hook so the loop no longer runs (or retains) it;
    removing twice is a no-op. A removal made from inside a tick hook
    takes effect at the next round. *)

(** {2 Driving} *)

val run_while : t -> (unit -> bool) -> unit
(** Dispatches timers and fd events while the predicate holds (checked
    once per round) and {!stop} has not been called. Rounds block in
    [select] for at most the gap to the next timer (capped at 50 ms, so
    the predicate stays responsive). *)

val run_for : t -> span:Sim.Sim_time.span -> unit
(** [run_while] until [span] of loop time has elapsed. *)

val stop : t -> unit
(** Makes the current [run_while] return after the round in progress. *)
