(** Connection management for one node: dial, accept, buffer, reconnect.

    Each node owns one {!t}: a listening socket peers dial into, plus one
    outgoing connection per peer it has sent to. Connections are
    asymmetric — a node {e sends} on connections it dialed and
    {e receives} on connections it accepted; the first frame on every
    dialed connection is a [hello] naming the dialer, so the acceptor
    can attribute everything that follows.

    Sending never blocks the event loop. Bytes that do not fit in the
    kernel buffer wait in a per-peer queue; once the queue passes the
    high-water mark, further frames to that peer are {e dropped whole}
    and counted ({!dropped}) — BFT protocols tolerate message loss, a
    stalled peer must not wedge or balloon the sender. The drop policy is
    kind-aware: bulk frames (datablocks, fetch replies) stop being
    admitted at the HWM, while consensus-critical frames (votes, proofs,
    view-change traffic) keep a reserved headroom above it, so agreement
    progress is never starved by datablock congestion. A frame cut mid-
    write by a broken connection is likewise dropped, never resumed on
    the next connection (resuming would corrupt the peer's framing).

    Failed outgoing connections redial with capped exponential backoff
    plus jitter. {!set_down} models a crashed host: every connection is
    torn down and queued bytes discarded; on revival, peers' backoff
    redials and the node's own lazy dials knit the mesh back together.

    The data plane is zero-copy where it counts: {!multicast} encodes a
    frame once and queues the same immutable string to every peer
    (per-peer write offsets make partial writes safe on shared frames);
    small queued frames are coalesced into one [write(2)] through a
    pooled gather buffer; reads land directly in the frame reader's
    buffer and payloads decode in place. Steady-state sends and receives
    allocate nothing beyond the frame itself and the decoded message. *)

type t

val create :
  loop:Loop.t ->
  id:Net.Node_id.t ->
  ?obs:Obs.Registry.t ->
  ?max_frame:int ->
  ?outbuf_hwm:int ->
  ?pool:Pool.t ->
  on_msg:(src:Net.Node_id.t -> Core.Msg.t -> unit) ->
  unit ->
  t
(** [outbuf_hwm] is the per-peer queued-bytes bound (default 4 MiB).
    [pool] supplies reader/scratch/gather buffers (default: a private
    pool; pass one explicitly to share across nodes or to enable debug
    poisoning). [?obs] registers a scrape-time collect hook that mirrors
    this node's {!stats}, drop/fault counters, live-connection count and
    write-coalescing ratio as [leopard_transport_*] metrics labeled
    [node="<id>"] — the send/receive hot paths are untouched. Drops are
    split by cause ([leopard_transport_dropped_total{reason=...}] with
    [backpressure]/[no_addr]/[disconnected]) and backpressure drops
    additionally by frame kind
    ([leopard_transport_dropped_kind_total{kind=...}]). *)

val default_outbuf_hwm : int

val listen : t -> ?port:int -> unit -> int
(** Binds a loopback listener (port [0] = ephemeral) and returns the
    actual port. Call once, before peers dial. *)

val set_peer_addr : t -> Net.Node_id.t -> Unix.sockaddr -> unit
(** Where to dial peer [dst]. Sends to a peer with no known address are
    dropped (and counted). *)

val send : t -> dst:Net.Node_id.t -> Core.Msg.t -> unit
(** Frames and queues the message; dials first if no connection is up.
    [dst = id] loops back through the event loop (next round), matching
    the simulator's self-delivery. Silently inert while down. *)

val multicast : t -> n:int -> Core.Msg.t -> unit
(** Sends [msg] to every peer in [0, n) except this node, encoding the
    frame {e exactly once}: all [n - 1] queues reference the same
    immutable frame string. Per-destination fault verdicts are applied
    as in {!send} (delayed and duplicated copies reuse the shared
    frame). Silently inert while down. *)

(** {2 Fault surface}

    {!set_down} models a crashed host; the verdict filter below models a
    faulty {e link}: installed by the chaos harness, it is consulted for
    every outbound message before framing (self-sends excluded) and can
    drop the message, hold it back for a span, or send it twice. Dropped,
    delayed and duplicated messages are counted in {!faulted}
    (separately from {!dropped}, which counts capacity losses). *)

type fault_verdict =
  | Pass
  | Fault_drop
  | Fault_delay of Sim.Sim_time.span
  | Fault_duplicate

val set_fault : t -> (dst:Net.Node_id.t -> Core.Msg.t -> fault_verdict) option -> unit
(** Installs (or with [None] removes) the outbound fault filter. *)

val faulted : t -> int
(** Messages the fault filter dropped, delayed or duplicated so far. *)

val set_down : t -> bool -> unit
(** See above. Listener stays bound while down (the port remains
    reserved); newly accepted connections are closed immediately, which
    peers observe as a dead host. *)

val is_down : t -> bool

val dropped : t -> int
(** Frames dropped so far, all causes: the sum of the three split
    counters below. *)

val dropped_backpressure : t -> int
(** Frames refused because the peer's queue was over its admission
    limit (the HWM for bulk frames, the consensus headroom above it for
    consensus-critical frames). *)

val dropped_no_addr : t -> int
(** Frames refused because no address is known for the peer. *)

val dropped_disconnected : t -> int
(** Frames lost to a dead window: queued toward a peer and discarded by
    {!set_down}, or cut mid-write by a broken connection. Split from
    backpressure so crash/reconnect churn never reads as overload. *)

val dropped_by_kind : t -> Core.Msg.kind -> int
(** Backpressure drops by frame kind — the kind-aware policy's audit
    trail. Under pure overload, consensus-critical kinds stay at zero
    while [K_datablock]/[K_fetch_reply] absorb the loss. *)

val pressure : t -> float
(** Egress queue pressure: the fullest peer queue's bytes relative to
    the HWM. [0.] = idle; [>= 1.] = at or beyond the bulk-frame drop
    threshold. Drives the replica's pacing and the cluster client's
    throttling. *)

val peer_pressure : t -> Net.Node_id.t -> float
(** Per-peer variant of {!pressure} ([0.] for a peer never sent to). *)

val live_connections : t -> int
(** Established connections, both directions (diagnostics / tests). *)

(** {2 Instrumentation} *)

type stats = {
  mutable write_syscalls : int;
  mutable read_syscalls : int;
  mutable frames_sent : int;  (** frames fully handed to the kernel *)
  mutable frames_recvd : int; (** frames parsed, hellos included *)
  mutable bytes_sent : int;
  mutable bytes_recvd : int;
  mutable reconnects : int;   (** backoff redials scheduled *)
}

val stats : t -> stats
(** Live counters (mutated in place as the node runs). [write_syscalls]
    vs [frames_sent] is the coalescing ratio the net benchmark gates. *)

val pool : t -> Pool.t
(** The buffer pool behind this node's readers and scratch. *)

val set_max_write : t -> int -> unit
(** Debug clamp: offer at most [n] bytes per [write(2)] ([n <= 0]
    restores unlimited). Forces partial-write paths — the torture tests
    drive a multicast through a 1-byte clamp to prove shared frames
    survive arbitrarily sliced writes. *)

val close : t -> unit
(** Tears everything down, listener included. The [t] is dead after. *)
