(** Connection management for one node: dial, accept, buffer, reconnect.

    Each node owns one {!t}: a listening socket peers dial into, plus one
    outgoing connection per peer it has sent to. Connections are
    asymmetric — a node {e sends} on connections it dialed and
    {e receives} on connections it accepted; the first frame on every
    dialed connection is a [hello] naming the dialer, so the acceptor
    can attribute everything that follows.

    Sending never blocks the event loop. Bytes that do not fit in the
    kernel buffer wait in a per-peer queue; once the queue passes the
    high-water mark, further frames to that peer are {e dropped whole}
    and counted ({!dropped}) — BFT protocols tolerate message loss, a
    stalled peer must not wedge or balloon the sender. A frame cut mid-
    write by a broken connection is likewise dropped, never resumed on
    the next connection (resuming would corrupt the peer's framing).

    Failed outgoing connections redial with capped exponential backoff
    plus jitter. {!set_down} models a crashed host: every connection is
    torn down and queued bytes discarded; on revival, peers' backoff
    redials and the node's own lazy dials knit the mesh back together. *)

type t

val create :
  loop:Loop.t ->
  id:Net.Node_id.t ->
  ?max_frame:int ->
  ?outbuf_hwm:int ->
  on_msg:(src:Net.Node_id.t -> Core.Msg.t -> unit) ->
  unit ->
  t
(** [outbuf_hwm] is the per-peer queued-bytes bound (default 4 MiB). *)

val default_outbuf_hwm : int

val listen : t -> ?port:int -> unit -> int
(** Binds a loopback listener (port [0] = ephemeral) and returns the
    actual port. Call once, before peers dial. *)

val set_peer_addr : t -> Net.Node_id.t -> Unix.sockaddr -> unit
(** Where to dial peer [dst]. Sends to a peer with no known address are
    dropped (and counted). *)

val send : t -> dst:Net.Node_id.t -> Core.Msg.t -> unit
(** Frames and queues the message; dials first if no connection is up.
    [dst = id] loops back through the event loop (next round), matching
    the simulator's self-delivery. Silently inert while down. *)

(** {2 Fault surface}

    {!set_down} models a crashed host; the verdict filter below models a
    faulty {e link}: installed by the chaos harness, it is consulted for
    every outbound message before framing (self-sends excluded) and can
    drop the message, hold it back for a span, or send it twice. Dropped,
    delayed and duplicated messages are counted in {!faulted}
    (separately from {!dropped}, which counts capacity losses). *)

type fault_verdict =
  | Pass
  | Fault_drop
  | Fault_delay of Sim.Sim_time.span
  | Fault_duplicate

val set_fault : t -> (dst:Net.Node_id.t -> Core.Msg.t -> fault_verdict) option -> unit
(** Installs (or with [None] removes) the outbound fault filter. *)

val faulted : t -> int
(** Messages the fault filter dropped, delayed or duplicated so far. *)

val set_down : t -> bool -> unit
(** See above. Listener stays bound while down (the port remains
    reserved); newly accepted connections are closed immediately, which
    peers observe as a dead host. *)

val is_down : t -> bool

val dropped : t -> int
(** Frames dropped so far: backpressure overflow, unknown peer address,
    or mid-frame disconnect. *)

val live_connections : t -> int
(** Established connections, both directions (diagnostics / tests). *)

val close : t -> unit
(** Tears everything down, listener included. The [t] is dead after. *)
