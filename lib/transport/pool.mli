(** Size-classed [Bytes.t] pool for transport buffers.

    Reader accumulation buffers, read scratch and write-coalescing
    buffers are acquired here and released on connection teardown, so
    redial churn recycles buffers instead of re-allocating them. Classes
    are powers of two from 4 KiB to 4 MiB; requests above the largest
    class degrade to plain allocations that {!release} quietly drops.

    With [debug], released buffers are filled with {!poison_byte} (a
    use-after-release reads poison, not stale frames) and releasing the
    same buffer twice raises [Invalid_argument]. *)

type t

type stats = {
  mutable acquires : int;
  mutable hits : int;      (** acquires served by recycling *)
  mutable releases : int;
  mutable dropped : int;   (** off-class releases, not pooled *)
}

val create : ?debug:bool -> unit -> t
(** [debug] defaults to [false]; see above. *)

val acquire : t -> int -> Bytes.t
(** A buffer of length >= [n] (its class size — callers track fill
    themselves). Contents are arbitrary, poisoned in debug pools. *)

val release : t -> Bytes.t -> unit
(** Returns a buffer to its class free list. Safe on any [Bytes.t]:
    buffers of off-class lengths are dropped, not pooled. In debug
    pools, raises [Invalid_argument] on a double release. *)

val min_class : int
(** 4096. *)

val max_class : int
(** 4 MiB. *)

val poison_byte : char
(** [0xDE]. *)

val debug_enabled : t -> bool
val stats : t -> stats
val free_buffers : t -> int
(** Buffers currently sitting in free lists (diagnostics / tests). *)
