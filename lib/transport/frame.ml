let magic = "LPRD"
let version = 1
let header_bytes = 11
let default_max_frame = 16 * 1024 * 1024

let kind_hello = 0
let kind_msg = 1

type frame =
  | Hello of Net.Node_id.t
  | Msg of Core.Msg.t

type error =
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Decode_failed
  | Short_read

let pp_error fmt = function
  | Bad_magic -> Format.fprintf fmt "bad magic"
  | Bad_version v -> Format.fprintf fmt "bad protocol version %d (speak %d)" v version
  | Oversized n -> Format.fprintf fmt "oversized frame (%d bytes)" n
  | Decode_failed -> Format.fprintf fmt "payload failed to decode"
  | Short_read -> Format.fprintf fmt "stream ended mid-frame"

(* -- encoding ----------------------------------------------------------- *)

(* Counts every message-frame encode since process start. The encode-once
   multicast property is asserted by diffing this around a multicast: one
   frame to k peers must bump it by exactly 1. *)
let encodes = ref 0
let encode_count () = !encodes

let set_header b ~kind ~len =
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_uint16_le b 4 version;
  Bytes.set_uint8 b 6 kind;
  Bytes.set_int32_le b 7 (Int32.of_int len)

let encode_hello id =
  let b = Bytes.create (header_bytes + 4) in
  set_header b ~kind:kind_hello ~len:4;
  Bytes.set_int32_le b header_bytes (Int32.of_int id);
  Bytes.unsafe_to_string b

(* Header and payload land in one exact-size buffer. The result is an
   immutable string, so sharing it by reference into every peer's write
   queue is safe: per-peer progress lives in the queues (head offsets),
   never in the frame. *)
let encode_shared msg =
  let payload = Core.Codec.encode_msg msg in
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  set_header b ~kind:kind_msg ~len;
  Bytes.blit_string payload 0 b header_bytes len;
  incr encodes;
  Bytes.unsafe_to_string b

let encode_msg = encode_shared

(* -- incremental decoding ----------------------------------------------- *)

(* The reader accumulates into one growable bytes buffer with a consumed
   prefix; complete frames are parsed out and the tail compacted to the
   front. Simpler than a ring and plenty for per-connection rates — the
   buffer holds at most one partial frame plus whatever one read(2)
   appended. Buffers come from the connection's [Pool] when one is given,
   so redial churn recycles them. *)
type reader = {
  max_frame : int;
  pool : Pool.t option;
  mutable buf : Bytes.t;
  mutable start : int;    (* first unconsumed byte *)
  mutable stop : int;     (* one past the last valid byte *)
  mutable poisoned : error option;
}

let alloc r n =
  match r.pool with
  | Some p -> Pool.acquire p n
  | None -> Bytes.create n

let free_buf r b =
  match r.pool with
  | Some p -> Pool.release p b
  | None -> ()

let reader ?(max_frame = default_max_frame) ?pool () =
  let buf =
    match pool with
    | Some p -> Pool.acquire p 4096
    | None -> Bytes.create 4096
  in
  { max_frame; pool; buf; start = 0; stop = 0; poisoned = None }

let release r =
  free_buf r r.buf;
  (* Leave the reader unusable rather than aliasing a recycled buffer. *)
  r.buf <- Bytes.empty;
  r.start <- 0;
  r.stop <- 0;
  if r.poisoned = None then r.poisoned <- Some Short_read

let buffered r = r.stop - r.start

let ensure_room r extra =
  let live = buffered r in
  if r.start > 0 && (live = 0 || Bytes.length r.buf - r.stop < extra) then begin
    (* compact: slide the live region to offset 0 *)
    Bytes.blit r.buf r.start r.buf 0 live;
    r.start <- 0;
    r.stop <- live
  end;
  if Bytes.length r.buf - r.stop < extra then begin
    let need = live + extra in
    let cap = ref (Bytes.length r.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bigger = alloc r !cap in
    Bytes.blit r.buf r.start bigger 0 live;
    free_buf r r.buf;
    r.buf <- bigger;
    r.start <- 0;
    r.stop <- live
  end

(* Parse one frame at [r.start] if fully buffered. *)
let parse_one r k =
  let live = buffered r in
  if live < header_bytes then `Need_more
  else begin
    let base = r.start in
    let magic_ok =
      Bytes.get r.buf base = 'L'
      && Bytes.get r.buf (base + 1) = 'P'
      && Bytes.get r.buf (base + 2) = 'R'
      && Bytes.get r.buf (base + 3) = 'D'
    in
    if not magic_ok then `Error Bad_magic
    else
      let v = Bytes.get_uint16_le r.buf (base + 4) in
      if v <> version then `Error (Bad_version v)
      else
        let kind = Bytes.get_uint8 r.buf (base + 6) in
        let len = Int32.to_int (Bytes.get_int32_le r.buf (base + 7)) land 0xFFFFFFFF in
        if len > r.max_frame then `Error (Oversized len)
        else if live < header_bytes + len then `Need_more
        else begin
          let pbase = base + header_bytes in
          r.start <- pbase + len;
          if kind = kind_hello then
            if len = 4 then begin
              let id = Int32.to_int (Bytes.get_int32_le r.buf pbase) land 0xFFFFFFFF in
              k (Hello id);
              `Parsed
            end
            else `Error Decode_failed
          else if kind = kind_msg then (
            (* Decode the payload where it sits instead of [Bytes.sub_string]
               first. The string view of [r.buf] is only read inside
               [decode_msg_sub], which returns before the buffer can be
               compacted, grown or refilled, and everything the decoded
               message keeps is copied out by the codec. *)
            match
              Core.Codec.decode_msg_sub (Bytes.unsafe_to_string r.buf) ~off:pbase ~len
            with
            | Some msg ->
              k (Msg msg);
              `Parsed
            | None -> `Error Decode_failed)
          else `Error Decode_failed
        end
  end

let drain r k =
  let rec go () =
    match parse_one r k with
    | `Parsed -> go ()
    | `Need_more -> Ok ()
    | `Error e ->
      r.poisoned <- Some e;
      Error e
  in
  go ()

let feed r buf ~off ~len k =
  match r.poisoned with
  | Some e -> Error e
  | None ->
    ensure_room r len;
    Bytes.blit buf off r.buf r.stop len;
    r.stop <- r.stop + len;
    drain r k

(* -- zero-copy fill: read(2) straight into the reader ------------------- *)

let reserve r n =
  (match r.poisoned with
  | Some _ -> ()
  | None -> ensure_room r n);
  ()

let fill_buf r = r.buf
let fill_off r = r.stop
let fill_capacity r = Bytes.length r.buf - r.stop

let commit r n k =
  match r.poisoned with
  | Some e -> Error e
  | None ->
    if n < 0 || n > fill_capacity r then invalid_arg "Frame.commit";
    r.stop <- r.stop + n;
    drain r k

let check_eof r =
  match r.poisoned with
  | Some e -> Error e
  | None -> if buffered r = 0 then Ok () else Error Short_read
