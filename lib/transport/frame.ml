let magic = "LPRD"
let version = 1
let header_bytes = 11
let default_max_frame = 16 * 1024 * 1024

let kind_hello = 0
let kind_msg = 1

type frame =
  | Hello of Net.Node_id.t
  | Msg of Core.Msg.t

type error =
  | Bad_magic
  | Bad_version of int
  | Oversized of int
  | Decode_failed
  | Short_read

let pp_error fmt = function
  | Bad_magic -> Format.fprintf fmt "bad magic"
  | Bad_version v -> Format.fprintf fmt "bad protocol version %d (speak %d)" v version
  | Oversized n -> Format.fprintf fmt "oversized frame (%d bytes)" n
  | Decode_failed -> Format.fprintf fmt "payload failed to decode"
  | Short_read -> Format.fprintf fmt "stream ended mid-frame"

(* -- encoding ----------------------------------------------------------- *)

let add_header b ~kind ~len =
  Buffer.add_string b magic;
  Buffer.add_uint16_le b version;
  Buffer.add_uint8 b kind;
  Buffer.add_int32_le b (Int32.of_int len)

let encode_hello id =
  let b = Buffer.create (header_bytes + 4) in
  add_header b ~kind:kind_hello ~len:4;
  Buffer.add_int32_le b (Int32.of_int id);
  Buffer.contents b

let encode_msg msg =
  let payload = Core.Codec.encode_msg msg in
  let b = Buffer.create (header_bytes + String.length payload) in
  add_header b ~kind:kind_msg ~len:(String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* -- incremental decoding ----------------------------------------------- *)

(* The reader accumulates into one growable bytes buffer with a consumed
   prefix; complete frames are parsed out and the tail compacted to the
   front. Simpler than a ring and plenty for per-connection rates — the
   buffer holds at most one partial frame plus whatever one read(2)
   appended. *)
type reader = {
  max_frame : int;
  mutable buf : Bytes.t;
  mutable start : int;    (* first unconsumed byte *)
  mutable stop : int;     (* one past the last valid byte *)
  mutable poisoned : error option;
}

let reader ?(max_frame = default_max_frame) () =
  { max_frame; buf = Bytes.create 4096; start = 0; stop = 0; poisoned = None }

let buffered r = r.stop - r.start

let ensure_room r extra =
  let live = buffered r in
  if r.start > 0 && (live = 0 || Bytes.length r.buf - r.stop < extra) then begin
    (* compact: slide the live region to offset 0 *)
    Bytes.blit r.buf r.start r.buf 0 live;
    r.start <- 0;
    r.stop <- live
  end;
  if Bytes.length r.buf - r.stop < extra then begin
    let need = live + extra in
    let cap = ref (Bytes.length r.buf * 2) in
    while !cap < need do
      cap := !cap * 2
    done;
    let bigger = Bytes.create !cap in
    Bytes.blit r.buf r.start bigger 0 live;
    r.buf <- bigger;
    r.start <- 0;
    r.stop <- live
  end

(* Parse one frame at [r.start] if fully buffered. *)
let parse_one r k =
  let live = buffered r in
  if live < header_bytes then `Need_more
  else begin
    let base = r.start in
    let magic_ok =
      Bytes.get r.buf base = 'L'
      && Bytes.get r.buf (base + 1) = 'P'
      && Bytes.get r.buf (base + 2) = 'R'
      && Bytes.get r.buf (base + 3) = 'D'
    in
    if not magic_ok then `Error Bad_magic
    else
      let v = Bytes.get_uint16_le r.buf (base + 4) in
      if v <> version then `Error (Bad_version v)
      else
        let kind = Bytes.get_uint8 r.buf (base + 6) in
        let len = Int32.to_int (Bytes.get_int32_le r.buf (base + 7)) land 0xFFFFFFFF in
        if len > r.max_frame then `Error (Oversized len)
        else if live < header_bytes + len then `Need_more
        else begin
          let payload = Bytes.sub_string r.buf (base + header_bytes) len in
          r.start <- base + header_bytes + len;
          if kind = kind_hello then
            if len = 4 then begin
              let id = Int32.to_int (String.get_int32_le payload 0) land 0xFFFFFFFF in
              k (Hello id);
              `Parsed
            end
            else `Error Decode_failed
          else if kind = kind_msg then (
            match Core.Codec.decode_msg payload with
            | Some msg ->
              k (Msg msg);
              `Parsed
            | None -> `Error Decode_failed)
          else `Error Decode_failed
        end
  end

let feed r buf ~off ~len k =
  match r.poisoned with
  | Some e -> Error e
  | None ->
    ensure_room r len;
    Bytes.blit buf off r.buf r.stop len;
    r.stop <- r.stop + len;
    let rec drain () =
      match parse_one r k with
      | `Parsed -> drain ()
      | `Need_more -> Ok ()
      | `Error e ->
        r.poisoned <- Some e;
        Error e
    in
    drain ()

let check_eof r =
  match r.poisoned with
  | Some e -> Error e
  | None -> if buffered r = 0 then Ok () else Error Short_read
