type node = {
  loop : Loop.t;
  conn : Conn.t;
  platform : Core.Platform.t;
}

let node ~loop ~id ~n ?obs ?max_frame ?outbuf_hwm ?pool ?(verify = Core.Verify.inline)
    ?(store = Core.Store.null) () =
  (* The replica installs its handler via the platform after the conn
     exists; route deliveries through a cell to break the cycle. *)
  let handler = ref (fun ~src:_ (_ : Core.Msg.t) -> ()) in
  let conn =
    Conn.create ~loop ~id ?obs ?max_frame ?outbuf_hwm ?pool
      ~on_msg:(fun ~src msg -> !handler ~src msg)
      ()
  in
  let platform =
    { Core.Platform.n;
      now = (fun () -> Loop.now loop);
      schedule = (fun ~delay f -> ignore (Loop.schedule loop ~delay f : Loop.handle));
      schedule_at = (fun ~at f -> ignore (Loop.schedule_at loop ~at f : Loop.handle));
      set_handler = (fun h -> handler := h);
      send = (fun ~dst msg -> Conn.send conn ~dst msg);
      (* Encode-once: one frame string shared across all n-1 queues. *)
      multicast = (fun msg -> Conn.multicast conn ~n msg);
      charge_egress = (fun ~size:_ ~category:_ -> ());
      submit = (fun ~cost:_ f -> ignore (Loop.schedule loop ~delay:0L f : Loop.handle));
      submit_ns =
        (fun ~cost_ns:_ f -> ignore (Loop.schedule loop ~delay:0L f : Loop.handle));
      set_down = (fun down -> Conn.set_down conn down);
      (* Real crypto: no modeled cost to charge. The pooled dispatch
         moves it onto worker domains; read/write syscalls keep going
         while continuations wait for the next drain tick. *)
      verify;
      store;
      (* Egress pressure from the conn's outbound rings; drives the
         replica's pacing gate when [pace_on_pressure] is configured. *)
      pressure = (fun () -> Conn.pressure conn) }
  in
  { loop; conn; platform }

let platform t = t.platform
let conn t = t.conn
let listen t ?port () = Conn.listen t.conn ?port ()
let set_peer_addr t dst addr = Conn.set_peer_addr t.conn dst addr
let set_down t down = Conn.set_down t.conn down
