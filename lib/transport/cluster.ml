(* An unconfirmed client batch eligible for re-sending. *)
type pending_req = {
  batch : Workload.Request.t;
  mutable last_sent_ns : int;
}

type t = {
  loop : Loop.t;
  cfg : Core.Config.t;
  nodes : Runtime.node array;
  replicas : Core.Replica.t array;
  trace : Sim.Trace.t;
  (* f+1 execution accounting, as in [Core.Runner]: per-serial counters,
     and batch-id dedup (decoded message copies do not share the
     [counted] ref with the client's original, so the dedup is by id). *)
  exec_counts : (int, int ref) Hashtbl.t;
  counted_batches : (int, unit) Hashtbl.t;
  latency : Stats.Histogram.t;
  mutable executed_blocks : int;
  mutable confirmed : int;
  (* open-loop client *)
  load : float;
  mutable load_active : bool;
  mutable offered : int;
  mutable next_batch_id : int;
  mutable carry : float; (* fractional requests owed from past ticks *)
  mutable last_tick_ns : int;
  mutable rr : int;
  (* closed-loop arm of the hybrid client (inert while the overload
     controls are off, i.e. [mempool_cap = 0] and [pace_on_pressure =
     false]): admission rejections re-credit [carry] and put the target
     on a retry-after cooldown; saturated targets are skipped. *)
  mutable rejected : int;  (* requests refused at replica admission *)
  mutable throttled : int; (* target-ticks skipped for egress pressure *)
  retry_after : int array; (* per-target: earliest ns to submit again *)
  mutable load_started_ns : int;
  mutable load_stopped_ns : int;
  (* client re-sends (needed to arm the replica watchdog: only
     resend-tagged batches are watched for view-change triggering) *)
  client_resend : Sim.Sim_time.span option;
  pending : (int, pending_req) Hashtbl.t;
  mutable resends : int;
  (* view-change observability *)
  mutable view_changes : int;
  mutable vc_triggers : int;
  (* verification pool (None = inline verification on the loop thread) *)
  verify_pool : Exec.Pool.t option;
  mutable verify_tick : Loop.tick_handle option;
  (* durable state: one WAL directory per node under [data_dir]. The
     cells hold the live file handles — [restart_replica] crashes the old
     handle and installs a fresh one, and the sinks threaded into the
     node platforms dereference the cell on every call, so a recovered
     replica writes to the new handle through the same platform value. *)
  stores : Store.Store_file.t ref array;
  data_dir : string;
  keep_data : bool;
  fsync : Store.Wal.fsync_policy;
  mutable store_tick : Loop.tick_handle option;
  (* retained for [restart_replica] *)
  keys : (Crypto.Signature.public_key * Crypto.Signature.private_key) array;
  tsetup : Crypto.Threshold.setup;
  tkeys : Crypto.Threshold.member_key array;
  strategies : Core.Byzantine.t array;
  hooks : Core.Replica.hooks;
  mutable closed : bool;
  (* observability: registry shared by every layer of this cluster, the
     confirm-latency instruments, and the periodic file dump *)
  obs : Obs.Registry.t option;
  obs_confirm : (Obs.Histogram.t * Obs.Counter.t) option;
  metrics_out : string option;
  metrics_interval_ns : int;
  mutable last_dump_ns : int;
  mutable metrics_tick : Loop.tick_handle option;
}

let loop t = t.loop
let replicas t = t.replicas
let nodes t = t.nodes
let offered t = t.offered
let confirmed t = t.confirmed
let trace t = t.trace
let view_changes t = t.view_changes
let vc_triggers t = t.vc_triggers
let resends t = t.resends
let rejected t = t.rejected
let throttled t = t.throttled
let verify_stats t = Option.map Exec.Pool.stats t.verify_pool

let f_plus_1 t = Core.Config.max_faulty t.cfg + 1

let on_f1_execution t (dbs : Core.Datablock.t list) =
  let now = Loop.now t.loop in
  t.executed_blocks <- t.executed_blocks + 1;
  List.iter
    (fun (db : Core.Datablock.t) ->
      List.iter
        (fun (b : Workload.Request.t) ->
          let id = b.Workload.Request.id in
          if not (Hashtbl.mem t.counted_batches id) then begin
            Hashtbl.add t.counted_batches id ();
            Hashtbl.remove t.pending id;
            t.confirmed <- t.confirmed + b.Workload.Request.count;
            Stats.Histogram.add t.latency Sim.Sim_time.(now - b.Workload.Request.born);
            (match t.obs_confirm with
            | Some (h, c) ->
              Obs.Histogram.record h (Int64.to_int Sim.Sim_time.(now - b.Workload.Request.born));
              Obs.Counter.add c b.Workload.Request.count
            | None -> ())
          end)
        db.Core.Datablock.batches)
    dbs

let make_hooks t_ref =
  { Core.Replica.on_execute =
      (fun ~id:_ ~sn _block dbs ->
        match !t_ref with
        | None -> ()
        | Some t ->
          let c =
            match Hashtbl.find_opt t.exec_counts sn with
            | Some c -> c
            | None ->
              let c = ref 0 in
              Hashtbl.add t.exec_counts sn c;
              c
          in
          incr c;
          if !c = f_plus_1 t then on_f1_execution t dbs);
    on_view_change =
      (fun ~id:_ ~view:_ ->
        match !t_ref with None -> () | Some t -> t.view_changes <- t.view_changes + 1);
    on_view_change_trigger =
      (fun ~id:_ ~abandoned:_ ->
        match !t_ref with None -> () | Some t -> t.vc_triggers <- t.vc_triggers + 1);
    on_propose = (fun ~id:_ ~sn:_ ~at:_ -> ());
    on_checkpoint = (fun ~id:_ ~lw:_ -> ()) }

(* -- client ------------------------------------------------------------- *)

let client_tick_ns = 10_000_000 (* 10 ms *)

(* Hybrid-client tuning: a rejected target sits out [retry_after_ns];
   re-credited requests bank at most [carry_bucket_sec] seconds of load
   (token-bucket depth), so a long rejection streak cannot store an
   unbounded burst to release at once. *)
let retry_after_ns = 100_000_000 (* 100 ms *)
let carry_bucket_sec = 0.5

(* The closed-loop behaviours only engage when the replicas are actually
   configured with overload controls; otherwise the client stays the
   seed's pure open loop. *)
let overload_controls_on t =
  t.cfg.Core.Config.mempool_cap > 0 || t.cfg.Core.Config.pace_on_pressure

let leader t = Core.Config.leader_of_view t.cfg 1

let client_targets t =
  let l = leader t in
  (* The leader is skipped to keep its NIC free for proposals — unless
     the leader-generates ablation is on, in which case it packs
     datablocks like everyone else and needs requests to pack. *)
  let skip_leader = not t.cfg.Core.Config.leader_generates_datablocks in
  let acc = ref [] in
  for id = t.cfg.Core.Config.n - 1 downto 0 do
    if ((not skip_leader) || not (Net.Node_id.equal id l))
       && not (Conn.is_down (Runtime.conn t.nodes.(id)))
    then acc := id :: !acc
  done;
  !acc

let offer_batch t ~target ~count =
  let b =
    Workload.Request.make ~id:t.next_batch_id ~count
      ~size_each:t.cfg.Core.Config.payload ~born:(Loop.now t.loop) ()
  in
  t.next_batch_id <- t.next_batch_id + 1;
  match Core.Replica.submit t.replicas.(target) b with
  | Core.Replica.Admitted ->
    t.offered <- t.offered + count;
    if t.client_resend <> None then
      Hashtbl.replace t.pending b.Workload.Request.id
        { batch = b; last_sent_ns = Loop.now_ns t.loop }
  | Core.Replica.Rejected _ ->
    (* Closed-loop: the requests were never accepted, so they go back
       into [carry] (bounded to the token-bucket depth) to be re-offered
       on a later tick, and the target sits out a retry-after window. *)
    t.rejected <- t.rejected + count;
    t.carry <- Float.min (t.carry +. float_of_int count) (t.load *. carry_bucket_sec);
    t.retry_after.(target) <- Loop.now_ns t.loop + retry_after_ns

(* Re-send unconfirmed batches, round-robin over the up replicas. The
   copies carry the resend tag, so receivers watch them and vote to
   change the view if they stay unconfirmed for a full view timeout —
   without this no TCP-plane fault can ever trigger a view change. *)
let resend_tick t =
  match t.client_resend with
  | None -> ()
  | Some period ->
    let period_ns = Int64.to_int period in
    let now_ns = Loop.now_ns t.loop in
    (match client_targets t with
    | [] -> ()
    | targets ->
      let targets = Array.of_list targets in
      let m = Array.length targets in
      (* collect first: a submit must not mutate [pending] mid-iteration *)
      let due = ref [] in
      Hashtbl.iter
        (fun _ p ->
          if now_ns - p.last_sent_ns >= period_ns then begin
            p.last_sent_ns <- now_ns;
            due := p.batch :: !due
          end)
        t.pending;
      List.iter
        (fun batch ->
          t.resends <- t.resends + 1;
          t.rr <- t.rr + 1;
          let copy = Workload.Request.resend_of batch in
          (* A rejected resend copy is not retried early: the original
             stays in [pending] and the next period sends a fresh copy. *)
          ignore
            (Core.Replica.submit t.replicas.(targets.(t.rr mod m)) copy
              : Core.Replica.admission))
        !due)

let rec resend_loop t =
  match t.client_resend with
  | None -> ()
  | Some period ->
    if not t.closed then begin
      resend_tick t;
      ignore
        (Loop.schedule t.loop ~delay:(Int64.div period 2L) (fun () -> resend_loop t)
          : Loop.handle)
    end

(* Targets the hybrid client will actually submit to this tick: up,
   non-leader, past any retry-after cooldown, and (when the overload
   controls are on) under egress-pressure saturation. *)
let eligible_targets t now_ns =
  let controls = overload_controls_on t in
  List.filter
    (fun id ->
      if now_ns < t.retry_after.(id) then false
      else if controls && Conn.pressure (Runtime.conn t.nodes.(id)) >= 1.0 then begin
        t.throttled <- t.throttled + 1;
        false
      end
      else true)
    (client_targets t)

let rec client_tick t =
  if t.load_active then begin
    let now_ns = Loop.now_ns t.loop in
    let dt = float_of_int (now_ns - t.last_tick_ns) *. 1e-9 in
    t.last_tick_ns <- now_ns;
    t.carry <- t.carry +. (t.load *. dt);
    (* With the closed loop engaged the carry is a token bucket, not an
       unbounded debt: requests owed past the bucket depth are shed. *)
    if overload_controls_on t then
      t.carry <- Float.min t.carry (t.load *. carry_bucket_sec);
    let due = int_of_float t.carry in
    t.carry <- t.carry -. float_of_int due;
    (match eligible_targets t now_ns with
    | [] -> () (* everyone down; requests owed stay in [carry]'s past *)
    | targets ->
      let targets = Array.of_list targets in
      let m = Array.length targets in
      let per = due / m and extra = due mod m in
      for i = 0 to m - 1 do
        (* rotate who gets the remainder so the load stays even *)
        let count = per + (if (i + t.rr) mod m < extra then 1 else 0) in
        if count > 0 then offer_batch t ~target:targets.(i) ~count
      done;
      t.rr <- t.rr + 1);
    ignore
      (Loop.schedule t.loop ~delay:(Int64.of_int client_tick_ns) (fun () ->
           client_tick t)
        : Loop.handle)
  end

let start_load t =
  if not t.load_active then begin
    t.load_active <- true;
    t.last_tick_ns <- Loop.now_ns t.loop;
    t.load_started_ns <- t.last_tick_ns;
    t.carry <- 0.;
    client_tick t
  end

let stop_load t =
  if t.load_active then begin
    t.load_active <- false;
    t.load_stopped_ns <- Loop.now_ns t.loop
  end

(* -- construction ------------------------------------------------------- *)

let temp_counter = ref 0

let fresh_data_dir () =
  incr temp_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "leopard-data.%d.%d" (Unix.getpid ()) !temp_counter)

let node_dir data_dir id = Filename.concat data_dir (Printf.sprintf "node-%d" id)

let create ~cfg ?(load = 2000.) ?outbuf_hwm ?(trace = Sim.Trace.create ~enabled:false ())
    ?(byzantine = []) ?client_resend ?verify_domains ?data_dir
    ?(fsync = Store.Wal.Never) ?store_wrap ?obs ?metrics_out
    ?(metrics_interval_ns = 1_000_000_000) () =
  (* A dump target without a registry implies one. *)
  let obs =
    match (obs, metrics_out) with
    | (Some _ as o), _ -> o
    | None, Some _ -> Some (Obs.Registry.create ())
    | None, None -> None
  in
  let n = cfg.Core.Config.n in
  let loop = Loop.create () in
  (* An explicit data dir is the caller's (kept at teardown, e.g. as a
     failure artifact); an automatic one is a per-run temp dir removed by
     [close]. *)
  let data_dir, keep_data =
    match data_dir with Some d -> (d, true) | None -> (fresh_data_dir (), false)
  in
  let now_ns () = Loop.now_ns loop in
  let stores =
    Array.init n (fun id ->
        ref (Store.Store_file.create ?obs ~fsync ~now_ns ~dir:(node_dir data_dir id) ()))
  in
  let store_sink id =
    let cell = stores.(id) in
    let base =
      Core.Store.
        { enabled = true;
          log = (fun r -> Store.Store_file.log !cell r);
          save = (fun s -> Store.Store_file.save !cell s);
          load = (fun () -> Store.Store_file.load !cell);
          sync = (fun () -> Store.Store_file.sync !cell) }
    in
    match store_wrap with None -> base | Some w -> w id base
  in
  (* One buffer pool for the whole in-process cluster: a redialing node
     reuses buffers any node released. *)
  let pool = Pool.create () in
  (* Verification pool: ON by default (that is the point of the TCP
     plane — real parallel crypto), sized to leave one core for the
     event loop. [Some 0] disables it (bench baseline); on a small host
     the default degenerates to one worker, still keeping crypto off the
     select thread. One pool for the in-process cluster: workers only
     run pure crypto, so sharing is safe and bounds the domain count. *)
  let verify_pool =
    match verify_domains with
    | Some 0 -> None
    | Some d -> Some (Exec.Pool.create ?obs ~domains:d ())
    | None ->
      Some
        (Exec.Pool.create ?obs
           ~domains:(max 1 (min 4 (Domain.recommended_domain_count () - 1)))
           ())
  in
  let verify =
    match verify_pool with
    | None -> Core.Verify.inline
    | Some p -> Core.Verify.pooled p
  in
  let nodes =
    Array.init n (fun id ->
        Runtime.node ~loop ~id ~n ?obs ?outbuf_hwm ~pool ~verify ~store:(store_sink id) ())
  in
  let ports = Array.map (fun node -> Runtime.listen node ()) nodes in
  Array.iteri
    (fun id node ->
      for dst = 0 to n - 1 do
        if dst <> id then
          Runtime.set_peer_addr node dst
            (Unix.ADDR_INET (Unix.inet_addr_loopback, ports.(dst)))
      done)
    nodes;
  let key_rng = Sim.Rng.create 42L in
  let keys = Array.init n (fun _ -> Crypto.Signature.keygen key_rng) in
  let pks = Array.map fst keys in
  let tsetup, tkeys =
    Crypto.Threshold.keygen key_rng ~threshold:(2 * cfg.Core.Config.f) ~parties:n
  in
  let t_ref = ref None in
  let hooks = make_hooks t_ref in
  let strategies =
    Array.init n (fun id ->
        Option.value ~default:Core.Byzantine.Honest (List.assoc_opt id byzantine))
  in
  let replicas =
    Array.init n (fun id ->
        Core.Replica.create
          ~platform:(Runtime.platform nodes.(id))
          ~cfg ~id ~sk:(snd keys.(id)) ~pks ~tsetup ~tkey:tkeys.(id) ?obs
          ~strategy:strategies.(id) ~hooks ~trace ())
  in
  let t =
    { loop;
      cfg;
      nodes;
      replicas;
      trace;
      exec_counts = Hashtbl.create 256;
      counted_batches = Hashtbl.create 1024;
      latency = Stats.Histogram.create ();
      executed_blocks = 0;
      confirmed = 0;
      load;
      load_active = false;
      offered = 0;
      next_batch_id = 0;
      carry = 0.;
      last_tick_ns = 0;
      rr = 0;
      rejected = 0;
      throttled = 0;
      retry_after = Array.make n 0;
      load_started_ns = 0;
      load_stopped_ns = 0;
      client_resend;
      pending = Hashtbl.create 1024;
      resends = 0;
      view_changes = 0;
      vc_triggers = 0;
      verify_pool;
      verify_tick = None;
      stores;
      data_dir;
      keep_data;
      fsync;
      store_tick = None;
      keys;
      tsetup;
      tkeys;
      strategies;
      hooks;
      closed = false;
      obs;
      obs_confirm =
        Option.map
          (fun reg ->
            ( Obs.Registry.histogram reg ~help:"submit to f+1-confirm latency (ns)"
                "leopard_confirm_latency_ns",
              Obs.Registry.counter reg ~help:"client requests confirmed"
                "leopard_confirmed_requests_total" ))
          obs;
      metrics_out;
      metrics_interval_ns;
      last_dump_ns = 0;
      metrics_tick = None }
  in
  t_ref := Some t;
  (* Cluster-level client/consensus aggregates, refreshed at scrape. *)
  (match obs with
  | None -> ()
  | Some reg ->
    let offered_c =
      Obs.Registry.counter reg ~help:"client requests offered" "leopard_cluster_offered_total"
    in
    let resends_c =
      Obs.Registry.counter reg ~help:"client re-send copies" "leopard_cluster_resends_total"
    in
    let rejected_c =
      Obs.Registry.counter reg ~help:"client requests refused at replica admission"
        "leopard_cluster_rejected_total"
    in
    let throttled_c =
      Obs.Registry.counter reg ~help:"client target-ticks skipped for egress pressure"
        "leopard_cluster_throttled_total"
    in
    let blocks_c =
      Obs.Registry.counter reg ~help:"blocks f+1-executed" "leopard_cluster_executed_blocks_total"
    in
    let max_view_g =
      Obs.Registry.gauge reg ~help:"highest view of any up replica" "leopard_cluster_max_view"
    in
    Obs.Registry.on_collect reg (fun () ->
        Obs.Counter.mirror offered_c t.offered;
        Obs.Counter.mirror resends_c t.resends;
        Obs.Counter.mirror rejected_c t.rejected;
        Obs.Counter.mirror throttled_c t.throttled;
        Obs.Counter.mirror blocks_c t.executed_blocks;
        let mv = ref 1 in
        Array.iteri
          (fun id node ->
            if not (Conn.is_down (Runtime.conn node)) then
              mv := max !mv (Core.Replica.view t.replicas.(id)))
          t.nodes;
        Obs.Gauge.set max_view_g !mv));
  (* Periodic exposition dump: checked once per loop iteration, written
     at most once per [metrics_interval_ns] (atomic tmp+rename, so a
     tail-ing reader never sees a torn dump). *)
  (match (obs, metrics_out) with
  | Some reg, Some path ->
    t.last_dump_ns <- Loop.now_ns loop;
    t.metrics_tick <-
      Some
        (Loop.on_tick loop (fun () ->
             let now = Loop.now_ns loop in
             if now - t.last_dump_ns >= t.metrics_interval_ns then begin
               t.last_dump_ns <- now;
               try Obs.Registry.dump_file reg path with Sys_error _ -> ()
             end))
  | _ -> ());
  (* Group commit: buffered WAL records hit the files once per loop
     iteration (and fsync per the policy), not once per append. *)
  t.store_tick <-
    Some (Loop.on_tick loop (fun () -> Array.iter (fun c -> Store.Store_file.flush !c) stores));
  (match verify_pool with
   | None -> ()
   | Some p ->
     (* Completions are delivered on the loop thread: every dispatch
        round starts with a drain ([on_tick] registered after the Conn
        flush ticks runs before them — newest first), and the pool's
        notify pipe wakes select the moment a result lands, so verified
        messages never wait out the select timeout. *)
     let drain () = ignore (Exec.Pool.drain p : int) in
     t.verify_tick <- Some (Loop.on_tick loop drain);
     Loop.watch_read loop (Exec.Pool.notify_fd p) drain);
  Array.iter Core.Replica.start replicas;
  resend_loop t;
  t

let set_replica_down t id down =
  Runtime.set_down t.nodes.(id) down;
  Sim.Trace.recordf t.trace ~at:(Loop.now t.loop)
    ~tag:(if down then "cluster.kill" else "cluster.revive")
    "%a" Net.Node_id.pp id

let data_dir t = if t.keep_data then Some t.data_dir else None

(* Process restart: the replica value dies with whatever state was only
   in memory (including the store's un-flushed buffer — [crash] drops
   it), and the replacement rebuilds itself from the node's WAL directory
   via [Replica.recover]. The replacement takes over the same [Runtime]
   node: its [set_handler] overwrites the delivery cell, and the
   cell-indirect store sink starts hitting the fresh file handle. *)
let restart_replica t id =
  Core.Replica.halt t.replicas.(id);
  Store.Store_file.crash !(t.stores.(id));
  t.stores.(id) :=
    Store.Store_file.create ?obs:t.obs ~fsync:t.fsync
      ~now_ns:(fun () -> Loop.now_ns t.loop)
      ~dir:(node_dir t.data_dir id) ();
  let pks = Array.map fst t.keys in
  let r =
    Core.Replica.recover
      ~platform:(Runtime.platform t.nodes.(id))
      ~cfg:t.cfg ~id ~sk:(snd t.keys.(id)) ~pks ~tsetup:t.tsetup ~tkey:t.tkeys.(id)
      ?obs:t.obs ~strategy:t.strategies.(id) ~hooks:t.hooks ~trace:t.trace ()
  in
  t.replicas.(id) <- r;
  Runtime.set_down t.nodes.(id) false;
  Core.Replica.start r;
  Sim.Trace.recordf t.trace ~at:(Loop.now t.loop) ~tag:"cluster.restart" "%a" Net.Node_id.pp
    id

let set_fault_filter t id f = Conn.set_fault (Runtime.conn t.nodes.(id)) f

let faulted t =
  Array.fold_left (fun acc node -> acc + Conn.faulted (Runtime.conn node)) 0 t.nodes

(* Cluster-wide data-plane counters: per-node [Conn.stats] summed. *)
let transport_stats t =
  let acc =
    { Conn.write_syscalls = 0;
      read_syscalls = 0;
      frames_sent = 0;
      frames_recvd = 0;
      bytes_sent = 0;
      bytes_recvd = 0;
      reconnects = 0 }
  in
  Array.iter
    (fun node ->
      let s = Conn.stats (Runtime.conn node) in
      acc.Conn.write_syscalls <- acc.Conn.write_syscalls + s.Conn.write_syscalls;
      acc.Conn.read_syscalls <- acc.Conn.read_syscalls + s.Conn.read_syscalls;
      acc.Conn.frames_sent <- acc.Conn.frames_sent + s.Conn.frames_sent;
      acc.Conn.frames_recvd <- acc.Conn.frames_recvd + s.Conn.frames_recvd;
      acc.Conn.bytes_sent <- acc.Conn.bytes_sent + s.Conn.bytes_sent;
      acc.Conn.bytes_recvd <- acc.Conn.bytes_recvd + s.Conn.bytes_recvd;
      acc.Conn.reconnects <- acc.Conn.reconnects + s.Conn.reconnects)
    t.nodes;
  acc

let run_while t pred = Loop.run_while t.loop (fun () -> pred t)

let up_ids t =
  List.filter
    (fun id -> not (Conn.is_down (Runtime.conn t.nodes.(id))))
    (List.init t.cfg.Core.Config.n Fun.id)

let state_converged t =
  match up_ids t with
  | [] -> true
  | first :: rest ->
    let reference = t.replicas.(first) in
    let exec = Core.Ledger.executed_up_to (Core.Replica.ledger reference) in
    let hash = Core.Replica.state_hash reference in
    List.for_all
      (fun id ->
        let r = t.replicas.(id) in
        Core.Ledger.executed_up_to (Core.Replica.ledger r) = exec
        && Crypto.Hash.equal (Core.Replica.state_hash r) hash)
      rest

let ledgers_agree t =
  match up_ids t with
  | [] -> true
  | first :: rest ->
    let agree l1 l2 =
      let upto =
        min (Core.Ledger.executed_up_to l1) (Core.Ledger.executed_up_to l2)
      in
      let rec go sn =
        if sn > upto then true
        else
          match (Core.Ledger.get l1 sn, Core.Ledger.get l2 sn) with
          | Some a, Some b -> Core.Bftblock.equal_content a b && go (sn + 1)
          | _ -> go (sn + 1) (* pruned below a checkpoint *)
      in
      go 1
    in
    let l1 = Core.Replica.ledger t.replicas.(first) in
    List.for_all (fun id -> agree l1 (Core.Replica.ledger t.replicas.(id))) rest

let max_view t =
  List.fold_left
    (fun acc id -> max acc (Core.Replica.view t.replicas.(id)))
    1 (up_ids t)

let metrics_report t = Option.map Obs.Registry.expose t.obs

let close t =
  if not t.closed then begin
    t.closed <- true;
    stop_load t;
    (* Final dump before teardown: the run's last word, whatever the
       periodic interval left unwritten. *)
    (match (t.obs, t.metrics_out) with
    | Some reg, Some path -> (
      try Obs.Registry.dump_file reg path with Sys_error _ -> ())
    | _ -> ());
    (match t.metrics_tick with
    | Some h ->
      Loop.remove_tick t.loop h;
      t.metrics_tick <- None
    | None -> ());
    Loop.stop t.loop;
    (* Unhook the pool from the loop before shutdown closes its pipe fds
       (a closed fd in the select read set would fail the loop), then
       join the worker domains. Un-drained continuations are dropped —
       the replicas they would touch are being torn down anyway. *)
    (match t.verify_pool with
     | None -> ()
     | Some p ->
       (match t.verify_tick with
        | Some h ->
          Loop.remove_tick t.loop h;
          t.verify_tick <- None
        | None -> ());
       Loop.unwatch t.loop (Exec.Pool.notify_fd p);
       Exec.Pool.shutdown p);
    (* Same discipline for the store flush tick (idempotent like the
       verify tick): unhook before the handles close. *)
    (match t.store_tick with
     | Some h ->
       Loop.remove_tick t.loop h;
       t.store_tick <- None
     | None -> ());
    Array.iter (fun node -> Conn.close (Runtime.conn node)) t.nodes;
    Array.iter (fun c -> Store.Store_file.close !c) t.stores;
    (* Auto (temp) data dirs leave nothing behind; explicit ones are the
       caller's artifacts. *)
    if not t.keep_data then Store.Store_file.remove_dir t.data_dir;
    (* Reap the joined accounting state too, so a harness that builds
       clusters in a loop (the chaos corpus) cannot accrete per-run
       tables behind a still-reachable [t]. *)
    Hashtbl.reset t.exec_counts;
    Hashtbl.reset t.counted_batches;
    Hashtbl.reset t.pending
  end

(* -- one-shot runs ------------------------------------------------------ *)

type report = {
  n : int;
  offered : int;
  confirmed : int;
  rejected : int;
  throughput : float;
  latency : Stats.Histogram.t;
  executed_blocks : int;
  wall_sec : float;
  dropped_frames : int;
  transport : Conn.stats; (* data-plane counters summed over nodes *)
  state_hashes : (Net.Node_id.t * Crypto.Hash.t) list;
  converged : bool;
  ledgers_agree : bool;
}

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>local cluster: n=%d@,\
     offered        %d@,\
     confirmed      %d@,\
     rejected       %d@,\
     throughput     %.0f req/s@,\
     latency p50    %.1f ms@,\
     latency p99    %.1f ms@,\
     executed blks  %d@,\
     load window    %.2f s@,\
     dropped frames %d@,\
     frames sent    %d (%.3f write syscalls/frame)@,\
     frames recvd   %d (%.3f read syscalls/frame)@,\
     bytes moved    %d out / %d in@,\
     converged      %b@,\
     ledgers agree  %b@]"
    r.n r.offered r.confirmed r.rejected r.throughput
    (Stats.Histogram.quantile r.latency 0.50 *. 1e3)
    (Stats.Histogram.quantile r.latency 0.99 *. 1e3)
    r.executed_blocks r.wall_sec r.dropped_frames r.transport.Conn.frames_sent
    (let f = r.transport.Conn.frames_sent in
     if f = 0 then 0.
     else float_of_int r.transport.Conn.write_syscalls /. float_of_int f)
    r.transport.Conn.frames_recvd
    (let f = r.transport.Conn.frames_recvd in
     if f = 0 then 0.
     else float_of_int r.transport.Conn.read_syscalls /. float_of_int f)
    r.transport.Conn.bytes_sent r.transport.Conn.bytes_recvd r.converged r.ledgers_agree

let report_of t =
  let window_ns =
    (if t.load_stopped_ns > t.load_started_ns then t.load_stopped_ns
     else Loop.now_ns t.loop)
    - t.load_started_ns
  in
  let wall_sec = float_of_int (max 1 window_ns) *. 1e-9 in
  { n = t.cfg.Core.Config.n;
    offered = t.offered;
    confirmed = t.confirmed;
    rejected = t.rejected;
    throughput = float_of_int t.confirmed /. wall_sec;
    latency = t.latency;
    executed_blocks = t.executed_blocks;
    wall_sec;
    dropped_frames =
      Array.fold_left (fun acc node -> acc + Conn.dropped (Runtime.conn node)) 0 t.nodes;
    transport = transport_stats t;
    state_hashes =
      Array.to_list (Array.mapi (fun id r -> (id, Core.Replica.state_hash r)) t.replicas);
    converged = state_converged t;
    ledgers_agree = ledgers_agree t }

let run ~cfg ?load ?(duration = Sim.Sim_time.s 5) ?(drain = Sim.Sim_time.s 10)
    ?min_confirmed ?kill ?trace ?verify_domains ?data_dir ?fsync ?obs ?metrics_out
    ?metrics_interval_ns () =
  let t =
    create ~cfg ?load ?trace ?verify_domains ?data_dir ?fsync ?obs ?metrics_out
      ?metrics_interval_ns ()
  in
  (* [close] on every exit path, normal or not: an exception mid-run must
     not leak n listeners plus O(n^2) connection fds into the process
     (repeated in-process runs — the chaos corpus — would exhaust the fd
     table). [close] is idempotent, so the normal path costs nothing. *)
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      (match kill with
      | None -> ()
      | Some (id, at, revive) ->
        ignore
          (Loop.schedule t.loop ~delay:at (fun () -> set_replica_down t id true)
            : Loop.handle);
        (match revive with
        | None -> ()
        | Some at' ->
          ignore
            (Loop.schedule t.loop ~delay:at' (fun () -> set_replica_down t id false)
              : Loop.handle)));
      start_load t;
      let deadline = Loop.now_ns t.loop + Int64.to_int duration in
      run_while t (fun t ->
          Loop.now_ns t.loop < deadline
          && match min_confirmed with Some m -> t.confirmed < m | None -> true);
      stop_load t;
      (* Drain: let in-flight serials finish and laggards catch up so the
         state hashes can be compared at a common execution frontier. *)
      let drain_deadline = Loop.now_ns t.loop + Int64.to_int drain in
      run_while t (fun t ->
          Loop.now_ns t.loop < drain_deadline && not (state_converged t));
      report_of t)
