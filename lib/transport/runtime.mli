(** The socket implementation of {!Core.Platform}.

    One {!node} per replica: its {!Conn} endpoint plus the
    {!Core.Platform.t} handed to [Replica.create]. Clock and timers come
    from the shared {!Loop}; [send]/[multicast] frame messages onto TCP
    connections; [submit] runs the task at the next loop turn (real
    crypto already cost real time, there is no core model to charge);
    [charge_egress] is a no-op (a bandwidth-accounting concept).

    Several nodes may share one loop (the in-process [local-cluster]) or
    each own their own in separate processes — the seam is the same. *)

type node

val node :
  loop:Loop.t ->
  id:Net.Node_id.t ->
  n:int ->
  ?obs:Obs.Registry.t ->
  ?max_frame:int ->
  ?outbuf_hwm:int ->
  ?pool:Pool.t ->
  ?verify:Core.Verify.dispatch ->
  ?store:Core.Store.sink ->
  unit ->
  node
(** [verify] defaults to {!Core.Verify.inline}; the cluster harness
    passes {!Core.Verify.pooled} so crypto checks run on worker domains
    and their continuations are delivered by a loop tick draining the
    pool (see {!Cluster.create}). [store] defaults to {!Core.Store.null};
    the cluster harness passes a per-node file-backed sink so replicas
    survive process restarts. *)

val platform : node -> Core.Platform.t
val conn : node -> Conn.t

val listen : node -> ?port:int -> unit -> int
(** Binds the node's listener; returns the actual port. *)

val set_peer_addr : node -> Net.Node_id.t -> Unix.sockaddr -> unit

val set_down : node -> bool -> unit
(** Fail-stop the node (see {!Conn.set_down}); also what the platform's
    own [set_down] does. *)
