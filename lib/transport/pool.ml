(* Size-classed buffer pool for the transport data plane.

   Frame readers, read scratch and write-coalescing buffers all want
   kilobyte-scale [Bytes.t] values with connection lifetime but bursty
   turnover (a redialed peer tears its buffers down and builds them back
   up). Recycling them through a free list keeps the steady state free of
   major-heap churn and, with [debug], catches use-after-release and
   double-release bugs by poisoning.

   Classes are powers of two from [min_class] to [max_class]; a request
   above [max_class] falls back to a plain allocation that [release]
   recognizes (by its off-class size) and drops. Buffers are handed out
   at their class size, never trimmed — callers track their own fill. *)

let min_class = 4096
let max_class = 1 lsl 22 (* 4 MiB *)
let poison_byte = '\xDE'

type stats = {
  mutable acquires : int;
  mutable hits : int; (* acquires served from a free list *)
  mutable releases : int;
  mutable dropped : int; (* releases of off-class buffers, not pooled *)
}

type t = {
  classes : Bytes.t list ref array;
  debug : bool;
  stats : stats;
}

let class_count =
  let rec go i sz = if sz >= max_class then i + 1 else go (i + 1) (sz * 2) in
  go 0 min_class

let create ?(debug = false) () =
  { classes = Array.init class_count (fun _ -> ref []);
    debug;
    stats = { acquires = 0; hits = 0; releases = 0; dropped = 0 } }

let debug_enabled t = t.debug
let stats t = t.stats

(* Smallest class index whose size is >= n, or None above max_class. *)
let class_of n =
  if n > max_class then None
  else begin
    let idx = ref 0 and sz = ref min_class in
    while !sz < n do
      incr idx;
      sz := !sz * 2
    done;
    Some !idx
  end

let class_size idx = min_class lsl idx

let acquire t n =
  t.stats.acquires <- t.stats.acquires + 1;
  match class_of n with
  | None -> Bytes.create n
  | Some idx -> (
    let free = t.classes.(idx) in
    match !free with
    | [] -> Bytes.create (class_size idx)
    | b :: rest ->
      free := rest;
      t.stats.hits <- t.stats.hits + 1;
      b)

let release t b =
  let len = Bytes.length b in
  match class_of len with
  | Some idx when class_size idx = len ->
    let free = t.classes.(idx) in
    if t.debug then begin
      (* Double-release detection: the exact buffer must not already sit
         in its free list. O(list) is fine — debug only. *)
      if List.exists (fun b' -> b' == b) !free then
        invalid_arg "Pool.release: double release";
      Bytes.fill b 0 len poison_byte
    end;
    t.stats.releases <- t.stats.releases + 1;
    free := b :: !free
  | Some _ | None ->
    (* Off-class size: not one of ours (or an oversized fallback). *)
    t.stats.dropped <- t.stats.dropped + 1

let free_buffers t = Array.fold_left (fun acc l -> acc + List.length !l) 0 t.classes
