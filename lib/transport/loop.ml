type handle = int
type tick_handle = int

type t = {
  t0 : float;                              (* wall time at [create] *)
  mutable clock_ns : int;                  (* monotone-clamped ns since t0 *)
  timers : (unit -> unit) Sim.Heap.t;
  mutable next_seq : int;
  cancelled : (int, unit) Hashtbl.t;
  readers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  writers : (Unix.file_descr, unit -> unit) Hashtbl.t;
  (* Cached fd lists for select(2), rebuilt only when the watch sets
     change: watch/unwatch churn is rare next to rounds, and folding the
     tables every round allocated a fresh list pair per iteration. *)
  mutable rd_cache : Unix.file_descr list;
  mutable wr_cache : Unix.file_descr list;
  mutable rd_dirty : bool;
  mutable wr_dirty : bool;
  (* End-of-phase hooks (see [on_tick]): run after timers fire and after
     fd dispatch, always before the loop can block in select(2). Keyed
     so an owner tearing itself down can deregister ([remove_tick]) and
     stop being kept alive by the loop. *)
  mutable ticks : (tick_handle * (unit -> unit)) list;
  mutable next_tick : tick_handle;
  mutable stopped : bool;
}

let create () =
  (* A peer closing mid-write must surface as EPIPE on the write (handled
     per-connection), not as a process-killing signal. *)
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    t0 = Unix.gettimeofday ();
    clock_ns = 0;
    timers = Sim.Heap.create ();
    next_seq = 0;
    cancelled = Hashtbl.create 16;
    readers = Hashtbl.create 16;
    writers = Hashtbl.create 16;
    rd_cache = [];
    wr_cache = [];
    rd_dirty = false;
    wr_dirty = false;
    ticks = [];
    next_tick = 0;
    stopped = false;
  }

let refresh_clock t =
  let raw = int_of_float ((Unix.gettimeofday () -. t.t0) *. 1e9) in
  if raw > t.clock_ns then t.clock_ns <- raw;
  t.clock_ns

let now_ns t = refresh_clock t
let now t = Int64.of_int (now_ns t)

(* -- timers ------------------------------------------------------------- *)

let schedule_ns t ~at_ns f =
  let at_ns = if at_ns < t.clock_ns then t.clock_ns else at_ns in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Sim.Heap.add_ns t.timers ~key_ns:at_ns ~seq f;
  seq

let schedule t ~delay f =
  let d = Int64.to_int delay in
  let d = if d < 0 then 0 else d in
  schedule_ns t ~at_ns:(refresh_clock t + d) f

let schedule_at t ~at f =
  schedule_ns t ~at_ns:(Int64.to_int (Int64.max at 0L)) f

let cancel t h = Hashtbl.replace t.cancelled h ()

(* A cancel of an already-fired handle parks one entry in [cancelled]
   permanently (exactly as [Sim.Engine] accepts, see its .mli note);
   clamp so such parked entries never show as negative pending work. *)
let pending_timers t = max 0 (Sim.Heap.length t.timers - Hashtbl.length t.cancelled)

let fire_due t =
  let now = refresh_clock t in
  let continue = ref true in
  while !continue && not (Sim.Heap.is_empty t.timers) do
    if Sim.Heap.peek_key_ns t.timers <= now then begin
      let seq = Sim.Heap.peek_seq t.timers in
      let f = Sim.Heap.pop_value t.timers in
      if Hashtbl.mem t.cancelled seq then Hashtbl.remove t.cancelled seq
      else f ()
    end
    else continue := false
  done

(* Seconds until the next live timer, within [0, cap]; [cap] when idle. *)
let select_timeout t ~cap =
  (* Skip cancelled heads so a pile of cancellations can't force a busy
     poll at their stale deadlines. *)
  let continue = ref true in
  while !continue && not (Sim.Heap.is_empty t.timers) do
    let seq = Sim.Heap.peek_seq t.timers in
    if Hashtbl.mem t.cancelled seq then begin
      Hashtbl.remove t.cancelled seq;
      let (_ : unit -> unit) = Sim.Heap.pop_value t.timers in
      ()
    end
    else continue := false
  done;
  if Sim.Heap.is_empty t.timers then cap
  else
    let gap_ns = Sim.Heap.peek_key_ns t.timers - t.clock_ns in
    if gap_ns <= 0 then 0.
    else Float.min cap (float_of_int gap_ns *. 1e-9)

(* -- file descriptors --------------------------------------------------- *)

let watch_read t fd f =
  if not (Hashtbl.mem t.readers fd) then t.rd_dirty <- true;
  Hashtbl.replace t.readers fd f

let watch_write t fd f =
  if not (Hashtbl.mem t.writers fd) then t.wr_dirty <- true;
  Hashtbl.replace t.writers fd f

let unwatch_write t fd =
  if Hashtbl.mem t.writers fd then begin
    Hashtbl.remove t.writers fd;
    t.wr_dirty <- true
  end

let unwatch t fd =
  if Hashtbl.mem t.readers fd then begin
    Hashtbl.remove t.readers fd;
    t.rd_dirty <- true
  end;
  unwatch_write t fd

let keys tbl = Hashtbl.fold (fun fd _ acc -> fd :: acc) tbl []

let read_fds t =
  if t.rd_dirty then begin
    t.rd_cache <- keys t.readers;
    t.rd_dirty <- false
  end;
  t.rd_cache

let write_fds t =
  if t.wr_dirty then begin
    t.wr_cache <- keys t.writers;
    t.wr_dirty <- false
  end;
  t.wr_cache

let on_tick t f =
  let h = t.next_tick in
  t.next_tick <- h + 1;
  t.ticks <- (h, f) :: t.ticks;
  h

let remove_tick t h = t.ticks <- List.filter (fun (h', _) -> h' <> h) t.ticks

(* -- driving ------------------------------------------------------------ *)

let max_block = 0.05

let run_ticks t = List.iter (fun (_, f) -> f ()) t.ticks

let round t =
  fire_due t;
  run_ticks t;
  let timeout = select_timeout t ~cap:max_block in
  let rds = read_fds t and wrs = write_fds t in
  let ready_r, ready_w =
    match Unix.select rds wrs [] timeout with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
  in
  (* A callback may unwatch (and close) fds that were also ready this
     round; dispatch only to fds still watched at call time. *)
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.readers fd with
      | Some f -> f ()
      | None -> ())
    ready_r;
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.writers fd with
      | Some f -> f ()
      | None -> ())
    ready_w;
  fire_due t;
  run_ticks t

let run_while t pred =
  t.stopped <- false;
  while (not t.stopped) && pred () do
    round t
  done

let run_for t ~span =
  let deadline = refresh_clock t + Int64.to_int span in
  run_while t (fun () -> refresh_clock t < deadline)

let stop t = t.stopped <- true
