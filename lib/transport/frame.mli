(** Length-prefixed message framing over the binary codec.

    TCP is a byte stream; this layer turns it into a sequence of
    self-delimiting frames. Every frame starts with an 11-byte header:

    {v
      offset  size  field
      0       4     magic "LPRD"
      4       2     protocol version, u16 LE (currently 1)
      6       1     kind: 0 = hello, 1 = protocol message
      7       4     payload length, u32 LE
      11      len   payload
    v}

    A [hello] payload is the sender's node id as a u32 LE — the first
    frame on every connection, identifying the peer. A [msg] payload is
    {!Core.Codec.encode_msg} bytes: the frozen wire format pinned by the
    golden-byte tests, so the version field only needs to move when that
    format does.

    Decoding is incremental ({!feed} accepts arbitrary byte slices) and
    total: malformed input yields an {!error}, never an exception and
    never a silent skip. A partial frame is not an error while the
    connection lives — {!feed} just waits for more bytes — but a stream
    that ends mid-frame is one ({!check_eof}). *)

val magic : string
(** ["LPRD"]. *)

val version : int
(** Protocol version this build speaks (1). Bump when the codec or the
    frame layout changes incompatibly. *)

val header_bytes : int
(** 11. *)

val default_max_frame : int
(** Largest accepted payload (16 MiB): a length field beyond this is a
    protocol violation (or garbage), not a request to allocate. *)

type frame =
  | Hello of Net.Node_id.t
  | Msg of Core.Msg.t

type error =
  | Bad_magic
  | Bad_version of int   (** the offered version *)
  | Oversized of int     (** the declared payload length *)
  | Decode_failed        (** well-framed payload the codec rejects *)
  | Short_read           (** stream ended inside a frame *)

val pp_error : Format.formatter -> error -> unit

(** {2 Encoding} *)

val encode_hello : Net.Node_id.t -> string
(** A complete hello frame (header + payload). *)

val encode_shared : Core.Msg.t -> string
(** A complete message frame — header and payload in one exact-size
    immutable buffer. Because the result is an immutable string, a
    multicast can enqueue the {e same} value by reference into every
    peer's write queue; per-peer write progress lives in the queues, so
    partial writes never force a copy. Raises
    {!Core.Codec.Encode_error} on unrepresentable values, as the codec
    does. Bumps {!encode_count}. *)

val encode_msg : Core.Msg.t -> string
(** Alias of {!encode_shared} (every message frame is shareable). *)

val encode_count : unit -> int
(** Message-frame encodes since process start. Diff around a multicast
    to assert the encode-once property: one frame to [k] peers bumps
    this by exactly 1. *)

(** {2 Incremental decoding} *)

type reader

val reader : ?max_frame:int -> ?pool:Pool.t -> unit -> reader
(** A fresh stream decoder (one per connection direction). With [pool],
    the accumulation buffer is acquired from it (and returned on
    {!release} or growth), so connection churn recycles buffers. *)

val release : reader -> unit
(** Returns the reader's buffer to its pool (if any) and poisons the
    reader. Call exactly once when the connection dies; the reader must
    not be fed afterwards. *)

val feed :
  reader -> bytes -> off:int -> len:int -> (frame -> unit) -> (unit, error) result
(** [feed r buf ~off ~len k] appends the slice to the stream and calls
    [k] on every frame completed by it, in order. On error the reader is
    poisoned: subsequent feeds return the same error (the connection
    must be dropped — after a framing error resynchronization is
    impossible). *)

(** {3 Zero-copy fill}

    [feed] copies from the caller's scratch into the reader; the
    reserve/commit triple lets [read(2)] land bytes {e directly} in the
    reader's buffer instead:

    {[
      Frame.reserve r 65536;
      let n = Unix.read fd (Frame.fill_buf r) (Frame.fill_off r)
                (Frame.fill_capacity r) in
      Frame.commit r n k
    ]}

    [fill_buf]/[fill_off]/[fill_capacity] are only valid until the next
    reader operation ([reserve] and [commit] both may move or replace
    the buffer). *)

val reserve : reader -> int -> unit
(** Make at least [n] bytes of writable tail available (compacting or
    growing as needed). No-op on a poisoned reader. *)

val fill_buf : reader -> Bytes.t
val fill_off : reader -> int
val fill_capacity : reader -> int

val commit : reader -> int -> (frame -> unit) -> (unit, error) result
(** [commit r n k] declares [n] bytes written at [fill_off] and parses
    any completed frames, exactly as {!feed} would. Raises
    [Invalid_argument] if [n] exceeds [fill_capacity]. *)

val check_eof : reader -> (unit, error) result
(** Call when the peer closes: [Error Short_read] if the stream ended
    inside a frame, [Ok ()] on a frame boundary. *)

val buffered : reader -> int
(** Bytes held waiting for the rest of a frame (diagnostics). *)
