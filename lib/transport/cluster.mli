(** An in-process Leopard cluster over real loopback TCP.

    [n] replicas, each with its own {!Conn} endpoint and
    {!Core.Platform}, share one {!Loop} in one process; every message
    between them is framed, written to a socket, read back and decoded —
    the full deployable stack, minus process isolation. A built-in
    client submits request batches round-robin to the non-leader
    replicas and measures confirmation (the (f+1)-th execution of a
    serial) exactly as the simulator's runner does.

    The client is a closed/open hybrid. With the overload controls off
    ([mempool_cap = 0] and [pace_on_pressure = false], the defaults) it
    is the seed's pure open loop. With them on, admission rejections
    re-credit the refused requests to the rate carry (bounded to a
    half-second token bucket) and put the rejecting target on a 100 ms
    retry-after cooldown, and targets whose egress queues are saturated
    ({!Conn.pressure} at or above 1) are skipped for the tick — so a
    sustained 10x overload degrades into bounded queues and counted
    rejections instead of unbounded memory growth.

    Wall-clock time replaces simulated time, so reports are measurements
    of this machine, not of the paper's testbed — the point is to
    exercise the real transport, not to reproduce Figure 8. *)

type t

val create :
  cfg:Core.Config.t ->
  ?load:float ->
  ?outbuf_hwm:int ->
  ?trace:Sim.Trace.t ->
  ?byzantine:(Net.Node_id.t * Core.Byzantine.t) list ->
  ?client_resend:Sim.Sim_time.span ->
  ?verify_domains:int ->
  ?data_dir:string ->
  ?fsync:Store.Wal.fsync_policy ->
  ?store_wrap:(Net.Node_id.t -> Core.Store.sink -> Core.Store.sink) ->
  ?obs:Obs.Registry.t ->
  ?metrics_out:string ->
  ?metrics_interval_ns:int ->
  unit ->
  t
(** Builds the cluster: binds [n] ephemeral loopback listeners, wires
    every pair, creates and starts the replicas. [load] is the client
    request rate (default 2000 req/s) — not offered until
    {!start_load}. [byzantine] assigns adversarial strategies by id
    (default: all honest). [client_resend] makes the built-in client
    re-send unconfirmed batches after that span (resend-tagged, so
    receivers arm the view-change watchdog — required for any TCP-plane
    view change, exactly as in [Core.Runner]).

    [verify_domains] sizes the shared verification pool: crypto checks
    run on worker domains ({!Core.Verify.pooled}) and completions are
    drained by a loop tick plus the pool's notify fd, so [read(2)] and
    [write(2)] never wait on crypto. Default: on, with
    [min 4 (recommended_domain_count - 1)] workers (at least 1);
    [Some 0] verifies inline on the loop thread (the pre-pool
    behaviour).

    Every replica gets a durable store ([Store.Store_file]) in its own
    WAL directory [node-<id>/] under [data_dir]. With no [data_dir] the
    cluster uses a per-run temp directory and removes it in {!close};
    an explicit [data_dir] is kept (failure artifacts, external
    inspection). [fsync] is the WAL durability policy (default
    [Never] — group-committed writes, durability left to the page
    cache). [store_wrap] decorates each node's sink (fault injection:
    [Core.Store.with_torn_tail]).

    [obs] attaches a metrics registry to every layer: per-replica
    consensus counters, per-node transport mirrors, the shared verify
    pool and the per-node WAL stores, plus the cluster's own
    [leopard_confirm_latency_ns] histogram and client aggregates.
    [metrics_out] writes the exposition text to that file — atomically,
    at most once per [metrics_interval_ns] (default 1 s) from a loop
    tick, and a final time in {!close}; when [metrics_out] is given
    without [obs], a private registry is created. *)

val loop : t -> Loop.t
val replicas : t -> Core.Replica.t array
val nodes : t -> Runtime.node array
val trace : t -> Sim.Trace.t

val start_load : t -> unit
val stop_load : t -> unit

val offered : t -> int
val confirmed : t -> int
(** Requests confirmed: counted once, at the (f+1)-th execution of the
    serial containing them. *)

val set_replica_down : t -> Net.Node_id.t -> bool -> unit
(** Fail-stop / revive a replica's transport (the state machine keeps
    its state, as with the simulator's [set_down]). A down replica is
    also dropped from the client's target rotation. *)

val restart_replica : t -> Net.Node_id.t -> unit
(** Process restart of one replica: the state machine dies (with its
    store's un-flushed buffer), a replacement is rebuilt from the node's
    WAL directory via [Core.Replica.recover], takes over the node's
    delivery handler and rejoins immediately. Unlike
    {!set_replica_down}, in-memory state does NOT survive — only what
    the store made durable. *)

val data_dir : t -> string option
(** The explicit data directory, when one was passed to {!create}
    ([None] for the auto temp dir, which {!close} removes). *)

val set_fault_filter :
  t -> Net.Node_id.t -> (dst:Net.Node_id.t -> Core.Msg.t -> Conn.fault_verdict) option -> unit
(** Installs (or removes) replica [id]'s outbound link-fault filter (see
    {!Conn.set_fault}); the chaos harness builds partitions and
    drop/delay/duplicate rules out of these. *)

val faulted : t -> int
(** {!Conn.faulted}, summed over nodes. *)

val transport_stats : t -> Conn.stats
(** Data-plane counters ({!Conn.stats}) summed over nodes — a fresh
    snapshot record each call. *)

val resends : t -> int
(** Client re-send copies submitted so far. *)

val rejected : t -> int
(** Requests the replicas refused at mempool admission ([Rejected]
    verdicts seen by the client, in requests). Zero with the overload
    controls off. *)

val throttled : t -> int
(** Target-ticks the client skipped because the target node's egress
    pressure was at or above 1. Zero with the overload controls off. *)

val view_changes : t -> int
(** Replica view entries beyond view 1, summed over replicas. *)

val vc_triggers : t -> int
(** View-change triggers fired (replicas giving up on a view). *)

val verify_stats : t -> Exec.Pool.stats option
(** Verification-pool counters ([None] when verification is inline). *)

val metrics_report : t -> string option
(** {!Obs.Registry.expose} of the cluster's registry, if one is
    attached — the full four-layer exposition text. *)

val max_view : t -> int
(** Highest view any up replica is in (1 = no view change yet). *)

val run_while : t -> (t -> bool) -> unit
(** Drives the shared loop while the predicate holds. *)

val state_converged : t -> bool
(** Every up replica reports the same [executed_up_to] and the same
    {!Core.Replica.state_hash}. *)

val ledgers_agree : t -> bool
(** Position-wise equality of the up replicas' executed ledgers (the
    safety check, over however far each has executed). *)

val close : t -> unit

(** {2 One-shot runs} *)

type report = {
  n : int;
  offered : int;
  confirmed : int;
  rejected : int;            (** admission rejections seen by the client *)
  throughput : float;        (** confirmed req/s over the load window *)
  latency : Stats.Histogram.t;   (** client-perceived confirmation latency *)
  executed_blocks : int;
  wall_sec : float;          (** load window, wall-clock seconds *)
  dropped_frames : int;      (** {!Conn.dropped}, summed over nodes *)
  transport : Conn.stats;    (** {!transport_stats} snapshot at run end *)
  state_hashes : (Net.Node_id.t * Crypto.Hash.t) list;
  converged : bool;          (** {!state_converged} after the drain *)
  ledgers_agree : bool;      (** position-wise honest-ledger equality *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  cfg:Core.Config.t ->
  ?load:float ->
  ?duration:Sim.Sim_time.span ->
  ?drain:Sim.Sim_time.span ->
  ?min_confirmed:int ->
  ?kill:Net.Node_id.t * Sim.Sim_time.span * Sim.Sim_time.span option ->
  ?trace:Sim.Trace.t ->
  ?verify_domains:int ->
  ?data_dir:string ->
  ?fsync:Store.Wal.fsync_policy ->
  ?obs:Obs.Registry.t ->
  ?metrics_out:string ->
  ?metrics_interval_ns:int ->
  unit ->
  report
(** Creates a cluster, offers load for [duration] (default 5 s; stops
    early once [min_confirmed] is reached, when given), then drains —
    load off, loop running — until {!state_converged} or the [drain]
    bound (default 10 s). [kill] fail-stops a replica at an offset into
    the run and optionally revives it later. [data_dir]/[fsync]
    configure the per-node durable stores (see {!create}). The cluster
    is closed before returning. *)
