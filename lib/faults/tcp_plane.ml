open Sim

let cfg_of (sc : Scenario.t) =
  Core.Config.make ~n:sc.Scenario.n ~alpha:10 ~bft_size:2 ~k:16
    ?checkpoint_interval:sc.Scenario.checkpoint_interval ~payload:64
    ~datablock_timeout:(Sim_time.ms 20) ~proposal_timeout:(Sim_time.ms 30)
    ~view_timeout:(Sim_time.ms 1500) ~fetch_grace:(Sim_time.ms 200)
    ~cost:Crypto.Cost_model.free
    ~leader_generates_datablocks:sc.Scenario.leader_generates
    ?mempool_cap:sc.Scenario.mempool_cap ()

let run ?(seed = 42L) ?load ?data_root ?metrics_out (sc : Scenario.t) =
  let t0 = Unix.gettimeofday () in
  let cfg = cfg_of sc in
  let n = sc.Scenario.n in
  let load =
    match (load, sc.Scenario.load) with
    | Some l, _ -> l
    | None, Some l -> l
    | None, None -> 800.
  in
  let trace = Trace.create ~enabled:true () in
  (* With a [data_root], node WAL directories live under
     <root>/<scenario>/ and survive a failing run as artifacts; a
     passing run deletes them. Without one the cluster's own temp dir is
     used and always removed in [close]. *)
  let data_dir =
    Option.map (fun root -> Filename.concat root sc.Scenario.name) data_root
  in
  let store_wrap =
    match sc.Scenario.torn_tail with
    | [] -> None
    | faults ->
      Some
        (fun id sink ->
          match List.assoc_opt id faults with
          | None -> sink
          | Some drop -> Core.Store.with_torn_tail ~drop sink)
  in
  let cl =
    Transport.Cluster.create ~cfg ~load ~trace ~byzantine:sc.Scenario.byzantine
      ~client_resend:(Sim_time.ms 500) ?data_dir ?store_wrap ?metrics_out ()
  in
  let outcome =
  Fun.protect
    ~finally:(fun () -> Transport.Cluster.close cl)
    (fun () ->
      let loop = Transport.Cluster.loop cl in
      let replicas = Transport.Cluster.replicas cl in
      let inj = Injector.create ~n ~rng:(Rng.create seed) in
      for src = 0 to n - 1 do
        Transport.Cluster.set_fault_filter cl src
          (Some
             (fun ~dst msg ->
               match Injector.decide inj ~src ~dst msg with
               | Injector.Pass -> Transport.Conn.Pass
               | Injector.Drop -> Transport.Conn.Fault_drop
               | Injector.Delay d -> Transport.Conn.Fault_delay d
               | Injector.Duplicate -> Transport.Conn.Fault_duplicate))
      done;
      List.iter
        (fun (e : Scenario.event) ->
          ignore
            (Transport.Loop.schedule loop ~delay:e.Scenario.at (fun () ->
                 Trace.recordf trace ~at:(Transport.Loop.now loop) ~tag:"chaos"
                   "%a" Scenario.pp_action e.Scenario.action;
                 match e.Scenario.action with
                 | Scenario.Crash id -> Transport.Cluster.set_replica_down cl id true
                 | Scenario.Revive id ->
                   Transport.Cluster.set_replica_down cl id false
                 | Scenario.Restart id -> Transport.Cluster.restart_replica cl id
                 | link_fault -> ignore (Injector.apply inj link_fault : bool))
              : Transport.Loop.handle))
        sc.Scenario.events;
      Transport.Cluster.start_load cl;
      let start_ns = Transport.Loop.now_ns loop in
      let heal_ns = start_ns + Int64.to_int (Scenario.last_event_at sc) in
      Transport.Cluster.run_while cl (fun _ -> Transport.Loop.now_ns loop < heal_ns);
      let confirmed_at_heal = Transport.Cluster.confirmed cl in
      let exec id =
        Core.Ledger.executed_up_to (Core.Replica.ledger replicas.(id))
      in
      let byz id = List.mem_assoc id sc.Scenario.byzantine in
      let honest_frontier () =
        let acc = ref 0 in
        for id = 0 to n - 1 do
          if not (byz id) then acc := max !acc (exec id)
        done;
        !acc
      in
      let state_sync id =
        exec id > 0 && exec id + cfg.Core.Config.k >= honest_frontier ()
      in
      let equivocations () =
        Array.fold_left
          (fun acc r ->
            acc + List.length (Core.Datablock_pool.equivocations (Core.Replica.pool r)))
          0 replicas
      in
      (* Wall-clock is expensive: once every obligation the oracle will
         check is already satisfied, stop burning real seconds. *)
      let obligations_met () =
        Transport.Cluster.confirmed cl > confirmed_at_heal + 100
        && ((not sc.Scenario.expect.Scenario.view_change)
           || Transport.Cluster.max_view cl >= 2)
        && ((not sc.Scenario.expect.Scenario.equivocation) || equivocations () > 0)
        && match sc.Scenario.expect.Scenario.state_sync with
           | None -> true
           | Some id -> state_sync id
      in
      let deadline_ns = start_ns + Int64.to_int (Scenario.duration sc) in
      Transport.Cluster.run_while cl (fun _ ->
          Transport.Loop.now_ns loop < deadline_ns && not (obligations_met ()));
      Transport.Cluster.stop_load cl;
      let drain_ns = Transport.Loop.now_ns loop + Int64.to_int (Sim_time.s 5) in
      Transport.Cluster.run_while cl (fun cl ->
          Transport.Loop.now_ns loop < drain_ns
          && not (Transport.Cluster.state_converged cl));
      let verdict =
        Oracle.evaluate ~scenario:sc
          ~safety:(Transport.Cluster.ledgers_agree cl)
          ~confirmed_at_heal
          ~confirmed:(Transport.Cluster.confirmed cl)
          ~final_view:(Transport.Cluster.max_view cl)
          ~equivocations:(equivocations ()) ~state_sync
      in
      { Oracle.scenario = sc;
        plane = "tcp";
        seed;
        verdict;
        confirmed_at_heal;
        confirmed = Transport.Cluster.confirmed cl;
        final_view = Transport.Cluster.max_view cl;
        view_changes = Transport.Cluster.view_changes cl;
        equivocations = equivocations ();
        wall_sec = Unix.gettimeofday () -. t0;
        trace = Oracle.render_trace trace })
  in
  (match data_dir with
  | Some dir when Oracle.outcome_ok outcome ->
    Store.Store_file.remove_dir dir
  | _ -> ());
  outcome
