(** Run a scenario on the real-socket loopback-TCP cluster.

    Same scenario, same injector, same oracle as [Sim_plane] — but event
    times are wall-clock offsets, the fault filters sit on each node's
    {!Transport.Conn} (outbound, pre-framing), and crash/revive use the
    cluster's [set_replica_down]. Wall-clock runs are not byte-for-byte
    reproducible (the trace records real timings); determinism claims
    belong to the sim plane, the TCP plane demonstrates the same faults
    against real sockets.

    The run ends early once the oracle's obligations are already met
    (progress resumed after heal, any expected view change observed, up
    replicas converged), bounded by [Scenario.duration] plus a drain. *)

val run :
  ?seed:int64 ->
  ?load:float ->
  ?data_root:string ->
  ?metrics_out:string ->
  Scenario.t ->
  Oracle.outcome
(** [load] defaults to the scenario's [load] override when present, 800
    req/s otherwise. The cluster always runs with client re-sends
    (500 ms) and a 1.5 s view timeout.

    [data_root] puts the per-node WAL directories under
    [<data_root>/<scenario-name>/]; a failing run keeps them as
    debugging artifacts, a passing run deletes them. Without it the
    cluster uses (and always removes) a temp directory.

    [metrics_out] attaches a metrics registry to the cluster and writes
    the exposition dump to that file (periodic + final; see
    {!Transport.Cluster.create}). *)
