(** Run a scenario on the discrete-event simulator.

    The run is fully deterministic: the workload, the network, the
    replicas and the injector all derive from the one seed, and the
    returned {!Oracle.outcome.trace} is a rendering of the shared
    protocol trace (with [chaos] entries interleaved at their fire
    instants) — re-running the same [(seed, scenario)] yields a
    byte-identical string. *)

val run : ?seed:int64 -> ?load:float -> Scenario.t -> Oracle.outcome
(** Builds a [Core.Runner] cluster sized by the scenario, installs the
    injector as the network's fault hook, schedules the scenario's
    events on the engine, drives the simulation for
    [Scenario.duration] and evaluates the oracle. Client re-sends are
    always on (1 s) — they arm the view-change watchdog. [load]
    defaults to the scenario's [load] override when present, otherwise
    by scale: 400 req/s at n < 16, 800 below 64, 1200 from 64. *)
