(** Post-run invariant checking for chaos scenarios.

    Two invariants are asserted after every run, on every plane:

    - {b safety}: no conflicting commits at any serial — the honest
      replicas' executed ledgers agree position-wise wherever they
      overlap (Theorem 5.3);
    - {b liveness}: commit progress resumes within the scenario's
      settle bound after the last fault event — the confirmed-request
      count measured at the end strictly exceeds the count at
      {!Scenario.last_event_at}.

    Scenario expectations add one-sided checks on top: a required view
    change, required equivocation evidence, a lagging replica required
    to state-sync back to the honest frontier. *)

type check = { label : string; ok : bool; detail : string }

type verdict = check list

val ok : verdict -> bool

(** Everything a plane measured about one run; the oracle's verdict plus
    the raw numbers and the rendered trace (byte-identical across
    same-seed sim runs). *)
type outcome = {
  scenario : Scenario.t;
  plane : string;  (** ["sim"] or ["tcp"] *)
  seed : int64;
  verdict : verdict;
  confirmed_at_heal : int;  (** confirmed when the last event fired *)
  confirmed : int;          (** confirmed at the end of the run *)
  final_view : int;
  view_changes : int;
  equivocations : int;
  wall_sec : float;
  trace : string;
}

val outcome_ok : outcome -> bool

val evaluate :
  scenario:Scenario.t ->
  safety:bool ->
  confirmed_at_heal:int ->
  confirmed:int ->
  final_view:int ->
  equivocations:int ->
  state_sync:(Net.Node_id.t -> bool) ->
  verdict
(** Builds the verdict: the two standing invariants plus whichever
    expectations the scenario declares. [state_sync id] must say whether
    replica [id] has rejoined the honest execution frontier. *)

val render_trace : Sim.Trace.t -> string
(** One {!Sim.Trace.pp_entry} line per entry; the byte-identical-replay
    artifact for sim runs. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_outcome : Format.formatter -> outcome -> unit
(** One line: [PASS sim leader-crash n=4 ...] plus failing checks. *)

val pp_outcomes : Format.formatter -> outcome list -> unit
(** The corpus summary table. *)
