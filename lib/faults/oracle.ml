type check = { label : string; ok : bool; detail : string }

type verdict = check list

let ok v = List.for_all (fun c -> c.ok) v

type outcome = {
  scenario : Scenario.t;
  plane : string;
  seed : int64;
  verdict : verdict;
  confirmed_at_heal : int;
  confirmed : int;
  final_view : int;
  view_changes : int;
  equivocations : int;
  wall_sec : float;
  trace : string;
}

let outcome_ok o = ok o.verdict

let evaluate ~(scenario : Scenario.t) ~safety ~confirmed_at_heal ~confirmed
    ~final_view ~equivocations ~state_sync =
  let checks =
    [ { label = "safety";
        ok = safety;
        detail = "honest executed ledgers agree position-wise" };
      { label = "liveness";
        ok = confirmed > confirmed_at_heal;
        detail =
          Printf.sprintf "confirmed %d -> %d within the settle bound"
            confirmed_at_heal confirmed } ]
  in
  let checks =
    if scenario.expect.view_change then
      checks
      @ [ { label = "view-change";
            ok = final_view >= 2;
            detail = Printf.sprintf "final view %d (expected >= 2)" final_view } ]
    else checks
  in
  let checks =
    if scenario.expect.equivocation then
      checks
      @ [ { label = "equivocation-detected";
            ok = equivocations > 0;
            detail = Printf.sprintf "%d equivocation pairs collected" equivocations } ]
    else checks
  in
  let checks =
    if scenario.expect.no_equivocation then
      checks
      @ [ { label = "no-double-vote";
            ok = equivocations = 0;
            detail =
              Printf.sprintf
                "%d equivocation pairs (restarted replicas must re-vote identically)"
                equivocations } ]
    else checks
  in
  match scenario.expect.state_sync with
  | None -> checks
  | Some id ->
    checks
    @ [ { label = "state-sync";
          ok = state_sync id;
          detail =
            Format.asprintf "replica %a back at the honest execution frontier"
              Net.Node_id.pp id } ]

(* Deterministic rendering of a run's trace: entry per line via
   [Trace.pp_entry]. For same-seed sim runs the result is byte-identical,
   which is what the replay test pins. *)
let render_trace trace =
  let buf = Buffer.create 65536 in
  let fmt = Format.formatter_of_buffer buf in
  List.iter
    (fun e -> Format.fprintf fmt "%a@." Sim.Trace.pp_entry e)
    (Sim.Trace.entries trace);
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let pp_check fmt c =
  Format.fprintf fmt "%s %-22s %s" (if c.ok then "ok  " else "FAIL") c.label c.detail

let pp_verdict fmt v =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_check fmt v

let pp_outcome fmt o =
  Format.fprintf fmt "%s %-3s %-24s n=%-3d seed=%-4Ld v%d vc=%d conf=%d->%d eq=%d %.1fs"
    (if outcome_ok o then "PASS" else "FAIL")
    o.plane o.scenario.Scenario.name o.scenario.Scenario.n o.seed o.final_view
    o.view_changes o.confirmed_at_heal o.confirmed o.equivocations o.wall_sec;
  if not (outcome_ok o) then
    List.iter
      (fun c -> if not c.ok then Format.fprintf fmt "@,  FAIL %s: %s" c.label c.detail)
      o.verdict

let pp_outcomes fmt outcomes =
  let passed = List.length (List.filter outcome_ok outcomes) in
  Format.fprintf fmt "@[<v>%a@,%d/%d scenarios passed@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_outcome)
    outcomes passed (List.length outcomes)
