open Scenario

let leader : Net.Node_id.t = 1

let fault_bound n = (n - 1) / 3

(* Non-leader ids in ascending order: 0, 2, 3, … *)
let non_leaders n =
  List.filter (fun id -> id <> leader) (List.init n Fun.id)

let s = Sim.Sim_time.s
let ms = Sim.Sim_time.ms

let expect_vc = { no_expect with view_change = true }

let leader_crash ~n =
  make ~name:"leader-crash"
    ~summary:"fail-stop the leader mid-serial; a view change elects a successor"
    ~n
    ~events:[ ev (s 3) (Crash leader); ev (s 9) (Revive leader) ]
    ~settle:(s 12) ~expect:expect_vc ()

let leader_crash_checkpoint ~n =
  make ~name:"leader-crash-checkpoint"
    ~summary:"crash the leader while checkpoints are in flight (interval 2)"
    ~n ~checkpoint_interval:2
    ~events:[ ev (s 3) (Crash leader); ev (s 9) (Revive leader) ]
    ~settle:(s 12) ~expect:expect_vc ()

let f_crashes ~n =
  let victims =
    List.filteri (fun i _ -> i < fault_bound n) (non_leaders n)
  in
  make ~name:"f-crashes"
    ~summary:"f simultaneous non-leader crashes; the quorum carries on"
    ~n
    ~events:(List.map (fun id -> ev (s 3) (Crash id)) victims)
    ~settle:(s 10) ()

(* Minority side of the split: the leader plus the f - 1 highest ids
   (never the next leader, replica 2). The cut is asymmetric — the
   minority's outbound messages are dropped, its inbound delivered — so
   the majority (exactly 2f + 1 replicas) sees a mute leader, changes
   view among itself, and the minority still learns the new view. *)
let partition_quorum ~n =
  let f = fault_bound n in
  let minority =
    leader :: List.filteri (fun i _ -> i < f - 1)
                (List.rev (non_leaders n))
  in
  make ~name:"partition-quorum"
    ~summary:"asymmetric partition across the quorum boundary, leader on the small side"
    ~n
    ~events:
      (List.map (fun id -> ev (ms 2500) (Drop (rule ~src:id ()))) minority
      @ [ ev (s 9) Heal ])
    ~settle:(s 12) ~expect:expect_vc ()

let slow_leader ~n =
  make ~name:"slow-leader"
    ~summary:"delay every leader message past the view timeout; progress stalls until a view change"
    ~n
    ~events:
      [ ev (ms 2500) (Delay (rule ~src:leader (), ms 2500)); ev (s 9) Heal ]
    ~settle:(s 12) ~expect:expect_vc ()

let silence_leader ~n =
  make ~name:"silence-leader"
    ~summary:"Byzantine leader sends nothing at all; the watchdog votes it out"
    ~n
    ~byzantine:[ (leader, Core.Byzantine.Silent) ]
    ~settle:(s 14) ~expect:expect_vc ()

let equivocating_leader ~n =
  make ~name:"equivocating-leader"
    ~summary:"leader emits conflicting datablocks under one counter; evidence is collected, safety holds"
    ~n
    ~byzantine:[ (leader, Core.Byzantine.Equivocate_datablocks) ]
    ~leader_generates:true ~settle:(s 12)
    ~expect:{ no_expect with equivocation = true } ()

let lagging_replica ~n =
  let victim = 0 in
  make ~name:"lagging-replica"
    ~summary:"isolate one replica past the watermark window; it must state-sync back"
    ~n
    ~events:[ ev (s 2) (Partition [ [ victim ] ]); ev (s 7) Heal ]
    ~settle:(s 12)
    ~expect:{ no_expect with state_sync = Some victim } ()

let duplicate_storm ~n =
  make ~name:"duplicate-storm"
    ~summary:"deliver every message twice; dedup keeps safety and throughput"
    ~n
    ~events:[ ev (s 1) (Duplicate (rule ())); ev (s 6) Heal ]
    ~settle:(s 8) ()

let expect_no_double_vote = { no_expect with no_equivocation = true }

let leader_restart ~n =
  make ~name:"leader-restart"
    ~summary:"process-restart the leader mid-serial; it recovers from its store and never double-votes"
    ~n
    ~events:[ ev (s 3) (Restart leader) ]
    ~settle:(s 12) ~expect:expect_no_double_vote ()

let restart_checkpoint ~n =
  let victim = 0 in
  make ~name:"restart-checkpoint"
    ~summary:"restart a replica while checkpoints truncate its log (interval 2); snapshot + replay agree"
    ~n ~checkpoint_interval:2
    ~events:[ ev (s 3) (Restart victim) ]
    ~settle:(s 12)
    ~expect:{ expect_no_double_vote with state_sync = Some victim } ()

(* No [no_equivocation] here: the torn tail can lose a [Db_counter]
   record, so the recovered replica may legitimately reuse a counter —
   genuine evidence against it. Safety and liveness must still hold. *)
let restart_torn_tail ~n =
  let victim = 0 in
  make ~name:"restart-torn-tail"
    ~summary:"restart a replica whose WAL lost its last 64 records; the cluster stays safe and live"
    ~n ~torn_tail:[ (victim, 64) ]
    ~events:[ ev (s 3) (Restart victim) ]
    ~settle:(s 12) ()

let restart_storm ~n =
  let victims = List.filteri (fun i _ -> i < fault_bound n) (non_leaders n) in
  make ~name:"restart-storm"
    ~summary:"restart f non-leaders back-to-back; every recovery re-votes identically"
    ~n
    ~events:
      (List.mapi (fun i id -> ev (ms (3000 + (500 * i))) (Restart id)) victims)
    ~settle:(s 12) ~expect:expect_no_double_vote ()

(* No fault events: the sustained overload *is* the fault. Every
   replica's mempool is admission-bounded well below what the offered
   rate would accumulate; the oracle's standing safety and liveness
   checks assert that commits keep flowing while admission sheds the
   excess (rejections are counted, not fatal). *)
let overload_burst ~n =
  make ~name:"overload-burst"
    ~summary:"~10x sustained load against a small admission cap; mempools stay bounded, commits continue"
    ~n ~mempool_cap:512 ~load:8000.
    ~settle:(s 10) ()

(* One slow non-leader consumer: everything sent to it arrives late, so
   sender-side queues toward it stay hot. The quorum must keep
   confirming through the laggard window and after the heal — on the
   TCP plane the kind-aware egress policy keeps consensus frames
   flowing while bulk datablocks absorb any drops. *)
let slow_peer ~n =
  let victim = List.hd (non_leaders n) in
  make ~name:"slow-peer"
    ~summary:"all traffic to one non-leader delayed 300 ms; the quorum stays live"
    ~n
    ~events:[ ev (s 2) (Delay (rule ~dst:victim (), ms 300)); ev (s 8) Heal ]
    ~settle:(s 10) ()

let all =
  [ (fun ~n -> leader_crash ~n);
    (fun ~n -> leader_crash_checkpoint ~n);
    (fun ~n -> f_crashes ~n);
    (fun ~n -> partition_quorum ~n);
    (fun ~n -> slow_leader ~n);
    (fun ~n -> silence_leader ~n);
    (fun ~n -> equivocating_leader ~n);
    (fun ~n -> lagging_replica ~n);
    (fun ~n -> duplicate_storm ~n);
    (fun ~n -> leader_restart ~n);
    (fun ~n -> restart_checkpoint ~n);
    (fun ~n -> restart_torn_tail ~n);
    (fun ~n -> restart_storm ~n);
    (fun ~n -> overload_burst ~n);
    (fun ~n -> slow_peer ~n) ]

let names = List.map (fun b -> (b ~n:4).name) all

let find name = List.find_opt (fun b -> (b ~n:4).name = name) all
