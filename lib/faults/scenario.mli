(** The declarative fault-schedule DSL.

    A scenario is a named, fixed-size ([n]) schedule of timed fault
    events plus the invariants the run must uphold ({!expect}); together
    with an RNG seed it fully determines a chaos run on either plane —
    re-running [(seed, scenario)] in the simulator yields a
    byte-identical trace (see [Sim_plane]).

    Grammar (see DESIGN.md §9):
    {v
      scenario := name summary n byzantine* tweak* event* settle expect
      event    := at action
      action   := Crash id | Revive id | Restart id
                | Partition [[ids];[ids];…] | Heal
                | Drop rule | Delay (rule, span) | Duplicate rule
      rule     := src? dst? kinds? prob?
    v}

    [Crash]/[Revive] are {e transport-partition} faults: the node's
    links go down and come back ({!Net.Network.set_down} / cluster
    [set_replica_down]), but its in-memory state survives untouched —
    they model an unreachable replica, not a dead one. [Restart] is the
    {e process} fault: the replica loses everything it did not make
    durable and is rebuilt from its store via [Core.Replica.recover]
    ([Core.Runner.restart_replica] / cluster [restart_replica]).
    Everything else is a link fault evaluated per wire crossing by
    [Injector]. *)

(** A message predicate for link faults. [None] fields match anything;
    [prob] applies the fault to each matching message independently with
    that probability (drawn from the injector's seeded RNG). *)
type rule = {
  src : Net.Node_id.t option;
  dst : Net.Node_id.t option;
  kinds : Core.Msg.kind list option;
  prob : float;
}

val rule :
  ?src:Net.Node_id.t -> ?dst:Net.Node_id.t -> ?kinds:Core.Msg.kind list ->
  ?prob:float -> unit -> rule
(** Defaults: match every message, probability 1. *)

type action =
  | Crash of Net.Node_id.t
  | Revive of Net.Node_id.t
  | Restart of Net.Node_id.t
      (** kill the process and recover it from its durable store: the
          WAL-backed stores on the TCP plane, in-memory sinks in the
          simulator. Un-flushed writes are lost. *)
  | Partition of Net.Node_id.t list list
      (** disjoint groups; unlisted replicas form one implicit further
          group. Messages crossing a group boundary are dropped (both
          directions) — [Partition [[v]]] isolates [v]. *)
  | Heal  (** clears the partition and every installed link rule *)
  | Drop of rule
  | Delay of rule * Sim.Sim_time.span
  | Duplicate of rule

type event = { at : Sim.Sim_time.span; action : action }

val ev : Sim.Sim_time.span -> action -> event

(** What the oracle must additionally assert (safety and liveness are
    always checked). Expectations are one-sided requirements: an
    unexpected-but-harmless view change does not fail a run. *)
type expect = {
  view_change : bool;     (** some honest replica must reach view >= 2 *)
  equivocation : bool;    (** equivocation evidence must be collected *)
  no_equivocation : bool;
      (** no equivocation evidence may exist — the restart-safety
          oracle: a recovering replica must never vote differently for
          a serial it already voted on. (Not the default: torn-tail
          runs legitimately produce counter-reuse evidence.) *)
  state_sync : Net.Node_id.t option;
      (** this replica must catch back up to the honest execution
          frontier (within one watermark window) *)
}

val no_expect : expect

type t = {
  name : string;
  summary : string;
  n : int;
  byzantine : (Net.Node_id.t * Core.Byzantine.t) list;
  leader_generates : bool;
      (** config tweak: let the leader generate datablocks (needed for
          the equivocating-leader scenario) *)
  checkpoint_interval : int option;  (** config tweak *)
  mempool_cap : int option;
      (** config tweak: bound every replica's mempool admission (the
          overload scenarios; [None] = the default unbounded pool) *)
  load : float option;
      (** client request rate override in req/s ([None] = the plane's
          default); how the overload scenarios encode "10x capacity" *)
  torn_tail : (Net.Node_id.t * int) list;
      (** store fault: drop the last [k] appended records of this
          replica's log before any recovery reads it
          ([Core.Store.with_torn_tail]) — models a truncated WAL tail
          surviving an fsync-less crash *)
  events : event list;
  settle : Sim.Sim_time.span;
      (** extra run time after the last event; the liveness bound *)
  expect : expect;
}

val make :
  name:string ->
  summary:string ->
  n:int ->
  ?byzantine:(Net.Node_id.t * Core.Byzantine.t) list ->
  ?leader_generates:bool ->
  ?checkpoint_interval:int ->
  ?mempool_cap:int ->
  ?load:float ->
  ?torn_tail:(Net.Node_id.t * int) list ->
  ?events:event list ->
  ?settle:Sim.Sim_time.span ->
  ?expect:expect ->
  unit ->
  t

val last_event_at : t -> Sim.Sim_time.t
(** Instant of the last scheduled event (0 with no events) — the point
    liveness is measured from: commit progress must resume between here
    and {!duration}. *)

val duration : t -> Sim.Sim_time.span
(** [last_event_at + settle]: total run time. *)

val pp_rule : Format.formatter -> rule -> unit
val pp_action : Format.formatter -> action -> unit
val pp : Format.formatter -> t -> unit
(** One-line [name @ n: summary]. *)
