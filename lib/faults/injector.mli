(** The plane-agnostic fault-injection engine.

    Compiles a scenario's link-fault actions ([Partition]/[Heal]/
    [Drop]/[Delay]/[Duplicate]) into active state, and renders a
    {!decision} for every message crossing a wire. Both planes drive
    the same injector — the simulator from {!Net.Network.set_fault_hook}
    (per wire crossing, post-egress) and the TCP cluster from per-node
    {!Transport.Conn.set_fault} filters (pre-framing) — so one scenario
    means the same faults everywhere.

    Probabilistic rules draw from the RNG given at creation; seeding it
    from the run's root seed makes every decision sequence replayable. *)

type t

type decision =
  | Pass
  | Drop
  | Delay of Sim.Sim_time.span
  | Duplicate

val create : n:int -> rng:Sim.Rng.t -> t

val apply : t -> Scenario.action -> bool
(** Installs a link-fault action; returns [false] for [Crash]/[Revive],
    which are process faults the plane must apply itself. [Partition]
    replaces any active partition; [Drop]/[Delay]/[Duplicate] append a
    rule (first match wins); [Heal] clears partition and rules. *)

val decide : t -> src:Net.Node_id.t -> dst:Net.Node_id.t -> Core.Msg.t -> decision
(** The verdict for one message: [Drop] if an active partition separates
    [src] from [dst], otherwise the effect of the first matching rule
    (subject to its probability), otherwise [Pass]. *)

val active_rules : t -> int
val partitioned : t -> bool
