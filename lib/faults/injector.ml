type decision =
  | Pass
  | Drop
  | Delay of Sim.Sim_time.span
  | Duplicate

type what = W_drop | W_delay of Sim.Sim_time.span | W_duplicate

type active = { rule : Scenario.rule; what : what }

type t = {
  n : int;
  rng : Sim.Rng.t;
  mutable group_of : int array option;  (* group index per replica id *)
  mutable rules : active list;          (* install order; first match wins *)
}

let create ~n ~rng = { n; rng; group_of = None; rules = [] }

let set_partition t groups =
  let g = Array.make t.n (-1) in
  List.iteri (fun gi ids -> List.iter (fun id -> g.(id) <- gi) ids) groups;
  (* unlisted replicas share one implicit further group *)
  let implicit = List.length groups in
  Array.iteri (fun id gi -> if gi < 0 then g.(id) <- implicit) g;
  t.group_of <- Some g

let apply t (a : Scenario.action) =
  match a with
  | Scenario.Crash _ | Scenario.Revive _ | Scenario.Restart _ -> false
  | Scenario.Partition groups ->
    set_partition t groups;
    true
  | Scenario.Heal ->
    t.group_of <- None;
    t.rules <- [];
    true
  | Scenario.Drop r ->
    t.rules <- t.rules @ [ { rule = r; what = W_drop } ];
    true
  | Scenario.Delay (r, d) ->
    t.rules <- t.rules @ [ { rule = r; what = W_delay d } ];
    true
  | Scenario.Duplicate r ->
    t.rules <- t.rules @ [ { rule = r; what = W_duplicate } ];
    true

let matches (r : Scenario.rule) ~src ~dst kind =
  (match r.src with None -> true | Some s -> Net.Node_id.equal s src)
  && (match r.dst with None -> true | Some d -> Net.Node_id.equal d dst)
  && match r.kinds with None -> true | Some ks -> List.mem kind ks

let decide t ~src ~dst msg =
  let cut =
    match t.group_of with
    | None -> false
    | Some g -> g.(src) <> g.(dst)
  in
  if cut then Drop
  else if t.rules == [] then Pass
  else begin
    let kind = Core.Msg.kind msg in
    let rec go = function
      | [] -> Pass
      | { rule; what } :: rest ->
        if matches rule ~src ~dst kind then
          (* the RNG is drawn only on a match, and only for p < 1, so
             deterministic scenarios never consume randomness *)
          if rule.prob >= 1.0 || Sim.Rng.float t.rng 1.0 < rule.prob then
            match what with
            | W_drop -> Drop
            | W_delay d -> Delay d
            | W_duplicate -> Duplicate
          else Pass
        else go rest
    in
    go t.rules
  end

let active_rules t = List.length t.rules
let partitioned t = t.group_of <> None
