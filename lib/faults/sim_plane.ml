open Sim

let default_load n = if n >= 64 then 1200. else if n >= 16 then 800. else 400.

let cfg_of (sc : Scenario.t) =
  Core.Config.make ~n:sc.Scenario.n ~alpha:10 ~bft_size:2 ~k:16
    ?checkpoint_interval:sc.Scenario.checkpoint_interval ~payload:64
    ~datablock_timeout:(Sim_time.ms 200) ~proposal_timeout:(Sim_time.ms 300)
    ~view_timeout:(Sim_time.s 1) ~fetch_grace:(Sim_time.ms 200)
    ~cost:Crypto.Cost_model.free
    ~leader_generates_datablocks:sc.Scenario.leader_generates
    ?mempool_cap:sc.Scenario.mempool_cap ()

let run ?(seed = 42L) ?load (sc : Scenario.t) =
  let t0 = Unix.gettimeofday () in
  let cfg = cfg_of sc in
  let n = sc.Scenario.n in
  let load =
    match (load, sc.Scenario.load) with
    | Some l, _ -> l
    | None, Some l -> l
    | None, None -> default_load n
  in
  let heal = Scenario.last_event_at sc in
  let duration = Scenario.duration sc in
  let load_until = Sim_time.(heal + Int64.div sc.Scenario.settle 2L) in
  (* Durable stores only when the scenario needs them (a [Restart] event
     or a torn-tail fault): [None] keeps the hot path — and thus every
     pre-existing scenario's trace — byte-identical to the null sink. *)
  let needs_store =
    sc.Scenario.torn_tail <> []
    || List.exists
         (fun (e : Scenario.event) ->
           match e.Scenario.action with Scenario.Restart _ -> true | _ -> false)
         sc.Scenario.events
  in
  let stores =
    if not needs_store then None
    else
      Some
        (Array.init n (fun i ->
             let s = Core.Store.mem () in
             match List.assoc_opt i sc.Scenario.torn_tail with
             | None -> s
             | Some drop -> Core.Store.with_torn_tail ~drop s))
  in
  let spec =
    Core.Runner.spec ~cfg ~seed ~load ~duration ~warmup:(Sim_time.s 1)
      ~load_until ~byzantine:sc.Scenario.byzantine
      ~client_resend_timeout:(Sim_time.s 1) ?stores ~trace:true ()
  in
  let t = Core.Runner.create spec in
  let engine = Core.Runner.engine t in
  let network = Core.Runner.network t in
  let trace = Core.Runner.trace t in
  let inj = Injector.create ~n ~rng:(Rng.split (Engine.rng engine)) in
  Net.Network.set_fault_hook network (fun ~now:_ ~src ~dst msg ->
      match Injector.decide inj ~src ~dst msg with
      | Injector.Pass -> Net.Network.Pass
      | Injector.Drop -> Net.Network.Drop
      | Injector.Delay d ->
        Net.Network.Divert { delay_ns = Int64.to_int d; copies = 1 }
      | Injector.Duplicate -> Net.Network.Divert { delay_ns = 0; copies = 2 });
  List.iter
    (fun (e : Scenario.event) ->
      ignore
        (Engine.schedule_at engine ~at:e.Scenario.at (fun () ->
             Trace.recordf trace ~at:(Engine.now engine) ~tag:"chaos" "%a"
               Scenario.pp_action e.Scenario.action;
             match e.Scenario.action with
             | Scenario.Crash id -> Net.Network.set_down network id true
             | Scenario.Revive id -> Net.Network.set_down network id false
             | Scenario.Restart id -> Core.Runner.restart_replica t id
             | link_fault -> ignore (Injector.apply inj link_fault : bool))
          : Engine.handle))
    sc.Scenario.events;
  Core.Runner.run_until t heal;
  let confirmed_at_heal = (Core.Runner.report t).Core.Runner.confirmed in
  Core.Runner.run_until t duration;
  Net.Network.clear_fault_hook network;
  let r = Core.Runner.report t in
  let replicas = Core.Runner.replicas t in
  let exec id = Core.Ledger.executed_up_to (Core.Replica.ledger replicas.(id)) in
  let honest_frontier =
    List.fold_left (fun acc id -> max acc (exec id)) 0 (Core.Runner.honest_ids t)
  in
  let state_sync id =
    exec id > 0 && exec id + cfg.Core.Config.k >= honest_frontier
  in
  let verdict =
    Oracle.evaluate ~scenario:sc ~safety:r.Core.Runner.safety_ok
      ~confirmed_at_heal ~confirmed:r.Core.Runner.confirmed
      ~final_view:r.Core.Runner.final_view
      ~equivocations:r.Core.Runner.equivocations_detected ~state_sync
  in
  { Oracle.scenario = sc;
    plane = "sim";
    seed;
    verdict;
    confirmed_at_heal;
    confirmed = r.Core.Runner.confirmed;
    final_view = r.Core.Runner.final_view;
    view_changes = r.Core.Runner.view_changes;
    equivocations = r.Core.Runner.equivocations_detected;
    wall_sec = Unix.gettimeofday () -. t0;
    trace = Oracle.render_trace trace }
