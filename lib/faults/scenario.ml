type rule = {
  src : Net.Node_id.t option;
  dst : Net.Node_id.t option;
  kinds : Core.Msg.kind list option;
  prob : float;
}

let rule ?src ?dst ?kinds ?(prob = 1.0) () = { src; dst; kinds; prob }

type action =
  | Crash of Net.Node_id.t
  | Revive of Net.Node_id.t
  | Restart of Net.Node_id.t
  | Partition of Net.Node_id.t list list
  | Heal
  | Drop of rule
  | Delay of rule * Sim.Sim_time.span
  | Duplicate of rule

type event = { at : Sim.Sim_time.span; action : action }

let ev at action = { at; action }

type expect = {
  view_change : bool;
  equivocation : bool;
  no_equivocation : bool;
  state_sync : Net.Node_id.t option;
}

let no_expect =
  { view_change = false; equivocation = false; no_equivocation = false;
    state_sync = None }

type t = {
  name : string;
  summary : string;
  n : int;
  byzantine : (Net.Node_id.t * Core.Byzantine.t) list;
  leader_generates : bool;
  checkpoint_interval : int option;
  mempool_cap : int option;
  load : float option;
  torn_tail : (Net.Node_id.t * int) list;
  events : event list;
  settle : Sim.Sim_time.span;
  expect : expect;
}

let make ~name ~summary ~n ?(byzantine = []) ?(leader_generates = false)
    ?checkpoint_interval ?mempool_cap ?load ?(torn_tail = []) ?(events = [])
    ?(settle = Sim.Sim_time.s 12) ?(expect = no_expect) () =
  { name; summary; n; byzantine; leader_generates; checkpoint_interval;
    mempool_cap; load; torn_tail; events; settle; expect }

let last_event_at t =
  List.fold_left (fun acc e -> Int64.max acc e.at) 0L t.events

let duration t = Sim.Sim_time.(last_event_at t + t.settle)

let pp_ids fmt ids =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       Net.Node_id.pp)
    ids

let pp_rule fmt r =
  let pp_end fmt = function
    | None -> Format.pp_print_string fmt "*"
    | Some id -> Net.Node_id.pp fmt id
  in
  Format.fprintf fmt "%a->%a" pp_end r.src pp_end r.dst;
  (match r.kinds with
  | None -> ()
  | Some ks ->
    Format.fprintf fmt " kinds=%a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
         (fun fmt k -> Format.pp_print_string fmt (Core.Msg.kind_name k)))
      ks);
  if r.prob < 1.0 then Format.fprintf fmt " p=%.2f" r.prob

let pp_action fmt = function
  | Crash id -> Format.fprintf fmt "crash %a" Net.Node_id.pp id
  | Revive id -> Format.fprintf fmt "revive %a" Net.Node_id.pp id
  | Restart id -> Format.fprintf fmt "restart %a" Net.Node_id.pp id
  | Partition groups ->
    Format.fprintf fmt "partition %a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "|")
         pp_ids)
      groups
  | Heal -> Format.pp_print_string fmt "heal"
  | Drop r -> Format.fprintf fmt "drop %a" pp_rule r
  | Delay (r, d) ->
    Format.fprintf fmt "delay %a by %.3fs" pp_rule r (Sim.Sim_time.to_sec d)
  | Duplicate r -> Format.fprintf fmt "duplicate %a" pp_rule r

let pp fmt t = Format.fprintf fmt "%s @ n=%d: %s" t.name t.n t.summary
