(** The shipped chaos-scenario corpus.

    Every builder takes [n] (so one schedule instantiates at any scale)
    and yields a {!Scenario.t} with concrete replica ids: the initial
    leader is replica [1] ([Config.leader_of_view] for view 1), and
    [f = (n - 1) / 3].

    The corpus covers the adversity classes the paper's liveness story
    depends on: leader crash mid-serial and during checkpointing, [f]
    simultaneous crashes, an asymmetric partition across the quorum
    boundary, a slow leader tripping the timeout/view-change path, a
    silent and an equivocating Byzantine leader, a lagging replica
    forced through state synchronization, and a duplicate storm.

    The restart quartet exercises durable-state recovery ([Restart] is a
    process fault — see {!Scenario.action}): the leader restarted
    mid-serial, a replica restarted while checkpoints truncate its log,
    a restart from a torn WAL tail, and a back-to-back restart storm of
    [f] replicas. All but the torn-tail case assert the no-double-vote
    oracle.

    The overload pair exercises the overload-control plane: a sustained
    ~10x load burst against a small admission cap (no fault events —
    the load is the fault) and a slow peer whose inbound link lags by
    300 ms. Both assert the standing safety and liveness checks: the
    cluster sheds excess at admission and keeps committing. *)

val leader : Net.Node_id.t
(** The initial leader (view 1): replica [1]. *)

val all : (n:int -> Scenario.t) list

val names : string list
(** In corpus order. *)

val find : string -> (n:int -> Scenario.t) option

(** Individual builders, for targeted tests. *)

val leader_crash : n:int -> Scenario.t
val leader_crash_checkpoint : n:int -> Scenario.t
val f_crashes : n:int -> Scenario.t
val partition_quorum : n:int -> Scenario.t
val slow_leader : n:int -> Scenario.t
val silence_leader : n:int -> Scenario.t
val equivocating_leader : n:int -> Scenario.t
val lagging_replica : n:int -> Scenario.t
val duplicate_storm : n:int -> Scenario.t
val leader_restart : n:int -> Scenario.t
val restart_checkpoint : n:int -> Scenario.t
val restart_torn_tail : n:int -> Scenario.t
val restart_storm : n:int -> Scenario.t
val overload_burst : n:int -> Scenario.t
val slow_peer : n:int -> Scenario.t
