(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the checksum
   guarding every WAL frame. Hand-rolled over a 256-entry table: the
   container has no checksum package, and OCaml's 63-bit ints hold the
   32-bit registers directly (masked on the way out). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)
