(** The real-file durable store: a [Core.Store.sink] over a {!Wal} in one
    directory per replica.

    Records and snapshots cross the seam through the frozen [Core.Codec]
    (same encodings the wire uses), so the on-disk format is pinned by
    the codec's round-trip tests. [sink] is what gets threaded into the
    replica's platform; the handle's lifecycle operations ({!flush} on
    the event-loop tick, {!crash} on simulated death, {!close} on
    teardown) stay with the owner — the transport cluster. *)

type t

val create :
  ?obs:Obs.Registry.t ->
  ?segment_bytes:int ->
  ?fsync:Wal.fsync_policy ->
  ?now_ns:(unit -> int) ->
  dir:string ->
  unit ->
  t
(** Opens (or creates) the replica's data directory. See {!Wal.create}
    for the parameters; [fsync] defaults to [Never]. [?obs] threads
    through to the WAL's [leopard_store_*] instruments and additionally
    counts recovery scans ([leopard_store_recoveries_total] and the
    records/snapshots they replayed). *)

val sink : t -> Core.Store.sink
(** The seam value: log appends Codec-encoded records, save writes
    checkpoint snapshots (truncating the log), load runs the recovery
    scan — undecodable suffixes degrade to a shorter clean prefix, never
    an exception. *)

val flush : t -> unit
(** Group-commit flush; call once per event-loop tick. *)

val crash : t -> unit
(** Simulated process death: un-flushed records are lost, the files keep
    a clean prefix. Idempotent. *)

val close : t -> unit
(** Graceful flush-and-close. Idempotent. *)

val dir : t -> string
val appended : t -> int

(** The sink operations as direct calls, so a harness that swaps handles
    across a restart can build one indirection-stable sink over a
    [t ref] instead of re-threading a new sink into a live platform. *)

val log : t -> Core.Store.record -> unit

val save : t -> Core.Store.snapshot -> unit

val load : t -> Core.Store.snapshot option * Core.Store.record list

val sync : t -> unit

val load_dir : string -> Core.Store.snapshot option * Core.Store.record list
(** The recovery scan of a directory without opening a write handle
    (recovery-time measurement, tests). *)

val remove_dir : string -> unit
(** Recursive best-effort delete of a data directory tree (teardown of
    per-run temp dirs). Never raises. *)
