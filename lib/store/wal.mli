(** Segmented append-only write-ahead log with checkpoint snapshots.

    Payloads are opaque strings (the [Core.Codec] encodings of
    [Core.Store] records and snapshots); each is framed with a fixed
    header — magic, version, kind, length, CRC-32 of the payload — the
    same discipline as the transport's [Frame]. The recovery scanner
    {!load} tolerates a torn or truncated tail: it returns the clean
    frame prefix and reports where (and why) it stopped, and never raises
    on any file content. *)

type fsync_policy =
  | Always       (** fsync after every appended record (group of one) *)
  | Interval of int
      (** fsync on the first flush at least this many nanoseconds after
          the previous one *)
  | Never        (** leave durability to the OS page cache *)

type corruption = { segment : string; off : int; reason : string }
(** Where a recovery scan stopped: byte offset of the first bad frame in
    [segment], and which header check failed. *)

val pp_corruption : Format.formatter -> corruption -> unit

type t

val create :
  ?obs:Obs.Registry.t ->
  ?segment_bytes:int ->
  ?fsync:fsync_policy ->
  ?now_ns:(unit -> int) ->
  dir:string ->
  unit ->
  t
(** Opens a log in [dir] (created if missing), always starting a fresh
    segment numbered after everything already there — a prior process may
    have died mid-write, and appending past a torn tail would hide it
    from {!load}. [segment_bytes] (default 4 MiB) bounds a segment before
    rotation; [now_ns] (default: wall clock) drives [Interval] fsyncs.

    With [?obs], appends and fsyncs record [leopard_store_*_latency_ns]
    histograms (timed via [now_ns]) and rotations/snapshots bump
    [leopard_store_*_total] counters. Instruments are unlabeled and
    shared by every WAL on the same registry: store metrics aggregate
    across replicas. *)

val append : t -> string -> unit
(** Buffers one record frame (group commit: nothing reaches the file
    until {!flush}, except under [Always], which flushes and fsyncs
    immediately). Rotates to a new segment when the current one is
    full. *)

val flush : t -> unit
(** Writes the buffered frames in one [write], then fsyncs if the policy
    calls for it now. *)

val sync : t -> unit
(** {!flush} plus an unconditional fsync (checkpoint barrier). *)

val save_snapshot : t -> string -> unit
(** Seals the current segment, writes the snapshot to a temp file, fsyncs
    it and atomically renames it into place, then deletes every segment
    and older snapshot below it. The snapshot's number is the first
    segment {!load} will replay on top of it. *)

val crash : t -> unit
(** Models the process dying: drops the un-flushed buffer and closes the
    descriptor without syncing. The file is left with a clean frame
    prefix — exactly the frames that had been flushed. *)

val close : t -> unit
(** Graceful shutdown: flush, fsync (unless the policy is [Never]),
    close. Idempotent, as is {!crash}. *)

val load : dir:string -> string option * string list * corruption option
(** Recovery scan of [dir]: the newest snapshot payload that validates
    (if any), the clean prefix of record payloads from every segment at
    or above it in order, and the corruption that stopped the scan (if
    any). A missing directory is simply empty. Never raises. *)

val dir : t -> string

val appended : t -> int
(** Records appended over this handle's lifetime (bench bookkeeping). *)
