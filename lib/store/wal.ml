(* Segmented append-only write-ahead log.

   Framing mirrors the transport's [Frame] discipline: a fixed header
   (magic, version, kind, length, CRC-32 of the payload) in front of an
   opaque payload produced by the frozen [Core.Codec]. Segments are
   numbered [wal-%08d.log]; a snapshot [snap-%08d.dat] carries the same
   frame format and its number is the first segment recovery must replay
   — everything below it is subsumed and deleted after the snapshot is
   durably in place.

   Group commit: [append] only fills a user-space buffer; [flush] writes
   it to the current segment in one [write] and fsyncs according to the
   policy. [crash] models the process dying — the buffer is dropped, so
   the file keeps a clean frame prefix (torn frames appear only through
   fault injection in tests). *)

type fsync_policy = Always | Interval of int | Never

type corruption = { segment : string; off : int; reason : string }

let pp_corruption fmt c =
  Format.fprintf fmt "%s at byte %d of %s" c.reason c.off c.segment

type metrics = {
  append_lat : Obs.Histogram.t;
  fsync_lat : Obs.Histogram.t;
  rotations : Obs.Counter.t;
  snapshots : Obs.Counter.t;
}

type t = {
  dir : string;
  segment_bytes : int;
  fsync : fsync_policy;
  now_ns : unit -> int;
  ms : metrics option;
  buf : Buffer.t;
  mutable fd : Unix.file_descr;
  mutable seq : int;
  mutable seg_size : int; (* written + buffered bytes of the current segment *)
  mutable dirty : bool;   (* written since the last fsync *)
  mutable last_sync_ns : int;
  mutable closed : bool;
  mutable appended : int;
}

let magic = "LWAL"
let version = 1
let header_bytes = 14
let kind_record = 1
let kind_snapshot = 2

(* A valid frame never comes close to this; a scanner hitting a larger
   length field is looking at garbage and must not trust (or allocate)
   it. *)
let max_payload = 64 * 1024 * 1024

let segment_name seq = Printf.sprintf "wal-%08d.log" seq
let snapshot_name seq = Printf.sprintf "snap-%08d.dat" seq
let segment_seq name = Scanf.sscanf_opt name "wal-%d.log%!" (fun s -> s)
let snapshot_seq name = Scanf.sscanf_opt name "snap-%d.dat%!" (fun s -> s)

let frame ~kind payload =
  let len = String.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr version);
  Bytes.set b 5 (Char.chr kind);
  Bytes.set_int32_le b 6 (Int32.of_int len);
  Bytes.set_int32_le b 10 (Int32.of_int (Crc32.string payload));
  Bytes.blit_string payload 0 b header_bytes len;
  Bytes.unsafe_to_string b

(* Scans [data] as a sequence of frames of one expected [kind], calling
   [k payload] for each valid one in order. Returns the corruption that
   stopped the scan, if any; everything before it was delivered — the
   clean prefix. A frame of any other kind stops the scan too: a
   snapshot frame inside a [.log] segment (or vice versa) is file
   corruption, and skipping it silently would turn a prefix into a
   record list with a hole. *)
let scan ~path ~kind:expected data k =
  let len = String.length data in
  let stop off reason = Some { segment = path; off; reason } in
  let rec go off =
    if off = len then None
    else if off + header_bytes > len then stop off "truncated header"
    else if not (String.equal (String.sub data off 4) magic) then stop off "bad magic"
    else if Char.code data.[off + 4] <> version then stop off "bad version"
    else if Char.code data.[off + 5] <> expected then stop off "unexpected kind"
    else begin
      let plen = Int32.to_int (String.get_int32_le data (off + 6)) land 0xFFFFFFFF in
      let crc = Int32.to_int (String.get_int32_le data (off + 10)) land 0xFFFFFFFF in
      if plen > max_payload then stop off "oversized frame"
      else if off + header_bytes + plen > len then stop off "truncated payload"
      else begin
        let payload = String.sub data (off + header_bytes) plen in
        if Crc32.string payload <> crc then stop off "crc mismatch"
        else begin
          k payload;
          go (off + header_bytes + plen)
        end
      end
    end
  in
  go 0

let read_file path =
  let ic = In_channel.open_bin path in
  Fun.protect ~finally:(fun () -> In_channel.close ic) (fun () -> In_channel.input_all ic)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let list_dir dir = if Sys.file_exists dir then Array.to_list (Sys.readdir dir) else []

let segments dir =
  List.filter_map segment_seq (list_dir dir) |> List.sort_uniq compare

let snapshots dir =
  List.filter_map snapshot_seq (list_dir dir) |> List.sort_uniq compare

let open_segment dir seq =
  Unix.openfile (Filename.concat dir (segment_name seq))
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644

(* All WALs sharing a registry share these instruments (registration is
   idempotent): store metrics aggregate across replicas rather than
   exploding the label space at large n. *)
let metrics_of reg =
  { append_lat =
      Obs.Registry.histogram reg ~help:"wal append call latency (ns)"
        "leopard_store_append_latency_ns";
    fsync_lat =
      Obs.Registry.histogram reg ~help:"fsync syscall latency (ns)"
        "leopard_store_fsync_latency_ns";
    rotations =
      Obs.Registry.counter reg ~help:"segment rotations" "leopard_store_rotations_total";
    snapshots =
      Obs.Registry.counter reg ~help:"checkpoint snapshots written"
        "leopard_store_snapshots_total" }

let create ?obs ?(segment_bytes = 4 * 1024 * 1024) ?(fsync = Never)
    ?(now_ns = fun () -> int_of_float (Unix.gettimeofday () *. 1e9)) ~dir () =
  mkdir_p dir;
  (* Always start a fresh segment: the previous process may have died
     mid-write, and appending after a torn tail would hide it from the
     recovery scanner. *)
  let seq =
    1 + List.fold_left max (-1) (List.rev_append (segments dir) (snapshots dir))
  in
  { dir;
    segment_bytes;
    fsync;
    now_ns;
    ms = Option.map metrics_of obs;
    buf = Buffer.create 4096;
    fd = open_segment dir seq;
    seq;
    seg_size = 0;
    dirty = false;
    last_sync_ns = now_ns ();
    closed = false;
    appended = 0 }

let dir t = t.dir
let appended t = t.appended

let write_buffer t =
  if Buffer.length t.buf > 0 then begin
    let data = Buffer.contents t.buf in
    Buffer.clear t.buf;
    let len = String.length data in
    let pos = ref 0 in
    while !pos < len do
      pos := !pos + Unix.write_substring t.fd data !pos (len - !pos)
    done;
    t.dirty <- true
  end

let do_fsync t =
  if t.dirty then begin
    (match t.ms with
    | None -> Unix.fsync t.fd
    | Some m ->
      let t0 = t.now_ns () in
      Unix.fsync t.fd;
      Obs.Histogram.record m.fsync_lat (t.now_ns () - t0));
    t.dirty <- false
  end;
  t.last_sync_ns <- t.now_ns ()

let flush t =
  if not t.closed then begin
    write_buffer t;
    match t.fsync with
    | Always -> do_fsync t
    | Never -> ()
    | Interval ns -> if t.now_ns () - t.last_sync_ns >= ns then do_fsync t
  end

let sync t =
  if not t.closed then begin
    write_buffer t;
    do_fsync t
  end

let rotate t =
  write_buffer t;
  Unix.close t.fd;
  t.seq <- t.seq + 1;
  t.fd <- open_segment t.dir t.seq;
  t.seg_size <- 0;
  t.dirty <- false;
  match t.ms with Some m -> Obs.Counter.incr m.rotations | None -> ()

let append t payload =
  if not t.closed then begin
    let t0 = match t.ms with Some _ -> t.now_ns () | None -> 0 in
    let fr = frame ~kind:kind_record payload in
    if t.seg_size > 0 && t.seg_size + String.length fr > t.segment_bytes then rotate t;
    Buffer.add_string t.buf fr;
    t.seg_size <- t.seg_size + String.length fr;
    t.appended <- t.appended + 1;
    if t.fsync = Always then begin
      write_buffer t;
      do_fsync t
    end;
    match t.ms with
    | Some m -> Obs.Histogram.record m.append_lat (t.now_ns () - t0)
    | None -> ()
  end

let save_snapshot t payload =
  if not t.closed then begin
    (* Seal the log at a segment boundary so the snapshot's number names
       exactly the segments that postdate it. *)
    rotate t;
    let snap_seq = t.seq in
    let final = Filename.concat t.dir (snapshot_name snap_seq) in
    let tmp = final ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let data = frame ~kind:kind_snapshot payload in
        let len = String.length data in
        let pos = ref 0 in
        while !pos < len do
          pos := !pos + Unix.write_substring fd data !pos (len - !pos)
        done;
        Unix.fsync fd);
    (* Atomic publication, then truncation of everything it subsumes. *)
    Unix.rename tmp final;
    (match t.ms with Some m -> Obs.Counter.incr m.snapshots | None -> ());
    List.iter
      (fun seq ->
        if seq < snap_seq then
          try Sys.remove (Filename.concat t.dir (segment_name seq)) with Sys_error _ -> ())
      (segments t.dir);
    List.iter
      (fun seq ->
        if seq < snap_seq then
          try Sys.remove (Filename.concat t.dir (snapshot_name seq)) with Sys_error _ -> ())
      (snapshots t.dir)
  end

let crash t =
  if not t.closed then begin
    t.closed <- true;
    Buffer.clear t.buf;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let close t =
  if not t.closed then begin
    write_buffer t;
    (match t.fsync with Never -> () | Always | Interval _ -> do_fsync t);
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Recovery scanner. Picks the newest snapshot that validates, then
   replays every segment at or above its number in order, stopping at
   the first corrupt or torn frame. Total: every failure mode is either
   a skipped snapshot or a reported [corruption], never an exception. *)
let load ~dir =
  if not (Sys.file_exists dir) then (None, [], None)
  else begin
    let try_snapshot seq =
      let path = Filename.concat dir (snapshot_name seq) in
      match read_file path with
      | exception Sys_error _ -> None
      | data ->
        let result = ref None in
        let err =
          scan ~path ~kind:kind_snapshot data (fun payload ->
              if !result = None then result := Some payload)
        in
        if err = None then !result else None
    in
    let snap_seq, snap =
      List.fold_left
        (fun acc seq ->
          match acc with
          | _, Some _ -> acc
          | _, None -> (
            match try_snapshot seq with
            | Some payload -> (seq, Some payload)
            | None -> acc))
        (0, None)
        (List.rev (snapshots dir))
    in
    let records = ref [] in
    let corruption = ref None in
    let replay seq =
      if !corruption = None then begin
        let path = Filename.concat dir (segment_name seq) in
        match read_file path with
        | exception Sys_error _ -> ()
        | data ->
          corruption :=
            scan ~path ~kind:kind_record data (fun payload ->
                records := payload :: !records)
      end
    in
    List.iter (fun seq -> if seq >= snap_seq then replay seq) (segments dir);
    (snap, List.rev !records, !corruption)
  end
