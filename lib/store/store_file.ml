(* The real-file [Core.Store.sink]: Codec-encoded records into a {!Wal},
   snapshots as its checkpoint files. One value per replica, one
   directory per replica. *)

type recovery_metrics = {
  recoveries : Obs.Counter.t;
  replayed_records : Obs.Counter.t;
  replayed_snapshots : Obs.Counter.t;
}

type t = { wal : Wal.t; recov : recovery_metrics option }

let create ?obs ?segment_bytes ?fsync ?now_ns ~dir () =
  let recov =
    Option.map
      (fun reg ->
        { recoveries =
            Obs.Registry.counter reg ~help:"recovery scans run"
              "leopard_store_recoveries_total";
          replayed_records =
            Obs.Registry.counter reg ~help:"records replayed by recovery scans"
              "leopard_store_recovered_records_total";
          replayed_snapshots =
            Obs.Registry.counter reg ~help:"snapshots restored by recovery scans"
              "leopard_store_recovered_snapshots_total" })
      obs
  in
  { wal = Wal.create ?obs ?segment_bytes ?fsync ?now_ns ~dir (); recov }

let dir t = Wal.dir t.wal
let flush t = Wal.flush t.wal
let crash t = Wal.crash t.wal
let close t = Wal.close t.wal
let appended t = Wal.appended t.wal

let load_dir dir =
  let snap, records, _corruption = Wal.load ~dir in
  (* A frame that passed its CRC but fails to decode means a codec
     version skew; treat it like the torn tail — keep what decodes. *)
  ( Option.bind snap Core.Codec.decode_snapshot,
    List.filter_map Core.Codec.decode_record records )

let log t r = Wal.append t.wal (Core.Codec.encode_record r)
let save t s = Wal.save_snapshot t.wal (Core.Codec.encode_snapshot s)
let load t =
  let ((snap, records) as r) = load_dir (Wal.dir t.wal) in
  (match t.recov with
  | Some m ->
    Obs.Counter.incr m.recoveries;
    Obs.Counter.add m.replayed_records (List.length records);
    if snap <> None then Obs.Counter.incr m.replayed_snapshots
  | None -> ());
  r
let sync t = Wal.sync t.wal

let sink t =
  Core.Store.
    { enabled = true;
      log = (fun r -> log t r);
      save = (fun s -> save t s);
      load = (fun () -> load t);
      sync = (fun () -> sync t) }

let rec remove_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | entries ->
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        if Sys.is_directory path then remove_dir path
        else try Sys.remove path with Sys_error _ -> ())
      entries;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())
