(** CRC-32 (IEEE 802.3), the per-frame checksum of the {!Wal}. *)

val string : string -> int
(** Checksum of a whole string, in [0, 0xFFFFFFFF]. *)

val update : int -> string -> pos:int -> len:int -> int
(** Extends a previous checksum over [len] bytes of [s] at [pos];
    [update 0 s ~pos:0 ~len:(String.length s) = string s]. *)
