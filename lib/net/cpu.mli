(** A replica's serial processor.

    Expensive operations (signature verification, share aggregation) are
    submitted with a cost from {!Crypto.Cost_model}; tasks run in FIFO
    order, each completing [cost] after the previous one. This reproduces
    the CPU-side bottlenecks the paper discusses (e.g. BLS verification
    bursts at the leader). *)

type t

val create : Sim.Engine.t -> cores:int -> t
(** [create engine ~cores] models [cores] identical cores fed from one
    FIFO queue (c5.xlarge has 4 vCPUs). Requires [cores >= 1]. *)

val submit : t -> cost:Sim.Sim_time.span -> (unit -> unit) -> unit
(** [submit t ~cost f] runs [f] once a core has spent [cost] on the task,
    after all previously submitted work. Zero-cost tasks still respect
    FIFO order with respect to queued work. *)

val submit_ns : t -> cost_ns:int -> (unit -> unit) -> unit
(** [submit] with the cost as a nanosecond int — allocation-free for
    callers whose cost arithmetic is already in immediate ints. *)

val busy_span : t -> Sim.Sim_time.span
(** Total core-busy time accumulated (for utilization metrics). *)

val queue_depth : t -> int
(** Number of tasks submitted but not yet completed. *)
