(** A NIC serializer: items occupy the line for [size / rate] each.

    Models one direction of a network interface. The egress side uses two
    priority classes — the prototype's channel ① (consensus messages) and
    channel ② (datablocks), §6.1 — where high-priority items overtake
    queued low-priority ones but never preempt an in-flight transmission. *)

type 'a t

type priority = High | Low

val create :
  ?lanes:int -> Sim.Engine.t -> rate_bps:float -> on_done:('a -> unit) -> 'a t
(** [create engine ~rate_bps ~on_done] is an idle serializer transmitting
    at [rate_bps] bits per second; [rate_bps <= 0.] means an unlimited
    line (items complete immediately). [on_done item] fires when the item
    has fully left the line.

    [lanes] (default 1) models the paper's "parallel TCP connections"
    future-work optimization (§6.2.1): the line is split into [lanes]
    independent serializers of [rate_bps / lanes] each, so a queued small
    message no longer waits for a whole in-flight datablock — less
    head-of-line blocking at the same total rate. *)

val submit : 'a t -> priority:priority -> size:int -> 'a -> unit
(** Queues an item of [size] bytes. *)

val submit_many : 'a t -> priority:priority -> size:int -> copies:int -> 'a -> unit
(** [submit_many t ~priority ~size ~copies p] behaves exactly like
    [copies] consecutive [submit]s of [p] — same transmission start and
    completion instants, [on_done p] once per copy — but enqueues a
    single shared entry, so a wide multicast costs O(1) allocation at
    the NIC instead of O(copies). [copies <= 0] is a no-op. Copies
    started after a {!set_rate} change transmit at the new rate, like
    separately queued items would. *)

val busy_span : 'a t -> Sim.Sim_time.span
(** Accumulated transmission time (for utilization). *)

val queue_depth : 'a t -> int
(** Items queued or in flight. *)

val set_rate : 'a t -> float -> unit
(** Changes the line rate for subsequently started transmissions. *)

val tx_time : rate_bps:float -> size:int -> Sim.Sim_time.span
(** Serialization delay of [size] bytes at [rate_bps]; exposed for tests
    and analytic cross-checks. *)
