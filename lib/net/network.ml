open Sim

type 'msg meta = {
  size : 'msg -> int;
  category : 'msg -> string;
  priority : 'msg -> Nic.priority;
}

type link = {
  out_bps : float;
  in_bps : float;
  prop_delay : Sim_time.span;
  jitter : Sim_time.span;
  lanes : int;
}

let default_link =
  { out_bps = 4.9e9;
    in_bps = 4.9e9;
    prop_delay = Sim_time.ms 1;
    jitter = Sim_time.us 200;
    lanes = 1 }

let mbps x = x *. 1e6
let gbps x = x *. 1e9

(* What travels through NICs: protocol messages, client injections, and
   external egress (client acks), each with enough context to finish the
   hop when serialization completes. Wire size, category and priority are
   computed once at send time and carried along.

   A [Fanout] is one shared record standing for a whole multicast: the
   sender's NIC transmits it [n - 1] times (see {!Nic.submit_many}), and
   each egress completion claims the next destination in ascending order
   via the [next] counter. Copies of one fanout always complete in start
   order — equal sizes on FIFO lanes — so the counter reproduces exactly
   the per-destination packets it replaced. *)
type 'msg packet =
  | Proto of {
      src : Node_id.t;
      dst : Node_id.t;
      msg : 'msg;
      size : int;
      category : string;
      priority : Nic.priority;
    }
  | Fanout of {
      src : Node_id.t;
      msg : 'msg;
      size : int;
      category : string;
      priority : Nic.priority;
      mutable next : int;    (* egress completions so far *)
    }
  | External of { callback : unit -> unit }

type 'msg node = {
  egress : 'msg packet Nic.t;
  ingress : 'msg packet Nic.t;
  account : Bandwidth.t;
  mutable handler : (src:Node_id.t -> 'msg -> unit) option;
  mutable down : bool;
}

type fault_verdict =
  | Pass
  | Drop
  | Divert of { delay_ns : int; copies : int }

type 'msg t = {
  engine : Engine.t;
  meta : 'msg meta;
  mutable link : link;
  nodes : 'msg node array;
  rng : Rng.t;
  mutable extra_delay :
    (now:Sim_time.t -> src:Node_id.t -> dst:Node_id.t -> Sim_time.span) option;
  mutable fault :
    (now:Sim_time.t -> src:Node_id.t -> dst:Node_id.t -> 'msg -> fault_verdict) option;
  mutable delivered : int;
}

let engine t = t.engine
let n t = Array.length t.nodes
let delivered_messages t = t.delivered

let deliver t dst packet =
  let node = t.nodes.(dst) in
  if not node.down then
    match packet with
    | External { callback } -> callback ()
    | Proto { src; msg; size; category; _ } | Fanout { src; msg; size; category; _ } ->
      t.delivered <- t.delivered + 1;
      Bandwidth.record node.account Received ~category size;
      (match node.handler with
       | Some h -> h ~src msg
       | None -> ())

let wire_delay_ns t ~src ~dst =
  let jit =
    if Int64.compare t.link.jitter 0L > 0 then
      int_of_float (Rng.float t.rng (Int64.to_float t.link.jitter))
    else 0
  in
  let extra =
    match t.extra_delay with
    | Some f -> Int64.to_int (f ~now:(Engine.now t.engine) ~src ~dst)
    | None -> 0
  in
  Int64.to_int t.link.prop_delay + jit + extra

(* Egress completion: the packet crosses the wire, then contends for the
   receiver's ingress NIC. Sent bytes are accounted here — when they have
   actually left the NIC — so a backlogged egress queue cannot inflate a
   measurement window's utilization. *)
let cross_wire t ~src ~dst ~priority ~size packet =
  let deliver_after dt =
    ignore
      (Engine.schedule_ns t.engine ~delay_ns:dt (fun () ->
           let node = t.nodes.(dst) in
           if not node.down then Nic.submit node.ingress ~priority ~size packet))
  in
  let verdict =
    match t.fault with
    | None -> Pass
    | Some f -> (
      match packet with
      | Proto { msg; _ } | Fanout { msg; _ } ->
        f ~now:(Engine.now t.engine) ~src ~dst msg
      | External _ -> Pass)
  in
  match verdict with
  | Drop -> ()
  | Pass -> deliver_after (wire_delay_ns t ~src ~dst)
  | Divert { delay_ns; copies } ->
    (* All copies share one base wire delay so a duplicate pair arrives
       back-to-back, the adversary's best reordering position. *)
    let base = wire_delay_ns t ~src ~dst in
    for _ = 1 to copies do
      deliver_after (base + max 0 delay_ns)
    done

let on_egress_done t packet =
  match packet with
  | External _ -> () (* external egress has no in-network destination *)
  | Proto { src; dst; size; category; priority; _ } ->
    Bandwidth.record t.nodes.(src).account Sent ~category size;
    cross_wire t ~src ~dst ~priority ~size packet
  | Fanout ({ src; size; category; priority; _ } as f) ->
    Bandwidth.record t.nodes.(src).account Sent ~category size;
    (* the k-th completion serves the k-th destination in ascending
       order, skipping the sender *)
    let k = f.next in
    f.next <- k + 1;
    let dst = if k < src then k else k + 1 in
    cross_wire t ~src ~dst ~priority ~size packet

let create engine ~n ~meta ~link =
  assert (n >= 1);
  let rng = Rng.split (Engine.rng engine) in
  (* NIC completion callbacks need the network value that owns the NICs;
     tie the knot with a forward reference resolved before any event runs. *)
  let t_ref = ref None in
  let the_t () = match !t_ref with Some t -> t | None -> assert false in
  let make_node i =
    let egress =
      Nic.create ~lanes:link.lanes engine ~rate_bps:link.out_bps
        ~on_done:(fun p -> on_egress_done (the_t ()) p)
    in
    let ingress =
      Nic.create ~lanes:link.lanes engine ~rate_bps:link.in_bps ~on_done:(fun p ->
          let t = the_t () in
          match p with
          | External { callback } -> if not t.nodes.(i).down then callback ()
          | Proto { dst; _ } -> deliver t dst p
          | Fanout _ -> deliver t i p (* this ingress NIC belongs to [i] *))
    in
    { egress; ingress; account = Bandwidth.create (); handler = None; down = false }
  in
  let t =
    { engine; meta; link; nodes = Array.init n make_node; rng; extra_delay = None;
      fault = None; delivered = 0 }
  in
  t_ref := Some t;
  t

let set_handler t id h = t.nodes.(id).handler <- Some h

let send t ~src ~dst msg =
  let node = t.nodes.(src) in
  if not node.down then begin
    let size = t.meta.size msg in
    let category = t.meta.category msg in
    let priority = t.meta.priority msg in
    let packet = Proto { src; dst; msg; size; category; priority } in
    if Node_id.equal src dst then deliver t dst packet
    else Nic.submit node.egress ~priority ~size packet
  end

let multicast t ~src msg =
  let node = t.nodes.(src) in
  if (not node.down) && Array.length t.nodes > 1 then begin
    let size = t.meta.size msg in
    let category = t.meta.category msg in
    let priority = t.meta.priority msg in
    let packet = Fanout { src; msg; size; category; priority; next = 0 } in
    Nic.submit_many node.egress ~priority ~size ~copies:(Array.length t.nodes - 1) packet
  end

let inject t ~dst ~size ~category callback =
  let node = t.nodes.(dst) in
  if not node.down then begin
    Bandwidth.record node.account Received ~category size;
    Nic.submit node.ingress ~priority:Nic.Low ~size (External { callback })
  end

let charge_egress t ~src ~size ~category =
  let node = t.nodes.(src) in
  if not node.down then begin
    Bandwidth.record node.account Sent ~category size;
    Nic.submit node.egress ~priority:Nic.Low ~size (External { callback = (fun () -> ()) })
  end

let set_down t id v = t.nodes.(id).down <- v
let is_down t id = t.nodes.(id).down

let set_extra_delay t f = t.extra_delay <- Some f
let set_fault_hook t f = t.fault <- Some f
let clear_fault_hook t = t.fault <- None

let set_rates t ~out_bps ~in_bps =
  t.link <- { t.link with out_bps; in_bps };
  Array.iter
    (fun node ->
      Nic.set_rate node.egress out_bps;
      Nic.set_rate node.ingress in_bps)
    t.nodes

let stats t id = t.nodes.(id).account
let reset_stats t = Array.iter (fun node -> Bandwidth.reset node.account) t.nodes
let egress_queue_depth t id = Nic.queue_depth t.nodes.(id).egress
