(** Point-to-point, authenticated, reliable network among [n] replicas.

    Matches the system model of §3.2 on top of a NIC-level bandwidth
    model: a unicast first serializes through the sender's egress NIC,
    then crosses the wire (propagation delay, plus any adversarial delay
    before GST — see {!Partial_sync}), then serializes through the
    receiver's ingress NIC, and is finally handed to the receiver's
    handler. A multicast is [n - 1] independent unicasts on the sender's
    egress NIC — this is precisely the leader bottleneck of Eq. (1).

    External client traffic enters through {!inject}, which charges only
    the destination's ingress NIC. Every byte is accounted per category in
    {!Bandwidth}. *)

type 'msg meta = {
  size : 'msg -> int;        (** wire size in bytes *)
  category : 'msg -> string; (** bandwidth-accounting category *)
  priority : 'msg -> Nic.priority;
      (** channel ① ([High]: consensus messages) vs ② ([Low]: datablocks) *)
}

type link = {
  out_bps : float;           (** per-replica egress rate, bits/s *)
  in_bps : float;            (** per-replica ingress rate, bits/s *)
  prop_delay : Sim.Sim_time.span;  (** one-way propagation delay *)
  jitter : Sim.Sim_time.span;      (** uniform extra delay in [0, jitter] *)
  lanes : int;
      (** parallel connections per NIC direction (default 1); the
          paper's parallel-TCP future-work optimization — same total
          rate, less head-of-line blocking *)
}

val default_link : link
(** c5.xlarge-like: 4.9 Gbit/s each way, 1 ms propagation, 200 µs jitter. *)

val mbps : float -> float
(** [mbps x] is [x] megabits per second, for throttling sweeps. *)

val gbps : float -> float

type 'msg t

val create : Sim.Engine.t -> n:int -> meta:'msg meta -> link:link -> 'msg t
(** A network of [n] replicas with identical links. Requires [n >= 1]. *)

val engine : 'msg t -> Sim.Engine.t
val n : 'msg t -> int

val delivered_messages : 'msg t -> int
(** Protocol messages handed to a replica handler so far (multicast
    copies count once per destination); the macro-benchmark's
    words-per-delivered-message denominator. *)

val set_handler : 'msg t -> Node_id.t -> (src:Node_id.t -> 'msg -> unit) -> unit
(** Installs the delivery callback of a replica. *)

val send : 'msg t -> src:Node_id.t -> dst:Node_id.t -> 'msg -> unit
(** Unicast. Sending to self delivers through loopback (no NIC cost). *)

val multicast : 'msg t -> src:Node_id.t -> 'msg -> unit
(** Unicast to every replica except [src], in replica order. *)

val inject : 'msg t -> dst:Node_id.t -> size:int -> category:string -> (unit -> unit) -> unit
(** External (client) traffic: charges [size] bytes on [dst]'s ingress
    NIC, then runs the callback. *)

val charge_egress : 'msg t -> src:Node_id.t -> size:int -> category:string -> unit
(** Accounts [size] bytes of external egress (e.g. acknowledgments back
    to clients) and occupies the egress NIC, without an in-network
    destination. *)

val set_down : 'msg t -> Node_id.t -> bool -> unit
(** A down replica neither sends nor receives (messages are dropped);
    used to stop leaders for view-change experiments. *)

val is_down : 'msg t -> Node_id.t -> bool

val set_extra_delay :
  'msg t -> (now:Sim.Sim_time.t -> src:Node_id.t -> dst:Node_id.t -> Sim.Sim_time.span) -> unit
(** Installs an adversarial scheduler hook adding wire delay per message
    (see {!Partial_sync}). *)

(** Per-delivery fault verdict, consulted as each protocol message
    crosses the wire (post-egress, per destination — a multicast can be
    faulted towards some receivers and not others). [Divert] re-delivers
    [copies] copies, each [delay_ns] later than the normal arrival;
    [Divert { delay_ns = 0; copies = 2 }] is a duplication,
    [Divert { delay_ns; copies = 1 }] a pure delay. Self-deliveries and
    client {!inject} traffic are not subject to faults (partitions cut
    wires, not processes — use {!set_down} for crashes). *)
type fault_verdict =
  | Pass
  | Drop
  | Divert of { delay_ns : int; copies : int }

val set_fault_hook :
  'msg t ->
  (now:Sim.Sim_time.t -> src:Node_id.t -> dst:Node_id.t -> 'msg -> fault_verdict) ->
  unit
(** Installs the fault injector (see [Faults.Injector]). At most one hook
    is active; installing replaces the previous one. *)

val clear_fault_hook : 'msg t -> unit

val set_rates : 'msg t -> out_bps:float -> in_bps:float -> unit
(** Re-throttles every replica's NICs (the NetEm sweep of §6.2.3). *)

val stats : 'msg t -> Node_id.t -> Bandwidth.t
(** The replica's bandwidth account. *)

val reset_stats : 'msg t -> unit
(** Zeroes all bandwidth accounts (end of warmup). *)

val egress_queue_depth : 'msg t -> Node_id.t -> int
(** Pending egress items; saturation indicator in tests and benches. *)
