type direction = Sent | Received

type t = {
  sent : (string, int ref) Hashtbl.t;
  received : (string, int ref) Hashtbl.t;
}

let create () = { sent = Hashtbl.create 16; received = Hashtbl.create 16 }

let table t = function
  | Sent -> t.sent
  | Received -> t.received

(* Called twice per delivered message; [Hashtbl.find] + [Not_found]
   avoids allocating [find_opt]'s [Some] on the hit path. *)
let record t dir ~category bytes =
  let tbl = table t dir in
  match Hashtbl.find tbl category with
  | r -> r := !r + bytes
  | exception Not_found -> Hashtbl.add tbl category (ref bytes)

let total t dir = Hashtbl.fold (fun _ r acc -> acc + !r) (table t dir) 0

let by_category t dir =
  Hashtbl.fold (fun cat r acc -> (cat, !r) :: acc) (table t dir) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let category_total t dir category =
  match Hashtbl.find_opt (table t dir) category with
  | Some r -> !r
  | None -> 0

let reset t =
  Hashtbl.reset t.sent;
  Hashtbl.reset t.received

let merge_totals ts dir = List.fold_left (fun acc t -> acc + total t dir) 0 ts
