open Sim

type priority = High | Low

(* A queue entry is a burst of [remaining] same-size copies sharing one
   completion callback; an ordinary submit is a burst of one. The payload
   lives only in the [finish] closure, so an n-copy multicast costs one
   entry and one closure instead of n of each. *)
type item = {
  size : int;
  mutable remaining : int;
  finish : unit -> unit;
}

(* One physical line is [lanes] independent serializers sharing the two
   priority queues; each picks up the next queued copy when it goes idle. *)
type 'a t = {
  engine : Engine.t;
  mutable rate_bps : float;       (* total line rate, split across lanes *)
  lanes : int;
  on_done : 'a -> unit;
  high : item Queue.t;
  low : item Queue.t;
  mutable in_flight : int;        (* lanes currently transmitting *)
  mutable busy_ns : int;
  mutable depth : int;
}

let create ?(lanes = 1) engine ~rate_bps ~on_done =
  assert (lanes >= 1);
  { engine;
    rate_bps;
    lanes;
    on_done;
    high = Queue.create ();
    low = Queue.create ();
    in_flight = 0;
    busy_ns = 0;
    depth = 0 }

(* Same rounding as [Sim_time.of_sec], kept in immediate ints. *)
let tx_ns ~rate_bps ~size =
  if rate_bps <= 0. then 0
  else int_of_float (Float.round (float_of_int (size * 8) /. rate_bps *. 1e9))

let tx_time ~rate_bps ~size = Int64.of_int (tx_ns ~rate_bps ~size)

let rec start_next t =
  if t.in_flight < t.lanes then begin
    let q =
      if not (Queue.is_empty t.high) then t.high
      else t.low
    in
    if not (Queue.is_empty q) then begin
      let item = Queue.peek q in
      if item.remaining <= 1 then ignore (Queue.pop q)
      else item.remaining <- item.remaining - 1;
      t.in_flight <- t.in_flight + 1;
      let lane_rate = t.rate_bps /. float_of_int t.lanes in
      let dt_ns = tx_ns ~rate_bps:lane_rate ~size:item.size in
      t.busy_ns <- t.busy_ns + dt_ns;
      ignore (Engine.schedule_ns t.engine ~delay_ns:dt_ns item.finish);
      (* other idle lanes may pick up queued copies too *)
      start_next t
    end
  end

let submit_many t ~priority ~size ~copies payload =
  if copies >= 1 then begin
    let finish () =
      t.depth <- t.depth - 1;
      t.in_flight <- t.in_flight - 1;
      t.on_done payload;
      start_next t
    in
    let q = match priority with High -> t.high | Low -> t.low in
    Queue.push { size; remaining = copies; finish } q;
    t.depth <- t.depth + copies;
    start_next t
  end

let submit t ~priority ~size payload = submit_many t ~priority ~size ~copies:1 payload

let busy_span t = Int64.of_int t.busy_ns
let queue_depth t = t.depth
let set_rate t rate = t.rate_bps <- rate
