open Sim

(* Core-free instants and the busy accumulator are nanosecond ints so the
   per-message [submit] path allocates nothing but its completion closure
   (int64 spans would box on every compare/add without flambda). *)
type t = {
  engine : Engine.t;
  cores : int array;               (* ns instant each core becomes free *)
  mutable busy_ns : int;
  mutable depth : int;
}

let create engine ~cores =
  assert (cores >= 1);
  { engine; cores = Array.make cores 0; busy_ns = 0; depth = 0 }

let earliest_core t =
  let best = ref 0 in
  for i = 1 to Array.length t.cores - 1 do
    if t.cores.(i) < t.cores.(!best) then best := i
  done;
  !best

let submit_ns t ~cost_ns f =
  let core = earliest_core t in
  let now_ns = Engine.now_ns t.engine in
  let start = if now_ns > t.cores.(core) then now_ns else t.cores.(core) in
  let finish = start + cost_ns in
  t.cores.(core) <- finish;
  t.busy_ns <- t.busy_ns + cost_ns;
  t.depth <- t.depth + 1;
  ignore
    (Engine.schedule_ns t.engine ~delay_ns:(finish - now_ns) (fun () ->
         t.depth <- t.depth - 1;
         f ()))

let submit t ~cost f = submit_ns t ~cost_ns:(Int64.to_int cost) f

let busy_span t = Int64.of_int t.busy_ns
let queue_depth t = t.depth
