(** Bounded domain worker pool for CPU-bound verification work.

    A fixed set of OCaml 5 domains pulls tasks from one shared queue
    (crypto verification tasks are uniform, so a shared queue beats
    per-worker deques with stealing — there is nothing to steal; see
    DESIGN.md §11). Two completion styles serve the two planes:

    - {!submit}/{!await} — allocation-light blocking futures. The sim
      plane uses these: the submitting thread blocks until the worker
      finishes, so the result becomes available at exactly the program
      point an inline call would have produced it, and simulated runs
      stay byte-for-byte deterministic for any pool size.
    - {!async}/{!async_all} — callback completions delivered {e only} by
      {!drain}, which the owner thread calls (the TCP runtime drains
      from a {!Transport.Loop} tick hook and a readable {!notify_fd}).
      Worker domains never run owner-side code, so replica state needs
      no locks.

    Backpressure: at most [budget] tasks may be in flight; past that a
    submission runs the task on the caller instead of queueing it
    (counted in {!stats} as [inline_runs]). The owner can therefore
    never race unboundedly ahead of its workers, and memory stays
    bounded under overload. *)

type t

type 'a future
(** A pending result; one mutex + condvar + state word per future. *)

type stats = {
  tasks : int;        (** tasks ever submitted, inline fallbacks included *)
  batches : int;      (** batch submissions ({!submit_batch}/{!async_all}) *)
  inline_runs : int;  (** tasks run on the caller: in-flight budget was full *)
  idle_waits : int;   (** worker waits on the empty queue (idle transitions) *)
  drained : int;      (** completions delivered by {!drain} so far *)
  busy_ns : int;
      (** cumulative wall time workers spent inside tasks. Overlap
          against the owner's wall clock: [busy_ns / wall_ns] > 1 means
          verification genuinely ran in parallel with the event loop. *)
}

val create : ?obs:Obs.Registry.t -> ?domains:int -> ?budget:int -> unit -> t
(** [create ()] spawns [domains] worker domains (default
    [max 1 (recommended_domain_count () - 1)]: leave one core to the
    owner) with an in-flight budget of [budget] tasks (default
    [64 * domains]). Requires [domains >= 1] and [budget >= 1].

    With [?obs], workers record per-task wall time into a
    [leopard_verify_task_latency_ns] histogram, and a collect hook
    exposes queue depth, in-flight count and the {!stats} counters as
    [leopard_verify_*] metrics — the task hot path itself is untouched
    apart from one histogram record per task. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Hand one task to the pool (or run it on the caller if the budget is
    full); the future is fulfilled when it finishes. *)

val submit_batch : t -> (unit -> 'a) list -> 'a future list
(** Like iterated {!submit} but the queue lock is taken once for the
    whole list and sleeping workers are woken once. *)

val await : 'a future -> 'a
(** Blocks until the task finishes; re-raises the task's exception in
    the caller. Safe from any thread, including after the task already
    completed. *)

val async : t -> (unit -> 'a) -> ('a -> unit) -> unit
(** [async t f k] runs [f] on a worker and delivers [k result] at a
    later {!drain} on the owner thread — never synchronously, so caller
    state cannot be reentered. If [f] raises, the exception is
    re-raised out of that [drain] call. *)

val async_all : t -> (unit -> 'a) list -> ('a list -> unit) -> unit
(** Batched {!async}: one queue-lock acquisition, one completion with
    the results in submission order, delivered by {!drain} when the
    last task finishes. [async_all t [] k] delivers [k []] at the next
    {!drain}. *)

val drain : t -> int
(** Runs every completion callback whose task has finished, on the
    calling thread, and returns how many were delivered. The owner must
    call this regularly (tick hook) and/or when {!notify_fd} becomes
    readable. Never blocks. *)

val notify_fd : t -> Unix.file_descr
(** Read end of a self-pipe: becomes readable when the completion queue
    transitions empty→non-empty, so a [select]-based owner wakes
    immediately instead of sleeping out its timeout. {!drain} clears
    it. Do not close it; {!shutdown} does. *)

val stats : t -> stats

val shutdown : t -> unit
(** Finishes all queued work, joins the worker domains and closes the
    pipe. Completions not yet drained are discarded. Idempotent.
    Futures still pending after shutdown are fulfilled (workers drain
    the queue before exiting). *)
