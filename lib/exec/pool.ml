(* Bounded domain worker pool. One shared FIFO work queue under a
   mutex/condvar; completions cross back to the owner through a second
   queue plus a self-pipe so a select-based event loop wakes as soon as
   results are ready. See pool.mli for the contract. *)

type task = unit -> unit

type 'a state = Pending | Value of 'a | Raised of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable st : 'a state;
}

type t = {
  m : Mutex.t; (* guards work, stop, inflight and the stat counters *)
  cv : Condition.t;
  work : task Queue.t;
  mutable stop : bool;
  mutable inflight : int;
  budget : int;
  mutable domains : unit Domain.t array;
  (* completion side: owner-drained queue + empty->nonempty self-pipe *)
  dm : Mutex.t;
  done_q : task Queue.t;
  notify_r : Unix.file_descr;
  notify_w : Unix.file_descr;
  mutable closed : bool;
  (* stats (under [m] except [drained]/[busy_ns], under [dm]) *)
  mutable tasks : int;
  mutable batches : int;
  mutable inline_runs : int;
  mutable idle_waits : int;
  mutable drained : int;
  mutable busy_ns : int;
  (* set once at create; recorded from worker domains (DLS-sharded) *)
  mutable task_lat : Obs.Histogram.t option;
}

type stats = {
  tasks : int;
  batches : int;
  inline_runs : int;
  idle_waits : int;
  drained : int;
  busy_ns : int;
}

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let worker t () =
  let rec loop () =
    let job =
      Mutex.protect t.m (fun () ->
          let rec take () =
            match Queue.take_opt t.work with
            | Some j -> Some j
            | None ->
                if t.stop then None
                else begin
                  t.idle_waits <- t.idle_waits + 1;
                  Condition.wait t.cv t.m;
                  take ()
                end
          in
          take ())
    in
    match job with
    | None -> ()
    | Some j ->
        let start = now_ns () in
        (* [j] never raises: submission wraps the user function so the
           outcome (value or exception) is captured in the future. *)
        j ();
        let dt = now_ns () - start in
        (match t.task_lat with Some h -> Obs.Histogram.record h dt | None -> ());
        Mutex.protect t.m (fun () ->
            t.inflight <- t.inflight - 1;
            t.busy_ns <- t.busy_ns + (if dt > 0 then dt else 0));
        loop ()
  in
  loop ()

let create ?obs ?domains ?budget () =
  let domains =
    match domains with
    | Some d ->
        if d < 1 then invalid_arg "Exec.Pool.create: domains < 1";
        d
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  let budget =
    match budget with
    | Some b ->
        if b < 1 then invalid_arg "Exec.Pool.create: budget < 1";
        b
    | None -> 64 * domains
  in
  let notify_r, notify_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock notify_r;
  Unix.set_nonblock notify_w;
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      work = Queue.create ();
      stop = false;
      inflight = 0;
      budget;
      domains = [||];
      dm = Mutex.create ();
      done_q = Queue.create ();
      notify_r;
      notify_w;
      closed = false;
      tasks = 0;
      batches = 0;
      inline_runs = 0;
      idle_waits = 0;
      drained = 0;
      busy_ns = 0;
      task_lat = None;
    }
  in
  (match obs with
  | None -> ()
  | Some reg ->
      t.task_lat <-
        Some
          (Obs.Registry.histogram reg ~help:"verify task wall time (ns)"
             "leopard_verify_task_latency_ns");
      let depth =
        Obs.Registry.gauge reg ~help:"queued verify tasks" "leopard_verify_queue_depth"
      in
      let inflight =
        Obs.Registry.gauge reg ~help:"verify tasks in flight" "leopard_verify_inflight"
      in
      let c name help = Obs.Registry.counter reg ~help name in
      let tasks_c = c "leopard_verify_tasks_total" "tasks submitted (inline included)" in
      let batches_c = c "leopard_verify_batches_total" "batch submissions" in
      let inline_c = c "leopard_verify_inline_runs_total" "budget-full inline fallbacks" in
      let idle_c = c "leopard_verify_idle_waits_total" "worker idle transitions" in
      let drained_c = c "leopard_verify_drained_total" "completions delivered by drain" in
      (* Scrape-time mirror of the pool's own counters: the hot path
         keeps its existing mutex-guarded ints, obs pays nothing. *)
      Obs.Registry.on_collect reg (fun () ->
          let depth_v, inflight_v, tasks_v, batches_v, inline_v, idle_v =
            Mutex.protect t.m (fun () ->
                ( Queue.length t.work,
                  t.inflight,
                  t.tasks,
                  t.batches,
                  t.inline_runs,
                  t.idle_waits ))
          in
          let drained_v = Mutex.protect t.dm (fun () -> t.drained) in
          Obs.Gauge.set depth depth_v;
          Obs.Gauge.set inflight inflight_v;
          Obs.Counter.mirror tasks_c tasks_v;
          Obs.Counter.mirror batches_c batches_v;
          Obs.Counter.mirror inline_c inline_v;
          Obs.Counter.mirror idle_c idle_v;
          Obs.Counter.mirror drained_c drained_v));
  t.domains <- Array.init domains (fun _ -> Domain.spawn (worker t));
  t

let size t = Array.length t.domains

(* Completion-queue side. The empty->nonempty transition writes one
   byte; losing the write to a full pipe is fine (the pipe is already
   readable), losing it to a closed pipe means shutdown already ran. *)
let push_done t thunk =
  let was_empty =
    Mutex.protect t.dm (fun () ->
        let e = Queue.is_empty t.done_q in
        Queue.push thunk t.done_q;
        e)
  in
  if was_empty then
    try ignore (Unix.write t.notify_w (Bytes.make 1 '\001') 0 1)
    with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

let drain t =
  (* Clear the pipe first, then swap the queue: a push that lands after
     the swap writes a fresh byte (the queue it saw was empty again), so
     no wakeup is ever lost. *)
  let buf = Bytes.create 64 in
  let rec clear () =
    match Unix.read t.notify_r buf 0 64 with
    | 64 -> clear ()
    | _ -> ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EBADF), _, _) -> ()
  in
  clear ();
  let pending = Queue.create () in
  Mutex.protect t.dm (fun () ->
      Queue.transfer t.done_q pending;
      t.drained <- t.drained + Queue.length pending);
  let n = Queue.length pending in
  Queue.iter (fun k -> k ()) pending;
  n

let notify_fd t = t.notify_r

(* Enqueue [jobs] (already wrapped as unit tasks) honouring the
   in-flight budget: whatever does not fit runs on the caller, and the
   queue lock is taken once for the whole batch. Returns the overflow
   to run inline; the caller runs it after releasing [t.m]. *)
let enqueue t jobs =
  let run_inline =
    Mutex.protect t.m (fun () ->
        if t.stop then invalid_arg "Exec.Pool: submit after shutdown";
        let rec go acc = function
          | [] -> List.rev acc
          | j :: rest ->
              if t.inflight >= t.budget then begin
                t.inline_runs <- t.inline_runs + 1;
                t.tasks <- t.tasks + 1;
                go (j :: acc) rest
              end
              else begin
                t.inflight <- t.inflight + 1;
                t.tasks <- t.tasks + 1;
                Queue.push j t.work;
                go acc rest
              end
        in
        let overflow = go [] jobs in
        Condition.broadcast t.cv;
        overflow)
  in
  List.iter (fun j -> j ()) run_inline

let fulfil fut outcome =
  Mutex.protect fut.fm (fun () ->
      fut.st <- outcome;
      Condition.broadcast fut.fc)

let wrap_future f =
  let fut = { fm = Mutex.create (); fc = Condition.create (); st = Pending } in
  let job () =
    let outcome = try Value (f ()) with e -> Raised e in
    fulfil fut outcome
  in
  (fut, job)

let submit t f =
  let fut, job = wrap_future f in
  enqueue t [ job ];
  fut

let submit_batch t fs =
  Mutex.protect t.m (fun () -> t.batches <- t.batches + 1);
  let futs, jobs = List.split (List.map wrap_future fs) in
  enqueue t jobs;
  futs

let await fut =
  let st =
    Mutex.protect fut.fm (fun () ->
        while (match fut.st with Pending -> true | _ -> false) do
          Condition.wait fut.fc fut.fm
        done;
        fut.st)
  in
  match st with
  | Value v -> v
  | Raised e -> raise e
  | Pending -> assert false

let async t f k =
  let job () =
    let outcome = try Value (f ()) with e -> Raised e in
    push_done t (fun () ->
        match outcome with Value v -> k v | Raised e -> raise e | Pending -> ())
  in
  enqueue t [ job ]

let async_all t fs k =
  Mutex.protect t.m (fun () -> t.batches <- t.batches + 1);
  match fs with
  | [] -> push_done t (fun () -> k [])
  | fs ->
      let n = List.length fs in
      let results = Array.make n Pending in
      let remaining = Atomic.make n in
      let jobs =
        List.mapi
          (fun i f () ->
            let outcome = try Value (f ()) with e -> Raised e in
            results.(i) <- outcome;
            if Atomic.fetch_and_add remaining (-1) = 1 then
              push_done t (fun () ->
                  let vs =
                    Array.to_list
                      (Array.map
                         (function
                           | Value v -> v
                           | Raised e -> raise e
                           | Pending -> assert false)
                         results)
                  in
                  k vs))
          fs
      in
      enqueue t jobs

let stats t =
  let tasks, batches, inline_runs, idle_waits, busy_ns =
    Mutex.protect t.m (fun () ->
        (t.tasks, t.batches, t.inline_runs, t.idle_waits, t.busy_ns))
  in
  let drained = Mutex.protect t.dm (fun () -> t.drained) in
  { tasks; batches; inline_runs; idle_waits; drained; busy_ns }

let shutdown t =
  let already =
    Mutex.protect t.m (fun () ->
        let a = t.stop in
        t.stop <- true;
        Condition.broadcast t.cv;
        a)
  in
  if not already then begin
    Array.iter Domain.join t.domains;
    Mutex.protect t.dm (fun () -> Queue.clear t.done_q);
    if not t.closed then begin
      t.closed <- true;
      (try Unix.close t.notify_r with Unix.Unix_error _ -> ());
      try Unix.close t.notify_w with Unix.Unix_error _ -> ()
    end
  end
