(** Unified metrics layer: a domain-safe, allocation-disciplined registry
    of monotonic counters, gauges and log-2-bucketed latency histograms,
    with a Prometheus-style text exposition format.

    Every subsystem (consensus, transport, verify pool, store) registers
    its instruments against a {!Registry.t} at construction time and
    keeps the returned handles; the hot paths then touch only those
    handles. The discipline:

    - a {!Counter.incr} / {!Gauge.set} is one [Atomic] operation — a few
      nanoseconds, zero minor words (the micro bench gates this);
    - a {!Histogram.record} updates a {e per-domain} shard reached
      through [Domain.DLS], so worker domains (the verify pool) record
      without contending with the event loop; shards are merged only at
      scrape time;
    - scraping ({!Registry.expose}) is read-only and idempotent —
      instruments are cumulative, the scraper never resets them.

    The registry itself is mutex-protected and may be shared across
    domains; instrument registration is construction-time work and never
    sits on a hot path. *)

module Counter : sig
  type t

  val incr : t -> unit
  (** One atomic increment: the hot-path operation. *)

  val add : t -> int -> unit
  val value : t -> int

  val mirror : t -> int -> unit
  (** [mirror c v] sets the counter to [v] — for scrape-time collect
      hooks ({!Registry.on_collect}) that mirror a subsystem's existing
      monotonic counter instead of double-counting on the hot path.
      Never use it on an instrument that is also [incr]'d. *)
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val record : t -> int -> unit
  (** [record h v] adds one observation (a nanosecond latency, a queue
      length…) to the calling domain's shard. Negative values clamp to
      zero. Bucket [b] holds values in [\[2^b, 2^{b+1})]. *)

  val count : t -> int
  (** Observations across all shards. *)

  val sum : t -> int

  val buckets : t -> int array
  (** Merged per-bucket (non-cumulative) counts, index = floor(log2 v). *)
end

module Registry : sig
  type t

  val create : unit -> t

  (** Instrument constructors are idempotent: asking twice for the same
      name and label set returns the same instrument (so a recovered
      replica re-attaches to its counters instead of shadowing them).
      Asking for an existing name+labels under a different metric kind
      raises [Invalid_argument]. Labels are sorted internally; [help] is
      kept from the first registration. *)

  val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
  val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

  val histogram :
    t -> ?help:string -> ?labels:(string * string) list -> string -> Histogram.t

  val on_collect : t -> (unit -> unit) -> unit
  (** Registers a hook run at the start of every {!expose}: the place to
      refresh gauges (queue depths, live connections) or {!Counter.mirror}
      a subsystem's pre-existing counters. Hooks run in registration
      order and must not register new instruments. *)

  val expose : t -> string
  (** The full registry in Prometheus text exposition format:
      [# TYPE name kind] per family, then one
      [name{label="v",...} value] line per instrument, families and
      label sets in sorted order — deterministic, so two scrapes of an
      idle registry are byte-identical. Histograms render cumulative
      [_bucket{le="..."}] lines (one per power-of-two bucket up to the
      highest occupied, then [le="+Inf"]), plus [_sum] and [_count]. *)

  val dump_file : t -> string -> unit
  (** Writes {!expose} to a file atomically (temp file + rename), so a
      reader never observes a half-written dump. *)
end
