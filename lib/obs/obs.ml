(* Metrics registry. See obs.mli for the contract.

   Hot-path discipline: counters and gauges are one unboxed [int
   Atomic.t] each ([fetch_and_add] / [set] — no allocation, no lock);
   histograms keep one shard per recording domain behind a [Domain.DLS]
   key so the verify pool's workers never contend with the event loop,
   and the shard update is plain int-array arithmetic. Everything
   allocation-ful (registration, scraping, merging) happens off the hot
   path, under the registry mutex. *)

module Counter = struct
  type t = int Atomic.t

  let make () : t = Atomic.make 0
  let incr (t : t) = ignore (Atomic.fetch_and_add t 1 : int)
  let add (t : t) n = ignore (Atomic.fetch_and_add t n : int)
  let value (t : t) = Atomic.get t
  let mirror (t : t) v = Atomic.set t v
end

module Gauge = struct
  type t = int Atomic.t

  let make () : t = Atomic.make 0
  let set (t : t) v = Atomic.set t v
  let add (t : t) n = ignore (Atomic.fetch_and_add t n : int)
  let value (t : t) = Atomic.get t
end

module Histogram = struct
  (* floor(log2 v) in a handful of branchless steps; v=0 lands in
     bucket 0 with v=1 (a sub-2ns latency is indistinguishable from
     1ns at this resolution). *)
  let bucket_of v =
    if v <= 1 then 0
    else begin
      let b = ref 0 in
      let v = ref v in
      if !v lsr 32 <> 0 then begin b := !b + 32; v := !v lsr 32 end;
      if !v lsr 16 <> 0 then begin b := !b + 16; v := !v lsr 16 end;
      if !v lsr 8 <> 0 then begin b := !b + 8; v := !v lsr 8 end;
      if !v lsr 4 <> 0 then begin b := !b + 4; v := !v lsr 4 end;
      if !v lsr 2 <> 0 then begin b := !b + 2; v := !v lsr 2 end;
      if !v lsr 1 <> 0 then b := !b + 1;
      !b
    end

  let nbuckets = 63

  type shard = {
    counts : int array;
    mutable sum : int;
    mutable n : int;
  }

  (* The DLS key's init closure runs in whichever domain first records,
     so shard registration takes the histogram's mutex; recording after
     that first touch is lock-free. The shard list only ever grows
     (domains are few and pooled), so scrape-time merging under the
     mutex sees every shard that ever recorded. *)
  type t = {
    mu : Mutex.t;
    mutable shards : shard list;
    key : shard Domain.DLS.key;
  }

  let make () =
    let mu = Mutex.create () in
    let shards = ref [] in
    let t_ref = ref None in
    let key =
      Domain.DLS.new_key (fun () ->
          let s = { counts = Array.make nbuckets 0; sum = 0; n = 0 } in
          (match !t_ref with
          | Some t ->
            Mutex.protect mu (fun () -> t.shards <- s :: t.shards)
          | None -> shards := s :: !shards);
          s)
    in
    let t = { mu; shards = !shards; key } in
    t_ref := Some t;
    t

  let record t v =
    let v = if v < 0 then 0 else v in
    let s = Domain.DLS.get t.key in
    let b = bucket_of v in
    Array.unsafe_set s.counts b (Array.unsafe_get s.counts b + 1);
    s.sum <- s.sum + v;
    s.n <- s.n + 1

  (* Scrape-time merge: shard fields are read without synchronizing with
     concurrent recorders — a metrics snapshot may be a few observations
     behind a racing domain, which is inherent to scraping and harmless
     (counts only grow). *)
  let merged t =
    let shards = Mutex.protect t.mu (fun () -> t.shards) in
    let counts = Array.make nbuckets 0 in
    let sum = ref 0 and n = ref 0 in
    List.iter
      (fun s ->
        for i = 0 to nbuckets - 1 do
          counts.(i) <- counts.(i) + s.counts.(i)
        done;
        sum := !sum + s.sum;
        n := !n + s.n)
      shards;
    (counts, !sum, !n)

  let count t =
    let _, _, n = merged t in
    n

  let sum t =
    let _, s, _ = merged t in
    s

  let buckets t =
    let c, _, _ = merged t in
    c
end

module Registry = struct
  type inst =
    | Counter of Counter.t
    | Gauge of Gauge.t
    | Histogram of Histogram.t

  type metric = {
    name : string;
    labels : (string * string) list; (* sorted by key *)
    help : string option;
    inst : inst;
  }

  type t = {
    mu : Mutex.t;
    mutable metrics : metric list; (* registration order, newest first *)
    mutable collectors : (unit -> unit) list; (* newest first *)
  }

  let create () = { mu = Mutex.create (); metrics = []; collectors = [] }

  let kind_name = function
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Histogram _ -> "histogram"

  let same_kind a b =
    match (a, b) with
    | Counter _, Counter _ | Gauge _, Gauge _ | Histogram _, Histogram _ -> true
    | _ -> false

  let sort_labels labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels

  (* Idempotent registration: one instrument per (name, labels); a kind
     mismatch is a programming error worth failing loudly on. *)
  let register t ~name ~labels ~help fresh =
    let labels = sort_labels labels in
    Mutex.protect t.mu (fun () ->
        match
          List.find_opt (fun m -> String.equal m.name name && m.labels = labels) t.metrics
        with
        | Some m ->
          let want = fresh () in
          if not (same_kind m.inst want) then
            invalid_arg
              (Printf.sprintf "Obs.Registry: %s already registered as a %s" name
                 (kind_name m.inst));
          m.inst
        | None ->
          let inst = fresh () in
          t.metrics <- { name; labels; help; inst } :: t.metrics;
          inst)

  let counter t ?help ?(labels = []) name =
    match register t ~name ~labels ~help (fun () -> Counter (Counter.make ())) with
    | Counter c -> c
    | _ -> assert false

  let gauge t ?help ?(labels = []) name =
    match register t ~name ~labels ~help (fun () -> Gauge (Gauge.make ())) with
    | Gauge g -> g
    | _ -> assert false

  let histogram t ?help ?(labels = []) name =
    match register t ~name ~labels ~help (fun () -> Histogram (Histogram.make ())) with
    | Histogram h -> h
    | _ -> assert false

  let on_collect t f = Mutex.protect t.mu (fun () -> t.collectors <- f :: t.collectors)

  (* -- exposition ----------------------------------------------------- *)

  let escape_label_value v =
    let b = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let label_str labels =
    match labels with
    | [] -> ""
    | labels ->
      let parts =
        List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels
      in
      "{" ^ String.concat "," parts ^ "}"

  (* [le] upper bound (inclusive) of log2 bucket [b]: the largest value
     with floor(log2 v) = b. *)
  let bucket_le b = (1 lsl (b + 1)) - 1

  let emit_histogram buf name labels h =
    let counts, sum, n = Histogram.merged h in
    let hi = ref (-1) in
    Array.iteri (fun i c -> if c > 0 then hi := i) counts;
    let cum = ref 0 in
    for b = 0 to !hi do
      cum := !cum + counts.(b);
      let labels = labels @ [ ("le", string_of_int (bucket_le b)) ] in
      Buffer.add_string buf (Printf.sprintf "%s_bucket%s %d\n" name (label_str labels) !cum)
    done;
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket%s %d\n" name (label_str (labels @ [ ("le", "+Inf") ])) n);
    Buffer.add_string buf (Printf.sprintf "%s_sum%s %d\n" name (label_str labels) sum);
    Buffer.add_string buf (Printf.sprintf "%s_count%s %d\n" name (label_str labels) n)

  let expose t =
    let collectors = Mutex.protect t.mu (fun () -> List.rev t.collectors) in
    List.iter (fun f -> f ()) collectors;
    let metrics = Mutex.protect t.mu (fun () -> t.metrics) in
    let metrics =
      List.sort
        (fun a b ->
          match String.compare a.name b.name with
          | 0 -> compare a.labels b.labels
          | c -> c)
        metrics
    in
    let buf = Buffer.create 4096 in
    let last_family = ref "" in
    List.iter
      (fun m ->
        if not (String.equal !last_family m.name) then begin
          last_family := m.name;
          (match m.help with
          | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.name h)
          | None -> ());
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m.name (kind_name m.inst))
        end;
        match m.inst with
        | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.name (label_str m.labels) (Counter.value c))
        | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.name (label_str m.labels) (Gauge.value g))
        | Histogram h -> emit_histogram buf m.name m.labels h)
      metrics;
    Buffer.contents buf

  let dump_file t path =
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    (try output_string oc (expose t)
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    Sys.rename tmp path
end
