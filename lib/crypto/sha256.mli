(** SHA-256 (FIPS 180-4), pure OCaml.

    Used for request digests, datablock/BFTblock hashes and hash links.
    The implementation is the real compression function (verified against
    the RFC 6234 test vectors in the test suite), so hash-link integrity
    and collision-resistance assumptions in the protocol are exercised for
    real rather than stubbed. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx
val feed_bytes : ctx -> ?off:int -> ?len:int -> bytes -> unit
val feed_string : ctx -> string -> unit

val finalize : ctx -> string
(** The 32-byte digest. The context must not be reused afterwards. *)

val digest_string : string -> string
(** [digest_string s] is the 32-byte SHA-256 digest of [s]. *)

val digest_strings : string list -> string
(** Digest of the concatenation of the given strings, without building the
    concatenation. *)

val digest_pair_into : src:bytes -> src_off:int -> dst:bytes -> dst_off:int -> unit
(** Digest of exactly the 64 bytes at [src_off] in [src] (two
    concatenated 32-byte digests), written to [dst.(dst_off..+31)]
    without allocating in steady state — the Merkle inner-node
    primitive. Equal to [digest_string (Bytes.sub_string src src_off
    64)]. Uses domain-local scratch state: safe to call from multiple
    domains, but not from signal handlers or effect handlers that could
    interrupt another call on the same domain. *)

val hmac : key:string -> string -> string
(** HMAC-SHA256 (RFC 2104); the primitive under the simulated signature
    schemes. *)

val to_hex : string -> string
(** Lowercase hex rendering of a raw digest. *)
