type setup = {
  group_pk : string;               (* H(master secret) *)
  member_pks : string array;       (* H(i || share_i), 0-based position *)
  threshold : int;
  parties : int;
}

type member_key = { index : int; secret : Field.t }
type share = { s_index : int; masked : Field.t }

(* The memo fields cut simulation wallclock, not simulated CPU time (the
   cost model charges TVrf separately): one aggregate is verified against
   the same message by each of the n - 1 receivers of a notarization or
   confirmation, and hashed once per receiver on top of that. Verification
   is a pure function of (aggregate, group key, message), so the first
   verdict holds for everyone.

   Domain-safety: aggregates are now verified concurrently by Exec.Pool
   workers. The (key, msg, ok) verdict triple is published as a single
   immutable record through an [Atomic.t], so a reader can never observe a
   mixed triple (e.g. old key with new verdict). Plain [Atomic.set]
   suffices: every writer stores a self-consistent record and the verdict
   for a given (key, msg) pair is unique, so last-writer-wins is correct.
   [digest_memo] stays a plain mutable field: racing writers store equal
   immutable strings (safe publication, no tearing under the OCaml memory
   model), and any read observes either "" or the correct digest. *)
type verdict = { v_key : string; v_msg : string; v_ok : bool }

type aggregate = {
  value : Field.t;
  mutable digest_memo : string; (* SHA-256 of [encode]; "" = not yet *)
  verified : verdict option Atomic.t;
}

let aggregate value = { value; digest_memo = ""; verified = Atomic.make None }

let share_size_bytes = 48
let aggregate_size_bytes = 48

let commit_master s = Sha256.digest_strings [ "leopard.ts.group"; string_of_int (Field.to_int s) ]

let commit_member i s =
  Sha256.digest_strings [ "leopard.ts.member"; string_of_int i; string_of_int (Field.to_int s) ]

let keygen rng ~threshold ~parties =
  assert (0 <= threshold && threshold < parties);
  let master = Field.random rng in
  let shares = Shamir.deal rng ~secret:master ~threshold ~parties in
  let member_pks = Array.map (fun (s : Shamir.share) -> commit_member s.index s.value) shares in
  let keys = Array.map (fun (s : Shamir.share) -> { index = s.index; secret = s.value }) shares in
  ({ group_pk = commit_master master; member_pks; threshold; parties }, keys)

let threshold t = t.threshold
let parties t = t.parties

(* The message mask: a field element derived from the message. Adding the
   same mask to every Shamir share shifts the interpolated secret by the
   mask (Lagrange coefficients at 0 sum to 1), which binds shares and
   aggregate to the message. *)
(* One-slot memo: votes for the same payload arrive in bursts (a leader
   verifies n shares of one payload back to back; n replicas each sign the
   same payload once per round), so the last-message cache hits on nearly
   every hot-path call. Purely a wallclock saving — [mask] is a pure
   function, so determinism is untouched. The slot is per-domain
   ([Domain.DLS]): Exec.Pool workers each get their own, so the memo pair
   can never be torn by a concurrent writer. *)
type mask_slot = { mutable mm_msg : string; mutable mm_val : Field.t }

let mask_slot_key =
  Domain.DLS.new_key (fun () -> { mm_msg = ""; mm_val = Field.one })

let mask msg =
  let slot = Domain.DLS.get mask_slot_key in
  if String.equal slot.mm_msg msg then slot.mm_val
  else begin
    let v = Field.of_string_digest (Sha256.digest_strings [ "leopard.ts.msg"; msg ]) in
    slot.mm_msg <- msg;
    slot.mm_val <- v;
    v
  end

let sign_share key msg = { s_index = key.index; masked = Field.add key.secret (mask msg) }

let share_index s = s.s_index

let verify_share setup s msg =
  s.s_index >= 1
  && s.s_index <= setup.parties
  && String.equal
       (commit_member s.s_index (Field.sub s.masked (mask msg)))
       setup.member_pks.(s.s_index - 1)

let combine setup msg shares =
  let valid =
    List.filter (fun s -> verify_share setup s msg) shares
    |> List.sort_uniq (fun a b -> Int.compare a.s_index b.s_index)
  in
  if List.length valid < setup.threshold + 1 then None
  else begin
    let chosen = List.filteri (fun i _ -> i <= setup.threshold) valid in
    let points =
      List.map (fun s -> Shamir.{ index = s.s_index; value = Field.sub s.masked (mask msg) }) chosen
    in
    Some (aggregate (Field.add (Shamir.reconstruct points) (mask msg)))
  end

let verify setup agg msg =
  match Atomic.get agg.verified with
  | Some v when String.equal v.v_key setup.group_pk && String.equal v.v_msg msg -> v.v_ok
  | _ ->
      let ok = String.equal (commit_master (Field.sub agg.value (mask msg))) setup.group_pk in
      Atomic.set agg.verified (Some { v_key = setup.group_pk; v_msg = msg; v_ok = ok });
      ok

let encode agg = Printf.sprintf "tsagg:%d" (Field.to_int agg.value)

let encode_digest agg =
  if String.length agg.digest_memo = 0 then
    agg.digest_memo <- Sha256.digest_string (encode agg);
  agg.digest_memo

let share_raw s = (s.s_index, Field.to_int s.masked)
let share_of_raw ~index ~value = { s_index = index; masked = Field.of_int value }
let aggregate_raw agg = Field.to_int agg.value
let aggregate_of_raw v = aggregate (Field.of_int v)
let share_equal a b = a.s_index = b.s_index && Field.equal a.masked b.masked
let aggregate_equal a b = Field.equal a.value b.value

let forge_attempt setup msg =
  (* A deterministic guess at an aggregate; nudged if it accidentally
     verifies (probability ~1/p) so callers can rely on rejection. *)
  let guess = Field.of_string_digest (Sha256.digest_strings [ "forge"; setup.group_pk; msg ]) in
  let candidate = aggregate (Field.add guess (mask msg)) in
  if verify setup candidate msg then aggregate (Field.add candidate.value Field.one) else candidate
