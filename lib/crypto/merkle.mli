(** Merkle trees over digests.

    Datablock digests in the prototype are Merkle roots over request
    digests, which lets a replica prove inclusion of one request to a
    client without shipping the whole datablock (used by the fast-payment
    example). *)

type proof
(** An inclusion proof: the co-path from a leaf to the root. *)

val root : Hash.t list -> Hash.t
(** Merkle root of the leaves; leaves are paired left-to-right and odd
    tails are promoted. The root of [[]] is the hash of the empty string,
    and a singleton's root is its element. Allocates only the resulting
    digest: intermediate levels are computed in domain-local scratch, so
    concurrent calls from different domains are safe. *)

val prove : Hash.t list -> int -> proof option
(** [prove leaves i] is the inclusion proof of leaf [i], or [None] when
    [i] is out of range. *)

val verify_proof : root:Hash.t -> leaf:Hash.t -> proof -> bool
(** Checks an inclusion proof against a root. *)

val proof_size_bytes : proof -> int
(** Wire size of a proof (32 bytes per level plus direction bits). *)
