type t = string

let size_bytes = 32
let of_string s = Sha256.digest_string s
let of_strings parts = Sha256.digest_strings parts
let combine digests = Sha256.digest_strings digests
let raw t = t

let of_raw s =
  assert (String.length s = size_bytes);
  s

let equal = String.equal
let compare = String.compare

(* A SHA-256 digest is already uniformly distributed: the first 8 bytes
   are as good a hash as any, and far cheaper than [Hashtbl.hash] walking
   all 32 bytes. *)
let hash t = Int64.to_int (String.get_int64_le t 0) land max_int

let to_hex = Sha256.to_hex
let short t = String.sub (to_hex t) 0 8
let pp fmt t = Format.pp_print_string fmt (short t)

module Map = Map.Make (String)
module Set = Set.Make (String)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = String.equal
  let hash t = Int64.to_int (String.get_int64_le t 0) land max_int
end)
