type public_key = string (* 32-byte commitment to the private key *)
type private_key = string (* 32 random bytes *)
type t = string (* HMAC tag *)

let size_bytes = 64
let public_key_size_bytes = 33

(* Verification oracle: pk -> sk. Private to this module, so protocol code
   (honest or Byzantine) can only produce valid tags through [sign]. The
   table is mutated by [keygen] and read by [verify], which Exec.Pool runs
   from worker domains — Hashtbl is not domain-safe (resize during a
   concurrent read can crash), so both sides take [registry_mu]. Keygen is
   setup-time and verify's critical section is one probe; contention is
   negligible next to the HMAC compute done outside the lock. *)
let registry : (string, string) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let keygen rng =
  let sk =
    String.concat ""
      (List.init 4 (fun _ ->
           let v = Sim.Rng.int64 rng in
           String.init 8 (fun i ->
               Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))))
  in
  let pk = Sha256.digest_strings [ "leopard.sig.pk"; sk ] in
  Mutex.protect registry_mu (fun () -> Hashtbl.replace registry pk sk);
  (pk, sk)

let sign sk msg = Sha256.hmac ~key:sk msg

let verify pk tag msg =
  match Mutex.protect registry_mu (fun () -> Hashtbl.find_opt registry pk) with
  | None -> false
  | Some sk -> String.equal tag (Sha256.hmac ~key:sk msg)

let public_key_equal = String.equal
let pp_public_key fmt pk = Format.pp_print_string fmt (String.sub (Sha256.to_hex pk) 0 8)

let to_raw t = t

let of_raw s =
  assert (String.length s = 32);
  s

let equal = String.equal
