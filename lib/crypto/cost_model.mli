(** CPU cost model for cryptographic operations.

    The simulated CPU charges these durations when replicas sign, verify
    and aggregate. Defaults follow the paper's measurements (§6.2.1): a
    BLS threshold-signature verification costs ~10 ms, an ECDSA/secp256k1
    verification ~50 µs — a 200x gap the paper identifies as a latency
    contributor. Profiles let benches reproduce that gap and let tests run
    with free crypto. *)

type t = {
  sign : Sim.Sim_time.span;            (** plain signature generation *)
  verify : Sim.Sim_time.span;          (** plain signature verification *)
  hash_per_kb : Sim.Sim_time.span;     (** hashing cost per KiB of data *)
  tsig_share : Sim.Sim_time.span;      (** threshold share generation *)
  tvrf_share : Sim.Sim_time.span;      (** threshold share verification *)
  tcombine_per_share : Sim.Sim_time.span;  (** aggregation, per input share *)
  tvrf_aggregate : Sim.Sim_time.span;  (** aggregated signature verification *)
}

val paper : t
(** BLS threshold ops + ECDSA plain ops at the paper's measured costs
    (Leopard's instantiation). *)

val ecdsa_only : t
(** All ops at ECDSA-like costs (HotStuff's instantiation in [66], where
    quorum certificates carry secp256k1 signature vectors). *)

val free : t
(** Zero-cost crypto, for unit tests and pure-protocol property tests. *)

val hash_cost : t -> bytes_len:int -> Sim.Sim_time.span
(** Hashing cost for a payload of [bytes_len] bytes. *)

val hash_cost_ns : t -> bytes_len:int -> int
(** [hash_cost] as a nanosecond int (identical value) — the
    allocation-free companion for per-message hot paths. *)

val combine_cost : t -> shares:int -> Sim.Sim_time.span
(** Cost of aggregating [shares] threshold shares (verification of each
    share plus interpolation). *)
