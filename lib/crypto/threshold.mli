(** (t, n)-threshold signature scheme (§3.1), simulated over Shamir shares.

    [TKGen] deals a Shamir sharing of a master field element; a share
    signature on message [M] is the signer's Shamir share masked by a hash
    of [M], so shares are message-bound. [TSR] verifies [t + 1] shares and
    Lagrange-interpolates them into an aggregate; [TVrf] checks the
    aggregate against the group public key (a hash commitment to the
    master secret). The quorum semantics are real — fewer than [t + 1]
    valid shares cannot produce an aggregate that verifies — while
    cryptographic hardness is simulated (see DESIGN.md substitutions).
    Wire sizes and CPU costs mirror BLS as used by the paper. *)

type setup
(** Public material of one dealt key group: group key, per-member keys,
    threshold [t] and group size [n]. *)

type member_key
(** [tsk_i]: member [i]'s signing key (abstract). *)

type share
(** [σ_i]: a threshold signature share on some message. *)

type aggregate
(** σ: an aggregated threshold signature (a completed round-of-voting
    proof in Leopard: notarization, confirmation or checkpoint proof). *)

val share_size_bytes : int
(** Wire size of a share (48, as a BLS G1 point). *)

val aggregate_size_bytes : int
(** Wire size of an aggregate (48). *)

val keygen : Sim.Rng.t -> threshold:int -> parties:int -> setup * member_key array
(** [keygen rng ~threshold ~parties] deals keys for members [1..parties];
    [threshold + 1] shares are needed to aggregate. The returned array is
    indexed by member (0-based position = member index - 1).
    Requires [0 <= threshold < parties]. *)

val threshold : setup -> int
val parties : setup -> int

val sign_share : member_key -> string -> share
(** [TSig]: member's share on a message. *)

val share_index : share -> int
(** The 1-based member index that produced the share. *)

val verify_share : setup -> share -> string -> bool
(** Checks a share against the member's public key and the message. *)

val combine : setup -> string -> share list -> aggregate option
(** [TSR]: verifies the shares and aggregates. Returns [None] when fewer
    than [threshold + 1] valid shares with distinct indices are supplied
    (invalid or duplicate shares are discarded, matching robustness). *)

val verify : setup -> aggregate -> string -> bool
(** [TVrf] on an aggregated signature. *)

val encode : aggregate -> string
(** Deterministic encoding of an aggregate, for hashing — Algorithm 2's
    second voting round signs [H(σ¹)]. *)

val encode_digest : aggregate -> string
(** SHA-256 of [encode agg] (32 raw bytes), memoized in the aggregate:
    every receiver of a notarization hashes the same immutable proof, so
    the digest is computed once per aggregate rather than once per
    receiver. The simulated hashing cost is charged by the cost model
    regardless.

    Memory note: this memo (like [verify]'s) lives {e inside} the
    aggregate value, so it is bounded by the lifetime of the aggregates
    themselves — there is no growing side table. The one genuinely
    table-shaped cache in the system, {!Core.Replica}'s verified-
    notarization set, is capped (see [Replica.notar_cache_cap]). *)

val forge_attempt : setup -> string -> aggregate
(** An aggregate built without any share — guaranteed not to verify; used
    by Byzantine strategies and unforgeability-shape tests. *)

(** {2 Raw access (persistence/wire codecs)}

    Shares and aggregates serialize to their field representation; raw
    reconstruction cannot mint valid values (verification still checks
    the key commitments). *)

val share_raw : share -> int * int
(** [(member index, masked field value)]. *)

val share_of_raw : index:int -> value:int -> share

val aggregate_raw : aggregate -> int
val aggregate_of_raw : int -> aggregate

val share_equal : share -> share -> bool
val aggregate_equal : aggregate -> aggregate -> bool
