type step = { sibling : Hash.t; sibling_on_left : bool }
type proof = step list

let parent l r = Hash.combine [ l; r ]

(* [root] is the hot path: it runs once per datablock creation and once
   per receiver-side verification, over alpha leaves. The list-based
   [level_up] allocates a fresh list per level (~33 words per inner node);
   instead the levels are computed into two ping-pong scratch buffers with
   [Sha256.digest_pair_into], so a root costs exactly one 32-byte string
   allocation (the result) regardless of width. The scratch grows to the
   widest leaf set seen and is reused; it lives in domain-local storage so
   concurrent [root] calls from different domains each get their own and
   cannot corrupt one another. *)
type scratch = { mutable a : Bytes.t; mutable b : Bytes.t }

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { a = Bytes.create (256 * Hash.size_bytes);
        b = Bytes.create (256 * Hash.size_bytes) })

let ensure_scratch s need =
  if Bytes.length s.a < need then begin
    let cap = ref (Bytes.length s.a) in
    while !cap < need do
      cap := !cap * 2
    done;
    s.a <- Bytes.create !cap;
    s.b <- Bytes.create !cap
  end

let root = function
  | [] -> Hash.of_string ""
  | [ x ] -> x
  | leaves ->
    let n = List.length leaves in
    let s = Domain.DLS.get scratch_key in
    ensure_scratch s (n * Hash.size_bytes);
    let src = ref s.a and dst = ref s.b in
    List.iteri (fun i h -> Bytes.blit_string (Hash.raw h) 0 !src (i * Hash.size_bytes) Hash.size_bytes) leaves;
    let width = ref n in
    while !width > 1 do
      let pairs = !width / 2 in
      for i = 0 to pairs - 1 do
        Sha256.digest_pair_into ~src:!src ~src_off:(i * 64) ~dst:!dst
          ~dst_off:(i * Hash.size_bytes)
      done;
      (* odd tail promoted unchanged, as in [level_up] *)
      if !width land 1 = 1 then begin
        Bytes.blit !src ((!width - 1) * Hash.size_bytes) !dst (pairs * Hash.size_bytes)
          Hash.size_bytes;
        width := pairs + 1
      end
      else width := pairs;
      let t = !src in
      src := !dst;
      dst := t
    done;
    Hash.of_raw (Bytes.sub_string !src 0 Hash.size_bytes)

let prove leaves i =
  let n = List.length leaves in
  if i < 0 || i >= n then None
  else begin
    let rec go nodes idx acc =
      match nodes with
      (* Total: [go] starts with >= 1 node (the index range check above
         guarantees non-empty leaves) and pairing never empties a level,
         but a defensive total match beats a process-killing assert. *)
      | [] -> List.rev acc
      | [ _ ] -> List.rev acc
      | _ ->
        let arr = Array.of_list nodes in
        let len = Array.length arr in
        let acc =
          if idx land 1 = 0 then
            if idx + 1 < len then { sibling = arr.(idx + 1); sibling_on_left = false } :: acc
            else acc (* odd tail promoted: no sibling at this level *)
          else { sibling = arr.(idx - 1); sibling_on_left = true } :: acc
        in
        let next =
          let rec pair = function
            | l :: r :: rest -> parent l r :: pair rest
            | [ odd ] -> [ odd ]
            | [] -> []
          in
          pair nodes
        in
        go next (idx / 2) acc
    in
    Some (go leaves i [])
  end

let verify_proof ~root:expected ~leaf proof =
  let computed =
    List.fold_left
      (fun acc step ->
        if step.sibling_on_left then parent step.sibling acc else parent acc step.sibling)
      leaf proof
  in
  Hash.equal computed expected

let proof_size_bytes proof = (List.length proof * Hash.size_bytes) + ((List.length proof + 7) / 8)
