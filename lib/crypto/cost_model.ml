open Sim

type t = {
  sign : Sim_time.span;
  verify : Sim_time.span;
  hash_per_kb : Sim_time.span;
  tsig_share : Sim_time.span;
  tvrf_share : Sim_time.span;
  tcombine_per_share : Sim_time.span;
  tvrf_aggregate : Sim_time.span;
}

let paper =
  { sign = Sim_time.us 60;
    verify = Sim_time.us 50;
    hash_per_kb = Sim_time.us 3;
    tsig_share = Sim_time.ms 1;
    (* Share validity is established by verifying the combined aggregate
       (one pairing) rather than one pairing per share; a per-share check
       is cheap bookkeeping. This mirrors how the prototype sustains 10^5
       ops/s despite 10 ms BLS verifications. *)
    tvrf_share = Sim_time.us 30;
    tcombine_per_share = Sim_time.us 40;
    tvrf_aggregate = Sim_time.ms 10 }

let ecdsa_only =
  { sign = Sim_time.us 60;
    verify = Sim_time.us 50;
    hash_per_kb = Sim_time.us 3;
    tsig_share = Sim_time.us 60;
    tvrf_share = Sim_time.us 50;
    tcombine_per_share = Sim_time.us 2;
    tvrf_aggregate = Sim_time.us 50 }

let free =
  { sign = 0L;
    verify = 0L;
    hash_per_kb = 0L;
    tsig_share = 0L;
    tvrf_share = 0L;
    tcombine_per_share = 0L;
    tvrf_aggregate = 0L }

let hash_cost t ~bytes_len =
  Int64.div (Int64.mul t.hash_per_kb (Int64.of_int bytes_len)) 1024L

(* [hash_cost] on immediate ints (same truncating division — both
   operands are non-negative): the per-delivery datablock path computes
   this once per receiver, where int64 intermediates would box. *)
let hash_cost_ns t ~bytes_len = Int64.to_int t.hash_per_kb * bytes_len / 1024

let combine_cost t ~shares =
  Sim_time.( + )
    (Int64.mul t.tcombine_per_share (Int64.of_int shares))
    (Int64.mul t.tvrf_share (Int64.of_int shares))
