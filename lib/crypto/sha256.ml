(* FIPS 180-4 SHA-256, fully unrolled over unboxed [Int32].

   The compression function below is mechanically unrolled: all 64 rounds
   are let-threaded straight-line code with the message schedule fused in
   (w16..w63 are computed inline from the rolling 16-word window, so there
   is no schedule array and no per-round array traffic). Every local is a
   let-bound [Int32] consumed by [Int32] primitives, which classic
   ocamlopt keeps unboxed in straight-line code — 32-bit wrap-around comes
   free from the width of the operations, with no masking and no per-word
   allocation. Only the 8-word chaining state crosses the function
   boundary, as an [int array] of 32-bit values.

   Measured on the simulator's vote hot path this is ~3x the throughput
   of the boxed [Int32] reference implementation it replaces; see
   bench/micro.ml and DESIGN.md ("Performance substrate"). Digests are
   verified against the FIPS 180-4 / RFC 6234 vectors in test_crypto.ml. *)

let mask32 = 0xFFFFFFFF

type ctx = {
  h : int array;                     (* 8 chaining words, 32-bit each *)
  block : bytes;                     (* 64-byte input block buffer *)
  mutable fill : int;                (* bytes buffered in [block] *)
  mutable total : int;               (* total message bytes fed *)
  mutable finalized : bool;
}

let init () =
  { h =
      [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
         0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |];
    block = Bytes.create 64;
    fill = 0;
    total = 0;
    finalized = false }

(* Do not hand-edit the round bodies: regenerate or edit all 64 uniformly.
   Round i:  t    = h + S1(e) + Ch(e,f,g) + K[i] + w[i]   (Ch as g^(e&(f^g)), Maj as (a&(b^c))^(b&c))
             e'   = d + t
             a'   = t + S0(a) + Maj(a,b,c)
   Schedule: w[i] = w[i-16] + s0(w[i-15]) + w[i-7] + s1(w[i-2])   (i >= 16) *)
let compress (h : int array) (block : bytes) (off : int) =
  let ia = Int32.of_int (Array.unsafe_get h 0) and ib = Int32.of_int (Array.unsafe_get h 1)
  and ic = Int32.of_int (Array.unsafe_get h 2) and id = Int32.of_int (Array.unsafe_get h 3)
  and ie = Int32.of_int (Array.unsafe_get h 4) and if_ = Int32.of_int (Array.unsafe_get h 5)
  and ig = Int32.of_int (Array.unsafe_get h 6) and ih = Int32.of_int (Array.unsafe_get h 7) in
  let w0 = Bytes.get_int32_be block (off + 0) in
  let w1 = Bytes.get_int32_be block (off + 4) in
  let w2 = Bytes.get_int32_be block (off + 8) in
  let w3 = Bytes.get_int32_be block (off + 12) in
  let w4 = Bytes.get_int32_be block (off + 16) in
  let w5 = Bytes.get_int32_be block (off + 20) in
  let w6 = Bytes.get_int32_be block (off + 24) in
  let w7 = Bytes.get_int32_be block (off + 28) in
  let w8 = Bytes.get_int32_be block (off + 32) in
  let w9 = Bytes.get_int32_be block (off + 36) in
  let w10 = Bytes.get_int32_be block (off + 40) in
  let w11 = Bytes.get_int32_be block (off + 44) in
  let w12 = Bytes.get_int32_be block (off + 48) in
  let w13 = Bytes.get_int32_be block (off + 52) in
  let w14 = Bytes.get_int32_be block (off + 56) in
  let w15 = Bytes.get_int32_be block (off + 60) in
  (* rounds 0-7 *)
  let t0 = Int32.add (Int32.add ih (Int32.logxor (Int32.logor (Int32.shift_right_logical ie 6) (Int32.shift_left ie 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical ie 11) (Int32.shift_left ie 21)) (Int32.logor (Int32.shift_right_logical ie 25) (Int32.shift_left ie 7))))) (Int32.add (Int32.logxor ig (Int32.logand ie (Int32.logxor if_ ig))) (Int32.add 1116352408l w0)) in
  let e0 = Int32.add id t0 in
  let a0 = Int32.add t0 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical ia 2) (Int32.shift_left ia 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical ia 13) (Int32.shift_left ia 19)) (Int32.logor (Int32.shift_right_logical ia 22) (Int32.shift_left ia 10)))) (Int32.logxor (Int32.logand ia (Int32.logxor ib ic)) (Int32.logand ib ic))) in
  let t1 = Int32.add (Int32.add ig (Int32.logxor (Int32.logor (Int32.shift_right_logical e0 6) (Int32.shift_left e0 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e0 11) (Int32.shift_left e0 21)) (Int32.logor (Int32.shift_right_logical e0 25) (Int32.shift_left e0 7))))) (Int32.add (Int32.logxor if_ (Int32.logand e0 (Int32.logxor ie if_))) (Int32.add 1899447441l w1)) in
  let e1 = Int32.add ic t1 in
  let a1 = Int32.add t1 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a0 2) (Int32.shift_left a0 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a0 13) (Int32.shift_left a0 19)) (Int32.logor (Int32.shift_right_logical a0 22) (Int32.shift_left a0 10)))) (Int32.logxor (Int32.logand a0 (Int32.logxor ia ib)) (Int32.logand ia ib))) in
  let t2 = Int32.add (Int32.add if_ (Int32.logxor (Int32.logor (Int32.shift_right_logical e1 6) (Int32.shift_left e1 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e1 11) (Int32.shift_left e1 21)) (Int32.logor (Int32.shift_right_logical e1 25) (Int32.shift_left e1 7))))) (Int32.add (Int32.logxor ie (Int32.logand e1 (Int32.logxor e0 ie))) (Int32.add (-1245643825l) w2)) in
  let e2 = Int32.add ib t2 in
  let a2 = Int32.add t2 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a1 2) (Int32.shift_left a1 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a1 13) (Int32.shift_left a1 19)) (Int32.logor (Int32.shift_right_logical a1 22) (Int32.shift_left a1 10)))) (Int32.logxor (Int32.logand a1 (Int32.logxor a0 ia)) (Int32.logand a0 ia))) in
  let t3 = Int32.add (Int32.add ie (Int32.logxor (Int32.logor (Int32.shift_right_logical e2 6) (Int32.shift_left e2 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e2 11) (Int32.shift_left e2 21)) (Int32.logor (Int32.shift_right_logical e2 25) (Int32.shift_left e2 7))))) (Int32.add (Int32.logxor e0 (Int32.logand e2 (Int32.logxor e1 e0))) (Int32.add (-373957723l) w3)) in
  let e3 = Int32.add ia t3 in
  let a3 = Int32.add t3 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a2 2) (Int32.shift_left a2 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a2 13) (Int32.shift_left a2 19)) (Int32.logor (Int32.shift_right_logical a2 22) (Int32.shift_left a2 10)))) (Int32.logxor (Int32.logand a2 (Int32.logxor a1 a0)) (Int32.logand a1 a0))) in
  let t4 = Int32.add (Int32.add e0 (Int32.logxor (Int32.logor (Int32.shift_right_logical e3 6) (Int32.shift_left e3 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e3 11) (Int32.shift_left e3 21)) (Int32.logor (Int32.shift_right_logical e3 25) (Int32.shift_left e3 7))))) (Int32.add (Int32.logxor e1 (Int32.logand e3 (Int32.logxor e2 e1))) (Int32.add 961987163l w4)) in
  let e4 = Int32.add a0 t4 in
  let a4 = Int32.add t4 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a3 2) (Int32.shift_left a3 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a3 13) (Int32.shift_left a3 19)) (Int32.logor (Int32.shift_right_logical a3 22) (Int32.shift_left a3 10)))) (Int32.logxor (Int32.logand a3 (Int32.logxor a2 a1)) (Int32.logand a2 a1))) in
  let t5 = Int32.add (Int32.add e1 (Int32.logxor (Int32.logor (Int32.shift_right_logical e4 6) (Int32.shift_left e4 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e4 11) (Int32.shift_left e4 21)) (Int32.logor (Int32.shift_right_logical e4 25) (Int32.shift_left e4 7))))) (Int32.add (Int32.logxor e2 (Int32.logand e4 (Int32.logxor e3 e2))) (Int32.add 1508970993l w5)) in
  let e5 = Int32.add a1 t5 in
  let a5 = Int32.add t5 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a4 2) (Int32.shift_left a4 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a4 13) (Int32.shift_left a4 19)) (Int32.logor (Int32.shift_right_logical a4 22) (Int32.shift_left a4 10)))) (Int32.logxor (Int32.logand a4 (Int32.logxor a3 a2)) (Int32.logand a3 a2))) in
  let t6 = Int32.add (Int32.add e2 (Int32.logxor (Int32.logor (Int32.shift_right_logical e5 6) (Int32.shift_left e5 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e5 11) (Int32.shift_left e5 21)) (Int32.logor (Int32.shift_right_logical e5 25) (Int32.shift_left e5 7))))) (Int32.add (Int32.logxor e3 (Int32.logand e5 (Int32.logxor e4 e3))) (Int32.add (-1841331548l) w6)) in
  let e6 = Int32.add a2 t6 in
  let a6 = Int32.add t6 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a5 2) (Int32.shift_left a5 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a5 13) (Int32.shift_left a5 19)) (Int32.logor (Int32.shift_right_logical a5 22) (Int32.shift_left a5 10)))) (Int32.logxor (Int32.logand a5 (Int32.logxor a4 a3)) (Int32.logand a4 a3))) in
  let t7 = Int32.add (Int32.add e3 (Int32.logxor (Int32.logor (Int32.shift_right_logical e6 6) (Int32.shift_left e6 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e6 11) (Int32.shift_left e6 21)) (Int32.logor (Int32.shift_right_logical e6 25) (Int32.shift_left e6 7))))) (Int32.add (Int32.logxor e4 (Int32.logand e6 (Int32.logxor e5 e4))) (Int32.add (-1424204075l) w7)) in
  let e7 = Int32.add a3 t7 in
  let a7 = Int32.add t7 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a6 2) (Int32.shift_left a6 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a6 13) (Int32.shift_left a6 19)) (Int32.logor (Int32.shift_right_logical a6 22) (Int32.shift_left a6 10)))) (Int32.logxor (Int32.logand a6 (Int32.logxor a5 a4)) (Int32.logand a5 a4))) in
  (* rounds 8-15 *)
  let t8 = Int32.add (Int32.add e4 (Int32.logxor (Int32.logor (Int32.shift_right_logical e7 6) (Int32.shift_left e7 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e7 11) (Int32.shift_left e7 21)) (Int32.logor (Int32.shift_right_logical e7 25) (Int32.shift_left e7 7))))) (Int32.add (Int32.logxor e5 (Int32.logand e7 (Int32.logxor e6 e5))) (Int32.add (-670586216l) w8)) in
  let e8 = Int32.add a4 t8 in
  let a8 = Int32.add t8 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a7 2) (Int32.shift_left a7 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a7 13) (Int32.shift_left a7 19)) (Int32.logor (Int32.shift_right_logical a7 22) (Int32.shift_left a7 10)))) (Int32.logxor (Int32.logand a7 (Int32.logxor a6 a5)) (Int32.logand a6 a5))) in
  let t9 = Int32.add (Int32.add e5 (Int32.logxor (Int32.logor (Int32.shift_right_logical e8 6) (Int32.shift_left e8 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e8 11) (Int32.shift_left e8 21)) (Int32.logor (Int32.shift_right_logical e8 25) (Int32.shift_left e8 7))))) (Int32.add (Int32.logxor e6 (Int32.logand e8 (Int32.logxor e7 e6))) (Int32.add 310598401l w9)) in
  let e9 = Int32.add a5 t9 in
  let a9 = Int32.add t9 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a8 2) (Int32.shift_left a8 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a8 13) (Int32.shift_left a8 19)) (Int32.logor (Int32.shift_right_logical a8 22) (Int32.shift_left a8 10)))) (Int32.logxor (Int32.logand a8 (Int32.logxor a7 a6)) (Int32.logand a7 a6))) in
  let t10 = Int32.add (Int32.add e6 (Int32.logxor (Int32.logor (Int32.shift_right_logical e9 6) (Int32.shift_left e9 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e9 11) (Int32.shift_left e9 21)) (Int32.logor (Int32.shift_right_logical e9 25) (Int32.shift_left e9 7))))) (Int32.add (Int32.logxor e7 (Int32.logand e9 (Int32.logxor e8 e7))) (Int32.add 607225278l w10)) in
  let e10 = Int32.add a6 t10 in
  let a10 = Int32.add t10 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a9 2) (Int32.shift_left a9 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a9 13) (Int32.shift_left a9 19)) (Int32.logor (Int32.shift_right_logical a9 22) (Int32.shift_left a9 10)))) (Int32.logxor (Int32.logand a9 (Int32.logxor a8 a7)) (Int32.logand a8 a7))) in
  let t11 = Int32.add (Int32.add e7 (Int32.logxor (Int32.logor (Int32.shift_right_logical e10 6) (Int32.shift_left e10 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e10 11) (Int32.shift_left e10 21)) (Int32.logor (Int32.shift_right_logical e10 25) (Int32.shift_left e10 7))))) (Int32.add (Int32.logxor e8 (Int32.logand e10 (Int32.logxor e9 e8))) (Int32.add 1426881987l w11)) in
  let e11 = Int32.add a7 t11 in
  let a11 = Int32.add t11 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a10 2) (Int32.shift_left a10 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a10 13) (Int32.shift_left a10 19)) (Int32.logor (Int32.shift_right_logical a10 22) (Int32.shift_left a10 10)))) (Int32.logxor (Int32.logand a10 (Int32.logxor a9 a8)) (Int32.logand a9 a8))) in
  let t12 = Int32.add (Int32.add e8 (Int32.logxor (Int32.logor (Int32.shift_right_logical e11 6) (Int32.shift_left e11 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e11 11) (Int32.shift_left e11 21)) (Int32.logor (Int32.shift_right_logical e11 25) (Int32.shift_left e11 7))))) (Int32.add (Int32.logxor e9 (Int32.logand e11 (Int32.logxor e10 e9))) (Int32.add 1925078388l w12)) in
  let e12 = Int32.add a8 t12 in
  let a12 = Int32.add t12 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a11 2) (Int32.shift_left a11 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a11 13) (Int32.shift_left a11 19)) (Int32.logor (Int32.shift_right_logical a11 22) (Int32.shift_left a11 10)))) (Int32.logxor (Int32.logand a11 (Int32.logxor a10 a9)) (Int32.logand a10 a9))) in
  let t13 = Int32.add (Int32.add e9 (Int32.logxor (Int32.logor (Int32.shift_right_logical e12 6) (Int32.shift_left e12 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e12 11) (Int32.shift_left e12 21)) (Int32.logor (Int32.shift_right_logical e12 25) (Int32.shift_left e12 7))))) (Int32.add (Int32.logxor e10 (Int32.logand e12 (Int32.logxor e11 e10))) (Int32.add (-2132889090l) w13)) in
  let e13 = Int32.add a9 t13 in
  let a13 = Int32.add t13 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a12 2) (Int32.shift_left a12 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a12 13) (Int32.shift_left a12 19)) (Int32.logor (Int32.shift_right_logical a12 22) (Int32.shift_left a12 10)))) (Int32.logxor (Int32.logand a12 (Int32.logxor a11 a10)) (Int32.logand a11 a10))) in
  let t14 = Int32.add (Int32.add e10 (Int32.logxor (Int32.logor (Int32.shift_right_logical e13 6) (Int32.shift_left e13 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e13 11) (Int32.shift_left e13 21)) (Int32.logor (Int32.shift_right_logical e13 25) (Int32.shift_left e13 7))))) (Int32.add (Int32.logxor e11 (Int32.logand e13 (Int32.logxor e12 e11))) (Int32.add (-1680079193l) w14)) in
  let e14 = Int32.add a10 t14 in
  let a14 = Int32.add t14 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a13 2) (Int32.shift_left a13 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a13 13) (Int32.shift_left a13 19)) (Int32.logor (Int32.shift_right_logical a13 22) (Int32.shift_left a13 10)))) (Int32.logxor (Int32.logand a13 (Int32.logxor a12 a11)) (Int32.logand a12 a11))) in
  let t15 = Int32.add (Int32.add e11 (Int32.logxor (Int32.logor (Int32.shift_right_logical e14 6) (Int32.shift_left e14 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e14 11) (Int32.shift_left e14 21)) (Int32.logor (Int32.shift_right_logical e14 25) (Int32.shift_left e14 7))))) (Int32.add (Int32.logxor e12 (Int32.logand e14 (Int32.logxor e13 e12))) (Int32.add (-1046744716l) w15)) in
  let e15 = Int32.add a11 t15 in
  let a15 = Int32.add t15 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a14 2) (Int32.shift_left a14 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a14 13) (Int32.shift_left a14 19)) (Int32.logor (Int32.shift_right_logical a14 22) (Int32.shift_left a14 10)))) (Int32.logxor (Int32.logand a14 (Int32.logxor a13 a12)) (Int32.logand a13 a12))) in
  (* rounds 16-23 *)
  let w16 = Int32.add (Int32.add w0 (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 7) (Int32.shift_left w1 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w1 18) (Int32.shift_left w1 14)) (Int32.shift_right_logical w1 3)))) (Int32.add w9 (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 17) (Int32.shift_left w14 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 19) (Int32.shift_left w14 13)) (Int32.shift_right_logical w14 10)))) in
  let t16 = Int32.add (Int32.add e12 (Int32.logxor (Int32.logor (Int32.shift_right_logical e15 6) (Int32.shift_left e15 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e15 11) (Int32.shift_left e15 21)) (Int32.logor (Int32.shift_right_logical e15 25) (Int32.shift_left e15 7))))) (Int32.add (Int32.logxor e13 (Int32.logand e15 (Int32.logxor e14 e13))) (Int32.add (-459576895l) w16)) in
  let e16 = Int32.add a12 t16 in
  let a16 = Int32.add t16 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a15 2) (Int32.shift_left a15 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a15 13) (Int32.shift_left a15 19)) (Int32.logor (Int32.shift_right_logical a15 22) (Int32.shift_left a15 10)))) (Int32.logxor (Int32.logand a15 (Int32.logxor a14 a13)) (Int32.logand a14 a13))) in
  let w17 = Int32.add (Int32.add w1 (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 7) (Int32.shift_left w2 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w2 18) (Int32.shift_left w2 14)) (Int32.shift_right_logical w2 3)))) (Int32.add w10 (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 17) (Int32.shift_left w15 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 19) (Int32.shift_left w15 13)) (Int32.shift_right_logical w15 10)))) in
  let t17 = Int32.add (Int32.add e13 (Int32.logxor (Int32.logor (Int32.shift_right_logical e16 6) (Int32.shift_left e16 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e16 11) (Int32.shift_left e16 21)) (Int32.logor (Int32.shift_right_logical e16 25) (Int32.shift_left e16 7))))) (Int32.add (Int32.logxor e14 (Int32.logand e16 (Int32.logxor e15 e14))) (Int32.add (-272742522l) w17)) in
  let e17 = Int32.add a13 t17 in
  let a17 = Int32.add t17 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a16 2) (Int32.shift_left a16 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a16 13) (Int32.shift_left a16 19)) (Int32.logor (Int32.shift_right_logical a16 22) (Int32.shift_left a16 10)))) (Int32.logxor (Int32.logand a16 (Int32.logxor a15 a14)) (Int32.logand a15 a14))) in
  let w18 = Int32.add (Int32.add w2 (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 7) (Int32.shift_left w3 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w3 18) (Int32.shift_left w3 14)) (Int32.shift_right_logical w3 3)))) (Int32.add w11 (Int32.logxor (Int32.logor (Int32.shift_right_logical w16 17) (Int32.shift_left w16 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w16 19) (Int32.shift_left w16 13)) (Int32.shift_right_logical w16 10)))) in
  let t18 = Int32.add (Int32.add e14 (Int32.logxor (Int32.logor (Int32.shift_right_logical e17 6) (Int32.shift_left e17 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e17 11) (Int32.shift_left e17 21)) (Int32.logor (Int32.shift_right_logical e17 25) (Int32.shift_left e17 7))))) (Int32.add (Int32.logxor e15 (Int32.logand e17 (Int32.logxor e16 e15))) (Int32.add 264347078l w18)) in
  let e18 = Int32.add a14 t18 in
  let a18 = Int32.add t18 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a17 2) (Int32.shift_left a17 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a17 13) (Int32.shift_left a17 19)) (Int32.logor (Int32.shift_right_logical a17 22) (Int32.shift_left a17 10)))) (Int32.logxor (Int32.logand a17 (Int32.logxor a16 a15)) (Int32.logand a16 a15))) in
  let w19 = Int32.add (Int32.add w3 (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 7) (Int32.shift_left w4 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w4 18) (Int32.shift_left w4 14)) (Int32.shift_right_logical w4 3)))) (Int32.add w12 (Int32.logxor (Int32.logor (Int32.shift_right_logical w17 17) (Int32.shift_left w17 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w17 19) (Int32.shift_left w17 13)) (Int32.shift_right_logical w17 10)))) in
  let t19 = Int32.add (Int32.add e15 (Int32.logxor (Int32.logor (Int32.shift_right_logical e18 6) (Int32.shift_left e18 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e18 11) (Int32.shift_left e18 21)) (Int32.logor (Int32.shift_right_logical e18 25) (Int32.shift_left e18 7))))) (Int32.add (Int32.logxor e16 (Int32.logand e18 (Int32.logxor e17 e16))) (Int32.add 604807628l w19)) in
  let e19 = Int32.add a15 t19 in
  let a19 = Int32.add t19 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a18 2) (Int32.shift_left a18 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a18 13) (Int32.shift_left a18 19)) (Int32.logor (Int32.shift_right_logical a18 22) (Int32.shift_left a18 10)))) (Int32.logxor (Int32.logand a18 (Int32.logxor a17 a16)) (Int32.logand a17 a16))) in
  let w20 = Int32.add (Int32.add w4 (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 7) (Int32.shift_left w5 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w5 18) (Int32.shift_left w5 14)) (Int32.shift_right_logical w5 3)))) (Int32.add w13 (Int32.logxor (Int32.logor (Int32.shift_right_logical w18 17) (Int32.shift_left w18 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w18 19) (Int32.shift_left w18 13)) (Int32.shift_right_logical w18 10)))) in
  let t20 = Int32.add (Int32.add e16 (Int32.logxor (Int32.logor (Int32.shift_right_logical e19 6) (Int32.shift_left e19 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e19 11) (Int32.shift_left e19 21)) (Int32.logor (Int32.shift_right_logical e19 25) (Int32.shift_left e19 7))))) (Int32.add (Int32.logxor e17 (Int32.logand e19 (Int32.logxor e18 e17))) (Int32.add 770255983l w20)) in
  let e20 = Int32.add a16 t20 in
  let a20 = Int32.add t20 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a19 2) (Int32.shift_left a19 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a19 13) (Int32.shift_left a19 19)) (Int32.logor (Int32.shift_right_logical a19 22) (Int32.shift_left a19 10)))) (Int32.logxor (Int32.logand a19 (Int32.logxor a18 a17)) (Int32.logand a18 a17))) in
  let w21 = Int32.add (Int32.add w5 (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 7) (Int32.shift_left w6 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w6 18) (Int32.shift_left w6 14)) (Int32.shift_right_logical w6 3)))) (Int32.add w14 (Int32.logxor (Int32.logor (Int32.shift_right_logical w19 17) (Int32.shift_left w19 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w19 19) (Int32.shift_left w19 13)) (Int32.shift_right_logical w19 10)))) in
  let t21 = Int32.add (Int32.add e17 (Int32.logxor (Int32.logor (Int32.shift_right_logical e20 6) (Int32.shift_left e20 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e20 11) (Int32.shift_left e20 21)) (Int32.logor (Int32.shift_right_logical e20 25) (Int32.shift_left e20 7))))) (Int32.add (Int32.logxor e18 (Int32.logand e20 (Int32.logxor e19 e18))) (Int32.add 1249150122l w21)) in
  let e21 = Int32.add a17 t21 in
  let a21 = Int32.add t21 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a20 2) (Int32.shift_left a20 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a20 13) (Int32.shift_left a20 19)) (Int32.logor (Int32.shift_right_logical a20 22) (Int32.shift_left a20 10)))) (Int32.logxor (Int32.logand a20 (Int32.logxor a19 a18)) (Int32.logand a19 a18))) in
  let w22 = Int32.add (Int32.add w6 (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 7) (Int32.shift_left w7 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w7 18) (Int32.shift_left w7 14)) (Int32.shift_right_logical w7 3)))) (Int32.add w15 (Int32.logxor (Int32.logor (Int32.shift_right_logical w20 17) (Int32.shift_left w20 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w20 19) (Int32.shift_left w20 13)) (Int32.shift_right_logical w20 10)))) in
  let t22 = Int32.add (Int32.add e18 (Int32.logxor (Int32.logor (Int32.shift_right_logical e21 6) (Int32.shift_left e21 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e21 11) (Int32.shift_left e21 21)) (Int32.logor (Int32.shift_right_logical e21 25) (Int32.shift_left e21 7))))) (Int32.add (Int32.logxor e19 (Int32.logand e21 (Int32.logxor e20 e19))) (Int32.add 1555081692l w22)) in
  let e22 = Int32.add a18 t22 in
  let a22 = Int32.add t22 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a21 2) (Int32.shift_left a21 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a21 13) (Int32.shift_left a21 19)) (Int32.logor (Int32.shift_right_logical a21 22) (Int32.shift_left a21 10)))) (Int32.logxor (Int32.logand a21 (Int32.logxor a20 a19)) (Int32.logand a20 a19))) in
  let w23 = Int32.add (Int32.add w7 (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 7) (Int32.shift_left w8 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w8 18) (Int32.shift_left w8 14)) (Int32.shift_right_logical w8 3)))) (Int32.add w16 (Int32.logxor (Int32.logor (Int32.shift_right_logical w21 17) (Int32.shift_left w21 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w21 19) (Int32.shift_left w21 13)) (Int32.shift_right_logical w21 10)))) in
  let t23 = Int32.add (Int32.add e19 (Int32.logxor (Int32.logor (Int32.shift_right_logical e22 6) (Int32.shift_left e22 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e22 11) (Int32.shift_left e22 21)) (Int32.logor (Int32.shift_right_logical e22 25) (Int32.shift_left e22 7))))) (Int32.add (Int32.logxor e20 (Int32.logand e22 (Int32.logxor e21 e20))) (Int32.add 1996064986l w23)) in
  let e23 = Int32.add a19 t23 in
  let a23 = Int32.add t23 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a22 2) (Int32.shift_left a22 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a22 13) (Int32.shift_left a22 19)) (Int32.logor (Int32.shift_right_logical a22 22) (Int32.shift_left a22 10)))) (Int32.logxor (Int32.logand a22 (Int32.logxor a21 a20)) (Int32.logand a21 a20))) in
  (* rounds 24-31 *)
  let w24 = Int32.add (Int32.add w8 (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 7) (Int32.shift_left w9 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w9 18) (Int32.shift_left w9 14)) (Int32.shift_right_logical w9 3)))) (Int32.add w17 (Int32.logxor (Int32.logor (Int32.shift_right_logical w22 17) (Int32.shift_left w22 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w22 19) (Int32.shift_left w22 13)) (Int32.shift_right_logical w22 10)))) in
  let t24 = Int32.add (Int32.add e20 (Int32.logxor (Int32.logor (Int32.shift_right_logical e23 6) (Int32.shift_left e23 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e23 11) (Int32.shift_left e23 21)) (Int32.logor (Int32.shift_right_logical e23 25) (Int32.shift_left e23 7))))) (Int32.add (Int32.logxor e21 (Int32.logand e23 (Int32.logxor e22 e21))) (Int32.add (-1740746414l) w24)) in
  let e24 = Int32.add a20 t24 in
  let a24 = Int32.add t24 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a23 2) (Int32.shift_left a23 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a23 13) (Int32.shift_left a23 19)) (Int32.logor (Int32.shift_right_logical a23 22) (Int32.shift_left a23 10)))) (Int32.logxor (Int32.logand a23 (Int32.logxor a22 a21)) (Int32.logand a22 a21))) in
  let w25 = Int32.add (Int32.add w9 (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 7) (Int32.shift_left w10 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w10 18) (Int32.shift_left w10 14)) (Int32.shift_right_logical w10 3)))) (Int32.add w18 (Int32.logxor (Int32.logor (Int32.shift_right_logical w23 17) (Int32.shift_left w23 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w23 19) (Int32.shift_left w23 13)) (Int32.shift_right_logical w23 10)))) in
  let t25 = Int32.add (Int32.add e21 (Int32.logxor (Int32.logor (Int32.shift_right_logical e24 6) (Int32.shift_left e24 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e24 11) (Int32.shift_left e24 21)) (Int32.logor (Int32.shift_right_logical e24 25) (Int32.shift_left e24 7))))) (Int32.add (Int32.logxor e22 (Int32.logand e24 (Int32.logxor e23 e22))) (Int32.add (-1473132947l) w25)) in
  let e25 = Int32.add a21 t25 in
  let a25 = Int32.add t25 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a24 2) (Int32.shift_left a24 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a24 13) (Int32.shift_left a24 19)) (Int32.logor (Int32.shift_right_logical a24 22) (Int32.shift_left a24 10)))) (Int32.logxor (Int32.logand a24 (Int32.logxor a23 a22)) (Int32.logand a23 a22))) in
  let w26 = Int32.add (Int32.add w10 (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 7) (Int32.shift_left w11 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w11 18) (Int32.shift_left w11 14)) (Int32.shift_right_logical w11 3)))) (Int32.add w19 (Int32.logxor (Int32.logor (Int32.shift_right_logical w24 17) (Int32.shift_left w24 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w24 19) (Int32.shift_left w24 13)) (Int32.shift_right_logical w24 10)))) in
  let t26 = Int32.add (Int32.add e22 (Int32.logxor (Int32.logor (Int32.shift_right_logical e25 6) (Int32.shift_left e25 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e25 11) (Int32.shift_left e25 21)) (Int32.logor (Int32.shift_right_logical e25 25) (Int32.shift_left e25 7))))) (Int32.add (Int32.logxor e23 (Int32.logand e25 (Int32.logxor e24 e23))) (Int32.add (-1341970488l) w26)) in
  let e26 = Int32.add a22 t26 in
  let a26 = Int32.add t26 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a25 2) (Int32.shift_left a25 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a25 13) (Int32.shift_left a25 19)) (Int32.logor (Int32.shift_right_logical a25 22) (Int32.shift_left a25 10)))) (Int32.logxor (Int32.logand a25 (Int32.logxor a24 a23)) (Int32.logand a24 a23))) in
  let w27 = Int32.add (Int32.add w11 (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 7) (Int32.shift_left w12 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w12 18) (Int32.shift_left w12 14)) (Int32.shift_right_logical w12 3)))) (Int32.add w20 (Int32.logxor (Int32.logor (Int32.shift_right_logical w25 17) (Int32.shift_left w25 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w25 19) (Int32.shift_left w25 13)) (Int32.shift_right_logical w25 10)))) in
  let t27 = Int32.add (Int32.add e23 (Int32.logxor (Int32.logor (Int32.shift_right_logical e26 6) (Int32.shift_left e26 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e26 11) (Int32.shift_left e26 21)) (Int32.logor (Int32.shift_right_logical e26 25) (Int32.shift_left e26 7))))) (Int32.add (Int32.logxor e24 (Int32.logand e26 (Int32.logxor e25 e24))) (Int32.add (-1084653625l) w27)) in
  let e27 = Int32.add a23 t27 in
  let a27 = Int32.add t27 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a26 2) (Int32.shift_left a26 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a26 13) (Int32.shift_left a26 19)) (Int32.logor (Int32.shift_right_logical a26 22) (Int32.shift_left a26 10)))) (Int32.logxor (Int32.logand a26 (Int32.logxor a25 a24)) (Int32.logand a25 a24))) in
  let w28 = Int32.add (Int32.add w12 (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 7) (Int32.shift_left w13 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w13 18) (Int32.shift_left w13 14)) (Int32.shift_right_logical w13 3)))) (Int32.add w21 (Int32.logxor (Int32.logor (Int32.shift_right_logical w26 17) (Int32.shift_left w26 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w26 19) (Int32.shift_left w26 13)) (Int32.shift_right_logical w26 10)))) in
  let t28 = Int32.add (Int32.add e24 (Int32.logxor (Int32.logor (Int32.shift_right_logical e27 6) (Int32.shift_left e27 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e27 11) (Int32.shift_left e27 21)) (Int32.logor (Int32.shift_right_logical e27 25) (Int32.shift_left e27 7))))) (Int32.add (Int32.logxor e25 (Int32.logand e27 (Int32.logxor e26 e25))) (Int32.add (-958395405l) w28)) in
  let e28 = Int32.add a24 t28 in
  let a28 = Int32.add t28 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a27 2) (Int32.shift_left a27 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a27 13) (Int32.shift_left a27 19)) (Int32.logor (Int32.shift_right_logical a27 22) (Int32.shift_left a27 10)))) (Int32.logxor (Int32.logand a27 (Int32.logxor a26 a25)) (Int32.logand a26 a25))) in
  let w29 = Int32.add (Int32.add w13 (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 7) (Int32.shift_left w14 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w14 18) (Int32.shift_left w14 14)) (Int32.shift_right_logical w14 3)))) (Int32.add w22 (Int32.logxor (Int32.logor (Int32.shift_right_logical w27 17) (Int32.shift_left w27 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w27 19) (Int32.shift_left w27 13)) (Int32.shift_right_logical w27 10)))) in
  let t29 = Int32.add (Int32.add e25 (Int32.logxor (Int32.logor (Int32.shift_right_logical e28 6) (Int32.shift_left e28 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e28 11) (Int32.shift_left e28 21)) (Int32.logor (Int32.shift_right_logical e28 25) (Int32.shift_left e28 7))))) (Int32.add (Int32.logxor e26 (Int32.logand e28 (Int32.logxor e27 e26))) (Int32.add (-710438585l) w29)) in
  let e29 = Int32.add a25 t29 in
  let a29 = Int32.add t29 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a28 2) (Int32.shift_left a28 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a28 13) (Int32.shift_left a28 19)) (Int32.logor (Int32.shift_right_logical a28 22) (Int32.shift_left a28 10)))) (Int32.logxor (Int32.logand a28 (Int32.logxor a27 a26)) (Int32.logand a27 a26))) in
  let w30 = Int32.add (Int32.add w14 (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 7) (Int32.shift_left w15 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w15 18) (Int32.shift_left w15 14)) (Int32.shift_right_logical w15 3)))) (Int32.add w23 (Int32.logxor (Int32.logor (Int32.shift_right_logical w28 17) (Int32.shift_left w28 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w28 19) (Int32.shift_left w28 13)) (Int32.shift_right_logical w28 10)))) in
  let t30 = Int32.add (Int32.add e26 (Int32.logxor (Int32.logor (Int32.shift_right_logical e29 6) (Int32.shift_left e29 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e29 11) (Int32.shift_left e29 21)) (Int32.logor (Int32.shift_right_logical e29 25) (Int32.shift_left e29 7))))) (Int32.add (Int32.logxor e27 (Int32.logand e29 (Int32.logxor e28 e27))) (Int32.add 113926993l w30)) in
  let e30 = Int32.add a26 t30 in
  let a30 = Int32.add t30 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a29 2) (Int32.shift_left a29 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a29 13) (Int32.shift_left a29 19)) (Int32.logor (Int32.shift_right_logical a29 22) (Int32.shift_left a29 10)))) (Int32.logxor (Int32.logand a29 (Int32.logxor a28 a27)) (Int32.logand a28 a27))) in
  let w31 = Int32.add (Int32.add w15 (Int32.logxor (Int32.logor (Int32.shift_right_logical w16 7) (Int32.shift_left w16 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w16 18) (Int32.shift_left w16 14)) (Int32.shift_right_logical w16 3)))) (Int32.add w24 (Int32.logxor (Int32.logor (Int32.shift_right_logical w29 17) (Int32.shift_left w29 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w29 19) (Int32.shift_left w29 13)) (Int32.shift_right_logical w29 10)))) in
  let t31 = Int32.add (Int32.add e27 (Int32.logxor (Int32.logor (Int32.shift_right_logical e30 6) (Int32.shift_left e30 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e30 11) (Int32.shift_left e30 21)) (Int32.logor (Int32.shift_right_logical e30 25) (Int32.shift_left e30 7))))) (Int32.add (Int32.logxor e28 (Int32.logand e30 (Int32.logxor e29 e28))) (Int32.add 338241895l w31)) in
  let e31 = Int32.add a27 t31 in
  let a31 = Int32.add t31 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a30 2) (Int32.shift_left a30 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a30 13) (Int32.shift_left a30 19)) (Int32.logor (Int32.shift_right_logical a30 22) (Int32.shift_left a30 10)))) (Int32.logxor (Int32.logand a30 (Int32.logxor a29 a28)) (Int32.logand a29 a28))) in
  (* rounds 32-39 *)
  let w32 = Int32.add (Int32.add w16 (Int32.logxor (Int32.logor (Int32.shift_right_logical w17 7) (Int32.shift_left w17 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w17 18) (Int32.shift_left w17 14)) (Int32.shift_right_logical w17 3)))) (Int32.add w25 (Int32.logxor (Int32.logor (Int32.shift_right_logical w30 17) (Int32.shift_left w30 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w30 19) (Int32.shift_left w30 13)) (Int32.shift_right_logical w30 10)))) in
  let t32 = Int32.add (Int32.add e28 (Int32.logxor (Int32.logor (Int32.shift_right_logical e31 6) (Int32.shift_left e31 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e31 11) (Int32.shift_left e31 21)) (Int32.logor (Int32.shift_right_logical e31 25) (Int32.shift_left e31 7))))) (Int32.add (Int32.logxor e29 (Int32.logand e31 (Int32.logxor e30 e29))) (Int32.add 666307205l w32)) in
  let e32 = Int32.add a28 t32 in
  let a32 = Int32.add t32 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a31 2) (Int32.shift_left a31 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a31 13) (Int32.shift_left a31 19)) (Int32.logor (Int32.shift_right_logical a31 22) (Int32.shift_left a31 10)))) (Int32.logxor (Int32.logand a31 (Int32.logxor a30 a29)) (Int32.logand a30 a29))) in
  let w33 = Int32.add (Int32.add w17 (Int32.logxor (Int32.logor (Int32.shift_right_logical w18 7) (Int32.shift_left w18 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w18 18) (Int32.shift_left w18 14)) (Int32.shift_right_logical w18 3)))) (Int32.add w26 (Int32.logxor (Int32.logor (Int32.shift_right_logical w31 17) (Int32.shift_left w31 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w31 19) (Int32.shift_left w31 13)) (Int32.shift_right_logical w31 10)))) in
  let t33 = Int32.add (Int32.add e29 (Int32.logxor (Int32.logor (Int32.shift_right_logical e32 6) (Int32.shift_left e32 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e32 11) (Int32.shift_left e32 21)) (Int32.logor (Int32.shift_right_logical e32 25) (Int32.shift_left e32 7))))) (Int32.add (Int32.logxor e30 (Int32.logand e32 (Int32.logxor e31 e30))) (Int32.add 773529912l w33)) in
  let e33 = Int32.add a29 t33 in
  let a33 = Int32.add t33 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a32 2) (Int32.shift_left a32 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a32 13) (Int32.shift_left a32 19)) (Int32.logor (Int32.shift_right_logical a32 22) (Int32.shift_left a32 10)))) (Int32.logxor (Int32.logand a32 (Int32.logxor a31 a30)) (Int32.logand a31 a30))) in
  let w34 = Int32.add (Int32.add w18 (Int32.logxor (Int32.logor (Int32.shift_right_logical w19 7) (Int32.shift_left w19 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w19 18) (Int32.shift_left w19 14)) (Int32.shift_right_logical w19 3)))) (Int32.add w27 (Int32.logxor (Int32.logor (Int32.shift_right_logical w32 17) (Int32.shift_left w32 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w32 19) (Int32.shift_left w32 13)) (Int32.shift_right_logical w32 10)))) in
  let t34 = Int32.add (Int32.add e30 (Int32.logxor (Int32.logor (Int32.shift_right_logical e33 6) (Int32.shift_left e33 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e33 11) (Int32.shift_left e33 21)) (Int32.logor (Int32.shift_right_logical e33 25) (Int32.shift_left e33 7))))) (Int32.add (Int32.logxor e31 (Int32.logand e33 (Int32.logxor e32 e31))) (Int32.add 1294757372l w34)) in
  let e34 = Int32.add a30 t34 in
  let a34 = Int32.add t34 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a33 2) (Int32.shift_left a33 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a33 13) (Int32.shift_left a33 19)) (Int32.logor (Int32.shift_right_logical a33 22) (Int32.shift_left a33 10)))) (Int32.logxor (Int32.logand a33 (Int32.logxor a32 a31)) (Int32.logand a32 a31))) in
  let w35 = Int32.add (Int32.add w19 (Int32.logxor (Int32.logor (Int32.shift_right_logical w20 7) (Int32.shift_left w20 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w20 18) (Int32.shift_left w20 14)) (Int32.shift_right_logical w20 3)))) (Int32.add w28 (Int32.logxor (Int32.logor (Int32.shift_right_logical w33 17) (Int32.shift_left w33 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w33 19) (Int32.shift_left w33 13)) (Int32.shift_right_logical w33 10)))) in
  let t35 = Int32.add (Int32.add e31 (Int32.logxor (Int32.logor (Int32.shift_right_logical e34 6) (Int32.shift_left e34 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e34 11) (Int32.shift_left e34 21)) (Int32.logor (Int32.shift_right_logical e34 25) (Int32.shift_left e34 7))))) (Int32.add (Int32.logxor e32 (Int32.logand e34 (Int32.logxor e33 e32))) (Int32.add 1396182291l w35)) in
  let e35 = Int32.add a31 t35 in
  let a35 = Int32.add t35 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a34 2) (Int32.shift_left a34 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a34 13) (Int32.shift_left a34 19)) (Int32.logor (Int32.shift_right_logical a34 22) (Int32.shift_left a34 10)))) (Int32.logxor (Int32.logand a34 (Int32.logxor a33 a32)) (Int32.logand a33 a32))) in
  let w36 = Int32.add (Int32.add w20 (Int32.logxor (Int32.logor (Int32.shift_right_logical w21 7) (Int32.shift_left w21 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w21 18) (Int32.shift_left w21 14)) (Int32.shift_right_logical w21 3)))) (Int32.add w29 (Int32.logxor (Int32.logor (Int32.shift_right_logical w34 17) (Int32.shift_left w34 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w34 19) (Int32.shift_left w34 13)) (Int32.shift_right_logical w34 10)))) in
  let t36 = Int32.add (Int32.add e32 (Int32.logxor (Int32.logor (Int32.shift_right_logical e35 6) (Int32.shift_left e35 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e35 11) (Int32.shift_left e35 21)) (Int32.logor (Int32.shift_right_logical e35 25) (Int32.shift_left e35 7))))) (Int32.add (Int32.logxor e33 (Int32.logand e35 (Int32.logxor e34 e33))) (Int32.add 1695183700l w36)) in
  let e36 = Int32.add a32 t36 in
  let a36 = Int32.add t36 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a35 2) (Int32.shift_left a35 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a35 13) (Int32.shift_left a35 19)) (Int32.logor (Int32.shift_right_logical a35 22) (Int32.shift_left a35 10)))) (Int32.logxor (Int32.logand a35 (Int32.logxor a34 a33)) (Int32.logand a34 a33))) in
  let w37 = Int32.add (Int32.add w21 (Int32.logxor (Int32.logor (Int32.shift_right_logical w22 7) (Int32.shift_left w22 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w22 18) (Int32.shift_left w22 14)) (Int32.shift_right_logical w22 3)))) (Int32.add w30 (Int32.logxor (Int32.logor (Int32.shift_right_logical w35 17) (Int32.shift_left w35 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w35 19) (Int32.shift_left w35 13)) (Int32.shift_right_logical w35 10)))) in
  let t37 = Int32.add (Int32.add e33 (Int32.logxor (Int32.logor (Int32.shift_right_logical e36 6) (Int32.shift_left e36 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e36 11) (Int32.shift_left e36 21)) (Int32.logor (Int32.shift_right_logical e36 25) (Int32.shift_left e36 7))))) (Int32.add (Int32.logxor e34 (Int32.logand e36 (Int32.logxor e35 e34))) (Int32.add 1986661051l w37)) in
  let e37 = Int32.add a33 t37 in
  let a37 = Int32.add t37 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a36 2) (Int32.shift_left a36 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a36 13) (Int32.shift_left a36 19)) (Int32.logor (Int32.shift_right_logical a36 22) (Int32.shift_left a36 10)))) (Int32.logxor (Int32.logand a36 (Int32.logxor a35 a34)) (Int32.logand a35 a34))) in
  let w38 = Int32.add (Int32.add w22 (Int32.logxor (Int32.logor (Int32.shift_right_logical w23 7) (Int32.shift_left w23 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w23 18) (Int32.shift_left w23 14)) (Int32.shift_right_logical w23 3)))) (Int32.add w31 (Int32.logxor (Int32.logor (Int32.shift_right_logical w36 17) (Int32.shift_left w36 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w36 19) (Int32.shift_left w36 13)) (Int32.shift_right_logical w36 10)))) in
  let t38 = Int32.add (Int32.add e34 (Int32.logxor (Int32.logor (Int32.shift_right_logical e37 6) (Int32.shift_left e37 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e37 11) (Int32.shift_left e37 21)) (Int32.logor (Int32.shift_right_logical e37 25) (Int32.shift_left e37 7))))) (Int32.add (Int32.logxor e35 (Int32.logand e37 (Int32.logxor e36 e35))) (Int32.add (-2117940946l) w38)) in
  let e38 = Int32.add a34 t38 in
  let a38 = Int32.add t38 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a37 2) (Int32.shift_left a37 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a37 13) (Int32.shift_left a37 19)) (Int32.logor (Int32.shift_right_logical a37 22) (Int32.shift_left a37 10)))) (Int32.logxor (Int32.logand a37 (Int32.logxor a36 a35)) (Int32.logand a36 a35))) in
  let w39 = Int32.add (Int32.add w23 (Int32.logxor (Int32.logor (Int32.shift_right_logical w24 7) (Int32.shift_left w24 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w24 18) (Int32.shift_left w24 14)) (Int32.shift_right_logical w24 3)))) (Int32.add w32 (Int32.logxor (Int32.logor (Int32.shift_right_logical w37 17) (Int32.shift_left w37 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w37 19) (Int32.shift_left w37 13)) (Int32.shift_right_logical w37 10)))) in
  let t39 = Int32.add (Int32.add e35 (Int32.logxor (Int32.logor (Int32.shift_right_logical e38 6) (Int32.shift_left e38 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e38 11) (Int32.shift_left e38 21)) (Int32.logor (Int32.shift_right_logical e38 25) (Int32.shift_left e38 7))))) (Int32.add (Int32.logxor e36 (Int32.logand e38 (Int32.logxor e37 e36))) (Int32.add (-1838011259l) w39)) in
  let e39 = Int32.add a35 t39 in
  let a39 = Int32.add t39 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a38 2) (Int32.shift_left a38 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a38 13) (Int32.shift_left a38 19)) (Int32.logor (Int32.shift_right_logical a38 22) (Int32.shift_left a38 10)))) (Int32.logxor (Int32.logand a38 (Int32.logxor a37 a36)) (Int32.logand a37 a36))) in
  (* rounds 40-47 *)
  let w40 = Int32.add (Int32.add w24 (Int32.logxor (Int32.logor (Int32.shift_right_logical w25 7) (Int32.shift_left w25 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w25 18) (Int32.shift_left w25 14)) (Int32.shift_right_logical w25 3)))) (Int32.add w33 (Int32.logxor (Int32.logor (Int32.shift_right_logical w38 17) (Int32.shift_left w38 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w38 19) (Int32.shift_left w38 13)) (Int32.shift_right_logical w38 10)))) in
  let t40 = Int32.add (Int32.add e36 (Int32.logxor (Int32.logor (Int32.shift_right_logical e39 6) (Int32.shift_left e39 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e39 11) (Int32.shift_left e39 21)) (Int32.logor (Int32.shift_right_logical e39 25) (Int32.shift_left e39 7))))) (Int32.add (Int32.logxor e37 (Int32.logand e39 (Int32.logxor e38 e37))) (Int32.add (-1564481375l) w40)) in
  let e40 = Int32.add a36 t40 in
  let a40 = Int32.add t40 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a39 2) (Int32.shift_left a39 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a39 13) (Int32.shift_left a39 19)) (Int32.logor (Int32.shift_right_logical a39 22) (Int32.shift_left a39 10)))) (Int32.logxor (Int32.logand a39 (Int32.logxor a38 a37)) (Int32.logand a38 a37))) in
  let w41 = Int32.add (Int32.add w25 (Int32.logxor (Int32.logor (Int32.shift_right_logical w26 7) (Int32.shift_left w26 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w26 18) (Int32.shift_left w26 14)) (Int32.shift_right_logical w26 3)))) (Int32.add w34 (Int32.logxor (Int32.logor (Int32.shift_right_logical w39 17) (Int32.shift_left w39 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w39 19) (Int32.shift_left w39 13)) (Int32.shift_right_logical w39 10)))) in
  let t41 = Int32.add (Int32.add e37 (Int32.logxor (Int32.logor (Int32.shift_right_logical e40 6) (Int32.shift_left e40 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e40 11) (Int32.shift_left e40 21)) (Int32.logor (Int32.shift_right_logical e40 25) (Int32.shift_left e40 7))))) (Int32.add (Int32.logxor e38 (Int32.logand e40 (Int32.logxor e39 e38))) (Int32.add (-1474664885l) w41)) in
  let e41 = Int32.add a37 t41 in
  let a41 = Int32.add t41 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a40 2) (Int32.shift_left a40 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a40 13) (Int32.shift_left a40 19)) (Int32.logor (Int32.shift_right_logical a40 22) (Int32.shift_left a40 10)))) (Int32.logxor (Int32.logand a40 (Int32.logxor a39 a38)) (Int32.logand a39 a38))) in
  let w42 = Int32.add (Int32.add w26 (Int32.logxor (Int32.logor (Int32.shift_right_logical w27 7) (Int32.shift_left w27 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w27 18) (Int32.shift_left w27 14)) (Int32.shift_right_logical w27 3)))) (Int32.add w35 (Int32.logxor (Int32.logor (Int32.shift_right_logical w40 17) (Int32.shift_left w40 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w40 19) (Int32.shift_left w40 13)) (Int32.shift_right_logical w40 10)))) in
  let t42 = Int32.add (Int32.add e38 (Int32.logxor (Int32.logor (Int32.shift_right_logical e41 6) (Int32.shift_left e41 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e41 11) (Int32.shift_left e41 21)) (Int32.logor (Int32.shift_right_logical e41 25) (Int32.shift_left e41 7))))) (Int32.add (Int32.logxor e39 (Int32.logand e41 (Int32.logxor e40 e39))) (Int32.add (-1035236496l) w42)) in
  let e42 = Int32.add a38 t42 in
  let a42 = Int32.add t42 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a41 2) (Int32.shift_left a41 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a41 13) (Int32.shift_left a41 19)) (Int32.logor (Int32.shift_right_logical a41 22) (Int32.shift_left a41 10)))) (Int32.logxor (Int32.logand a41 (Int32.logxor a40 a39)) (Int32.logand a40 a39))) in
  let w43 = Int32.add (Int32.add w27 (Int32.logxor (Int32.logor (Int32.shift_right_logical w28 7) (Int32.shift_left w28 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w28 18) (Int32.shift_left w28 14)) (Int32.shift_right_logical w28 3)))) (Int32.add w36 (Int32.logxor (Int32.logor (Int32.shift_right_logical w41 17) (Int32.shift_left w41 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w41 19) (Int32.shift_left w41 13)) (Int32.shift_right_logical w41 10)))) in
  let t43 = Int32.add (Int32.add e39 (Int32.logxor (Int32.logor (Int32.shift_right_logical e42 6) (Int32.shift_left e42 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e42 11) (Int32.shift_left e42 21)) (Int32.logor (Int32.shift_right_logical e42 25) (Int32.shift_left e42 7))))) (Int32.add (Int32.logxor e40 (Int32.logand e42 (Int32.logxor e41 e40))) (Int32.add (-949202525l) w43)) in
  let e43 = Int32.add a39 t43 in
  let a43 = Int32.add t43 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a42 2) (Int32.shift_left a42 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a42 13) (Int32.shift_left a42 19)) (Int32.logor (Int32.shift_right_logical a42 22) (Int32.shift_left a42 10)))) (Int32.logxor (Int32.logand a42 (Int32.logxor a41 a40)) (Int32.logand a41 a40))) in
  let w44 = Int32.add (Int32.add w28 (Int32.logxor (Int32.logor (Int32.shift_right_logical w29 7) (Int32.shift_left w29 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w29 18) (Int32.shift_left w29 14)) (Int32.shift_right_logical w29 3)))) (Int32.add w37 (Int32.logxor (Int32.logor (Int32.shift_right_logical w42 17) (Int32.shift_left w42 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w42 19) (Int32.shift_left w42 13)) (Int32.shift_right_logical w42 10)))) in
  let t44 = Int32.add (Int32.add e40 (Int32.logxor (Int32.logor (Int32.shift_right_logical e43 6) (Int32.shift_left e43 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e43 11) (Int32.shift_left e43 21)) (Int32.logor (Int32.shift_right_logical e43 25) (Int32.shift_left e43 7))))) (Int32.add (Int32.logxor e41 (Int32.logand e43 (Int32.logxor e42 e41))) (Int32.add (-778901479l) w44)) in
  let e44 = Int32.add a40 t44 in
  let a44 = Int32.add t44 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a43 2) (Int32.shift_left a43 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a43 13) (Int32.shift_left a43 19)) (Int32.logor (Int32.shift_right_logical a43 22) (Int32.shift_left a43 10)))) (Int32.logxor (Int32.logand a43 (Int32.logxor a42 a41)) (Int32.logand a42 a41))) in
  let w45 = Int32.add (Int32.add w29 (Int32.logxor (Int32.logor (Int32.shift_right_logical w30 7) (Int32.shift_left w30 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w30 18) (Int32.shift_left w30 14)) (Int32.shift_right_logical w30 3)))) (Int32.add w38 (Int32.logxor (Int32.logor (Int32.shift_right_logical w43 17) (Int32.shift_left w43 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w43 19) (Int32.shift_left w43 13)) (Int32.shift_right_logical w43 10)))) in
  let t45 = Int32.add (Int32.add e41 (Int32.logxor (Int32.logor (Int32.shift_right_logical e44 6) (Int32.shift_left e44 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e44 11) (Int32.shift_left e44 21)) (Int32.logor (Int32.shift_right_logical e44 25) (Int32.shift_left e44 7))))) (Int32.add (Int32.logxor e42 (Int32.logand e44 (Int32.logxor e43 e42))) (Int32.add (-694614492l) w45)) in
  let e45 = Int32.add a41 t45 in
  let a45 = Int32.add t45 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a44 2) (Int32.shift_left a44 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a44 13) (Int32.shift_left a44 19)) (Int32.logor (Int32.shift_right_logical a44 22) (Int32.shift_left a44 10)))) (Int32.logxor (Int32.logand a44 (Int32.logxor a43 a42)) (Int32.logand a43 a42))) in
  let w46 = Int32.add (Int32.add w30 (Int32.logxor (Int32.logor (Int32.shift_right_logical w31 7) (Int32.shift_left w31 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w31 18) (Int32.shift_left w31 14)) (Int32.shift_right_logical w31 3)))) (Int32.add w39 (Int32.logxor (Int32.logor (Int32.shift_right_logical w44 17) (Int32.shift_left w44 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w44 19) (Int32.shift_left w44 13)) (Int32.shift_right_logical w44 10)))) in
  let t46 = Int32.add (Int32.add e42 (Int32.logxor (Int32.logor (Int32.shift_right_logical e45 6) (Int32.shift_left e45 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e45 11) (Int32.shift_left e45 21)) (Int32.logor (Int32.shift_right_logical e45 25) (Int32.shift_left e45 7))))) (Int32.add (Int32.logxor e43 (Int32.logand e45 (Int32.logxor e44 e43))) (Int32.add (-200395387l) w46)) in
  let e46 = Int32.add a42 t46 in
  let a46 = Int32.add t46 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a45 2) (Int32.shift_left a45 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a45 13) (Int32.shift_left a45 19)) (Int32.logor (Int32.shift_right_logical a45 22) (Int32.shift_left a45 10)))) (Int32.logxor (Int32.logand a45 (Int32.logxor a44 a43)) (Int32.logand a44 a43))) in
  let w47 = Int32.add (Int32.add w31 (Int32.logxor (Int32.logor (Int32.shift_right_logical w32 7) (Int32.shift_left w32 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w32 18) (Int32.shift_left w32 14)) (Int32.shift_right_logical w32 3)))) (Int32.add w40 (Int32.logxor (Int32.logor (Int32.shift_right_logical w45 17) (Int32.shift_left w45 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w45 19) (Int32.shift_left w45 13)) (Int32.shift_right_logical w45 10)))) in
  let t47 = Int32.add (Int32.add e43 (Int32.logxor (Int32.logor (Int32.shift_right_logical e46 6) (Int32.shift_left e46 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e46 11) (Int32.shift_left e46 21)) (Int32.logor (Int32.shift_right_logical e46 25) (Int32.shift_left e46 7))))) (Int32.add (Int32.logxor e44 (Int32.logand e46 (Int32.logxor e45 e44))) (Int32.add 275423344l w47)) in
  let e47 = Int32.add a43 t47 in
  let a47 = Int32.add t47 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a46 2) (Int32.shift_left a46 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a46 13) (Int32.shift_left a46 19)) (Int32.logor (Int32.shift_right_logical a46 22) (Int32.shift_left a46 10)))) (Int32.logxor (Int32.logand a46 (Int32.logxor a45 a44)) (Int32.logand a45 a44))) in
  (* rounds 48-55 *)
  let w48 = Int32.add (Int32.add w32 (Int32.logxor (Int32.logor (Int32.shift_right_logical w33 7) (Int32.shift_left w33 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w33 18) (Int32.shift_left w33 14)) (Int32.shift_right_logical w33 3)))) (Int32.add w41 (Int32.logxor (Int32.logor (Int32.shift_right_logical w46 17) (Int32.shift_left w46 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w46 19) (Int32.shift_left w46 13)) (Int32.shift_right_logical w46 10)))) in
  let t48 = Int32.add (Int32.add e44 (Int32.logxor (Int32.logor (Int32.shift_right_logical e47 6) (Int32.shift_left e47 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e47 11) (Int32.shift_left e47 21)) (Int32.logor (Int32.shift_right_logical e47 25) (Int32.shift_left e47 7))))) (Int32.add (Int32.logxor e45 (Int32.logand e47 (Int32.logxor e46 e45))) (Int32.add 430227734l w48)) in
  let e48 = Int32.add a44 t48 in
  let a48 = Int32.add t48 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a47 2) (Int32.shift_left a47 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a47 13) (Int32.shift_left a47 19)) (Int32.logor (Int32.shift_right_logical a47 22) (Int32.shift_left a47 10)))) (Int32.logxor (Int32.logand a47 (Int32.logxor a46 a45)) (Int32.logand a46 a45))) in
  let w49 = Int32.add (Int32.add w33 (Int32.logxor (Int32.logor (Int32.shift_right_logical w34 7) (Int32.shift_left w34 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w34 18) (Int32.shift_left w34 14)) (Int32.shift_right_logical w34 3)))) (Int32.add w42 (Int32.logxor (Int32.logor (Int32.shift_right_logical w47 17) (Int32.shift_left w47 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w47 19) (Int32.shift_left w47 13)) (Int32.shift_right_logical w47 10)))) in
  let t49 = Int32.add (Int32.add e45 (Int32.logxor (Int32.logor (Int32.shift_right_logical e48 6) (Int32.shift_left e48 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e48 11) (Int32.shift_left e48 21)) (Int32.logor (Int32.shift_right_logical e48 25) (Int32.shift_left e48 7))))) (Int32.add (Int32.logxor e46 (Int32.logand e48 (Int32.logxor e47 e46))) (Int32.add 506948616l w49)) in
  let e49 = Int32.add a45 t49 in
  let a49 = Int32.add t49 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a48 2) (Int32.shift_left a48 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a48 13) (Int32.shift_left a48 19)) (Int32.logor (Int32.shift_right_logical a48 22) (Int32.shift_left a48 10)))) (Int32.logxor (Int32.logand a48 (Int32.logxor a47 a46)) (Int32.logand a47 a46))) in
  let w50 = Int32.add (Int32.add w34 (Int32.logxor (Int32.logor (Int32.shift_right_logical w35 7) (Int32.shift_left w35 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w35 18) (Int32.shift_left w35 14)) (Int32.shift_right_logical w35 3)))) (Int32.add w43 (Int32.logxor (Int32.logor (Int32.shift_right_logical w48 17) (Int32.shift_left w48 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w48 19) (Int32.shift_left w48 13)) (Int32.shift_right_logical w48 10)))) in
  let t50 = Int32.add (Int32.add e46 (Int32.logxor (Int32.logor (Int32.shift_right_logical e49 6) (Int32.shift_left e49 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e49 11) (Int32.shift_left e49 21)) (Int32.logor (Int32.shift_right_logical e49 25) (Int32.shift_left e49 7))))) (Int32.add (Int32.logxor e47 (Int32.logand e49 (Int32.logxor e48 e47))) (Int32.add 659060556l w50)) in
  let e50 = Int32.add a46 t50 in
  let a50 = Int32.add t50 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a49 2) (Int32.shift_left a49 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a49 13) (Int32.shift_left a49 19)) (Int32.logor (Int32.shift_right_logical a49 22) (Int32.shift_left a49 10)))) (Int32.logxor (Int32.logand a49 (Int32.logxor a48 a47)) (Int32.logand a48 a47))) in
  let w51 = Int32.add (Int32.add w35 (Int32.logxor (Int32.logor (Int32.shift_right_logical w36 7) (Int32.shift_left w36 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w36 18) (Int32.shift_left w36 14)) (Int32.shift_right_logical w36 3)))) (Int32.add w44 (Int32.logxor (Int32.logor (Int32.shift_right_logical w49 17) (Int32.shift_left w49 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w49 19) (Int32.shift_left w49 13)) (Int32.shift_right_logical w49 10)))) in
  let t51 = Int32.add (Int32.add e47 (Int32.logxor (Int32.logor (Int32.shift_right_logical e50 6) (Int32.shift_left e50 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e50 11) (Int32.shift_left e50 21)) (Int32.logor (Int32.shift_right_logical e50 25) (Int32.shift_left e50 7))))) (Int32.add (Int32.logxor e48 (Int32.logand e50 (Int32.logxor e49 e48))) (Int32.add 883997877l w51)) in
  let e51 = Int32.add a47 t51 in
  let a51 = Int32.add t51 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a50 2) (Int32.shift_left a50 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a50 13) (Int32.shift_left a50 19)) (Int32.logor (Int32.shift_right_logical a50 22) (Int32.shift_left a50 10)))) (Int32.logxor (Int32.logand a50 (Int32.logxor a49 a48)) (Int32.logand a49 a48))) in
  let w52 = Int32.add (Int32.add w36 (Int32.logxor (Int32.logor (Int32.shift_right_logical w37 7) (Int32.shift_left w37 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w37 18) (Int32.shift_left w37 14)) (Int32.shift_right_logical w37 3)))) (Int32.add w45 (Int32.logxor (Int32.logor (Int32.shift_right_logical w50 17) (Int32.shift_left w50 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w50 19) (Int32.shift_left w50 13)) (Int32.shift_right_logical w50 10)))) in
  let t52 = Int32.add (Int32.add e48 (Int32.logxor (Int32.logor (Int32.shift_right_logical e51 6) (Int32.shift_left e51 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e51 11) (Int32.shift_left e51 21)) (Int32.logor (Int32.shift_right_logical e51 25) (Int32.shift_left e51 7))))) (Int32.add (Int32.logxor e49 (Int32.logand e51 (Int32.logxor e50 e49))) (Int32.add 958139571l w52)) in
  let e52 = Int32.add a48 t52 in
  let a52 = Int32.add t52 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a51 2) (Int32.shift_left a51 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a51 13) (Int32.shift_left a51 19)) (Int32.logor (Int32.shift_right_logical a51 22) (Int32.shift_left a51 10)))) (Int32.logxor (Int32.logand a51 (Int32.logxor a50 a49)) (Int32.logand a50 a49))) in
  let w53 = Int32.add (Int32.add w37 (Int32.logxor (Int32.logor (Int32.shift_right_logical w38 7) (Int32.shift_left w38 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w38 18) (Int32.shift_left w38 14)) (Int32.shift_right_logical w38 3)))) (Int32.add w46 (Int32.logxor (Int32.logor (Int32.shift_right_logical w51 17) (Int32.shift_left w51 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w51 19) (Int32.shift_left w51 13)) (Int32.shift_right_logical w51 10)))) in
  let t53 = Int32.add (Int32.add e49 (Int32.logxor (Int32.logor (Int32.shift_right_logical e52 6) (Int32.shift_left e52 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e52 11) (Int32.shift_left e52 21)) (Int32.logor (Int32.shift_right_logical e52 25) (Int32.shift_left e52 7))))) (Int32.add (Int32.logxor e50 (Int32.logand e52 (Int32.logxor e51 e50))) (Int32.add 1322822218l w53)) in
  let e53 = Int32.add a49 t53 in
  let a53 = Int32.add t53 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a52 2) (Int32.shift_left a52 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a52 13) (Int32.shift_left a52 19)) (Int32.logor (Int32.shift_right_logical a52 22) (Int32.shift_left a52 10)))) (Int32.logxor (Int32.logand a52 (Int32.logxor a51 a50)) (Int32.logand a51 a50))) in
  let w54 = Int32.add (Int32.add w38 (Int32.logxor (Int32.logor (Int32.shift_right_logical w39 7) (Int32.shift_left w39 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w39 18) (Int32.shift_left w39 14)) (Int32.shift_right_logical w39 3)))) (Int32.add w47 (Int32.logxor (Int32.logor (Int32.shift_right_logical w52 17) (Int32.shift_left w52 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w52 19) (Int32.shift_left w52 13)) (Int32.shift_right_logical w52 10)))) in
  let t54 = Int32.add (Int32.add e50 (Int32.logxor (Int32.logor (Int32.shift_right_logical e53 6) (Int32.shift_left e53 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e53 11) (Int32.shift_left e53 21)) (Int32.logor (Int32.shift_right_logical e53 25) (Int32.shift_left e53 7))))) (Int32.add (Int32.logxor e51 (Int32.logand e53 (Int32.logxor e52 e51))) (Int32.add 1537002063l w54)) in
  let e54 = Int32.add a50 t54 in
  let a54 = Int32.add t54 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a53 2) (Int32.shift_left a53 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a53 13) (Int32.shift_left a53 19)) (Int32.logor (Int32.shift_right_logical a53 22) (Int32.shift_left a53 10)))) (Int32.logxor (Int32.logand a53 (Int32.logxor a52 a51)) (Int32.logand a52 a51))) in
  let w55 = Int32.add (Int32.add w39 (Int32.logxor (Int32.logor (Int32.shift_right_logical w40 7) (Int32.shift_left w40 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w40 18) (Int32.shift_left w40 14)) (Int32.shift_right_logical w40 3)))) (Int32.add w48 (Int32.logxor (Int32.logor (Int32.shift_right_logical w53 17) (Int32.shift_left w53 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w53 19) (Int32.shift_left w53 13)) (Int32.shift_right_logical w53 10)))) in
  let t55 = Int32.add (Int32.add e51 (Int32.logxor (Int32.logor (Int32.shift_right_logical e54 6) (Int32.shift_left e54 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e54 11) (Int32.shift_left e54 21)) (Int32.logor (Int32.shift_right_logical e54 25) (Int32.shift_left e54 7))))) (Int32.add (Int32.logxor e52 (Int32.logand e54 (Int32.logxor e53 e52))) (Int32.add 1747873779l w55)) in
  let e55 = Int32.add a51 t55 in
  let a55 = Int32.add t55 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a54 2) (Int32.shift_left a54 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a54 13) (Int32.shift_left a54 19)) (Int32.logor (Int32.shift_right_logical a54 22) (Int32.shift_left a54 10)))) (Int32.logxor (Int32.logand a54 (Int32.logxor a53 a52)) (Int32.logand a53 a52))) in
  (* rounds 56-63 *)
  let w56 = Int32.add (Int32.add w40 (Int32.logxor (Int32.logor (Int32.shift_right_logical w41 7) (Int32.shift_left w41 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w41 18) (Int32.shift_left w41 14)) (Int32.shift_right_logical w41 3)))) (Int32.add w49 (Int32.logxor (Int32.logor (Int32.shift_right_logical w54 17) (Int32.shift_left w54 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w54 19) (Int32.shift_left w54 13)) (Int32.shift_right_logical w54 10)))) in
  let t56 = Int32.add (Int32.add e52 (Int32.logxor (Int32.logor (Int32.shift_right_logical e55 6) (Int32.shift_left e55 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e55 11) (Int32.shift_left e55 21)) (Int32.logor (Int32.shift_right_logical e55 25) (Int32.shift_left e55 7))))) (Int32.add (Int32.logxor e53 (Int32.logand e55 (Int32.logxor e54 e53))) (Int32.add 1955562222l w56)) in
  let e56 = Int32.add a52 t56 in
  let a56 = Int32.add t56 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a55 2) (Int32.shift_left a55 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a55 13) (Int32.shift_left a55 19)) (Int32.logor (Int32.shift_right_logical a55 22) (Int32.shift_left a55 10)))) (Int32.logxor (Int32.logand a55 (Int32.logxor a54 a53)) (Int32.logand a54 a53))) in
  let w57 = Int32.add (Int32.add w41 (Int32.logxor (Int32.logor (Int32.shift_right_logical w42 7) (Int32.shift_left w42 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w42 18) (Int32.shift_left w42 14)) (Int32.shift_right_logical w42 3)))) (Int32.add w50 (Int32.logxor (Int32.logor (Int32.shift_right_logical w55 17) (Int32.shift_left w55 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w55 19) (Int32.shift_left w55 13)) (Int32.shift_right_logical w55 10)))) in
  let t57 = Int32.add (Int32.add e53 (Int32.logxor (Int32.logor (Int32.shift_right_logical e56 6) (Int32.shift_left e56 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e56 11) (Int32.shift_left e56 21)) (Int32.logor (Int32.shift_right_logical e56 25) (Int32.shift_left e56 7))))) (Int32.add (Int32.logxor e54 (Int32.logand e56 (Int32.logxor e55 e54))) (Int32.add 2024104815l w57)) in
  let e57 = Int32.add a53 t57 in
  let a57 = Int32.add t57 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a56 2) (Int32.shift_left a56 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a56 13) (Int32.shift_left a56 19)) (Int32.logor (Int32.shift_right_logical a56 22) (Int32.shift_left a56 10)))) (Int32.logxor (Int32.logand a56 (Int32.logxor a55 a54)) (Int32.logand a55 a54))) in
  let w58 = Int32.add (Int32.add w42 (Int32.logxor (Int32.logor (Int32.shift_right_logical w43 7) (Int32.shift_left w43 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w43 18) (Int32.shift_left w43 14)) (Int32.shift_right_logical w43 3)))) (Int32.add w51 (Int32.logxor (Int32.logor (Int32.shift_right_logical w56 17) (Int32.shift_left w56 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w56 19) (Int32.shift_left w56 13)) (Int32.shift_right_logical w56 10)))) in
  let t58 = Int32.add (Int32.add e54 (Int32.logxor (Int32.logor (Int32.shift_right_logical e57 6) (Int32.shift_left e57 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e57 11) (Int32.shift_left e57 21)) (Int32.logor (Int32.shift_right_logical e57 25) (Int32.shift_left e57 7))))) (Int32.add (Int32.logxor e55 (Int32.logand e57 (Int32.logxor e56 e55))) (Int32.add (-2067236844l) w58)) in
  let e58 = Int32.add a54 t58 in
  let a58 = Int32.add t58 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a57 2) (Int32.shift_left a57 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a57 13) (Int32.shift_left a57 19)) (Int32.logor (Int32.shift_right_logical a57 22) (Int32.shift_left a57 10)))) (Int32.logxor (Int32.logand a57 (Int32.logxor a56 a55)) (Int32.logand a56 a55))) in
  let w59 = Int32.add (Int32.add w43 (Int32.logxor (Int32.logor (Int32.shift_right_logical w44 7) (Int32.shift_left w44 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w44 18) (Int32.shift_left w44 14)) (Int32.shift_right_logical w44 3)))) (Int32.add w52 (Int32.logxor (Int32.logor (Int32.shift_right_logical w57 17) (Int32.shift_left w57 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w57 19) (Int32.shift_left w57 13)) (Int32.shift_right_logical w57 10)))) in
  let t59 = Int32.add (Int32.add e55 (Int32.logxor (Int32.logor (Int32.shift_right_logical e58 6) (Int32.shift_left e58 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e58 11) (Int32.shift_left e58 21)) (Int32.logor (Int32.shift_right_logical e58 25) (Int32.shift_left e58 7))))) (Int32.add (Int32.logxor e56 (Int32.logand e58 (Int32.logxor e57 e56))) (Int32.add (-1933114872l) w59)) in
  let e59 = Int32.add a55 t59 in
  let a59 = Int32.add t59 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a58 2) (Int32.shift_left a58 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a58 13) (Int32.shift_left a58 19)) (Int32.logor (Int32.shift_right_logical a58 22) (Int32.shift_left a58 10)))) (Int32.logxor (Int32.logand a58 (Int32.logxor a57 a56)) (Int32.logand a57 a56))) in
  let w60 = Int32.add (Int32.add w44 (Int32.logxor (Int32.logor (Int32.shift_right_logical w45 7) (Int32.shift_left w45 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w45 18) (Int32.shift_left w45 14)) (Int32.shift_right_logical w45 3)))) (Int32.add w53 (Int32.logxor (Int32.logor (Int32.shift_right_logical w58 17) (Int32.shift_left w58 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w58 19) (Int32.shift_left w58 13)) (Int32.shift_right_logical w58 10)))) in
  let t60 = Int32.add (Int32.add e56 (Int32.logxor (Int32.logor (Int32.shift_right_logical e59 6) (Int32.shift_left e59 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e59 11) (Int32.shift_left e59 21)) (Int32.logor (Int32.shift_right_logical e59 25) (Int32.shift_left e59 7))))) (Int32.add (Int32.logxor e57 (Int32.logand e59 (Int32.logxor e58 e57))) (Int32.add (-1866530822l) w60)) in
  let e60 = Int32.add a56 t60 in
  let a60 = Int32.add t60 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a59 2) (Int32.shift_left a59 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a59 13) (Int32.shift_left a59 19)) (Int32.logor (Int32.shift_right_logical a59 22) (Int32.shift_left a59 10)))) (Int32.logxor (Int32.logand a59 (Int32.logxor a58 a57)) (Int32.logand a58 a57))) in
  let w61 = Int32.add (Int32.add w45 (Int32.logxor (Int32.logor (Int32.shift_right_logical w46 7) (Int32.shift_left w46 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w46 18) (Int32.shift_left w46 14)) (Int32.shift_right_logical w46 3)))) (Int32.add w54 (Int32.logxor (Int32.logor (Int32.shift_right_logical w59 17) (Int32.shift_left w59 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w59 19) (Int32.shift_left w59 13)) (Int32.shift_right_logical w59 10)))) in
  let t61 = Int32.add (Int32.add e57 (Int32.logxor (Int32.logor (Int32.shift_right_logical e60 6) (Int32.shift_left e60 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e60 11) (Int32.shift_left e60 21)) (Int32.logor (Int32.shift_right_logical e60 25) (Int32.shift_left e60 7))))) (Int32.add (Int32.logxor e58 (Int32.logand e60 (Int32.logxor e59 e58))) (Int32.add (-1538233109l) w61)) in
  let e61 = Int32.add a57 t61 in
  let a61 = Int32.add t61 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a60 2) (Int32.shift_left a60 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a60 13) (Int32.shift_left a60 19)) (Int32.logor (Int32.shift_right_logical a60 22) (Int32.shift_left a60 10)))) (Int32.logxor (Int32.logand a60 (Int32.logxor a59 a58)) (Int32.logand a59 a58))) in
  let w62 = Int32.add (Int32.add w46 (Int32.logxor (Int32.logor (Int32.shift_right_logical w47 7) (Int32.shift_left w47 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w47 18) (Int32.shift_left w47 14)) (Int32.shift_right_logical w47 3)))) (Int32.add w55 (Int32.logxor (Int32.logor (Int32.shift_right_logical w60 17) (Int32.shift_left w60 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w60 19) (Int32.shift_left w60 13)) (Int32.shift_right_logical w60 10)))) in
  let t62 = Int32.add (Int32.add e58 (Int32.logxor (Int32.logor (Int32.shift_right_logical e61 6) (Int32.shift_left e61 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e61 11) (Int32.shift_left e61 21)) (Int32.logor (Int32.shift_right_logical e61 25) (Int32.shift_left e61 7))))) (Int32.add (Int32.logxor e59 (Int32.logand e61 (Int32.logxor e60 e59))) (Int32.add (-1090935817l) w62)) in
  let e62 = Int32.add a58 t62 in
  let a62 = Int32.add t62 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a61 2) (Int32.shift_left a61 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a61 13) (Int32.shift_left a61 19)) (Int32.logor (Int32.shift_right_logical a61 22) (Int32.shift_left a61 10)))) (Int32.logxor (Int32.logand a61 (Int32.logxor a60 a59)) (Int32.logand a60 a59))) in
  let w63 = Int32.add (Int32.add w47 (Int32.logxor (Int32.logor (Int32.shift_right_logical w48 7) (Int32.shift_left w48 25)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w48 18) (Int32.shift_left w48 14)) (Int32.shift_right_logical w48 3)))) (Int32.add w56 (Int32.logxor (Int32.logor (Int32.shift_right_logical w61 17) (Int32.shift_left w61 15)) (Int32.logxor (Int32.logor (Int32.shift_right_logical w61 19) (Int32.shift_left w61 13)) (Int32.shift_right_logical w61 10)))) in
  let t63 = Int32.add (Int32.add e59 (Int32.logxor (Int32.logor (Int32.shift_right_logical e62 6) (Int32.shift_left e62 26)) (Int32.logxor (Int32.logor (Int32.shift_right_logical e62 11) (Int32.shift_left e62 21)) (Int32.logor (Int32.shift_right_logical e62 25) (Int32.shift_left e62 7))))) (Int32.add (Int32.logxor e60 (Int32.logand e62 (Int32.logxor e61 e60))) (Int32.add (-965641998l) w63)) in
  let e63 = Int32.add a59 t63 in
  let a63 = Int32.add t63 (Int32.add (Int32.logxor (Int32.logor (Int32.shift_right_logical a62 2) (Int32.shift_left a62 30)) (Int32.logxor (Int32.logor (Int32.shift_right_logical a62 13) (Int32.shift_left a62 19)) (Int32.logor (Int32.shift_right_logical a62 22) (Int32.shift_left a62 10)))) (Int32.logxor (Int32.logand a62 (Int32.logxor a61 a60)) (Int32.logand a61 a60))) in
  Array.unsafe_set h 0 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 0)) a63) land mask32);
  Array.unsafe_set h 1 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 1)) a62) land mask32);
  Array.unsafe_set h 2 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 2)) a61) land mask32);
  Array.unsafe_set h 3 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 3)) a60) land mask32);
  Array.unsafe_set h 4 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 4)) e63) land mask32);
  Array.unsafe_set h 5 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 5)) e62) land mask32);
  Array.unsafe_set h 6 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 6)) e61) land mask32);
  Array.unsafe_set h 7 (Int32.to_int (Int32.add (Int32.of_int (Array.unsafe_get h 7)) e60) land mask32);
  ()

let feed_bytes ctx ?(off = 0) ?len src =
  if ctx.finalized then invalid_arg "Sha256.feed_bytes: context already finalized";
  let len = match len with Some l -> l | None -> Bytes.length src - off in
  if off < 0 || len < 0 || off + len > Bytes.length src then
    invalid_arg "Sha256.feed_bytes: out of bounds";
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit src !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx.h ctx.block 0;
      ctx.fill <- 0
    end
  end;
  (* Whole blocks straight from the caller's buffer, zero-copy. *)
  while !remaining >= 64 do
    compress ctx.h src !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let feed_string ctx s = feed_bytes ctx (Bytes.unsafe_of_string s)

let[@inline] output_digest (h : int array) =
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set_int32_be out (4 * i) (Int32.of_int (Array.unsafe_get h i))
  done;
  Bytes.unsafe_to_string out

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: context already finalized";
  ctx.finalized <- true;
  let bit_len = Int64.of_int (ctx.total * 8) in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length — written straight
     into the block buffer, no scratch allocation. *)
  let block = ctx.block in
  let fill = ctx.fill in
  Bytes.unsafe_set block fill '\x80';
  if fill >= 56 then begin
    Bytes.fill block (fill + 1) (63 - fill) '\000';
    compress ctx.h block 0;
    Bytes.fill block 0 56 '\000'
  end
  else Bytes.fill block (fill + 1) (55 - fill) '\000';
  Bytes.set_int64_be block 56 bit_len;
  compress ctx.h block 0;
  ctx.fill <- 0;
  output_digest ctx.h

(* One-shot fast path: hash whole blocks straight out of the string and
   build only the final padded block(s) — no context, no input copying. *)
let digest_string s =
  let len = String.length s in
  let h =
    [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
       0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19 |]
  in
  let block = Bytes.unsafe_of_string s in
  let nblocks = len lsr 6 in
  for b = 0 to nblocks - 1 do
    compress h block (b lsl 6)
  done;
  let rem = len land 63 in
  let pad = Bytes.make (if rem >= 56 then 128 else 64) '\000' in
  Bytes.blit_string s (len - rem) pad 0 rem;
  Bytes.unsafe_set pad rem '\x80';
  let pad_len = Bytes.length pad in
  Bytes.set_int64_be pad (pad_len - 8) (Int64.of_int (len * 8));
  compress h pad 0;
  if pad_len = 128 then compress h pad 64;
  output_digest h

let digest_strings parts =
  let ctx = init () in
  List.iter (feed_string ctx) parts;
  finalize ctx

(* Merkle inner-node fast path: a 64-byte message (two concatenated
   32-byte digests) is exactly one data block plus one padding block, and
   the padding block is a constant — 0x80, zeros, bit length 512. Two
   [compress] calls over preallocated scratch, no steady-state allocation.
   The scratch state vector is domain-local so concurrent callers in
   different domains cannot interleave compress rounds. *)
let pair_pad =
  let b = Bytes.make 64 '\000' in
  Bytes.unsafe_set b 0 '\x80';
  Bytes.set_int64_be b 56 512L;
  b

let pair_h_key = Domain.DLS.new_key (fun () -> Array.make 8 0)

let digest_pair_into ~src ~src_off ~dst ~dst_off =
  if src_off < 0 || src_off + 64 > Bytes.length src || dst_off < 0
     || dst_off + 32 > Bytes.length dst
  then invalid_arg "Sha256.digest_pair_into";
  let h = Domain.DLS.get pair_h_key in
  h.(0) <- 0x6a09e667; h.(1) <- 0xbb67ae85;
  h.(2) <- 0x3c6ef372; h.(3) <- 0xa54ff53a;
  h.(4) <- 0x510e527f; h.(5) <- 0x9b05688c;
  h.(6) <- 0x1f83d9ab; h.(7) <- 0x5be0cd19;
  compress h src src_off;
  compress h pair_pad 0;
  for i = 0 to 7 do
    Bytes.set_int32_be dst (dst_off + (4 * i)) (Int32.of_int (Array.unsafe_get h i))
  done

let hmac ~key msg =
  let key = if String.length key > 64 then digest_string key else key in
  let pad fill =
    let b = Bytes.make 64 (Char.chr fill) in
    String.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor fill))) key;
    Bytes.unsafe_to_string b
  in
  let inner = digest_strings [ pad 0x36; msg ] in
  digest_strings [ pad 0x5c; inner ]

let hex_chars = "0123456789abcdef"

let to_hex raw =
  let n = String.length raw in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (String.unsafe_get raw i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_chars (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1) (String.unsafe_get hex_chars (c land 0xf))
  done;
  Bytes.unsafe_to_string out
