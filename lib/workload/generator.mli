(** Open-loop client workload generator.

    Injects request batches at a configured aggregate rate, spread evenly
    over the target replicas, through the network's ingress model (so
    client traffic consumes replica ingress bandwidth, as in Table 4's
    "Reqs. from Clients" row). Open-loop means the offered load does not
    slow down when the system lags — saturation shows up as growing
    mempools and latency, like real clients hammering a BFT service. *)

type t

type submit = target:Net.Node_id.t -> Request.t -> unit
(** Called when a batch has fully entered the target replica (after
    ingress serialization). *)

val start :
  Sim.Engine.t ->
  rate:float ->
  payload:int ->
  targets:Net.Node_id.t list ->
  inject:(dst:Net.Node_id.t -> size:int -> (unit -> unit) -> unit) ->
  submit:submit ->
  ?on_batch:(Request.t -> unit) ->
  ?tick:Sim.Sim_time.span ->
  ?until:Sim.Sim_time.t ->
  unit ->
  t
(** [start engine ~rate ~payload ~targets ~inject ~submit ()] begins
    injecting [rate] requests/s of [payload] bytes each, round-robin over
    [targets], batched per [tick] (default 20 ms). Stops at [until] when
    given. Requires a non-empty target list and [rate >= 0].

    [on_batch] is invoked once for every batch the moment it is created
    (including {!make_batch} ones) — the hook a client re-send scheduler
    uses to register deadlines without ever scanning {!batches}. *)

val stop : t -> unit

val offered : t -> int
(** Requests offered so far. *)

val batches : t -> Request.t list
(** All batches created, newest first (for confirmation scans in tests
    and liveness checks). *)

val next_batch_id : t -> int
(** The id the next created batch will get (ids are dense from 0). *)

val make_batch : t -> at:Sim.Sim_time.t -> count:int -> ?resend:bool -> unit -> Request.t
(** Creates an extra batch outside the periodic schedule (used for
    targeted submissions and re-sends); recorded in {!batches}. *)
