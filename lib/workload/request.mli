(** Client requests, represented as batches.

    Clients submit requests in small batches (one wire message each); a
    batch is the unit the simulator tracks end-to-end. All requests of a
    batch share a birth instant and payload size, so per-request latency
    and throughput are recovered exactly from batch granularity while
    memory stays bounded at hundreds of replicas × 10^5 requests/s.

    The confirmation flag is a ref shared between a batch and its re-sent
    copies ({!resend_of}), so confirming any copy confirms the logical
    requests — the client-side dedup that makes fan-out [s > 1] and
    timeout re-sends (§4.3) count each request once. *)

type t = {
  id : int;                 (** globally unique batch id *)
  count : int;              (** number of requests in the batch *)
  size_each : int;          (** payload bytes per request *)
  born : Sim.Sim_time.t;    (** client submission instant *)
  resend : bool;            (** re-sent after a timeout (view-change §4.3) *)
  confirmed : bool ref;     (** shared with re-sent copies *)
  counted : bool ref;
      (** measurement-side dedup, shared like [confirmed]: set when the
          runner's (f+1)-execution accounting has counted the batch, so a
          duplicate appearing in a later datablock (fan-out [s > 1],
          re-sends) is never counted twice — with no per-batch table
          growing for the length of the run *)
}

val make :
  id:int -> count:int -> size_each:int -> born:Sim.Sim_time.t -> ?resend:bool -> unit -> t

val resend_of : t -> t
(** A re-sent copy: same identity, birth and confirmation ref, with the
    [resend] tag set (receiving replicas watch tagged requests and vote
    for a view change if they time out, §4.3). *)

val is_confirmed : t -> bool
val mark_confirmed : t -> unit

val is_counted : t -> bool
val mark_counted : t -> unit
(** See [counted] above; owned by the measurement layer, not replicas. *)

val payload_bytes : t -> int
(** Total request payload carried by the batch. *)

val wire_bytes : t -> int
(** Payload plus the per-batch framing overhead. *)

val encode : t -> string
(** Deterministic encoding used for hashing into datablock digests. *)

val hash : t -> Crypto.Hash.t
