open Sim

type submit = target:Net.Node_id.t -> Request.t -> unit

type t = {
  engine : Engine.t;
  rate : float;
  payload : int;
  targets : Net.Node_id.t array;
  inject : dst:Net.Node_id.t -> size:int -> (unit -> unit) -> unit;
  submit : submit;
  on_batch : Request.t -> unit;
  tick : Sim_time.span;
  until : Sim_time.t option;
  mutable next_id : int;
  mutable offered : int;
  mutable carry : float array; (* fractional requests owed per target *)
  mutable stopped : bool;
  mutable all_batches : Request.t list;
}

let offered t = t.offered
let batches t = t.all_batches
let next_batch_id t = t.next_id
let stop t = t.stopped <- true

let make_batch t ~at ~count ?resend () =
  let b = Request.make ~id:t.next_id ~count ~size_each:t.payload ~born:at ?resend () in
  t.next_id <- t.next_id + 1;
  t.offered <- t.offered + count;
  t.all_batches <- b :: t.all_batches;
  t.on_batch b;
  b

let emit t target count =
  let now = Engine.now t.engine in
  let b = make_batch t ~at:now ~count () in
  t.inject ~dst:target ~size:(Request.wire_bytes b) (fun () -> t.submit ~target b)

let rec tick_once t =
  if not t.stopped then begin
    let now = Engine.now t.engine in
    let past_deadline =
      match t.until with Some u -> Sim_time.compare now u >= 0 | None -> false
    in
    if not past_deadline then begin
      let per_target =
        t.rate *. Sim_time.to_sec t.tick /. float_of_int (Array.length t.targets)
      in
      Array.iteri
        (fun i target ->
          let owed = t.carry.(i) +. per_target in
          let count = int_of_float owed in
          t.carry.(i) <- owed -. float_of_int count;
          if count > 0 then emit t target count)
        t.targets;
      ignore (Engine.schedule t.engine ~delay:t.tick (fun () -> tick_once t))
    end
  end

let start engine ~rate ~payload ~targets ~inject ~submit ?(on_batch = fun _ -> ())
    ?(tick = Sim_time.ms 20) ?until () =
  assert (targets <> [] && rate >= 0.);
  let targets = Array.of_list targets in
  let t =
    { engine;
      rate;
      payload;
      targets;
      inject;
      submit;
      on_batch;
      tick;
      until;
      next_id = 0;
      offered = 0;
      carry = Array.make (Array.length targets) 0.;
      stopped = false;
      all_batches = [] }
  in
  tick_once t;
  t
