type t = {
  id : int;
  count : int;
  size_each : int;
  born : Sim.Sim_time.t;
  resend : bool;
  confirmed : bool ref;
  counted : bool ref;
}

let framing_bytes = 32

let make ~id ~count ~size_each ~born ?(resend = false) () =
  assert (count > 0 && size_each >= 0);
  { id; count; size_each; born; resend; confirmed = ref false; counted = ref false }

let resend_of t = { t with resend = true }

let is_confirmed t = !(t.confirmed)
let mark_confirmed t = t.confirmed := true
let is_counted t = !(t.counted)
let mark_counted t = t.counted := true

let payload_bytes t = t.count * t.size_each
let wire_bytes t = payload_bytes t + framing_bytes

let encode t =
  Printf.sprintf "batch:%d:%d:%d:%Ld:%b" t.id t.count t.size_each t.born t.resend

let hash t = Crypto.Hash.of_string (encode t)
