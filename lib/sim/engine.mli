(** Deterministic discrete-event simulation engine.

    The engine maintains a virtual clock and a priority queue of pending
    events. [run] repeatedly pops the earliest event, advances the clock to
    its instant, and executes its callback; callbacks schedule further
    events. Two events at the same instant fire in schedule order, so a run
    is a pure function of the seed and the initial schedule. *)

type t

type handle
(** A scheduled event, usable for cancellation (e.g. protocol timers).
    Handles are engine-local: pass them back to {!cancel} on the engine
    that issued them. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] is a fresh engine with clock at {!Sim_time.zero}.
    Default seed is [1L]. *)

val now : t -> Sim_time.t
(** Current virtual time. *)

val now_ns : t -> int
(** [Sim_time.to_int64 (now t)] as an immediate int — the allocation-free
    companion of {!schedule_ns} for hot callers doing clock arithmetic. *)

val rng : t -> Rng.t
(** The engine's root random stream. Components that need their own stream
    should [Rng.split] it once at set-up time. *)

val schedule : t -> delay:Sim_time.span -> (unit -> unit) -> handle
(** [schedule t ~delay f] arranges for [f ()] to run [delay] after [now t].
    A negative delay is clamped to zero. *)

val schedule_at : t -> at:Sim_time.t -> (unit -> unit) -> handle
(** [schedule_at t ~at f] arranges for [f ()] to run at instant [at]
    (clamped to [now t] if in the past). *)

val schedule_ns : t -> delay_ns:int -> (unit -> unit) -> handle
(** [schedule t ~delay:(Sim_time.ns delay_ns)] without the int64 detour:
    the allocation-free path for hot callers whose delays are already
    nanosecond ints. *)

val cancel : t -> handle -> unit
(** Cancels a pending event; cancelling an already-cancelled event is a
    no-op. Cancelling an event that has already fired is also a no-op
    behaviorally, but retains a small bookkeeping entry for the engine's
    lifetime — fine for timers, not for per-message traffic (the protocol
    hot paths never cancel). *)

val pending : t -> int
(** Number of scheduled, not-yet-fired events (cancelled events are
    counted until they are garbage-popped). *)

val events_fired : t -> int
(** Total events executed (cancelled events excluded) since [create];
    the denominator of the macro-benchmark's events/sec and words/event
    metrics. *)

val run : ?until:Sim_time.t -> ?max_events:int -> t -> unit
(** [run ?until ?max_events t] executes events in order until the queue is
    empty, the clock passes [until], or [max_events] events have fired.
    When stopping on [until], the clock is left at [until] and later events
    remain queued. *)

val step : t -> bool
(** Executes the single earliest event. Returns [false] when the queue is
    empty. *)
