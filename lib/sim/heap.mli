(** Binary min-heap keyed by [(int64, int)] pairs.

    The event queue of the simulation engine: the primary key is the firing
    instant, the secondary key a strictly increasing sequence number so that
    events scheduled for the same instant fire in schedule order (FIFO),
    which keeps runs deterministic.

    The layout is structure-of-arrays: keys (split into immediate-int
    halves), sequence numbers and values live in parallel flat arrays, so
    insertion allocates nothing beyond amortized array growth and
    comparisons never touch a boxed int64. Popped slots are cleared, so the
    heap holds no reference to values it no longer contains. *)

type 'a t

val create : unit -> 'a t
(** An empty heap. *)

val length : 'a t -> int
(** Number of stored elements. *)

val is_empty : 'a t -> bool

val add : 'a t -> key:int64 -> seq:int -> 'a -> unit
(** [add h ~key ~seq v] inserts [v] with priority [(key, seq)]. *)

val pop_min : 'a t -> (int64 * int * 'a) option
(** Removes and returns the minimum element, or [None] when empty. *)

val peek_min : 'a t -> (int64 * int * 'a) option
(** Returns the minimum element without removing it. *)

val clear : 'a t -> unit
(** Removes all elements. *)

(** {2 Unboxed fast path}

    For callers whose keys are nonnegative ints (nanosecond timestamps):
    the same ordering as the int64 API, with no boxing and no option or
    tuple allocation. The peek/pop functions below require a non-empty
    heap (unchecked); guard with {!is_empty} or {!length}. *)

val add_ns : 'a t -> key_ns:int -> seq:int -> 'a -> unit
(** [add h ~key:(Int64.of_int key_ns) ~seq v], allocation-free. Requires
    [key_ns >= 0]; ordering is consistent with int64-keyed entries. *)

val peek_key_ns : 'a t -> int
(** Root key as an int. Meaningful only when every key was added via
    {!add_ns} (or otherwise fits in an int). *)

val peek_seq : 'a t -> int
(** Root sequence number. *)

val pop_value : 'a t -> 'a
(** Removes the root and returns its value alone. *)
