(* The clock and the queue keys are nanosecond counts held as immediate
   ints (2^62 ns is ~146 years of simulated time), and the heap stores
   the callbacks themselves — scheduling allocates nothing beyond the
   caller's closure, and firing nothing at all.

   A handle is the event's sequence number. Cancellation marks the seq in
   a side table consulted on fire; [n_cancelled] keeps the common case
   (nothing cancelled, protocol hot paths never cancel) to a single int
   test. Cancelling an event that already fired parks one entry in the
   table permanently — harmless at the test-only rate cancellation is
   actually used, see the .mli note. *)

type handle = int

type t = {
  mutable clock_ns : int;
  queue : (unit -> unit) Heap.t;
  mutable next_seq : int;
  root_rng : Rng.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable n_cancelled : int;
  mutable fired_total : int;
}

let create ?(seed = 1L) () =
  { clock_ns = 0;
    queue = Heap.create ();
    next_seq = 0;
    root_rng = Rng.create seed;
    cancelled = Hashtbl.create 8;
    n_cancelled = 0;
    fired_total = 0 }

let now t = Int64.of_int t.clock_ns
let now_ns t = t.clock_ns
let rng t = t.root_rng
let events_fired t = t.fired_total

let enqueue t at_ns callback =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.add_ns t.queue ~key_ns:at_ns ~seq callback;
  seq

let schedule_at t ~at callback =
  let at_ns = Int64.to_int at in
  enqueue t (if at_ns < t.clock_ns then t.clock_ns else at_ns) callback

let schedule t ~delay callback =
  let d = Int64.to_int delay in
  enqueue t (if d < 0 then t.clock_ns else t.clock_ns + d) callback

let schedule_ns t ~delay_ns callback =
  enqueue t (if delay_ns < 0 then t.clock_ns else t.clock_ns + delay_ns) callback

let cancel t h =
  if not (Hashtbl.mem t.cancelled h) then begin
    Hashtbl.replace t.cancelled h ();
    t.n_cancelled <- t.n_cancelled + 1
  end

let pending t = Heap.length t.queue

(* True (consuming the mark) iff the event was cancelled. *)
let consume_cancel t seq =
  t.n_cancelled > 0
  && Hashtbl.mem t.cancelled seq
  && begin
       Hashtbl.remove t.cancelled seq;
       t.n_cancelled <- t.n_cancelled - 1;
       true
     end

let step t =
  if Heap.is_empty t.queue then false
  else begin
    let at = Heap.peek_key_ns t.queue in
    let seq = Heap.peek_seq t.queue in
    let callback = Heap.pop_value t.queue in
    if not (consume_cancel t seq) then begin
      t.clock_ns <- at;
      t.fired_total <- t.fired_total + 1;
      callback ()
    end;
    true
  end

let run ?until ?max_events t =
  let limit_ns =
    match until with
    | None -> max_int
    | Some l -> if Int64.compare l (Int64.of_int max_int) > 0 then max_int else Int64.to_int l
  in
  let budget = match max_events with None -> max_int | Some m -> m in
  let fired = ref 0 in
  let running = ref true in
  while !running do
    if !fired >= budget then running := false
    else if Heap.is_empty t.queue then begin
      if until <> None && t.clock_ns < limit_ns then t.clock_ns <- limit_ns;
      running := false
    end
    else begin
      let at = Heap.peek_key_ns t.queue in
      if at > limit_ns then begin
        t.clock_ns <- limit_ns;
        running := false
      end
      else begin
        let seq = Heap.peek_seq t.queue in
        let callback = Heap.pop_value t.queue in
        if not (consume_cancel t seq) then begin
          incr fired;
          t.clock_ns <- at;
          t.fired_total <- t.fired_total + 1;
          callback ()
        end
      end
    end
  done
