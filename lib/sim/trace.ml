type entry = { at : Sim_time.t; tag : string; detail : string }

type t = {
  capacity : int;
  mutable enabled : bool;
  buffer : entry Queue.t;
}

let create ?(capacity = 65536) ?(enabled = true) () =
  { capacity; enabled; buffer = Queue.create () }

let enabled t = t.enabled
let set_enabled t v = t.enabled <- v

let record t ~at ~tag detail =
  if t.enabled then begin
    Queue.push { at; tag; detail } t.buffer;
    if Queue.length t.buffer > t.capacity then ignore (Queue.pop t.buffer)
  end

(* The disabled branch must not format: callers sit on per-message hot
   paths and pretty-printing the arguments would dominate their
   allocation even when the trace is off. The formatter it threads is a
   dedicated sink — [ikfprintf] never writes, but handing it the shared
   [Format.str_formatter] would leak that global into every caller's
   type and invite accidental interleaving with real [str_formatter]
   users. *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let recordf t ~at ~tag fmt =
  if t.enabled then
    Format.kasprintf (fun detail -> record t ~at ~tag detail) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

let entries t = List.of_seq (Queue.to_seq t.buffer)

let find t ~tag = List.filter (fun e -> String.equal e.tag tag) (entries t)

let count t ~tag =
  Queue.fold (fun acc e -> if String.equal e.tag tag then acc + 1 else acc) 0 t.buffer

let length t = Queue.length t.buffer
let clear t = Queue.clear t.buffer

let pp_entry fmt e =
  Format.fprintf fmt "[%a] %s: %s" Sim_time.pp e.at e.tag e.detail
