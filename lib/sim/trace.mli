(** Structured simulation trace.

    A bounded in-memory log of tagged events; protocol implementations
    record state transitions here so tests can assert on behaviour and
    debugging runs can be replayed. Disabled traces cost one branch.

    A trace is single-owner: one event loop (simulated or socket)
    records into it and reads it back between events. Nothing here is
    safe for concurrent use, and {!recordf} deliberately avoids global
    formatter state so two traces never interleave through a shared
    sink. *)

type t

type entry = { at : Sim_time.t; tag : string; detail : string }

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** [create ~capacity ~enabled ()] is a trace keeping at most [capacity]
    entries (default 65536; oldest entries are dropped first). *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> at:Sim_time.t -> tag:string -> string -> unit
(** [record t ~at ~tag detail] appends an entry when the trace is enabled. *)

val recordf :
  t -> at:Sim_time.t -> tag:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Like {!record} with a format string; the detail string is only built
    when the trace is enabled. *)

val entries : t -> entry list
(** All retained entries, oldest first. *)

val find : t -> tag:string -> entry list
(** Retained entries with the given tag, oldest first. *)

val count : t -> tag:string -> int
(** Number of retained entries with the given tag. *)

val length : t -> int

val clear : t -> unit

val pp_entry : Format.formatter -> entry -> unit
