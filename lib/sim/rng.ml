(* splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). Passes BigCrush; one 64-bit state word.

   The 64-bit state is held as two 32-bit halves in immediate ints and
   stepped with native-int arithmetic: an [int64] state would box on
   every add/mul/xor without flambda, and the simulator draws once per
   delivered packet (wire jitter). The emulation is bit-exact — the
   mod-2^64 adds and multiplies are reassembled from 16/32-bit limb
   products that never exceed the 62 bits a native int holds safely
   (native products of 32-bit limbs wrap mod 2^63, which preserves the
   low 32 bits we extract). [out_hi]/[out_lo] carry {!step}'s result so
   drawing allocates nothing (a tuple return would box). *)

type t = {
  mutable hi : int;      (* state bits 32..63 *)
  mutable lo : int;      (* state bits 0..31 *)
  mutable out_hi : int;  (* last output, high/low 32 bits *)
  mutable out_lo : int;
}

let mask32 = 0xFFFFFFFF

let create seed =
  { hi = Int64.to_int (Int64.shift_right_logical seed 32);
    lo = Int64.to_int (Int64.logand seed 0xFFFFFFFFL);
    out_hi = 0;
    out_lo = 0 }

(* High 32 bits of the low-64-bit product (ah:al) * (bh:bl). *)
let mul_hi ah al bh bl =
  let p1 = (al lsr 16) * bl in
  let lo_sum = ((al land 0xFFFF) * bl) + ((p1 land 0xFFFF) lsl 16) in
  ((lo_sum lsr 32) + (p1 lsr 16) + (al * bh) + (ah * bl)) land mask32

(* Low 32 bits of the same product. *)
let mul_lo al bl = (al * bl) land mask32

let step t =
  (* state += 0x9E3779B97F4A7C15; z = state *)
  let l = t.lo + 0x7F4A7C15 in
  let zl = l land mask32 in
  let zh = (t.hi + 0x9E3779B9 + (l lsr 32)) land mask32 in
  t.hi <- zh;
  t.lo <- zl;
  (* z ^= z >>> 30 *)
  let zl = zl lxor ((zl lsr 30) lor ((zh lsl 2) land mask32)) in
  let zh = zh lxor (zh lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let nh = mul_hi zh zl 0xBF58476D 0x1CE4E5B9 in
  let nl = mul_lo zl 0x1CE4E5B9 in
  (* z ^= z >>> 27 *)
  let zl = nl lxor ((nl lsr 27) lor ((nh lsl 5) land mask32)) in
  let zh = nh lxor (nh lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let nh = mul_hi zh zl 0x94D049BB 0x133111EB in
  let nl = mul_lo zl 0x133111EB in
  (* z ^= z >>> 31 *)
  t.out_lo <- nl lxor ((nl lsr 31) lor ((nh lsl 1) land mask32));
  t.out_hi <- nh lxor (nh lsr 31)

let next_raw t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.out_hi) 32) (Int64.of_int t.out_lo)

let int64 = next_raw
let split t = create (next_raw t)

let int t bound =
  assert (bound > 0);
  step t;
  (* Keep 62 bits so the native int (63-bit) stays non-negative. *)
  let v = ((t.out_hi land 0x3FFFFFFF) lsl 32) lor t.out_lo in
  v mod bound

let float t bound =
  assert (bound > 0.);
  step t;
  (* 53 uniform mantissa bits (z >>> 11) scaled into [0, bound). *)
  let bits = (t.out_hi lsl 21) lor (t.out_lo lsr 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t =
  step t;
  t.out_lo land 1 = 1

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t 1.0 in
  (* Guard against log 0 on the (measure-zero but representable) draw u = 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let sample_without_replacement t k n =
  assert (0 <= k && k <= n);
  (* Floyd's algorithm: O(k) expected draws, no O(n) allocation. *)
  let module IS = Set.Make (Int) in
  let rec go j acc =
    if j > n then acc
    else
      let v = int t j in
      let acc = if IS.mem v acc then IS.add (j - 1) acc else IS.add v acc in
      go (j + 1) acc
  in
  if k = 0 then [] else IS.elements (go (n - k + 1) IS.empty)
