(* Structure-of-arrays binary min-heap.

   The previous implementation stored one {key; seq; value} record per
   entry, so every [add] allocated and every comparison chased a pointer
   (plus a boxed-int64 compare). Here each logical field lives in its own
   flat array and the int64 key is split into two immediate ints:

     hi = signed high 32 bits     (Int64.shift_right key 32)
     lo = unsigned low 32 bits    (Int64.logand key 0xFFFFFFFF)

   Lexicographic (hi, lo, seq) equals signed int64 (key, seq) order —
   base-2^32 digits with a signed leading digit — and compares with plain
   int operations only, which matters without flambda where int64 locals
   stay boxed. Engine keys are nanosecond timestamps that fit an OCaml
   int, so the engine uses the [_ns] entry points and never touches an
   int64 on its fast path.

   Values are stored as [Obj.t] so the slot array is a uniform (never
   flat-float) array with a shared filler; a popped entry's slot is reset
   to the filler immediately, so the heap retains no reference to values
   it no longer contains. *)

type 'a t = {
  mutable hi : int array;
  mutable lo : int array;
  mutable seqs : int array;
  mutable vals : Obj.t array;
  mutable size : int;
}

let filler : Obj.t = Obj.repr 0

let create () = { hi = [||]; lo = [||]; seqs = [||]; vals = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let key_at h i =
  Int64.logor (Int64.shift_left (Int64.of_int h.hi.(i)) 32) (Int64.of_int h.lo.(i))

let grow h =
  let cap = Array.length h.seqs in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nhi = Array.make ncap 0
    and nlo = Array.make ncap 0
    and nseqs = Array.make ncap 0
    and nvals = Array.make ncap filler in
    Array.blit h.hi 0 nhi 0 h.size;
    Array.blit h.lo 0 nlo 0 h.size;
    Array.blit h.seqs 0 nseqs 0 h.size;
    Array.blit h.vals 0 nvals 0 h.size;
    h.hi <- nhi;
    h.lo <- nlo;
    h.seqs <- nseqs;
    h.vals <- nvals
  end

(* Hole-based sift: carry the moving entry in locals and shift blockers
   into the hole, writing each array once per level instead of swapping. *)

let set h i khi klo seq v =
  h.hi.(i) <- khi;
  h.lo.(i) <- klo;
  h.seqs.(i) <- seq;
  h.vals.(i) <- v

let sift_up h i khi klo seq v =
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let phi = h.hi.(p) in
    if
      khi < phi
      || (khi = phi
          && (klo < h.lo.(p) || (klo = h.lo.(p) && seq < h.seqs.(p))))
    then begin
      set h !i phi h.lo.(p) h.seqs.(p) h.vals.(p);
      i := p
    end
    else continue := false
  done;
  set h !i khi klo seq v

let sift_down h khi klo seq v =
  let size = h.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= size then continue := false
    else begin
      let r = l + 1 in
      (* smallest child *)
      let c =
        if r < size then begin
          let lhi = h.hi.(l) and rhi = h.hi.(r) in
          if
            rhi < lhi
            || (rhi = lhi
                && (h.lo.(r) < h.lo.(l)
                    || (h.lo.(r) = h.lo.(l) && h.seqs.(r) < h.seqs.(l))))
          then r
          else l
        end
        else l
      in
      let chi = h.hi.(c) in
      if
        chi < khi
        || (chi = khi
            && (h.lo.(c) < klo || (h.lo.(c) = klo && h.seqs.(c) < seq)))
      then begin
        set h !i chi h.lo.(c) h.seqs.(c) h.vals.(c);
        i := c
      end
      else continue := false
    end
  done;
  set h !i khi klo seq v

let add_split h khi klo ~seq v =
  grow h;
  let i = h.size in
  h.size <- i + 1;
  sift_up h i khi klo seq v

let add h ~key ~seq value =
  add_split h
    (Int64.to_int (Int64.shift_right key 32))
    (Int64.to_int (Int64.logand key 0xFFFFFFFFL))
    ~seq (Obj.repr value)

(* Nanosecond timestamps are nonnegative ints, for which the arithmetic
   int shift produces the same (hi, lo) digits as the int64 split. *)
let add_ns h ~key_ns ~seq value =
  add_split h (key_ns asr 32) (key_ns land 0xFFFFFFFF) ~seq (Obj.repr value)

let pop_at_root h =
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    let khi = h.hi.(last)
    and klo = h.lo.(last)
    and seq = h.seqs.(last)
    and v = h.vals.(last) in
    h.vals.(last) <- filler;
    sift_down h khi klo seq v
  end
  else h.vals.(0) <- filler

let pop_min h =
  if h.size = 0 then None
  else begin
    let key = key_at h 0 and seq = h.seqs.(0) in
    let value : 'a = Obj.obj h.vals.(0) in
    pop_at_root h;
    Some (key, seq, value)
  end

let peek_min h =
  if h.size = 0 then None
  else Some (key_at h 0, h.seqs.(0), (Obj.obj h.vals.(0) : 'a))

let peek_key_ns h = (h.hi.(0) lsl 32) lor h.lo.(0)
let peek_seq h = h.seqs.(0)

let pop_value h =
  let value : 'a = Obj.obj h.vals.(0) in
  pop_at_root h;
  value

let clear h =
  h.hi <- [||];
  h.lo <- [||];
  h.seqs <- [||];
  h.vals <- [||];
  h.size <- 0
