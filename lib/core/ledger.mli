(** The log of confirmed BFTblocks (Fig. 4's log manager).

    Confirmed blocks are stored by serial number; execution advances a
    contiguous prefix pointer (only sequential serials may execute,
    §4.3's "when to respond the client"). A checkpoint-driven fast
    forward skips serials whose execution state was learned from a
    stable checkpoint during state transfer. *)

type t

val create : unit -> t

val confirm : t -> Bftblock.t -> unit
(** Stores a confirmed block at its serial number. Re-confirming the same
    serial is a no-op (Lemma 5.2 guarantees equal content). *)

val is_confirmed : t -> int -> bool
val get : t -> int -> Bftblock.t option

val executed_up_to : t -> int
(** Highest serial executed; 0 before anything executes (serials start
    at 1). *)

val next_executable : t -> Bftblock.t option
(** The block at [executed_up_to + 1], when confirmed. *)

val mark_executed : t -> int -> unit
(** Advances the execution pointer. Requires [sn = executed_up_to + 1]. *)

val fast_forward : t -> int -> unit
(** State transfer: jumps the execution pointer to [sn] (no-op when
    already past). *)

val confirmed_count : t -> int
(** Number of confirmed serials ever stored. *)

val highest_confirmed : t -> int
(** Highest confirmed serial; 0 when none. *)

val executed_range : t -> from_:int -> (int * Bftblock.t) list
(** Confirmed blocks with serials in [(from_, executed_up_to]], for
    safety cross-checks in tests. *)

val blocks : t -> Bftblock.t list
(** Every retained confirmed block, in serial order (snapshot
    building — blocks below a checkpoint are already pruned). *)

val prune_below : t -> int -> unit
(** Forgets block bodies with serials <= the argument (post-checkpoint
    garbage collection); the execution pointer and counters survive. *)
