open Sim

type spec = {
  cfg : Config.t;
  link : Net.Network.link;
  seed : int64;
  load : float;
  duration : Sim_time.span;
  warmup : Sim_time.span;
  load_until : Sim_time.span option;
  byzantine : (Net.Node_id.t * Byzantine.t) list;
  stop_leader_at : Sim_time.span option;
  client_resend_timeout : Sim_time.span option;
  gst : Sim_time.span option;
  trace : bool;
  verify_domains : int option;
  stores : Store.sink array option;
  obs : Obs.Registry.t option;
}

let spec ~cfg ?(link = Net.Network.default_link) ?(seed = 42L) ?(load = 1e5)
    ?(duration = Sim_time.s 20) ?(warmup = Sim_time.s 5) ?load_until ?(byzantine = [])
    ?stop_leader_at ?client_resend_timeout ?gst ?(trace = false) ?verify_domains ?stores
    ?obs () =
  { cfg;
    link;
    seed;
    load;
    duration;
    warmup;
    load_until;
    byzantine;
    stop_leader_at;
    client_resend_timeout;
    gst;
    trace;
    verify_domains;
    stores;
    obs }

let silent_f cfg =
  let leader = Config.leader_of_view cfg 1 in
  let rec pick i acc =
    if List.length acc >= cfg.Config.f then List.rev acc
    else
      let id = i mod cfg.Config.n in
      if Net.Node_id.equal id leader then pick (i + 1) acc
      else pick (i + 1) ((id, Byzantine.Silent) :: acc)
  in
  (* Start after the leader so the picked set is stable and non-leader. *)
  pick (leader + 1) []

type bandwidth_view = {
  sent_bytes : int;
  received_bytes : int;
  sent_by_category : (string * int) list;
  received_by_category : (string * int) list;
}

type report = {
  n : int;
  offered : int;
  confirmed : int;
  throughput : float;
  goodput_bps : float;
  latency : Stats.Histogram.t;
  stage_seconds : (string * float) list;
  leader : bandwidth_view;
  non_leader : bandwidth_view;
  leader_bps : float;
  window_sec : float;
  executed_blocks : int;
  view_changes : int;
  final_view : int;
  vc_trigger_to_entry : float option;
  vc_bytes : int;
  equivocations_detected : int;
  all_confirmed : bool;
  safety_ok : bool;
}

type t = {
  sp : spec;
  engine : Engine.t;
  network : Msg.t Net.Network.t;
  replicas : Replica.t array;
  gen : Workload.Generator.t;
  trace : Trace.t;
  strategies : Byzantine.t array;
  (* f+1 execution tracking. Both tables are keyed per serial and would
     otherwise grow for the whole run; when a checkpoint certificate
     advances the low watermark every serial at or below it is settled,
     so [on_checkpoint] prunes them (see [prune_below]) and
     [pruned_below] guards against a lagging replica's late execution of
     a pruned serial being re-counted from scratch. Batch-level dedup
     lives on the requests themselves ({!Workload.Request.mark_counted}),
     which needs no table at all. *)
  exec_counts : (int, int ref) Hashtbl.t;
  propose_times : (int, Sim_time.t) Hashtbl.t;
  mutable pruned_below : int;
  confirm_meter : Stats.Meter.t;
  goodput_meter : Stats.Meter.t; (* payload bytes confirmed *)
  latency : Stats.Histogram.t;
  (* Table-3 stage accumulators (request-weighted seconds), indexed by
     [stage_*] below. A float array keeps the per-confirmed-batch hot path
     free of the boxed-float stores and string-hashtable lookups a
     {!Stats.Breakdown} would cost; the report materializes the named
     list. *)
  stage_acc : float array;
  mutable confirmed_requests : int;
  mutable executed_blocks : int;
  mutable first_vc_trigger : Sim_time.t option;
  mutable last_view_entry : Sim_time.t option;
  mutable view_changes : int;
  (* Unconfirmed client batches ordered by next re-send deadline (ns key,
     batch id as tiebreak; the value carries the attempt count for the
     exponential backoff). A scan pops only the entries that are due —
     O(due) — where the previous implementation swept the generator's
     entire batch history every half-timeout. Confirmed batches are
     dropped lazily when their deadline surfaces. *)
  resend_queue : (Workload.Request.t * int) Heap.t;
  (* One pool shared by every simulated replica when [spec.verify_domains]
     asks for one: workers only evaluate pure crypto, so sharing changes
     nothing observable and keeps domain count independent of n. *)
  verify_pool : Exec.Pool.t option;
  (* retained so [restart_replica] can rebuild a replica mid-run *)
  keys : (Crypto.Signature.public_key * Crypto.Signature.private_key) array;
  pks : Crypto.Signature.public_key array;
  tsetup : Crypto.Threshold.setup;
  tkeys : Crypto.Threshold.member_key array;
  hooks : Replica.hooks;
  (* confirm-latency instruments when [spec.obs] is attached; the sim's
     own [latency] histogram stays authoritative for the report *)
  obs_confirm : (Obs.Histogram.t * Obs.Counter.t) option;
}

let engine t = t.engine
let network t = t.network
let replicas t = t.replicas
let generator t = t.gen
let metrics_report t = Option.map Obs.Registry.expose t.sp.obs
let trace t = t.trace

let honest_ids t =
  Array.to_list t.replicas
  |> List.filteri (fun i _ -> not (Byzantine.is_byzantine t.strategies.(i)))
  |> List.map Replica.id

let f_plus_1 t = Config.max_faulty t.sp.cfg + 1

let stage_generation = 0
and stage_delivery = 1
and stage_agreement = 2
and stage_response = 3

let stage_names =
  [| "Datablock Generation"; "Datablock Delivery"; "Agreement"; "Response to Client" |]

(* The (f+1)-th execution of a serial is the client-visible confirmation
   instant (a valid client response needs f+1 identical acks, §4.1). *)
let on_f1_execution t ~sn (block : Bftblock.t) dbs =
  let now = Engine.now t.engine in
  t.executed_blocks <- t.executed_blocks + 1;
  let agree_start = Hashtbl.find_opt t.propose_times sn in
  List.iter
    (fun (db : Datablock.t) ->
      List.iter
        (fun (b : Workload.Request.t) ->
          if not (Workload.Request.is_counted b) then begin
            Workload.Request.mark_counted b;
            let count = b.Workload.Request.count in
            t.confirmed_requests <- t.confirmed_requests + count;
            Stats.Meter.add t.confirm_meter ~at:now count;
            Stats.Meter.add t.goodput_meter ~at:now (Workload.Request.payload_bytes b);
            Stats.Histogram.add t.latency Sim_time.(now - b.Workload.Request.born);
            (match t.obs_confirm with
             | Some (h, c) ->
               Obs.Histogram.record h
                 (Int64.to_int Sim_time.(now - b.Workload.Request.born));
               Obs.Counter.add c count
             | None -> ());
            let w = float_of_int count in
            let acc = t.stage_acc in
            let gen_span = Sim_time.to_sec Sim_time.(db.Datablock.created_at - b.Workload.Request.born) in
            acc.(stage_generation) <- acc.(stage_generation) +. (w *. Float.max 0. gen_span);
            (match agree_start with
             | Some p ->
               acc.(stage_delivery) <-
                 acc.(stage_delivery)
                 +. (w *. Float.max 0. (Sim_time.to_sec Sim_time.(p - db.Datablock.created_at)));
               acc.(stage_agreement) <-
                 acc.(stage_agreement)
                 +. (w *. Float.max 0. (Sim_time.to_sec Sim_time.(now - p)))
             | None -> ());
            acc.(stage_response) <-
              acc.(stage_response) +. (w *. Sim_time.to_sec t.sp.link.Net.Network.prop_delay)
          end)
        db.Datablock.batches)
    dbs;
  ignore block

(* Checkpoint garbage collection for the runner's own bookkeeping: once
   the protocol's low watermark reaches [lw], no serial at or below it
   can produce a fresh (f+1)-th execution, so the per-serial counters and
   the ids of batches counted under those serials can go. Runs once per
   watermark value (n replicas report the same advance). *)
let prune_below t lw =
  if lw > t.pruned_below then begin
    t.pruned_below <- lw;
    let stale =
      Hashtbl.fold (fun sn _ acc -> if sn <= lw then sn :: acc else acc) t.exec_counts []
    in
    List.iter (Hashtbl.remove t.exec_counts) stale;
    let stale =
      Hashtbl.fold (fun sn _ acc -> if sn <= lw then sn :: acc else acc) t.propose_times []
    in
    List.iter (Hashtbl.remove t.propose_times) stale
  end

let make_hooks t_ref =
  { Replica.on_execute =
      (fun ~id:_ ~sn block dbs ->
        match !t_ref with
        | None -> ()
        | Some t ->
          (* A replica catching up via state transfer can execute a
             serial the checkpoint GC already settled; restarting its
             counter from zero must not re-trigger the f+1 accounting. *)
          if sn > t.pruned_below then begin
            let c =
              match Hashtbl.find_opt t.exec_counts sn with
              | Some c -> c
              | None ->
                let c = ref 0 in
                Hashtbl.add t.exec_counts sn c;
                c
            in
            incr c;
            if !c = f_plus_1 t then on_f1_execution t ~sn block dbs
          end);
    on_view_change =
      (fun ~id:_ ~view ->
        match !t_ref with
        | None -> ()
        | Some t ->
          t.view_changes <- max t.view_changes (view - 1);
          t.last_view_entry <- Some (Engine.now t.engine));
    on_view_change_trigger =
      (fun ~id:_ ~abandoned:_ ->
        match !t_ref with
        | None -> ()
        | Some t ->
          if t.first_vc_trigger = None then t.first_vc_trigger <- Some (Engine.now t.engine));
    on_propose =
      (fun ~id:_ ~sn ~at ->
        match !t_ref with
        | None -> ()
        | Some t -> if not (Hashtbl.mem t.propose_times sn) then Hashtbl.add t.propose_times sn at);
    on_checkpoint =
      (fun ~id:_ ~lw ->
        match !t_ref with
        | None -> ()
        | Some t -> prune_below t lw)
  }

let resend_batch t (b : Workload.Request.t) =
  let copy = Workload.Request.resend_of b in
  (* Re-send to several deterministically chosen replicas; §4.1:
     s = 9 already gives > 99.99% probability of hitting an
     honest one (f + 1 would guarantee it but floods large
     clusters). *)
  let fanout = min 9 (min (Config.max_faulty t.sp.cfg + 1) (t.sp.cfg.Config.n - 1)) in
  let leader = Config.leader_of_view t.sp.cfg 1 in
  let targets =
    Workload.Assign.replicas_for ~n:t.sp.cfg.Config.n ~s:fanout ~leader
      ~key:b.Workload.Request.id
  in
  List.iter
    (fun dst ->
      Net.Network.inject t.network ~dst ~size:(Workload.Request.wire_bytes copy)
        ~category:"client-req" (fun () ->
          ignore (Replica.submit t.replicas.(dst) copy : Replica.admission)))
    targets

let schedule_resends t timeout =
  let period = Int64.div timeout 2L in
  let timeout_ns = Int64.to_int timeout in
  let rec scan () =
    let now_ns = Engine.now_ns t.engine in
    while
      (not (Heap.is_empty t.resend_queue)) && Heap.peek_key_ns t.resend_queue <= now_ns
    do
      let b, attempts = Heap.pop_value t.resend_queue in
      if not (Workload.Request.is_confirmed b) then begin
        resend_batch t b;
        (* Exponential backoff (capped): a recovering cluster is not
           re-flooded with its whole backlog every period. *)
        let attempts = attempts + 1 in
        let wait_ns = timeout_ns * min 8 (1 lsl attempts) in
        Heap.add_ns t.resend_queue ~key_ns:(now_ns + wait_ns) ~seq:b.Workload.Request.id
          (b, attempts)
      end
    done;
    if Sim_time.compare (Engine.now t.engine) t.sp.duration < 0 then
      ignore (Engine.schedule t.engine ~delay:period (fun () -> scan ()))
  in
  ignore (Engine.schedule t.engine ~delay:timeout (fun () -> scan ()))

let create sp =
  let cfg = sp.cfg in
  let engine = Engine.create ~seed:sp.seed () in
  let meta =
    if cfg.Config.priority_channels then Msg.meta
    else Net.Network.{ Msg.meta with priority = (fun _ -> Net.Nic.Low) }
  in
  let network = Net.Network.create engine ~n:cfg.Config.n ~meta ~link:sp.link in
  (match sp.gst with
   | Some gst ->
     let rng = Rng.split (Engine.rng engine) in
     Net.Network.set_extra_delay network
       (Net.Partial_sync.until_gst ~rng ~gst ~max_delay:cfg.Config.view_timeout)
   | None -> ());
  let key_rng = Rng.split (Engine.rng engine) in
  let keys = Array.init cfg.Config.n (fun _ -> Crypto.Signature.keygen key_rng) in
  let pks = Array.map fst keys in
  let tsetup, tkeys =
    Crypto.Threshold.keygen key_rng ~threshold:(2 * cfg.Config.f) ~parties:cfg.Config.n
  in
  let strategies = Array.make cfg.Config.n Byzantine.Honest in
  List.iter (fun (id, s) -> strategies.(id) <- s) sp.byzantine;
  let trace = Trace.create ~enabled:sp.trace ~capacity:1_000_000 () in
  let t_ref = ref None in
  let hooks = make_hooks t_ref in
  let verify_pool =
    match sp.verify_domains with
    | Some d when d > 0 -> Some (Exec.Pool.create ?obs:sp.obs ~domains:d ())
    | _ -> None
  in
  let store_of id = Option.map (fun stores -> stores.(id)) sp.stores in
  let replicas =
    Array.init cfg.Config.n (fun id ->
        let platform =
          Platform.of_sim ?verify_pool ?store:(store_of id) ~engine ~network ~id
            ~cores:cfg.Config.cores ()
        in
        Replica.create ~platform ~cfg ~id ~sk:(snd keys.(id)) ~pks ~tsetup
          ~tkey:tkeys.(id) ?obs:sp.obs ~strategy:strategies.(id) ~hooks ~trace ())
  in
  Array.iter Replica.start replicas;
  let leader = Config.leader_of_view cfg 1 in
  (* Clients avoid the leader (it generates no datablocks) unless the
     leader-generates ablation is on. *)
  let is_target id =
    (not (Net.Node_id.equal id leader)) || cfg.Config.leader_generates_datablocks
  in
  (* Clients do not know who is Byzantine; with re-sends enabled they
     spray over every target and rely on the timeout path, otherwise
     target honest replicas so offered = confirmable. *)
  let targets =
    List.filter
      (fun id ->
        is_target id
        && (sp.client_resend_timeout <> None || not (Byzantine.is_byzantine strategies.(id))))
      (List.init cfg.Config.n Fun.id)
  in
  let resend_queue = Heap.create () in
  (* Every new batch registers its first re-send deadline as it is born;
     the scanner in [schedule_resends] then only ever touches due
     entries. *)
  let on_batch =
    match sp.client_resend_timeout with
    | None -> None
    | Some timeout ->
      let timeout_ns = Int64.to_int timeout in
      Some
        (fun (b : Workload.Request.t) ->
          Heap.add_ns resend_queue
            ~key_ns:(Int64.to_int b.Workload.Request.born + timeout_ns)
            ~seq:b.Workload.Request.id (b, 0))
  in
  let gen =
    (* Coarser client batching at large scale keeps the event volume of
       the open-loop generator proportional to the offered load rather
       than to n. *)
    let tick = if cfg.Config.n >= 128 then Sim_time.ms 100 else Sim_time.ms 20 in
    let inject ~dst ~size cb = Net.Network.inject network ~dst ~size ~category:"client-req" cb in
    (* Client fan-out s > 1 (§4.1): each batch also goes to s - 1 extra
       mu-chosen replicas; the shared confirmation ref dedups counting. *)
    let fanned : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let submit ~target b =
      (* The sim client stays open-loop: verdicts are rendered but not
         acted on (an overload scenario's oracle reads the counters). *)
      ignore (Replica.submit replicas.(target) b : Replica.admission);
      if cfg.Config.s > 1 && (not b.Workload.Request.resend) && not (Hashtbl.mem fanned b.Workload.Request.id)
      then begin
        Hashtbl.add fanned b.Workload.Request.id ();
        Workload.Assign.replicas_for ~n:cfg.Config.n ~s:cfg.Config.s ~leader
          ~key:b.Workload.Request.id
        |> List.iter (fun dst ->
               if not (Net.Node_id.equal dst target) then
                 inject ~dst ~size:(Workload.Request.wire_bytes b) (fun () ->
                     ignore (Replica.submit replicas.(dst) b : Replica.admission)))
      end
    in
    Workload.Generator.start engine ~rate:sp.load ~payload:cfg.Config.payload ~targets ~tick
      ~inject ~submit ?on_batch
      ?until:(match sp.load_until with Some u -> Some u | None -> Some sp.duration)
      ()
  in
  let t =
    { sp;
      engine;
      network;
      replicas;
      gen;
      trace;
      strategies;
      exec_counts = Hashtbl.create 1024;
      propose_times = Hashtbl.create 1024;
      pruned_below = 0;
      confirm_meter = Stats.Meter.create ();
      goodput_meter = Stats.Meter.create ();
      latency = Stats.Histogram.create ();
      stage_acc = Array.make (Array.length stage_names) 0.;
      confirmed_requests = 0;
      executed_blocks = 0;
      first_vc_trigger = None;
      last_view_entry = None;
      view_changes = 0;
      resend_queue;
      verify_pool;
      keys;
      pks;
      tsetup;
      tkeys;
      hooks;
      obs_confirm =
        Option.map
          (fun reg ->
            ( Obs.Registry.histogram reg ~help:"submit to f+1-confirm latency (ns)"
                "leopard_confirm_latency_ns",
              Obs.Registry.counter reg ~help:"client requests confirmed"
                "leopard_confirmed_requests_total" ))
          sp.obs }
  in
  t_ref := Some t;
  (* Bandwidth accounting restarts when the warmup window closes. *)
  ignore (Engine.schedule_at engine ~at:sp.warmup (fun () -> Net.Network.reset_stats network));
  (match sp.stop_leader_at with
   | Some at ->
     ignore
       (Engine.schedule_at engine ~at (fun () ->
            Net.Network.set_down network leader true;
            Trace.recordf trace ~at ~tag:"leader.stopped" "%a" Net.Node_id.pp leader))
   | None -> ());
  (match sp.client_resend_timeout with
   | Some timeout -> schedule_resends t timeout
   | None -> ());
  t

let run_until t at = Engine.run ~until:at t.engine

(* Process restart mid-run: kill the replica, rebuild it from its durable
   store (the spec must have attached [stores]; with none attached the
   replacement restarts from genesis, which a safety check would catch).
   The replacement registers its own delivery handler on a fresh sim
   platform bound to the same network slot. *)
let restart_replica t id =
  Replica.halt t.replicas.(id);
  let store = Option.map (fun stores -> stores.(id)) t.sp.stores in
  let platform =
    Platform.of_sim ?verify_pool:t.verify_pool ?store ~engine:t.engine ~network:t.network ~id
      ~cores:t.sp.cfg.Config.cores ()
  in
  let r =
    Replica.recover ~platform ~cfg:t.sp.cfg ~id ~sk:(snd t.keys.(id)) ~pks:t.pks
      ~tsetup:t.tsetup ~tkey:t.tkeys.(id) ?obs:t.sp.obs ~strategy:t.strategies.(id)
      ~hooks:t.hooks ~trace:t.trace ()
  in
  t.replicas.(id) <- r;
  Net.Network.set_down t.network id false;
  Replica.start r

let check_safety t =
  let honest = honest_ids t in
  let ledgers = List.map (fun id -> Replica.ledger t.replicas.(id)) honest in
  match ledgers with
  | [] -> true
  | first :: rest ->
    let agree l1 l2 =
      let upto = min (Ledger.executed_up_to l1) (Ledger.executed_up_to l2) in
      let rec go sn =
        if sn > upto then true
        else
          match (Ledger.get l1 sn, Ledger.get l2 sn) with
          | Some a, Some b -> Bftblock.equal_content a b && go (sn + 1)
          | _ -> go (sn + 1) (* pruned below a checkpoint: vacuously fine *)
      in
      go 1
    in
    List.for_all (agree first) rest

let bandwidth_view t id =
  let acct = Net.Network.stats t.network id in
  { sent_bytes = Net.Bandwidth.total acct Net.Bandwidth.Sent;
    received_bytes = Net.Bandwidth.total acct Net.Bandwidth.Received;
    sent_by_category = Net.Bandwidth.by_category acct Net.Bandwidth.Sent;
    received_by_category = Net.Bandwidth.by_category acct Net.Bandwidth.Received }

let report t =
  let cfg = t.sp.cfg in
  let now = Engine.now t.engine in
  let from_ = t.sp.warmup and until = now in
  let window_sec = Sim_time.to_sec Sim_time.(until - from_) in
  let leader = Config.leader_of_view cfg 1 in
  let non_leader =
    List.find
      (fun id -> not (Net.Node_id.equal id leader))
      (honest_ids t)
  in
  let leader_view = bandwidth_view t leader in
  let throughput = Stats.Meter.rate t.confirm_meter ~from_ ~until in
  let goodput_bps = 8. *. Stats.Meter.rate t.goodput_meter ~from_ ~until in
  let vc_bytes =
    Array.to_list t.replicas
    |> List.map (fun r ->
           Net.Bandwidth.category_total
             (Net.Network.stats t.network (Replica.id r))
             Net.Bandwidth.Sent "viewchange")
    |> List.fold_left ( + ) 0
  in
  let vc_trigger_to_entry =
    match (t.first_vc_trigger, t.last_view_entry) with
    | Some a, Some b when Sim_time.compare b a > 0 -> Some (Sim_time.to_sec Sim_time.(b - a))
    | _ -> None
  in
  let final_view =
    List.fold_left (fun acc id -> max acc (Replica.view t.replicas.(id))) 1 (honest_ids t)
  in
  let equivocations =
    List.fold_left
      (fun acc id -> acc + List.length (Datablock_pool.equivocations (Replica.pool t.replicas.(id))))
      0 (honest_ids t)
  in
  let all_confirmed =
    List.for_all Workload.Request.is_confirmed (Workload.Generator.batches t.gen)
  in
  { n = cfg.Config.n;
    offered = Workload.Generator.offered t.gen;
    confirmed = t.confirmed_requests;
    throughput;
    goodput_bps;
    latency = t.latency;
    stage_seconds = Array.to_list (Array.mapi (fun i name -> (name, t.stage_acc.(i))) stage_names);
    leader = leader_view;
    non_leader = bandwidth_view t non_leader;
    leader_bps =
      (if window_sec <= 0. then 0.
       else 8. *. float_of_int (leader_view.sent_bytes + leader_view.received_bytes) /. window_sec);
    window_sec;
    executed_blocks = t.executed_blocks;
    view_changes = t.view_changes;
    final_view;
    vc_trigger_to_entry;
    vc_bytes;
    equivocations_detected = equivocations;
    all_confirmed;
    safety_ok = check_safety t }

let shutdown t = Option.iter Exec.Pool.shutdown t.verify_pool

let run sp =
  let t = create sp in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      run_until t sp.duration;
      report t)
