(** The durable-state seam between {!Replica} and stable storage.

    Leopard's safety argument (like PBFT's and HotStuff's) assumes a
    correct replica remembers its votes across a restart: forgetting a
    prepare vote and voting differently for the same [(view, sn)] lets
    two conflicting BFTblocks notarize. A {!sink} is the replica's
    write-ahead interface to whatever provides that stability —
    {!Replica} logs every vote, certificate and datablock counter
    {e before} the corresponding send, saves a {!snapshot} whenever a
    checkpoint advances the low watermark, and [Replica.recover] rebuilds
    a replica as snapshot + log replay.

    Three implementations: {!null} (no persistence — the sim default,
    keeping reports byte-identical to the pre-seam code), {!mem}
    (durable in-memory storage for sim-plane restart scenarios) and the
    segmented on-disk WAL in [Store.Store_file] (the TCP plane). The sink
    travels in [Platform.t.store], mirroring the [Verify] seam. *)

(** One log entry. [Logged_msg] covers everything whose emission is a
    binding commitment (prepare/commit votes, proposals, notarization
    and checkpoint certificates); [Confirmed_block] pins a locally
    confirmed BFTblock (its proof is final, never re-voted);
    [Entered_view] records view entry; [Db_counter] records a datablock
    counter the moment it is consumed, so a restarted replica never
    reuses one (counter reuse is equivocation evidence against an honest
    node). *)
type record =
  | Logged_msg of Msg.t
  | Confirmed_block of Bftblock.t
  | Entered_view of int
  | Db_counter of int

(** Per-serial agreement-instance state worth keeping at a checkpoint:
    exactly the fields that make re-voting deterministic. *)
type inst_snap = {
  s_sn : int;
  s_iview : int;
  s_block : Bftblock.t option;
  s_voted_prepare : bool;
  s_voted_hash : Crypto.Hash.t option;
  s_voted_commit : bool;
  s_notarized_view : int;
  s_notarization : Crypto.Threshold.aggregate option;
}

(** Checkpoint-time replica state. Saving one makes every log record
    written before it redundant, which is what lets the WAL truncate
    segments below the snapshot. *)
type snapshot = {
  snap_view : int;
  snap_lw : int;
  snap_next_sn : int;
  snap_db_counter : int;
  snap_state_hash : Crypto.Hash.t;
  snap_executed_up_to : int;
  snap_checkpoint : Msg.checkpoint_cert option;
  snap_blocks : Bftblock.t list;  (** ledger blocks retained above [lw] *)
  snap_executed_links : (Crypto.Hash.t * int) list;
      (** datablock hash -> executing serial (checkpoint GC bookkeeping) *)
  snap_instances : inst_snap list;
  snap_datablocks : (Datablock.t * bool) list;  (** with linked flag *)
}

type sink = {
  enabled : bool;
      (** [false] skips even record construction on the hot path
          ({!null}); implementations must set [true] *)
  log : record -> unit;
      (** append one record. Called synchronously before the send it
          covers; implementations may buffer until {!sync} (group
          commit). *)
  save : snapshot -> unit;
      (** persist a checkpoint snapshot and truncate the log below it *)
  load : unit -> snapshot option * record list;
      (** recover: latest durable snapshot (if any) plus every record
          logged after it, in append order. Total — implementations map
          torn tails to a clean prefix, never an exception. *)
  sync : unit -> unit;
      (** flush buffered appends per the implementation's fsync policy *)
}

val null : sink
(** No persistence; [enabled = false]. *)

val mem : unit -> sink
(** Durable in-memory storage: survives [Replica.halt]/[recover] (which
    model a process restart, not host memory loss), used by sim-plane
    restart scenarios. [save] truncates the record log like the file
    store truncates segments. *)

val with_torn_tail : drop:int -> sink -> sink
(** Fault-injecting wrapper: [load] drops the last [drop] records —
    the un-synced tail a crash can lose under a lazy fsync policy. Both
    planes use it for torn-tail recovery scenarios. *)
