(** Datablocks (§4.2): request packages from non-leader replicas.

    A datablock ⟨datablock, header, R⟩ carries a set of pending requests
    [R] (here: request batches), a header ⟨(i, dgt, counter), σᵢ⟩ naming
    its creator, the Merkle digest of [R] and the creator's running
    counter, and the creator's signature over the header. The counter
    gives receivers a cheap equivocation and throttling handle (§4.3). *)

type header = {
  creator : Net.Node_id.t;
  counter : int;          (** d: how many datablocks the creator has made *)
  digest : Crypto.Hash.t; (** Merkle root over the batch hashes *)
}

type verify_memo = Unverified | Valid | Invalid

type t = private {
  header : header;
  batches : Workload.Request.t list;
  req_count : int;        (** total requests across batches *)
  payload_bytes : int;    (** total request payload carried *)
  signature : Crypto.Signature.t;
  created_at : Sim.Sim_time.t;
      (** creation instant; not part of the signed header — measurement
          metadata for the latency breakdown of Table 3 *)
  mutable true_digest : Crypto.Hash.t option;
      (** Merkle digest of the carried batches, memoized on first
          {!verify} rather than at construction so the codec's decode
          path stays pure parsing (the simulated CPU cost of the digest
          is charged via the cost model; the memo keeps simulation
          wallclock linear). [None] = not yet forced — use {!verify},
          never read this field directly. *)
  wire_bytes : int;       (** memoized {!wire_size} *)
  mutable hash_memo : Crypto.Hash.t option;
      (** memoized {!hash}; [None] = not yet forced *)
  mutable header_enc : string;
      (** memoized signed-header encoding; [""] = not yet forced — use
          {!header_encoding} on [header] for the canonical bytes *)
  verify_memo : verify_memo Atomic.t;
      (** first receiver's {!verify} verdict, reused by the others — a
          datablock is immutable and every replica checks it against the
          same key set, so the outcome cannot differ across receivers.
          Stored in the value, not in a table: the memo is garbage-
          collected with the datablock, so caching adds no unbounded
          state (cf. [Replica.notar_cache_cap] for the one capped
          side-table cache).

          Domain-safety contract: {!verify} may run concurrently from
          [Exec.Pool] worker domains on the same value. The verdict is
          CAS-published ([Unverified] → [Valid]/[Invalid] exactly once,
          first writer wins; racing writers computed the same verdict),
          so readers can never observe tearing or a flipped verdict. The
          remaining memo fields are racy-but-benign: concurrent writers
          store structurally equal immutable values, which the OCaml
          memory model publishes without tearing. *)
}

val create :
  sk:Crypto.Signature.private_key ->
  creator:Net.Node_id.t ->
  counter:int ->
  now:Sim.Sim_time.t ->
  Workload.Request.t list ->
  t
(** Packs the batches and signs the header. Requires a non-empty list. *)

val of_wire :
  creator:Net.Node_id.t ->
  counter:int ->
  digest:Crypto.Hash.t ->
  created_at:Sim.Sim_time.t ->
  signature:Crypto.Signature.t ->
  Workload.Request.t list ->
  t
(** Reconstruction from decoded wire fields (the codec's entry point):
    the carried header digest and signature are preserved byte-for-byte
    so {!verify} gives the same verdict as on the original; memoized
    fields are recomputed. Requires a non-empty batch list. *)

val forge_with_bad_digest :
  sk:Crypto.Signature.private_key ->
  creator:Net.Node_id.t ->
  counter:int ->
  now:Sim.Sim_time.t ->
  Workload.Request.t list ->
  t
(** A well-signed datablock whose header digest does not match its
    contents — for integrity-check tests ({!verify} must reject it). *)

val tamper : t -> t
(** A corrupted copy of a valid datablock: the header (digest, signature)
    is kept byte-for-byte but the first carried batch is replaced, so the
    Merkle recompute no longer matches the signed digest. {!verify} must
    reject it from every domain — used by the parallel-verification
    stress tests. The original is not modified (fresh memo fields). *)

val digest_of_batches : Workload.Request.t list -> Crypto.Hash.t
(** The header digest: Merkle root over batch hashes (lets a replica
    prove a single request's inclusion to a client, see {!Crypto.Merkle}). *)

val verify : pks:Crypto.Signature.public_key array -> t -> bool
(** Signature and integrity check of Algorithm 1 (lines 17–18): the
    digest matches the carried batches and the creator's signature over
    [(i, dgt, d)] is valid. *)

val hash : t -> Crypto.Hash.t
(** The link stored in BFTblocks: hash of the header. Binding: the header
    contains the digest of the requests. *)

val header_encoding : header -> string
(** The signed byte string [(i, dgt, d)]. *)

val wire_size : t -> int
(** Bytes on the wire: header + signature + request payloads. *)

val pp : Format.formatter -> t -> unit
