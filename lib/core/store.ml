(* The durable-state seam. A [sink] is the replica's view of stable
   storage: a synchronous vote/certificate log plus checkpoint-time
   snapshots. Three implementations exist — [null] (no persistence, the
   sim default), [mem] (a durable in-memory store for restart scenarios
   on the sim plane) and the file-backed WAL in [Store.Store_file]
   (threaded in through [Platform], like the [Verify] seam, so this
   module stays free of I/O). *)

type record =
  | Logged_msg of Msg.t
  | Confirmed_block of Bftblock.t
  | Entered_view of int
  | Db_counter of int

type inst_snap = {
  s_sn : int;
  s_iview : int;
  s_block : Bftblock.t option;
  s_voted_prepare : bool;
  s_voted_hash : Crypto.Hash.t option;
  s_voted_commit : bool;
  s_notarized_view : int;
  s_notarization : Crypto.Threshold.aggregate option;
}

type snapshot = {
  snap_view : int;
  snap_lw : int;
  snap_next_sn : int;
  snap_db_counter : int;
  snap_state_hash : Crypto.Hash.t;
  snap_executed_up_to : int;
  snap_checkpoint : Msg.checkpoint_cert option;
  snap_blocks : Bftblock.t list;
  snap_executed_links : (Crypto.Hash.t * int) list;
  snap_instances : inst_snap list;
  snap_datablocks : (Datablock.t * bool) list;
}

type sink = {
  enabled : bool;
  log : record -> unit;
  save : snapshot -> unit;
  load : unit -> snapshot option * record list;
  sync : unit -> unit;
}

let null =
  { enabled = false;
    log = (fun (_ : record) -> ());
    save = (fun (_ : snapshot) -> ());
    load = (fun () -> (None, []));
    sync = (fun () -> ()) }

let mem () =
  (* Newest-first accumulation; [save] truncates the log exactly as the
     file store truncates segments below a snapshot. Everything logged is
     considered flushed (simulated stable storage has no write-back
     cache); [with_torn_tail] models the un-synced tail instead. *)
  let records : record list ref = ref [] in
  let snap : snapshot option ref = ref None in
  { enabled = true;
    log = (fun r -> records := r :: !records);
    save =
      (fun s ->
        snap := Some s;
        records := []);
    load = (fun () -> (!snap, List.rev !records));
    sync = (fun () -> ()) }

let with_torn_tail ~drop sink =
  { sink with
    load =
      (fun () ->
        let snap, records = sink.load () in
        let keep = max 0 (List.length records - drop) in
        (snap, List.filteri (fun i _ -> i < keep) records)) }
