type checkpoint_cert = {
  cp_sn : int;
  cp_state : Crypto.Hash.t;
  cp_proof : Crypto.Threshold.aggregate;
}

type view_change = {
  vc_new_view : int;
  vc_sender : Net.Node_id.t;
  vc_checkpoint : checkpoint_cert option;
  vc_entries : (int * Bftblock.t * Crypto.Threshold.aggregate) list;
  vc_signature : Crypto.Signature.t;
}

type new_view = {
  nv_view : int;
  nv_sender : Net.Node_id.t;
  nv_vcs : view_change list;
  nv_signature : Crypto.Signature.t;
}

type t =
  | Datablock_msg of Datablock.t
  | Propose of {
      block : Bftblock.t;
      leader_share : Crypto.Threshold.share;
      justification : (int * Crypto.Threshold.aggregate) option;
    }
  | Prepare_vote of {
      view : int;
      sn : int;
      block_hash : Crypto.Hash.t;
      share : Crypto.Threshold.share;
    }
  | Notarization of {
      view : int;
      sn : int;
      block_hash : Crypto.Hash.t;
      proof : Crypto.Threshold.aggregate;
    }
  | Commit_vote of {
      view : int;
      sn : int;
      notar_digest : Crypto.Hash.t;
      share : Crypto.Threshold.share;
    }
  | Confirmation of {
      view : int;
      sn : int;
      notar_digest : Crypto.Hash.t;
      proof : Crypto.Threshold.aggregate;
    }
  | Checkpoint_vote of { cp_sn : int; cp_state : Crypto.Hash.t; share : Crypto.Threshold.share }
  | Checkpoint_cert_msg of checkpoint_cert
  | Timeout of { view : int; sender : Net.Node_id.t; signature : Crypto.Signature.t }
  | View_change_msg of view_change
  | New_view_msg of new_view
  | Fetch of { hash : Crypto.Hash.t }
  | Fetch_reply of Datablock.t

(* -- Signing payloads ----------------------------------------------------

   Hot path: a payload is built for every vote signed or verified, so the
   per-round builders write a one-byte domain tag, a little-endian 64-bit
   integer and the raw 32-byte digest into one preallocated [Bytes] — a
   single allocation, no [Printf] machinery. Tags keep the payload kinds
   mutually injective (fixed layout per tag; length-prefixed lists in the
   variable-size view-change/new-view payloads). *)

let[@inline] tagged_int_hash tag v h =
  let b = Bytes.create 41 in
  Bytes.unsafe_set b 0 tag;
  Bytes.set_int64_le b 1 (Int64.of_int v);
  Bytes.blit_string (Crypto.Hash.raw h) 0 b 9 32;
  Bytes.unsafe_to_string b

let prepare_payload ~view ~block_hash = tagged_int_hash 'P' view block_hash

let notar_digest proof = Crypto.Hash.of_raw (Crypto.Threshold.encode_digest proof)

let commit_payload ~view ~notar_digest = tagged_int_hash 'C' view notar_digest
let checkpoint_payload ~cp_sn ~cp_state = tagged_int_hash 'K' cp_sn cp_state

let timeout_payload ~view =
  let b = Bytes.create 9 in
  Bytes.unsafe_set b 0 'T';
  Bytes.set_int64_le b 1 (Int64.of_int view);
  Bytes.unsafe_to_string b

let add_int b v = Buffer.add_int64_le b (Int64.of_int v)
let add_hash b h = Buffer.add_string b (Crypto.Hash.raw h)

let add_view_change b vc =
  Buffer.add_char b 'V';
  add_int b vc.vc_new_view;
  add_int b vc.vc_sender;
  (match vc.vc_checkpoint with
   | None -> Buffer.add_char b '\000'
   | Some c ->
     Buffer.add_char b '\001';
     add_int b c.cp_sn;
     add_hash b c.cp_state);
  add_int b (List.length vc.vc_entries);
  List.iter
    (fun (v, blk, proof) ->
      add_int b v;
      add_hash b (Bftblock.hash blk);
      add_int b (Crypto.Threshold.aggregate_raw proof))
    vc.vc_entries

let view_change_payload vc =
  let b = Buffer.create 128 in
  add_view_change b vc;
  Buffer.contents b

let new_view_payload nv =
  let b = Buffer.create 256 in
  Buffer.add_char b 'N';
  add_int b nv.nv_view;
  add_int b nv.nv_sender;
  add_int b (List.length nv.nv_vcs);
  List.iter (add_view_change b) nv.nv_vcs;
  Buffer.contents b

(* -- Network metadata ---------------------------------------------------- *)

let header_bytes = 24 (* type tag, view, serial *)
let share_bytes = Crypto.Threshold.share_size_bytes
let agg_bytes = Crypto.Threshold.aggregate_size_bytes
let hash_bytes = Crypto.Hash.size_bytes
let sig_bytes = Crypto.Signature.size_bytes
let cert_bytes = 8 + hash_bytes + agg_bytes

let view_change_size vc =
  header_bytes + sig_bytes
  + (match vc.vc_checkpoint with Some _ -> cert_bytes | None -> 1)
  + List.fold_left
      (fun acc (_, b, _) -> acc + 8 + Bftblock.wire_size b + agg_bytes)
      0 vc.vc_entries

let wire_size = function
  | Datablock_msg db | Fetch_reply db -> Datablock.wire_size db
  | Propose { block; justification; _ } ->
    header_bytes + Bftblock.wire_size block + share_bytes
    + (match justification with Some _ -> 8 + agg_bytes | None -> 1)
  | Prepare_vote _ | Commit_vote _ -> header_bytes + hash_bytes + share_bytes
  | Notarization _ | Confirmation _ -> header_bytes + hash_bytes + agg_bytes
  | Checkpoint_vote _ -> header_bytes + hash_bytes + share_bytes
  | Checkpoint_cert_msg _ -> header_bytes + cert_bytes
  | Timeout _ -> header_bytes + sig_bytes
  | View_change_msg vc -> view_change_size vc
  | New_view_msg nv ->
    header_bytes + sig_bytes + List.fold_left (fun acc vc -> acc + view_change_size vc) 0 nv.nv_vcs
  | Fetch _ -> header_bytes + hash_bytes

type kind =
  | K_datablock
  | K_propose
  | K_prepare_vote
  | K_notarization
  | K_commit_vote
  | K_confirmation
  | K_checkpoint_vote
  | K_checkpoint_cert
  | K_timeout
  | K_view_change
  | K_new_view
  | K_fetch
  | K_fetch_reply

let kind = function
  | Datablock_msg _ -> K_datablock
  | Propose _ -> K_propose
  | Prepare_vote _ -> K_prepare_vote
  | Notarization _ -> K_notarization
  | Commit_vote _ -> K_commit_vote
  | Confirmation _ -> K_confirmation
  | Checkpoint_vote _ -> K_checkpoint_vote
  | Checkpoint_cert_msg _ -> K_checkpoint_cert
  | Timeout _ -> K_timeout
  | View_change_msg _ -> K_view_change
  | New_view_msg _ -> K_new_view
  | Fetch _ -> K_fetch
  | Fetch_reply _ -> K_fetch_reply

let kind_name = function
  | K_datablock -> "datablock"
  | K_propose -> "propose"
  | K_prepare_vote -> "prepare-vote"
  | K_notarization -> "notarization"
  | K_commit_vote -> "commit-vote"
  | K_confirmation -> "confirmation"
  | K_checkpoint_vote -> "checkpoint-vote"
  | K_checkpoint_cert -> "checkpoint-cert"
  | K_timeout -> "timeout"
  | K_view_change -> "view-change"
  | K_new_view -> "new-view"
  | K_fetch -> "fetch"
  | K_fetch_reply -> "fetch-reply"

let all_kinds =
  [ K_datablock; K_propose; K_prepare_vote; K_notarization; K_commit_vote;
    K_confirmation; K_checkpoint_vote; K_checkpoint_cert; K_timeout;
    K_view_change; K_new_view; K_fetch; K_fetch_reply ]

let kind_of_name name = List.find_opt (fun k -> kind_name k = name) all_kinds

let num_kinds = List.length all_kinds

(* Dense index into per-kind counter arrays (transport drop accounting);
   follows the [all_kinds] order. *)
let kind_index = function
  | K_datablock -> 0
  | K_propose -> 1
  | K_prepare_vote -> 2
  | K_notarization -> 3
  | K_commit_vote -> 4
  | K_confirmation -> 5
  | K_checkpoint_vote -> 6
  | K_checkpoint_cert -> 7
  | K_timeout -> 8
  | K_view_change -> 9
  | K_new_view -> 10
  | K_fetch -> 11
  | K_fetch_reply -> 12

(* Channel class by kind alone — must agree with [priority] below, which
   the byte-identical sim plane keeps using; the transport's kind-aware
   drop policy classifies already-encoded frames with this. *)
let kind_priority = function
  | K_datablock | K_fetch_reply -> Net.Nic.Low
  | K_propose | K_prepare_vote | K_notarization | K_commit_vote | K_confirmation
  | K_checkpoint_vote | K_checkpoint_cert | K_timeout | K_view_change | K_new_view
  | K_fetch ->
    Net.Nic.High

let category = function
  | Datablock_msg _ | Fetch_reply _ -> "datablock"
  | Propose _ -> "proposal"
  | Prepare_vote _ | Commit_vote _ | Checkpoint_vote _ -> "vote"
  | Notarization _ | Confirmation _ | Checkpoint_cert_msg _ -> "proof"
  | Timeout _ | View_change_msg _ | New_view_msg _ -> "viewchange"
  | Fetch _ -> "fetch"

let priority = function
  | Datablock_msg _ | Fetch_reply _ -> Net.Nic.Low
  | Propose _ | Prepare_vote _ | Notarization _ | Commit_vote _ | Confirmation _
  | Checkpoint_vote _ | Checkpoint_cert_msg _ | Timeout _ | View_change_msg _
  | New_view_msg _ | Fetch _ ->
    Net.Nic.High

let meta = Net.Network.{ size = wire_size; category; priority }

let pp fmt = function
  | Datablock_msg db -> Format.fprintf fmt "datablock %a" Datablock.pp db
  | Propose { block; _ } -> Format.fprintf fmt "propose %a" Bftblock.pp block
  | Prepare_vote { view; sn; _ } -> Format.fprintf fmt "prepare-vote v%d sn%d" view sn
  | Notarization { view; sn; _ } -> Format.fprintf fmt "notarization v%d sn%d" view sn
  | Commit_vote { view; sn; _ } -> Format.fprintf fmt "commit-vote v%d sn%d" view sn
  | Confirmation { view; sn; _ } -> Format.fprintf fmt "confirmation v%d sn%d" view sn
  | Checkpoint_vote { cp_sn; _ } -> Format.fprintf fmt "checkpoint-vote sn%d" cp_sn
  | Checkpoint_cert_msg { cp_sn; _ } -> Format.fprintf fmt "checkpoint-cert sn%d" cp_sn
  | Timeout { view; sender; _ } ->
    Format.fprintf fmt "timeout v%d from %a" view Net.Node_id.pp sender
  | View_change_msg vc ->
    Format.fprintf fmt "view-change to v%d from %a (%d entries)" vc.vc_new_view Net.Node_id.pp
      vc.vc_sender (List.length vc.vc_entries)
  | New_view_msg nv -> Format.fprintf fmt "new-view v%d (%d vcs)" nv.nv_view (List.length nv.nv_vcs)
  | Fetch { hash } -> Format.fprintf fmt "fetch %a" Crypto.Hash.pp hash
  | Fetch_reply db -> Format.fprintf fmt "fetch-reply %a" Datablock.pp db
