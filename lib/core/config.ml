open Sim

type t = {
  n : int;
  f : int;
  alpha : int;
  bft_size : int;
  k : int;
  checkpoint_interval : int;
  payload : int;
  s : int;
  datablock_timeout : Sim_time.span;
  proposal_timeout : Sim_time.span;
  view_timeout : Sim_time.span;
  fetch_grace : Sim_time.span;
  cost : Crypto.Cost_model.t;
  cores : int;
  verify_shares_eagerly : bool;
  priority_channels : bool;
  leader_generates_datablocks : bool;
  punish_equivocators : bool;
  mempool_cap : int;
  mempool_max_age : Sim_time.span;
  pace_on_pressure : bool;
}

let paper_batch_sizes ~n =
  if n <= 64 then (2000, 100)
  else if n <= 128 then (3000, 300)
  else if n <= 256 then (4000, 300)
  else (4000, 400)

let make ~n ?alpha ?bft_size ?(k = 32) ?checkpoint_interval ?(payload = 128) ?(s = 1)
    ?(datablock_timeout = 0L) ?(proposal_timeout = 0L)
    ?(view_timeout = Sim_time.s 4) ?(fetch_grace = Sim_time.s 1)
    ?(cost = Crypto.Cost_model.paper) ?(cores = 4)
    ?(verify_shares_eagerly = false) ?(priority_channels = true)
    ?(leader_generates_datablocks = false) ?(punish_equivocators = false)
    ?(mempool_cap = 0) ?(mempool_max_age = 0L) ?(pace_on_pressure = false) () =
  if n < 4 then invalid_arg "Config.make: n must be at least 4";
  if mempool_cap < 0 then invalid_arg "Config.make: mempool_cap must be >= 0";
  if Int64.compare mempool_max_age 0L < 0 then
    invalid_arg "Config.make: mempool_max_age must be >= 0";
  let default_alpha, default_bft = paper_batch_sizes ~n in
  let alpha = Option.value alpha ~default:default_alpha in
  let bft_size = Option.value bft_size ~default:default_bft in
  if alpha < 1 then invalid_arg "Config.make: alpha must be positive";
  if bft_size < 1 then invalid_arg "Config.make: bft_size must be positive";
  if k < 2 then invalid_arg "Config.make: k must be at least 2";
  let checkpoint_interval = Option.value checkpoint_interval ~default:(k / 2) in
  if checkpoint_interval < 1 || checkpoint_interval > k then
    invalid_arg "Config.make: checkpoint interval must be in [1, k]";
  { n;
    f = (n - 1) / 3;
    alpha;
    bft_size;
    k;
    checkpoint_interval;
    payload;
    s;
    datablock_timeout;
    proposal_timeout;
    view_timeout;
    fetch_grace;
    cost;
    cores;
    verify_shares_eagerly;
    priority_channels;
    leader_generates_datablocks;
    punish_equivocators;
    mempool_cap;
    mempool_max_age;
    pace_on_pressure }

let quorum t = (2 * t.f) + 1
let max_faulty t = t.f
let leader_of_view t v = v mod t.n
let requests_per_bftblock t = t.alpha * t.bft_size

let pp fmt t =
  Format.fprintf fmt "n=%d f=%d alpha=%d bft_size=%d k=%d payload=%dB s=%d" t.n t.f t.alpha
    t.bft_size t.k t.payload t.s
