(* Wire format: little-endian fixed-width integers, u32-length-prefixed
   byte strings, u32-count-prefixed lists, one u8 tag per variant.

   Hot-path notes: the reader decodes fixed-width integers in place with
   [String.get_int32_le]/[String.get_int64_le] (no [String.sub] per
   field), and the writer uses [Buffer.add_int32_le]/[add_int64_le].
   Validation is explicit — [Encode_error]/[Decode_error] — rather than
   [assert]-based, so it survives [-noassert] and [guard] need not catch
   [Assert_failure]. *)

exception Encode_error of string
exception Decode_error

let max_u32 = 0xFFFFFFFF

module W = struct
  let create () = Buffer.create 256
  let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let u32 b v =
    if v < 0 || v > max_u32 then raise (Encode_error "u32 out of range");
    Buffer.add_int32_le b (Int32.of_int v)

  let i64 b (v : int64) = Buffer.add_int64_le b v

  let str b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let bool b v = u8 b (if v then 1 else 0)

  let list b f xs =
    u32 b (List.length xs);
    List.iter (f b) xs
end

module R = struct
  (* [limit] bounds the readable region so a decoder can run over a slice
     of a larger buffer (the transport's frame reader) without a
     [String.sub] of the payload first. *)
  type reader = { src : string; mutable pos : int; limit : int }

  let create src = { src; pos = 0; limit = String.length src }

  let create_sub src ~off ~len =
    if off < 0 || len < 0 || off + len > String.length src then raise Decode_error;
    { src; pos = off; limit = off + len }

  let take r n =
    if n < 0 || r.pos + n > r.limit then raise Decode_error;
    let s = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    s

  let u8 r =
    let p = r.pos in
    if p >= r.limit then raise Decode_error;
    r.pos <- p + 1;
    Char.code (String.unsafe_get r.src p)

  let u32 r =
    let p = r.pos in
    if p + 4 > r.limit then raise Decode_error;
    r.pos <- p + 4;
    Int32.to_int (String.get_int32_le r.src p) land max_u32

  let i64 r =
    let p = r.pos in
    if p + 8 > r.limit then raise Decode_error;
    r.pos <- p + 8;
    String.get_int64_le r.src p

  let str r =
    let n = u32 r in
    take r n

  let bool r = u8 r <> 0

  let list r f =
    let n = u32 r in
    List.init n (fun _ -> f r)

  let at_end r = r.pos = r.limit
end

let guard f s =
  let r = R.create s in
  match f r with
  | v -> if R.at_end r then Some v else None
  | exception Decode_error -> None

let guard_sub f s ~off ~len =
  match R.create_sub s ~off ~len with
  | r -> (
    match f r with
    | v -> if R.at_end r then Some v else None
    | exception Decode_error -> None)
  | exception Decode_error -> None

(* -- leaves ------------------------------------------------------------ *)

let w_hash b h = W.str b (Crypto.Hash.raw h)

let r_hash r =
  let s = R.str r in
  if String.length s <> Crypto.Hash.size_bytes then raise Decode_error;
  Crypto.Hash.of_raw s

let w_signature b s = W.str b (Crypto.Signature.to_raw s)

let r_signature r =
  let s = R.str r in
  if String.length s <> 32 then raise Decode_error;
  Crypto.Signature.of_raw s

let w_share b s =
  let index, value = Crypto.Threshold.share_raw s in
  W.u32 b index;
  W.u32 b value

let r_share r =
  let index = R.u32 r in
  let value = R.u32 r in
  Crypto.Threshold.share_of_raw ~index ~value

let w_aggregate b a = W.u32 b (Crypto.Threshold.aggregate_raw a)
let r_aggregate r = Crypto.Threshold.aggregate_of_raw (R.u32 r)

let w_batch b (x : Workload.Request.t) =
  W.u32 b x.Workload.Request.id;
  W.u32 b x.Workload.Request.count;
  W.u32 b x.Workload.Request.size_each;
  W.i64 b x.Workload.Request.born;
  W.bool b x.Workload.Request.resend

let r_batch r =
  let id = R.u32 r in
  let count = R.u32 r in
  let size_each = R.u32 r in
  let born = R.i64 r in
  let resend = R.bool r in
  (* [Request.make]'s precondition, checked explicitly so malformed input
     yields [None] rather than tripping an assert. *)
  if count < 1 then raise Decode_error;
  Workload.Request.make ~id ~count ~size_each ~born ~resend ()

let w_datablock b (db : Datablock.t) =
  W.u32 b db.Datablock.header.creator;
  W.u32 b db.Datablock.header.counter;
  w_hash b db.Datablock.header.digest;
  W.i64 b db.Datablock.created_at;
  w_signature b db.Datablock.signature;
  W.list b w_batch db.Datablock.batches

let r_datablock r =
  let creator = R.u32 r in
  let counter = R.u32 r in
  let digest = r_hash r in
  let created_at = R.i64 r in
  let signature = r_signature r in
  let batches = R.list r r_batch in
  if batches = [] then raise Decode_error;
  Datablock.of_wire ~creator ~counter ~digest ~created_at ~signature batches

let w_bftblock b (blk : Bftblock.t) =
  W.u32 b blk.Bftblock.view;
  W.u32 b blk.Bftblock.sn;
  W.bool b blk.Bftblock.dummy;
  W.list b w_hash blk.Bftblock.links

let r_bftblock r =
  let view = R.u32 r in
  let sn = R.u32 r in
  let dummy = R.bool r in
  let links = R.list r r_hash in
  if dummy then begin
    if links <> [] then raise Decode_error;
    Bftblock.dummy ~view ~sn
  end
  else Bftblock.create ~view ~sn ~links

let w_cert b (c : Msg.checkpoint_cert) =
  W.u32 b c.Msg.cp_sn;
  w_hash b c.Msg.cp_state;
  w_aggregate b c.Msg.cp_proof

let r_cert r =
  let cp_sn = R.u32 r in
  let cp_state = r_hash r in
  let cp_proof = r_aggregate r in
  Msg.{ cp_sn; cp_state; cp_proof }

let w_entry b (v, blk, proof) =
  W.u32 b v;
  w_bftblock b blk;
  w_aggregate b proof

let r_entry r =
  let v = R.u32 r in
  let blk = r_bftblock r in
  let proof = r_aggregate r in
  (v, blk, proof)

let w_view_change b (vc : Msg.view_change) =
  W.u32 b vc.Msg.vc_new_view;
  W.u32 b vc.Msg.vc_sender;
  (match vc.Msg.vc_checkpoint with
   | Some c ->
     W.bool b true;
     w_cert b c
   | None -> W.bool b false);
  W.list b w_entry vc.Msg.vc_entries;
  w_signature b vc.Msg.vc_signature

let r_view_change r =
  let vc_new_view = R.u32 r in
  let vc_sender = R.u32 r in
  let vc_checkpoint = if R.bool r then Some (r_cert r) else None in
  let vc_entries = R.list r r_entry in
  let vc_signature = r_signature r in
  Msg.{ vc_new_view; vc_sender; vc_checkpoint; vc_entries; vc_signature }

(* -- messages ----------------------------------------------------------- *)

let w_msg b (m : Msg.t) =
  match m with
  | Msg.Datablock_msg db ->
    W.u8 b 0;
    w_datablock b db
  | Msg.Propose { block; leader_share; justification } ->
    W.u8 b 1;
    w_bftblock b block;
    w_share b leader_share;
    (match justification with
     | Some (v, proof) ->
       W.bool b true;
       W.u32 b v;
       w_aggregate b proof
     | None -> W.bool b false)
  | Msg.Prepare_vote { view; sn; block_hash; share } ->
    W.u8 b 2;
    W.u32 b view;
    W.u32 b sn;
    w_hash b block_hash;
    w_share b share
  | Msg.Notarization { view; sn; block_hash; proof } ->
    W.u8 b 3;
    W.u32 b view;
    W.u32 b sn;
    w_hash b block_hash;
    w_aggregate b proof
  | Msg.Commit_vote { view; sn; notar_digest; share } ->
    W.u8 b 4;
    W.u32 b view;
    W.u32 b sn;
    w_hash b notar_digest;
    w_share b share
  | Msg.Confirmation { view; sn; notar_digest; proof } ->
    W.u8 b 5;
    W.u32 b view;
    W.u32 b sn;
    w_hash b notar_digest;
    w_aggregate b proof
  | Msg.Checkpoint_vote { cp_sn; cp_state; share } ->
    W.u8 b 6;
    W.u32 b cp_sn;
    w_hash b cp_state;
    w_share b share
  | Msg.Checkpoint_cert_msg cert ->
    W.u8 b 7;
    w_cert b cert
  | Msg.Timeout { view; sender; signature } ->
    W.u8 b 8;
    W.u32 b view;
    W.u32 b sender;
    w_signature b signature
  | Msg.View_change_msg vc ->
    W.u8 b 9;
    w_view_change b vc
  | Msg.New_view_msg nv ->
    W.u8 b 10;
    W.u32 b nv.Msg.nv_view;
    W.u32 b nv.Msg.nv_sender;
    W.list b w_view_change nv.Msg.nv_vcs;
    w_signature b nv.Msg.nv_signature
  | Msg.Fetch { hash } ->
    W.u8 b 11;
    w_hash b hash
  | Msg.Fetch_reply db ->
    W.u8 b 12;
    w_datablock b db

let r_msg r : Msg.t =
  match R.u8 r with
  | 0 -> Msg.Datablock_msg (r_datablock r)
  | 1 ->
    let block = r_bftblock r in
    let leader_share = r_share r in
    let justification =
      if R.bool r then begin
        let v = R.u32 r in
        let proof = r_aggregate r in
        Some (v, proof)
      end
      else None
    in
    Msg.Propose { block; leader_share; justification }
  | 2 ->
    let view = R.u32 r in
    let sn = R.u32 r in
    let block_hash = r_hash r in
    let share = r_share r in
    Msg.Prepare_vote { view; sn; block_hash; share }
  | 3 ->
    let view = R.u32 r in
    let sn = R.u32 r in
    let block_hash = r_hash r in
    let proof = r_aggregate r in
    Msg.Notarization { view; sn; block_hash; proof }
  | 4 ->
    let view = R.u32 r in
    let sn = R.u32 r in
    let notar_digest = r_hash r in
    let share = r_share r in
    Msg.Commit_vote { view; sn; notar_digest; share }
  | 5 ->
    let view = R.u32 r in
    let sn = R.u32 r in
    let notar_digest = r_hash r in
    let proof = r_aggregate r in
    Msg.Confirmation { view; sn; notar_digest; proof }
  | 6 ->
    let cp_sn = R.u32 r in
    let cp_state = r_hash r in
    let share = r_share r in
    Msg.Checkpoint_vote { cp_sn; cp_state; share }
  | 7 -> Msg.Checkpoint_cert_msg (r_cert r)
  | 8 ->
    let view = R.u32 r in
    let sender = R.u32 r in
    let signature = r_signature r in
    Msg.Timeout { view; sender; signature }
  | 9 -> Msg.View_change_msg (r_view_change r)
  | 10 ->
    let nv_view = R.u32 r in
    let nv_sender = R.u32 r in
    let nv_vcs = R.list r r_view_change in
    let nv_signature = r_signature r in
    Msg.New_view_msg Msg.{ nv_view; nv_sender; nv_vcs; nv_signature }
  | 11 -> Msg.Fetch { hash = r_hash r }
  | 12 -> Msg.Fetch_reply (r_datablock r)
  | _ -> raise Decode_error

(* -- durable-store records and snapshots --------------------------------- *)

let w_option f b = function
  | None -> W.bool b false
  | Some v ->
    W.bool b true;
    f b v

let r_option f r = if R.bool r then Some (f r) else None

let w_record b (x : Store.record) =
  match x with
  | Store.Logged_msg m ->
    W.u8 b 0;
    w_msg b m
  | Store.Confirmed_block blk ->
    W.u8 b 1;
    w_bftblock b blk
  | Store.Entered_view v ->
    W.u8 b 2;
    W.u32 b v
  | Store.Db_counter c ->
    W.u8 b 3;
    W.u32 b c

let r_record r : Store.record =
  match R.u8 r with
  | 0 -> Store.Logged_msg (r_msg r)
  | 1 -> Store.Confirmed_block (r_bftblock r)
  | 2 -> Store.Entered_view (R.u32 r)
  | 3 -> Store.Db_counter (R.u32 r)
  | _ -> raise Decode_error

let w_inst_snap b (i : Store.inst_snap) =
  W.u32 b i.Store.s_sn;
  W.u32 b i.Store.s_iview;
  w_option w_bftblock b i.Store.s_block;
  W.bool b i.Store.s_voted_prepare;
  w_option w_hash b i.Store.s_voted_hash;
  W.bool b i.Store.s_voted_commit;
  W.u32 b i.Store.s_notarized_view;
  w_option w_aggregate b i.Store.s_notarization

let r_inst_snap r : Store.inst_snap =
  let s_sn = R.u32 r in
  let s_iview = R.u32 r in
  let s_block = r_option r_bftblock r in
  let s_voted_prepare = R.bool r in
  let s_voted_hash = r_option r_hash r in
  let s_voted_commit = R.bool r in
  let s_notarized_view = R.u32 r in
  let s_notarization = r_option r_aggregate r in
  Store.
    { s_sn;
      s_iview;
      s_block;
      s_voted_prepare;
      s_voted_hash;
      s_voted_commit;
      s_notarized_view;
      s_notarization }

let w_snapshot b (s : Store.snapshot) =
  W.u32 b s.Store.snap_view;
  W.u32 b s.Store.snap_lw;
  W.u32 b s.Store.snap_next_sn;
  W.u32 b s.Store.snap_db_counter;
  w_hash b s.Store.snap_state_hash;
  W.u32 b s.Store.snap_executed_up_to;
  w_option w_cert b s.Store.snap_checkpoint;
  W.list b w_bftblock s.Store.snap_blocks;
  W.list b
    (fun b (h, sn) ->
      w_hash b h;
      W.u32 b sn)
    s.Store.snap_executed_links;
  W.list b w_inst_snap s.Store.snap_instances;
  W.list b
    (fun b (db, linked) ->
      w_datablock b db;
      W.bool b linked)
    s.Store.snap_datablocks

let r_snapshot r : Store.snapshot =
  let snap_view = R.u32 r in
  let snap_lw = R.u32 r in
  let snap_next_sn = R.u32 r in
  let snap_db_counter = R.u32 r in
  let snap_state_hash = r_hash r in
  let snap_executed_up_to = R.u32 r in
  let snap_checkpoint = r_option r_cert r in
  let snap_blocks = R.list r r_bftblock in
  let snap_executed_links =
    R.list r (fun r ->
        let h = r_hash r in
        let sn = R.u32 r in
        (h, sn))
  in
  let snap_instances = R.list r r_inst_snap in
  let snap_datablocks =
    R.list r (fun r ->
        let db = r_datablock r in
        let linked = R.bool r in
        (db, linked))
  in
  Store.
    { snap_view;
      snap_lw;
      snap_next_sn;
      snap_db_counter;
      snap_state_hash;
      snap_executed_up_to;
      snap_checkpoint;
      snap_blocks;
      snap_executed_links;
      snap_instances;
      snap_datablocks }

(* -- public API ---------------------------------------------------------- *)

let run_encoder f v =
  let b = W.create () in
  f b v;
  Buffer.contents b

let encode_batch = run_encoder w_batch
let decode_batch = guard r_batch
let encode_datablock = run_encoder w_datablock
let decode_datablock = guard r_datablock
let encode_bftblock = run_encoder w_bftblock
let decode_bftblock = guard r_bftblock
let encode_msg = run_encoder w_msg
let decode_msg = guard r_msg
let decode_msg_sub s ~off ~len = guard_sub r_msg s ~off ~len
let encode_record = run_encoder w_record
let decode_record = guard r_record
let encode_snapshot = run_encoder w_snapshot
let decode_snapshot = guard r_snapshot

(* -- structural equality -------------------------------------------------- *)

let batch_equal (a : Workload.Request.t) (b : Workload.Request.t) =
  a.Workload.Request.id = b.Workload.Request.id
  && a.Workload.Request.count = b.Workload.Request.count
  && a.Workload.Request.size_each = b.Workload.Request.size_each
  && Int64.equal a.Workload.Request.born b.Workload.Request.born
  && a.Workload.Request.resend = b.Workload.Request.resend

let datablock_equal (a : Datablock.t) (b : Datablock.t) =
  a.Datablock.header.creator = b.Datablock.header.creator
  && a.Datablock.header.counter = b.Datablock.header.counter
  && Crypto.Hash.equal a.Datablock.header.digest b.Datablock.header.digest
  && Int64.equal a.Datablock.created_at b.Datablock.created_at
  && Crypto.Signature.equal a.Datablock.signature b.Datablock.signature
  && List.length a.Datablock.batches = List.length b.Datablock.batches
  && List.for_all2 batch_equal a.Datablock.batches b.Datablock.batches

let cert_equal (a : Msg.checkpoint_cert) (b : Msg.checkpoint_cert) =
  a.Msg.cp_sn = b.Msg.cp_sn
  && Crypto.Hash.equal a.Msg.cp_state b.Msg.cp_state
  && Crypto.Threshold.aggregate_equal a.Msg.cp_proof b.Msg.cp_proof

let entry_equal (v1, b1, p1) (v2, b2, p2) =
  v1 = v2
  && b1.Bftblock.view = b2.Bftblock.view
  && Bftblock.equal_content b1 b2
  && Crypto.Threshold.aggregate_equal p1 p2

let view_change_equal (a : Msg.view_change) (b : Msg.view_change) =
  a.Msg.vc_new_view = b.Msg.vc_new_view
  && a.Msg.vc_sender = b.Msg.vc_sender
  && Option.equal cert_equal a.Msg.vc_checkpoint b.Msg.vc_checkpoint
  && List.length a.Msg.vc_entries = List.length b.Msg.vc_entries
  && List.for_all2 entry_equal a.Msg.vc_entries b.Msg.vc_entries
  && Crypto.Signature.equal a.Msg.vc_signature b.Msg.vc_signature

let msg_equal (a : Msg.t) (b : Msg.t) =
  match (a, b) with
  | Msg.Datablock_msg x, Msg.Datablock_msg y | Msg.Fetch_reply x, Msg.Fetch_reply y ->
    datablock_equal x y
  | Msg.Propose x, Msg.Propose y ->
    x.block.Bftblock.view = y.block.Bftblock.view
    && Bftblock.equal_content x.block y.block
    && Crypto.Threshold.share_equal x.leader_share y.leader_share
    && Option.equal
         (fun (v1, p1) (v2, p2) -> v1 = v2 && Crypto.Threshold.aggregate_equal p1 p2)
         x.justification y.justification
  | Msg.Prepare_vote x, Msg.Prepare_vote y ->
    x.view = y.view && x.sn = y.sn
    && Crypto.Hash.equal x.block_hash y.block_hash
    && Crypto.Threshold.share_equal x.share y.share
  | Msg.Notarization x, Msg.Notarization y ->
    x.view = y.view && x.sn = y.sn
    && Crypto.Hash.equal x.block_hash y.block_hash
    && Crypto.Threshold.aggregate_equal x.proof y.proof
  | Msg.Commit_vote x, Msg.Commit_vote y ->
    x.view = y.view && x.sn = y.sn
    && Crypto.Hash.equal x.notar_digest y.notar_digest
    && Crypto.Threshold.share_equal x.share y.share
  | Msg.Confirmation x, Msg.Confirmation y ->
    x.view = y.view && x.sn = y.sn
    && Crypto.Hash.equal x.notar_digest y.notar_digest
    && Crypto.Threshold.aggregate_equal x.proof y.proof
  | Msg.Checkpoint_vote x, Msg.Checkpoint_vote y ->
    x.cp_sn = y.cp_sn
    && Crypto.Hash.equal x.cp_state y.cp_state
    && Crypto.Threshold.share_equal x.share y.share
  | Msg.Checkpoint_cert_msg x, Msg.Checkpoint_cert_msg y -> cert_equal x y
  | Msg.Timeout x, Msg.Timeout y ->
    x.view = y.view && x.sender = y.sender && Crypto.Signature.equal x.signature y.signature
  | Msg.View_change_msg x, Msg.View_change_msg y -> view_change_equal x y
  | Msg.New_view_msg x, Msg.New_view_msg y ->
    x.Msg.nv_view = y.Msg.nv_view
    && x.Msg.nv_sender = y.Msg.nv_sender
    && List.length x.Msg.nv_vcs = List.length y.Msg.nv_vcs
    && List.for_all2 view_change_equal x.Msg.nv_vcs y.Msg.nv_vcs
    && Crypto.Signature.equal x.Msg.nv_signature y.Msg.nv_signature
  | Msg.Fetch x, Msg.Fetch y -> Crypto.Hash.equal x.hash y.hash
  | ( ( Msg.Datablock_msg _ | Msg.Propose _ | Msg.Prepare_vote _ | Msg.Notarization _
      | Msg.Commit_vote _ | Msg.Confirmation _ | Msg.Checkpoint_vote _
      | Msg.Checkpoint_cert_msg _ | Msg.Timeout _ | Msg.View_change_msg _ | Msg.New_view_msg _
      | Msg.Fetch _ | Msg.Fetch_reply _ ),
      _ ) ->
    false
