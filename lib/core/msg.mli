(** Leopard's wire messages, with sizes, categories and channel classes.

    The two-channel design of §6.1 is encoded in {!priority}: BFTblock
    agreement traffic travels on channel ① ([High]) and preempts queued
    datablocks on channel ② ([Low]), so agreement progress survives
    datablock congestion.

    Signing payload builders bind votes to (view, serial, content): the
    first voting round signs the BFTblock's content hash under the
    current view; the second round signs the digest of the notarization
    proof σ¹ (Algorithm 2, lines 18 and 29). *)

type checkpoint_cert = {
  cp_sn : int;
  cp_state : Crypto.Hash.t;       (** H(st): execution state digest *)
  cp_proof : Crypto.Threshold.aggregate;
}

type view_change = {
  vc_new_view : int;
  vc_sender : Net.Node_id.t;
  vc_checkpoint : checkpoint_cert option;  (** lc: latest stable checkpoint *)
  vc_entries : (int * Bftblock.t * Crypto.Threshold.aggregate) list;
      (** notarized BFTblocks above the checkpoint, each with the view
          in which it was notarized and its notarization proof *)
  vc_signature : Crypto.Signature.t;
}

type new_view = {
  nv_view : int;
  nv_sender : Net.Node_id.t;
  nv_vcs : view_change list;      (** V: 2f + 1 view-change messages *)
  nv_signature : Crypto.Signature.t;
}

type t =
  | Datablock_msg of Datablock.t
  | Propose of {
      block : Bftblock.t;
      leader_share : Crypto.Threshold.share;
      justification : (int * Crypto.Threshold.aggregate) option;
          (** on redo after a view change: (old view, notarization) *)
    }
  | Prepare_vote of {
      view : int;
      sn : int;
      block_hash : Crypto.Hash.t;
      share : Crypto.Threshold.share;
    }
  | Notarization of {
      view : int;
      sn : int;
      block_hash : Crypto.Hash.t;
      proof : Crypto.Threshold.aggregate;
    }
  | Commit_vote of {
      view : int;
      sn : int;
      notar_digest : Crypto.Hash.t;
      share : Crypto.Threshold.share;
    }
  | Confirmation of {
      view : int;
      sn : int;
      notar_digest : Crypto.Hash.t;
      proof : Crypto.Threshold.aggregate;
    }
  | Checkpoint_vote of { cp_sn : int; cp_state : Crypto.Hash.t; share : Crypto.Threshold.share }
  | Checkpoint_cert_msg of checkpoint_cert
  | Timeout of { view : int; sender : Net.Node_id.t; signature : Crypto.Signature.t }
  | View_change_msg of view_change
  | New_view_msg of new_view
  | Fetch of { hash : Crypto.Hash.t }
  | Fetch_reply of Datablock.t

(** {2 Signing payloads} *)

val prepare_payload : view:int -> block_hash:Crypto.Hash.t -> string
(** First-round vote message: binds the view and the block content. *)

val notar_digest : Crypto.Threshold.aggregate -> Crypto.Hash.t
(** H(σ¹). *)

val commit_payload : view:int -> notar_digest:Crypto.Hash.t -> string
(** Second-round vote message. *)

val checkpoint_payload : cp_sn:int -> cp_state:Crypto.Hash.t -> string
val timeout_payload : view:int -> string
val view_change_payload : view_change -> string
val new_view_payload : new_view -> string

(** {2 Message kinds}

    A first-class enumeration of the constructors, for code that filters
    messages without inspecting payloads (the fault injector's
    drop/delay/duplicate rules select by kind). *)

type kind =
  | K_datablock
  | K_propose
  | K_prepare_vote
  | K_notarization
  | K_commit_vote
  | K_confirmation
  | K_checkpoint_vote
  | K_checkpoint_cert
  | K_timeout
  | K_view_change
  | K_new_view
  | K_fetch
  | K_fetch_reply

val kind : t -> kind

val kind_name : kind -> string
(** Stable lowercase name (["prepare-vote"], ["new-view"], …), used in
    traces and the chaos CLI. *)

val kind_of_name : string -> kind option
val all_kinds : kind list

val num_kinds : int
(** [List.length all_kinds]. *)

val kind_index : kind -> int
(** Dense index in [0, num_kinds) following the {!all_kinds} order, for
    per-kind counter arrays. *)

val kind_priority : kind -> Net.Nic.priority
(** Channel class by kind alone: [Low] for bulk data
    ([K_datablock], [K_fetch_reply]), [High] for everything
    consensus-critical. Agrees with {!priority} on every message. *)

(** {2 Network metadata} *)

val wire_size : t -> int
val category : t -> string
val priority : t -> Net.Nic.priority
val meta : t Net.Network.meta

val pp : Format.formatter -> t -> unit
(** One-line tag, for traces. *)
