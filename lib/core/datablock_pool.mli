(** The datablock pool (Fig. 4): verified datablocks awaiting linkage.

    Indexed by hash for BFTblock link resolution and by (creator,
    counter) for the duplicate/equivocation check of Algorithm 1 line 18.
    The leader additionally tracks which datablocks are not yet linked by
    any proposed BFTblock ("pending"). *)

type t

type verdict =
  | Accepted
  | Duplicate              (** same (creator, counter, hash) seen before *)
  | Equivocation of Datablock.t
      (** a *different* datablock with the same (creator, counter) was
          already received — the payload is the earlier one, usable as
          punishable evidence (§4.3 remark). The new variant is stored
          (the leader's choice of variant must remain resolvable) but is
          never offered to this replica's proposal path. *)

val create : unit -> t

val add : t -> Datablock.t -> verdict
(** Files a (signature-verified) datablock. *)

val find : t -> Crypto.Hash.t -> Datablock.t option

val mem : t -> Crypto.Hash.t -> bool

val missing_links : t -> Crypto.Hash.t list -> Crypto.Hash.t list
(** The links not present in the pool (empty = BFTblock fully backed,
    Algorithm 2 line 16). *)

val has_all_links : t -> Crypto.Hash.t list -> bool
(** [missing_links t links = []] without allocating the missing list —
    the readiness probe runs once per waiting proposal on every datablock
    arrival, the hottest path in the replica at large n. *)

val pending : t -> int
(** Number of unlinked datablocks (leader's proposal trigger). *)

val take_pending : t -> max:int -> Datablock.t list
(** Removes up to [max] unlinked datablocks, oldest first, marking them
    linked. *)

val mark_linked : t -> Crypto.Hash.t -> unit
(** Marks a datablock linked (followers learn this from proposals, so
    after a view change they do not expect it re-linked). *)

val relink_pending :
  t -> keep_linked:Crypto.Hash.Set.t -> also_executed:(Crypto.Hash.t -> bool) -> unit
(** View-change recovery at the new leader: datablocks that were linked
    by proposals which never survived into the new view become pending
    again, so their requests are re-proposed instead of lost. Keeps
    linked those in [keep_linked] (redo and still-confirmed blocks) and
    those for which [also_executed] holds. *)

val fold : t -> init:'a -> f:('a -> Datablock.t -> linked:bool -> 'a) -> 'a
(** Folds over every stored datablock with its linked flag, in
    unspecified order (snapshot building; sort by (creator, counter) for
    a deterministic serialization). *)

val equivocations : t -> (Net.Node_id.t * Datablock.t * Datablock.t) list
(** Collected equivocation evidence: (creator, first, second). *)

val size : t -> int
(** Stored datablocks. *)

val prune : t -> keep:(Datablock.t -> bool) -> unit
(** Garbage collection after a checkpoint. *)
