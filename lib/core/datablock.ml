type header = {
  creator : Net.Node_id.t;
  counter : int;
  digest : Crypto.Hash.t;
}

type verify_memo = Unverified | Valid | Invalid

type t = {
  header : header;
  batches : Workload.Request.t list;
  req_count : int;
  payload_bytes : int;
  signature : Crypto.Signature.t;
  created_at : Sim.Sim_time.t;
  (* memoized on first use, not at construction: the decode path
     ([Codec.decode_datablock] -> [of_wire]) is pure parsing, and a
     receiver that drops or dedups a datablock never pays for digests it
     did not need. [verify]/[hash] force and cache them, so each value
     still computes its Merkle digest at most once; the simulated CPU
     cost is charged separately via the cost model either way. *)
  mutable true_digest : Crypto.Hash.t option;
  wire_bytes : int;
  mutable hash_memo : Crypto.Hash.t option;
  mutable header_enc : string; (* "" = not yet encoded *)
  (* the signature + digest check is a pure function of the (immutable)
     datablock, and every replica holds the same key set, so the first
     receiver's verdict is memoized for the other n-2. Atomic because
     Exec.Pool verifies datablocks from several domains at once: the
     verdict is CAS-published so it can transition Unverified -> Valid or
     Unverified -> Invalid exactly once and never flip or tear. The other
     memo fields ([true_digest], [hash_memo], [header_enc]) stay plain
     mutable: racing writers compute identical immutable values, which the
     OCaml memory model publishes safely (no tearing), so any read sees
     either "absent" or the correct value. *)
  verify_memo : verify_memo Atomic.t;
}

let header_overhead_bytes = 48 (* creator + counter + digest *)

let digest_of_batches batches = Crypto.Merkle.root (List.map Workload.Request.hash batches)

let header_encoding h =
  Printf.sprintf "dbhdr:%d:%d:%s" h.creator h.counter (Crypto.Hash.raw h.digest)

let of_wire ~creator ~counter ~digest ~created_at ~signature batches =
  (* Typed error, not an assert: this constructor sits behind the wire
     decode path, and a malformed frame must never be able to kill the
     process. [Codec.r_datablock] rejects empty batch lists before
     calling here, so over the wire this raise is unreachable; direct
     callers get a catchable [Invalid_argument]. *)
  if batches = [] then invalid_arg "Datablock.of_wire: empty batch list";
  let header = { creator; counter; digest } in
  { header;
    batches;
    req_count = List.fold_left (fun acc b -> acc + b.Workload.Request.count) 0 batches;
    payload_bytes = List.fold_left (fun acc b -> acc + Workload.Request.payload_bytes b) 0 batches;
    signature;
    created_at;
    true_digest = None;
    wire_bytes =
      header_overhead_bytes + Crypto.Signature.size_bytes
      + List.fold_left (fun acc b -> acc + Workload.Request.wire_bytes b) 0 batches;
    hash_memo = None;
    header_enc = "";
    verify_memo = Atomic.make Unverified }

let forced_header_enc t =
  if String.length t.header_enc = 0 then t.header_enc <- header_encoding t.header;
  t.header_enc

let forced_true_digest t =
  match t.true_digest with
  | Some d -> d
  | None ->
    let d = digest_of_batches t.batches in
    t.true_digest <- Some d;
    d

let make_with_digest ~sk ~creator ~counter ~now ~digest batches =
  let header = { creator; counter; digest } in
  of_wire ~creator ~counter ~digest ~created_at:now
    ~signature:(Crypto.Signature.sign sk (header_encoding header))
    batches

let create ~sk ~creator ~counter ~now batches =
  if batches = [] then invalid_arg "Datablock.create: empty batch list";
  make_with_digest ~sk ~creator ~counter ~now ~digest:(digest_of_batches batches) batches

let forge_with_bad_digest ~sk ~creator ~counter ~now batches =
  if batches = [] then invalid_arg "Datablock.forge_with_bad_digest: empty batch list";
  make_with_digest ~sk ~creator ~counter ~now
    ~digest:(Crypto.Hash.of_string "bogus digest") batches

let tamper t =
  let batches =
    match t.batches with
    | b :: rest ->
      Workload.Request.make ~id:(b.Workload.Request.id + 0x2000000) ~count:b.count
        ~size_each:b.size_each ~born:b.born ()
      :: rest
    | [] -> invalid_arg "Datablock.tamper: datablock has no batches"
  in
  of_wire ~creator:t.header.creator ~counter:t.header.counter ~digest:t.header.digest
    ~created_at:t.created_at ~signature:t.signature batches

let verify ~pks t =
  match Atomic.get t.verify_memo with
  | Valid -> true
  | Invalid -> false
  | Unverified ->
    let h = t.header in
    let ok =
      h.creator >= 0
      && h.creator < Array.length pks
      && Crypto.Hash.equal h.digest (forced_true_digest t)
      && Crypto.Signature.verify pks.(h.creator) t.signature (forced_header_enc t)
    in
    (* first verdict wins; a concurrent verifier computed the same one *)
    ignore
      (Atomic.compare_and_set t.verify_memo Unverified (if ok then Valid else Invalid));
    ok

let hash t =
  match t.hash_memo with
  | Some h -> h
  | None ->
    let h = Crypto.Hash.of_string (forced_header_enc t) in
    t.hash_memo <- Some h;
    h
let wire_size t = t.wire_bytes

let pp fmt t =
  Format.fprintf fmt "datablock(%a#%d, %d reqs, %a)" Net.Node_id.pp t.header.creator
    t.header.counter t.req_count Crypto.Hash.pp t.header.digest
