type job =
  | Datablock_check of {
      pks : Crypto.Signature.public_key array;
      db : Datablock.t;
    }
  | Aggregate_check of {
      setup : Crypto.Threshold.setup;
      agg : Crypto.Threshold.aggregate;
      msg : string;
    }
  | Share_check of {
      setup : Crypto.Threshold.setup;
      share : Crypto.Threshold.share;
      msg : string;
    }
  | All of job list

type dispatch = job -> (bool -> unit) -> unit

let run_leaf = function
  | Datablock_check { pks; db } -> Datablock.verify ~pks db
  | Aggregate_check { setup; agg; msg } -> Crypto.Threshold.verify setup agg msg
  | Share_check { setup; share; msg } -> Crypto.Threshold.verify_share setup share msg
  | All _ -> assert false

(* Flatten nested [All]s into submission order. *)
let rec leaves acc = function
  | All js -> List.fold_left leaves acc js
  | leaf -> leaf :: acc

let leaves_of job = List.rev (leaves [] job)

let run job =
  match job with
  | All _ ->
      (* every leaf runs — a failed check must not stop later leaves from
         warming their memos for the caller's inline re-verification *)
      List.fold_left (fun acc l -> run_leaf l && acc) true (leaves_of job)
  | leaf -> run_leaf leaf

let inline : dispatch = fun job k -> k (run job)

let blocking pool : dispatch =
 fun job k ->
  match leaves_of job with
  | [] -> k true
  | [ l ] -> k (Exec.Pool.await (Exec.Pool.submit pool (fun () -> run_leaf l)))
  | ls ->
      let futs = Exec.Pool.submit_batch pool (List.map (fun l () -> run_leaf l) ls) in
      (* bind each await before conjoining: no await may be skipped *)
      k (List.fold_left (fun acc f -> Exec.Pool.await f && acc) true futs)

let pooled pool : dispatch =
 fun job k ->
  match leaves_of job with
  | [] -> Exec.Pool.async_all pool [] (fun _ -> k true)
  | [ l ] -> Exec.Pool.async pool (fun () -> run_leaf l) k
  | ls ->
      Exec.Pool.async_all pool
        (List.map (fun l () -> run_leaf l) ls)
        (fun oks -> k (List.for_all Fun.id oks))
