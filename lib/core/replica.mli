(** The Leopard replica state machine (§4).

    One value of {!t} per replica, driven entirely by network deliveries,
    client submissions and timers on its {!Platform} — the discrete-event
    simulator for protocol studies, or the real-socket transport runtime
    for deployment (the machine is host-agnostic). It implements
    datablock preparation (Algorithm 1), the parallel normal-case
    agreement (Algorithm 2), checkpoints (Algorithm 3) and the
    view-change protocol, with CPU costs charged to the replica's
    {!Net.Cpu} according to the configured cost model.

    Byzantine strategies ({!Byzantine.t}) run the same machine with
    adversarial deviations. *)

type t

type hooks = {
  on_execute : id:Net.Node_id.t -> sn:int -> Bftblock.t -> Datablock.t list -> unit;
      (** fires when THIS replica executes a BFTblock (serially, in
          serial-number order); the runner derives throughput, latency
          and client acknowledgments from it *)
  on_view_change : id:Net.Node_id.t -> view:int -> unit;
      (** fires when the replica enters a new view *)
  on_view_change_trigger : id:Net.Node_id.t -> abandoned:int -> unit;
      (** fires when the replica gives up on a view and sends its
          view-change message (the instant §6.2.4 measures from) *)
  on_propose : id:Net.Node_id.t -> sn:int -> at:Sim.Sim_time.t -> unit;
      (** fires when the replica (as leader) multicasts a proposal; the
          runner uses it for the agreement-stage latency breakdown *)
  on_checkpoint : id:Net.Node_id.t -> lw:int -> unit;
      (** fires when a checkpoint certificate advances THIS replica's low
          watermark to [lw] (every serial [<= lw] is durably agreed by a
          quorum); the runner prunes its per-serial bookkeeping on it *)
}

val no_hooks : hooks

val create :
  platform:Platform.t ->
  cfg:Config.t ->
  id:Net.Node_id.t ->
  sk:Crypto.Signature.private_key ->
  pks:Crypto.Signature.public_key array ->
  tsetup:Crypto.Threshold.setup ->
  tkey:Crypto.Threshold.member_key ->
  ?obs:Obs.Registry.t ->
  ?strategy:Byzantine.t ->
  ?hooks:hooks ->
  ?trace:Sim.Trace.t ->
  unit ->
  t
(** Builds the replica and registers its delivery handler on the
    platform. Views start at 1; the initial leader is
    [Config.leader_of_view cfg 1]. *)

val start : t -> unit
(** Starts the periodic datablock-packing timer (honest non-leaders). *)

(** {2 Crash-restart recovery}

    With a {!Store.sink} attached to the platform, the replica logs every
    binding emission (proposals, prepare/commit votes, notarization and
    checkpoint certificates, datablock counters, view entries) before
    sending it, and snapshots its pruned state at each checkpoint.
    {!recover} rebuilds an equivalent replica from that sink after a
    process restart; the BFT stable-storage assumption — a replica never
    votes differently for a serial it already voted on — holds as long as
    the sink was durable up to the crash. *)

val halt : t -> unit
(** Simulates the process dying: the replica stops acting and its
    transport goes down. The in-memory value is dead — build the
    replacement with {!recover} on a fresh platform (or on the same
    socket runtime, whose handler slot the replacement takes over). *)

val recover :
  platform:Platform.t ->
  cfg:Config.t ->
  id:Net.Node_id.t ->
  sk:Crypto.Signature.private_key ->
  pks:Crypto.Signature.public_key array ->
  tsetup:Crypto.Threshold.setup ->
  tkey:Crypto.Threshold.member_key ->
  ?obs:Obs.Registry.t ->
  ?strategy:Byzantine.t ->
  ?hooks:hooks ->
  ?trace:Sim.Trace.t ->
  unit ->
  t
(** {!create}, then restore state from the platform's store: load the
    latest snapshot, replay the log suffix, re-execute the confirmed
    prefix locally (without re-emitting client acks or firing hooks). The
    recovered replica re-sends only deterministic threshold shares —
    identical to the ones sent before the crash — so it can rejoin
    without ever equivocating. With {!Store.null} attached this is
    exactly [create]. *)

type reject_reason = Mempool.reject_reason = Mempool_full | Inactive
type admission = Mempool.admission = Admitted | Rejected of reject_reason

val submit : t -> Workload.Request.t -> admission
(** A client request batch has arrived (post ingress). Renders an
    explicit admission verdict: [Rejected Mempool_full] when the
    configured mempool capacity would be exceeded (clients should back
    off and retry), [Rejected Inactive] when the replica is crashed or
    silent, [Admitted] otherwise. With no capacity configured
    ([mempool_cap = 0]) an active replica always admits — the seed
    behaviour. Re-send-tagged admitted batches are watched: if
    unconfirmed after the view timeout, the replica votes to change the
    view (§4.3, view-change trigger). *)

(** {2 Introspection (tests, metrics, debugging)} *)

val id : t -> Net.Node_id.t
val view : t -> int
val is_leader : t -> bool
val low_watermark : t -> int
val ledger : t -> Ledger.t
val state_hash : t -> Crypto.Hash.t
val mempool_pending : t -> int

val submits_rejected : t -> int
(** Requests refused at mempool admission since this replica was built
    (mirrored to [leopard_replica_submit_rejected_total]). *)

val mempool_evictions : t -> int
(** Requests shed by age-based mempool eviction (mirrored to
    [leopard_replica_mempool_evicted_total]). *)

val pool : t -> Datablock_pool.t
val datablocks_created : t -> int
val in_view_change : t -> bool
val executed_payload_bytes : t -> int
(** Total request payload bytes this replica has executed. *)

val punished : t -> Net.Node_id.t list
(** Replicas this one has kicked out for equivocation (with
    [punish_equivocators] on). *)

val instance_debug : t -> int -> string
(** One-line description of the agreement instance at a serial number
    (for tests and debugging). *)

val notar_cache_cap : int
(** Capacity bound of the verified-notarization memo: when the cache
    holds this many (view, block-hash) verdicts it is cleared before the
    next insert, so a long-running (socket-runtime) replica cannot grow
    it without limit. Clearing is always safe — the memo caches a pure
    verification function — and deterministic across identical runs. *)

val notar_cache_len : t -> int
(** Current verified-notarization memo size (always [<= notar_cache_cap];
    introspection for the bound test). *)
