open Workload

type reject_reason = Mempool_full | Inactive

let reject_reason_name = function
  | Mempool_full -> "mempool_full"
  | Inactive -> "inactive"

type admission = Admitted | Rejected of reject_reason

type t = {
  queue : Request.t Queue.t;
  mutable pending : int; (* request count, including not-yet-skipped confirmed *)
  cap : int;             (* admission bound on [pending]; 0 = unbounded *)
  max_age : Sim.Sim_time.span; (* eviction age for unconfirmed batches; 0 = off *)
}

let create ?(cap = 0) ?(max_age = 0L) () =
  { queue = Queue.create (); pending = 0; cap; max_age }

let cap t = t.cap

let add t b =
  Queue.push b t.queue;
  t.pending <- t.pending + b.Request.count

let drop_confirmed_head t =
  let rec go () =
    match Queue.peek_opt t.queue with
    | Some b when Request.is_confirmed b ->
      ignore (Queue.pop t.queue);
      t.pending <- t.pending - b.Request.count;
      go ()
    | Some _ | None -> ()
  in
  go ()

let pending_requests t =
  drop_confirmed_head t;
  t.pending

let is_empty t = pending_requests t = 0

let try_add t b =
  if t.cap > 0 && pending_requests t + b.Request.count > t.cap then
    Rejected Mempool_full
  else begin
    add t b;
    Admitted
  end

let evict_expired t ~now =
  if Int64.compare t.max_age 0L <= 0 then 0
  else begin
    (* The queue is FIFO by birth, so expired batches form a prefix
       (up to interleaved confirmed batches, dropped for free). *)
    let evicted = ref 0 in
    let rec go () =
      drop_confirmed_head t;
      match Queue.peek_opt t.queue with
      | Some b
        when Sim.Sim_time.compare
               Sim.Sim_time.(now - b.Request.born)
               t.max_age >= 0 ->
        ignore (Queue.pop t.queue);
        t.pending <- t.pending - b.Request.count;
        evicted := !evicted + b.Request.count;
        go ()
      | Some _ | None -> ()
    in
    go ();
    !evicted
  end

let take t ~target =
  if target <= 0 then []
  else
    let rec go acc got =
      drop_confirmed_head t;
      if got >= target then List.rev acc
      else
        match Queue.peek_opt t.queue with
        | None -> List.rev acc
        | Some b ->
          (* Whole batches only: a confirmation flag belongs to exactly one
             datablock. Overshoot is bounded by one client batch, which is
             small next to a datablock. *)
          ignore (Queue.pop t.queue);
          t.pending <- t.pending - b.Request.count;
          go (b :: acc) (got + b.Request.count)
    in
    go [] 0

let has_at_least t target = pending_requests t >= target

let oldest_age t ~now =
  drop_confirmed_head t;
  match Queue.peek_opt t.queue with
  | None -> None
  | Some b -> Some (Sim.Sim_time.( - ) now b.Request.born)
