type t = {
  blocks : (int, Bftblock.t) Hashtbl.t;
  mutable executed : int;
  mutable confirmed_count : int;
  mutable highest : int;
}

let create () = { blocks = Hashtbl.create 64; executed = 0; confirmed_count = 0; highest = 0 }

let confirm t (b : Bftblock.t) =
  if not (Hashtbl.mem t.blocks b.sn) then begin
    Hashtbl.add t.blocks b.sn b;
    t.confirmed_count <- t.confirmed_count + 1;
    if b.sn > t.highest then t.highest <- b.sn
  end

let is_confirmed t sn = Hashtbl.mem t.blocks sn
let get t sn = Hashtbl.find_opt t.blocks sn
let executed_up_to t = t.executed
let next_executable t = Hashtbl.find_opt t.blocks (t.executed + 1)

let mark_executed t sn =
  assert (sn = t.executed + 1);
  t.executed <- sn

let fast_forward t sn = if sn > t.executed then t.executed <- sn

let confirmed_count t = t.confirmed_count
let highest_confirmed t = t.highest

let blocks t =
  Hashtbl.fold (fun _ b acc -> b :: acc) t.blocks []
  |> List.sort (fun (a : Bftblock.t) (b : Bftblock.t) -> compare a.sn b.sn)

let executed_range t ~from_ =
  let rec go sn acc =
    if sn > t.executed then List.rev acc
    else
      match Hashtbl.find_opt t.blocks sn with
      | Some b -> go (sn + 1) ((sn, b) :: acc)
      | None -> go (sn + 1) acc
  in
  go (from_ + 1) []

let prune_below t sn =
  let victims = Hashtbl.fold (fun k _ acc -> if k <= sn then k :: acc else acc) t.blocks [] in
  List.iter (Hashtbl.remove t.blocks) victims
