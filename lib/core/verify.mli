(** Verification dispatch: the seam that lets hot crypto checks run off
    the event loop.

    A {!job} names one of the three CPU-heavy checks a replica performs
    on received messages (datablock Merkle+signature, threshold
    aggregate, threshold share), or a batch of them. A {!dispatch}
    evaluates a job and hands the boolean verdict to a continuation.
    Three dispatchers cover the two planes:

    - {!inline} runs the job synchronously and calls the continuation on
      the spot — exactly the pre-pool code path. The sim plane's default:
      modeled costs are still charged by {!Platform.t}[.submit], and the
      event sequence is untouched.
    - {!blocking} ships the job to an {!Exec.Pool} and blocks for the
      result, then continues synchronously. Same completion point as
      {!inline} (so sim reports stay byte-identical for any pool size),
      but the crypto genuinely executes on worker domains — this is what
      the determinism-under-parallelism tests exercise.
    - {!pooled} ships the job and returns immediately; the continuation
      runs later, on the owner thread, when {!Exec.Pool.drain} is called
      (the TCP runtime drains from a loop tick + the pool's notify fd).
      Continuations must therefore re-check any replica state they
      captured — the world may have moved on while the crypto ran.

    All three deliver the same verdicts: jobs are pure functions of
    immutable values, and the memo fields they warm are domain-safe
    (see {!Datablock.t}, [Threshold]). A batch ({!All}) never
    short-circuits — every sub-job is evaluated so its memo is warm for
    later inline re-checks. *)

type job =
  | Datablock_check of {
      pks : Crypto.Signature.public_key array;
      db : Datablock.t;
    }
  | Aggregate_check of {
      setup : Crypto.Threshold.setup;
      agg : Crypto.Threshold.aggregate;
      msg : string;
    }
  | Share_check of {
      setup : Crypto.Threshold.setup;
      share : Crypto.Threshold.share;
      msg : string;
    }
  | All of job list  (** conjunction; [All []] is vacuously true *)

type dispatch = job -> (bool -> unit) -> unit

val run : job -> bool
(** Synchronous evaluation. [All] evaluates {e every} sub-job (no
    short-circuit) and returns their conjunction. *)

val inline : dispatch
(** [inline job k] is [k (run job)]. *)

val blocking : Exec.Pool.t -> dispatch
(** Parallel evaluation, synchronous completion: sub-jobs of an [All]
    run concurrently across the pool's domains; the caller blocks until
    all finish, then the continuation runs in the caller. *)

val pooled : Exec.Pool.t -> dispatch
(** Asynchronous: the continuation runs at a later {!Exec.Pool.drain} on
    the owner thread — never synchronously, even for [All []]. *)
