open Sim
module Ts = Crypto.Threshold
module Sig = Crypto.Signature
module Hash = Crypto.Hash

(* (view, block hash)-keyed table for the verified-notarization cache: a
   direct structural key instead of the old SHA-256 + sprintf synthetic
   key, so a cache probe costs a hash-table lookup, not a digest. *)
module Notar_table = Hashtbl.Make (struct
  type t = int * Hash.t

  let equal (v1, h1) (v2, h2) = v1 = v2 && Hash.equal h1 h2
  let hash (v, h) = Hash.hash h lxor (v * 0x9e3779b1)
end)

type hooks = {
  on_execute : id:Net.Node_id.t -> sn:int -> Bftblock.t -> Datablock.t list -> unit;
  on_view_change : id:Net.Node_id.t -> view:int -> unit;
  on_view_change_trigger : id:Net.Node_id.t -> abandoned:int -> unit;
  on_propose : id:Net.Node_id.t -> sn:int -> at:Sim_time.t -> unit;
  on_checkpoint : id:Net.Node_id.t -> lw:int -> unit;
}

let no_hooks =
  { on_execute = (fun ~id:_ ~sn:_ _ _ -> ());
    on_view_change = (fun ~id:_ ~view:_ -> ());
    on_view_change_trigger = (fun ~id:_ ~abandoned:_ -> ());
    on_propose = (fun ~id:_ ~sn:_ ~at:_ -> ());
    on_checkpoint = (fun ~id:_ ~lw:_ -> ()) }

(* Per-serial agreement instance (Algorithm 2 executes many in parallel). *)
type instance = {
  sn : int;
  mutable iview : int;                     (* view of the current attempt *)
  mutable block : Bftblock.t option;
  mutable voted_prepare : bool;
  mutable voted_hash : Hash.t option;      (* hash our prepare share covers *)
  mutable voted_commit : bool;
  mutable notarization : Ts.aggregate option;
  mutable notarized_view : int;            (* view in which notarized *)
  mutable confirmation : Ts.aggregate option;
  (* leader-side collection *)
  mutable prepare_quorum : Quorum.t option;
  mutable commit_quorum : Quorum.t option;
  (* out-of-order proof stash: with per-message network jitter a
     notarization can arrive before its proposal, and a confirmation
     before its notarization; they are replayed when the prerequisite
     lands *)
  mutable stashed_confirmation : (int * Hash.t * Ts.aggregate) option;
}

(* Consensus counters, one set per replica (label [replica="<id>"]).
   Pure observation: nothing here feeds back into protocol behavior, so
   an attached registry cannot perturb a deterministic run. *)
type metrics = {
  commits : Obs.Counter.t;
  datablocks : Obs.Counter.t;
  views : Obs.Counter.t;
  vc_triggers : Obs.Counter.t;
  equivocations : Obs.Counter.t;
  checkpoints : Obs.Counter.t;
  submit_rejected : Obs.Counter.t;
  mempool_evicted : Obs.Counter.t;
}

type t = {
  platform : Platform.t;
  cfg : Config.t;
  id : Net.Node_id.t;
  sk : Sig.private_key;
  pks : Sig.public_key array;
  tsetup : Ts.setup;
  tkey : Ts.member_key;
  strategy : Byzantine.t;
  hooks : hooks;
  trace : Trace.t;
  ms : metrics option;
  mempool : Mempool.t;
  pool : Datablock_pool.t;
  instances : (int, instance) Hashtbl.t;
  ledger : Ledger.t;
  mutable view : int;
  mutable lw : int;                        (* low watermark *)
  mutable next_sn : int;                   (* leader: next serial to assign *)
  mutable db_counter : int;                (* datablock counter d *)
  mutable state_hash : Hash.t;
  mutable latest_checkpoint : Msg.checkpoint_cert option;
  checkpoint_quorums : (int, Hash.t * Quorum.t) Hashtbl.t;
  mutable executed_payload : int;
  (* linked-by-executed-block datablocks, pruned at checkpoints *)
  executed_links : int Hash.Table.t;       (* datablock hash -> executing sn *)
  (* proposals waiting for datablock availability *)
  waiting_propose : (int, Msg.t) Hashtbl.t;
  mutable fetch_inflight : Hash.Set.t;
  (* view change *)
  mutable in_view_change : bool;
  timeout_votes : (int, (Net.Node_id.t, unit) Hashtbl.t) Hashtbl.t;  (* view -> voter set *)
  mutable sent_timeout_for : int;          (* highest view we voted to abandon *)
  mutable vc_sent_for : int;               (* highest target view we sent a VC message for *)
  mutable view_entered_at : Sim_time.t;    (* when the current view started *)
  mutable last_execution_at : Sim_time.t;  (* progress marker for timeout grace *)
  vc_msgs : (int, (Net.Node_id.t, Msg.view_change) Hashtbl.t) Hashtbl.t;
  mutable new_view_sent_for : int;
  (* watched (re-sent) requests driving the view-change trigger *)
  watched : (int, Workload.Request.t * Sim_time.t) Hashtbl.t;
      (* re-sent requests under observation, by batch id, with the
         instant observation started *)
  verified_notarizations : unit Notar_table.t;
      (* notarization proofs already verified — view-change and new-view
         messages repeat the same proofs 2f+1 times, and re-verifying an
         aggregate costs 10 ms of simulated BLS each time *)
  mutable crashed : bool;
  (* replaying the durable log: no sends, no hooks, no snapshot saves *)
  mutable recovering : bool;
  mutable last_partial_pack : Sim_time.t;
  mutable last_partial_propose : Sim_time.t;
  punished : (Net.Node_id.t, unit) Hashtbl.t;  (* kicked-out equivocators *)
  (* overload accounting (plain ints: readable without a registry) *)
  mutable submits_rejected : int;   (* requests refused at admission *)
  mutable mempool_evictions : int;  (* requests shed by age eviction *)
}

let bump t sel = match t.ms with Some m -> Obs.Counter.incr (sel m) | None -> ()
let bump_by t sel k = match t.ms with Some m -> Obs.Counter.add (sel m) k | None -> ()

let id t = t.id
let view t = t.view
let low_watermark t = t.lw
let ledger t = t.ledger
let state_hash t = t.state_hash
let mempool_pending t = Mempool.pending_requests t.mempool
let submits_rejected t = t.submits_rejected
let mempool_evictions t = t.mempool_evictions
let pool t = t.pool
let datablocks_created t = t.db_counter - 1
let in_view_change t = t.in_view_change
let executed_payload_bytes t = t.executed_payload

let punished t = Hashtbl.fold (fun id () acc -> id :: acc) t.punished []

let instance_debug t sn =
  match Hashtbl.find_opt t.instances sn with
  | None -> "no instance"
  | Some i ->
    Printf.sprintf
      "iview=%d block=%b voted_prep=%b voted_commit=%b notarized=%b confirmed=%b stash=%b \
       waiting=%b"
      i.iview (i.block <> None) i.voted_prepare i.voted_commit (i.notarization <> None)
      (i.confirmation <> None)
      (i.stashed_confirmation <> None)
      (Hashtbl.mem t.waiting_propose sn)

let leader_of t v = Config.leader_of_view t.cfg v
let is_leader_of t v = Net.Node_id.equal (leader_of t v) t.id
let is_leader t = is_leader_of t t.view
let quorum_size t = Config.quorum t.cfg

let now t = t.platform.Platform.now ()
let tracef t tag fmt = Trace.recordf t.trace ~at:(now t) ~tag fmt

let active t =
  (* Silent replicas and crashed replicas take no actions at all. *)
  (not t.crashed)
  && (match t.strategy with Byzantine.Silent -> false | _ -> true)

(* Recovery replays the durable log through the normal handlers; the
   replica must re-derive its state without re-emitting anything (the
   messages were already sent before the restart — deterministic
   threshold shares make any post-recovery re-send identical anyway). *)
let send t ~dst msg = if not t.recovering then t.platform.Platform.send ~dst msg
let multicast t msg = if not t.recovering then t.platform.Platform.multicast msg
let schedule t ~delay f = t.platform.Platform.schedule ~delay f

(* Write-ahead logging: called immediately BEFORE the send whose emission
   is a binding commitment. [enabled] is false on the default sim
   platform ([Store.null]), so the hot path skips even the record
   allocation; the log callback is synchronous and schedules nothing, so
   an attached sink never perturbs the event order. *)
let log_store t r =
  let s = t.platform.Platform.store in
  if s.Store.enabled && not t.recovering then s.Store.log r

(* Charge [cost] on the replica's CPU, then run [f]. *)
let with_cpu t cost f = t.platform.Platform.submit ~cost f
let with_cpu_ns t cost_ns f = t.platform.Platform.submit_ns ~cost_ns f

(* Heavy crypto goes through the platform's verification dispatch. On the
   sim plane the continuation runs synchronously at the dispatch point
   (inline or blocking-pool — identical event sequences either way); on
   the socket plane it may run at a later loop tick, after the worker
   domains finish. Continuations therefore re-check every piece of
   replica state they depend on (view, activity, instance state) — the
   re-checks are no-ops when the dispatch was synchronous, so the sim
   plane's behaviour is exactly the pre-pool code path. *)
let verify_via t job k = t.platform.Platform.verify job k

let instance_of t sn =
  match Hashtbl.find_opt t.instances sn with
  | Some i -> i
  | None ->
    let i =
      { sn;
        iview = t.view;
        block = None;
        voted_prepare = false;
        voted_hash = None;
        voted_commit = false;
        notarization = None;
        notarized_view = 0;
        confirmation = None;
        prepare_quorum = None;
        commit_quorum = None;
        stashed_confirmation = None }
    in
    Hashtbl.add t.instances sn i;
    i

(* Entering a later view resets an instance's per-view voting state; the
   notarization (if any) survives as view-change evidence, and a
   confirmation is final. *)
let refresh_instance_view t inst =
  if inst.iview < t.view then begin
    inst.iview <- t.view;
    inst.voted_prepare <- false;
    inst.voted_hash <- None;
    inst.voted_commit <- false;
    inst.prepare_quorum <- None;
    inst.commit_quorum <- None
  end

(* ----------------------------------------------------------------- *)
(* Durable snapshots                                                  *)
(* ----------------------------------------------------------------- *)

(* A serializable image of everything [recover] needs: the confirmed
   ledger prefix, the live agreement instances above the watermark and
   the datablock index backing them. Collections are sorted so the same
   replica state always serializes to the same bytes. *)
let snapshot_of t : Store.snapshot =
  let insts =
    Hashtbl.fold (fun _ i acc -> i :: acc) t.instances []
    |> List.sort (fun a b -> compare a.sn b.sn)
    |> List.map (fun i ->
           Store.
             { s_sn = i.sn;
               s_iview = i.iview;
               s_block = i.block;
               s_voted_prepare = i.voted_prepare;
               s_voted_hash = i.voted_hash;
               s_voted_commit = i.voted_commit;
               s_notarized_view = i.notarized_view;
               s_notarization = i.notarization })
  in
  let dbs =
    Datablock_pool.fold t.pool ~init:[] ~f:(fun acc db ~linked -> (db, linked) :: acc)
    |> List.sort (fun ((a : Datablock.t), _) ((b : Datablock.t), _) ->
           compare
             (a.Datablock.header.creator, a.Datablock.header.counter)
             (b.Datablock.header.creator, b.Datablock.header.counter))
  in
  let links =
    Hash.Table.fold (fun h sn acc -> (h, sn) :: acc) t.executed_links []
    |> List.sort (fun (h1, sn1) (h2, sn2) ->
           match compare sn1 sn2 with 0 -> Hash.compare h1 h2 | c -> c)
  in
  Store.
    { snap_view = t.view;
      snap_lw = t.lw;
      snap_next_sn = t.next_sn;
      snap_db_counter = t.db_counter;
      snap_state_hash = t.state_hash;
      snap_executed_up_to = Ledger.executed_up_to t.ledger;
      snap_checkpoint = t.latest_checkpoint;
      snap_blocks = Ledger.blocks t.ledger;
      snap_executed_links = links;
      snap_instances = insts;
      snap_datablocks = dbs }

let save_snapshot t = (t.platform.Platform.store).Store.save (snapshot_of t)

(* ----------------------------------------------------------------- *)
(* Datablock preparation (Algorithm 1)                                *)
(* ----------------------------------------------------------------- *)

let sign_and_send_datablock t batches =
  bump t (fun m -> m.datablocks);
  let counter = t.db_counter in
  t.db_counter <- counter + 1;
  (* Durable BEFORE the multicast: re-using a counter after a restart
     would manufacture equivocation evidence against an honest node. *)
  log_store t (Store.Db_counter t.db_counter);
  let db = Datablock.create ~sk:t.sk ~creator:t.id ~counter ~now:(now t) batches in
  let cost =
    Sim_time.( + ) t.cfg.cost.sign
      (Crypto.Cost_model.hash_cost t.cfg.cost ~bytes_len:db.Datablock.payload_bytes)
  in
  with_cpu t cost (fun () ->
      if active t then begin
        ignore (Datablock_pool.add t.pool db);
        multicast t (Msg.Datablock_msg db);
        tracef t "datablock.sent" "%a" Datablock.pp db
      end)

(* The equivocation attack: two different datablocks under one counter.
   Halves of the replica set receive different variants; one witness gets
   both, so the duplicate-counter check catches it there. The witness is
   the current leader (whose pool every datablock must reach to be
   proposed) — unless the equivocator IS the leader, in which case both
   variants go to its successor, the replica that would audit the pool
   after a view change. *)
let equivocate_datablocks t batches_a batches_b =
  let counter = t.db_counter in
  t.db_counter <- counter + 1;
  log_store t (Store.Db_counter t.db_counter);
  let da = Datablock.create ~sk:t.sk ~creator:t.id ~counter ~now:(now t) batches_a in
  let db = Datablock.create ~sk:t.sk ~creator:t.id ~counter ~now:(now t) batches_b in
  let n = t.platform.Platform.n in
  let leader = leader_of t t.view in
  let witness =
    if Net.Node_id.equal t.id leader then leader_of t (t.view + 1) else leader
  in
  for dst = 0 to n - 1 do
    if not (Net.Node_id.equal dst t.id) then
      if Net.Node_id.equal dst witness then begin
        send t ~dst (Msg.Datablock_msg da);
        send t ~dst (Msg.Datablock_msg db)
      end
      else if dst < n / 2 then send t ~dst (Msg.Datablock_msg da)
      else send t ~dst (Msg.Datablock_msg db)
  done;
  tracef t "datablock.equivocated" "counter=%d" counter

(* Pacing gate: with [pace_on_pressure] on, datablock production defers
   while the transport's egress queues sit at/above their high-water mark
   — packing into a saturated NIC only converts mempool backlog into
   dropped frames. [pack_tick] retries once the pressure clears. The
   pressure probe is short-circuited away entirely when pacing is off,
   so default-config runs never consult the platform. *)
let paced t = t.cfg.pace_on_pressure && t.platform.Platform.pressure () >= 1.0

let maybe_pack t =
  if active t && ((not (is_leader t)) || t.cfg.leader_generates_datablocks) && not (paced t)
  then
    match t.strategy with
    | Byzantine.Censor -> () (* holds requests back; clients must re-send *)
    | Byzantine.Equivocate_datablocks ->
      if Mempool.has_at_least t.mempool (max 2 t.cfg.alpha) then begin
        let batches = Mempool.take t.mempool ~target:(max 2 t.cfg.alpha) in
        match batches with
        | [ _ ] | [] -> () (* need two variants; wait for more *)
        | first :: rest -> equivocate_datablocks t [ first ] rest
      end
    | Byzantine.Honest | Byzantine.Silent | Byzantine.Crash_at _ ->
      let full = Mempool.has_at_least t.mempool t.cfg.alpha in
      let stale =
        Int64.compare t.cfg.datablock_timeout 0L > 0
        && (match Mempool.oldest_age t.mempool ~now:(now t) with
            | Some age -> Sim_time.compare age t.cfg.datablock_timeout >= 0
            | None -> false)
      in
      if full then
        let batches = Mempool.take t.mempool ~target:t.cfg.alpha in
        (if batches <> [] then sign_and_send_datablock t batches)
      else if stale && Sim_time.compare (now t) t.last_partial_pack > 0 then begin
        t.last_partial_pack <- Sim_time.( + ) (now t) t.cfg.datablock_timeout;
        let batches = Mempool.take t.mempool ~target:max_int in
        if batches <> [] then sign_and_send_datablock t batches
      end

(* ----------------------------------------------------------------- *)
(* Normal case, leader side (Algorithm 2: pre-prepare / notarize /
   confirm stages)                                                    *)
(* ----------------------------------------------------------------- *)

let propose_block t block justification =
  let bh = Bftblock.hash block in
  let payload = Msg.prepare_payload ~view:t.view ~block_hash:bh in
  let cost =
    Sim_time.( + ) t.cfg.cost.tsig_share
      (Crypto.Cost_model.hash_cost t.cfg.cost ~bytes_len:(Bftblock.wire_size block))
  in
  with_cpu t cost (fun () ->
      if active t && not t.in_view_change && block.Bftblock.view = t.view then begin
        let leader_share = Ts.sign_share t.tkey payload in
        let inst = instance_of t block.Bftblock.sn in
        refresh_instance_view t inst;
        inst.block <- Some block;
        inst.voted_prepare <- true;
        inst.voted_hash <- Some bh;
        let q = Quorum.create ~need:(quorum_size t) in
        ignore (Quorum.add q leader_share);
        inst.prepare_quorum <- Some q;
        let msg = Msg.Propose { block; leader_share; justification } in
        log_store t (Store.Logged_msg msg);
        multicast t msg;
        t.hooks.on_propose ~id:t.id ~sn:block.Bftblock.sn ~at:(now t);
        tracef t "propose" "%a" Bftblock.pp block
      end)

let rec maybe_propose t =
  if active t && is_leader t && not t.in_view_change then begin
    let pending = Datablock_pool.pending t.pool in
    let window_open = t.next_sn <= t.lw + t.cfg.k in
    if window_open && pending >= t.cfg.bft_size then begin
      let dbs = Datablock_pool.take_pending t.pool ~max:t.cfg.bft_size in
      let links = List.map Datablock.hash dbs in
      let block = Bftblock.create ~view:t.view ~sn:t.next_sn ~links in
      t.next_sn <- t.next_sn + 1;
      propose_block t block None;
      maybe_propose t
    end
    else if
      window_open && pending > 0
      && Int64.compare t.cfg.proposal_timeout 0L > 0
      && Sim_time.compare (now t) t.last_partial_propose > 0
    then begin
      (* Short-timer (§6.2.1): propose with what we have. *)
      t.last_partial_propose <- Sim_time.( + ) (now t) t.cfg.proposal_timeout;
      let dbs = Datablock_pool.take_pending t.pool ~max:t.cfg.bft_size in
      let links = List.map Datablock.hash dbs in
      let block = Bftblock.create ~view:t.view ~sn:t.next_sn ~links in
      t.next_sn <- t.next_sn + 1;
      propose_block t block None
    end
  end

(* ----------------------------------------------------------------- *)
(* Execution, acknowledgments and checkpoints (Algorithm 3)           *)
(* ----------------------------------------------------------------- *)

let ack_wire_bytes = 48

let send_checkpoint_vote t sn =
  let payload = Msg.checkpoint_payload ~cp_sn:sn ~cp_state:t.state_hash in
  let state = t.state_hash in
  with_cpu t t.cfg.cost.tsig_share (fun () ->
      if active t then begin
        let share = Ts.sign_share t.tkey payload in
        send t ~dst:(leader_of t t.view) (Msg.Checkpoint_vote { cp_sn = sn; cp_state = state; share })
      end)

let rec fetch_missing t hashes =
  (* Nothing to fetch from during log replay — the send would be dropped
     anyway, and marking the hash in-flight would suppress the real fetch
     issued once the replica is live again. *)
  if not t.recovering then
    let leader = leader_of t t.view in
    List.iter
      (fun h ->
        if not (Hash.Set.mem h t.fetch_inflight) then begin
          t.fetch_inflight <- Hash.Set.add h t.fetch_inflight;
          send t ~dst:leader (Msg.Fetch { hash = h })
        end)
      hashes

and try_execute t =
  match Ledger.next_executable t.ledger with
  | None -> ()
  | Some block ->
    let missing = Datablock_pool.missing_links t.pool block.Bftblock.links in
    if missing <> [] then
      (* Confirmed without local data (we were not among the 2f + 1
         voters): recover the datablocks, then resume. *)
      fetch_missing t missing
    else begin
      let sn = block.Bftblock.sn in
      let dbs = List.filter_map (Datablock_pool.find t.pool) block.Bftblock.links in
      let batch_count = ref 0 in
      List.iter
        (fun (db : Datablock.t) ->
          Hash.Table.replace t.executed_links (Datablock.hash db) sn;
          t.executed_payload <- t.executed_payload + db.Datablock.payload_bytes;
          List.iter
            (fun b ->
              Workload.Request.mark_confirmed b;
              incr batch_count)
            db.Datablock.batches)
        dbs;
      t.state_hash <- Hash.combine [ t.state_hash; Bftblock.hash block ];
      Ledger.mark_executed t.ledger sn;
      t.last_execution_at <- now t;
      (* One acknowledgment per batch back to its client (response to
         client, Fig. 5) — external egress, Table 4's "Miscellaneous".
         Replay re-executes without re-acking or re-firing hooks: the
         clients were answered before the restart. *)
      if !batch_count > 0 && not t.recovering then
        t.platform.Platform.charge_egress ~size:(ack_wire_bytes * !batch_count) ~category:"ack";
      if not t.recovering then begin
        bump t (fun m -> m.commits);
        t.hooks.on_execute ~id:t.id ~sn block dbs
      end;
      tracef t "execute" "sn%d (%d datablocks)" sn (List.length dbs);
      if sn mod t.cfg.checkpoint_interval = 0 then send_checkpoint_vote t sn;
      try_execute t
    end

let apply_checkpoint_cert t (cert : Msg.checkpoint_cert) =
  let newer =
    match t.latest_checkpoint with
    | Some old -> cert.cp_sn > old.cp_sn
    | None -> true
  in
  if newer then begin
    t.latest_checkpoint <- Some cert;
    if cert.cp_sn > t.lw then begin
      t.lw <- cert.cp_sn;
      (* The certificate is the proof that everything below [cp_sn] is
         final; it must survive a restart or recovery cannot trust its
         own watermark. *)
      log_store t (Store.Logged_msg (Msg.Checkpoint_cert_msg cert));
      (* State transfer: a replica that fell behind adopts the
         checkpointed execution state. *)
      if Ledger.executed_up_to t.ledger < cert.cp_sn then begin
        Ledger.fast_forward t.ledger cert.cp_sn;
        t.state_hash <- cert.cp_state
      end;
      (* Garbage collection below the watermark. *)
      Ledger.prune_below t.ledger t.lw;
      let lw = t.lw in
      Datablock_pool.prune t.pool ~keep:(fun db ->
          match Hash.Table.find_opt t.executed_links (Datablock.hash db) with
          | Some sn -> sn > lw
          | None -> true);
      Hashtbl.iter
        (fun sn _ -> if sn <= lw then Hashtbl.remove t.waiting_propose sn)
        (Hashtbl.copy t.waiting_propose);
      let stale = Hashtbl.fold (fun sn _ acc -> if sn <= lw then sn :: acc else acc) t.instances [] in
      List.iter (Hashtbl.remove t.instances) stale;
      tracef t "checkpoint.applied" "lw=%d" t.lw;
      (* Checkpoint time is snapshot time: the pruned state is minimal,
         and the store can truncate every log segment the snapshot
         covers. Skipped during replay (the snapshot being replayed is
         still the freshest one). *)
      if (t.platform.Platform.store).Store.enabled && not t.recovering then save_snapshot t;
      if not t.recovering then begin
        bump t (fun m -> m.checkpoints);
        t.hooks.on_checkpoint ~id:t.id ~lw:t.lw;
        maybe_propose t
      end;
      try_execute t
    end
  end

(* ----------------------------------------------------------------- *)
(* Normal case, voter side (Algorithm 2: prepare / commit stages)     *)
(* ----------------------------------------------------------------- *)

let confirm_block t inst (block : Bftblock.t) proof =
  if inst.confirmation = None then begin
    inst.confirmation <- Some proof;
    log_store t (Store.Confirmed_block block);
    Ledger.confirm t.ledger block;
    tracef t "confirmed" "%a" Bftblock.pp block;
    try_execute t
  end

(* The leader completed a commit quorum: build the confirmation proof. *)
let leader_finish_commit t inst notar_digest shares =
  let payload = Msg.commit_payload ~view:inst.iview ~notar_digest in
  let cost = Crypto.Cost_model.combine_cost t.cfg.cost ~shares:(List.length shares) in
  with_cpu t cost (fun () ->
      if active t && not t.in_view_change then
        match Ts.combine t.tsetup payload shares with
        | None -> tracef t "combine.failed" "commit sn%d" inst.sn
        | Some proof ->
          multicast t (Msg.Confirmation { view = inst.iview; sn = inst.sn; notar_digest; proof });
          (match inst.block with
           | Some block -> confirm_block t inst block proof
           | None -> ()))

(* A replica learned the notarization proof for an instance: record it
   and cast the second-round vote (commit stage, lines 27-31). Casting
   the second vote needs only σ¹, not the block body (Algorithm 2 signs
   H(σ¹)); execution later requires the body and is gated separately. *)
let rec accept_notarization t inst proof =
  if inst.notarization = None || inst.notarized_view < inst.iview then begin
    inst.notarization <- Some proof;
    inst.notarized_view <- inst.iview
  end;
  replay_stashed_confirmation t inst;
  cast_commit_vote t inst proof

and replay_stashed_confirmation t inst =
  match inst.stashed_confirmation with
  | Some (view, notar_digest, proof) ->
    inst.stashed_confirmation <- None;
    process_confirmation t inst ~view ~notar_digest ~proof
  | None -> ()

and process_confirmation t inst ~view ~notar_digest ~proof =
  match (inst.block, inst.notarization) with
  | Some block, Some notar
    when Hash.equal (Msg.notar_digest notar) notar_digest
         && Ts.verify t.tsetup proof (Msg.commit_payload ~view ~notar_digest) ->
    confirm_block t inst block proof
  | _ ->
    (* Block or σ¹ not here yet (jitter can reorder a sender's messages);
       keep the proof and replay when the prerequisite arrives. *)
    inst.stashed_confirmation <- Some (view, notar_digest, proof)

and cast_commit_vote t inst proof =
  if not inst.voted_commit then begin
    inst.voted_commit <- true;
    let nd = Msg.notar_digest proof in
    let payload = Msg.commit_payload ~view:inst.iview ~notar_digest:nd in
    let share = Ts.sign_share t.tkey payload in
    let vote = Msg.Commit_vote { view = inst.iview; sn = inst.sn; notar_digest = nd; share } in
    log_store t (Store.Logged_msg vote);
    if is_leader t then begin
      (* The leader is its own collector. *)
      match inst.commit_quorum with
      | Some q -> (
          match Quorum.add q share with
          | Quorum.Ready shares -> leader_finish_commit t inst nd shares
          | Quorum.Pending _ | Quorum.Already_done -> ())
      | None ->
        let q = Quorum.create ~need:(quorum_size t) in
        inst.commit_quorum <- Some q;
        (match Quorum.add q share with
         | Quorum.Ready shares -> leader_finish_commit t inst nd shares
         | Quorum.Pending _ | Quorum.Already_done -> ())
    end
    else send t ~dst:(leader_of t inst.iview) vote
  end

(* The leader completed a prepare quorum: build the notarization proof
   (notarize stage, lines 21-24). *)
let leader_finish_prepare t inst block_hash shares =
  let payload = Msg.prepare_payload ~view:inst.iview ~block_hash in
  let cost = Crypto.Cost_model.combine_cost t.cfg.cost ~shares:(List.length shares) in
  with_cpu t cost (fun () ->
      if active t && not t.in_view_change then
        match Ts.combine t.tsetup payload shares with
        | None -> tracef t "combine.failed" "prepare sn%d" inst.sn
        | Some proof ->
          let msg = Msg.Notarization { view = inst.iview; sn = inst.sn; block_hash; proof } in
          log_store t (Store.Logged_msg msg);
          multicast t msg;
          with_cpu t t.cfg.cost.tsig_share (fun () ->
              if active t then accept_notarization t inst proof))

(* Validation and first-round vote (prepare stage, lines 10-19). *)
let try_vote_prepare t (msg : Msg.t) =
  match msg with
  | Msg.Propose { block; leader_share; justification } ->
    let sn = block.Bftblock.sn in
    let bh = Bftblock.hash block in
    let view_ok = block.Bftblock.view = t.view && not t.in_view_change in
    let watermark_ok = t.lw < sn && sn <= t.lw + t.cfg.k in
    if block.Bftblock.view > t.view || (block.Bftblock.view = t.view && t.in_view_change) then
      (* A proposal from a view we have not entered yet (it can overtake
         the new-view message on the wire): defer until we catch up. *)
      Hashtbl.replace t.waiting_propose sn msg
    else if view_ok && sn > t.lw + t.cfg.k then
      (* Above our window: our low watermark lags the leader's (its
         checkpoint certificate may still be in flight). Defer and retry
         when a checkpoint advances lw. *)
      Hashtbl.replace t.waiting_propose sn msg;
    if view_ok && watermark_ok then begin
      let inst = instance_of t sn in
      refresh_instance_view t inst;
      let not_equivocating =
        (* Never vote for two different blocks at one serial in a view;
           also refuse to overwrite a confirmed block with different
           content (Byzantine new leader). *)
        match inst.block with
        | Some b -> Bftblock.equal_content b block || not inst.voted_prepare
        | None -> true
      in
      let confirmed_conflict =
        match (inst.confirmation, inst.block) with
        | Some _, Some b -> not (Bftblock.equal_content b block)
        | _ -> false
      in
      let share_ok =
        Ts.verify_share t.tsetup leader_share (Msg.prepare_payload ~view:t.view ~block_hash:bh)
      in
      let justification_ok =
        match justification with
        | None -> true
        | Some (old_view, proof) ->
          old_view < t.view
          && Ts.verify t.tsetup proof (Msg.prepare_payload ~view:old_view ~block_hash:bh)
      in
      let repeat_vote =
        inst.voted_prepare
        && (match inst.voted_hash with Some h -> Hash.equal h bh | None -> false)
        && share_ok && justification_ok
      in
      if repeat_vote then begin
        (* A re-delivery of a proposal we already voted for — typically
           replayed at a replica that restarted between voting and the
           notarization. Threshold shares are deterministic, so the
           re-sent vote is bit-identical to the first; adopt the body if
           it was lost with the process. *)
        if inst.block = None then begin
          inst.block <- Some block;
          List.iter (Datablock_pool.mark_linked t.pool) block.Bftblock.links
        end;
        Hashtbl.remove t.waiting_propose sn;
        let share = Ts.sign_share t.tkey (Msg.prepare_payload ~view:t.view ~block_hash:bh) in
        send t ~dst:(leader_of t t.view)
          (Msg.Prepare_vote { view = t.view; sn; block_hash = bh; share });
        tracef t "vote.repeat" "sn%d" sn;
        replay_stashed_confirmation t inst;
        try_execute t
      end
      else if
        not (not inst.voted_prepare && not_equivocating && (not confirmed_conflict) && share_ok
             && justification_ok)
      then
        tracef t "vote.reject" "sn%d voted=%b equiv=%b confl=%b share=%b just=%b" sn
          inst.voted_prepare (not not_equivocating) confirmed_conflict share_ok justification_ok
      else begin
        let missing = Datablock_pool.missing_links t.pool block.Bftblock.links in
        let availability_ok = missing = [] || justification <> None in
        if availability_ok then begin
          List.iter (Datablock_pool.mark_linked t.pool) block.Bftblock.links;
          inst.block <- Some block;
          inst.voted_prepare <- true;
          inst.voted_hash <- Some bh;
          Hashtbl.remove t.waiting_propose sn;
          let share = Ts.sign_share t.tkey (Msg.prepare_payload ~view:t.view ~block_hash:bh) in
          let vote = Msg.Prepare_vote { view = t.view; sn; block_hash = bh; share } in
          log_store t (Store.Logged_msg vote);
          send t ~dst:(leader_of t t.view) vote;
          tracef t "vote.prepare" "sn%d" sn;
          (* A confirmation that overtook the proposal can complete now. *)
          replay_stashed_confirmation t inst;
          try_execute t
        end
        else begin
          (* Defer until the linked datablocks arrive; fetch from the
             leader after a grace period (it must have them, §4.3). The
             grace must cover the multicast serialization spread so
             data already in flight is not re-requested. *)
          Hashtbl.replace t.waiting_propose sn msg;
          schedule t ~delay:t.cfg.fetch_grace (fun () ->
              if active t && Hashtbl.mem t.waiting_propose sn then
                fetch_missing t (Datablock_pool.missing_links t.pool block.Bftblock.links))
        end
      end
    end
  | msg ->
    (* Only proposals reach this validator from [handle] and
       [retry_waiting_proposals]; anything else is a dispatch bug or a
       malformed replay — ignore it rather than kill the replica (an
       attacker-reachable panic is a one-message crash fault). *)
    tracef t "vote.unexpected" "%s" (Msg.kind_name (Msg.kind msg))

(* Would [retry_waiting_proposals] act on this entry right now? Must stay
   in lockstep with the retry body below; pulled out so the hot no-op scan
   can run without building the snapshot list. *)
let waiting_actionable t (m : Msg.t) =
  match m with
  | Msg.Propose { block; justification; _ } ->
    let sn = block.Bftblock.sn in
    let in_window = t.lw < sn && sn <= t.lw + t.cfg.k in
    let view_ready = block.Bftblock.view <= t.view && not t.in_view_change in
    let data_ready =
      justification <> None || Datablock_pool.has_all_links t.pool block.Bftblock.links
    in
    (in_window && view_ready && data_ready) || sn <= t.lw
  | _ -> false

let retry_waiting_proposals t =
  (* This runs once per receiver of every datablock multicast. The common
     case at large n is "entries exist, none ready yet" (proposals wait on
     datablocks still spreading through the multicast); probe for that
     without allocating, and only snapshot the table when something is
     actually ready to retry or drop. *)
  if
    Hashtbl.length t.waiting_propose > 0
    && Hashtbl.fold (fun _ m any -> any || waiting_actionable t m) t.waiting_propose false
  then begin
    let pending = Hashtbl.fold (fun _ m acc -> m :: acc) t.waiting_propose [] in
    List.iter
      (fun m ->
        match m with
        | Msg.Propose { block; justification; _ } ->
          let sn = block.Bftblock.sn in
          let in_window = t.lw < sn && sn <= t.lw + t.cfg.k in
          let view_ready = block.Bftblock.view <= t.view && not t.in_view_change in
          let data_ready =
            justification <> None
            || Datablock_pool.has_all_links t.pool block.Bftblock.links
          in
          if in_window && view_ready && data_ready then begin
            (* Re-run validation now that the prerequisite is met; the
               entry is cleared on a successful vote or re-deferred. *)
            Hashtbl.remove t.waiting_propose sn;
            let cost = t.cfg.cost.tsig_share in
            with_cpu t cost (fun () -> if active t then try_vote_prepare t m)
          end
          else if sn <= t.lw then Hashtbl.remove t.waiting_propose sn
        | _ -> ())
      pending
  end

(* Checkpoint application can open the watermark window for deferred
   proposals. *)
let apply_checkpoint t cert =
  let before = t.lw in
  apply_checkpoint_cert t cert;
  if t.lw > before then retry_waiting_proposals t

(* ----------------------------------------------------------------- *)
(* View change                                                        *)
(* ----------------------------------------------------------------- *)

let timeout_voters t v =
  match Hashtbl.find_opt t.timeout_votes v with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 8 in
    Hashtbl.add t.timeout_votes v set;
    set

let build_view_change t ~target =
  let entries =
    Hashtbl.fold
      (fun sn inst acc ->
        if sn > t.lw then
          match (inst.notarization, inst.block) with
          | Some proof, Some block -> (inst.notarized_view, block, proof) :: acc
          | _ -> acc
        else acc)
      t.instances []
  in
  let unsigned =
    Msg.{ vc_new_view = target;
          vc_sender = t.id;
          vc_checkpoint = t.latest_checkpoint;
          vc_entries = entries;
          vc_signature = Sig.sign t.sk "" }
  in
  { unsigned with Msg.vc_signature = Sig.sign t.sk (Msg.view_change_payload unsigned) }

let rec trigger_view_change t ~abandoned =
  (* [vc_sent_for] tracks the highest target view we sent a view-change
     message for; a later timeout may escalate past an unresponsive next
     leader even while still in view-change mode (the round-robin can
     land on a crashed replica again). *)
  if active t && abandoned >= t.view && t.vc_sent_for <= abandoned then begin
    let target = abandoned + 1 in
    t.in_view_change <- true;
    t.vc_sent_for <- target;
    bump t (fun m -> m.vc_triggers);
    t.hooks.on_view_change_trigger ~id:t.id ~abandoned;
    tracef t "viewchange.trigger" "abandoning v%d" abandoned;
    (* Amplify: make sure our own timeout vote is out so every honest
       replica reaches the f + 1 threshold. *)
    vote_timeout t ~abandoned;
    let vc = build_view_change t ~target in
    let cost =
      Sim_time.( + ) t.cfg.cost.sign
        (Int64.mul t.cfg.cost.tsig_share (Int64.of_int (List.length vc.Msg.vc_entries)))
    in
    with_cpu t cost (fun () ->
        if active t then begin
          send t ~dst:(leader_of t target) (Msg.View_change_msg vc);
          (* If the next leader is also faulty, give up on the next view
             after another timeout — doubled per consecutive attempt
             (PBFT's exponential backoff), so slow new-view validation
             can always outrun the escalation. *)
          let attempt = max 1 (target - t.view) in
          let backoff = Int64.mul t.cfg.view_timeout (Int64.of_int (1 lsl min 6 attempt)) in
          schedule t ~delay:backoff (fun () ->
              if active t && t.in_view_change && t.view < target then
                vote_timeout t ~abandoned:target)
        end)
  end

and vote_timeout t ~abandoned =
  if active t && abandoned >= t.view && t.sent_timeout_for < abandoned then begin
    t.sent_timeout_for <- abandoned;
    let payload = Msg.timeout_payload ~view:abandoned in
    with_cpu t t.cfg.cost.sign (fun () ->
        if active t then begin
          let signature = Sig.sign t.sk payload in
          multicast t (Msg.Timeout { view = abandoned; sender = t.id; signature });
          note_timeout t ~abandoned ~sender:t.id
        end)
  end

and note_timeout t ~abandoned ~sender =
  let set = timeout_voters t abandoned in
  Hashtbl.replace set sender ();
  (* f + 1 timeouts prove at least one honest replica gave up: join in
     (trigger condition (2), §4.3), which makes the remaining honest
     replicas reach 2f + 1 view-change messages. *)
  if Hashtbl.length set >= t.cfg.f + 1 && abandoned >= t.view && t.vc_sent_for <= abandoned then
    trigger_view_change t ~abandoned

(* A watched (re-sent) request that stays unconfirmed beyond the view
   timeout is the paper's trigger condition (1). One per-replica
   watchdog timer scans the watch set — a timer per watched request
   would explode under a re-send burst, when every datablock carries
   hundreds of tagged batches to every replica. *)
let watch_request t batch =
  if active t && not (Workload.Request.is_confirmed batch) then
    let id = batch.Workload.Request.id in
    if not (Hashtbl.mem t.watched id) then Hashtbl.replace t.watched id (batch, now t)

let watchdog_check t =
  if active t && Hashtbl.length t.watched > 0 then begin
    let stale = ref [] in
    let expired = ref false in
    (* Give up only when a watched request has waited a full timeout AND
       the view is old enough AND has made no execution progress for a
       full timeout (PBFT restarts its timer on progress). *)
    let grace_end =
      Sim_time.(Sim_time.max t.view_entered_at t.last_execution_at + t.cfg.view_timeout)
    in
    Hashtbl.iter
      (fun id (batch, since) ->
        if Workload.Request.is_confirmed batch then stale := id :: !stale
        else if
          Sim_time.compare (now t) Sim_time.(since + t.cfg.view_timeout) >= 0
          && Sim_time.compare (now t) grace_end >= 0
        then expired := true)
      t.watched;
    List.iter (Hashtbl.remove t.watched) !stale;
    if !expired then vote_timeout t ~abandoned:t.view
  end

let new_view_redo_plan vcs lw =
  (* For each serial above the adopted watermark, redo the notarized
     block from the highest view; fill gaps with dummies (§4.3). *)
  let best = Hashtbl.create 32 in
  List.iter
    (fun (vc : Msg.view_change) ->
      List.iter
        (fun (v, (block : Bftblock.t), proof) ->
          let sn = block.Bftblock.sn in
          if sn > lw then
            match Hashtbl.find_opt best sn with
            | Some (v0, _, _) when v0 >= v -> ()
            | _ -> Hashtbl.replace best sn (v, block, proof))
        vc.Msg.vc_entries)
    vcs;
  let max_sn = Hashtbl.fold (fun sn _ acc -> max sn acc) best lw in
  let plan = ref [] in
  for sn = max_sn downto lw + 1 do
    match Hashtbl.find_opt best sn with
    | Some entry -> plan := `Redo entry :: !plan
    | None -> plan := `Dummy sn :: !plan
  done;
  (!plan, max_sn)

let highest_checkpoint vcs =
  List.fold_left
    (fun acc (vc : Msg.view_change) ->
      match (acc, vc.Msg.vc_checkpoint) with
      | None, c -> c
      | Some a, Some c when c.Msg.cp_sn > a.Msg.cp_sn -> Some c
      | Some a, _ -> Some a)
    None vcs

let enter_view t ~nv_view ~vcs =
  t.view <- nv_view;
  t.in_view_change <- false;
  t.view_entered_at <- now t;
  t.sent_timeout_for <- max t.sent_timeout_for (nv_view - 1);
  t.vc_sent_for <- max t.vc_sent_for nv_view;
  (* Views only move forward: a restarted replica that forgot its view
     could prepare-vote twice for one serial under two leaders. *)
  log_store t (Store.Entered_view nv_view);
  (match highest_checkpoint vcs with
   | Some cert -> apply_checkpoint t cert
   | None -> ());
  let plan, max_sn = new_view_redo_plan vcs t.lw in
  bump t (fun m -> m.views);
  t.hooks.on_view_change ~id:t.id ~view:nv_view;
  tracef t "view.entered" "v%d (redo %d serials)" nv_view (List.length plan);
  (* Proposals from this view that overtook the new-view message. *)
  retry_waiting_proposals t;
  if is_leader t then begin
    (* The new leader stops producing datablocks; flush its mempool so
       pending requests it was responsible for are not stranded. With an
       admission bound configured, the flush is capped at that bound —
       an unbounded [max_int] take here would convert an overloaded
       demoted leader's whole backlog into one giant datablock burst
       into the brand-new view. The remainder stays queued and drains
       through the normal packing path (pack_tick keeps running; this
       replica no longer packs as leader, but its clients re-send and
       the watchdog covers stranded batches). *)
    if not (Mempool.is_empty t.mempool) then begin
      let cap = Mempool.cap t.mempool in
      let target = if cap > 0 then cap else max_int in
      let batches = Mempool.take t.mempool ~target in
      if batches <> [] then sign_and_send_datablock t batches
    end;
    t.next_sn <- max t.next_sn (max_sn + 1);
    (* Unlink datablocks linked by abandoned (never-notarized) proposals
       so their requests are re-proposed rather than lost. *)
    let keep =
      List.fold_left
        (fun acc entry ->
          match entry with
          | `Redo (_, (block : Bftblock.t), _) ->
            List.fold_left (fun acc h -> Hash.Set.add h acc) acc block.Bftblock.links
          | `Dummy _ -> acc)
        Hash.Set.empty plan
    in
    let keep =
      List.fold_left
        (fun acc (_, (block : Bftblock.t)) ->
          List.fold_left (fun acc h -> Hash.Set.add h acc) acc block.Bftblock.links)
        keep
        (Ledger.executed_range t.ledger ~from_:t.lw)
    in
    Datablock_pool.relink_pending t.pool ~keep_linked:keep
      ~also_executed:(fun h -> Hash.Table.mem t.executed_links h);
    List.iter
      (fun entry ->
        match entry with
        | `Redo (old_view, (block : Bftblock.t), proof) ->
          propose_block t (Bftblock.with_view block nv_view) (Some (old_view, proof))
        | `Dummy sn -> propose_block t (Bftblock.dummy ~view:nv_view ~sn) None)
      plan;
    maybe_propose t
  end

(* The verified-notarization memo must not grow for the lifetime of the
   process: a socket-runtime replica runs for days, and every view change
   adds (view, hash) keys that never expire. When the cap is hit the
   whole table is dropped — re-verifying a proof is always correct (the
   memo is a pure-function cache), and a clear only costs one redundant
   verification per live proof. Both runs of a sim spec clear at the same
   instant, so determinism is unaffected. *)
let notar_cache_cap = 8192

let notar_cache_len t = Notar_table.length t.verified_notarizations

let note_verified_notarization t key =
  if Notar_table.length t.verified_notarizations >= notar_cache_cap then
    Notar_table.reset t.verified_notarizations;
  Notar_table.replace t.verified_notarizations key ()

(* Entries whose notarization proof has not been verified before; the
   verification *cost* is charged only for these. *)
let fresh_entries t entries =
  List.filter
    (fun (v, block, _) ->
      not (Notar_table.mem t.verified_notarizations (v, Bftblock.hash block)))
    entries

let verify_view_change t (vc : Msg.view_change) =
  vc.Msg.vc_sender >= 0
  && vc.Msg.vc_sender < Array.length t.pks
  && Sig.verify t.pks.(vc.Msg.vc_sender) vc.Msg.vc_signature (Msg.view_change_payload vc)
  && List.for_all
       (fun (v, block, proof) ->
         let key = (v, Bftblock.hash block) in
         Notar_table.mem t.verified_notarizations key
         ||
         let ok =
           Ts.verify t.tsetup proof
             (Msg.prepare_payload ~view:v ~block_hash:(Bftblock.hash block))
         in
         if ok then note_verified_notarization t key;
         ok)
       vc.Msg.vc_entries

let on_view_change_verified t (vc : Msg.view_change) ~target =
  let tbl =
    match Hashtbl.find_opt t.vc_msgs target with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.add t.vc_msgs target tbl;
      tbl
  in
  Hashtbl.replace tbl vc.Msg.vc_sender vc;
  if Hashtbl.length tbl >= quorum_size t then begin
    t.new_view_sent_for <- target;
    let vcs = Hashtbl.fold (fun _ v acc -> v :: acc) tbl [] in
    let unsigned =
      Msg.{ nv_view = target; nv_sender = t.id; nv_vcs = vcs; nv_signature = Sig.sign t.sk "" }
    in
    let nv =
      { unsigned with Msg.nv_signature = Sig.sign t.sk (Msg.new_view_payload unsigned) }
    in
    with_cpu t t.cfg.cost.sign (fun () ->
        if active t then begin
          multicast t (Msg.New_view_msg nv);
          enter_view t ~nv_view:target ~vcs
        end)
  end

let on_view_change_msg t (vc : Msg.view_change) =
  let target = vc.Msg.vc_new_view in
  if target > t.view && is_leader_of t target && t.new_view_sent_for < target then begin
    let fresh = List.length (fresh_entries t vc.Msg.vc_entries) in
    let cost =
      Sim_time.( + ) t.cfg.cost.verify
        (Int64.mul t.cfg.cost.tvrf_aggregate (Int64.of_int fresh))
    in
    with_cpu t cost (fun () ->
        if active t && t.new_view_sent_for < target then begin
          (* Pre-warm the aggregate memos of the entries this replica has
             not verified before, in parallel; [verify_view_change] then
             re-walks the entries against warm memos (and records them in
             the notarization cache — owner-thread state the workers
             never touch). *)
          let jobs =
            List.map
              (fun (v, block, proof) ->
                Verify.Aggregate_check
                  { setup = t.tsetup;
                    agg = proof;
                    msg = Msg.prepare_payload ~view:v ~block_hash:(Bftblock.hash block) })
              (fresh_entries t vc.Msg.vc_entries)
          in
          verify_via t (Verify.All jobs) (fun _ ->
              if active t && t.new_view_sent_for < target && verify_view_change t vc
              then on_view_change_verified t vc ~target)
        end)
  end

let on_new_view_msg t (nv : Msg.new_view) =
  if nv.Msg.nv_view > t.view && Net.Node_id.equal nv.Msg.nv_sender (leader_of t nv.Msg.nv_view)
  then begin
    (* The same notarization proof appears in up to 2f + 1 of the carried
       view-change messages; it is verified (and charged) once. *)
    let fresh =
      List.length
        (fresh_entries t (List.concat_map (fun vc -> vc.Msg.vc_entries) nv.Msg.nv_vcs)
        |> List.sort_uniq (fun (v1, b1, _) (v2, b2, _) ->
               compare (v1, Bftblock.hash b1) (v2, Bftblock.hash b2)))
    in
    let cost =
      Sim_time.( + )
        (Int64.mul t.cfg.cost.verify (Int64.of_int (1 + List.length nv.Msg.nv_vcs)))
        (Int64.mul t.cfg.cost.tvrf_aggregate (Int64.of_int fresh))
    in
    with_cpu t cost (fun () ->
        if active t && nv.Msg.nv_view > t.view then begin
          (* Same pre-warm as [on_view_change_msg], over the deduplicated
             union of the carried entries. *)
          let jobs =
            fresh_entries t (List.concat_map (fun vc -> vc.Msg.vc_entries) nv.Msg.nv_vcs)
            |> List.sort_uniq (fun (v1, b1, _) (v2, b2, _) ->
                   compare (v1, Bftblock.hash b1) (v2, Bftblock.hash b2))
            |> List.map (fun (v, block, proof) ->
                   Verify.Aggregate_check
                     { setup = t.tsetup;
                       agg = proof;
                       msg = Msg.prepare_payload ~view:v ~block_hash:(Bftblock.hash block) })
          in
          verify_via t (Verify.All jobs) (fun _ ->
              if active t && nv.Msg.nv_view > t.view then begin
                let sig_ok =
                  Sig.verify t.pks.(nv.Msg.nv_sender) nv.Msg.nv_signature
                    (Msg.new_view_payload nv)
                in
                let distinct_senders =
                  List.sort_uniq Net.Node_id.compare
                    (List.map (fun vc -> vc.Msg.vc_sender) nv.Msg.nv_vcs)
                in
                if sig_ok
                   && List.length distinct_senders >= quorum_size t
                   && List.for_all (fun vc -> vc.Msg.vc_new_view = nv.Msg.nv_view) nv.Msg.nv_vcs
                   && List.for_all (verify_view_change t) nv.Msg.nv_vcs
                then enter_view t ~nv_view:nv.Msg.nv_view ~vcs:nv.Msg.nv_vcs
              end)
        end)
  end

(* ----------------------------------------------------------------- *)
(* Message dispatch                                                   *)
(* ----------------------------------------------------------------- *)

let on_datablock_verified t (db : Datablock.t) ~is_fetch_reply =
  if is_fetch_reply then
    t.fetch_inflight <- Hash.Set.remove (Datablock.hash db) t.fetch_inflight;
  match Datablock_pool.add t.pool db with
  | Datablock_pool.Accepted ->
    (* Watch re-sent requests propagated in datablocks (§4.3). *)
    List.iter
      (fun b -> if b.Workload.Request.resend then watch_request t b)
      db.Datablock.batches;
    retry_waiting_proposals t;
    try_execute t;
    maybe_propose t
  | Datablock_pool.Duplicate -> ()
  | Datablock_pool.Equivocation first ->
    bump t (fun m -> m.equivocations);
    tracef t "equivocation" "from %a (first %a)" Net.Node_id.pp db.Datablock.header.creator
      Datablock.pp first;
    if t.cfg.punish_equivocators then begin
      (* §4.3 remark: the two conflicting signed headers are
         public evidence; kick the creator out. *)
      Hashtbl.replace t.punished db.Datablock.header.creator ();
      tracef t "punished" "%a" Net.Node_id.pp db.Datablock.header.creator
    end;
    (* The stored variant can unblock a proposal that links it. *)
    retry_waiting_proposals t;
    try_execute t

let on_datablock t (db : Datablock.t) ~is_fetch_reply =
  (* int-ns cost arithmetic: this runs once per receiver of every
     datablock multicast, the highest-rate CPU submission in the system *)
  let cost_ns =
    Int64.to_int t.cfg.cost.verify
    + Crypto.Cost_model.hash_cost_ns t.cfg.cost ~bytes_len:db.Datablock.payload_bytes
  in
  with_cpu_ns t cost_ns (fun () ->
      if active t && not (Hashtbl.mem t.punished db.Datablock.header.creator) then
        (* Merkle recompute + signature check, possibly on worker
           domains; the punished re-check matters only for the pooled
           dispatch (evidence may arrive while the crypto runs). *)
        verify_via t
          (Verify.Datablock_check { pks = t.pks; db })
          (fun ok ->
            if
              ok && active t
              && not (Hashtbl.mem t.punished db.Datablock.header.creator)
            then on_datablock_verified t db ~is_fetch_reply))

let on_prepare_vote t ~view ~sn ~block_hash ~share =
  if view = t.view && is_leader t && not t.in_view_change then begin
    let verify_cost = if t.cfg.verify_shares_eagerly then t.cfg.cost.tvrf_share else 0L in
    with_cpu t verify_cost (fun () ->
        if active t && not t.in_view_change && view = t.view then begin
          let inst = instance_of t sn in
          (* Only valid shares enter the quorum (the CPU cost of the
             check is charged lazily at aggregation unless
             [verify_shares_eagerly]); a Byzantine voter cannot poison
             the aggregate. *)
          if inst.iview = view then
            verify_via t
              (Verify.Share_check
                 { setup = t.tsetup; share; msg = Msg.prepare_payload ~view ~block_hash })
              (fun ok ->
                if ok && active t && not t.in_view_change && view = t.view then begin
                  let inst = instance_of t sn in
                  if inst.iview = view then begin
                    let q =
                      match inst.prepare_quorum with
                      | Some q -> q
                      | None ->
                        let q = Quorum.create ~need:(quorum_size t) in
                        inst.prepare_quorum <- Some q;
                        q
                    in
                    match Quorum.add q share with
                    | Quorum.Ready shares -> leader_finish_prepare t inst block_hash shares
                    | Quorum.Pending _ | Quorum.Already_done -> ()
                  end
                end)
        end)
  end

let on_commit_vote t ~view ~sn ~notar_digest ~share =
  if view = t.view && is_leader t && not t.in_view_change then begin
    let verify_cost = if t.cfg.verify_shares_eagerly then t.cfg.cost.tvrf_share else 0L in
    with_cpu t verify_cost (fun () ->
        if active t && not t.in_view_change && view = t.view then begin
          let inst = instance_of t sn in
          if inst.iview = view then
            verify_via t
              (Verify.Share_check
                 { setup = t.tsetup; share; msg = Msg.commit_payload ~view ~notar_digest })
              (fun ok ->
                if ok && active t && not t.in_view_change && view = t.view then begin
                  let inst = instance_of t sn in
                  if inst.iview = view then begin
                    let q =
                      match inst.commit_quorum with
                      | Some q -> q
                      | None ->
                        let q = Quorum.create ~need:(quorum_size t) in
                        inst.commit_quorum <- Some q;
                        q
                    in
                    match Quorum.add q share with
                    | Quorum.Ready shares -> leader_finish_commit t inst notar_digest shares
                    | Quorum.Pending _ | Quorum.Already_done -> ()
                  end
                end)
        end)
  end

let on_notarization t ~view ~sn ~block_hash ~proof =
  if view = t.view && not t.in_view_change then
    with_cpu t
      (Sim_time.( + ) t.cfg.cost.tvrf_aggregate t.cfg.cost.tsig_share)
      (fun () ->
        if active t && view = t.view && not t.in_view_change then begin
          let inst = instance_of t sn in
          (* the commit vote must be signed under the current view even
             if this instance saw no proposal in it yet *)
          refresh_instance_view t inst;
          let block_matches =
            match inst.block with
            | Some block -> Hash.equal (Bftblock.hash block) block_hash
            | None -> true (* the block body may still be in flight *)
          in
          if block_matches then
            verify_via t
              (Verify.Aggregate_check
                 { setup = t.tsetup;
                   agg = proof;
                   msg = Msg.prepare_payload ~view ~block_hash })
              (fun ok ->
                if ok && active t && view = t.view && not t.in_view_change then begin
                  (* re-fetch: the instance may have moved (or appeared)
                     while the crypto ran on the pool; refresh and the
                     match re-check are idempotent, so the inline path is
                     unchanged *)
                  let inst = instance_of t sn in
                  refresh_instance_view t inst;
                  let block_matches =
                    match inst.block with
                    | Some block -> Hash.equal (Bftblock.hash block) block_hash
                    | None -> true
                  in
                  if block_matches then begin
                    (* The commit vote about to be cast binds us to this
                       σ¹; keep the proof so a restarted replica can
                       rebuild the binding. *)
                    log_store t
                      (Store.Logged_msg (Msg.Notarization { view; sn; block_hash; proof }));
                    accept_notarization t inst proof
                  end
                end)
        end)

let on_confirmation t ~view ~sn ~notar_digest ~proof =
  with_cpu t t.cfg.cost.tvrf_aggregate (fun () ->
      if active t then
        (* memo pre-warm: [process_confirmation] re-checks the proof
           inline (it also gates on block/notarization presence, which
           may change while the pool runs), but against a warm memo the
           re-check is a field read. The verdict itself is ignored here —
           an invalid proof simply fails inside [process_confirmation],
           exactly as before. *)
        verify_via t
          (Verify.Aggregate_check
             { setup = t.tsetup; agg = proof; msg = Msg.commit_payload ~view ~notar_digest })
          (fun _ok ->
            if active t then
              process_confirmation t (instance_of t sn) ~view ~notar_digest ~proof))

let on_checkpoint_vote t ~cp_sn ~cp_state ~share =
  if
    is_leader t && not t.in_view_change
    && Ts.verify_share t.tsetup share (Msg.checkpoint_payload ~cp_sn ~cp_state)
  then begin
    let _, q =
      match Hashtbl.find_opt t.checkpoint_quorums cp_sn with
      | Some entry -> entry
      | None ->
        let entry = (cp_state, Quorum.create ~need:(quorum_size t)) in
        Hashtbl.add t.checkpoint_quorums cp_sn entry;
        entry
    in
    match Quorum.add q share with
    | Quorum.Ready shares ->
      let payload = Msg.checkpoint_payload ~cp_sn ~cp_state in
      let cost = Crypto.Cost_model.combine_cost t.cfg.cost ~shares:(List.length shares) in
      with_cpu t cost (fun () ->
          if active t then
            match Ts.combine t.tsetup payload shares with
            | None -> ()
            | Some proof ->
              let cert = Msg.{ cp_sn; cp_state; cp_proof = proof } in
              multicast t (Msg.Checkpoint_cert_msg cert);
              apply_checkpoint t cert)
    | Quorum.Pending _ | Quorum.Already_done -> ()
  end

let on_checkpoint_cert t (cert : Msg.checkpoint_cert) =
  with_cpu t t.cfg.cost.tvrf_aggregate (fun () ->
      if active t
         && Ts.verify t.tsetup cert.Msg.cp_proof
              (Msg.checkpoint_payload ~cp_sn:cert.Msg.cp_sn ~cp_state:cert.Msg.cp_state)
      then apply_checkpoint t cert)

let on_timeout_msg t ~view ~sender ~signature =
  with_cpu t t.cfg.cost.verify (fun () ->
      if active t
         && sender >= 0
         && sender < Array.length t.pks
         && Sig.verify t.pks.(sender) signature (Msg.timeout_payload ~view)
      then note_timeout t ~abandoned:view ~sender)

let on_fetch t ~src hash =
  match Datablock_pool.find t.pool hash with
  | Some db -> send t ~dst:src (Msg.Fetch_reply db)
  | None -> ()

let handle t ~src (msg : Msg.t) =
  if active t then
    match msg with
    | Msg.Datablock_msg db -> on_datablock t db ~is_fetch_reply:false
    | Msg.Fetch_reply db -> on_datablock t db ~is_fetch_reply:true
    | Msg.Propose { block; _ } ->
      tracef t "propose.received" "sn%d" block.Bftblock.sn;
      let cost = Sim_time.( + ) t.cfg.cost.tvrf_share t.cfg.cost.tsig_share in
      with_cpu t cost (fun () -> if active t then try_vote_prepare t msg)
    | Msg.Prepare_vote { view; sn; block_hash; share } ->
      on_prepare_vote t ~view ~sn ~block_hash ~share
    | Msg.Notarization { view; sn; block_hash; proof } ->
      on_notarization t ~view ~sn ~block_hash ~proof
    | Msg.Commit_vote { view; sn; notar_digest; share } ->
      on_commit_vote t ~view ~sn ~notar_digest ~share
    | Msg.Confirmation { view; sn; notar_digest; proof } ->
      on_confirmation t ~view ~sn ~notar_digest ~proof
    | Msg.Checkpoint_vote { cp_sn; cp_state; share } -> on_checkpoint_vote t ~cp_sn ~cp_state ~share
    | Msg.Checkpoint_cert_msg cert -> on_checkpoint_cert t cert
    | Msg.Timeout { view; sender; signature } -> on_timeout_msg t ~view ~sender ~signature
    | Msg.View_change_msg vc -> on_view_change_msg t vc
    | Msg.New_view_msg nv -> on_new_view_msg t nv
    | Msg.Fetch { hash } -> on_fetch t ~src hash

(* ----------------------------------------------------------------- *)
(* Construction                                                       *)
(* ----------------------------------------------------------------- *)

(* Admission verdicts surfaced to the submitting client (both planes). *)
type reject_reason = Mempool.reject_reason = Mempool_full | Inactive
type admission = Mempool.admission = Admitted | Rejected of reject_reason

let submit t batch =
  if not (active t) then Rejected Inactive
  else
    match Mempool.try_add t.mempool batch with
    | Mempool.Admitted ->
      if batch.Workload.Request.resend then watch_request t batch;
      maybe_pack t;
      Admitted
    | Mempool.Rejected reason ->
      let count = batch.Workload.Request.count in
      t.submits_rejected <- t.submits_rejected + count;
      bump_by t (fun m -> m.submit_rejected) count;
      Rejected reason

let rec pack_tick t =
  if active t then begin
    (if Int64.compare t.cfg.mempool_max_age 0L > 0 then
       let evicted = Mempool.evict_expired t.mempool ~now:(now t) in
       if evicted > 0 then begin
         t.mempool_evictions <- t.mempool_evictions + evicted;
         bump_by t (fun m -> m.mempool_evicted) evicted;
         tracef t "mempool.evicted" "%d requests past max age" evicted
       end);
    maybe_pack t;
    watchdog_check t;
    (* The leader's short-timer (partial proposals) also needs a periodic
       trigger: datablock arrivals alone stop driving it once the tail of
       the load is in the pool. *)
    maybe_propose t;
    let base =
      if Int64.compare t.cfg.datablock_timeout 0L > 0 then t.cfg.datablock_timeout
      else Sim_time.ms 500
    in
    let base =
      if Int64.compare t.cfg.proposal_timeout 0L > 0 then Sim_time.min base t.cfg.proposal_timeout
      else base
    in
    schedule t ~delay:base (fun () -> pack_tick t)
  end

let start t =
  (match t.strategy with
   | Byzantine.Crash_at at ->
     t.platform.Platform.schedule_at ~at (fun () ->
         t.crashed <- true;
         t.platform.Platform.set_down true;
         Trace.recordf t.trace ~at:(now t) ~tag:"crash" "%a" Net.Node_id.pp t.id)
   | Byzantine.Honest | Byzantine.Silent | Byzantine.Equivocate_datablocks | Byzantine.Censor ->
     ());
  if active t then pack_tick t

let create ~platform ~cfg ~id ~sk ~pks ~tsetup ~tkey ?obs ?(strategy = Byzantine.Honest)
    ?(hooks = no_hooks) ?trace () =
  let trace = match trace with Some tr -> tr | None -> Trace.create ~enabled:false () in
  let ms =
    Option.map
      (fun reg ->
        (* Idempotent registration: a replica recovered after a crash
           re-attaches to the same counters instead of shadowing them. *)
        let labels = [ ("replica", string_of_int id) ] in
        let c name help = Obs.Registry.counter reg ~help ~labels name in
        { commits = c "leopard_replica_commits_total" "blocks executed";
          datablocks = c "leopard_replica_datablocks_total" "datablocks created";
          views = c "leopard_replica_views_entered_total" "views entered via new-view";
          vc_triggers = c "leopard_replica_vc_triggers_total" "view changes triggered";
          equivocations =
            c "leopard_replica_equivocation_witness_total" "equivocations witnessed";
          checkpoints = c "leopard_replica_checkpoints_total" "checkpoint certs advanced lw";
          submit_rejected =
            c "leopard_replica_submit_rejected_total"
              "client requests refused at mempool admission";
          mempool_evicted =
            c "leopard_replica_mempool_evicted_total"
              "mempool requests shed by age eviction" })
      obs
  in
  let t =
    { platform;
      ms;
      cfg;
      id;
      sk;
      pks;
      tsetup;
      tkey;
      strategy;
      hooks;
      trace;
      mempool =
        Mempool.create ~cap:cfg.Config.mempool_cap ~max_age:cfg.Config.mempool_max_age ();
      pool = Datablock_pool.create ();
      instances = Hashtbl.create 64;
      ledger = Ledger.create ();
      view = 1;
      lw = 0;
      next_sn = 1;
      db_counter = 1;
      state_hash = Hash.of_string "genesis";
      latest_checkpoint = None;
      checkpoint_quorums = Hashtbl.create 16;
      executed_payload = 0;
      executed_links = Hash.Table.create 256;
      waiting_propose = Hashtbl.create 16;
      fetch_inflight = Hash.Set.empty;
      in_view_change = false;
      timeout_votes = Hashtbl.create 8;
      sent_timeout_for = 0;
      vc_sent_for = 0;
      view_entered_at = Sim_time.zero;
      last_execution_at = Sim_time.zero;
      vc_msgs = Hashtbl.create 8;
      new_view_sent_for = 0;
      watched = Hashtbl.create 64;
      verified_notarizations = Notar_table.create 64;
      crashed = false;
      recovering = false;
      last_partial_pack = Sim_time.zero;
      last_partial_propose = Sim_time.zero;
      punished = Hashtbl.create 4;
      submits_rejected = 0;
      mempool_evictions = 0 }
  in
  platform.Platform.set_handler (fun ~src msg -> handle t ~src msg);
  t

(* ----------------------------------------------------------------- *)
(* Crash-restart recovery                                             *)
(* ----------------------------------------------------------------- *)

let halt t =
  t.crashed <- true;
  t.platform.Platform.set_down true;
  tracef t "halt" "%a" Net.Node_id.pp t.id

(* Replay one durable record into a fresh replica. State is written
   directly — the messages it describes were our own emissions, already
   validated before they were logged — but always guarded so that a
   record from before the snapshot's watermark (or from an abandoned
   view) cannot roll newer state back. *)
let replay_record t (r : Store.record) =
  match r with
  | Store.Db_counter c -> t.db_counter <- max t.db_counter c
  | Store.Entered_view v ->
    if v > t.view then begin
      t.view <- v;
      t.in_view_change <- false;
      t.sent_timeout_for <- max t.sent_timeout_for (v - 1);
      t.vc_sent_for <- max t.vc_sent_for v
    end
  | Store.Confirmed_block block -> Ledger.confirm t.ledger block
  | Store.Logged_msg msg -> (
    match msg with
    | Msg.Propose { block; _ } ->
      (* Our own proposal: as leader we also prepare-voted for it. *)
      let sn = block.Bftblock.sn in
      if block.Bftblock.view > t.view then t.view <- block.Bftblock.view;
      if sn > t.lw then begin
        let inst = instance_of t sn in
        if block.Bftblock.view >= inst.iview then begin
          inst.iview <- block.Bftblock.view;
          inst.block <- Some block;
          inst.voted_prepare <- true;
          inst.voted_hash <- Some (Bftblock.hash block)
        end
      end;
      List.iter (Datablock_pool.mark_linked t.pool) block.Bftblock.links;
      t.next_sn <- max t.next_sn (sn + 1)
    | Msg.Prepare_vote { view; sn; block_hash; _ } ->
      if view > t.view then t.view <- view;
      if sn > t.lw then begin
        let inst = instance_of t sn in
        if view >= inst.iview then begin
          inst.iview <- view;
          inst.voted_prepare <- true;
          inst.voted_hash <- Some block_hash
        end
      end
    | Msg.Commit_vote { view; sn; _ } ->
      if sn > t.lw then begin
        let inst = instance_of t sn in
        if view >= inst.iview then begin
          inst.iview <- view;
          inst.voted_commit <- true
        end
      end
    | Msg.Notarization { view; sn; proof; _ } ->
      if sn > t.lw then begin
        let inst = instance_of t sn in
        if view >= inst.notarized_view then begin
          inst.notarization <- Some proof;
          inst.notarized_view <- view
        end
      end
    | Msg.Checkpoint_cert_msg cert -> apply_checkpoint_cert t cert
    | _ -> ())

let recover ~platform ~cfg ~id ~sk ~pks ~tsetup ~tkey ?obs ?strategy ?hooks ?trace () =
  let t = create ~platform ~cfg ~id ~sk ~pks ~tsetup ~tkey ?obs ?strategy ?hooks ?trace () in
  let sink = platform.Platform.store in
  if sink.Store.enabled then begin
    t.recovering <- true;
    let snap, records = sink.Store.load () in
    (match snap with
     | Some s ->
       if s.Store.snap_view > t.view then t.view <- s.Store.snap_view;
       t.sent_timeout_for <- max t.sent_timeout_for (t.view - 1);
       t.vc_sent_for <- max t.vc_sent_for (t.view - 1);
       t.lw <- s.Store.snap_lw;
       t.next_sn <- s.Store.snap_next_sn;
       t.db_counter <- s.Store.snap_db_counter;
       t.state_hash <- s.Store.snap_state_hash;
       t.latest_checkpoint <- s.Store.snap_checkpoint;
       List.iter (fun (db, _) -> ignore (Datablock_pool.add t.pool db)) s.Store.snap_datablocks;
       List.iter
         (fun (db, linked) ->
           if linked then Datablock_pool.mark_linked t.pool (Datablock.hash db))
         s.Store.snap_datablocks;
       List.iter (Ledger.confirm t.ledger) s.Store.snap_blocks;
       Ledger.fast_forward t.ledger s.Store.snap_executed_up_to;
       List.iter
         (fun (h, sn) -> Hash.Table.replace t.executed_links h sn)
         s.Store.snap_executed_links;
       List.iter
         (fun (i : Store.inst_snap) ->
           let inst = instance_of t i.Store.s_sn in
           inst.iview <- i.Store.s_iview;
           inst.block <- i.Store.s_block;
           inst.voted_prepare <- i.Store.s_voted_prepare;
           inst.voted_hash <- i.Store.s_voted_hash;
           inst.voted_commit <- i.Store.s_voted_commit;
           inst.notarized_view <- i.Store.s_notarized_view;
           inst.notarization <- i.Store.s_notarization)
         s.Store.snap_instances
     | None -> ());
    List.iter (replay_record t) records;
    (* Re-execute the confirmed suffix locally (acks and hooks stay
       suppressed — the world already saw them). *)
    try_execute t;
    t.recovering <- false;
    (* The clock moved while we were down; restart the progress markers
       so the watchdog measures from the revival, not the crash. *)
    t.view_entered_at <- now t;
    t.last_execution_at <- now t;
    tracef t "recovered" "view=%d lw=%d executed=%d" t.view t.lw
      (Ledger.executed_up_to t.ledger)
  end;
  t
