type verdict =
  | Accepted
  | Duplicate
  | Equivocation of Datablock.t

type entry = { db : Datablock.t; mutable linked : bool }

type t = {
  by_hash : entry Crypto.Hash.Table.t;
  by_slot : (int * int, Crypto.Hash.t) Hashtbl.t; (* (creator, counter) -> hash *)
  pending : Crypto.Hash.t Queue.t;                (* arrival order, lazily cleaned *)
  mutable evidence : (Net.Node_id.t * Datablock.t * Datablock.t) list;
}

let create () =
  { by_hash = Crypto.Hash.Table.create 256;
    by_slot = Hashtbl.create 256;
    pending = Queue.create ();
    evidence = [] }

let find t h =
  Option.map (fun e -> e.db) (Crypto.Hash.Table.find_opt t.by_hash h)

let mem t h = Crypto.Hash.Table.mem t.by_hash h

let add t db =
  let h = Datablock.hash db in
  let slot = (db.Datablock.header.creator, db.Datablock.header.counter) in
  match Hashtbl.find_opt t.by_slot slot with
  | Some h0 when Crypto.Hash.equal h0 h -> Duplicate
  | Some h0 ->
    let first =
      match Crypto.Hash.Table.find_opt t.by_hash h0 with
      | Some e -> e.db
      | None -> db (* first copy pruned *)
    in
    t.evidence <- (db.Datablock.header.creator, first, db) :: t.evidence;
    (* Store the conflicting variant too — as punishable evidence and so
       that a BFTblock linking it (the leader confirms whichever variant
       it received, §4.3 remark) can still be resolved — but never expose
       it to this replica's own proposal path. *)
    if not (Crypto.Hash.Table.mem t.by_hash h) then
      Crypto.Hash.Table.add t.by_hash h { db; linked = true };
    Equivocation first
  | None ->
    Hashtbl.add t.by_slot slot h;
    Crypto.Hash.Table.add t.by_hash h { db; linked = false };
    Queue.push h t.pending;
    Accepted

let missing_links t links = List.filter (fun h -> not (mem t h)) links

let rec has_all_links t = function
  | [] -> true
  | h :: rest -> mem t h && has_all_links t rest

let rec drop_linked_head t =
  match Queue.peek_opt t.pending with
  | Some h ->
    (match Crypto.Hash.Table.find_opt t.by_hash h with
     | Some e when not e.linked -> ()
     | Some _ | None ->
       ignore (Queue.pop t.pending);
       drop_linked_head t)
  | None -> ()

let pending t =
  (* The queue may hold hashes already linked via [mark_linked]; count
     precisely (the queue is small: unlinked backlog plus stragglers). *)
  drop_linked_head t;
  Queue.fold
    (fun acc h ->
      match Crypto.Hash.Table.find_opt t.by_hash h with
      | Some e when not e.linked -> acc + 1
      | Some _ | None -> acc)
    0 t.pending

let take_pending t ~max =
  let rec go acc n =
    if n = 0 then List.rev acc
    else begin
      drop_linked_head t;
      match Queue.pop t.pending with
      | exception Queue.Empty -> List.rev acc
      | h ->
        (match Crypto.Hash.Table.find_opt t.by_hash h with
         | Some e when not e.linked ->
           e.linked <- true;
           go (e.db :: acc) (n - 1)
         | Some _ | None -> go acc n)
    end
  in
  go [] max

let mark_linked t h =
  match Crypto.Hash.Table.find_opt t.by_hash h with
  | Some e -> e.linked <- true
  | None -> ()

let relink_pending t ~keep_linked ~also_executed =
  Crypto.Hash.Table.iter
    (fun h e ->
      if e.linked && (not (Crypto.Hash.Set.mem h keep_linked)) && not (also_executed h) then begin
        e.linked <- false;
        Queue.push h t.pending
      end)
    t.by_hash

let fold t ~init ~f =
  Crypto.Hash.Table.fold (fun _ e acc -> f acc e.db ~linked:e.linked) t.by_hash init

let equivocations t = List.rev t.evidence
let size t = Crypto.Hash.Table.length t.by_hash

let prune t ~keep =
  let victims = ref [] in
  Crypto.Hash.Table.iter
    (fun h e -> if not (keep e.db) then victims := (h, e.db) :: !victims)
    t.by_hash;
  List.iter
    (fun (h, db) ->
      Crypto.Hash.Table.remove t.by_hash h;
      Hashtbl.remove t.by_slot (db.Datablock.header.creator, db.Datablock.header.counter))
    !victims
