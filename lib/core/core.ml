(** Leopard: high throughput-preserving BFT for large-scale systems.

    The paper's contribution (ICDCS 2022), on the simulation substrates
    of [Sim], [Net], [Crypto] and [Workload]. The protocol decouples
    data delivery from agreement: non-leader replicas disseminate
    {!Datablock}s, the leader proposes hash-only {!Bftblock}s, and up to
    [k] two-round agreement instances run in parallel behind watermarks,
    with checkpoints and a PBFT-style view change.

    Start with {!Runner} (whole-cluster experiments) or {!Replica} (the
    state machine itself); {!Config} carries every protocol parameter. *)

module Config = Config
(** Protocol parameters: α, BFTsize, [k], timers, cost model, ablation
    knobs (§4, Table 2). *)

module Datablock = Datablock
(** Request packages from non-leader replicas (Algorithm 1, §4.2). *)

module Bftblock = Bftblock
(** Hash-only consensus proposals (§4.2). *)

module Mempool = Mempool
(** Pending request batches at one replica. *)

module Datablock_pool = Datablock_pool
(** Verified datablocks, equivocation evidence, pending-link tracking. *)

module Quorum = Quorum
(** Threshold-share collection for one voting round. *)

module Ledger = Ledger
(** The log of confirmed BFTblocks with sequential execution. *)

module Msg = Msg
(** Wire messages, channel classes (§6.1) and signing payloads. *)

module Codec = Codec
(** Binary wire/persistence codec for the protocol values. *)

module Store = Store
(** The durable-state seam: write-ahead records and checkpoint snapshots
    a replica persists before sending, replayed by [Replica.recover].
    In-memory and fault-injecting sinks live here; the real-file
    implementation is [Store_file] in the [store] library. *)

module Byzantine = Byzantine
(** Adversarial replica strategies. *)

module Verify = Verify
(** Verification dispatch: datablock/threshold checks as jobs, evaluated
    inline or on an [Exec.Pool] of worker domains. *)

module Platform = Platform
(** The runtime seam: clock, timers, messaging and CPU sink, with the
    simulator implementation ({!Platform.of_sim}); the socket runtime
    lives in [Transport.Runtime]. *)

module Replica = Replica
(** The Leopard replica state machine (§4), including checkpoints
    (Algorithm 3) and the view-change protocol. *)

module Runner = Runner
(** Cluster orchestration and measurement. *)

module Scaling_factor = Scaling_factor
(** The paper's scaling-factor metric, analytic and measured (§5.2). *)
