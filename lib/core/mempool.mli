(** The memory pool (Fig. 4): pending request batches at one replica.

    Non-leader replicas continually drain their mempool into datablocks
    (Algorithm 1). Packed batches are removed to avoid repetition (line
    12); batches confirmed elsewhere (possible when the client fan-out
    [s > 1]) are skipped lazily.

    The pool can be bounded: with a capacity, {!try_add} renders an
    explicit admission verdict instead of growing without limit, and
    with a maximum age, {!evict_expired} sheds batches a stalled
    consumer will never pack. Both default to off, in which case the
    pool behaves exactly like the original unbounded queue. *)

type reject_reason =
  | Mempool_full  (** the admission bound would be exceeded *)
  | Inactive      (** the replica is crashed or silent *)

val reject_reason_name : reject_reason -> string
(** Stable lower-snake label for metrics and logs. *)

type admission = Admitted | Rejected of reject_reason
(** Verdict rendered to the submitting client. *)

type t

val create : ?cap:int -> ?max_age:Sim.Sim_time.span -> unit -> t
(** [cap] bounds the pending request count admitted through {!try_add}
    (0, the default, disables the bound); [max_age] is the eviction age
    used by {!evict_expired} (0 disables). *)

val cap : t -> int
(** The admission bound this pool was created with (0 = unbounded). *)

val add : t -> Workload.Request.t -> unit
(** Unconditional enqueue, bypassing the cap — for internal re-enqueue
    of batches already admitted once. *)

val try_add : t -> Workload.Request.t -> admission
(** Admission-checked enqueue: [Rejected Mempool_full] when a capacity
    is set and admitting the batch would push the pending count past
    it; otherwise enqueues and returns [Admitted]. *)

val evict_expired : t -> now:Sim.Sim_time.t -> int
(** Drops unconfirmed batches older than the pool's [max_age] (a FIFO
    prefix) and returns the number of requests evicted. With no
    [max_age] configured this is a no-op returning 0. *)

val pending_requests : t -> int
(** Requests currently poolable (confirmed batches may still be counted
    until a take skips them). *)

val is_empty : t -> bool

val take : t -> target:int -> Workload.Request.t list
(** [take t ~target] removes and returns whole batches totalling at least
    [target] requests when available, fewer (possibly none) otherwise —
    FIFO order, skipping already-confirmed batches. The result may
    overshoot [target] by at most the last batch's size. A non-positive
    [target] takes nothing. *)

val has_at_least : t -> int -> bool
(** Whether a [take ~target] would reach its target. *)

val oldest_age : t -> now:Sim.Sim_time.t -> Sim.Sim_time.span option
(** Age of the oldest pending batch; drives the partial-pack timeout. *)
