(** Leopard protocol configuration.

    Gathers the paper's parameters: the datablock size α (requests per
    datablock — at a fixed payload this is proportional to the paper's
    "bits per package"), the BFTblock size (datablock links per consensus
    proposal), the parallel-instance window [k] with its checkpoint
    period, the timers, and the crypto cost profile. *)

type t = {
  n : int;                (** number of replicas, [n = 3f + 1] *)
  f : int;                (** Byzantine replicas tolerated *)
  alpha : int;            (** datablock size: requests per datablock *)
  bft_size : int;         (** BFTsize: datablock links per BFTblock *)
  k : int;                (** watermark window: serials [lw < sn <= lw + k] *)
  checkpoint_interval : int;  (** checkpoint every this many executed serials *)
  payload : int;          (** request payload bytes (sizing only) *)
  s : int;                (** client submission fan-out (μ's [s], §4.3) *)
  datablock_timeout : Sim.Sim_time.span;
      (** pack a partial datablock after this much delay with a non-empty
          mempool (0 disables partial packing) *)
  proposal_timeout : Sim.Sim_time.span;
      (** leader's short-timer (§6.2.1): propose with fewer than BFTsize
          pending datablocks after this delay (0 disables) *)
  view_timeout : Sim.Sim_time.span;   (** progress timer for view changes *)
  fetch_grace : Sim.Sim_time.span;
      (** how long a replica waits for a proposal's missing datablocks to
          arrive by normal dissemination before fetching them from the
          leader — must exceed the multicast serialization spread of a
          datablock across n-1 receivers, or followers flood the leader
          with fetches for data that is already in flight *)
  cost : Crypto.Cost_model.t;
  cores : int;            (** CPU cores per replica (c5.xlarge: 4) *)
  verify_shares_eagerly : bool;
      (** verify each vote share on arrival instead of at aggregation *)
  priority_channels : bool;
      (** §6.1's two-channel design: consensus messages (channel ①)
          overtake queued datablocks (channel ②). Disable for the
          ablation bench. *)
  leader_generates_datablocks : bool;
      (** ablation: the paper *excludes* the leader from datablock
          generation to keep its NIC free; enabling this reverts that *)
  punish_equivocators : bool;
      (** §4.3 remark: two different datablocks under one counter are
          publicly verifiable evidence; with this on, replicas "kick
          out" the equivocator — all its future datablocks are ignored *)
  mempool_cap : int;
      (** admission bound on pending mempool requests; submissions past
          it are rejected with an explicit verdict (0 = unbounded, the
          seed behaviour) *)
  mempool_max_age : Sim.Sim_time.span;
      (** evict unconfirmed batches older than this from the mempool —
          a stalled consumer cannot pin memory forever (0 disables) *)
  pace_on_pressure : bool;
      (** leader/packer pacing: defer datablock production while the
          transport's egress queues sit at or above their high-water
          mark, instead of batching blindly into a saturated NIC *)
}

val make :
  n:int ->
  ?alpha:int ->
  ?bft_size:int ->
  ?k:int ->
  ?checkpoint_interval:int ->
  ?payload:int ->
  ?s:int ->
  ?datablock_timeout:Sim.Sim_time.span ->
  ?proposal_timeout:Sim.Sim_time.span ->
  ?view_timeout:Sim.Sim_time.span ->
  ?fetch_grace:Sim.Sim_time.span ->
  ?cost:Crypto.Cost_model.t ->
  ?cores:int ->
  ?verify_shares_eagerly:bool ->
  ?priority_channels:bool ->
  ?leader_generates_datablocks:bool ->
  ?punish_equivocators:bool ->
  ?mempool_cap:int ->
  ?mempool_max_age:Sim.Sim_time.span ->
  ?pace_on_pressure:bool ->
  unit ->
  t
(** Defaults: batch sizes from {!paper_batch_sizes}, [k = 32], checkpoint
    every [k/2], 128-byte payload, [s = 1], partial-pack and short-timer
    disabled (pure Algorithm 1: datablocks carry exactly ≥ α requests),
    4 s view timeout, paper cost model, 4 cores. All overload controls
    ([mempool_cap], [mempool_max_age], [pace_on_pressure]) default to
    off, preserving the unbounded open-loop seed behaviour.
    Requires [n >= 4]. Raises [Invalid_argument] otherwise. *)

val paper_batch_sizes : n:int -> int * int
(** [(alpha, bft_size)] from the paper's Table 2, interpolated for
    intermediate [n]: (2000, 100) up to 64 replicas, (3000, 300) at 128,
    (4000, 300) at 256, (4000, 400) from 400. *)

val quorum : t -> int
(** [2f + 1], the vote quorum and threshold-signature reconstruction
    size. *)

val max_faulty : t -> int
(** [f]. *)

val leader_of_view : t -> int -> Net.Node_id.t
(** Round-robin leader rotation: view [v] is led by [v mod n] (§4.3). *)

val requests_per_bftblock : t -> int
(** α × BFTsize, the paper's per-proposal request count (§6.2.1). *)

val pp : Format.formatter -> t -> unit
