type t = {
  n : int;
  now : unit -> Sim.Sim_time.t;
  schedule : delay:Sim.Sim_time.span -> (unit -> unit) -> unit;
  schedule_at : at:Sim.Sim_time.t -> (unit -> unit) -> unit;
  set_handler : (src:Net.Node_id.t -> Msg.t -> unit) -> unit;
  send : dst:Net.Node_id.t -> Msg.t -> unit;
  multicast : Msg.t -> unit;
  charge_egress : size:int -> category:string -> unit;
  submit : cost:Sim.Sim_time.span -> (unit -> unit) -> unit;
  submit_ns : cost_ns:int -> (unit -> unit) -> unit;
  set_down : bool -> unit;
  verify : Verify.dispatch;
  store : Store.sink;
  (* Egress queue pressure in [0, ∞): 0 = idle, >= 1 = at the transport's
     high-water mark. The sim plane models no finite egress buffer, so it
     reports a constant 0 and pressure-gated behaviour never engages
     there. *)
  pressure : unit -> float;
}

(* Each closure is exactly the call Replica made before the seam existed;
   nothing is reordered or cached, so a sim run through the platform is
   event-for-event the run the engine produced before. *)
let of_sim ?verify_pool ?(store = Store.null) ~engine ~network ~id ~cores () =
  let cpu = Net.Cpu.create engine ~cores in
  let verify =
    match verify_pool with
    | None -> Verify.inline
    | Some pool -> Verify.blocking pool
  in
  { n = Net.Network.n network;
    now = (fun () -> Sim.Engine.now engine);
    schedule = (fun ~delay f -> ignore (Sim.Engine.schedule engine ~delay f));
    schedule_at = (fun ~at f -> ignore (Sim.Engine.schedule_at engine ~at f));
    set_handler = (fun h -> Net.Network.set_handler network id h);
    send = (fun ~dst msg -> Net.Network.send network ~src:id ~dst msg);
    multicast = (fun msg -> Net.Network.multicast network ~src:id msg);
    charge_egress =
      (fun ~size ~category -> Net.Network.charge_egress network ~src:id ~size ~category);
    submit = (fun ~cost f -> Net.Cpu.submit cpu ~cost f);
    submit_ns = (fun ~cost_ns f -> Net.Cpu.submit_ns cpu ~cost_ns f);
    set_down = (fun down -> Net.Network.set_down network id down);
    verify;
    store;
    pressure = (fun () -> 0.) }
