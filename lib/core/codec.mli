(** Binary wire/persistence codec for Leopard's protocol values.

    A compact, deterministic, length-delimited binary format for every
    protocol message, so transcripts can be persisted and replayed, and
    state can be shipped across process boundaries. Signatures, shares
    and aggregates round-trip byte-faithfully: {!Datablock.verify} and
    the threshold checks give the same verdict on a decoded value as on
    the original (decoding cannot mint valid credentials).

    All [decode_*] functions are total: they return [None] on truncated
    or malformed input instead of raising.

    Note on sizes: the simulator's {!Msg.wire_size} models transit sizes
    (64-byte ECDSA, 48-byte BLS points, payload bytes); this codec
    serializes the *control representation* (request payloads are
    synthetic in the simulator), so encoded lengths are smaller. *)

exception Encode_error of string
(** Raised by [encode_*] when a value cannot be represented on the wire
    (e.g. a negative or >32-bit integer in a u32 field). Unlike the old
    [assert]-based check this survives [-noassert]. *)

exception Decode_error
(** Internal decoder failure; [decode_*] catch it and return [None]. *)

val encode_batch : Workload.Request.t -> string
val decode_batch : string -> Workload.Request.t option

val encode_datablock : Datablock.t -> string
val decode_datablock : string -> Datablock.t option

val encode_bftblock : Bftblock.t -> string
val decode_bftblock : string -> Bftblock.t option

val encode_msg : Msg.t -> string
val decode_msg : string -> Msg.t option

val encode_record : Store.record -> string
val decode_record : string -> Store.record option

val encode_snapshot : Store.snapshot -> string
val decode_snapshot : string -> Store.snapshot option
(** Durable-store payloads ({!Store.record} / {!Store.snapshot}): the
    same deterministic format, used inside the write-ahead log's CRC'd
    frames ([Store.Wal]). *)

val decode_msg_sub : string -> off:int -> len:int -> Msg.t option
(** [decode_msg_sub s ~off ~len] decodes the message occupying exactly
    [s.[off .. off+len-1]], without copying the slice out first — the
    transport's frame reader decodes payloads in place with this. [None]
    on malformed input, out-of-range slices included. *)

(** {2 Structural equality for round-trip checks}

    Runtime-only state (a batch's confirmation ref identity) is ignored;
    everything on the wire must match. *)

val batch_equal : Workload.Request.t -> Workload.Request.t -> bool
val datablock_equal : Datablock.t -> Datablock.t -> bool
val msg_equal : Msg.t -> Msg.t -> bool
