(** Cluster orchestration: build a Leopard deployment on the simulator,
    drive a workload, and measure what the paper measures.

    This is the main entry point of the library: benches and examples
    describe an experiment as a {!spec} and read the {!report}. Tests can
    instead keep the {!t} handle and inspect replicas mid-run. *)

type spec = {
  cfg : Config.t;
  link : Net.Network.link;
  seed : int64;
  load : float;                         (** offered load, requests/s *)
  duration : Sim.Sim_time.span;         (** total simulated time *)
  warmup : Sim.Sim_time.span;           (** excluded from rate windows *)
  load_until : Sim.Sim_time.span option;    (** stop offering load early *)
  byzantine : (Net.Node_id.t * Byzantine.t) list;  (** strategy overrides *)
  stop_leader_at : Sim.Sim_time.span option;
      (** fail-stop the initial leader (view-change experiments, §6.2.4) *)
  client_resend_timeout : Sim.Sim_time.span option;
      (** clients re-send unconfirmed requests after this delay (§4.3) *)
  gst : Sim.Sim_time.span option;
      (** pre-GST adversarial delays up to one view timeout *)
  trace : bool;                         (** record a shared protocol trace *)
  verify_domains : int option;
      (** run crypto verification on an [Exec.Pool] of this many worker
          domains ({!Verify.blocking} dispatch: parallel compute,
          unchanged completion points — reports stay byte-identical for
          any value, pinned by test). [None]/[Some 0] = inline. *)
  stores : Store.sink array option;
      (** per-replica durable-state sinks (index = replica id), required
          for {!restart_replica}; [None] (the default) attaches
          {!Store.null} everywhere — no persistence, and the report
          bytes are identical to a spec without the field. *)
  obs : Obs.Registry.t option;
      (** metrics registry: replicas register [leopard_replica_*]
          counters, the runner a [leopard_confirm_latency_ns] histogram,
          and the verify pool (if any) its [leopard_verify_*] family.
          Observation only — {!report} bytes are identical with and
          without it (pinned by test). *)
}

val spec :
  cfg:Config.t ->
  ?link:Net.Network.link ->
  ?seed:int64 ->
  ?load:float ->
  ?duration:Sim.Sim_time.span ->
  ?warmup:Sim.Sim_time.span ->
  ?load_until:Sim.Sim_time.span ->
  ?byzantine:(Net.Node_id.t * Byzantine.t) list ->
  ?stop_leader_at:Sim.Sim_time.span ->
  ?client_resend_timeout:Sim.Sim_time.span ->
  ?gst:Sim.Sim_time.span ->
  ?trace:bool ->
  ?verify_domains:int ->
  ?stores:Store.sink array ->
  ?obs:Obs.Registry.t ->
  unit ->
  spec
(** Defaults: the c5.xlarge-like link, seed 42, 10^5 req/s offered, 20 s
    duration with 5 s warmup, all replicas honest, no leader stop, no
    client re-send, synchronous network, no trace. *)

val silent_f : Config.t -> (Net.Node_id.t * Byzantine.t) list
(** [f] silent Byzantine replicas (the largest tolerable number, touching
    the 1/3 bound as in all the paper's experiments), chosen among
    non-leader replicas of view 1. *)

type bandwidth_view = {
  sent_bytes : int;
  received_bytes : int;
  sent_by_category : (string * int) list;
  received_by_category : (string * int) list;
}

type report = {
  n : int;
  offered : int;                 (** requests offered *)
  confirmed : int;               (** requests confirmed (f+1 executions) *)
  throughput : float;            (** confirmed req/s over the window *)
  goodput_bps : float;           (** confirmed payload bits/s over the window *)
  latency : Stats.Histogram.t;   (** client-perceived confirmation latency *)
  stage_seconds : (string * float) list;
      (** request-weighted latency decomposition (Table 3 components) *)
  leader : bandwidth_view;       (** initial leader's post-warmup traffic *)
  non_leader : bandwidth_view;   (** one honest non-leader's traffic *)
  leader_bps : float;            (** leader sent+received bits/s (Fig 2/10) *)
  window_sec : float;            (** measurement window length *)
  executed_blocks : int;         (** serials executed by >= f+1 replicas *)
  view_changes : int;            (** successful view entries beyond view 1 *)
  final_view : int;              (** max view among honest replicas *)
  vc_trigger_to_entry : float option;
      (** seconds from first trigger to the last honest view entry *)
  vc_bytes : int;                (** view-change category bytes, all replicas *)
  equivocations_detected : int;
  all_confirmed : bool;          (** every offered request confirmed *)
  safety_ok : bool;              (** honest ledgers agree position-wise *)
}

val run : spec -> report
(** Builds a cluster, runs it for [spec.duration], and summarizes. *)

(** {2 Incremental interface (tests)} *)

type t

val create : spec -> t
val engine : t -> Sim.Engine.t

val metrics_report : t -> string option
(** {!Obs.Registry.expose} of the spec's registry, if one was attached. *)

val network : t -> Msg.t Net.Network.t
val replicas : t -> Replica.t array
val generator : t -> Workload.Generator.t
val trace : t -> Sim.Trace.t
val run_until : t -> Sim.Sim_time.span -> unit
(** Advances the simulation to the given instant (absolute). *)

val restart_replica : t -> Net.Node_id.t -> unit
(** Process restart: halts the replica, rebuilds it from its sink in
    [spec.stores] via [Replica.recover] (from genesis if no stores were
    attached), brings its network endpoint back up and restarts its
    timers. Distinct from a transport-level crash ([Network.set_down]),
    which keeps the replica's memory intact. *)

val report : t -> report
(** Summarizes the run so far. *)

val honest_ids : t -> Net.Node_id.t list

val shutdown : t -> unit
(** Joins the verification pool's domains, if the spec asked for one.
    {!run} does this itself; callers of {!create} must. Idempotent. *)

val check_safety : t -> bool
(** Position-wise equality of all honest executed logs (Theorem 5.3). *)
