(** The runtime seam between the Leopard state machine and whatever
    hosts it.

    {!Replica} is written against this record alone: a clock, a timer
    service, a message plane and a CPU-cost sink. Two implementations
    exist — {!of_sim} wraps the discrete-event engine and the simulated
    network (the n=300+ study tool), and [Transport.Runtime.platform]
    wraps the real-socket event loop (deployable replicas over TCP).
    The sim wrapper is a set of one-line closures over exactly the calls
    {!Replica} used to make directly, so threading the seam changes no
    simulated behaviour (the byte-identical-report test pins this).

    Instants are {!Sim.Sim_time.t} in both worlds: nanoseconds since the
    start of the simulation, or since the start of the socket event
    loop. *)

type t = {
  n : int;  (** number of replicas in the deployment *)
  now : unit -> Sim.Sim_time.t;
  schedule : delay:Sim.Sim_time.span -> (unit -> unit) -> unit;
      (** run a callback [delay] from now. Replicas never cancel, so no
          handle is returned; same-instant callbacks fire in schedule
          order (FIFO) on both implementations. *)
  schedule_at : at:Sim.Sim_time.t -> (unit -> unit) -> unit;
  set_handler : (src:Net.Node_id.t -> Msg.t -> unit) -> unit;
      (** install the replica's delivery callback (exactly once, at
          construction) *)
  send : dst:Net.Node_id.t -> Msg.t -> unit;
      (** unicast; sending to self delivers through loopback *)
  multicast : Msg.t -> unit;  (** unicast to every replica except self *)
  charge_egress : size:int -> category:string -> unit;
      (** account external egress (client acks). A bandwidth-model
          concept: the socket runtime ignores it (real acks would be
          real writes). *)
  submit : cost:Sim.Sim_time.span -> (unit -> unit) -> unit;
      (** run a callback after charging [cost] of CPU time. The sim
          charges it on the replica's {!Net.Cpu} core model; the socket
          runtime runs the task at the next loop turn (the real crypto
          already cost real time). FIFO w.r.t. previously submitted
          work in both. *)
  submit_ns : cost_ns:int -> (unit -> unit) -> unit;
      (** {!submit} with the cost as a nanosecond int (allocation-free
          sim hot path) *)
  set_down : bool -> unit;
      (** fail-stop support: a down replica neither sends nor receives *)
  verify : Verify.dispatch;
      (** evaluate a verification job and continue with the verdict. The
          sim plane continues synchronously at the dispatch point
          ({!Verify.inline}, or {!Verify.blocking} when a pool is
          attached — both keep reports byte-identical); the socket
          runtime may continue asynchronously at a later loop tick
          ({!Verify.pooled}), so continuations must re-check captured
          replica state. *)
  store : Store.sink;
      (** durable state. {!Replica} logs votes and certificates here
          before sending them and [Replica.recover] replays them after a
          process restart; {!Store.null} (the sim default) disables
          persistence entirely. The log callback is synchronous and
          schedules nothing, so attaching a sink never perturbs the
          event order. *)
  pressure : unit -> float;
      (** egress queue pressure: 0 when the outbound buffers are idle,
          reaching 1 at the transport's high-water mark (and beyond it
          while consensus-critical headroom is in use). The sim plane
          models no finite egress buffer and always reports 0, so any
          pressure-gated behaviour is inert there; the socket runtime
          reports [Transport.Conn.pressure]. *)
}

val of_sim :
  ?verify_pool:Exec.Pool.t ->
  ?store:Store.sink ->
  engine:Sim.Engine.t ->
  network:Msg.t Net.Network.t ->
  id:Net.Node_id.t ->
  cores:int ->
  unit ->
  t
(** The simulator implementation: clock and timers from [engine],
    messaging from [network] (as replica [id]), CPU costs charged on a
    fresh [cores]-core {!Net.Cpu}. [verify_pool] selects
    {!Verify.blocking} over that pool instead of {!Verify.inline}: real
    parallel crypto with unchanged completion points, so the report
    bytes do not depend on the choice (pinned by test). [store] defaults
    to {!Store.null} (no persistence); restart scenarios pass
    {!Store.mem} sinks. *)
