#!/usr/bin/env bash
# Per-bench-id perf trend: compares the working-tree BENCH_*.json
# baselines against the committed ones and prints one line per bench id,
#
#   bench-trend|BENCH_micro.json|name=sha256/64B|ns_per_op 947.8 -> 950.1 (+0.2%)
#
# Usage:
#   scripts/bench_trend.sh [REF]     # default REF: HEAD
#
# Regenerate a baseline first (e.g. `make bench-micro`), then run this
# to see what moved before committing it. Ids present only on one side
# are reported as new/removed. Exit status is always 0 — this is a
# report, not a gate (the gate is --check-regressions).
set -u
cd "$(dirname "$0")/.."
ref="${1:-HEAD}"

# trend FILE IDKEYS METRIC — IDKEYS is a space-separated list of JSON
# keys whose values (joined) identify a benchmark line; METRIC is the
# headline number to diff. Lines without METRIC are skipped, so one file
# can hold several benchmark shapes (BENCH_verify.json does).
trend() {
  local file="$1" idkeys="$2" metric="$3"
  [ -f "$file" ] || return 0
  local base
  if ! base=$(git show "$ref:$file" 2>/dev/null); then
    echo "bench-trend|$file|no baseline at $ref"
    return 0
  fi
  awk -v idkeys="$idkeys" -v metric="$metric" -v file="$file" '
    function getval(line, key,    re, s) {
      re = "\"" key "\":[ ]*"
      if (!match(line, re)) return ""
      s = substr(line, RSTART + RLENGTH)
      sub(/^"/, "", s)
      sub(/[",}].*$/, "", s)
      return s
    }
    function getid(line,    i, id, v) {
      id = ""
      for (i = 1; i <= nk; i++) {
        v = getval(line, keys[i])
        if (v != "") id = id (id == "" ? "" : ",") keys[i] "=" v
      }
      return id
    }
    BEGIN { nk = split(idkeys, keys, " ") }
    {
      m = getval($0, metric)
      if (m == "") next
      id = getid($0)
      if (id == "") next
      if (pass == "base") { base[id] = m; order[++n] = id }
      else {
        seen[id] = 1
        if (id in base) {
          b = base[id] + 0
          c = m + 0
          if (b != 0)
            printf "bench-trend|%s|%s|%s %s -> %s (%+.1f%%)\n",
              file, id, metric, base[id], m, (c - b) / b * 100
          else
            printf "bench-trend|%s|%s|%s %s -> %s\n", file, id, metric, base[id], m
        } else
          printf "bench-trend|%s|%s|new id (no entry at ref)\n", file, id
      }
    }
    END {
      if (pass != "base")
        for (i = 1; i <= n; i++)
          if (!(order[i] in seen))
            printf "bench-trend|%s|%s|removed (present only at ref)\n", file, order[i]
    }
  ' pass=base - pass=cur "$file" <<<"$base"
}

trend BENCH_micro.json "name" ns_per_op
trend BENCH_sim.json "n" events_per_s
trend BENCH_net.json "n" frames_per_s
trend BENCH_net.json "leg n" consensus_frames_per_s
trend BENCH_verify.json "leg" blocks_per_s
trend BENCH_verify.json "tcp_n pool" throughput
trend BENCH_store.json "policy" records_per_s
exit 0
