#!/usr/bin/env bash
# The CI gate. Runs every step even after a failure so a single run
# reports everything, then prints a machine-readable PASS/FAIL table
# (one `ci-step|name|status|seconds` line per step) and exits non-zero
# if any step failed.
#
# Each step's output is also captured under _ci_logs/<step>.log; when
# $GITHUB_STEP_SUMMARY is set (GitHub Actions), the same table is
# appended there as GitHub-flavored markdown, with each bench step's
# regression verdict (including the worst offender on failure) pulled
# from its log into the Note column.
set -u -o pipefail
cd "$(dirname "$0")/.."

mkdir -p _ci_logs
declare -a STEPS=() STATUSES=() TIMES=() NOTES=()

run_step() {
  local name="$1"
  shift
  local t0=$SECONDS
  echo "==> $name: $*"
  local status log="_ci_logs/$name.log"
  if "$@" 2>&1 | tee "$log"; then status=PASS; else status=FAIL; fi
  local note=""
  case "$name" in
  bench-*)
    # the bench's own verdict line: "micro: PASS no regressions ..." or
    # "micro: FAIL ... (worst <id> <factor>x)"
    note=$(grep -E ': (PASS|FAIL) ' "$log" | tail -1 || true)
    ;;
  esac
  STEPS+=("$name")
  STATUSES+=("$status")
  TIMES+=("$((SECONDS - t0))")
  NOTES+=("$note")
}

# fmt is enforced wherever ocamlformat exists (CI installs the pinned
# version); a machine without it records SKIP instead of a spurious FAIL.
if command -v ocamlformat >/dev/null 2>&1; then
  run_step fmt dune build @fmt
else
  echo "==> fmt: ocamlformat not installed, skipping"
  STEPS+=(fmt)
  STATUSES+=(SKIP)
  TIMES+=(0)
  NOTES+=("")
fi

run_step build dune build
run_step tier1-tests dune runtest
run_step bench-micro dune exec bench/main.exe -- --only micro --fast --check-regressions
run_step bench-macro dune exec bench/main.exe -- --only macro --fast --check-regressions
run_step bench-net dune exec bench/main.exe -- --only net --fast --check-regressions
run_step bench-verify dune exec bench/main.exe -- --only verify --fast --check-regressions
run_step bench-store dune exec bench/main.exe -- --only store --fast --check-regressions
run_step tcp-smoke dune exec bin/leopard_cli.exe -- local-cluster -n 4 --load 2000 \
  --duration 3 --min-confirmed 1000 --drain 10 --metrics-out _ci_logs/tcp-smoke.prom
run_step chaos dune exec bin/leopard_cli.exe -- chaos --fast --trace-dir _chaos

echo
fail=0
for i in "${!STEPS[@]}"; do
  printf 'ci-step|%s|%s|%ss\n' "${STEPS[$i]}" "${STATUSES[$i]}" "${TIMES[$i]}"
  [ "${STATUSES[$i]}" = FAIL ] && fail=1
done

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
  {
    echo "## CI gate"
    echo
    echo "| Step | Status | Time | Note |"
    echo "|------|--------|-----:|------|"
    for i in "${!STEPS[@]}"; do
      case "${STATUSES[$i]}" in
      PASS) icon="✅" ;;
      FAIL) icon="❌" ;;
      *) icon="⏭️" ;;
      esac
      note=${NOTES[$i]//|/\\|}
      printf '| %s | %s %s | %ss | %s |\n' \
        "${STEPS[$i]}" "$icon" "${STATUSES[$i]}" "${TIMES[$i]}" "$note"
    done
    echo
  } >>"$GITHUB_STEP_SUMMARY"
fi

exit $fail
