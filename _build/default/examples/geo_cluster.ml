(* Geo-distributed deployment: three regions, realistic inter-region RTTs.

     dune exec examples/geo_cluster.exe

   The paper notes (§4.1) that geo-distributed replicas receive requests
   from their neighbouring clients, so datablocks from different regions
   are naturally disjoint. This example runs a 12-replica Leopard
   cluster spread over three regions (intra-region ~1 ms, us-eu ~40 ms,
   us-ap ~90 ms, eu-ap ~120 ms one-way) and compares confirmation
   latency against a single-region deployment. *)

open Sim

let regions_of id = id mod 3 (* round-robin: us, eu, ap *)

let one_way a b =
  match (min a b, max a b) with
  | 0, 0 | 1, 1 | 2, 2 -> Sim_time.zero (* intra-region: base link delay only *)
  | 0, 1 -> Sim_time.ms 40
  | 0, 2 -> Sim_time.ms 90
  | 1, 2 -> Sim_time.ms 120
  | _ -> assert false

let run ~geo =
  let cfg =
    Core.Config.make ~n:12 ~alpha:100 ~bft_size:4 ~datablock_timeout:(Sim_time.ms 200)
      ~proposal_timeout:(Sim_time.ms 300) ~fetch_grace:(Sim_time.ms 800) ()
  in
  let spec =
    Core.Runner.spec ~cfg ~load:5_000. ~duration:(Sim_time.s 12) ~warmup:(Sim_time.s 2)
      ~load_until:(Sim_time.s 8) ()
  in
  let t = Core.Runner.create spec in
  if geo then
    Net.Network.set_extra_delay (Core.Runner.network t)
      (Net.Partial_sync.geo ~regions:regions_of ~rtt_matrix:one_way);
  Core.Runner.run_until t (Sim_time.s 12);
  Core.Runner.report t

let () =
  let local = run ~geo:false in
  let geo = run ~geo:true in
  let p50 (r : Core.Runner.report) = Stats.Histogram.quantile r.Core.Runner.latency 0.5 in
  Format.printf "single region:   throughput %.0f req/s, p50 latency %4.0f ms, safety %b@."
    local.Core.Runner.throughput
    (1000. *. p50 local)
    local.Core.Runner.safety_ok;
  Format.printf "three regions:   throughput %.0f req/s, p50 latency %4.0f ms, safety %b@."
    geo.Core.Runner.throughput
    (1000. *. p50 geo)
    geo.Core.Runner.safety_ok;
  Format.printf
    "@.the wide-area deployment pays RTTs in datablock delivery and voting,@.\
     but throughput is unchanged: dissemination work is still spread over@.\
     all replicas, and each region's datablocks carry its own clients' load.@.";
  if not (local.Core.Runner.safety_ok && geo.Core.Runner.safety_ok) then exit 1;
  if not (geo.Core.Runner.throughput > 0.8 *. local.Core.Runner.throughput) then exit 1
