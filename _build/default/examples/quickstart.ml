(* Quickstart: a 7-replica Leopard deployment confirming client requests.

     dune exec examples/quickstart.exe

   Builds a cluster with the public API, drives an open-loop workload
   for ten simulated seconds, and prints what the paper's evaluation
   cares about: confirmed throughput, client latency, and how little of
   the leader's bandwidth the protocol needs. *)

let () =
  (* 1. Protocol configuration: n = 7 tolerates f = 2 Byzantine replicas.
     Small batch sizes keep this demo snappy; Config.make defaults to the
     paper's Table 2 values for production-scale runs. *)
  let cfg =
    Core.Config.make ~n:7 ~alpha:100 ~bft_size:10
      ~datablock_timeout:(Sim.Sim_time.ms 200) ~proposal_timeout:(Sim.Sim_time.ms 300) ()
  in
  Format.printf "configuration: %a@." Core.Config.pp cfg;

  (* 2. An experiment spec: 5000 requests/s of 128-byte payloads for 10
     simulated seconds on c5.xlarge-like links, with the maximum
     tolerable number of silent Byzantine replicas. *)
  let spec =
    Core.Runner.spec ~cfg ~load:5_000. ~duration:(Sim.Sim_time.s 10)
      ~warmup:(Sim.Sim_time.s 2) ~byzantine:(Core.Runner.silent_f cfg) ()
  in

  (* 3. Run and read the report. *)
  let r = Core.Runner.run spec in
  Format.printf "offered requests:    %d@." r.Core.Runner.offered;
  Format.printf "confirmed requests:  %d@." r.Core.Runner.confirmed;
  Format.printf "throughput:          %.0f req/s@." r.Core.Runner.throughput;
  Format.printf "latency:             %a@." Stats.Histogram.pp_summary r.Core.Runner.latency;
  Format.printf "leader bandwidth:    %.1f Mbps (of 4900 available)@."
    (r.Core.Runner.leader_bps /. 1e6);
  Format.printf "BFTblocks executed:  %d@." r.Core.Runner.executed_blocks;
  Format.printf "safety holds:        %b@." r.Core.Runner.safety_ok;
  Format.printf "all requests landed: %b@." r.Core.Runner.all_confirmed;
  if not (r.Core.Runner.safety_ok && r.Core.Runner.throughput > 0.) then exit 1
