(* Fast payments: the paper's low-latency acknowledgment option (§4.3).

     dune exec examples/fast_payments.exe

   A payment processor wants a receipt as soon as its transfer is
   *confirmed* (a confirmed BFTblock will be executed anyway — the
   paper's fast-response option), and wants that receipt to be
   independently checkable. Datablock digests are Merkle roots over the
   carried request batches, so a replica can hand the client a compact
   inclusion proof: "your batch is in datablock D" plus "D is linked by
   the confirmed BFTblock at serial sn". *)

let () =
  let cfg =
    Core.Config.make ~n:4 ~alpha:50 ~bft_size:8
      ~datablock_timeout:(Sim.Sim_time.ms 100) ~proposal_timeout:(Sim.Sim_time.ms 200) ()
  in
  let spec =
    Core.Runner.spec ~cfg ~load:2_000. ~duration:(Sim.Sim_time.s 8) ~warmup:(Sim.Sim_time.s 1)
      ~load_until:(Sim.Sim_time.s 5) ()
  in
  let t = Core.Runner.create spec in
  Core.Runner.run_until t (Sim.Sim_time.s 8);
  let r = Core.Runner.report t in
  Format.printf "payments offered %d, confirmed %d, p50 latency %.0f ms@." r.Core.Runner.offered
    r.Core.Runner.confirmed
    (1000. *. Stats.Histogram.quantile r.Core.Runner.latency 0.5);

  (* Build a receipt for one confirmed payment from any honest replica's
     state: find an executed BFTblock, a datablock it links, and a batch
     inside that datablock. *)
  let replica = (Core.Runner.replicas t).(0) in
  let ledger = Core.Replica.ledger replica in
  let pool = Core.Replica.pool replica in
  let receipt =
    let rec scan sn =
      if sn > Core.Ledger.executed_up_to ledger then None
      else
        match Core.Ledger.get ledger sn with
        | Some block when not block.Core.Bftblock.dummy ->
          let dbs = List.filter_map (Core.Datablock_pool.find pool) block.Core.Bftblock.links in
          (match dbs with
           | db :: _ when db.Core.Datablock.batches <> [] -> Some (sn, block, db)
           | _ -> scan (sn + 1))
        | Some _ | None -> scan (sn + 1)
    in
    scan (Core.Replica.low_watermark replica + 1)
  in
  match receipt with
  | None ->
    (* Executed blocks below the checkpoint watermark are garbage
       collected; at this small scale that can consume everything. *)
    Format.printf "all executed datablocks already checkpointed away — rerun with more load@."
  | Some (sn, block, db) ->
    let batches = db.Core.Datablock.batches in
    let payment = List.hd batches in
    let leaves = List.map Workload.Request.hash batches in
    let index = 0 in
    (match Crypto.Merkle.prove leaves index with
     | None -> assert false
     | Some proof ->
       Format.printf "@.receipt for payment batch #%d (%d transfers):@."
         payment.Workload.Request.id payment.Workload.Request.count;
       Format.printf "  confirmed in BFTblock sn=%d (view %d, %d datablock links)@." sn
         block.Core.Bftblock.view
         (List.length block.Core.Bftblock.links);
       Format.printf "  datablock %a by %a@." Crypto.Hash.pp (Core.Datablock.hash db)
         Net.Node_id.pp db.Core.Datablock.header.creator;
       Format.printf "  Merkle proof: %d bytes@." (Crypto.Merkle.proof_size_bytes proof);
       let ok =
         Crypto.Merkle.verify_proof ~root:db.Core.Datablock.header.digest
           ~leaf:(Workload.Request.hash payment) proof
       in
       Format.printf "  client-side verification: %b@." ok;
       (* And a tampered payment must fail. *)
       let forged =
         Workload.Request.make ~id:999_999 ~count:1 ~size_each:128 ~born:Sim.Sim_time.zero ()
       in
       let forged_ok =
         Crypto.Merkle.verify_proof ~root:db.Core.Datablock.header.digest
           ~leaf:(Workload.Request.hash forged) proof
       in
       Format.printf "  forged payment accepted: %b (must be false)@." forged_ok;
       if not ok || forged_ok then exit 1)
