(* Shard sizing: why sharding needs a scalable base BFT protocol (§2).

     dune exec examples/shard_sizing.exe

   A sharded ledger samples committees from a network with a fraction
   rho of Byzantine nodes. Each committee runs BFT and is only safe if
   fewer than a third of its members are Byzantine — Table 1 gives the
   failure probability per size. This example sizes committees for
   target failure rates and then actually runs one Leopard committee of
   a viable size, Byzantine members included. *)

let () =
  Format.printf "committee failure probability (Table 1):@.";
  List.iter
    (fun (rho, cells) ->
      Format.printf "  rho = %.2f:@." rho;
      List.iter (fun (n, p) -> Format.printf "    n = %-4d  P[unsafe] = %.2e@." n p) cells)
    (Analysis.Shard_prob.table1 ());

  Format.printf "@.minimum committee sizes:@.";
  List.iter
    (fun (rho, target) ->
      let n = Analysis.Shard_prob.min_shard_size ~rho ~target in
      Format.printf "  rho = %.2f, target %.0e -> %d members@." rho target n)
    [ (0.25, 1e-3); (0.25, 1e-6); (0.20, 1e-6) ];
  Format.printf
    "@.hundreds of members per shard: the base BFT protocol must stay fast at that scale.@.";

  (* Run one committee: 31 members, the full f = 10 silent Byzantine. *)
  let n = 31 in
  let cfg =
    Core.Config.make ~n ~alpha:200 ~bft_size:10
      ~datablock_timeout:(Sim.Sim_time.ms 200) ~proposal_timeout:(Sim.Sim_time.ms 300) ()
  in
  Format.printf "@.running one committee of %d (f = %d silent Byzantine members)...@." n
    (Core.Config.max_faulty cfg);
  let spec =
    Core.Runner.spec ~cfg ~load:20_000. ~duration:(Sim.Sim_time.s 10) ~warmup:(Sim.Sim_time.s 2)
      ~byzantine:(Core.Runner.silent_f cfg) ()
  in
  let r = Core.Runner.run spec in
  Format.printf "  committee throughput: %.0f req/s@." r.Core.Runner.throughput;
  Format.printf "  committee latency:    %a@." Stats.Histogram.pp_summary r.Core.Runner.latency;
  Format.printf "  safety: %b@." r.Core.Runner.safety_ok;
  if not r.Core.Runner.safety_ok then exit 1
