examples/byzantine_leader.ml: Core Format Hashtbl List Net Sim
