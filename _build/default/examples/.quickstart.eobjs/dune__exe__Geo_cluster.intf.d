examples/geo_cluster.mli:
