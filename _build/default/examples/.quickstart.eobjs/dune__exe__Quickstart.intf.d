examples/quickstart.mli:
