examples/geo_cluster.ml: Core Format Net Sim Sim_time Stats
