examples/shard_sizing.ml: Analysis Core Format List Sim Stats
