examples/fast_payments.mli:
