examples/quickstart.ml: Core Format Sim Stats
