examples/shard_sizing.mli:
