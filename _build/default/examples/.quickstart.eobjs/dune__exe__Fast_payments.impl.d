examples/fast_payments.ml: Array Core Crypto Format List Net Sim Stats Workload
