(* Surviving a Byzantine leader: the view-change path (§4.3) end to end.

     dune exec examples/byzantine_leader.exe

   The view-1 leader fail-stops mid-run. Clients re-send their
   unacknowledged requests; honest replicas propagate the re-sent
   requests in datablocks, time out, exchange view-change messages, and
   the view-2 leader redoes outstanding agreements and resumes. The
   protocol trace shows each step. *)

let () =
  let cfg =
    Core.Config.make ~n:7 ~alpha:100 ~bft_size:5 ~view_timeout:(Sim.Sim_time.s 1)
      ~datablock_timeout:(Sim.Sim_time.ms 200) ~proposal_timeout:(Sim.Sim_time.ms 300) ()
  in
  let leader = Core.Config.leader_of_view cfg 1 in
  Format.printf "view 1 leader is %a; it will crash at t=3s@." Net.Node_id.pp leader;
  let spec =
    Core.Runner.spec ~cfg ~load:3_000. ~duration:(Sim.Sim_time.s 20) ~warmup:(Sim.Sim_time.s 1)
      ~load_until:(Sim.Sim_time.s 8) ~stop_leader_at:(Sim.Sim_time.s 3)
      ~client_resend_timeout:(Sim.Sim_time.s 1) ~trace:true ()
  in
  let t = Core.Runner.create spec in
  Core.Runner.run_until t (Sim.Sim_time.s 20);
  let r = Core.Runner.report t in

  (* Narrate the interesting trace events. *)
  let interesting = [ "leader.stopped"; "viewchange.trigger"; "view.entered" ] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (e : Sim.Trace.entry) ->
      if List.mem e.Sim.Trace.tag interesting && not (Hashtbl.mem seen (e.tag, e.detail)) then begin
        Hashtbl.add seen (e.tag, e.detail) ();
        Format.printf "  %a@." Sim.Trace.pp_entry e
      end)
    (Sim.Trace.entries (Core.Runner.trace t));

  Format.printf "@.final view:          %d (leader %a)@." r.Core.Runner.final_view
    Net.Node_id.pp
    (Core.Config.leader_of_view cfg r.Core.Runner.final_view);
  (match r.Core.Runner.vc_trigger_to_entry with
   | Some s -> Format.printf "view change took:    %.2f s@." s
   | None -> Format.printf "view change took:    (not measured)@.");
  Format.printf "view-change traffic: %.2f MB@." (float_of_int r.Core.Runner.vc_bytes /. 1e6);
  Format.printf "offered/confirmed:   %d/%d@." r.Core.Runner.offered r.Core.Runner.confirmed;
  Format.printf "safety held:         %b@." r.Core.Runner.safety_ok;
  Format.printf "liveness recovered:  %b@." r.Core.Runner.all_confirmed;
  if not (r.Core.Runner.safety_ok && r.Core.Runner.all_confirmed && r.Core.Runner.final_view >= 2)
  then exit 1
