(* Shared machinery for the per-figure/table benches: canonical runs with
   memoization (several figures read the same sweep), duration scaling,
   and printing helpers. *)

open Sim

let fast_mode = ref false

let say fmt = Format.printf (fmt ^^ "@.")

let header ~id ~title ~paper =
  say "";
  say "================================================================";
  say "%s — %s" id title;
  say "  paper: %s" paper;
  say "================================================================"

(* Offered loads (requests/s). Leopard is driven at a high offered load it
   can sustain at every n; HotStuff is driven to saturation. *)
let leopard_load = 1.5e5
let hotstuff_load = 3.0e5

(* Simulated durations grow with n: at the paper's Table 2 batch sizes a
   BFTblock carries alpha x BFTsize requests, so large n needs a longer
   window to capture several confirmations. *)
let leopard_durations n =
  (* The window must cover several BFTblocks (alpha x BFTsize requests
     each) or block-boundary quantization skews the measured rate. *)
  let d, w =
    if n <= 64 then (25, 7)
    else if n <= 128 then (40, 10)
    else if n <= 256 then (60, 14)
    else (85, 20)
  in
  if !fast_mode then (Sim_time.s (max 10 (d / 3)), Sim_time.s (max 3 (w / 3)))
  else (Sim_time.s d, Sim_time.s w)

let hotstuff_durations _n =
  if !fast_mode then (Sim_time.s 8, Sim_time.s 3) else (Sim_time.s 15, Sim_time.s 5)

(* ------------------------------------------------------------------ *)
(* Memoized canonical runs                                             *)
(* ------------------------------------------------------------------ *)

let leopard_cache : (string, Core.Runner.report) Hashtbl.t = Hashtbl.create 16

let run_leopard ?(load = leopard_load) ?link ?alpha ?bft_size ?(payload = 128)
    ?priority_channels ?leader_generates_datablocks n =
  let key =
    Printf.sprintf "%d:%f:%s:%s:%s:%d:%s:%s" n load
      (match link with
       | Some l -> Printf.sprintf "%f/%d" l.Net.Network.out_bps l.Net.Network.lanes
       | None -> "-")
      (match alpha with Some a -> string_of_int a | None -> "-")
      (match bft_size with Some b -> string_of_int b | None -> "-")
      payload
      (match priority_channels with Some b -> string_of_bool b | None -> "-")
      (match leader_generates_datablocks with Some b -> string_of_bool b | None -> "-")
  in
  match Hashtbl.find_opt leopard_cache key with
  | Some r -> r
  | None ->
    let cfg =
      Core.Config.make ~n ?alpha ?bft_size ~payload ?priority_channels
        ?leader_generates_datablocks ()
    in
    let duration, warmup = leopard_durations n in
    let sp =
      Core.Runner.spec ~cfg ?link ~load ~duration ~warmup
        ~byzantine:(Core.Runner.silent_f cfg) ()
    in
    let r = Core.Runner.run sp in
    Hashtbl.add leopard_cache key r;
    r

let hotstuff_cache : (string, Hotstuff.Hs_runner.report) Hashtbl.t = Hashtbl.create 16

let run_hotstuff ?(load = hotstuff_load) ?link ?(batch = 800) ?(payload = 128) n =
  let key =
    Printf.sprintf "%d:%f:%s:%d:%d" n load
      (match link with Some l -> string_of_float l.Net.Network.out_bps | None -> "-")
      batch payload
  in
  match Hashtbl.find_opt hotstuff_cache key with
  | Some r -> r
  | None ->
    let cfg = Hotstuff.Hs_config.make ~n ~batch_size:batch ~payload () in
    let duration, warmup = hotstuff_durations n in
    let sp = Hotstuff.Hs_runner.spec ~cfg ?link ~load ~duration ~warmup () in
    let r = Hotstuff.Hs_runner.run sp in
    Hashtbl.add hotstuff_cache key r;
    r

let run_pbft ?(load = hotstuff_load) ?(batch = 400) ?(payload = 128) n =
  let cfg = Pbft.make_cfg ~n ~batch_size:batch ~payload () in
  let duration, warmup = hotstuff_durations n in
  Pbft.run (Pbft.spec ~cfg ~load ~duration ~warmup ())

(* ------------------------------------------------------------------ *)
(* Formatting helpers                                                  *)
(* ------------------------------------------------------------------ *)

let kops v = Printf.sprintf "%.1f" (v /. 1e3)
let mbps_str bps = Printf.sprintf "%.1f" (bps /. 1e6)
let gbps_str bps = Printf.sprintf "%.2f" (bps /. 1e9)
let seconds v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v

let latency_p50 h =
  let v = Stats.Histogram.quantile h 0.5 in
  if Float.is_nan v then "-" else Printf.sprintf "%.2f" v
