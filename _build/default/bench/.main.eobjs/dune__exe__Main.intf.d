bench/main.mli:
