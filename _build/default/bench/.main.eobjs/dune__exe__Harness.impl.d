bench/harness.ml: Core Float Format Hashtbl Hotstuff Net Pbft Printf Sim Sim_time Stats
