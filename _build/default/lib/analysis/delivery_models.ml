type t = {
  leader_egress_per_bit : float;
  replica_egress_per_bit : float;
  delivery_hops : float;
  coverage : float;
  cpu_overhead_per_bit : float;
}

let direct_leader ~n =
  { leader_egress_per_bit = float_of_int (n - 1);
    replica_egress_per_bit = 0.;
    delivery_hops = 1.;
    coverage = 1.;
    cpu_overhead_per_bit = 0. }

let leopard_decoupled ~n ~alpha_bytes ~beta =
  { leader_egress_per_bit = beta *. float_of_int (n - 1) /. alpha_bytes;
    replica_egress_per_bit = 1.;
    (* each replica ships its Λ/(n−1) share to n−1 peers: Λ per second *)
    delivery_hops = 1.;
    coverage = 1.;
    cpu_overhead_per_bit = 0. }

let erasure_coded ~n ~code_rate_inv ~byz_fraction =
  ignore n;
  ignore byz_fraction;
  { leader_egress_per_bit = code_rate_inv;
    replica_egress_per_bit = code_rate_inv;
    delivery_hops = 2.;
    (* disperse, then reconstruct/forward *)
    coverage = 1.;
    (* tolerates up to 1/3 Byzantine by code redundancy *)
    cpu_overhead_per_bit = 2. *. code_rate_inv (* encode at source, decode at each receiver *) }

let broadcast_tree ~n ~fanout ~byz_fraction =
  assert (fanout >= 2);
  (* Expected fraction of nodes reachable through all-honest ancestor
     chains in a complete fanout-ary tree with an honest root (the
     sender): a node at depth d has d - 1 inner ancestors below the
     root, each honest with probability 1 - ρ. *)
  let rec count_levels remaining d acc_nodes acc_reach =
    if remaining <= 0 then (acc_nodes, acc_reach)
    else
      let level_size = min remaining (int_of_float (float_of_int fanout ** float_of_int d)) in
      let reach = float_of_int level_size *. ((1. -. byz_fraction) ** float_of_int (max 0 (d - 1))) in
      count_levels (remaining - level_size) (d + 1)
        (acc_nodes + level_size) (acc_reach +. reach)
  in
  let nodes, reached = count_levels (n - 1) 1 0 0. in
  let depth = ceil (log (float_of_int n) /. log (float_of_int fanout)) in
  { leader_egress_per_bit = float_of_int fanout;
    replica_egress_per_bit = float_of_int fanout;
    delivery_hops = depth;
    coverage = (if nodes = 0 then 1. else reached /. float_of_int nodes);
    cpu_overhead_per_bit = 0. }
