let failure_probability ~rho ~n = Binomial.tail_above ~n ~p:rho ((n - 1) / 3)

let table1_columns = [ 16; 32; 64; 128; 256; 400; 600 ]

let table1 () =
  List.map
    (fun rho -> (rho, List.map (fun n -> (n, failure_probability ~rho ~n)) table1_columns))
    [ 0.25; 0.20 ]

let min_shard_size ~rho ~target =
  let rec go n = if failure_probability ~rho ~n <= target then n else go (n + 1) in
  go 4
