(** Binomial tail probabilities in log space.

    Exact log-factorials (cumulative sums) keep the tiny tails of
    Table 1 (down to 10^-14) accurate where naive products underflow. *)

val log_factorial : int -> float
(** ln(n!). Requires [n >= 0]. *)

val log_choose : int -> int -> float
(** ln(C(n, k)); [neg_infinity] when [k < 0 || k > n]. *)

val pmf : n:int -> p:float -> int -> float
(** P[X = k] for X ~ Binomial(n, p). *)

val cdf : n:int -> p:float -> int -> float
(** P[X <= k]. *)

val tail_above : n:int -> p:float -> int -> float
(** P[X > k] = 1 − CDF(k), computed by summing the smaller side for
    accuracy. *)
