let table = ref [| 0.0 |] (* log_factorial.(i) = ln(i!) *)

let ensure n =
  let len = Array.length !table in
  if n >= len then begin
    let nlen = max (n + 1) (2 * len) in
    let t = Array.make nlen 0.0 in
    Array.blit !table 0 t 0 len;
    for i = len to nlen - 1 do
      t.(i) <- t.(i - 1) +. log (float_of_int i)
    done;
    table := t
  end

let log_factorial n =
  assert (n >= 0);
  ensure n;
  !table.(n)

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let log_pmf ~n ~p k =
  if p <= 0. then (if k = 0 then 0. else neg_infinity)
  else if p >= 1. then (if k = n then 0. else neg_infinity)
  else log_choose n k +. (float_of_int k *. log p) +. (float_of_int (n - k) *. log (1. -. p))

let pmf ~n ~p k = exp (log_pmf ~n ~p k)

let cdf ~n ~p k =
  if k < 0 then 0.
  else if k >= n then 1.
  else begin
    let acc = ref 0. in
    for i = 0 to k do
      acc := !acc +. pmf ~n ~p i
    done;
    Float.min 1.0 !acc
  end

let tail_above ~n ~p k =
  if k >= n then 0.
  else if k < 0 then 1.
  else begin
    (* Sum the upper side directly: it is the small one in Table 1. *)
    let acc = ref 0. in
    for i = k + 1 to n do
      acc := !acc +. pmf ~n ~p i
    done;
    Float.min 1.0 !acc
  end
