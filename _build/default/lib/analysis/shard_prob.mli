(** Shard-sampling failure probability (Table 1, §2).

    When a shard of [n] replicas is sampled uniformly from a network with
    a fraction ρ of Byzantine nodes, the shard's BFT instance is unsafe
    when more than ⌊(n−1)/3⌋ of its members are Byzantine. This module
    computes that probability — the paper's argument for why shards need
    multiple hundreds of members, i.e. why a scalable base BFT protocol
    is a prerequisite for sharding. *)

val failure_probability : rho:float -> n:int -> float
(** P[X > ⌊(n−1)/3⌋] with X ~ Binomial(n, ρ). *)

val table1 : unit -> (float * (int * float) list) list
(** The paper's Table 1: rows ρ ∈ {1/4, 1/5}, columns
    n ∈ {16, 32, 64, 128, 256, 400, 600}. *)

val min_shard_size : rho:float -> target:float -> int
(** Smallest [n] whose failure probability is below [target]. *)
