type t = {
  datablock_fill : float;
  bftblock_fill : float;
  network : float;
  total : float;
}

let leopard ~n ~load ~alpha ~bft_size ~delta =
  assert (n > 1 && load > 0. && alpha > 0 && bft_size > 0 && delta >= 0.);
  (* Per-replica arrival: load / (n - 1); a datablock fills in
     alpha / that. The request arrives uniformly within the fill window,
     so it waits half of it on average; likewise the datablock waits half
     the BFTblock accumulation window (all n - 1 producers feed it, so
     the window is bft_size * alpha / load). *)
  let per_replica = load /. float_of_int (n - 1) in
  let datablock_fill = 0.5 *. (float_of_int alpha /. per_replica) in
  let bftblock_fill = 0.5 *. (float_of_int (bft_size * alpha) /. load) in
  let network = 7. *. delta in
  { datablock_fill; bftblock_fill; network;
    total = datablock_fill +. bftblock_fill +. network }

let pp fmt t =
  Format.fprintf fmt "db-fill %.3fs + bft-fill %.3fs + 7delta %.3fs = %.3fs" t.datablock_fill
    t.bftblock_fill t.network t.total
