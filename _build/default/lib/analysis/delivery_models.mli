(** Cost models of data-delivery alternatives (§2's comparison).

    The paper argues for decoupled datablock dissemination over two other
    load-balancing techniques: erasure-coded broadcast and broadcast
    trees. These closed-form models back the ablation benches: per-bit
    egress at the bottleneck replica, delivery depth in hops, and
    fault-robustness of coverage. *)

type t = {
  leader_egress_per_bit : float;
      (** bits sent by the most-loaded node per pending bit delivered *)
  replica_egress_per_bit : float;   (** same for an average other replica *)
  delivery_hops : float;            (** propagation depth until all replicas hold the bit *)
  coverage : float;
      (** expected fraction of honest replicas that receive the data when
          Byzantine nodes ([byz_fraction] of the population) drop instead
          of forwarding *)
  cpu_overhead_per_bit : float;
      (** extra coding work (normalized; 0 = none, erasure coding pays
          encode+decode proportional to the code expansion) *)
}

val direct_leader : n:int -> t
(** The leader sends every bit to every replica (HotStuff-style):
    [n − 1] per bit at the leader. *)

val leopard_decoupled : n:int -> alpha_bytes:float -> beta:float -> t
(** Non-leaders each carry Λ/(n−1); the leader ships hashes only. *)

val erasure_coded : n:int -> code_rate_inv:float -> byz_fraction:float -> t
(** Reliable broadcast via (n, n/c)-erasure coding: every replica
    (including the source) sends ~c bits per bit; tolerant to 1/3 faults;
    pays encode/decode CPU. [code_rate_inv] is c > 1 (Reed–Solomon: 2). *)

val broadcast_tree : n:int -> fanout:int -> byz_fraction:float -> t
(** A fanout-ary tree: per-node egress is [fanout] per bit, delivery
    takes ⌈log_fanout n⌉ hops, and a Byzantine inner node severs its
    whole subtree — coverage is the expected fraction of nodes whose
    ancestors are all honest. *)
