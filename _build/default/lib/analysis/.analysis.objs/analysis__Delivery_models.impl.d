lib/analysis/delivery_models.ml:
