lib/analysis/latency_model.ml: Format
