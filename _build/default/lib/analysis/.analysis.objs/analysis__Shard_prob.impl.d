lib/analysis/shard_prob.ml: Binomial List
