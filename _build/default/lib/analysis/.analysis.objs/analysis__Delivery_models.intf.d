lib/analysis/delivery_models.mli:
