lib/analysis/binomial.ml: Array Float
