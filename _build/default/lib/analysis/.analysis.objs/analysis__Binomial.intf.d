lib/analysis/binomial.mli:
