lib/analysis/latency_model.mli: Format
