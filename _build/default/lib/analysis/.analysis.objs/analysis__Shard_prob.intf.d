lib/analysis/shard_prob.mli:
