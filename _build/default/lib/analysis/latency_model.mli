(** Closed-form confirmation-latency model for Leopard.

    Explains Fig 9 (right): under the optimistic case a request's
    confirmation latency decomposes into batching delay — waiting for
    its datablock to fill with α requests at the per-replica arrival
    rate, then for the leader to accumulate BFTsize datablocks — plus
    the paper's 7δ of network hops (§5.2). With Table 2's α growing in
    [n], batching dominates and latency rises with scale while
    throughput stays flat. *)

type t = {
  datablock_fill : float;   (** expected wait for the datablock to fill, s *)
  bftblock_fill : float;    (** expected wait for the proposal to fill, s *)
  network : float;          (** the 7δ responsive path, s *)
  total : float;
}

val leopard :
  n:int -> load:float -> alpha:int -> bft_size:int -> delta:float -> t
(** [leopard ~n ~load ~alpha ~bft_size ~delta] models a uniform arrival
    of [load] requests/s spread over [n - 1] datablock producers with
    one-way network delay [delta] seconds. A request waits on average
    half its datablock's fill time (α·(n−1)/load), then the datablock
    waits on average half the proposal accumulation time
    (BFTsize·α/load), then 7δ. Requires positive arguments. *)

val pp : Format.formatter -> t -> unit
