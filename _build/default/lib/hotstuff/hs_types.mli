(** Chained HotStuff wire types (the baseline of §6).

    The comparator is the authors' libhotstuff: a stable leader batches
    client requests into blocks, each block carries a quorum certificate
    (QC) for its parent, and a block commits when it heads a three-chain.
    Unlike Leopard, the full request payload travels in the proposal —
    the leader's egress is Λ × (n − 1), Eq. (1). *)

type block = private {
  height : int;
  parent : Crypto.Hash.t;
  batch : Workload.Request.t list;
  req_count : int;
  payload_bytes : int;
  hash_memo : Crypto.Hash.t;
  wire_bytes : int;
}

val make_block :
  height:int -> parent:Crypto.Hash.t -> batch:Workload.Request.t list -> block

val block_hash : block -> Crypto.Hash.t
val genesis_hash : Crypto.Hash.t

type qc = {
  qc_height : int;
  qc_block : Crypto.Hash.t;
  qc_proof : Crypto.Threshold.aggregate;
}

type msg =
  | Proposal of { block : block; justify : qc option }
  | Vote of { height : int; block_hash : Crypto.Hash.t; share : Crypto.Threshold.share }

val vote_payload : height:int -> block_hash:Crypto.Hash.t -> string
(** What a vote's threshold share signs. *)

val wire_size : msg -> int
val meta : msg Net.Network.meta
