(** Chained HotStuff replica (stable leader, pipelined three-chain).

    The leader batches client requests into full blocks, proposes a new
    block whenever the previous height's QC forms, and aggregates votes
    into QCs. A block commits when it heads a three-chain of consecutive
    QCs. This is the state machine whose leader egress grows as
    Λ × (n − 1), the bottleneck the paper's Figures 1, 2, 9–12 chart. *)

type t

type hooks = {
  on_commit : id:Net.Node_id.t -> height:int -> Hs_types.block -> unit;
}

val no_hooks : hooks

val create :
  engine:Sim.Engine.t ->
  network:Hs_types.msg Net.Network.t ->
  cfg:Hs_config.t ->
  id:Net.Node_id.t ->
  leader:Net.Node_id.t ->
  tsetup:Crypto.Threshold.setup ->
  tkey:Crypto.Threshold.member_key ->
  ?silent:bool ->
  ?hooks:hooks ->
  unit ->
  t

val start : t -> unit
val submit : t -> Workload.Request.t -> unit
(** Client request arrival (clients submit to the leader in libhotstuff). *)

val id : t -> Net.Node_id.t
val committed_up_to : t -> int
val committed_block : t -> int -> Hs_types.block option
val mempool_pending : t -> int
