(** HotStuff cluster orchestration, mirroring {!Core.Runner} so benches
    can run the two systems back-to-back in identical environments. *)

type spec = {
  cfg : Hs_config.t;
  link : Net.Network.link;
  seed : int64;
  load : float;
  duration : Sim.Sim_time.span;
  warmup : Sim.Sim_time.span;
  silent : int;   (** number of silent Byzantine replicas (non-leader) *)
}

val spec :
  cfg:Hs_config.t ->
  ?link:Net.Network.link ->
  ?seed:int64 ->
  ?load:float ->
  ?duration:Sim.Sim_time.span ->
  ?warmup:Sim.Sim_time.span ->
  ?silent:int ->
  unit ->
  spec
(** Defaults mirror {!Core.Runner.spec}; [silent] defaults to [f]
    (touching the resilience bound, like the paper's runs). *)

type report = {
  n : int;
  offered : int;
  confirmed : int;
  throughput : float;
  goodput_bps : float;
  latency : Stats.Histogram.t;
  leader_sent_bytes : int;
  leader_received_bytes : int;
  leader_bps : float;
  window_sec : float;
  committed_heights : int;
  safety_ok : bool;
}

val run : spec -> report
