type t = {
  n : int;
  f : int;
  batch_size : int;
  payload : int;
  propose_timeout : Sim.Sim_time.span;
  cost : Crypto.Cost_model.t;
  cores : int;
}

let make ~n ?(batch_size = 800) ?(payload = 128) ?(propose_timeout = Sim.Sim_time.ms 50)
    ?(cost = Crypto.Cost_model.ecdsa_only) ?(cores = 4) () =
  if n < 4 then invalid_arg "Hs_config.make: n must be at least 4";
  if batch_size < 1 then invalid_arg "Hs_config.make: batch_size must be positive";
  { n; f = (n - 1) / 3; batch_size; payload; propose_timeout; cost; cores }

let quorum t = (2 * t.f) + 1
