open Sim
module Ts = Crypto.Threshold
open Hs_types

type hooks = { on_commit : id:Net.Node_id.t -> height:int -> Hs_types.block -> unit }

let no_hooks = { on_commit = (fun ~id:_ ~height:_ _ -> ()) }

(* Minimal share collector (votes dedup by member index). *)
type collector = { mutable shares : Ts.share list; mutable indices : int list; mutable fired : bool }

let collector () = { shares = []; indices = []; fired = false }

type t = {
  engine : Engine.t;
  network : msg Net.Network.t;
  cfg : Hs_config.t;
  id : Net.Node_id.t;
  leader : Net.Node_id.t;
  tsetup : Ts.setup;
  tkey : Ts.member_key;
  silent : bool;
  hooks : hooks;
  cpu : Net.Cpu.t;
  mempool : Workload.Request.t Queue.t;
  mutable pending_reqs : int;
  blocks : (int, block) Hashtbl.t;
  mutable voted_up_to : int;
  votes : (int, collector) Hashtbl.t;       (* leader side *)
  mutable high_qc : qc option;
  mutable next_height : int;                (* leader side *)
  mutable committed_up_to : int;
  mutable last_proposal : Sim_time.t;
}

let id t = t.id
let committed_up_to t = t.committed_up_to
let committed_block t h = Hashtbl.find_opt t.blocks h
let mempool_pending t = t.pending_reqs
let is_leader t = Net.Node_id.equal t.id t.leader
let active t = not t.silent
let now t = Engine.now t.engine
let with_cpu t cost f = Net.Cpu.submit t.cpu ~cost f

let ack_wire_bytes = 48

let commit_through t target =
  let rec go h =
    if h <= target then (
      match Hashtbl.find_opt t.blocks h with
      | None -> () (* missing body; stop (cannot skip in a chain) *)
      | Some block ->
        t.committed_up_to <- h;
        let batches = ref 0 in
        List.iter
          (fun b ->
            Workload.Request.mark_confirmed b;
            incr batches)
          block.batch;
        if !batches > 0 then
          Net.Network.charge_egress t.network ~src:t.id ~size:(ack_wire_bytes * !batches)
            ~category:"ack";
        t.hooks.on_commit ~id:t.id ~height:h block;
        go (h + 1))
  in
  go (t.committed_up_to + 1)

(* -- Leader ---------------------------------------------------------- *)

let take_batch t limit =
  let rec go acc got =
    if got >= limit then List.rev acc
    else
      match Queue.peek_opt t.mempool with
      | None -> List.rev acc
      | Some b when Workload.Request.is_confirmed b ->
        ignore (Queue.pop t.mempool);
        t.pending_reqs <- t.pending_reqs - b.Workload.Request.count;
        go acc got
      | Some b ->
        ignore (Queue.pop t.mempool);
        t.pending_reqs <- t.pending_reqs - b.Workload.Request.count;
        go (b :: acc) (got + b.Workload.Request.count)
  in
  go [] 0

let ready_to_propose t =
  t.next_height = 1
  || (match t.high_qc with Some qc -> qc.qc_height = t.next_height - 1 | None -> false)

let rec maybe_propose t =
  if active t && is_leader t && ready_to_propose t then begin
    let full = t.pending_reqs >= t.cfg.Hs_config.batch_size in
    let timed_out =
      t.pending_reqs > 0
      && Sim_time.compare
           Sim_time.(now t - t.last_proposal)
           t.cfg.Hs_config.propose_timeout
         >= 0
    in
    if full || timed_out then begin
      t.last_proposal <- now t;
      let batch = take_batch t t.cfg.Hs_config.batch_size in
      if batch <> [] then begin
        let height = t.next_height in
        let parent =
          match t.high_qc with Some qc -> qc.qc_block | None -> genesis_hash
        in
        let block = make_block ~height ~parent ~batch in
        let justify = t.high_qc in
        t.next_height <- height + 1;
        Hashtbl.replace t.blocks height block;
        let cost =
          Sim_time.( + ) t.cfg.Hs_config.cost.tsig_share
            (Crypto.Cost_model.hash_cost t.cfg.Hs_config.cost ~bytes_len:block.payload_bytes)
        in
        with_cpu t cost (fun () ->
            if active t then begin
              Net.Network.multicast t.network ~src:t.id (Proposal { block; justify });
              (* The leader votes for its own proposal. *)
              on_own_vote t height (block_hash block)
            end)
      end
    end
  end

and on_own_vote t height bh =
  let share = Ts.sign_share t.tkey (vote_payload ~height ~block_hash:bh) in
  record_vote t ~height ~block_hash:bh ~share

and record_vote t ~height ~block_hash ~share =
  if Ts.verify_share t.tsetup share (vote_payload ~height ~block_hash) then begin
    let c =
      match Hashtbl.find_opt t.votes height with
      | Some c -> c
      | None ->
        let c = collector () in
        Hashtbl.add t.votes height c;
        c
    in
    let idx = Ts.share_index share in
    if (not c.fired) && not (List.mem idx c.indices) then begin
      c.shares <- share :: c.shares;
      c.indices <- idx :: c.indices;
      if List.length c.indices >= Hs_config.quorum t.cfg then begin
        c.fired <- true;
        let shares = c.shares in
        c.shares <- [];
        let cost =
          Crypto.Cost_model.combine_cost t.cfg.Hs_config.cost ~shares:(List.length shares)
        in
        with_cpu t cost (fun () ->
            if active t then
              match Ts.combine t.tsetup (vote_payload ~height ~block_hash) shares with
              | None -> ()
              | Some proof ->
                t.high_qc <- Some { qc_height = height; qc_block = block_hash; qc_proof = proof };
                (* Three-chain: QC(h) commits h - 2. *)
                commit_through t (height - 2);
                maybe_propose t)
      end
    end
  end

(* -- Follower -------------------------------------------------------- *)

let on_proposal t block justify =
  let bh = block_hash block in
  let h = block.height in
  let justify_ok =
    match justify with
    | None -> h = 1
    | Some qc ->
      qc.qc_height = h - 1
      && Ts.verify t.tsetup qc.qc_proof
           (vote_payload ~height:qc.qc_height ~block_hash:qc.qc_block)
  in
  if justify_ok && h > t.voted_up_to then begin
    Hashtbl.replace t.blocks h block;
    t.voted_up_to <- h;
    (match justify with
     | Some qc -> commit_through t (qc.qc_height - 2)
     | None -> ());
    let share = Ts.sign_share t.tkey (vote_payload ~height:h ~block_hash:bh) in
    Net.Network.send t.network ~src:t.id ~dst:t.leader (Vote { height = h; block_hash = bh; share })
  end

let handle t ~src:_ m =
  if active t then
    match m with
    | Proposal { block; justify } ->
      let cost =
        Sim_time.( + )
          (Sim_time.( + ) t.cfg.Hs_config.cost.tvrf_aggregate t.cfg.Hs_config.cost.tsig_share)
          (Crypto.Cost_model.hash_cost t.cfg.Hs_config.cost ~bytes_len:block.payload_bytes)
      in
      with_cpu t cost (fun () -> if active t then on_proposal t block justify)
    | Vote { height; block_hash; share } ->
      if is_leader t then
        with_cpu t t.cfg.Hs_config.cost.tvrf_share (fun () ->
            if active t then record_vote t ~height ~block_hash ~share)

let submit t batch =
  if active t then begin
    Queue.push batch t.mempool;
    t.pending_reqs <- t.pending_reqs + batch.Workload.Request.count;
    if is_leader t then maybe_propose t
  end

let rec partial_tick t =
  if active t then begin
    maybe_propose t;
    ignore (Engine.schedule t.engine ~delay:t.cfg.Hs_config.propose_timeout (fun () -> partial_tick t))
  end

let start t = if is_leader t then partial_tick t

let create ~engine ~network ~cfg ~id ~leader ~tsetup ~tkey ?(silent = false) ?(hooks = no_hooks) () =
  let t =
    { engine;
      network;
      cfg;
      id;
      leader;
      tsetup;
      tkey;
      silent;
      hooks;
      cpu = Net.Cpu.create engine ~cores:cfg.Hs_config.cores;
      mempool = Queue.create ();
      pending_reqs = 0;
      blocks = Hashtbl.create 256;
      voted_up_to = 0;
      votes = Hashtbl.create 64;
      high_qc = None;
      next_height = 1;
      committed_up_to = 0;
      last_proposal = Sim_time.zero }
  in
  Net.Network.set_handler network id (fun ~src m -> handle t ~src m);
  t
