type block = {
  height : int;
  parent : Crypto.Hash.t;
  batch : Workload.Request.t list;
  req_count : int;
  payload_bytes : int;
  hash_memo : Crypto.Hash.t;
  wire_bytes : int;
}

let genesis_hash = Crypto.Hash.of_string "hotstuff.genesis"

let compute_block_hash ~height ~parent ~batch =
  Crypto.Hash.of_strings
    (Printf.sprintf "hsblock:%d" height
     :: Crypto.Hash.raw parent
     :: List.map Workload.Request.encode batch)

let make_block ~height ~parent ~batch =
  { height;
    parent;
    batch;
    req_count = List.fold_left (fun a b -> a + b.Workload.Request.count) 0 batch;
    payload_bytes = List.fold_left (fun a b -> a + Workload.Request.payload_bytes b) 0 batch;
    hash_memo = compute_block_hash ~height ~parent ~batch;
    wire_bytes =
      24 + Crypto.Hash.size_bytes
      + List.fold_left (fun acc b -> acc + Workload.Request.wire_bytes b) 0 batch }

let block_hash b = b.hash_memo

type qc = {
  qc_height : int;
  qc_block : Crypto.Hash.t;
  qc_proof : Crypto.Threshold.aggregate;
}

type msg =
  | Proposal of { block : block; justify : qc option }
  | Vote of { height : int; block_hash : Crypto.Hash.t; share : Crypto.Threshold.share }

let vote_payload ~height ~block_hash =
  Printf.sprintf "hs.vote:%d:%s" height (Crypto.Hash.raw block_hash)

let wire_size = function
  | Proposal { block; justify } ->
    block.wire_bytes
    + (match justify with
       | Some _ -> 8 + Crypto.Hash.size_bytes + Crypto.Threshold.aggregate_size_bytes
       | None -> 1)
  | Vote _ -> 24 + Crypto.Hash.size_bytes + Crypto.Threshold.share_size_bytes

let category = function
  | Proposal _ -> "proposal"
  | Vote _ -> "vote"

let priority (_ : msg) = Net.Nic.High

let meta = Net.Network.{ size = wire_size; category; priority }
