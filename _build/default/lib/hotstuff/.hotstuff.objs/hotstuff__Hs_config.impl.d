lib/hotstuff/hs_config.ml: Crypto Sim
