lib/hotstuff/hs_replica.ml: Crypto Engine Hashtbl Hs_config Hs_types List Net Queue Sim Sim_time Workload
