lib/hotstuff/hs_runner.ml: Array Crypto Engine Fun Hashtbl Hs_config Hs_replica Hs_types List Net Option Rng Sim Sim_time Stats Workload
