lib/hotstuff/hs_replica.mli: Crypto Hs_config Hs_types Net Sim Workload
