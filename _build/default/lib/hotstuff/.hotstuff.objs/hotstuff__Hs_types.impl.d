lib/hotstuff/hs_types.ml: Crypto List Net Printf Workload
