lib/hotstuff/hs_types.mli: Crypto Net Workload
