lib/hotstuff/hs_config.mli: Crypto Sim
