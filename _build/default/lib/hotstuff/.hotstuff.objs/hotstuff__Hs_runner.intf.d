lib/hotstuff/hs_runner.mli: Hs_config Net Sim Stats
