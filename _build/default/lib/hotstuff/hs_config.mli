(** HotStuff baseline configuration. *)

type t = {
  n : int;
  f : int;
  batch_size : int;       (** requests per block (the paper's HotStuff batch) *)
  payload : int;          (** request payload bytes *)
  propose_timeout : Sim.Sim_time.span;
      (** propose a partial batch after this delay (libhotstuff-style) *)
  cost : Crypto.Cost_model.t;
  cores : int;
}

val make :
  n:int ->
  ?batch_size:int ->
  ?payload:int ->
  ?propose_timeout:Sim.Sim_time.span ->
  ?cost:Crypto.Cost_model.t ->
  ?cores:int ->
  unit ->
  t
(** Defaults: batch 800 (the paper's Table 2 HotStuff setting), 128-byte
    payload, 50 ms partial-batch timeout, ECDSA-like costs (libhotstuff
    instantiates QCs with secp256k1 signature vectors), 4 cores.
    Requires [n >= 4]. *)

val quorum : t -> int
