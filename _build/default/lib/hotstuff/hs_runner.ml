open Sim

type spec = {
  cfg : Hs_config.t;
  link : Net.Network.link;
  seed : int64;
  load : float;
  duration : Sim_time.span;
  warmup : Sim_time.span;
  silent : int;
}

let spec ~cfg ?(link = Net.Network.default_link) ?(seed = 42L) ?(load = 1e5)
    ?(duration = Sim_time.s 20) ?(warmup = Sim_time.s 5) ?silent () =
  { cfg;
    link;
    seed;
    load;
    duration;
    warmup;
    silent = Option.value silent ~default:cfg.Hs_config.f }

type report = {
  n : int;
  offered : int;
  confirmed : int;
  throughput : float;
  goodput_bps : float;
  latency : Stats.Histogram.t;
  leader_sent_bytes : int;
  leader_received_bytes : int;
  leader_bps : float;
  window_sec : float;
  committed_heights : int;
  safety_ok : bool;
}

let run sp =
  let cfg = sp.cfg in
  let n = cfg.Hs_config.n in
  let engine = Engine.create ~seed:sp.seed () in
  let network = Net.Network.create engine ~n ~meta:Hs_types.meta ~link:sp.link in
  let key_rng = Rng.split (Engine.rng engine) in
  let tsetup, tkeys =
    Crypto.Threshold.keygen key_rng ~threshold:(2 * cfg.Hs_config.f) ~parties:n
  in
  let leader = 0 in
  (* Silent replicas picked from the back so the leader stays honest. *)
  let silent_set = List.init sp.silent (fun i -> n - 1 - i) in
  let commit_counts : (int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let counted : (int, unit) Hashtbl.t = Hashtbl.create 65536 in
  let confirm_meter = Stats.Meter.create () in
  let goodput_meter = Stats.Meter.create () in
  let latency = Stats.Histogram.create () in
  let confirmed = ref 0 in
  let committed_heights = ref 0 in
  let fp1 = cfg.Hs_config.f + 1 in
  let hooks =
    { Hs_replica.on_commit =
        (fun ~id:_ ~height block ->
          let c =
            match Hashtbl.find_opt commit_counts height with
            | Some c -> c
            | None ->
              let c = ref 0 in
              Hashtbl.add commit_counts height c;
              c
          in
          incr c;
          if !c = fp1 then begin
            incr committed_heights;
            let at = Engine.now engine in
            List.iter
              (fun (b : Workload.Request.t) ->
                if not (Hashtbl.mem counted b.Workload.Request.id) then begin
                  Hashtbl.add counted b.Workload.Request.id ();
                  confirmed := !confirmed + b.Workload.Request.count;
                  Stats.Meter.add confirm_meter ~at b.Workload.Request.count;
                  Stats.Meter.add goodput_meter ~at (Workload.Request.payload_bytes b);
                  Stats.Histogram.add latency Sim_time.(at - b.Workload.Request.born)
                end)
              block.Hs_types.batch
          end)
    }
  in
  let replicas =
    Array.init n (fun id ->
        Hs_replica.create ~engine ~network ~cfg ~id ~leader ~tsetup ~tkey:tkeys.(id)
          ~silent:(List.mem id silent_set) ~hooks ())
  in
  Array.iter Hs_replica.start replicas;
  let gen =
    (* Clients submit in small wire batches (~32 requests), so the
       leader's block batching — not client granularity — sets the block
       size (libhotstuff clients send individual commands). *)
    let tick =
      if sp.load <= 0. then Sim_time.ms 20
      else Sim_time.max (Sim_time.us 100) (Sim_time.min (Sim_time.ms 20) (Sim_time.of_sec (32. /. sp.load)))
    in
    Workload.Generator.start engine ~rate:sp.load ~payload:cfg.Hs_config.payload
      ~targets:[ leader ] ~tick
      ~inject:(fun ~dst ~size cb -> Net.Network.inject network ~dst ~size ~category:"client-req" cb)
      ~submit:(fun ~target b -> Hs_replica.submit replicas.(target) b)
      ~until:sp.duration ()
  in
  ignore (Engine.schedule_at engine ~at:sp.warmup (fun () -> Net.Network.reset_stats network));
  Engine.run ~until:sp.duration engine;
  let window_sec = Sim_time.to_sec Sim_time.(sp.duration - sp.warmup) in
  let acct = Net.Network.stats network leader in
  let sent = Net.Bandwidth.total acct Net.Bandwidth.Sent in
  let received = Net.Bandwidth.total acct Net.Bandwidth.Received in
  let safety_ok =
    (* Position-wise equality of committed chains across honest replicas. *)
    let honest = List.filter (fun i -> not (List.mem i silent_set)) (List.init n Fun.id) in
    match honest with
    | [] -> true
    | first :: rest ->
      List.for_all
        (fun other ->
          let upto =
            min
              (Hs_replica.committed_up_to replicas.(first))
              (Hs_replica.committed_up_to replicas.(other))
          in
          let rec go h =
            if h > upto then true
            else
              match
                ( Hs_replica.committed_block replicas.(first) h,
                  Hs_replica.committed_block replicas.(other) h )
              with
              | Some a, Some b ->
                Crypto.Hash.equal (Hs_types.block_hash a) (Hs_types.block_hash b) && go (h + 1)
              | _ -> go (h + 1)
          in
          go 1)
        rest
  in
  { n;
    offered = Workload.Generator.offered gen;
    confirmed = !confirmed;
    throughput = Stats.Meter.rate confirm_meter ~from_:sp.warmup ~until:sp.duration;
    goodput_bps = 8. *. Stats.Meter.rate goodput_meter ~from_:sp.warmup ~until:sp.duration;
    latency;
    leader_sent_bytes = sent;
    leader_received_bytes = received;
    leader_bps =
      (if window_sec <= 0. then 0. else 8. *. float_of_int (sent + received) /. window_sec);
    window_sec;
    committed_heights = !committed_heights;
    safety_ok }
