(** Shamir secret sharing over {!Field}.

    A degree-[t] polynomial [P] with [P(0) = secret] is sampled; the share
    of party [i] (1-based) is [P(i)]. Any [t + 1] shares reconstruct the
    secret by Lagrange interpolation at 0; [t] or fewer reveal nothing.
    This is the quorum-intersection mechanism under the threshold signature
    scheme of §3.1: aggregation genuinely requires [t + 1] shares. *)

type share = { index : int; value : Field.t }
(** Party [index]'s evaluation of the sharing polynomial. *)

val deal : Sim.Rng.t -> secret:Field.t -> threshold:int -> parties:int -> share array
(** [deal rng ~secret ~threshold ~parties] returns [parties] shares such
    that any [threshold + 1] of them reconstruct [secret].
    Requires [0 <= threshold < parties]. *)

val reconstruct : share list -> Field.t
(** Lagrange interpolation at 0. The caller must supply at least
    [threshold + 1] shares with pairwise distinct indices; with fewer (or
    corrupted) shares the result is an unrelated field element, matching
    the scheme's robustness property (garbage in, garbage out — detected
    by verifying the aggregate, not by interpolation itself).
    Requires a non-empty list with pairwise distinct indices. *)

val lagrange_coefficient : at:Field.t -> indices:int list -> int -> Field.t
(** [lagrange_coefficient ~at ~indices i] is the basis coefficient of
    party [i] when interpolating at point [at] over [indices]. Exposed for
    property tests. *)
