(* FIPS 180-4 SHA-256 over Int32 words. *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l;
     0x3956c25bl; 0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l;
     0xd807aa98l; 0x12835b01l; 0x243185bel; 0x550c7dc3l;
     0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l; 0xc19bf174l;
     0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal;
     0x983e5152l; 0xa831c66dl; 0xb00327c8l; 0xbf597fc7l;
     0xc6e00bf3l; 0xd5a79147l; 0x06ca6351l; 0x14292967l;
     0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl; 0x53380d13l;
     0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l;
     0xd192e819l; 0xd6990624l; 0xf40e3585l; 0x106aa070l;
     0x19a4c116l; 0x1e376c08l; 0x2748774cl; 0x34b0bcb5l;
     0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl; 0x682e6ff3l;
     0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

type ctx = {
  h : int32 array;                   (* 8 chaining words *)
  block : bytes;                     (* 64-byte input block buffer *)
  mutable fill : int;                (* bytes buffered in [block] *)
  mutable total : int64;             (* total message bytes fed *)
  w : int32 array;                   (* 64-word message schedule scratch *)
  mutable finalized : bool;
}

let init () =
  { h =
      [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al;
         0x510e527fl; 0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |];
    block = Bytes.create 64;
    fill = 0;
    total = 0L;
    w = Array.make 64 0l;
    finalized = false }

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( +% ) = Int32.add
let ( ^% ) = Int32.logxor
let ( &% ) = Int32.logand
let lnot32 = Int32.lognot

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    let b j = Int32.of_int (Char.code (Bytes.get block (off + (4 * i) + j))) in
    w.(i) <-
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^% rotr w.(i - 15) 18 ^% Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^% rotr w.(i - 2) 19 ^% Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^% rotr !e 11 ^% rotr !e 25 in
    let ch = (!e &% !f) ^% (lnot32 !e &% !g) in
    let temp1 = !hh +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^% rotr !a 13 ^% rotr !a 22 in
    let maj = (!a &% !b) ^% (!a &% !c) ^% (!b &% !c) in
    let temp2 = s0 +% maj in
    hh := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  h.(0) <- h.(0) +% !a;
  h.(1) <- h.(1) +% !b;
  h.(2) <- h.(2) +% !c;
  h.(3) <- h.(3) +% !d;
  h.(4) <- h.(4) +% !e;
  h.(5) <- h.(5) +% !f;
  h.(6) <- h.(6) +% !g;
  h.(7) <- h.(7) +% !hh

let feed_bytes ctx ?(off = 0) ?len src =
  assert (not ctx.finalized);
  let len = match len with Some l -> l | None -> Bytes.length src - off in
  assert (off >= 0 && len >= 0 && off + len <= Bytes.length src);
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref off and remaining = ref len in
  (* Top up a partially filled block first. *)
  if ctx.fill > 0 then begin
    let take = min !remaining (64 - ctx.fill) in
    Bytes.blit src !pos ctx.block ctx.fill take;
    ctx.fill <- ctx.fill + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.fill = 64 then begin
      compress ctx ctx.block 0;
      ctx.fill <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx src !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit src !pos ctx.block ctx.fill !remaining;
    ctx.fill <- ctx.fill + !remaining
  end

let feed_string ctx s = feed_bytes ctx (Bytes.unsafe_of_string s)

let finalize ctx =
  assert (not ctx.finalized);
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 8-byte big-endian bit length. *)
  let pad_len =
    let rem = (ctx.fill + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len ((7 - i) * 8)) 0xFFL)))
  done;
  feed_bytes ctx pad;
  ctx.finalized <- true;
  assert (ctx.fill = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    let byte shift = Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v shift) 0xFFl)) in
    Bytes.set out (4 * i) (byte 24);
    Bytes.set out ((4 * i) + 1) (byte 16);
    Bytes.set out ((4 * i) + 2) (byte 8);
    Bytes.set out ((4 * i) + 3) (byte 0)
  done;
  Bytes.unsafe_to_string out

let digest_string s =
  let ctx = init () in
  feed_string ctx s;
  finalize ctx

let digest_strings parts =
  let ctx = init () in
  List.iter (feed_string ctx) parts;
  finalize ctx

let hmac ~key msg =
  let key = if String.length key > 64 then digest_string key else key in
  let pad fill =
    let b = Bytes.make 64 (Char.chr fill) in
    String.iteri (fun i c -> Bytes.set b i (Char.chr (Char.code c lxor fill))) key;
    Bytes.unsafe_to_string b
  in
  let inner = digest_strings [ pad 0x36; msg ] in
  digest_strings [ pad 0x5c; inner ]

let to_hex raw =
  let buf = Buffer.create (2 * String.length raw) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) raw;
  Buffer.contents buf
