(** 32-byte SHA-256 digests as protocol values.

    The protocol manipulates hashes of requests, datablocks and BFTblocks;
    this module gives them an abstract, comparable, printable identity. *)

type t
(** A 32-byte digest. *)

val size_bytes : int
(** Wire size of a digest (32); the paper's β parameter. *)

val of_string : string -> t
(** [of_string s] hashes [s]. *)

val of_strings : string list -> t
(** Hash of the concatenation of the parts. *)

val combine : t list -> t
(** Hash of a list of digests; used for hash links and vote messages
    (e.g. [H(σ¹)] in Algorithm 2). *)

val raw : t -> string
(** The underlying 32 raw bytes. *)

val of_raw : string -> t
(** Wraps a precomputed 32-byte digest. Requires length 32. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
(** For [Hashtbl] keys. *)

val to_hex : t -> string
val short : t -> string
(** First 8 hex characters; for traces and error messages. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
