type t = int

let p = 0x7FFFFFFF (* 2^31 - 1, prime *)
let zero = 0
let one = 1

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let to_int t = t

let of_string_digest s =
  let v = ref 0 in
  for i = 0 to Stdlib.min 7 (String.length s - 1) do
    v := ((!v lsl 8) lor Char.code s.[i]) mod p
  done;
  !v

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a - b + p
let mul a b = a * b mod p
let neg a = if a = 0 then 0 else p - a

let rec pow x e =
  if e = 0 then 1
  else
    let h = pow x (e / 2) in
    let h2 = mul h h in
    if e land 1 = 1 then mul h2 x else h2

let inv a =
  assert (a <> 0);
  (* Fermat: a^(p-2) mod p. *)
  pow a (p - 2)

let div a b = mul a (inv b)
let equal = Int.equal

let random rng = Sim.Rng.int rng p

let pp fmt t = Format.pp_print_int fmt t
