(** Arithmetic in GF(2^8) (the AES field, polynomial x⁸+x⁴+x³+x+1).

    The base field of the Reed–Solomon codes used by the erasure-coded
    delivery alternative of §2. Multiplication and inversion go through
    precomputed log/antilog tables. *)

type t = int
(** A field element in [0, 255]. Operations assume in-range inputs. *)

val add : t -> t -> t
(** Addition = XOR (characteristic 2); also subtraction. *)

val mul : t -> t -> t

val inv : t -> t
(** Multiplicative inverse. Requires a non-zero argument. *)

val div : t -> t -> t
(** [div a b] = [mul a (inv b)]. Requires [b <> 0]. *)

val pow : t -> int -> t
(** [pow x e] for [e >= 0]. *)

val exp_table : int -> t
(** [exp_table i] is the generator 0x03 raised to [i mod 255]. *)
