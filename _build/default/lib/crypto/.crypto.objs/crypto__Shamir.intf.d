lib/crypto/shamir.mli: Field Sim
