lib/crypto/field.ml: Char Format Int Sim Stdlib String
