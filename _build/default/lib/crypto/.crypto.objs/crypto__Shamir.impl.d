lib/crypto/shamir.ml: Array Field Int List
