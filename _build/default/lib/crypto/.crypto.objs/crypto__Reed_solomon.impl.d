lib/crypto/reed_solomon.ml: Array Bytes Char Gf256 Int List String
