lib/crypto/signature.mli: Format Sim
