lib/crypto/merkle.mli: Hash
