lib/crypto/reed_solomon.mli:
