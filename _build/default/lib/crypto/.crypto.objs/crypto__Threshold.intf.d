lib/crypto/threshold.mli: Sim
