lib/crypto/threshold.ml: Array Field Int List Printf Sha256 Shamir String
