lib/crypto/cost_model.ml: Int64 Sim Sim_time
