lib/crypto/hash.mli: Format Hashtbl Map Set
