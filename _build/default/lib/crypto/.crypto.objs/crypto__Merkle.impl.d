lib/crypto/merkle.ml: Array Hash List
