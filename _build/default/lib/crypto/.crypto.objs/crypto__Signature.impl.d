lib/crypto/signature.ml: Char Format Hashtbl Int64 List Sha256 Sim String
