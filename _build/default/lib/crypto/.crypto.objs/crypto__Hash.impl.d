lib/crypto/hash.ml: Format Hashtbl Map Set Sha256 String
