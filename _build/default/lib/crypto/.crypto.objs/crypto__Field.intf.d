lib/crypto/field.mli: Format Sim
