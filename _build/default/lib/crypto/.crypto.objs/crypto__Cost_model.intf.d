lib/crypto/cost_model.mli: Sim
