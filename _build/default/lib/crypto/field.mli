(** Arithmetic in the prime field GF(2^31 - 1).

    The Mersenne prime 2^31 - 1 keeps every product inside OCaml's native
    63-bit integers, so Shamir secret sharing (the structure underlying the
    simulated threshold signature scheme) needs no bignum dependency. The
    field is small by cryptographic standards — acceptable because the
    scheme's security is simulated, only its quorum semantics are real. *)

type t = private int
(** A field element in [\[0, p)]. *)

val p : int
(** The modulus, 2^31 - 1. *)

val zero : t
val one : t

val of_int : int -> t
(** Reduction mod [p] (handles negative inputs). *)

val to_int : t -> int

val of_string_digest : string -> t
(** Maps a digest (or any string) into the field via its first 8 bytes;
    used to bind threshold shares to messages. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val inv : t -> t
(** Multiplicative inverse. Requires a non-zero argument. *)

val div : t -> t -> t
(** [div a b] is [a * inv b]. Requires [b] non-zero. *)

val pow : t -> int -> t
(** [pow x e] for [e >= 0]. *)

val equal : t -> t -> bool
val random : Sim.Rng.t -> t
val pp : Format.formatter -> t -> unit
