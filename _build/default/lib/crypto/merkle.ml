type step = { sibling : Hash.t; sibling_on_left : bool }
type proof = step list

let parent l r = Hash.combine [ l; r ]

let rec level_up nodes =
  match nodes with
  | [] | [ _ ] -> nodes
  | _ ->
    let rec pair = function
      | l :: r :: rest -> parent l r :: pair rest
      | [ odd ] -> [ odd ]
      | [] -> []
    in
    level_up (pair nodes)

let root = function
  | [] -> Hash.of_string ""
  | leaves ->
    (match level_up leaves with
     | [ r ] -> r
     | _ -> assert false)

let prove leaves i =
  let n = List.length leaves in
  if i < 0 || i >= n then None
  else begin
    let rec go nodes idx acc =
      match nodes with
      | [] -> assert false
      | [ _ ] -> List.rev acc
      | _ ->
        let arr = Array.of_list nodes in
        let len = Array.length arr in
        let acc =
          if idx land 1 = 0 then
            if idx + 1 < len then { sibling = arr.(idx + 1); sibling_on_left = false } :: acc
            else acc (* odd tail promoted: no sibling at this level *)
          else { sibling = arr.(idx - 1); sibling_on_left = true } :: acc
        in
        let next =
          let rec pair = function
            | l :: r :: rest -> parent l r :: pair rest
            | [ odd ] -> [ odd ]
            | [] -> []
          in
          pair nodes
        in
        go next (idx / 2) acc
    in
    Some (go leaves i [])
  end

let verify_proof ~root:expected ~leaf proof =
  let computed =
    List.fold_left
      (fun acc step ->
        if step.sibling_on_left then parent step.sibling acc else parent acc step.sibling)
      leaf proof
  in
  Hash.equal computed expected

let proof_size_bytes proof = (List.length proof * Hash.size_bytes) + ((List.length proof + 7) / 8)
