type share = { index : int; value : Field.t }

let eval_poly coeffs x =
  (* Horner, highest coefficient first. *)
  Array.fold_left (fun acc c -> Field.add (Field.mul acc x) c) Field.zero coeffs

let deal rng ~secret ~threshold ~parties =
  assert (0 <= threshold && threshold < parties);
  let coeffs = Array.init (threshold + 1) (fun _ -> Field.random rng) in
  coeffs.(threshold) <- secret;
  (* constant term *)
  Array.init parties (fun i ->
      let index = i + 1 in
      { index; value = eval_poly coeffs (Field.of_int index) })

let lagrange_coefficient ~at ~indices i =
  let xi = Field.of_int i in
  List.fold_left
    (fun acc j ->
      if j = i then acc
      else
        let xj = Field.of_int j in
        Field.mul acc (Field.div (Field.sub at xj) (Field.sub xi xj)))
    Field.one indices

let reconstruct shares =
  assert (shares <> []);
  let indices = List.map (fun s -> s.index) shares in
  let distinct = List.sort_uniq Int.compare indices in
  assert (List.length distinct = List.length indices);
  List.fold_left
    (fun acc s ->
      let c = lagrange_coefficient ~at:Field.zero ~indices s.index in
      Field.add acc (Field.mul c s.value))
    Field.zero shares
