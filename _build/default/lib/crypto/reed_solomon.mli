(** Reed–Solomon erasure coding over GF(2^8).

    An (n, k) code turns [k] data fragments into [n] coded fragments so
    that *any* [k] of them reconstruct the data — the reliable-broadcast
    building block the paper compares against in §2 (code rate 1/c with
    c = n/k; Reed–Solomon with c = 2 tolerates the loss of half the
    fragments). Encoding is polynomial evaluation: stripe bytes are the
    coefficients of a degree-(k−1) polynomial evaluated at [n] distinct
    field points; decoding is Lagrange interpolation.

    Limits: [0 < k <= n <= 255]. *)

type fragment = { index : int; data : bytes }
(** Coded fragment [index] (0-based evaluation point). *)

val encode : k:int -> n:int -> string -> fragment list
(** [encode ~k ~n payload] splits the payload into [k]-byte stripes
    (zero-padded) and produces [n] fragments, each of size
    [ceil (len/k)] plus an 8-byte length header in fragment 0's
    accounting (the original length is carried separately by
    {!decode}'s [len] argument). *)

val fragment_size : k:int -> payload_len:int -> int
(** Size in bytes of each fragment for a payload of the given length. *)

val decode : k:int -> len:int -> fragment list -> string option
(** [decode ~k ~len fragments] reconstructs the original [len]-byte
    payload from any [k] distinct fragments; [None] if fewer than [k]
    distinct indices are supplied. Corrupted fragment *data* yields a
    wrong payload (erasure code, not error-correcting) — integrity is
    the caller's job (hashes). *)
