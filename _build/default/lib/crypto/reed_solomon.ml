type fragment = { index : int; data : bytes }

let fragment_size ~k ~payload_len = (payload_len + k - 1) / k

(* Evaluation point for fragment i: the field element i + 1 (non-zero,
   distinct for i < 255). *)
let point i = i + 1

let encode ~k ~n payload =
  assert (0 < k && k <= n && n <= 255);
  let len = String.length payload in
  let stripe_count = fragment_size ~k ~payload_len:len in
  let byte_at stripe j =
    (* coefficient j of stripe: payload.[stripe * k + j], zero padded *)
    let pos = (stripe * k) + j in
    if pos < len then Char.code payload.[pos] else 0
  in
  List.init n (fun i ->
      let x = point i in
      let data = Bytes.create stripe_count in
      for stripe = 0 to stripe_count - 1 do
        (* Horner evaluation of the stripe polynomial at x. *)
        let acc = ref 0 in
        for j = k - 1 downto 0 do
          acc := Gf256.add (Gf256.mul !acc x) (byte_at stripe j)
        done;
        Bytes.set data stripe (Char.chr !acc)
      done;
      { index = i; data })

let decode ~k ~len fragments =
  let distinct =
    List.sort_uniq (fun a b -> Int.compare a.index b.index) fragments
  in
  if List.length distinct < k then None
  else begin
    let chosen = Array.of_list (List.filteri (fun i _ -> i < k) distinct) in
    let xs = Array.map (fun f -> point f.index) chosen in
    let stripe_count = fragment_size ~k ~payload_len:len in
    (* Lagrange basis evaluated at each coefficient position: we need the
       polynomial's coefficients, not just one evaluation. Interpolate by
       solving for coefficients via Newton-free approach: evaluate the
       interpolating polynomial at the k coefficient "positions"?  No —
       coefficients ARE the data. Recover them by Gaussian elimination
       on the Vandermonde system V c = y per stripe.  k is small (the
       code is configured per-delivery, k <= 64), so O(k^3 + k^2 per
       stripe) is fine. *)
    let kk = k in
    (* LU-style elimination on the Vandermonde matrix done once. *)
    let m = Array.make_matrix kk (kk + 1) 0 in
    let solve ys =
      for r = 0 to kk - 1 do
        let x = xs.(r) in
        let p = ref 1 in
        for c = 0 to kk - 1 do
          m.(r).(c) <- !p;
          p := Gf256.mul !p x
        done;
        m.(r).(kk) <- ys.(r)
      done;
      (* forward elimination *)
      (try
         for col = 0 to kk - 1 do
           (* find pivot *)
           let pivot = ref (-1) in
           for r = col to kk - 1 do
             if !pivot = -1 && m.(r).(col) <> 0 then pivot := r
           done;
           if !pivot = -1 then raise Exit;
           if !pivot <> col then begin
             let tmp = m.(col) in
             m.(col) <- m.(!pivot);
             m.(!pivot) <- tmp
           end;
           let inv_p = Gf256.inv m.(col).(col) in
           for c = col to kk do
             m.(col).(c) <- Gf256.mul m.(col).(c) inv_p
           done;
           for r = 0 to kk - 1 do
             if r <> col && m.(r).(col) <> 0 then begin
               let factor = m.(r).(col) in
               for c = col to kk do
                 m.(r).(c) <- Gf256.add m.(r).(c) (Gf256.mul factor m.(col).(c))
               done
             end
           done
         done;
         Some (Array.init kk (fun r -> m.(r).(kk)))
       with Exit -> None)
    in
    let out = Bytes.make (stripe_count * kk) '\000' in
    let ys = Array.make kk 0 in
    let ok = ref true in
    for stripe = 0 to stripe_count - 1 do
      if !ok then begin
        Array.iteri (fun r f -> ys.(r) <- Char.code (Bytes.get f.data stripe)) chosen;
        match solve ys with
        | Some coeffs ->
          Array.iteri (fun j v -> Bytes.set out ((stripe * kk) + j) (Char.chr v)) coeffs
        | None -> ok := false
      end
    done;
    if !ok then Some (Bytes.sub_string out 0 len) else None
  end
