(** Digital signatures (simulated ECDSA).

    The scheme is HMAC-SHA256 under the signer's private key; verification
    resolves the private key through a registry private to this module.
    Inside the closed simulation this has the EUF-CMA *shape* required by
    the protocol: the only way any component (including Byzantine replica
    code) can produce a signature that verifies under [pk] is to hold the
    corresponding abstract [private_key] and call {!sign}. Wire size and
    CPU cost mirror ECDSA/secp256k1 as measured in the paper (§6.2.1). *)

type public_key
type private_key

type t
(** A signature value. *)

val size_bytes : int
(** Wire size of a signature (64, as ECDSA). *)

val public_key_size_bytes : int
(** Wire size of a public key (33, compressed point). *)

val keygen : Sim.Rng.t -> public_key * private_key
(** A fresh key pair, registered for verification. *)

val sign : private_key -> string -> t
val verify : public_key -> t -> string -> bool

val public_key_equal : public_key -> public_key -> bool
val pp_public_key : Format.formatter -> public_key -> unit

(** {2 Raw access (persistence/wire codecs)}

    A signature is a 32-byte tag on the wire (padded to {!size_bytes}
    in transit-size accounting). Raw access exists so protocol
    transcripts can be serialized and replayed; it cannot be used to
    forge (verification still resolves the private key internally). *)

val to_raw : t -> string
(** The 32 raw tag bytes. *)

val of_raw : string -> t
(** Wraps raw tag bytes (length 32). *)

val equal : t -> t -> bool
