type t = int

(* Log/antilog tables for the generator 0x03 of GF(2^8) mod 0x11B. *)
let exp = Array.make 512 0
let log_ = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp.(i) <- !x;
    log_.(!x) <- i;
    (* multiply by 0x03 = x + 1: shift-xor with reduction *)
    let x2 = !x lsl 1 in
    let x2 = if x2 land 0x100 <> 0 then x2 lxor 0x11B else x2 in
    x := x2 lxor !x
  done;
  (* duplicate so exp.(a + b) works without mod for a, b < 255 *)
  for i = 255 to 511 do
    exp.(i) <- exp.(i - 255)
  done

let add a b = a lxor b

let mul a b = if a = 0 || b = 0 then 0 else exp.(log_.(a) + log_.(b))

let inv a =
  assert (a <> 0);
  exp.(255 - log_.(a))

let div a b = mul a (inv b)

let pow x e =
  assert (e >= 0);
  if x = 0 then (if e = 0 then 1 else 0)
  else exp.(log_.(x) * e mod 255)

let exp_table i = exp.(((i mod 255) + 255) mod 255)
