type setup = {
  group_pk : string;               (* H(master secret) *)
  member_pks : string array;       (* H(i || share_i), 0-based position *)
  threshold : int;
  parties : int;
}

type member_key = { index : int; secret : Field.t }
type share = { s_index : int; masked : Field.t }
type aggregate = { value : Field.t }

let share_size_bytes = 48
let aggregate_size_bytes = 48

let commit_master s = Sha256.digest_strings [ "leopard.ts.group"; string_of_int (Field.to_int s) ]

let commit_member i s =
  Sha256.digest_strings [ "leopard.ts.member"; string_of_int i; string_of_int (Field.to_int s) ]

let keygen rng ~threshold ~parties =
  assert (0 <= threshold && threshold < parties);
  let master = Field.random rng in
  let shares = Shamir.deal rng ~secret:master ~threshold ~parties in
  let member_pks = Array.map (fun (s : Shamir.share) -> commit_member s.index s.value) shares in
  let keys = Array.map (fun (s : Shamir.share) -> { index = s.index; secret = s.value }) shares in
  ({ group_pk = commit_master master; member_pks; threshold; parties }, keys)

let threshold t = t.threshold
let parties t = t.parties

(* The message mask: a field element derived from the message. Adding the
   same mask to every Shamir share shifts the interpolated secret by the
   mask (Lagrange coefficients at 0 sum to 1), which binds shares and
   aggregate to the message. *)
let mask msg = Field.of_string_digest (Sha256.digest_strings [ "leopard.ts.msg"; msg ])

let sign_share key msg = { s_index = key.index; masked = Field.add key.secret (mask msg) }

let share_index s = s.s_index

let verify_share setup s msg =
  s.s_index >= 1
  && s.s_index <= setup.parties
  && String.equal
       (commit_member s.s_index (Field.sub s.masked (mask msg)))
       setup.member_pks.(s.s_index - 1)

let combine setup msg shares =
  let valid =
    List.filter (fun s -> verify_share setup s msg) shares
    |> List.sort_uniq (fun a b -> Int.compare a.s_index b.s_index)
  in
  if List.length valid < setup.threshold + 1 then None
  else begin
    let chosen = List.filteri (fun i _ -> i <= setup.threshold) valid in
    let points =
      List.map (fun s -> Shamir.{ index = s.s_index; value = Field.sub s.masked (mask msg) }) chosen
    in
    Some { value = Field.add (Shamir.reconstruct points) (mask msg) }
  end

let verify setup agg msg =
  String.equal (commit_master (Field.sub agg.value (mask msg))) setup.group_pk

let encode agg = Printf.sprintf "tsagg:%d" (Field.to_int agg.value)

let share_raw s = (s.s_index, Field.to_int s.masked)
let share_of_raw ~index ~value = { s_index = index; masked = Field.of_int value }
let aggregate_raw agg = Field.to_int agg.value
let aggregate_of_raw v = { value = Field.of_int v }
let share_equal a b = a.s_index = b.s_index && Field.equal a.masked b.masked
let aggregate_equal a b = Field.equal a.value b.value

let forge_attempt setup msg =
  (* A deterministic guess at an aggregate; nudged if it accidentally
     verifies (probability ~1/p) so callers can rely on rejection. *)
  let guess = Field.of_string_digest (Sha256.digest_strings [ "forge"; setup.group_pk; msg ]) in
  let candidate = { value = Field.add guess (mask msg) } in
  if verify setup candidate msg then { value = Field.add candidate.value Field.one } else candidate
