(** PBFT-style all-to-all BFT baseline (the BFT-SMaRt stand-in of Fig 1).

    Normal-case PBFT: the leader multicasts a pre-prepare carrying the
    full request batch; every replica multicasts a prepare vote, then —
    on 2f matching prepares — a commit vote; a batch executes on 2f + 1
    matching commits. Quadratic vote traffic plus full-payload leader
    dissemination: the communication pattern whose throughput cliff
    motivates the paper (§1, Fig 1). A window of [w] instances runs in
    parallel. View changes are out of scope (the baseline is only used
    for throughput measurements with an honest leader). *)

type cfg = {
  n : int;
  f : int;
  batch_size : int;
  payload : int;
  window : int;            (** parallel instances (PBFT watermark window) *)
  propose_timeout : Sim.Sim_time.span;
  cost : Crypto.Cost_model.t;
  cores : int;
}

val make_cfg :
  n:int ->
  ?batch_size:int ->
  ?payload:int ->
  ?window:int ->
  ?propose_timeout:Sim.Sim_time.span ->
  ?cost:Crypto.Cost_model.t ->
  ?cores:int ->
  unit ->
  cfg

type spec = {
  cfg : cfg;
  link : Net.Network.link;
  seed : int64;
  load : float;
  duration : Sim.Sim_time.span;
  warmup : Sim.Sim_time.span;
  silent : int;
}

val spec :
  cfg:cfg ->
  ?link:Net.Network.link ->
  ?seed:int64 ->
  ?load:float ->
  ?duration:Sim.Sim_time.span ->
  ?warmup:Sim.Sim_time.span ->
  ?silent:int ->
  unit ->
  spec

type report = {
  n : int;
  offered : int;
  confirmed : int;
  throughput : float;
  latency : Stats.Histogram.t;
  leader_bps : float;
  safety_ok : bool;
}

val run : spec -> report
