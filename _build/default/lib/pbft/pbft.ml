open Sim
module Sig = Crypto.Signature
module Hash = Crypto.Hash

type cfg = {
  n : int;
  f : int;
  batch_size : int;
  payload : int;
  window : int;
  propose_timeout : Sim_time.span;
  cost : Crypto.Cost_model.t;
  cores : int;
}

let make_cfg ~n ?(batch_size = 400) ?(payload = 128) ?(window = 8)
    ?(propose_timeout = Sim_time.ms 50) ?(cost = Crypto.Cost_model.ecdsa_only) ?(cores = 4) () =
  if n < 4 then invalid_arg "Pbft.make_cfg: n must be at least 4";
  { n; f = (n - 1) / 3; batch_size; payload; window; propose_timeout; cost; cores }

type spec = {
  cfg : cfg;
  link : Net.Network.link;
  seed : int64;
  load : float;
  duration : Sim_time.span;
  warmup : Sim_time.span;
  silent : int;
}

let spec ~cfg ?(link = Net.Network.default_link) ?(seed = 42L) ?(load = 1e5)
    ?(duration = Sim_time.s 20) ?(warmup = Sim_time.s 5) ?silent () =
  { cfg; link; seed; load; duration; warmup; silent = Option.value silent ~default:cfg.f }

type block = {
  seq : int;
  batch : Workload.Request.t list;
  req_count : int;
  payload_bytes : int;
  digest_memo : Hash.t;
  wire_bytes : int;
}

let make_block ~seq ~batch =
  { seq;
    batch;
    req_count = List.fold_left (fun a b -> a + b.Workload.Request.count) 0 batch;
    payload_bytes = List.fold_left (fun a b -> a + Workload.Request.payload_bytes b) 0 batch;
    digest_memo =
      Hash.of_strings (Printf.sprintf "pbft:%d" seq :: List.map Workload.Request.encode batch);
    wire_bytes =
      24 + Crypto.Signature.size_bytes
      + List.fold_left (fun acc b -> acc + Workload.Request.wire_bytes b) 0 batch }

let block_digest b = b.digest_memo

type msg =
  | Pre_prepare of { block : block; signature : Sig.t }
  | Prepare of { seq : int; digest : Hash.t; voter : Net.Node_id.t; signature : Sig.t }
  | Commit of { seq : int; digest : Hash.t; voter : Net.Node_id.t; signature : Sig.t }

let wire_size = function
  | Pre_prepare { block; _ } -> block.wire_bytes
  | Prepare _ | Commit _ -> 24 + Hash.size_bytes + Sig.size_bytes

let category = function
  | Pre_prepare _ -> "proposal"
  | Prepare _ | Commit _ -> "vote"

let meta = Net.Network.{ size = wire_size; category; priority = (fun _ -> Net.Nic.High) }

let prepare_payload ~seq ~digest = Printf.sprintf "pbft.prep:%d:%s" seq (Hash.raw digest)
let commit_payload ~seq ~digest = Printf.sprintf "pbft.commit:%d:%s" seq (Hash.raw digest)

type inst = {
  mutable block : block option;
  mutable digest : Hash.t option;
  prepares : (Net.Node_id.t, unit) Hashtbl.t;
  commits : (Net.Node_id.t, unit) Hashtbl.t;
  mutable sent_commit : bool;
  mutable executed : bool;
}

type replica = {
  engine : Engine.t;
  network : msg Net.Network.t;
  cfg : cfg;
  id : Net.Node_id.t;
  leader : Net.Node_id.t;
  sk : Sig.private_key;
  pks : Sig.public_key array;
  silent : bool;
  cpu : Net.Cpu.t;
  mempool : Workload.Request.t Queue.t;
  mutable pending_reqs : int;
  instances : (int, inst) Hashtbl.t;
  mutable next_seq : int;          (* leader *)
  mutable executed_up_to : int;    (* highest contiguous executed seq *)
  mutable last_proposal : Sim_time.t;
  on_execute : id:Net.Node_id.t -> seq:int -> block -> unit;
}

let inst_of r seq =
  match Hashtbl.find_opt r.instances seq with
  | Some i -> i
  | None ->
    let i =
      { block = None;
        digest = None;
        prepares = Hashtbl.create 8;
        commits = Hashtbl.create 8;
        sent_commit = false;
        executed = false }
    in
    Hashtbl.add r.instances seq i;
    i

let active r = not r.silent
let is_leader r = Net.Node_id.equal r.id r.leader
let with_cpu r cost f = Net.Cpu.submit r.cpu ~cost f

let try_execute r =
  let rec go () =
    let next = r.executed_up_to + 1 in
    match Hashtbl.find_opt r.instances next with
    | Some i when (not i.executed) && Hashtbl.length i.commits >= (2 * r.cfg.f) + 1 ->
      (match i.block with
       | Some block ->
         i.executed <- true;
         r.executed_up_to <- next;
         List.iter Workload.Request.mark_confirmed block.batch;
         r.on_execute ~id:r.id ~seq:next block;
         go ()
       | None -> ())
    | Some _ | None -> ()
  in
  go ()

let maybe_commit r seq i =
  match i.digest with
  | Some digest when (not i.sent_commit) && Hashtbl.length i.prepares >= 2 * r.cfg.f ->
    i.sent_commit <- true;
    with_cpu r r.cfg.cost.sign (fun () ->
        if active r then begin
          let signature = Sig.sign r.sk (commit_payload ~seq ~digest) in
          Net.Network.multicast r.network ~src:r.id (Commit { seq; digest; voter = r.id; signature });
          Hashtbl.replace i.commits r.id ();
          try_execute r
        end)
  | Some _ | None -> ()

let take_batch r limit =
  let rec go acc got =
    if got >= limit then List.rev acc
    else
      match Queue.pop r.mempool with
      | exception Queue.Empty -> List.rev acc
      | b ->
        r.pending_reqs <- r.pending_reqs - b.Workload.Request.count;
        if Workload.Request.is_confirmed b then go acc got
        else go (b :: acc) (got + b.Workload.Request.count)
  in
  go [] 0

let rec maybe_propose r =
  if active r && is_leader r && r.next_seq <= r.executed_up_to + r.cfg.window then begin
    let full = r.pending_reqs >= r.cfg.batch_size in
    let timed_out =
      r.pending_reqs > 0
      && Sim_time.compare Sim_time.(Engine.now r.engine - r.last_proposal) r.cfg.propose_timeout >= 0
    in
    if full || timed_out then begin
      r.last_proposal <- Engine.now r.engine;
      let batch = take_batch r r.cfg.batch_size in
      if batch <> [] then begin
        let block = make_block ~seq:r.next_seq ~batch in
        r.next_seq <- r.next_seq + 1;
        let digest = block_digest block in
        let cost =
          Sim_time.( + ) r.cfg.cost.sign
            (Crypto.Cost_model.hash_cost r.cfg.cost ~bytes_len:block.payload_bytes)
        in
        with_cpu r cost (fun () ->
            if active r then begin
              let signature = Sig.sign r.sk (prepare_payload ~seq:block.seq ~digest) in
              Net.Network.multicast r.network ~src:r.id (Pre_prepare { block; signature });
              let i = inst_of r block.seq in
              i.block <- Some block;
              i.digest <- Some digest;
              (* The leader's pre-prepare counts as its prepare. *)
              Hashtbl.replace i.prepares r.id ();
              maybe_propose r
            end)
      end
    end
  end

let on_pre_prepare r block signature ~src =
  let digest = block_digest block in
  if
    Net.Node_id.equal src r.leader
    && Sig.verify r.pks.(r.leader) signature (prepare_payload ~seq:block.seq ~digest)
  then begin
    let i = inst_of r block.seq in
    if i.block = None then begin
      i.block <- Some block;
      i.digest <- Some digest;
      Hashtbl.replace i.prepares r.leader ();
      with_cpu r r.cfg.cost.sign (fun () ->
          if active r then begin
            let s = Sig.sign r.sk (prepare_payload ~seq:block.seq ~digest) in
            Net.Network.multicast r.network ~src:r.id
              (Prepare { seq = block.seq; digest; voter = r.id; signature = s });
            Hashtbl.replace i.prepares r.id ();
            maybe_commit r block.seq i
          end)
    end
  end

let handle r ~src m =
  if active r then
    match m with
    | Pre_prepare { block; signature } ->
      let cost =
        Sim_time.( + ) r.cfg.cost.verify
          (Crypto.Cost_model.hash_cost r.cfg.cost ~bytes_len:block.payload_bytes)
      in
      with_cpu r cost (fun () -> if active r then on_pre_prepare r block signature ~src)
    | Prepare { seq; digest; voter; signature } ->
      with_cpu r r.cfg.cost.verify (fun () ->
          if
            active r
            && Sig.verify r.pks.(voter) signature (prepare_payload ~seq ~digest)
          then begin
            let i = inst_of r seq in
            if i.digest = None || Option.equal Hash.equal i.digest (Some digest) then begin
              Hashtbl.replace i.prepares voter ();
              maybe_commit r seq i
            end
          end)
    | Commit { seq; digest; voter; signature } ->
      with_cpu r r.cfg.cost.verify (fun () ->
          if
            active r
            && Sig.verify r.pks.(voter) signature (commit_payload ~seq ~digest)
          then begin
            let i = inst_of r seq in
            Hashtbl.replace i.commits voter ();
            try_execute r;
            maybe_propose r
          end)

let submit r b =
  if active r then begin
    Queue.push b r.mempool;
    r.pending_reqs <- r.pending_reqs + b.Workload.Request.count;
    if is_leader r then maybe_propose r
  end

type report = {
  n : int;
  offered : int;
  confirmed : int;
  throughput : float;
  latency : Stats.Histogram.t;
  leader_bps : float;
  safety_ok : bool;
}

let run (sp : spec) =
  let cfg = sp.cfg in
  let n = cfg.n in
  let engine = Engine.create ~seed:sp.seed () in
  let network = Net.Network.create engine ~n ~meta ~link:sp.link in
  let key_rng = Rng.split (Engine.rng engine) in
  let keys = Array.init n (fun _ -> Sig.keygen key_rng) in
  let pks = Array.map fst keys in
  let leader = 0 in
  let silent_set = List.init sp.silent (fun i -> n - 1 - i) in
  let exec_counts : (int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let counted : (int, unit) Hashtbl.t = Hashtbl.create 65536 in
  let confirm_meter = Stats.Meter.create () in
  let latency = Stats.Histogram.create () in
  let confirmed = ref 0 in
  let fp1 = cfg.f + 1 in
  let executed_digests : (int, Hash.t) Hashtbl.t = Hashtbl.create 1024 in
  let safety_ok = ref true in
  let on_execute ~id:_ ~seq block =
    (match Hashtbl.find_opt executed_digests seq with
     | Some d -> if not (Hash.equal d (block_digest block)) then safety_ok := false
     | None -> Hashtbl.add executed_digests seq (block_digest block));
    let c =
      match Hashtbl.find_opt exec_counts seq with
      | Some c -> c
      | None ->
        let c = ref 0 in
        Hashtbl.add exec_counts seq c;
        c
    in
    incr c;
    if !c = fp1 then begin
      let at = Engine.now engine in
      List.iter
        (fun (b : Workload.Request.t) ->
          if not (Hashtbl.mem counted b.Workload.Request.id) then begin
            Hashtbl.add counted b.Workload.Request.id ();
            confirmed := !confirmed + b.Workload.Request.count;
            Stats.Meter.add confirm_meter ~at b.Workload.Request.count;
            Stats.Histogram.add latency Sim_time.(at - b.Workload.Request.born)
          end)
        block.batch
    end
  in
  let replicas =
    Array.init n (fun id ->
        let r =
          { engine;
            network;
            cfg;
            id;
            leader;
            sk = snd keys.(id);
            pks;
            silent = List.mem id silent_set;
            cpu = Net.Cpu.create engine ~cores:cfg.cores;
            mempool = Queue.create ();
            pending_reqs = 0;
            instances = Hashtbl.create 64;
            next_seq = 1;
            executed_up_to = 0;
            last_proposal = Sim_time.zero;
            on_execute }
        in
        Net.Network.set_handler network id (fun ~src m -> handle r ~src m);
        r)
  in
  let rec leader_tick () =
    maybe_propose replicas.(leader);
    ignore (Engine.schedule engine ~delay:cfg.propose_timeout (fun () -> leader_tick ()))
  in
  leader_tick ();
  let gen =
    let tick =
      if sp.load <= 0. then Sim_time.ms 20
      else
        Sim_time.max (Sim_time.us 100)
          (Sim_time.min (Sim_time.ms 20) (Sim_time.of_sec (32. /. sp.load)))
    in
    Workload.Generator.start engine ~rate:sp.load ~payload:cfg.payload ~targets:[ leader ] ~tick
      ~inject:(fun ~dst ~size cb -> Net.Network.inject network ~dst ~size ~category:"client-req" cb)
      ~submit:(fun ~target b -> submit replicas.(target) b)
      ~until:sp.duration ()
  in
  ignore (Engine.schedule_at engine ~at:sp.warmup (fun () -> Net.Network.reset_stats network));
  Engine.run ~until:sp.duration engine;
  let window_sec = Sim_time.to_sec Sim_time.(sp.duration - sp.warmup) in
  let acct = Net.Network.stats network leader in
  let bytes =
    Net.Bandwidth.total acct Net.Bandwidth.Sent + Net.Bandwidth.total acct Net.Bandwidth.Received
  in
  { n;
    offered = Workload.Generator.offered gen;
    confirmed = !confirmed;
    throughput = Stats.Meter.rate confirm_meter ~from_:sp.warmup ~until:sp.duration;
    latency;
    leader_bps = (if window_sec <= 0. then 0. else 8. *. float_of_int bytes /. window_sec);
    safety_ok = !safety_ok }
