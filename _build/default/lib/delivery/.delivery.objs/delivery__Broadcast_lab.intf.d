lib/delivery/broadcast_lab.mli: Format Net Sim
