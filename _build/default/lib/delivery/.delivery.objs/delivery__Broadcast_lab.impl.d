lib/delivery/broadcast_lab.ml: Array Bytes Crypto Engine Format Fun Hashtbl List Net Option Printf Sim Sim_time String
