(** The broadcast laboratory: §2's data-delivery alternatives, simulated.

    One source must deliver a payload to all replicas over the NIC-level
    network model. The paper compares three techniques against its
    datablock decoupling:

    - {b Direct}: the source unicasts the full payload to everyone
      (HotStuff's proposal dissemination — the leader bottleneck).
    - {b Tree}: a fanout-ary relay tree; cheap per node but a Byzantine
      inner node silently severs its whole subtree.
    - {b Erasure}: the source sends one Reed–Solomon fragment to each
      replica; replicas rebroadcast their fragment; everyone
      reconstructs from any [k] — fault tolerant, but every node ships
      ~n/k times the payload and pays coding CPU.

    The lab runs each technique for real (the erasure path encodes and
    decodes actual bytes) and reports delivery coverage, completion time
    and the egress profile — the measured counterpart of
    {!Analysis.Delivery_models}. *)

type strategy =
  | Direct
  | Tree of { fanout : int }
  | Erasure of { k : int }

type result = {
  honest : int;               (** honest replicas, source included *)
  delivered : int;            (** honest replicas that hold the payload *)
  completion : Sim.Sim_time.span option;
      (** instant the last honest delivery happened; [None] if some
          honest replica never received the payload *)
  source_egress : int;        (** bytes sent by the source *)
  max_replica_egress : int;   (** heaviest non-source egress *)
  total_bytes : int;          (** all bytes put on the wire *)
  decode_failures : int;      (** erasure reconstructions that failed *)
}

val run :
  ?seed:int64 ->
  ?link:Net.Network.link ->
  n:int ->
  payload:string ->
  byzantine:Net.Node_id.t list ->
  strategy ->
  result
(** [run ~n ~payload ~byzantine strategy] simulates one broadcast from
    replica 0 (always honest). Byzantine replicas receive but never
    forward. Requires [n >= 2], non-empty payload, and for
    [Erasure { k }]: [1 <= k <= n - 1]. *)

val pp_result : Format.formatter -> result -> unit
